package mars

// Benchmarks regenerating the paper's tables and figures, one per
// artifact (see DESIGN.md's experiment index). These use reduced trial
// counts so `go test -bench=.` completes in minutes; cmd/mars-bench runs
// the full versions.

import (
	"math/rand"
	"testing"

	"mars/internal/experiments"
	"mars/internal/faults"
	"mars/internal/fsm"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/reservoir"
	"mars/internal/topology"
)

// BenchmarkTable1FaultLocalization runs one localization trial per fault
// kind for every system (E-T1).
func BenchmarkTable1FaultLocalization(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range faults.Kinds() {
			tc := experiments.DefaultTrialConfig(int64(1000+i), kind)
			for _, sys := range experiments.Systems() {
				experiments.RunTrial(sys, tc)
			}
		}
	}
}

// BenchmarkMARSTrial measures one full MARS trial (detection + diagnosis)
// on the delay scenario.
func BenchmarkMARSTrial(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := experiments.DefaultTrialConfig(int64(42+i), faults.Delay)
		experiments.RunTrial(experiments.SysMARS, tc)
	}
}

// BenchmarkFig2LinkUtilization regenerates the utilization CDF (E-F2).
func BenchmarkFig2LinkUtilization(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig2(int64(i + 1))
	}
}

// BenchmarkFig3HeaderAndMemory regenerates the header/memory study (E-F3).
func BenchmarkFig3HeaderAndMemory(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig3()
	}
}

// BenchmarkFig5ThresholdTrace regenerates the threshold illustration (E-F5).
func BenchmarkFig5ThresholdTrace(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(int64(i + 1))
	}
}

// BenchmarkFig7FaultSymptoms regenerates the symptom traces (E-F7).
func BenchmarkFig7FaultSymptoms(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(int64(i + 1))
	}
}

// BenchmarkFig8AnomalyDetection regenerates the detector comparison (E-F8).
func BenchmarkFig8AnomalyDetection(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(int64(i+1), 10, 600)
	}
}

// BenchmarkFig9Overhead regenerates the bandwidth study for MARS only
// (the full four-system version runs in cmd/mars-bench).
func BenchmarkFig9Overhead(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := experiments.DefaultTrialConfig(int64(7+i), faults.Delay)
		experiments.RunTrial(experiments.SysMARS, tc)
	}
}

// BenchmarkFig10Resources regenerates the resource-model sweep (E-F10).
func BenchmarkFig10Resources(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig10()
	}
}

// BenchmarkFig11FSMAlgorithms regenerates the miner comparison (E-F11).
func BenchmarkFig11FSMAlgorithms(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig11(int64(i+1), 2000, 1)
	}
}

// BenchmarkPathIDTableBuild measures control-plane PathID precomputation
// (E-M1) on the K=4 path set.
func BenchmarkPathIDTableBuild(b *testing.B) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	paths := ft.AllEdgePairPaths()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathid.BuildTable(pathid.DefaultConfig(), ft.Topology, paths); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPenalty compares reservoir penalty variants (A-1).
func BenchmarkAblationPenalty(b *testing.B) {
	for _, mode := range []reservoir.PenaltyMode{reservoir.PenaltyText, reservoir.PenaltyOff, reservoir.PenaltyPrinted} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				experiments.RunFig8(int64(i+1), 6, 400)
				_ = mode
			}
		})
	}
}

// BenchmarkAblationSBFL compares scoring formulas (A-2) with one trial
// per fault kind.
func BenchmarkAblationSBFL(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationSBFL(1, int64(100+i))
	}
}

// BenchmarkAblationFSMMaxLen compares pattern length caps (A-3).
func BenchmarkAblationFSMMaxLen(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationFSMMaxLen(1, int64(100+i))
	}
}

// BenchmarkSimulatorThroughput measures raw event-loop speed: packets
// through a loaded fat-tree with no pipeline attached.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router := netsim.NewECMPRouter(ft.Topology, uint64(i))
		sim := netsim.New(ft.Topology, router, nil, netsim.DefaultConfig(), int64(i))
		for p := 0; p < 1000; p++ {
			src := ft.HostIDs[p%len(ft.HostIDs)]
			dst := ft.HostIDs[(p*7+3)%len(ft.HostIDs)]
			if src == dst {
				continue
			}
			sim.Send(netsim.Time(p)*10*netsim.Microsecond, src, dst, netsim.FlowKey(p), 700)
		}
		sim.RunAll()
	}
}

// BenchmarkReservoirInput measures the per-sample cost of Algorithm 1.
func BenchmarkReservoirInput(b *testing.B) {
	r := reservoir.New(reservoir.DefaultConfig(), rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Input(float64(1000 + i%100))
	}
}

// BenchmarkFSMMiners measures each miner on a realistic abnormal set.
func BenchmarkFSMMiners(b *testing.B) {
	db := make(fsm.Dataset, 2000)
	for i := range db {
		db[i] = fsm.Sequence{fsm.Item(i % 8), fsm.Item(20 + i%2), fsm.Item(30 + i%4), fsm.Item(10 + i%8)}
	}
	params := fsm.Params{MinRelSupport: 0.05, MaxLen: 2}
	for _, m := range fsm.All() {
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Mine(db, params)
			}
		})
	}
}
