// bench-gate compares two Go benchmark output files (a committed baseline
// and a fresh run, each ideally -count=6) and fails on performance
// regressions:
//
//   - allocs/op: any increase fails. Allocation counts are deterministic
//     and machine-independent, so this gate is strict.
//   - ns/op: fails when the new median exceeds the old by more than the
//     threshold (default 10%) AND the two series do not overlap (every new
//     sample slower than every old sample), a non-parametric significance
//     proxy that absorbs scheduler noise at -count=6.
//
// Committed baselines are recorded on one machine and replayed on another
// (e.g. a CI runner), where absolute ns/op is meaningless. When the
// geometric mean of the per-benchmark speed ratios drifts beyond the
// -hw-mismatch factor in either direction, the whole run is treated as
// different hardware: ns/op gating is skipped with a warning and only the
// machine-independent allocs/op gate applies.
//
// Usage:
//
//	bench-gate -old BENCH_baseline.txt -new fresh.txt [-threshold 0.10]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// series holds all samples of one benchmark across -count repetitions.
type series struct {
	name   string
	nsOp   []float64
	allocs []float64 // allocs/op; absent samples are not recorded
}

func (s *series) medianNs() float64 { return median(s.nsOp) }

func (s *series) maxAllocs() float64 {
	m := 0.0
	for _, a := range s.allocs {
		if a > m {
			m = a
		}
	}
	return m
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return lo, hi
}

// parseBench reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8  300000  693.9 ns/op  0 B/op  0 allocs/op
//
// The GOMAXPROCS suffix is stripped so baselines transfer across runners.
func parseBench(path string) (map[string]*series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*series)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &series{name: name}
			out[name] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsOp = append(s.nsOp, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	return out, sc.Err()
}

// gateResult is one benchmark's verdict.
type gateResult struct {
	name    string
	verdict string // "ok", "FAIL", "skip"
	detail  string
}

// gate compares baselines against fresh runs and returns per-benchmark
// verdicts plus overall failure. Benchmarks present on only one side are
// reported but never fail the gate (renames land with a new baseline).
func gate(old, fresh map[string]*series, threshold, hwMismatch float64) (results []gateResult, failed bool) {
	var names []string
	//mars:mapiter-ok the collected keys are sorted immediately below
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	// Hardware check: geometric mean of fresh/old median speed ratios.
	var logSum float64
	var ratios int
	for _, name := range names {
		if f, ok := fresh[name]; ok && len(f.nsOp) > 0 && len(old[name].nsOp) > 0 {
			r := f.medianNs() / old[name].medianNs()
			if r > 0 {
				logSum += math.Log(r)
				ratios++
			}
		}
	}
	sameHardware := true
	if ratios > 0 {
		geo := math.Exp(logSum / float64(ratios))
		if geo > hwMismatch || geo < 1/hwMismatch {
			sameHardware = false
			results = append(results, gateResult{
				name:    "(hardware)",
				verdict: "skip",
				detail: fmt.Sprintf("geomean speed ratio %.2fx exceeds %.2fx: different hardware assumed, ns/op gate skipped",
					geo, hwMismatch),
			})
		}
	}

	for _, name := range names {
		o := old[name]
		f, ok := fresh[name]
		if !ok {
			results = append(results, gateResult{name, "skip", "missing from new run"})
			continue
		}
		res := gateResult{name: name, verdict: "ok"}
		// Allocation gate: strict, machine-independent.
		if len(o.allocs) > 0 && len(f.allocs) > 0 && f.maxAllocs() > o.maxAllocs() {
			res.verdict = "FAIL"
			res.detail = fmt.Sprintf("allocs/op %g -> %g (any increase fails)", o.maxAllocs(), f.maxAllocs())
			failed = true
			results = append(results, res)
			continue
		}
		// Speed gate: median over threshold and series fully separated.
		if sameHardware && len(o.nsOp) > 0 && len(f.nsOp) > 0 {
			om, fm := o.medianNs(), f.medianNs()
			_, oHi := minMax(o.nsOp)
			fLo, _ := minMax(f.nsOp)
			if fm > om*(1+threshold) && fLo > oHi {
				res.verdict = "FAIL"
				res.detail = fmt.Sprintf("ns/op median %.1f -> %.1f (+%.1f%%, threshold %.0f%%, series disjoint)",
					om, fm, 100*(fm/om-1), 100*threshold)
				failed = true
				results = append(results, res)
				continue
			}
			res.detail = fmt.Sprintf("ns/op median %.1f -> %.1f (%+.1f%%), allocs/op %g", om, fm, 100*(fm/om-1), f.maxAllocs())
		}
		results = append(results, res)
	}
	//mars:mapiter-ok results are sorted by name immediately below
	for name := range fresh {
		if _, ok := old[name]; !ok {
			results = append(results, gateResult{name, "skip", "missing from baseline (add it on the next re-baseline)"})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })
	return results, failed
}

func main() {
	var (
		oldPath    = flag.String("old", "", "committed baseline benchmark output")
		newPath    = flag.String("new", "", "fresh benchmark output to gate")
		threshold  = flag.Float64("threshold", 0.10, "relative ns/op regression allowed before failing")
		hwMismatch = flag.Float64("hw-mismatch", 1.5, "geomean speed-ratio factor beyond which ns/op gating is skipped (different hardware)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench-gate: both -old and -new are required")
		os.Exit(2)
	}
	old, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	if len(old) == 0 || len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: no benchmark lines parsed")
		os.Exit(2)
	}
	results, failed := gate(old, fresh, *threshold, *hwMismatch)
	for _, r := range results {
		fmt.Printf("%-6s %-32s %s\n", r.verdict, r.name, r.detail)
	}
	if failed {
		fmt.Println("bench-gate: FAIL")
		os.Exit(1)
	}
	fmt.Println("bench-gate: ok")
}
