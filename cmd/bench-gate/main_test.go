package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `goos: linux
BenchmarkNetsimStep-8 	  300000	       700.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       705.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       710.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        90.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        91.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        92.0 ns/op	       0 B/op	       0 allocs/op
`

func parse(t *testing.T, content string) map[string]*series {
	t.Helper()
	m, err := parseBench(writeBench(t, "bench.txt", content))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseStripsProcsSuffixAndCollectsSeries(t *testing.T) {
	m := parse(t, baseline)
	s, ok := m["BenchmarkNetsimStep"]
	if !ok {
		t.Fatalf("missing BenchmarkNetsimStep; got %v", m)
	}
	if len(s.nsOp) != 3 || len(s.allocs) != 3 {
		t.Fatalf("series sizes = %d ns, %d allocs, want 3, 3", len(s.nsOp), len(s.allocs))
	}
	if got := s.medianNs(); got != 705.0 {
		t.Errorf("median = %v, want 705", got)
	}
}

func TestGatePassesOnNoise(t *testing.T) {
	old := parse(t, baseline)
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	       712.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       698.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       703.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        93.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        90.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        89.0 ns/op	       0 B/op	       0 allocs/op
`)
	if _, failed := gate(old, fresh, 0.10, 1.5); failed {
		t.Error("noise within threshold must pass")
	}
}

func TestGateFailsOnAllocIncrease(t *testing.T) {
	old := parse(t, baseline)
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	       700.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkNetsimStep-8 	  300000	       702.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkNetsimStep-8 	  300000	       704.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkPerHopFold-8 	 2000000	        90.0 ns/op	       0 B/op	       0 allocs/op
`)
	if _, failed := gate(old, fresh, 0.10, 1.5); !failed {
		t.Error("allocs/op increase must fail even with flat ns/op")
	}
}

func TestGateFailsOnSignificantSlowdown(t *testing.T) {
	old := parse(t, baseline)
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	       850.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       855.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       860.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        90.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        91.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        92.0 ns/op	       0 B/op	       0 allocs/op
`)
	if _, failed := gate(old, fresh, 0.10, 1.5); !failed {
		t.Error(">10% disjoint-series slowdown must fail")
	}
}

func TestGateIgnoresOverlappingSlowdown(t *testing.T) {
	old := parse(t, baseline)
	// Median is +14% but the series overlap the baseline range: noisy
	// machine, not a regression.
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	       709.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       800.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	       810.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	        90.0 ns/op	       0 B/op	       0 allocs/op
`)
	if _, failed := gate(old, fresh, 0.10, 1.5); failed {
		t.Error("overlapping series must not fail the speed gate")
	}
}

func TestGateSkipsSpeedOnHardwareMismatch(t *testing.T) {
	old := parse(t, baseline)
	// Everything is uniformly ~2x slower: a different machine. The speed
	// gate must stand down; the alloc gate stays armed.
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	      1400.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	      1410.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetsimStep-8 	  300000	      1420.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	       180.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	       182.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerHopFold-8 	 2000000	       184.0 ns/op	       0 B/op	       0 allocs/op
`)
	results, failed := gate(old, fresh, 0.10, 1.5)
	if failed {
		t.Error("uniform slowdown on different hardware must not fail")
	}
	found := false
	for _, r := range results {
		if r.name == "(hardware)" && r.verdict == "skip" {
			found = true
		}
	}
	if !found {
		t.Error("expected a hardware-mismatch skip notice")
	}
}

func TestGateAllocGateSurvivesHardwareMismatch(t *testing.T) {
	old := parse(t, baseline)
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	      1400.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkNetsimStep-8 	  300000	      1410.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkPerHopFold-8 	 2000000	       180.0 ns/op	       0 B/op	       0 allocs/op
`)
	if _, failed := gate(old, fresh, 0.10, 1.5); !failed {
		t.Error("allocs/op increase must fail even on mismatched hardware")
	}
}

func TestGateHandlesMissingBenchmarks(t *testing.T) {
	old := parse(t, baseline)
	fresh := parse(t, `
BenchmarkNetsimStep-8 	  300000	       700.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBrandNew-8   	  300000	       100.0 ns/op	       0 B/op	       0 allocs/op
`)
	results, failed := gate(old, fresh, 0.10, 1.5)
	if failed {
		t.Error("missing benchmarks must not fail the gate")
	}
	skips := 0
	for _, r := range results {
		if r.verdict == "skip" {
			skips++
		}
	}
	if skips != 2 {
		t.Errorf("skips = %d, want 2 (one absent from each side)", skips)
	}
}
