// mars-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mars-bench -exp table1 -trials 24
//	mars-bench -exp table1 -trials 24 -workers 8 -progress
//	mars-bench -exp fig9
//	mars-bench -exp all
//
// Experiments: table1, fig2, fig3, fig5, fig7, fig8, fig9, fig10, fig11,
// pathid, scale, stream, ctrlchan, gray, overhead, perf, ablation-sbfl,
// ablation-fsmlen, ablation-miner, ablation-cause.
//
// The stream experiment runs the continuously-diagnosing service
// (internal/stream) against the sharded k-ary fabric with a mid-run
// silent-drop fault: sink records feed the sliding-window pipeline epoch
// by epoch and the run reports detection latency, accuracy per window
// size, and the live metrics snapshot. -k and -shards size the fabric;
// -workers bounds the service's analysis fan-out. Stdout is byte-identical
// for any -shards/-workers value.
//
// The gray experiment runs the gray-failure/correlated-fault/topology-churn
// schedule suite (silent drop, link flap, link down, switch reboot, uplink
// degrade, correlated delay+drop) with the paper's signatures and with
// compound-cause disambiguation side by side.
//
// The overhead experiment sweeps the registered telemetry codecs
// (internal/telemetry) over the Table 1 fault suite and renders the
// bytes/packet vs localization-accuracy frontier.
//
// The perf experiment times full MARS trials per codec and emits the
// machine-readable throughput baseline (the BENCH_perf.json format) on
// stdout, with a human summary on stderr. Profiling any experiment:
//
//	mars-bench -exp table1 -trials 2 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Trial-based experiments (table1, fig9, scale, ctrlchan, ablations) run
// on the internal/harness worker pool: -workers bounds the pool (default
// GOMAXPROCS) and -progress streams per-trial completions to stderr.
// Results are byte-identical for any worker count — parallelism only
// changes wall-clock time, which each run reports on stderr as a
// machine-readable "timing:" line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"mars/internal/deploy"
	"mars/internal/experiments"
	"mars/internal/harness"
	"mars/internal/netsim"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (or 'all')")
		trials     = flag.Int("trials", 8, "trials per fault kind (table1, ablations)")
		seed       = flag.Int64("seed", 1000, "base random seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "harness worker pool size for trial-based experiments")
		progress   = flag.Bool("progress", false, "stream per-trial progress to stderr")
		arity      = flag.Int("k", 16, "fat-tree arity for the sharded scale trial (scale, perf)")
		shards     = flag.Int("shards", 0, "shard count for the sharded scale trial; 0 = GOMAXPROCS")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mars-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mars-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mars-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mars-bench: -memprofile: %v\n", err)
			}
		}()
	}

	opts := experiments.EngineOptions{Workers: *workers}
	if *progress {
		opts.Progress = progressPrinter()
	}

	runners := map[string]func(){
		"table1": func() {
			fmt.Print(experiments.RunTable1With(opts, *trials, *seed).Render())
		},
		"fig2": func() {
			fmt.Print(experiments.RunFig2(*seed).Render())
		},
		"fig3": func() {
			fmt.Print(experiments.RunFig3().Render())
		},
		"fig5": func() {
			fmt.Print(experiments.RunFig5(*seed).Render())
		},
		"fig7": func() {
			fmt.Print(experiments.RunFig7(*seed).Render())
		},
		"fig8": func() {
			fmt.Print(experiments.RunFig8(*seed, 30, 1200).Render())
		},
		"fig9": func() {
			fmt.Print(experiments.RunFig9With(opts, *seed).Render())
		},
		"fig10": func() {
			fmt.Print(experiments.RunFig10().Render())
		},
		"fig11": func() {
			fmt.Print(experiments.RunFig11(*seed, 5000, 5).Render())
		},
		"pathid": func() {
			fmt.Print(experiments.RunPathIDMemory().Render())
		},
		"scale": func() {
			fmt.Print(experiments.RunScaleWith(opts, []int{4, 6, 8}).Render())
			// The sharded scale trial: simulated outcome on stdout
			// (invariant under -shards, diffed by CI), throughput and
			// per-shard memory on stderr.
			var hb netsim.ShardProgress
			if *progress {
				hb = experiments.ScaleHeartbeat(os.Stderr)
			}
			res := experiments.RunScaleTrial(experiments.DefaultScaleTrialConfig(*arity, *shards, *seed), hb)
			fmt.Print(res.Render())
			fmt.Fprint(os.Stderr, res.RenderMem())
			fmt.Fprintln(os.Stderr, res.TimingLine())
		},
		"stream": func() {
			// Continuous streaming diagnosis: simulated outcome on stdout
			// (invariant under -shards and -workers, diffed by CI),
			// sustained throughput on stderr.
			var hb netsim.ShardProgress
			if *progress {
				hb = experiments.ScaleHeartbeat(os.Stderr)
			}
			tc := experiments.DefaultStreamTrialConfig(*arity, *shards, *seed)
			tc.Workers = *workers
			res := experiments.RunStreamTrial(tc, hb)
			fmt.Print(res.Render())
			fmt.Fprintln(os.Stderr, res.TimingLine())
		},
		"ctrlchan": func() {
			fmt.Print(experiments.RunCtrlChanWith(opts, *trials/2+1, *seed).Render())
		},
		"gray": func() {
			fmt.Print(experiments.RunGrayWith(opts, *trials, *seed).Render())
		},
		"overhead": func() {
			fmt.Print(experiments.RunOverheadWith(opts, *trials, *seed).Render())
		},
		"perf": func() {
			// JSON (the BENCH_perf.json format) on stdout; the human
			// summary goes to stderr so redirection stays machine-readable.
			res := experiments.RunPerfWith(opts, *trials/4+1, *seed)
			res.AddScale(experiments.DefaultScaleTrialConfig(*arity, *shards, *seed))
			res.AddStream(experiments.DefaultStreamTrialConfig(*arity, *shards, *seed))
			dp, err := deploy.PerfSection(deploy.DefaultScenario())
			if err != nil {
				fmt.Fprintf(os.Stderr, "perf: deploy tier failed: %v\n", err)
				os.Exit(1)
			}
			res.Deploy = dp
			fmt.Print(res.JSON())
			fmt.Fprint(os.Stderr, res.Render())
		},
		"ablation-sbfl": func() {
			fmt.Print(experiments.RunAblationSBFLWith(opts, *trials/2+1, *seed).Render())
		},
		"ablation-fsmlen": func() {
			fmt.Print(experiments.RunAblationFSMMaxLenWith(opts, *trials/2+1, *seed).Render())
		},
		"ablation-miner": func() {
			fmt.Print(experiments.RunAblationMinerWith(opts, *trials/4+1, *seed).Render())
		},
		"ablation-cause": func() {
			fmt.Print(experiments.RunAblationCauseAccuracyWith(opts, *trials/2+1, *seed).Render())
		},
	}
	order := []string{"fig2", "fig3", "fig5", "fig7", "fig8", "table1", "fig9",
		"fig10", "fig11", "pathid", "scale", "stream", "ctrlchan", "gray",
		"overhead", "perf", "ablation-sbfl", "ablation-fsmlen",
		"ablation-miner", "ablation-cause"}

	timed := func(name string, run func()) {
		start := time.Now() //mars:wallclock wall-time progress reporting for the operator
		run()
		fmt.Fprintf(os.Stderr, "timing: exp=%s workers=%d trials=%d wall=%.2fs\n",
			name, *workers, *trials, time.Since(start).Seconds()) //mars:wallclock wall-time progress reporting for the operator
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("=== %s ===\n", name)
			timed(name, runners[name])
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: all", *exp)
		for _, name := range order {
			fmt.Fprintf(os.Stderr, ", %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	timed(*exp, run)
}

// progressPrinter streams one stderr line per completed trial. The harness
// may invoke it from concurrent workers, so a mutex serializes access to
// the shared buffer: each line is formatted into it and flushed as exactly
// one write, so lines interleave but never tear and each tick costs one
// syscall instead of one per format fragment.
func progressPrinter() harness.Progress {
	var mu sync.Mutex
	bw := bufio.NewWriter(os.Stderr)
	return func(done, total int, t harness.Trial, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(bw, "progress: [%d/%d] %-44s %6.2fs\n",
			done, total, t.Label, elapsed.Seconds())
		bw.Flush()
	}
}
