// mars-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mars-bench -exp table1 -trials 24
//	mars-bench -exp fig9
//	mars-bench -exp all
//
// Experiments: table1, fig2, fig3, fig5, fig7, fig8, fig9, fig10, fig11,
// pathid, scale, ctrlchan, ablation-sbfl, ablation-fsmlen, ablation-miner,
// ablation-cause.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mars/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (or 'all')")
		trials = flag.Int("trials", 8, "trials per fault kind (table1, ablations)")
		seed   = flag.Int64("seed", 1000, "base random seed")
	)
	flag.Parse()

	runners := map[string]func(){
		"table1": func() {
			fmt.Print(experiments.RunTable1(*trials, *seed).Render())
		},
		"fig2": func() {
			fmt.Print(experiments.RunFig2(*seed).Render())
		},
		"fig3": func() {
			fmt.Print(experiments.RunFig3().Render())
		},
		"fig5": func() {
			fmt.Print(experiments.RunFig5(*seed).Render())
		},
		"fig7": func() {
			fmt.Print(experiments.RunFig7(*seed).Render())
		},
		"fig8": func() {
			fmt.Print(experiments.RunFig8(*seed, 30, 1200).Render())
		},
		"fig9": func() {
			fmt.Print(experiments.RunFig9(*seed).Render())
		},
		"fig10": func() {
			fmt.Print(experiments.RunFig10().Render())
		},
		"fig11": func() {
			fmt.Print(experiments.RunFig11(*seed, 5000, 5).Render())
		},
		"pathid": func() {
			fmt.Print(experiments.RunPathIDMemory().Render())
		},
		"scale": func() {
			fmt.Print(experiments.RunScale([]int{4, 6, 8}).Render())
		},
		"ctrlchan": func() {
			fmt.Print(experiments.RunCtrlChan(*trials/2+1, *seed).Render())
		},
		"ablation-sbfl": func() {
			fmt.Print(experiments.RunAblationSBFL(*trials/2+1, *seed).Render())
		},
		"ablation-fsmlen": func() {
			fmt.Print(experiments.RunAblationFSMMaxLen(*trials/2+1, *seed).Render())
		},
		"ablation-miner": func() {
			fmt.Print(experiments.RunAblationMiner(*trials/4+1, *seed).Render())
		},
		"ablation-cause": func() {
			fmt.Print(experiments.RunAblationCauseAccuracy(*trials/2+1, *seed).Render())
		},
	}
	order := []string{"fig2", "fig3", "fig5", "fig7", "fig8", "table1", "fig9",
		"fig10", "fig11", "pathid", "scale", "ctrlchan", "ablation-sbfl",
		"ablation-fsmlen", "ablation-miner", "ablation-cause"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("=== %s ===\n", name)
			start := time.Now() //mars:wallclock wall-time progress reporting for the operator
			runners[name]()
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds()) //mars:wallclock wall-time progress reporting for the operator
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: all", *exp)
		for _, name := range order {
			fmt.Fprintf(os.Stderr, ", %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	run()
}
