// mars-lint runs the repo's determinism & wire-invariant static-analysis
// suite (internal/analysis). It is stdlib-only and builds offline.
//
// Usage:
//
//	mars-lint ./...              # lint the whole module
//	mars-lint internal/rca       # lint one directory as a bare package
//	mars-lint -json ./...        # machine-readable findings
//	mars-lint -list              # describe the analyzers
//
// Exit codes: 0 clean, 1 findings, 2 load or usage error — suitable for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mars/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		list    = flag.Bool("list", false, "list analyzers and exit")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			suppress := "not suppressible"
			if a.Directive != "" {
				suppress = "suppress with //mars:" + a.Directive
			}
			fmt.Printf("%-10s %s (%s)\n", a.Name, a.Doc, suppress)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mars-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			root, err := moduleRoot()
			if err != nil {
				fail(err)
			}
			loaded, err := analysis.LoadModule(root)
			if err != nil {
				fail(err)
			}
			pkgs = append(pkgs, loaded...)
			continue
		}
		pkg, err := analysis.LoadDir(arg)
		if err != nil {
			fail(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mars-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mars-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mars-lint:", err)
	os.Exit(2)
}
