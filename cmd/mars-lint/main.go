// mars-lint runs the repo's determinism & wire-invariant static-analysis
// suite (internal/analysis). It is stdlib-only and builds offline.
//
// Usage:
//
//	mars-lint ./...              # lint the whole module
//	mars-lint internal/rca       # lint one directory as a bare package
//	mars-lint -json ./...        # machine-readable findings
//	mars-lint -only detflow ./...# run a subset of analyzers
//	mars-lint -list              # describe the analyzers
//
// Exit codes: 0 clean, 1 findings, 2 load or usage error — suitable for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mars/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI, factored so tests can drive it with captured
// streams. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mars-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		list    = fs.Bool("list", false, "list analyzers and exit")
		only    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprint(stdout, AnalyzerList())
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "mars-lint: unknown analyzer %q; valid names: %s\n",
					strings.TrimSpace(name), strings.Join(analyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, arg := range targets {
		if arg == "./..." || arg == "..." {
			root, err := moduleRoot()
			if err != nil {
				return fail(stderr, err)
			}
			loaded, err := analysis.LoadModule(root)
			if err != nil {
				return fail(stderr, err)
			}
			pkgs = append(pkgs, loaded...)
			continue
		}
		pkg, err := analysis.LoadDir(arg)
		if err != nil {
			return fail(stderr, err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // a clean run renders as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return fail(stderr, err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "mars-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// AnalyzerList renders the -list output: one line per analyzer with its
// doc string and suppression directive. README.md embeds this text
// verbatim between lint-list markers; CI diffs the two.
func AnalyzerList() string {
	var b strings.Builder
	for _, a := range analysis.All() {
		suppress := "not suppressible"
		if a.Directive != "" {
			suppress = "suppress with //mars:" + a.Directive
		}
		fmt.Fprintf(&b, "%-12s %s (%s)\n", a.Name, a.Doc, suppress)
	}
	return b.String()
}

func analyzerNames() []string {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return names
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mars-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "mars-lint:", err)
	return 2
}
