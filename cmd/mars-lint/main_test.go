package main

import (
	"strings"
	"testing"
)

// TestOnlyUnknownName: a typo'd -only must exit 2 and tell the operator
// what the valid analyzer names are.
func TestOnlyUnknownName(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-only", "detflw", "."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown analyzer "detflw"`) {
		t.Errorf("stderr %q does not name the bad analyzer", msg)
	}
	for _, name := range []string{"detrand", "detflow", "allocfree", "lifecycle", "exhaustcase"} {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr %q does not list valid analyzer %q", msg, name)
		}
	}
}

// TestListOutput pins the -list rendering that README.md embeds.
func TestListOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	text := out.String()
	if text != AnalyzerList() {
		t.Errorf("-list output diverges from AnalyzerList()")
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 9 {
		t.Errorf("-list printed %d analyzers, want 9:\n%s", len(lines), text)
	}
	for _, want := range []string{"detflow", "allocfree", "lifecycle", "exhaustcase", "suppress with //mars:partial"} {
		if !strings.Contains(text, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// TestBadFlag: unparsable flags are a usage error, not a crash.
func TestBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
