// mars-node runs MARS as real OS processes. One invocation is either a
// single node (the controller, or one switch-group agent) or the
// launcher that spawns and supervises a full deployment on loopback.
//
// Usage:
//
//	mars-node -role launcher [-scenario sc.json] [-dir out] [-timeout 120s] [-stream]
//	mars-node -role controller -scenario sc.json -portmap pm.json [-stream]
//	mars-node -role switch -scenario sc.json -portmap pm.json -group 2
//
// Every process derives its replay data by running the identical seeded
// simulation locally (see internal/deploy), so only two small JSON files
// cross process boundaries: the scenario and the port map. Node
// processes print "ready" on stdout once listening and block until the
// launcher writes "go" on stdin; switch agents then serve until "stop"
// (or stdin EOF). The launcher exits 0 only if the multi-process
// diagnosis reproduces the simulator's top-1 culprit, making the
// deployment a single grep-able, non-zero-on-failure CI check.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"mars/internal/deploy"
	"mars/internal/stream"
	"mars/internal/topology"
)

func main() {
	role := flag.String("role", "launcher", "process role: launcher, controller, or switch")
	scenarioPath := flag.String("scenario", "", "scenario JSON (launcher: optional, default scenario when empty)")
	portmapPath := flag.String("portmap", "", "port map JSON written by the launcher")
	group := flag.Int("group", -1, "switch role: index into the port map's groups")
	dir := flag.String("dir", "", "launcher: output directory for configs and node logs (default: temp dir)")
	timeout := flag.Duration("timeout", 120*time.Second, "launcher: watchdog for the whole run")
	withStream := flag.Bool("stream", false, "controller: also feed collected records to the streaming diagnosis service")
	flag.Parse()

	var err error
	code := 0
	switch *role {
	case "launcher":
		code, err = runLauncher(*scenarioPath, *dir, *timeout, *withStream)
	case "controller":
		code, err = runController(*scenarioPath, *portmapPath, *withStream)
	case "switch":
		err = runSwitch(*scenarioPath, *portmapPath, *group)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mars-node: %s: %v\n", *role, err)
		os.Exit(1)
	}
	os.Exit(code)
}

// loadScenario reads the scenario file, or falls back to the default CI
// smoke scenario when no path is given.
func loadScenario(path string) (deploy.Scenario, error) {
	if path == "" {
		return deploy.DefaultScenario(), nil
	}
	return deploy.ReadScenario(path)
}

// ready prints the readiness handshake and blocks until the launcher
// starts the run. Returns the stdin scanner so switch agents can keep
// waiting for "stop".
func ready(stdin io.Reader) (*bufio.Scanner, error) {
	fmt.Println("ready")
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "go" {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("stdin closed before \"go\"")
}

// exitMismatch is the controller's exit code when the deployment's top-1
// culprit disagrees with the simulator's (distinct from 1 = hard error).
const exitMismatch = 3

// runController is the controller process: build the capture, bind the
// port map's controller socket, run the unmodified control plane over it
// for the replay phase, and judge the outcome against the simulator's.
func runController(scenarioPath, portmapPath string, withStream bool) (int, error) {
	if portmapPath == "" {
		return 0, fmt.Errorf("-portmap is required")
	}
	sc, err := loadScenario(scenarioPath)
	if err != nil {
		return 0, err
	}
	cap, err := deploy.Build(sc)
	if err != nil {
		return 0, err
	}
	pm, err := deploy.ReadPortMap(portmapPath)
	if err != nil {
		return 0, err
	}
	swAddrs, err := pm.SwitchAddrs()
	if err != nil {
		return 0, err
	}
	addr, err := pm.ControllerAddr()
	if err != nil {
		return 0, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return 0, fmt.Errorf("binding %s: %w", pm.Controller, err)
	}
	ctrl := deploy.NewControllerNode(cap, conn, swAddrs)
	defer ctrl.Stop()
	if withStream {
		ctrl.Stream = stream.New(stream.DefaultConfig(sc.Seed), cap.Sys.FT.PodPartition(), cap.Sys.Paths)
	}

	if _, err := ready(os.Stdin); err != nil {
		return 0, err
	}
	start := time.Now() //mars:wallclock deployment live phase
	ctrl.Start()
	time.Sleep(deploy.ReplayDuration(sc)) //mars:wallclock live replay phase
	deploy.WaitSettled(ctrl)
	wall := time.Since(start).Seconds() //mars:wallclock deployment live phase

	diags := ctrl.Diagnoses()
	got := ctrl.Culprits()
	res := &deploy.LoopbackResult{
		Expected:         cap.Expected,
		Got:              got,
		Diagnoses:        len(diags),
		WallSeconds:      wall,
		CollectLatencies: ctrl.CollectionLatencies(),
		Bytes:            ctrl.BandwidthStats(),
	}
	fmt.Printf("mars-node: controller diagnoses=%d collect_mean_ms=%.2f collect_p95_ms=%.2f diag_rate=%.2f/s retries=%d frames_rx=%d\n",
		res.Diagnoses, res.MeanCollectMs(), res.P95CollectMs(), res.DiagnosesPerSec(),
		res.Bytes.Retries, ctrl.Stats().FramesReceived.Load())
	if withStream {
		windows, merged := ctrl.FinishStream()
		fmt.Printf("mars-node: stream windows=%d merged_culprits=%d\n", windows, merged)
	}
	want, gotKey := "<none>", "<none>"
	if len(cap.Expected) > 0 {
		want = deploy.Top1Key(cap.Expected[0])
	}
	if len(got) > 0 {
		gotKey = deploy.Top1Key(got[0])
	}
	match := want != "<none>" && want == gotKey
	fmt.Printf("mars-node: top-1 got=%s want=%s match=%v\n", gotKey, want, match)
	if !match {
		return exitMismatch, nil
	}
	return 0, nil
}

// runSwitch is one switch-group agent: replay the group's captured
// notifications and answer collect/refresh/push requests until the
// launcher says stop.
func runSwitch(scenarioPath, portmapPath string, group int) error {
	if portmapPath == "" {
		return fmt.Errorf("-portmap is required")
	}
	sc, err := loadScenario(scenarioPath)
	if err != nil {
		return err
	}
	cap, err := deploy.Build(sc)
	if err != nil {
		return err
	}
	pm, err := deploy.ReadPortMap(portmapPath)
	if err != nil {
		return err
	}
	if group < 0 || group >= len(pm.Groups) {
		return fmt.Errorf("-group %d out of range (portmap has %d groups)", group, len(pm.Groups))
	}
	ctrlAddr, err := pm.ControllerAddr()
	if err != nil {
		return err
	}
	addr, err := net.ResolveUDPAddr("udp", pm.Groups[group].Addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return fmt.Errorf("binding %s: %w", pm.Groups[group].Addr, err)
	}
	node := deploy.NewSwitchNode(cap, pm.Groups[group].Switches, conn, ctrlAddr)
	defer node.Stop()

	stdin, err := ready(os.Stdin)
	if err != nil {
		return err
	}
	node.Start()
	// Serve until the launcher's "stop" (or its death: stdin EOF). The
	// controller decides when the run is over; an agent never does.
	for stdin.Scan() {
		if strings.TrimSpace(stdin.Text()) == "stop" {
			break
		}
	}
	notes, pushes := node.Counts()
	fmt.Printf("mars-node: switch group=%d notes=%d pushes=%d frames_rx=%d\n",
		group, notes, pushes, node.Stats().FramesReceived.Load())
	return nil
}

// child is one spawned node process under the launcher.
type child struct {
	name  string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	ready chan struct{}
	done  chan error
}

// runLauncher spawns the controller and every switch-group agent as
// separate OS processes on loopback, supervises the handshake and the
// run, and reduces the outcome to an exit code.
func runLauncher(scenarioPath, dir string, timeout time.Duration, withStream bool) (int, error) {
	sc, err := loadScenario(scenarioPath)
	if err != nil {
		return 0, err
	}
	if dir == "" {
		dir, err = os.MkdirTemp("", "mars-node-*")
		if err != nil {
			return 0, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}

	// Bind every socket here to discover free ports, then release them
	// for the children to re-bind. The window between close and re-bind
	// is a real (tiny, loopback-only) race; binding up front keeps the
	// port map honest without passing file descriptors around.
	ft, err := topology.NewFatTree(sc.K)
	if err != nil {
		return 0, err
	}
	groups := deploy.GroupSwitches(ft, sc.Groups)
	conns, pm, err := deploy.AllocatePorts(groups)
	if err != nil {
		return 0, err
	}
	for _, c := range conns {
		c.Close()
	}
	scPath := filepath.Join(dir, "scenario.json")
	pmPath := filepath.Join(dir, "portmap.json")
	if err := sc.WriteFile(scPath); err != nil {
		return 0, err
	}
	if err := pm.WriteFile(pmPath); err != nil {
		return 0, err
	}
	self, err := os.Executable()
	if err != nil {
		return 0, err
	}
	fmt.Printf("mars-node: launcher dir=%s controller=%s groups=%d\n", dir, pm.Controller, len(pm.Groups))

	spawn := func(name string, args ...string) (*child, error) {
		cmd := exec.Command(self, args...)
		logf, err := os.Create(filepath.Join(dir, name+".log"))
		if err != nil {
			return nil, err
		}
		cmd.Stderr = logf
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		c := &child{name: name, cmd: cmd, stdin: stdin,
			ready: make(chan struct{}), done: make(chan error, 1)}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawning %s: %w", name, err)
		}
		// Relay the child's stdout, watching for the readiness handshake.
		//mars:sync per-child relay writes whole lines prefixed with the child's name; cross-child interleaving mirrors real process timing, which is the launcher's observable, not a seeded output
		go func() {
			sc := bufio.NewScanner(stdout)
			signaled := false
			for sc.Scan() {
				line := sc.Text()
				if !signaled && strings.TrimSpace(line) == "ready" {
					signaled = true
					close(c.ready)
					continue
				}
				fmt.Printf("[%s] %s\n", name, line)
			}
		}()
		//mars:sync one waiter per child feeding a buffered done channel; consumers select on it explicitly, so ordering is enforced at the receive sites
		go func() { c.done <- cmd.Wait(); logf.Close() }()
		return c, nil
	}

	var children []*child
	killAll := func() {
		for _, c := range children {
			c.cmd.Process.Kill()
		}
	}
	ctrlArgs := []string{"-role", "controller", "-scenario", scPath, "-portmap", pmPath}
	if withStream {
		ctrlArgs = append(ctrlArgs, "-stream")
	}
	ctrl, err := spawn("controller", ctrlArgs...)
	if err != nil {
		return 0, err
	}
	children = append(children, ctrl)
	var agents []*child
	for g := range pm.Groups {
		a, err := spawn(fmt.Sprintf("switch-%d", g),
			"-role", "switch", "-scenario", scPath, "-portmap", pmPath, "-group", fmt.Sprint(g))
		if err != nil {
			killAll()
			return 0, err
		}
		children = append(children, a)
		agents = append(agents, a)
	}

	watchdog := time.After(timeout) //mars:wallclock launcher watchdog
	for _, c := range children {
		select {
		case <-c.ready:
		case err := <-c.done:
			killAll()
			return 0, fmt.Errorf("%s exited before ready: %v", c.name, err)
		case <-watchdog:
			killAll()
			return 0, fmt.Errorf("timeout waiting for %s to become ready", c.name)
		}
	}
	for _, c := range children {
		if _, err := io.WriteString(c.stdin, "go\n"); err != nil {
			killAll()
			return 0, fmt.Errorf("starting %s: %w", c.name, err)
		}
	}

	// The controller owns the run's end; the watchdog owns the controller.
	var ctrlErr error
	select {
	case ctrlErr = <-ctrl.done:
	case <-watchdog:
		killAll()
		return 0, fmt.Errorf("watchdog: run exceeded %s", timeout)
	}
	for _, a := range agents {
		io.WriteString(a.stdin, "stop\n")
	}
	for _, a := range agents {
		select {
		case <-a.done:
		case <-time.After(10 * time.Second): //mars:wallclock agent shutdown grace
			a.cmd.Process.Kill()
			<-a.done
		}
	}

	code := 0
	if ctrlErr != nil {
		if ee, ok := ctrlErr.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			return 0, fmt.Errorf("controller: %v", ctrlErr)
		}
	}
	fmt.Printf("mars-node: launcher verdict match=%v logs=%s\n", code == 0, dir)
	return code, nil
}
