// mars-sim runs one fault scenario end-to-end on the simulated fat-tree
// and prints the ranked culprit list with the ground truth highlighted.
//
// The -fault flag accepts a comma-separated list; with more than one kind
// the faults are applied as a Schedule of overlapping injections (each
// drawing from its own seeded RNG) and the diagnosis is scored against
// the episode's root causes. Gray-failure kinds (silent-drop, link-flap,
// link-down, switch-reboot, uplink-degrade) pair naturally with -compound.
//
// Usage:
//
//	mars-sim -fault delay -seed 7 -flows 96 -rate 220 -top 8
//	mars-sim -fault micro-burst
//	mars-sim -fault drop -k 4 -dur 1.5
//	mars-sim -fault delay -codec pintlike
//	mars-sim -fault delay,drop -compound
//	mars-sim -fault link-flap -compound
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mars"
	"mars/internal/faults"
)

func main() {
	var (
		faultList = flag.String("fault", "delay", "comma-separated fault scenarios: micro-burst, ecmp-imbalance, process-rate, delay, drop, ctrl-chan, silent-drop, link-flap, link-down, switch-reboot, uplink-degrade")
		seed      = flag.Int64("seed", 1, "random seed (workload, fault target, reservoirs)")
		k         = flag.Int("k", 4, "fat-tree arity (even)")
		flows     = flag.Int("flows", 96, "background flows")
		rate      = flag.Float64("rate", 220, "per-flow background rate (pps)")
		start     = flag.Float64("start", 2.0, "fault start (s)")
		dur       = flag.Float64("dur", 1.5, "fault duration (s)")
		total     = flag.Float64("total", 4.0, "total simulated time (s)")
		top       = flag.Int("top", 8, "culprits to print")
		codec     = flag.String("codec", "", "telemetry codec: mars11 (default), perhop, pintlike, sampled")
		compound  = flag.Bool("compound", false, "enable compound-cause RCA (gray-failure signatures)")
		verbose   = flag.Bool("v", false, "print each diagnosis as it happens")
	)
	flag.Parse()

	var kinds []mars.FaultKind
	for _, name := range strings.Split(*faultList, ",") {
		kind, err := faults.Parse(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = append(kinds, kind)
	}

	cfg := mars.DefaultConfig()
	cfg.Seed = *seed
	cfg.FatTreeK = *k
	cfg.Codec = *codec
	cfg.RCA.CompoundCauses = *compound
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.StartBackground(*flows, *rate)
	if *verbose {
		sys.OnDiagnosis = func(d mars.Diagnosis, list []mars.Culprit) {
			fmt.Printf("diagnosis at %v: trigger %v at s%d, %d records, %d culprits\n",
				d.Time, d.Trigger.Kind, d.Trigger.Switch, len(d.Records), len(list))
		}
	}
	sec := func(v float64) mars.Time { return mars.Time(v * float64(mars.Second)) }

	var roots []mars.GroundTruth
	if len(kinds) == 1 {
		roots = []mars.GroundTruth{sys.InjectFault(kinds[0], sec(*start), sec(*dur))}
	} else {
		sched := mars.Schedule{}
		for _, kind := range kinds {
			sched.Injections = append(sched.Injections, mars.Injection{
				Kind: kind, Start: sec(*start), Dur: sec(*dur),
			})
		}
		roots = sys.InjectSchedule(sched).Roots()
	}
	fmt.Printf("topology: K=%d fat-tree (%d switches, %d hosts)\n", *k, sys.FT.NumSwitches(), sys.FT.NumHosts())
	for _, gt := range roots {
		fmt.Printf("injected: %v\n", gt)
	}
	fmt.Println()
	sys.Run(sec(*total))

	fmt.Printf("\nsent=%d delivered=%d dropped=%d\n",
		sys.Sim.Stats.Sent, sys.Sim.Stats.Delivered, sys.Sim.Stats.Dropped)
	fmt.Printf("telemetry overhead: %d B, diagnosis overhead: %d B\n\n",
		sys.TelemetryOverheadBytes(), sys.DiagnosisOverheadBytes())

	culprits := sys.Culprits()
	if len(culprits) == 0 {
		fmt.Println("no culprits (nothing detected)")
		return
	}
	fmt.Println("ranked culprits:")
	for i, c := range culprits {
		if i >= *top {
			break
		}
		mark := ""
		for _, gt := range roots {
			if gt.Kind == mars.FaultMicroBurst {
				if c.Flow == (mars.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}) {
					mark = "   <== injected"
				}
			} else if c.ContainsSwitch(gt.Switch) {
				mark = "   <== injected"
			}
		}
		fmt.Printf("  #%d %v%s\n", i+1, c, mark)
	}
}
