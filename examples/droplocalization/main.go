// Drop localization walkthrough: inject probabilistic loss on one port
// and show the drop pipeline at work — count-mismatch and epoch-gap
// evidence, affected-flow classification, and the second SBFL instance
// that ranks the shared location (§4.3.2, §4.4.4 "Drop").
//
//	go run ./examples/droplocalization
package main

import (
	"fmt"

	"mars"
)

func main() {
	cfg := mars.DefaultConfig()
	cfg.Seed = 5
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	sys.StartBackground(96, 220)

	gt := sys.InjectFault(mars.FaultDrop, 2*mars.Second, 1500*mars.Millisecond)
	fmt.Printf("injected: %v\n\n", gt)

	// Observe each diagnosis as it happens.
	sys.OnDiagnosis = func(d mars.Diagnosis, list []mars.Culprit) {
		mismatches := 0
		gaps := 0
		for _, r := range d.Records {
			if r.SourceCount > r.SinkCount+r.SourceCount/4+3 {
				mismatches++
			}
			if r.EpochGap > 0 {
				gaps++
			}
		}
		fmt.Printf("diagnosis at %v (trigger %v at s%d): %d records, %d count mismatches, %d epoch gaps\n",
			d.Time, d.Trigger.Kind, d.Trigger.Switch, len(d.Records), mismatches, gaps)
	}

	sys.Run(4 * mars.Second)

	fmt.Println("\nranked culprits:")
	for i, c := range sys.Culprits() {
		if i >= 5 {
			break
		}
		mark := ""
		if c.ContainsSwitch(gt.Switch) {
			mark = "   <-- dropping switch"
		}
		fmt.Printf("  #%d %v%s\n", i+1, c, mark)
	}
}
