// ECMP imbalance walkthrough: skew one switch's equal-cost split and show
// that MARS blames the *upstream* switch doing the skewing, not the
// downstream switch whose queue fills (§4.4.4's s9 → s1 example).
//
//	go run ./examples/ecmpimbalance
package main

import (
	"fmt"

	"mars"
)

func main() {
	cfg := mars.DefaultConfig()
	cfg.Seed = 1259
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	sys.StartBackground(96, 220)

	gt := sys.InjectFault(mars.FaultECMP, 2*mars.Second, 1500*mars.Millisecond)
	fmt.Printf("injected: %v\n", gt)
	fmt.Printf("(the skewed switch is s%d; congestion builds at its heavy next hop)\n\n", gt.Switch)

	sys.Run(4 * mars.Second)

	fmt.Println("ranked culprits:")
	for i, c := range sys.Culprits() {
		if i >= 6 {
			break
		}
		mark := ""
		if c.ContainsSwitch(gt.Switch) {
			mark = "   <-- skewing switch"
		}
		fmt.Printf("  #%d %v%s\n", i+1, c, mark)
	}
}
