// Micro-burst walkthrough: inject a >1000 pps transient flow, watch the
// dynamic thresholds flag the congestion, and see the flow-level culprit
// in the diagnosis. Also prints per-epoch telemetry of the offending flow
// so the burst signature is visible.
//
//	go run ./examples/microburst
package main

import (
	"fmt"

	"mars"
	"mars/internal/det"
)

func main() {
	cfg := mars.DefaultConfig()
	cfg.Seed = 2
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	sys.StartBackground(96, 220)

	gt := sys.InjectFault(mars.FaultMicroBurst, 2*mars.Second, 1500*mars.Millisecond)
	fmt.Printf("injected: %v\n", gt)
	burstFlow := mars.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}

	sys.Run(4 * mars.Second)

	// Show the burst flow's per-epoch source counts from the collected
	// telemetry: the spike is what the micro-burst signature matches.
	counts := map[uint32]uint32{}
	for _, d := range sys.Diagnoses {
		for _, r := range d.Records {
			if r.Flow == burstFlow && r.SourceCount > counts[r.Epoch] {
				counts[r.Epoch] = r.SourceCount
			}
		}
	}
	fmt.Println("\nburst flow per-epoch packet counts (100 ms epochs):")
	for _, e := range det.Keys(counts) {
		bar := ""
		for i := uint32(0); i < counts[e]/10; i++ {
			bar += "#"
		}
		fmt.Printf("  epoch %3d %4d %s\n", e, counts[e], bar)
	}

	fmt.Println("\nranked culprits:")
	for i, c := range sys.Culprits() {
		if i >= 5 {
			break
		}
		mark := ""
		if c.Flow == burstFlow && c.Level.String() == "flow" {
			mark = "   <-- the burst flow"
		}
		fmt.Printf("  #%d %v%s\n", i+1, c, mark)
	}
}
