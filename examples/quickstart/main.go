// Quickstart: bring up a MARS deployment on a simulated K=4 fat-tree,
// inject a switch-level delay fault, and print the ranked culprit list.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mars"
)

func main() {
	cfg := mars.DefaultConfig()
	cfg.Seed = 42
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// Background traffic: 96 cross-pod flows at ~220 pps each.
	sys.StartBackground(96, 220)

	// Let thresholds calibrate for 2 s, then delay every packet through a
	// random switch for 1.5 s (a Chaosblade-style interface fault).
	gt := sys.InjectFault(mars.FaultDelay, 2*mars.Second, 1500*mars.Millisecond)
	fmt.Printf("injected: %v\n\n", gt)

	sys.Run(4 * mars.Second)

	fmt.Printf("diagnoses collected: %d\n", len(sys.Diagnoses))
	fmt.Printf("telemetry overhead:  %d B on links\n", sys.TelemetryOverheadBytes())
	fmt.Printf("diagnosis overhead:  %d B on the control channel\n\n", sys.DiagnosisOverheadBytes())

	fmt.Println("ranked culprits:")
	for i, c := range sys.Culprits() {
		if i >= 5 {
			break
		}
		mark := ""
		if c.ContainsSwitch(gt.Switch) {
			mark = "   <-- injected fault"
		}
		fmt.Printf("  #%d %v%s\n", i+1, c, mark)
	}
}
