package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Allocfree is the static half of the hot-path allocation budget. The
// dynamic half already exists: the AllocsPerRun guard tests pin the packet
// pipeline at 0 allocs/op. Those guards are exact but reactive — they fire
// after an allocation regresses, and only on the inputs the benchmark
// drives. This analyzer is proactive and path-complete: it walks the call
// graph from the event loop and the dataplane packet hooks and flags every
// potential allocation site in reachable code, before any benchmark runs.
//
// The two views cross-check each other through the suppression format:
//
//	//mars:alloc <GuardTestName> <why the allocation is amortized>
//
// A static finding may only be excused by citing the dynamic AllocsPerRun
// guard that proves the site is amortized (pool refills, capacity-retained
// appends). Citing an unknown guard is itself a finding, and the test
// suite pins the analyzer's guard registry against the Test*Allocs
// functions actually present in the tree — so neither view can drift from
// the other silently.
//
// Flagged in reachable envelope code: composite literals that escape via
// &T{...}, slice/map/chan literals, make/new, append, closures, fmt calls,
// and non-pointer-to-interface conversions (boxing). Arguments to panic
// are exempt: a panicking packet path is already off the performance cliff.
var Allocfree = &Analyzer{
	Name:         "allocfree",
	Doc:          "statically forbid allocation sites reachable from the packet hot path",
	Directive:    "alloc",
	SelfSuppress: true,
	RunModule:    runAllocfree,
}

// allocfreeRoots: the netsim event loop plus the dataplane packet hooks
// with non-promoted bodies (OnSwitchArrival/OnDeliver promote to
// NopHooks's empty methods). Corpora mark roots with //mars:root.
var allocfreeRoots = []string{
	"mars/internal/netsim.Simulator.Run",
	"mars/internal/netsim.Simulator.RunAll",
	"mars/internal/netsim.Simulator.RunShardWindow",
	"mars/internal/dataplane.Program.OnForward",
	"mars/internal/dataplane.Program.OnDrop",
	"mars/internal/dataplane.Program.OnDeliver",
	"mars/internal/dataplane.Program.OnSwitchArrival",
}

// allocEnvelope is the set of packages that participate in the per-packet
// hot path. Reachability is restricted to it: the event loop's dynamic
// dispatch (e.fn() for control-plane callbacks) and out-of-envelope
// interface implementations (telemetry codecs under study, notification
// sinks) are cold-path by design and are excluded — the typed-event
// agenda exists precisely so the packet path never runs a closure.
var allocEnvelope = map[string]bool{
	"mars/internal/netsim":    true,
	"mars/internal/dataplane": true,
	"mars/internal/pathid":    true,
	"mars/internal/topology":  true,
}

// allocGuards registers the dynamic AllocsPerRun guard tests that a
// //mars:alloc suppression may cite. TestAllocfreeGuardRegistry pins this
// set against the Test*Allocs functions actually present in the repo.
var allocGuards = map[string]bool{
	"TestNetsimStepAllocs":         true,
	"TestPerHopFoldAllocs":         true,
	"TestPromoteAllocs":            true,
	"TestSinkRecordAllocs":         true,
	"TestProgramSteadyStateAllocs": true,
	"TestShardedStepAllocs":        true,
	"TestStreamIngestAllocs":       true,
}

// AllocGuardTests returns the registered guard-test names, sorted.
func AllocGuardTests() []string {
	out := make([]string, 0, len(allocGuards))
	for g := range allocGuards { //mars:mapiter-ok the collected names are fully sorted below before return
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func runAllocfree(p *ModulePass) {
	g := p.Graph()
	roots := moduleRoots(p, g, allocfreeRoots)
	if len(roots) == 0 {
		return
	}
	inEnvelope := func(pkg *Package) bool {
		// Module packages are gated by the envelope list; bare-directory
		// corpus loads (paths without the module prefix) are all-in.
		if strings.HasPrefix(pkg.Path, "mars") {
			return allocEnvelope[pkg.Path]
		}
		return true
	}
	reach := g.Reachable(roots, func(from *CGNode, e CGEdge) bool {
		if e.Kind == EdgeDynamic || e.Kind == EdgeClosure {
			return false
		}
		return inEnvelope(e.To.Pkg)
	})
	for _, n := range reach.Order {
		if n.Body == nil || !inEnvelope(n.Pkg) {
			continue
		}
		checkAllocBody(p, reach, n)
	}
}

// reportAlloc applies the cite-a-guard suppression protocol to one static
// allocation finding.
func reportAlloc(p *ModulePass, reach *ReachResult, n *CGNode, pos token.Pos, what string) {
	reason, ok := p.DirectiveNear(pos, "alloc")
	if ok {
		guard, _, _ := strings.Cut(reason, " ")
		if allocGuards[guard] {
			return
		}
		p.Reportf(pos,
			"//mars:alloc must cite the AllocsPerRun guard test that pins this site (got %q; known guards: %s)",
			guard, strings.Join(AllocGuardTests(), ", "))
		return
	}
	p.Reportf(pos,
		"%s on the packet hot path (reachable via %s); eliminate it, or cite the dynamic guard proving it amortized: //mars:alloc <GuardTest> <why>",
		what, reach.ChainString(n))
}

// checkAllocBody scans one hot-path-reachable function for potential
// allocation sites. Nested literals are flagged as closures where they
// appear; their bodies are only scanned if independently reachable.
func checkAllocBody(p *ModulePass, reach *ReachResult, n *CGNode) {
	info := n.Pkg.Info
	var walk func(ast.Node)
	walk = func(node ast.Node) {
		walkChildren(node, func(c ast.Node) {
			switch x := c.(type) {
			case *ast.FuncLit:
				reportAlloc(p, reach, n, x.Pos(), "closure allocation")
				return
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						reportAlloc(p, reach, n, x.Pos(), "escaping composite literal (&T{...})")
						walk(x.X) // still scan element expressions
						return
					}
				}
			case *ast.CompositeLit:
				if t := info.TypeOf(x); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						reportAlloc(p, reach, n, x.Pos(), "slice/map literal allocation")
					}
				}
			case *ast.CallExpr:
				if skip := checkAllocCall(p, reach, n, x); skip {
					return
				}
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE {
					for i, lhs := range x.Lhs {
						if i < len(x.Rhs) {
							checkBoxing(p, reach, n, x.Rhs[i], info.TypeOf(lhs))
						}
					}
				}
			case *ast.ReturnStmt:
				checkReturnBoxing(p, reach, n, x)
			}
			walk(c)
		})
	}
	walk(n.Body)
}

// checkAllocCall handles call expressions: allocating builtins, fmt calls,
// boxing at argument positions. Returns true when the walk should not
// descend (panic arguments are cold-path).
func checkAllocCall(p *ModulePass, reach *ReachResult, n *CGNode, call *ast.CallExpr) (skip bool) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return true // failing path; allocation cost is irrelevant
			case "append":
				reportAlloc(p, reach, n, call.Pos(), "append (may grow the backing array)")
			case "make":
				reportAlloc(p, reach, n, call.Pos(), "make allocation")
			case "new":
				reportAlloc(p, reach, n, call.Pos(), "new allocation")
			}
			return false
		}
	}
	if fn := calleeFuncInfo(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			reportAlloc(p, reach, n, call.Pos(), "fmt call (formats through interfaces, always allocates)")
			return false
		}
		// Boxing at parameter positions of a resolved call.
		if sig, ok := fn.Type().(*types.Signature); ok {
			checkArgBoxing(p, reach, n, call, sig)
		}
	} else if sig, ok := typeAsSignature(info.TypeOf(call.Fun)); ok {
		checkArgBoxing(p, reach, n, call, sig)
	}
	return false
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// checkArgBoxing flags concrete non-pointer values passed in interface
// parameter slots.
func checkArgBoxing(p *ModulePass, reach *ReachResult, n *CGNode, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len():
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = s.Elem()
			}
		}
		if pt != nil {
			checkBoxing(p, reach, n, arg, pt)
		}
	}
}

// checkReturnBoxing flags boxing at return sites against the enclosing
// function's result types.
func checkReturnBoxing(p *ModulePass, reach *ReachResult, n *CGNode, ret *ast.ReturnStmt) {
	var sig *types.Signature
	if n.Fn != nil {
		sig, _ = n.Fn.Type().(*types.Signature)
	} else if n.Lit != nil {
		sig, _ = typeAsSignature(n.Pkg.Info.TypeOf(n.Lit))
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		checkBoxing(p, reach, n, res, sig.Results().At(i).Type())
	}
}

// checkBoxing reports a concrete, non-pointer-shaped value converting to
// an interface destination — the conversion heap-allocates the value.
// Pointers, interfaces, and nil are exempt (pointer-to-interface stores,
// like Packet.Meta holding *PacketMeta, do not allocate).
func checkBoxing(p *ModulePass, reach *ReachResult, n *CGNode, val ast.Expr, dest types.Type) {
	if dest == nil {
		return
	}
	if _, ok := dest.Underlying().(*types.Interface); !ok {
		return
	}
	vt := n.Pkg.Info.TypeOf(val)
	if vt == nil {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan:
		return
	case *types.Basic:
		if vt.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	reportAlloc(p, reach, n, val.Pos(),
		"interface boxing (concrete value converted to "+dest.String()+")")
}
