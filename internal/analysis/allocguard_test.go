package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAllocGuardRegistry is the static/dynamic cross-check: the analyzer's
// guard registry must exactly match the Test*Allocs functions in the repo
// that actually call testing.AllocsPerRun, and every //mars:alloc
// suppression on the tree must cite a registered guard. Neither view can
// drift from the other without failing here.
func TestAllocGuardRegistry(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dynamic := make(map[string]bool)
	var citations []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, src, parser.ParseComments)
		if err != nil {
			return err
		}
		// Actual directive comments only (same shape collectDirectives
		// accepts); prose mentioning the protocol does not count.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//mars:alloc ")
				if !ok {
					continue
				}
				if fields := strings.Fields(rest); len(fields) > 0 {
					citations = append(citations, path+": "+fields[0])
				}
			}
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, "Test") || !strings.HasSuffix(name, "Allocs") {
				continue
			}
			usesAllocsPerRun := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "AllocsPerRun" {
					usesAllocsPerRun = true
				}
				return !usesAllocsPerRun
			})
			if usesAllocsPerRun {
				dynamic[name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var found []string
	for name := range dynamic {
		found = append(found, name)
	}
	sort.Strings(found)
	registered := AllocGuardTests()
	if strings.Join(found, ",") != strings.Join(registered, ",") {
		t.Errorf("guard registry drift:\n  Test*Allocs(AllocsPerRun) in tree: %v\n  allocGuards registry:              %v\nupdate allocGuards in allocfree.go to match the tree",
			found, registered)
	}

	if len(citations) == 0 {
		t.Fatalf("no //mars:alloc citations found in the tree; the suppression scan is broken")
	}
	for _, c := range citations {
		guard := c[strings.LastIndex(c, " ")+1:]
		if !allocGuards[guard] {
			t.Errorf("//mars:alloc cites unregistered guard %q (%s)", guard, c)
		}
	}
}
