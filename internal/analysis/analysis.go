// Package analysis is mars-lint's static-analysis engine: a stdlib-only
// (go/parser + go/ast + go/types) framework plus the repo-specific
// analyzers that machine-check MARS's determinism and wire invariants.
// Nothing here imports outside the standard library, so the suite builds
// and runs offline.
//
// The suite exists because MARS's evaluation rests on reproducible seeded
// runs: the PathID hash chain, the penalty-factor reservoir, and the FSM
// mining + SBFL ranking must produce byte-identical culprit lists for a
// given seed. The analyzers encode the invariants that keep that true:
//
//   - detrand:   no ambient wall-clock or global-RNG calls in
//     deterministic code (suppress: //mars:wallclock)
//   - mapiter:   no order-sensitive writes inside `range` over a map
//     (suppress: //mars:mapiter-ok)
//   - seedflow:  rand.NewSource arguments derive from config/seed
//     parameters, never literals (suppress: //mars:fixedseed)
//   - wirewidth: encode/decode symmetry and field-width accounting for
//     the wire formats in wire.go (11-byte telemetry payload)
//   - lockheld:  fields documented "guarded by <mu>" are only touched
//     under the lock (suppress: //mars:locked on the caller-holds-lock
//     function)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one check of the suite. Single-package analyzers set Run;
// interprocedural analyzers set RunModule and receive every package of the
// load at once, plus the shared call graph.
type Analyzer struct {
	Name string
	// Doc is the one-line description shown by mars-lint -list.
	Doc string
	// Directive, when non-empty, names the //mars:<directive> suppression:
	// a finding whose line (or the line above it) carries the directive is
	// dropped by the driver (unless SelfSuppress is set).
	Directive string
	// ExtraDirectives lists additional //mars: names the analyzer consults
	// itself via Suppressed, so stale-directive accounting knows which
	// analyzers must have run before an unused directive is declared dead.
	ExtraDirectives []string
	// SelfSuppress disables the driver's automatic directive drop: the
	// analyzer validates and honors its directive itself (allocfree checks
	// that a suppression cites a real AllocsPerRun guard before accepting
	// it, which the blanket drop could not express).
	SelfSuppress bool
	Run          func(p *Pass)
	RunModule    func(p *ModulePass)
}

// consumes reports whether the analyzer honors the named directive.
func (a *Analyzer) consumes(name string) bool {
	if a.Directive == name {
		return true
	}
	for _, d := range a.ExtraDirectives {
		if d == name {
			return true
		}
	}
	return false
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
	ignore   bool // ignore suppression directives (testing only)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (nil if unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Suppressed reports whether pos's line or the line directly above carries
// the named //mars: directive.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	if p.ignore {
		return false
	}
	position := p.Pkg.Fset.Position(pos)
	return p.Pkg.hasDirective(position.Filename, position.Line, directive)
}

// ModulePass is one (analyzer, load) execution for interprocedural
// analyzers: every package of the load, sharing one FileSet, plus the call
// graph (built once per load and shared between analyzers).
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Fset     *token.FileSet
	graph    **CallGraph // lazily built, shared across the load's analyzers
	byFile   map[string]*Package
	report   func(Diagnostic)
	ignore   bool
}

// Graph returns the load's call graph, building it on first use.
func (p *ModulePass) Graph() *CallGraph {
	if *p.graph == nil {
		*p.graph = BuildCallGraph(p.Pkgs)
	}
	return *p.graph
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether pos's line or the line directly above carries
// the named //mars: directive.
func (p *ModulePass) Suppressed(pos token.Pos, directive string) bool {
	if p.ignore {
		return false
	}
	position := p.Fset.Position(pos)
	pkg := p.byFile[position.Filename]
	return pkg != nil && pkg.hasDirective(position.Filename, position.Line, directive)
}

// DirectiveNear returns the named directive on pos's line or the line
// above (marking it used), plus its free-text reason. Analyzers that
// validate suppression contents (allocfree's guard citations) use this
// instead of the boolean Suppressed.
func (p *ModulePass) DirectiveNear(pos token.Pos, name string) (reason string, ok bool) {
	if p.ignore {
		return "", false
	}
	position := p.Fset.Position(pos)
	pkg := p.byFile[position.Filename]
	if pkg == nil {
		return "", false
	}
	byLine := pkg.directives[position.Filename]
	if byLine == nil {
		return "", false
	}
	for _, l := range [2]int{position.Line, position.Line - 1} {
		for _, d := range byLine[l] {
			if d.name == name {
				d.used = true
				return d.reason, true
			}
		}
	}
	return "", false
}

// PkgOf returns the package owning the file at pos, or nil.
func (p *ModulePass) PkgOf(pos token.Pos) *Package {
	return p.byFile[p.Fset.Position(pos).Filename]
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand, Mapiter, Seedflow, Wirewidth, Lockheld,
		Detflow, Allocfree, Lifecycle, Exhaustcase,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Findings suppressed by their analyzer's
// directive are dropped here, so every analyzer gets uniform suppression
// semantics for free. After the analyzers finish, any //mars: directive
// that excused nothing is itself reported (staledirective), provided every
// analyzer that could have consumed it actually ran.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runImpl(pkgs, analyzers, false)
}

// RunIgnoringDirectives executes the analyzers with every //mars:
// suppression disabled, so tests can prove each directive on the tree is
// load-bearing: the findings it excuses must resurface without it.
func RunIgnoringDirectives(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runImpl(pkgs, analyzers, true)
}

func runImpl(pkgs []*Package, analyzers []*Analyzer, ignore bool) []Diagnostic {
	for _, pkg := range pkgs {
		pkg.resetDirectiveUse()
	}
	var out []Diagnostic
	reportFor := func(a *Analyzer, lookup func(d Diagnostic) *Package) func(Diagnostic) {
		return func(d Diagnostic) {
			if !ignore && !a.SelfSuppress && a.Directive != "" {
				if pkg := lookup(d); pkg != nil && pkg.hasDirective(d.File, d.Line, a.Directive) {
					return
				}
			}
			out = append(out, d)
		}
	}

	// Single-package passes.
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, ignore: ignore}
			pass.report = reportFor(a, func(Diagnostic) *Package { return pkg })
			a.Run(pass)
		}
	}

	// Module passes, grouped by FileSet: packages loaded together share
	// one FileSet and one call graph; bare-directory loads each form
	// their own group.
	type group struct {
		fset   *token.FileSet
		pkgs   []*Package
		byFile map[string]*Package
		graph  *CallGraph
	}
	var groups []*group
	byFset := make(map[*token.FileSet]*group)
	for _, pkg := range pkgs {
		grp := byFset[pkg.Fset]
		if grp == nil {
			grp = &group{fset: pkg.Fset, byFile: make(map[string]*Package)}
			byFset[pkg.Fset] = grp
			groups = append(groups, grp)
		}
		grp.pkgs = append(grp.pkgs, pkg)
		for file := range pkg.directives { //mars:mapiter-ok byFile is itself an unordered index; insertion order cannot show
			grp.byFile[file] = pkg
		}
		for _, f := range pkg.Files {
			grp.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	for _, grp := range groups {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			pass := &ModulePass{
				Analyzer: a,
				Pkgs:     grp.pkgs,
				Fset:     grp.fset,
				graph:    &grp.graph,
				byFile:   grp.byFile,
				ignore:   ignore,
			}
			lookup := func(d Diagnostic) *Package { return grp.byFile[d.File] }
			pass.report = reportFor(a, lookup)
			a.RunModule(pass)
		}
	}

	if !ignore {
		out = append(out, staleDirectives(pkgs, analyzers)...)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// structuralDirectives are //mars: markers that never suppress a finding
// and so are exempt from staleness: "root" marks call-graph entry points
// in golden corpora.
var structuralDirectives = map[string]bool{"root": true}

// staleDirectives reports //mars: comments that excused nothing. A
// directive is stale only when every analyzer of the full suite that
// consumes it was part of this run (a partial -only run must not condemn
// a directive its consumer never got to use); a directive no analyzer
// recognizes at all is always a finding.
func staleDirectives(pkgs []*Package, ran []*Analyzer) []Diagnostic {
	ranSet := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	allConsumersRan := func(name string) (known bool, covered bool) {
		covered = true
		for _, a := range All() {
			if !a.consumes(name) {
				continue
			}
			known = true
			if !ranSet[a.Name] {
				covered = false
			}
		}
		return known, covered
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, byLine := range pkg.directives {
			for _, ds := range byLine {
				for _, d := range ds {
					if d.used || structuralDirectives[d.name] {
						continue
					}
					known, covered := allConsumersRan(d.name)
					diag := Diagnostic{
						Analyzer: "staledirective",
						Pos:      d.pos,
						File:     d.pos.Filename,
						Line:     d.pos.Line,
						Col:      d.pos.Column,
					}
					switch {
					case !known:
						diag.Message = fmt.Sprintf("unknown directive //mars:%s; no analyzer consumes it (typo?)", d.name)
					case covered:
						diag.Message = fmt.Sprintf("stale directive //mars:%s suppresses nothing; the finding it excused is gone — delete it", d.name)
					default:
						continue
					}
					out = append(out, diag) //mars:mapiter-ok diagnostics are position-sorted by runImpl before being returned
				}
			}
		}
	}
	return out
}

// rootIdent unwraps selector/index/paren/star chains to the base
// identifier: c.Bytes.X -> c, fs.pathCounts[k] -> fs, (*p).f -> p.
// Returns nil when the base is not a plain identifier (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil (calls
// through function values, builtins, conversions).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	return calleeFuncInfo(p.Pkg.Info, call)
}

// calleeFuncInfo is calleeFunc for callers that hold only type info.
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.ObjectOf(id).(*types.Func)
	return f
}

// ambientSink classifies a resolved callee as a nondeterminism sink:
// "time.Now"-style wall-clock reads or draws from the global math/rand
// generator. Returns "" for deterministic calls. detrand reports these at
// direct call sites; detflow reports them transitively along the call
// graph.
func ambientSink(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] && isPkgFunc(fn, "time", fn.Name()) {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !isPkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
			return "" // methods on an explicit *rand.Rand are fine
		}
		if globalRandAllowed[fn.Name()] {
			return ""
		}
		return "rand." + fn.Name()
	}
	return ""
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// exprString renders an expression compactly for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(...)")
	default:
		b.WriteString("expr")
	}
}
