// Package analysis is mars-lint's static-analysis engine: a stdlib-only
// (go/parser + go/ast + go/types) framework plus the repo-specific
// analyzers that machine-check MARS's determinism and wire invariants.
// Nothing here imports outside the standard library, so the suite builds
// and runs offline.
//
// The suite exists because MARS's evaluation rests on reproducible seeded
// runs: the PathID hash chain, the penalty-factor reservoir, and the FSM
// mining + SBFL ranking must produce byte-identical culprit lists for a
// given seed. The analyzers encode the invariants that keep that true:
//
//   - detrand:   no ambient wall-clock or global-RNG calls in
//     deterministic code (suppress: //mars:wallclock)
//   - mapiter:   no order-sensitive writes inside `range` over a map
//     (suppress: //mars:mapiter-ok)
//   - seedflow:  rand.NewSource arguments derive from config/seed
//     parameters, never literals (suppress: //mars:fixedseed)
//   - wirewidth: encode/decode symmetry and field-width accounting for
//     the wire formats in wire.go (11-byte telemetry payload)
//   - lockheld:  fields documented "guarded by <mu>" are only touched
//     under the lock (suppress: //mars:locked on the caller-holds-lock
//     function)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one check of the suite.
type Analyzer struct {
	Name string
	// Doc is the one-line description shown by mars-lint -list.
	Doc string
	// Directive, when non-empty, names the //mars:<directive> suppression:
	// a finding whose line (or the line above it) carries the directive is
	// dropped by the driver.
	Directive string
	Run       func(p *Pass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (nil if unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Suppressed reports whether pos's line or the line directly above carries
// the named //mars: directive.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	position := p.Pkg.Fset.Position(pos)
	return p.Pkg.hasDirective(position.Filename, position.Line, directive)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Mapiter, Seedflow, Wirewidth, Lockheld}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Findings suppressed by their analyzer's
// directive are dropped here, so every analyzer gets uniform suppression
// semantics for free.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			pass.report = func(d Diagnostic) {
				if a.Directive != "" && pkg.hasDirective(d.File, d.Line, a.Directive) {
					return
				}
				out = append(out, d)
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// rootIdent unwraps selector/index/paren/star chains to the base
// identifier: c.Bytes.X -> c, fs.pathCounts[k] -> fs, (*p).f -> p.
// Returns nil when the base is not a plain identifier (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil (calls
// through function values, builtins, conversions).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.ObjectOf(id).(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// exprString renders an expression compactly for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(...)")
	default:
		b.WriteString("expr")
	}
}
