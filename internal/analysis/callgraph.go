package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the engine: a static call graph
// over every loaded package, built from the same go/types information the
// single-function analyzers already use. The graph is deliberately
// conservative — interface calls fan out to every implementer, calls
// through function values fan out to every address-taken function of
// compatible arity — because the analyzers on top of it (detflow,
// allocfree, lifecycle) prove *absence* properties: "nothing reachable
// from the event loop reads the wall clock", "nothing reachable from the
// packet hooks allocates". Over-approximating reachability keeps those
// proofs sound; the cost is a suppression comment at the rare
// intentionally-nondeterministic site.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a call through an interface method, resolved
	// conservatively to every implementing type in the load.
	EdgeIface
	// EdgeDynamic is a call through a function value, resolved to every
	// address-taken function or literal of compatible arity.
	EdgeDynamic
	// EdgeClosure links a function to a literal it creates: the literal
	// may run whenever the creator has run, even if the call site is
	// elsewhere (stored callbacks, scheduled events).
	EdgeClosure
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	case EdgeDynamic:
		return "dynamic"
	case EdgeClosure:
		return "closure"
	}
	return "?"
}

// CGEdge is one outgoing call edge.
type CGEdge struct {
	Kind EdgeKind
	// Site is the call expression (or literal) position in the caller.
	Site token.Pos
	To   *CGNode
}

// CGNode is one function in the graph: either a declared function/method
// (Fn, Decl set) or a function literal (Lit set). Literals are first-class
// nodes rather than being merged into their creator, so a closure handed
// to a scheduler is reachable through its EdgeClosure/EdgeDynamic edges
// without pretending its body executes at creation time.
type CGNode struct {
	Fn   *types.Func   // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Decl *ast.FuncDecl // nil for literals
	Pkg  *Package
	Body *ast.BlockStmt
	Out  []CGEdge

	qname string
}

// QName is the node's qualified name: pkgpath.Func, pkgpath.Recv.Method
// (pointer receivers stripped), or parent.funcN for literals.
func (n *CGNode) QName() string { return n.qname }

// ShortName trims the import-path prefix for human-readable chains:
// mars/internal/netsim.Simulator.RunAll -> netsim.Simulator.RunAll.
func (n *CGNode) ShortName() string {
	if i := strings.LastIndex(n.qname, "/"); i >= 0 {
		return n.qname[i+1:]
	}
	return n.qname
}

// Pos is the declaration (or literal) position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// CallGraph is the static call graph over one load.
type CallGraph struct {
	// Nodes in deterministic build order (package path, file, position).
	Nodes []*CGNode
	byFn  map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
}

// NodeFor returns the node of a declared function, or nil. Generic
// instantiations are canonicalized to their origin.
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.byFn[fn.Origin()]
}

// NodeForLit returns the node of a function literal, or nil.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// ByQName returns the declared node with the given qualified name, or nil.
func (g *CallGraph) ByQName(qname string) *CGNode {
	for _, n := range g.Nodes {
		if n.qname == qname && n.Decl != nil {
			return n
		}
	}
	return nil
}

// funcQName is the root-matching name of a declared function:
// pkgpath.Name for package functions, pkgpath.Recv.Name for methods with
// pointer stars stripped, so "mars/internal/netsim.Simulator.Run" matches
// the pointer-receiver method too.
func funcQName(fn *types.Func) string {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// addrTarget is one function that had its address taken (referenced
// outside call position), with the arity of the referencing expression so
// dynamic calls can be matched by shape.
type addrTarget struct {
	node     *CGNode
	params   int
	variadic bool
}

// BuildCallGraph builds the graph over the packages of one load. All
// packages must share a FileSet (LoadModule guarantees this).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byFn:  make(map[*types.Func]*CGNode),
		byLit: make(map[*ast.FuncLit]*CGNode),
	}

	// Pass 1: nodes for every declared function and every literal,
	// literals named after their innermost enclosing node.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					n := &CGNode{Fn: fn, Decl: d, Pkg: pkg, Body: d.Body, qname: funcQName(fn)}
					g.byFn[fn.Origin()] = n
					g.Nodes = append(g.Nodes, n)
					g.addLits(pkg, n, d.Body)
				case *ast.GenDecl:
					// Literals in package-level var initializers.
					g.addLits(pkg, nil, d)
				}
			}
		}
	}

	// Pass 2: address-taken functions and literals, in deterministic
	// order. A reference is address-taken when it is not the operand of a
	// call; literals count unless immediately invoked.
	var taken []addrTarget
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectAddrTaken(pkg, g, f, &taken)
		}
	}

	// Pass 3: concrete named types for conservative interface resolution.
	named := concreteNamedTypes(pkgs)

	// Pass 4: edges.
	for _, n := range g.Nodes {
		if n.Body != nil {
			addEdges(g, n, taken, named)
		}
	}
	return g
}

// addLits creates literal nodes under root, tracking nesting so each
// literal's qname reflects its creator.
func (g *CallGraph) addLits(pkg *Package, enclosing *CGNode, root ast.Node) {
	if root == nil {
		return
	}
	base := pkg.Path
	if enclosing != nil {
		base = enclosing.qname
	}
	counter := 0
	var walk func(n ast.Node, parent *CGNode)
	walk = func(n ast.Node, parent *CGNode) {
		walkChildren(n, func(c ast.Node) {
			if lit, ok := c.(*ast.FuncLit); ok {
				counter++
				name := base
				if parent != nil && parent.Lit != nil {
					name = parent.qname
				}
				node := &CGNode{
					Lit:   lit,
					Pkg:   pkg,
					Body:  lit.Body,
					qname: fmt.Sprintf("%s.func%d", name, counter),
				}
				g.byLit[lit] = node
				g.Nodes = append(g.Nodes, node)
				walk(lit.Body, node)
				return
			}
			walk(c, parent)
		})
	}
	walk(root, enclosing)
}

// collectAddrTaken appends every address-taken function reference of f.
func collectAddrTaken(pkg *Package, g *CallGraph, f *ast.File, taken *[]addrTarget) {
	callFun := make(map[ast.Expr]bool)
	handledSel := make(map[*ast.Ident]bool)
	add := func(e ast.Expr, node *CGNode) {
		if node == nil {
			return
		}
		sig, ok := pkg.Info.TypeOf(e).(*types.Signature)
		if !ok {
			return
		}
		*taken = append(*taken, addrTarget{node: node, params: sig.Params().Len(), variadic: sig.Variadic()})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Children are visited after this node, so the mark is in
			// place before the operand is reached. Instantiation indexes
			// (g[T](x)) keep the inner identifier in call position too.
			fun := ast.Unparen(x.Fun)
			callFun[fun] = true
			switch ix := fun.(type) {
			case *ast.IndexExpr:
				callFun[ast.Unparen(ix.X)] = true
			case *ast.IndexListExpr:
				callFun[ast.Unparen(ix.X)] = true
			}
		case *ast.FuncLit:
			if !callFun[x] {
				add(x, g.byLit[x])
			}
		case *ast.SelectorExpr:
			handledSel[x.Sel] = true
			if callFun[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				add(x, g.NodeFor(fn))
			}
		case *ast.Ident:
			if handledSel[x] || callFun[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				add(x, g.NodeFor(fn))
			}
		}
		return true
	})
}

// concreteNamedTypes lists every non-interface, non-generic named type of
// the load, sorted for deterministic interface fan-out.
func concreteNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// addEdges walks one node's body (not descending into nested literals,
// which are their own nodes) and appends its call edges.
func addEdges(g *CallGraph, n *CGNode, taken []addrTarget, named []*types.Named) {
	var walk func(ast.Node)
	walk = func(node ast.Node) {
		walkChildren(node, func(c ast.Node) {
			if lit, ok := c.(*ast.FuncLit); ok {
				if to := g.byLit[lit]; to != nil {
					n.Out = append(n.Out, CGEdge{Kind: EdgeClosure, Site: lit.Pos(), To: to})
				}
				return // literal body is its own node
			}
			if call, ok := c.(*ast.CallExpr); ok {
				addCallEdges(g, n, call, taken, named)
			}
			walk(c)
		})
	}
	walk(n.Body)
}

// addCallEdges classifies one call expression and appends its edges.
func addCallEdges(g *CallGraph, n *CGNode, call *ast.CallExpr, taken []addrTarget, named []*types.Named) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked literal: a plain static edge.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if to := g.byLit[lit]; to != nil {
			n.Out = append(n.Out, CGEdge{Kind: EdgeStatic, Site: call.Pos(), To: to})
		}
		return
	}
	// Conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	// Unwrap explicit generic instantiation: f[T](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if types.IsInterface(recv) {
				ifaceEdges(g, n, call, recv, sel.Obj().Name(), named)
				return
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel]
		}
	default:
		// A call through an arbitrary function-valued expression
		// (field, slice element, map entry): dynamic.
		dynamicEdges(g, n, call, taken)
		return
	}

	switch o := obj.(type) {
	case *types.Builtin, nil:
		return
	case *types.Func:
		if to := g.NodeFor(o); to != nil {
			n.Out = append(n.Out, CGEdge{Kind: EdgeStatic, Site: call.Pos(), To: to})
		}
		return
	default:
		// A variable (parameter, local, field) of function type.
		dynamicEdges(g, n, call, taken)
	}
}

// ifaceEdges appends one EdgeIface per implementing type's method.
func ifaceEdges(g *CallGraph, n *CGNode, call *ast.CallExpr, recv types.Type, method string, named []*types.Named) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	seen := make(map[*CGNode]bool)
	for _, t := range named {
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, t.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if to := g.NodeFor(fn); to != nil && !seen[to] {
			seen[to] = true
			n.Out = append(n.Out, CGEdge{Kind: EdgeIface, Site: call.Pos(), To: to})
		}
	}
}

// dynamicEdges appends one EdgeDynamic per address-taken target whose
// arity is compatible with the call.
func dynamicEdges(g *CallGraph, n *CGNode, call *ast.CallExpr, taken []addrTarget) {
	k := len(call.Args)
	spread := call.Ellipsis.IsValid()
	seen := make(map[*CGNode]bool)
	for _, t := range taken {
		ok := false
		switch {
		case t.variadic:
			ok = k >= t.params-1 || spread
		default:
			ok = k == t.params && !spread
		}
		if ok && !seen[t.node] {
			seen[t.node] = true
			n.Out = append(n.Out, CGEdge{Kind: EdgeDynamic, Site: call.Pos(), To: t.node})
		}
	}
}

// ReachResult is one reachability query's answer: the visited set plus,
// for each visited node, the edge it was first discovered through, so
// analyzers can print a concrete root-to-sink call chain.
type ReachResult struct {
	// Order is the BFS visit order (roots first).
	Order []*CGNode
	// Parent maps each visited non-root node to its discoverer.
	Parent map[*CGNode]*CGNode
	// Via maps each visited non-root node to the call site it was
	// discovered through.
	Via map[*CGNode]token.Pos
}

// Has reports whether n was reached.
func (r *ReachResult) Has(n *CGNode) bool {
	if r.Parent == nil {
		return false
	}
	_, ok := r.Parent[n]
	return ok
}

// Chain returns the discovery path root..n inclusive.
func (r *ReachResult) Chain(n *CGNode) []*CGNode {
	var rev []*CGNode
	for cur := n; cur != nil; cur = r.Parent[cur] {
		rev = append(rev, cur)
		if r.Parent[cur] == nil {
			break
		}
	}
	out := make([]*CGNode, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// ChainString renders the discovery path as "a -> b -> c".
func (r *ReachResult) ChainString(n *CGNode) string {
	parts := r.Chain(n)
	names := make([]string, len(parts))
	for i, p := range parts {
		names[i] = p.ShortName()
	}
	return strings.Join(names, " -> ")
}

// Reachable runs a deterministic BFS from roots. filter, when non-nil,
// decides per edge whether to traverse it; roots are always visited.
func (g *CallGraph) Reachable(roots []*CGNode, filter func(from *CGNode, e CGEdge) bool) *ReachResult {
	r := &ReachResult{
		Parent: make(map[*CGNode]*CGNode),
		Via:    make(map[*CGNode]token.Pos),
	}
	var queue []*CGNode
	for _, root := range roots {
		if root == nil || r.Has(root) {
			continue
		}
		r.Parent[root] = nil
		r.Order = append(r.Order, root)
		queue = append(queue, root)
	}
	// Roots map to nil parents; distinguish visited via presence in map.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Out {
			if filter != nil && !filter(cur, e) {
				continue
			}
			if _, seen := r.Parent[e.To]; seen {
				continue
			}
			r.Parent[e.To] = cur
			r.Via[e.To] = e.Site
			r.Order = append(r.Order, e.To)
			queue = append(queue, e.To)
		}
	}
	return r
}
