package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCallGraph pins the engine's resolution rules on the callgraph
// corpus: static calls, conservative interface dispatch (every
// implementer), method values, and function-typed fields, each through
// its declared edge kind.
func TestCallGraph(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})
	node := func(q string) *CGNode {
		t.Helper()
		n := g.ByQName(q)
		if n == nil {
			t.Fatalf("no call-graph node %q", q)
		}
		return n
	}
	root := node("callgraph.Root")

	all := g.Reachable([]*CGNode{root}, nil)
	for _, q := range []string{
		"callgraph.english.greet", // interface dispatch
		"callgraph.french.greet",  // conservative: every implementer
		"callgraph.helperEnglish", // static, through a dispatched method
		"callgraph.helperFrench",
		"callgraph.fieldTarget", // function-typed struct field
		"callgraph.methodValueUser",
	} {
		if !all.Has(node(q)) {
			t.Errorf("%s not reachable from Root", q)
		}
	}
	if all.Has(node("callgraph.isolated")) {
		t.Errorf("isolated must not be reachable from Root")
	}

	// The field call h.fn(1) is a dynamic edge; interface dispatch is not.
	noDyn := g.Reachable([]*CGNode{root}, func(_ *CGNode, e CGEdge) bool { return e.Kind != EdgeDynamic })
	if noDyn.Has(node("callgraph.fieldTarget")) {
		t.Errorf("fieldTarget reachable without dynamic edges; function-typed field calls must be EdgeDynamic")
	}
	if !noDyn.Has(node("callgraph.french.greet")) {
		t.Errorf("french.greet unreachable without dynamic edges; interface dispatch must be EdgeIface")
	}

	// Without interface dispatch, english.greet is still reached as a
	// method value (mv := e.greet; mv() is a dynamic edge); french.greet
	// has no other route.
	noIface := g.Reachable([]*CGNode{root}, func(_ *CGNode, e CGEdge) bool { return e.Kind != EdgeIface })
	if noIface.Has(node("callgraph.helperFrench")) {
		t.Errorf("helperFrench reachable without interface edges")
	}
	if !noIface.Has(node("callgraph.english.greet")) {
		t.Errorf("english.greet unreachable without interface edges; method values must be address-taken dynamic targets")
	}

	chain := all.ChainString(node("callgraph.helperFrench"))
	if !strings.HasPrefix(chain, "callgraph.Root") || !strings.Contains(chain, "french.greet") {
		t.Errorf("chain to helperFrench = %q; want Root -> ... -> french.greet -> helperFrench", chain)
	}
}
