package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Detflow is the interprocedural successor to detrand: instead of flagging
// direct ambient-nondeterminism calls wherever they appear, it walks the
// call graph from the roots whose output must be a pure function of the
// seed — the simulator event loop, the trial harness, and RCA — and flags
// every transitively reachable nondeterminism source with the concrete
// call chain that reaches it. The chain is the point: when the ROADMAP's
// sharded event heaps and streaming diagnosis land, the function that
// reads the clock will be three indirections away from the event loop,
// and a direct-call check would never see it.
//
// Sinks and their suppressions (placed at the sink site, so the existing
// //mars:wallclock comments keep working unchanged):
//
//   - wall-clock / global math/rand calls ........ //mars:wallclock
//   - goroutine spawns (`go` statements) ......... //mars:sync
//   - order-sensitive map-range hazards .......... //mars:mapiter-ok
var Detflow = &Analyzer{
	Name:            "detflow",
	Doc:             "taint-track nondeterminism reachable from simulator/harness/rca entry points",
	Directive:       "wallclock",
	ExtraDirectives: []string{"sync", "mapiter-ok"},
	RunModule:       runDetflow,
}

// detflowRoots are the deterministic cores: the netsim event loop (the
// per-event "step" that BenchmarkNetsimStep times), the harness trial
// executor whose output must be byte-identical at any worker count, and
// the RCA entry point that turns a diagnosis into a ranked culprit list.
// Golden corpora mark their roots with //mars:root instead.
var detflowRoots = []string{
	"mars/internal/netsim.Simulator.Run",
	"mars/internal/netsim.Simulator.RunAll",
	"mars/internal/harness.Run",
	"mars/internal/rca.Analyzer.Analyze",
}

func runDetflow(p *ModulePass) {
	g := p.Graph()
	roots := moduleRoots(p, g, detflowRoots)
	if len(roots) == 0 {
		return
	}
	reach := g.Reachable(roots, nil)
	for _, n := range reach.Order {
		if n.Body == nil || skipDetflowPkg(n.Pkg) {
			continue
		}
		checkDetflowBody(p, reach, n)
	}
}

// skipDetflowPkg mirrors detrand's exemption for demo programs.
func skipDetflowPkg(pkg *Package) bool {
	return strings.HasPrefix(pkg.Path, "mars/examples")
}

// checkDetflowBody scans one reachable function for nondeterminism sinks.
// Nested literals are their own call-graph nodes and are scanned when (if)
// reached, so the walk does not descend into them.
func checkDetflowBody(p *ModulePass, reach *ReachResult, n *CGNode) {
	info := n.Pkg.Info
	var walk func(ast.Node)
	walk = func(node ast.Node) {
		walkChildren(node, func(c ast.Node) {
			switch x := c.(type) {
			case *ast.FuncLit:
				return // its own node
			case *ast.GoStmt:
				if !p.Suppressed(x.Pos(), "sync") {
					p.Reportf(x.Pos(),
						"goroutine spawned inside the deterministic core (via %s); unsynchronized scheduling breaks seed-reproducibility — annotate //mars:sync with the ordering argument if output order is externally enforced",
						reach.ChainString(n))
				}
			case *ast.CallExpr:
				if sink := ambientSink(calleeFuncInfo(info, x)); sink != "" {
					if !p.Suppressed(x.Pos(), "wallclock") {
						p.Reportf(x.Pos(),
							"%s reachable from the deterministic core via %s; take time/randomness from the simulator, or annotate //mars:wallclock if this is wall-time benchmarking",
							sink, reach.ChainString(n))
					}
				}
			case *ast.RangeStmt:
				// A mapiter-ok on the range line (or on the hazardous
				// write itself) clears the loop for detflow too: the
				// order-independence argument holds regardless of how the
				// loop was reached.
				if isMapRange(n.Pkg, x) && !p.Suppressed(x.Pos(), "mapiter-ok") {
					mapRangeHazards(n.Pkg, x, func(pos token.Pos, format string, args ...any) {
						if p.Suppressed(pos, "mapiter-ok") {
							return
						}
						p.Reportf(pos,
							"order-sensitive map iteration reachable from the deterministic core via %s; iterate det.Keys or annotate //mars:mapiter-ok",
							reach.ChainString(n))
					})
				}
			}
			walk(c)
		})
	}
	walk(n.Body)
}

// moduleRoots resolves the given qualified names to call-graph nodes and
// adds any function whose declaration carries //mars:root — the way golden
// corpora (whose package path is just the directory base) declare entry
// points.
func moduleRoots(p *ModulePass, g *CallGraph, qnames []string) []*CGNode {
	want := make(map[string]bool, len(qnames))
	for _, q := range qnames {
		want[q] = true
	}
	var out []*CGNode
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		if want[n.QName()] {
			out = append(out, n)
			continue
		}
		pos := p.Fset.Position(n.Decl.Pos())
		if pkg := p.byFile[pos.Filename]; pkg != nil && pkg.hasDirective(pos.Filename, pos.Line, "root") {
			out = append(out, n)
		}
	}
	return out
}
