package analysis

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the time package entry points that read the ambient
// wall clock or timer wheel. Simulated components must take time from
// netsim.Simulator; only benchmarking harnesses may read the real clock,
// and they say so with //mars:wallclock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

// globalRandAllowed are the math/rand package-level functions that mint
// explicit generators instead of touching the ambient global one. Their
// seed arguments are policed separately by seedflow.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Detrand forbids ambient nondeterminism: wall-clock reads and the global
// math/rand generator. Every random draw in MARS flows from a seeded
// *rand.Rand so that a run is a pure function of its seed; every timestamp
// flows from the simulator clock. A call that legitimately needs the real
// clock (wall-time benchmarking) carries //mars:wallclock.
var Detrand = &Analyzer{
	Name:      "detrand",
	Doc:       "forbid wall-clock and global math/rand calls in deterministic code",
	Directive: "wallclock",
	Run:       runDetrand,
}

func runDetrand(p *Pass) {
	if strings.HasPrefix(p.Pkg.Path, "mars/examples") {
		return // demo programs, not part of the deterministic pipeline
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockFuncs[fn.Name()] && isPkgFunc(fn, "time", fn.Name()) {
					p.Reportf(call.Pos(),
						"ambient wall clock: time.%s couples results to real time; use the simulator clock, or annotate //mars:wallclock if this is wall-time benchmarking", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !isPkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
					return true // methods on an explicit *rand.Rand are fine
				}
				if globalRandAllowed[fn.Name()] {
					return true
				}
				if fn.Name() == "Seed" {
					p.Reportf(call.Pos(),
						"rand.Seed reseeds the process-global generator; build a local rand.New(rand.NewSource(seed)) instead")
					return true
				}
				p.Reportf(call.Pos(),
					"global RNG: rand.%s draws from the ambient generator; draw from a seeded *rand.Rand instead", fn.Name())
			}
			return true
		})
	}
}
