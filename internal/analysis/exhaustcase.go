package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustcase guards the repo's enum-like kind sets: fault kinds, drop
// reasons, event kinds, RCA cause levels. PR 6 added five fault kinds at
// once; the failure mode this analyzer exists for is the switch somewhere
// in RCA or the injector that silently keeps working on the old kinds and
// never sees the new ones. Any switch whose tag has an enum type (a
// defined integer/string type with two or more package-level constants)
// must either list every constant value in its cases or carry
// //mars:partial <why> stating which kinds are intentionally out of
// scope. A default clause does not excuse omissions: defaults are for
// invalid values, not for quietly absorbing newly added kinds.
var Exhaustcase = &Analyzer{
	Name:      "exhaustcase",
	Doc:       "require switches over enum-like kind sets to handle every constant",
	Directive: "partial",
	RunModule: runExhaustcase,
}

// enumSet is the constant universe of one enum-like named type.
type enumSet struct {
	named *types.Named
	// consts in declaration-sorted name order.
	consts []*types.Const
	// values is the set of exact constant values (dedupes aliases).
	values map[string]bool
}

func runExhaustcase(p *ModulePass) {
	enums := collectEnums(p.Pkgs)
	if len(enums) == 0 {
		return
	}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(p, pkg, sw, enums)
				return true
			})
		}
	}
}

// collectEnums finds every defined named type with a basic integer or
// string underlying type and at least two package-level constants of that
// exact type, across all loaded packages.
func collectEnums(pkgs []*Package) map[*types.TypeName]*enumSet {
	out := make(map[*types.TypeName]*enumSet)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := c.Type().(*types.Named)
			if !ok {
				continue
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok {
				continue
			}
			if basic.Info()&(types.IsInteger|types.IsString) == 0 {
				continue
			}
			tn := named.Obj()
			set := out[tn]
			if set == nil {
				set = &enumSet{named: named, values: make(map[string]bool)}
				out[tn] = set
			}
			set.consts = append(set.consts, c)
			set.values[c.Val().ExactString()] = true
		}
	}
	for tn, set := range out {
		if len(set.values) < 2 {
			delete(out, tn)
		}
	}
	return out
}

// checkSwitch verifies one switch whose tag is enum-typed.
func checkSwitch(p *ModulePass, pkg *Package, sw *ast.SwitchStmt, enums map[*types.TypeName]*enumSet) {
	tagType := pkg.Info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	set := enums[named.Obj()]
	if set == nil {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	// Name each missing value after the constant declared in the enum's
	// own package; cross-package aliases (experiments re-exports fault
	// kinds) would otherwise hijack the message.
	nameFor := make(map[string]string)
	for _, c := range set.consts {
		if c.Pkg() == set.named.Obj().Pkg() {
			v := c.Val().ExactString()
			if _, ok := nameFor[v]; !ok {
				nameFor[v] = c.Name()
			}
		}
	}
	for _, c := range set.consts {
		v := c.Val().ExactString()
		if _, ok := nameFor[v]; !ok {
			nameFor[v] = c.Name()
		}
	}
	var missing []string
	seen := make(map[string]bool)
	for _, c := range set.consts {
		v := c.Val().ExactString()
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, nameFor[v])
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(),
		"switch on %s misses %s; handle every kind (a default absorbs new kinds silently) or annotate //mars:partial <which kinds are out of scope and why>",
		set.named.Obj().Name(), strings.Join(missing, ", "))
}
