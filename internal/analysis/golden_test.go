package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// wantRE matches one `// want` expectation comment; the payload is one or
// more backquoted regexes.
var wantRE = regexp.MustCompile("// want (`[^`]*`(?: `[^`]*`)*)")

// expectation is one `// want` regex attached to a file:line.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every .go file of dir for `// want` comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, raw := range strings.Split(m[1], "` `") {
				raw = strings.Trim(raw, "`")
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, raw, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		f.Close()
	}
	return wants
}

// runGolden loads one corpus directory, runs one analyzer, and matches the
// diagnostics against the corpus's `// want` expectations both ways.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	matchWants(t, diags, parseWants(t, dir))
}

// matchWants verifies diagnostics against expectations both ways: every
// diagnostic must match a want on its line, every want must be hit.
func matchWants(t *testing.T, diags []Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.File) || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDetrandGolden(t *testing.T)     { runGolden(t, Detrand) }
func TestMapiterGolden(t *testing.T)     { runGolden(t, Mapiter) }
func TestSeedflowGolden(t *testing.T)    { runGolden(t, Seedflow) }
func TestWirewidthGolden(t *testing.T)   { runGolden(t, Wirewidth) }
func TestLockheldGolden(t *testing.T)    { runGolden(t, Lockheld) }
func TestDetflowGolden(t *testing.T)     { runGolden(t, Detflow) }
func TestAllocfreeGolden(t *testing.T)   { runGolden(t, Allocfree) }
func TestLifecycleGolden(t *testing.T)   { runGolden(t, Lifecycle) }
func TestExhaustcaseGolden(t *testing.T) { runGolden(t, Exhaustcase) }

// TestLifecycleCrossPackage runs lifecycle over a tiny multi-package
// module, where the out-of-package Apply/Revert rule can actually fire:
// the driver package calls into the window package's handle type.
func TestLifecycleCrossPackage(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "mod", "lifecyclemod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading corpus module: %v", err)
	}
	var wants []*expectation
	for _, sub := range []string{"window", "driver"} {
		wants = append(wants, parseWants(t, filepath.Join(root, sub))...)
	}
	matchWants(t, Run(pkgs, []*Analyzer{Lifecycle}), wants)
}

// loadRepo loads the repository's own module once for every test that
// analyzes the real tree.
var loadRepo = sync.OnceValues(func() ([]*Package, error) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

// TestRepoClean is the enforcement half of the suite: the repository's own
// tree must produce zero diagnostics from every analyzer. A violation
// introduced anywhere in the module fails this test (and CI's lint job).
func TestRepoClean(t *testing.T) {
	pkgs, err := loadRepo()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("repo must lint clean, got: %s", d)
	}
}

// TestSuppressionsLoadBearing proves the tree's //mars: suppressions are
// each excusing a live finding: with directives ignored, the findings they
// excuse must resurface. Paired with TestRepoClean (zero findings with
// directives honored), this pins that deleting any suppression flips
// mars-lint to a non-zero exit.
func TestSuppressionsLoadBearing(t *testing.T) {
	pkgs, err := loadRepo()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunIgnoringDirectives(pkgs, All())
	wants := []struct {
		analyzer string
		file     string // path suffix
		substr   string
	}{
		{"detflow", "harness/harness.go", "goroutine spawned inside the deterministic core"},
		{"allocfree", "netsim/sim.go", "append (may grow the backing array)"},
		{"allocfree", "dataplane/program.go", "escaping composite literal"},
		{"lifecycle", "netsim/sim.go", "acquires a pooled Packet"},
		{"lifecycle", "faults/faults.go", "never armed, returned, or stored"},
		{"exhaustcase", "experiments/gray.go", "switch on Kind misses"},
		{"mapiter", "analysis/analysis.go", "depends on iteration order"},
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.HasSuffix(filepath.ToSlash(d.File), w.file) && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ignoring directives did not resurface %s finding %q in %s; is the suppression still load-bearing?",
				w.analyzer, w.substr, w.file)
		}
	}
}

// TestDiagnosticString pins the CLI's human-readable finding format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "mapiter", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	want := "x.go:3:7: mapiter: boom"
	if got := fmt.Sprint(d); got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
