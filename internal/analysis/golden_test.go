package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches one `// want` expectation comment; the payload is one or
// more backquoted regexes.
var wantRE = regexp.MustCompile("// want (`[^`]*`(?: `[^`]*`)*)")

// expectation is one `// want` regex attached to a file:line.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every .go file of dir for `// want` comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, raw := range strings.Split(m[1], "` `") {
				raw = strings.Trim(raw, "`")
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, raw, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		f.Close()
	}
	return wants
}

// runGolden loads one corpus directory, runs one analyzer, and matches the
// diagnostics against the corpus's `// want` expectations both ways.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := parseWants(t, dir)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.File) || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDetrandGolden(t *testing.T)   { runGolden(t, Detrand) }
func TestMapiterGolden(t *testing.T)   { runGolden(t, Mapiter) }
func TestSeedflowGolden(t *testing.T)  { runGolden(t, Seedflow) }
func TestWirewidthGolden(t *testing.T) { runGolden(t, Wirewidth) }
func TestLockheldGolden(t *testing.T)  { runGolden(t, Lockheld) }

// TestRepoClean is the enforcement half of the suite: the repository's own
// tree must produce zero diagnostics from every analyzer. A violation
// introduced anywhere in the module fails this test (and CI's lint job).
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; module walk is broken", len(pkgs), root)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("repo must lint clean, got: %s", d)
	}
}

// TestDiagnosticString pins the CLI's human-readable finding format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "mapiter", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	want := "x.go:3:7: mapiter: boom"
	if got := fmt.Sprint(d); got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
