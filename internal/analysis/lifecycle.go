package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lifecycle enforces the two resource disciplines the fault-schedule and
// packet-pool machinery rely on:
//
//  1. Handle escrow. A type with Apply/Revert methods (faults.Handle) is a
//     guarded lifecycle: creating one and letting it drop on the floor
//     means a fault window that never arms or never reverts. Every
//     producer site (a &T{...} literal or a call returning *T) must hand
//     the handle somewhere — into a call (the injector's scheduleWindow
//     escrow), a return, or a store — within its own branch. Apply/Revert
//     themselves may only be called from the package that owns the type:
//     external callers must go through the scheduler, which is what makes
//     double-apply/double-revert structurally impossible.
//
//  2. Pool pairing. For each acquireX/releaseX function pair (the packet
//     and meta pools), every function that acquires must reach the
//     matching release somewhere in its call graph, or carry a
//     //mars:lifecycle comment documenting where ownership goes (the
//     event agenda owns in-flight packets; deliver/drop release them).
//
// Suppress with //mars:lifecycle <why> at the finding site.
var Lifecycle = &Analyzer{
	Name:      "lifecycle",
	Doc:       "verify fault-handle apply/revert escrow and pool acquire/release pairing",
	Directive: "lifecycle",
	RunModule: runLifecycle,
}

func runLifecycle(p *ModulePass) {
	handles := findHandleTypes(p)
	if len(handles) > 0 {
		checkHandleEscrow(p, handles)
		checkApplyRevertCallers(p, handles)
	}
	checkPoolPairing(p)
}

// findHandleTypes returns every named type of the load with both an Apply
// and a Revert method — the shape of a guarded fault-injection lifecycle.
func findHandleTypes(p *ModulePass) []*types.Named {
	var out []*types.Named
	for _, t := range concreteNamedTypes(p.Pkgs) {
		if hasMethod(t, "Apply") && hasMethod(t, "Revert") {
			out = append(out, t)
		}
	}
	return out
}

func hasMethod(t *types.Named, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, t.Obj().Pkg(), name)
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name
}

// isHandlePtr reports whether t is *H for one of the handle types.
func isHandlePtr(t types.Type, handles []*types.Named) *types.Named {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	for _, h := range handles {
		if named.Origin() == h.Origin() {
			return h
		}
	}
	return nil
}

// checkHandleEscrow flags producer sites whose handle never escapes the
// producing branch: it is neither passed to a call, returned, nor stored.
func checkHandleEscrow(p *ModulePass, handles []*types.Named) {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			checkEscrowFile(p, pkg, f, handles)
		}
	}
}

func checkEscrowFile(p *ModulePass, pkg *Package, f *ast.File, handles []*types.Named) {
	info := pkg.Info
	// stack of enclosing nodes, innermost last.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		producer := false
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit && isHandlePtr(info.TypeOf(x), handles) != nil {
					producer = true
				}
			}
		case *ast.CallExpr:
			if isHandlePtr(info.TypeOf(x), handles) != nil {
				// A call producing a handle. Constructor calls inside the
				// handle type's own method set are allowed plumbing.
				producer = true
			}
		}
		if producer {
			checkEscrowSite(p, pkg, n.(ast.Expr), stack)
		}
		return true
	}
	ast.Inspect(f, visit)
}

// checkEscrowSite decides whether one producer expression escrows its
// handle. The scope searched for an escrowing use of the assigned variable
// is the innermost enclosing case clause or block, so a switch that builds
// a different handle per branch is judged branch by branch.
func checkEscrowSite(p *ModulePass, pkg *Package, producer ast.Expr, stack []ast.Node) {
	info := pkg.Info
	// Walk outward: if the producer feeds a call, return, or store
	// directly, it is escrowed.
	var holder types.Object
	for i := len(stack) - 2; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return // argument (or constructor chaining): escrowed
		case *ast.ReturnStmt:
			return // escrowed by return
		case *ast.CompositeLit, *ast.IndexExpr, *ast.SendStmt:
			return // stored into a container
		case *ast.AssignStmt:
			// Which side? producer on RHS: find the matching LHS.
			for j, rhs := range x.Rhs {
				if containsNode(rhs, producer) && j < len(x.Lhs) {
					lhs := ast.Unparen(x.Lhs[j])
					if id, ok := lhs.(*ast.Ident); ok {
						if id.Name == "_" {
							p.Reportf(producer.Pos(),
								"%s discarded at creation; a fault handle must be armed (scheduleWindow), returned, or stored — //mars:lifecycle <why> if intentional",
								handleDesc(info, producer))
							return
						}
						holder = info.ObjectOf(id)
					} else {
						return // stored into a field/element: escrowed
					}
				}
			}
		case *ast.ValueSpec:
			for j, v := range x.Values {
				if containsNode(v, producer) && j < len(x.Names) {
					holder = info.ObjectOf(x.Names[j])
				}
			}
		}
		break
	}
	if holder == nil {
		// Producer in an expression statement: value dropped on the floor.
		p.Reportf(producer.Pos(),
			"%s dropped without escrow; arm it via the scheduler, return it, or store it — //mars:lifecycle <why> if intentional",
			handleDesc(info, producer))
		return
	}
	// The handle landed in a local variable: search the innermost
	// enclosing case clause (or the function body) for an escrowing use.
	scope := escrowScope(stack)
	if scope == nil || escrowUse(pkg, scope, holder, producer) {
		return
	}
	p.Reportf(producer.Pos(),
		"%s assigned to %s but never armed, returned, or stored in this branch; fault windows must reach the scheduler — //mars:lifecycle <why> if intentional",
		handleDesc(info, producer), holder.Name())
}

// handleDesc names the produced handle type for messages.
func handleDesc(info *types.Info, producer ast.Expr) string {
	t := info.TypeOf(producer)
	if t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				return "*" + named.Obj().Name() + " handle"
			}
		}
	}
	return "handle"
}

// escrowScope picks the innermost CaseClause or function body enclosing
// the producer.
func escrowScope(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.CaseClause, *ast.CommClause:
			return x
		case *ast.FuncDecl:
			return x.Body
		case *ast.FuncLit:
			return x.Body
		}
	}
	return nil
}

// escrowUse reports whether the holder variable escapes the scope through
// a call argument, return, store, or reassignment target after creation.
func escrowUse(pkg *Package, scope ast.Node, holder types.Object, producer ast.Expr) bool {
	info := pkg.Info
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if usesObj(info, arg, holder) {
					found = true
				}
			}
			// Method call on the handle itself (h.Apply()) counts as a
			// use-for-arming; the caller-package rule polices legality.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && usesObj(info, sel.X, holder) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if usesObj(info, res, holder) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if containsNode(rhs, producer) {
					continue // the producing assignment itself
				}
				if usesObj(info, rhs, holder) {
					found = true // copied onward (stored or re-escrowed)
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if usesObj(info, el, holder) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObj(info, x.Value, holder) {
				found = true
			}
		}
		return !found
	})
	return found
}

// usesObj reports whether expr references obj (not through a blank walk of
// the producing expression itself).
func usesObj(info *types.Info, expr ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}

// containsNode reports whether target lies within root's subtree.
func containsNode(root, target ast.Node) bool {
	if root == nil || target == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

// checkApplyRevertCallers flags Apply/Revert calls on a handle type from
// outside its declaring package: windows must be armed through the
// injector's scheduler, which owns the double-apply/double-revert guard
// context.
func checkApplyRevertCallers(p *ModulePass, handles []*types.Named) {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Apply" && sel.Sel.Name != "Revert") {
					return true
				}
				recv := pkg.Info.TypeOf(sel.X)
				if recv == nil {
					return true
				}
				h := isHandlePtr(recv, handles)
				if h == nil {
					if named, ok := recv.(*types.Named); ok {
						h = isHandlePtr(types.NewPointer(named), handles)
					}
				}
				if h == nil || h.Obj().Pkg() == nil {
					return true
				}
				if pkg.Types.Path() == h.Obj().Pkg().Path() {
					return true
				}
				if !p.Suppressed(call.Pos(), "lifecycle") {
					p.Reportf(call.Pos(),
						"%s.%s called outside package %s; arm fault windows through the injector's scheduler so apply/revert stay paired — //mars:lifecycle <why> if this caller owns the window",
						h.Obj().Name(), sel.Sel.Name, h.Obj().Pkg().Name())
				}
				return true
			})
		}
	}
}

// poolPair is one acquireX/releaseX function pair found in a package.
type poolPair struct {
	acquire *CGNode
	release *CGNode
	noun    string
}

// checkPoolPairing: every function calling acquireX must transitively
// reach releaseX, or document the ownership hand-off.
func checkPoolPairing(p *ModulePass) {
	g := p.Graph()
	// Index declared functions and methods per (package, receiver, name):
	// the pools are methods on the simulator/program, and the pairing is
	// within one receiver's method set.
	type key struct {
		pkg  *Package
		recv string
		name string
	}
	recvName := func(n *CGNode) string {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return ""
		}
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return ""
	}
	byName := make(map[key]*CGNode)
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Fn != nil {
			byName[key{n.Pkg, recvName(n), n.Fn.Name()}] = n
		}
	}
	var pairs []poolPair
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Fn == nil {
			continue
		}
		noun, ok := strings.CutPrefix(n.Fn.Name(), "acquire")
		if !ok || noun == "" {
			continue
		}
		if r, first := utf8.DecodeRuneInString(noun); first == 0 || !unicode.IsUpper(r) {
			continue
		}
		if rel := byName[key{n.Pkg, recvName(n), "release" + noun}]; rel != nil {
			pairs = append(pairs, poolPair{acquire: n, release: rel, noun: noun})
		}
	}
	if len(pairs) == 0 {
		return
	}
	for _, pair := range pairs {
		for _, caller := range g.Nodes {
			if caller == pair.acquire || caller == pair.release || caller.Body == nil {
				continue
			}
			site := callSite(caller, pair.acquire)
			if !site.IsValid() {
				continue
			}
			reach := g.Reachable([]*CGNode{caller}, nil)
			if reach.Has(pair.release) {
				continue
			}
			if !p.Suppressed(site, "lifecycle") {
				p.Reportf(site,
					"%s acquires a pooled %s but no path from it reaches %s; release on every path or document the ownership transfer with //mars:lifecycle <where it is released>",
					caller.ShortName(), pair.noun, pair.release.ShortName())
			}
		}
	}
}

// callSite returns the first static call site of callee within caller.
func callSite(caller, callee *CGNode) token.Pos {
	for _, e := range caller.Out {
		if e.Kind == EdgeStatic && e.To == callee {
			return e.Site
		}
	}
	return token.NoPos
}
