package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module-relative for module loads, the
	// directory base for bare-directory loads).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives indexes //mars:<name> comments: filename -> line -> names.
	directives map[string]map[int][]*directive
}

// directive is one parsed //mars:<name> [reason] comment. used is set when
// a finding (or an analyzer's explicit Suppressed check) consults it, so
// the driver can flag suppressions that no longer excuse anything.
type directive struct {
	name   string
	reason string
	pos    token.Position
	used   bool
}

// hasDirective reports whether file:line (or the line directly above)
// carries the named directive, marking any match as used. Checking the
// preceding line lets a standalone comment annotate the statement below.
func (p *Package) hasDirective(file string, line int, name string) bool {
	byLine := p.directives[file]
	if byLine == nil {
		return false
	}
	found := false
	for _, l := range [2]int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == name {
				d.used = true
				found = true
			}
		}
	}
	return found
}

// resetDirectiveUse clears the used marks, making Run idempotent when the
// same loaded packages are linted more than once.
func (p *Package) resetDirectiveUse() {
	for _, byLine := range p.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				d.used = false
			}
		}
	}
}

// collectDirectives indexes every //mars: comment of a parsed file.
func collectDirectives(fset *token.FileSet, f *ast.File, into map[string]map[int][]*directive) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//mars:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			byLine := into[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]*directive)
				into[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], &directive{
				name:   name,
				reason: strings.TrimSpace(reason),
				pos:    pos,
			})
		}
	}
}

// stdImporter resolves standard-library imports from GOROOT source, so the
// engine needs no export data, network, or external tooling. One instance
// is shared per load so stdlib packages are checked once.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter serves intra-module packages from the load in progress
// and delegates everything else to the stdlib source importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// LoadModule loads every non-test package of the module rooted at root
// (the directory containing go.mod), type-checks them in dependency
// order, and returns them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		impPath := modPath
		if rel != "." {
			impPath = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{path: impPath, dir: dir, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.deps = append(p.deps, ip)
				}
			}
		}
		byPath[impPath] = p
		order = append(order, impPath)
	}
	sort.Strings(order)

	// Topological order over intra-module imports.
	var sorted []string
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		deps := append([]string(nil), p.deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if byPath[d] == nil {
				return fmt.Errorf("analysis: %s imports unknown module package %s", path, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		sorted = append(sorted, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{std: stdImporter(fset), local: make(map[string]*types.Package)}
	var pkgs []*Package
	for _, path := range sorted {
		p := byPath[path]
		pkg, err := check(fset, path, p.dir, p.files, imp)
		if err != nil {
			return nil, err
		}
		imp.local[path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package in dir (no module context; imports must
// be standard library). Golden-file corpora are loaded this way.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	imp := &moduleImporter{std: stdImporter(fset), local: nil}
	return check(fset, filepath.Base(dir), dir, files, imp)
}

// check type-checks one package and bundles the result.
func check(fset *token.FileSet, path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, errs[0])
	}
	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: make(map[string]map[int][]*directive),
	}
	for _, f := range files {
		collectDirectives(fset, f, pkg.directives)
	}
	return pkg, nil
}

// parseDir parses every non-test Go file of dir, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs returns every directory under root holding Go files,
// skipping testdata, hidden, and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
