package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Lockheld enforces documented lock discipline: a struct field whose
// comment says "guarded by <mu>" (where <mu> is a sync.Mutex or RWMutex
// field of the same struct) may only be touched in methods that called
// <mu>.Lock or <mu>.RLock earlier in the same body. The check is a
// conservative textual-order approximation — it does not model branches or
// early unlocks — which is exactly what makes it cheap enough to run on
// every CI push. A method whose caller is documented to hold the lock
// carries //mars:locked.
var Lockheld = &Analyzer{
	Name:      "lockheld",
	Doc:       "flag guarded-field access outside a Lock/Unlock span",
	Directive: "locked",
	Run:       runLockheld,
}

var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

func runLockheld(p *Pass) {
	// structName -> guarded field -> mutex field.
	guards := map[string]map[string]string{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if !isMutexType(p.TypeOf(fld.Type)) {
					continue
				}
				for _, name := range fld.Names {
					mutexes[name.Name] = true
				}
			}
			if len(mutexes) == 0 {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardDoc(fld)
				if mu == "" || !mutexes[mu] {
					continue
				}
				for _, name := range fld.Names {
					byField := guards[ts.Name.Name]
					if byField == nil {
						byField = map[string]string{}
						guards[ts.Name.Name] = byField
					}
					byField[name.Name] = mu
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvField := fd.Recv.List[0]
			if len(recvField.Names) == 0 {
				continue
			}
			recvName := recvField.Names[0]
			structName := receiverTypeName(recvField.Type)
			byField := guards[structName]
			if byField == nil {
				continue
			}
			if p.Suppressed(fd.Pos(), "locked") {
				continue // caller holds the lock by contract
			}
			recvObj := p.ObjectOf(recvName)
			checkLockDiscipline(p, fd, recvObj, byField)
		}
	}
}

// checkLockDiscipline flags guarded-field accesses not preceded (in
// textual order) by a Lock/RLock of the guarding mutex on the receiver.
func checkLockDiscipline(p *Pass, fd *ast.FuncDecl, recvObj types.Object, byField map[string]string) {
	if recvObj == nil {
		return
	}
	// First positions where each mutex is locked.
	lockPos := map[string]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(muSel.X).(*ast.Ident)
		if !ok || p.ObjectOf(base) != recvObj {
			return true
		}
		if prev, ok := lockPos[muSel.Sel.Name]; !ok || call.Pos() < prev.Pos() {
			lockPos[muSel.Sel.Name] = call
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || p.ObjectOf(base) != recvObj {
			return true
		}
		mu, guarded := byField[sel.Sel.Name]
		if !guarded {
			return true
		}
		lock, locked := lockPos[mu]
		if !locked || sel.Pos() < lock.Pos() {
			p.Reportf(sel.Pos(),
				"field %s is documented as guarded by %s but is accessed before any %s.Lock/RLock in %s (annotate the method //mars:locked if the caller holds it)",
				sel.Sel.Name, mu, mu, fd.Name.Name)
		}
		return true
	})
}

// guardDoc extracts the mutex name from a field's "guarded by X" comment.
func guardDoc(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverTypeName unwraps a method receiver type to its type name.
func receiverTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr: // generic receiver
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
