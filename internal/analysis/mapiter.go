package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mapiter flags order-sensitive writes inside `range` over a map. Go
// randomizes map iteration order, so a loop body that appends to an outer
// slice, accumulates into outer state, selects an argmax, or returns an
// element couples its result to that randomness — the exact bug class that
// would let two identical seeded MARS runs rank culprits differently.
//
// Flagged inside a map-range body (without //mars:mapiter-ok):
//
//   - any assignment, compound assignment, or ++/-- whose target is
//     declared outside the loop (appends included: out = append(out, x)),
//     except writes to the ranged map itself, which land in an unordered
//     container anyway;
//   - delete on a map other than the one being ranged;
//   - return statements, which select an arbitrary element.
//
// The fix is to iterate a sorted view (det.Keys / det.KeysFunc). Loops
// whose writes are provably order-independent — pure integer counting,
// building an unordered set — keep their direct iteration with a
// //mars:mapiter-ok directive naming the reason.
var Mapiter = &Analyzer{
	Name:      "mapiter",
	Doc:       "flag order-sensitive writes inside range-over-map loops",
	Directive: "mapiter-ok",
	Run:       runMapiter,
}

func runMapiter(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p.Pkg, rs) {
				return true
			}
			// A directive on the range line suppresses the whole loop.
			if p.Suppressed(rs.Pos(), "mapiter-ok") {
				return true
			}
			mapRangeHazards(p.Pkg, rs, p.Reportf)
			return true
		})
	}
}

func isMapRange(pkg *Package, rs *ast.RangeStmt) bool {
	_, ok := mapCore(pkg.Info.TypeOf(rs.X))
	return ok
}

// mapCore returns the map type underlying t, seeing through type
// parameters whose constraint type set holds only maps with one common
// underlying type (the det.Keys `M ~map[K]V` shape); Underlying alone
// would return the constraint interface and miss generic map ranges.
func mapCore(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	if m, ok := t.Underlying().(*types.Map); ok {
		return m, true
	}
	tp, ok := types.Unalias(t).(*types.TypeParam)
	if !ok {
		return nil, false
	}
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	var core *types.Map
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		terms := []types.Type{iface.EmbeddedType(i)}
		if u, ok := terms[0].(*types.Union); ok {
			terms = terms[:0]
			for j := 0; j < u.Len(); j++ {
				terms = append(terms, u.Term(j).Type())
			}
		}
		for _, term := range terms {
			m, ok := term.Underlying().(*types.Map)
			if !ok {
				return nil, false
			}
			if core == nil {
				core = m
			} else if !types.Identical(core, m) {
				return nil, false
			}
		}
	}
	return core, core != nil
}

// mapRangeHazards walks one map-range body and reports each
// order-sensitive hazard through report. Nested map-range statements are
// skipped: they are checked on their own, and one report per hazard is
// enough. Both mapiter (locally, everywhere) and detflow (transitively,
// inside the deterministic core) consume this.
func mapRangeHazards(pkg *Package, rs *ast.RangeStmt, report func(pos token.Pos, format string, args ...any)) {
	rangedRoot := rootIdentObj(pkg, rs.X)
	var walk func(n ast.Node, inFuncLit bool)
	walk = func(n ast.Node, inFuncLit bool) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x != rs && isMapRange(pkg, x) {
				return // analyzed independently
			}
		case *ast.FuncLit:
			walkChildren(x.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.ReturnStmt:
			if !inFuncLit {
				report(x.Pos(),
					"return inside `range` over map %s yields an arbitrary element; iterate det.Keys or collect-then-sort",
					exprString(pkg.Fset, rs.X))
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				for _, lhs := range x.Lhs {
					checkWrite(pkg, rs, rangedRoot, lhs, report)
				}
			}
		case *ast.IncDecStmt:
			checkWrite(pkg, rs, rangedRoot, x.X, report)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltinObj(pkg.Info.ObjectOf(id)) {
				// builtin delete: flag deletes from maps other than the
				// ranged one (deleting while ranging the same map is a
				// supported, order-independent idiom).
				if len(x.Args) == 2 {
					if obj := rootIdentObj(pkg, x.Args[0]); obj != nil && obj != rangedRoot && declaredOutside(obj, rs) {
						report(x.Pos(),
							"delete from %s inside `range` over map %s depends on iteration order",
							exprString(pkg.Fset, x.Args[0]), exprString(pkg.Fset, rs.X))
					}
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inFuncLit) })
	}
	walkChildren(rs.Body, func(c ast.Node) { walk(c, false) })
}

// checkWrite reports a write whose target lives outside the range loop.
func checkWrite(pkg *Package, rs *ast.RangeStmt, rangedRoot types.Object, lhs ast.Expr, report func(pos token.Pos, format string, args ...any)) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Writes into the ranged map itself land in an unordered container;
	// the result is independent of visit order.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if obj := rootIdentObj(pkg, idx.X); obj != nil && obj == rangedRoot {
			return
		}
	}
	obj := rootIdentObj(pkg, lhs)
	if obj == nil || !declaredOutside(obj, rs) {
		return
	}
	report(lhs.Pos(),
		"write to %s inside `range` over map %s depends on iteration order; iterate det.Keys/det.KeysFunc or annotate //mars:mapiter-ok with why order cannot matter",
		exprString(pkg.Fset, lhs), exprString(pkg.Fset, rs.X))
}

// isBuiltinObj reports whether obj is a predeclared builtin function.
func isBuiltinObj(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// rootIdentObj resolves the base object of an lvalue-ish expression.
func rootIdentObj(pkg *Package, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return pkg.Info.ObjectOf(id)
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement's span (package-level objects have no position inside it).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	pos := obj.Pos()
	return pos == token.NoPos || pos < rs.Pos() || pos > rs.End()
}

// walkChildren applies fn to each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
