package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mapiter flags order-sensitive writes inside `range` over a map. Go
// randomizes map iteration order, so a loop body that appends to an outer
// slice, accumulates into outer state, selects an argmax, or returns an
// element couples its result to that randomness — the exact bug class that
// would let two identical seeded MARS runs rank culprits differently.
//
// Flagged inside a map-range body (without //mars:mapiter-ok):
//
//   - any assignment, compound assignment, or ++/-- whose target is
//     declared outside the loop (appends included: out = append(out, x)),
//     except writes to the ranged map itself, which land in an unordered
//     container anyway;
//   - delete on a map other than the one being ranged;
//   - return statements, which select an arbitrary element.
//
// The fix is to iterate a sorted view (det.Keys / det.KeysFunc). Loops
// whose writes are provably order-independent — pure integer counting,
// building an unordered set — keep their direct iteration with a
// //mars:mapiter-ok directive naming the reason.
var Mapiter = &Analyzer{
	Name:      "mapiter",
	Doc:       "flag order-sensitive writes inside range-over-map loops",
	Directive: "mapiter-ok",
	Run:       runMapiter,
}

func runMapiter(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p, rs) {
				return true
			}
			// A directive on the range line suppresses the whole loop.
			if p.Suppressed(rs.Pos(), "mapiter-ok") {
				return true
			}
			checkMapRangeBody(p, rs)
			return true
		})
	}
}

func isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	t := p.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody walks one map-range body. Nested map-range statements
// are skipped: they are checked on their own, and one report per hazard is
// enough.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt) {
	rangedRoot := rootIdentObj(p, rs.X)
	var walk func(n ast.Node, inFuncLit bool)
	walk = func(n ast.Node, inFuncLit bool) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x != rs && isMapRange(p, x) {
				return // analyzed independently
			}
		case *ast.FuncLit:
			walkChildren(x.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.ReturnStmt:
			if !inFuncLit {
				p.Reportf(x.Pos(),
					"return inside `range` over map %s yields an arbitrary element; iterate det.Keys or collect-then-sort",
					exprString(p.Pkg.Fset, rs.X))
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				for _, lhs := range x.Lhs {
					checkWrite(p, rs, rangedRoot, lhs)
				}
			}
		case *ast.IncDecStmt:
			checkWrite(p, rs, rangedRoot, x.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltinObj(p.ObjectOf(id)) {
				// builtin delete: flag deletes from maps other than the
				// ranged one (deleting while ranging the same map is a
				// supported, order-independent idiom).
				if len(x.Args) == 2 {
					if obj := rootIdentObj(p, x.Args[0]); obj != nil && obj != rangedRoot && declaredOutside(obj, rs) {
						p.Reportf(x.Pos(),
							"delete from %s inside `range` over map %s depends on iteration order",
							exprString(p.Pkg.Fset, x.Args[0]), exprString(p.Pkg.Fset, rs.X))
					}
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inFuncLit) })
	}
	walkChildren(rs.Body, func(c ast.Node) { walk(c, false) })
}

// checkWrite reports a write whose target lives outside the range loop.
func checkWrite(p *Pass, rs *ast.RangeStmt, rangedRoot types.Object, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Writes into the ranged map itself land in an unordered container;
	// the result is independent of visit order.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if obj := rootIdentObj(p, idx.X); obj != nil && obj == rangedRoot {
			return
		}
	}
	obj := rootIdentObj(p, lhs)
	if obj == nil || !declaredOutside(obj, rs) {
		return
	}
	p.Reportf(lhs.Pos(),
		"write to %s inside `range` over map %s depends on iteration order; iterate det.Keys/det.KeysFunc or annotate //mars:mapiter-ok with why order cannot matter",
		exprString(p.Pkg.Fset, lhs), exprString(p.Pkg.Fset, rs.X))
}

// isBuiltinObj reports whether obj is a predeclared builtin function.
func isBuiltinObj(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// rootIdentObj resolves the base object of an lvalue-ish expression.
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return p.ObjectOf(id)
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement's span (package-level objects have no position inside it).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	pos := obj.Pos()
	return pos == token.NoPos || pos < rs.Pos() || pos > rs.End()
}

// walkChildren applies fn to each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
