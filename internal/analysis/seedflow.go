package analysis

import (
	"go/ast"
)

// Seedflow requires every rand.NewSource argument to derive from a config
// field, function parameter, or another generator — never a literal. A
// literal seed hides inside one component and silently decouples it from
// the run's configured seed: two components with the same literal are
// correlated, and sweeping the run seed no longer sweeps them at all.
// Tests are not loaded by the engine, so fixed seeds in tests stay legal.
// A reviewed fixed seed in non-test code carries //mars:fixedseed.
var Seedflow = &Analyzer{
	Name:      "seedflow",
	Doc:       "require rand.NewSource seeds to derive from config, not literals",
	Directive: "fixedseed",
	Run:       runSeedflow,
}

func runSeedflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			if !isPkgFunc(fn, "math/rand", "NewSource") &&
				!isPkgFunc(fn, "math/rand/v2", "NewPCG") &&
				!isPkgFunc(fn, "math/rand/v2", "NewChaCha8") {
				return true
			}
			for _, arg := range call.Args {
				if tv, ok := p.Pkg.Info.Types[arg]; ok && tv.Value != nil {
					p.Reportf(arg.Pos(),
						"literal seed %s in rand.%s: derive seeds from a Config/seed parameter so one run seed drives every component (//mars:fixedseed to keep a reviewed constant)",
						tv.Value.String(), fn.Name())
				}
			}
			return true
		})
	}
}
