// Package driver calls into window from outside: direct Apply/Revert
// calls are flagged, going through the scheduler is not.
package driver

import "lifecyclemod/window"

func good() {
	h := window.New()
	window.Schedule(h)
}

func bad() {
	h := window.New()
	h.Apply()  // want `Handle\.Apply called outside package window`
	h.Revert() // want `Handle\.Revert called outside package window`
}

func excused() {
	h := window.New()
	//mars:lifecycle this driver owns the window for the teardown test
	h.Apply()
	h.Revert() //mars:lifecycle teardown owner, see above
}
