module lifecyclemod

go 1.24
