// Package window declares the handle type for the cross-package
// apply/revert corpus: only this package may call Apply/Revert directly.
package window

// Handle is a guarded fault window.
type Handle struct{ armed bool }

func (h *Handle) Apply()  { h.armed = true }
func (h *Handle) Revert() { h.armed = false }

// New produces a handle, escrowed to the caller by the return.
func New() *Handle { return &Handle{} }

// Schedule arms the handle from inside the owning package, which holds
// the double-apply guard context.
func Schedule(h *Handle) {
	h.Apply()
	h.Revert()
}
