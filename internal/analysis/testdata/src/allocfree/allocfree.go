// Golden corpus for the allocfree analyzer: allocation sites are flagged
// only when statically reachable from a //mars:root hot-path entry point,
// and a //mars:alloc suppression must cite a registered AllocsPerRun
// guard test to be accepted.
package allocfree

import "fmt"

type item struct{ v int }

//mars:root
func Run() {
	hot(3)
	_ = asAny()
	cited()
	badCite()
	cold := func() { _ = make([]int, 8) } // want `closure allocation`
	cold()
	helper(grow)
}

func hot(n int) {
	p := &item{v: n} // want `escaping composite literal`
	_ = p
	s := []int{1, 2, 3}       // want `slice/map literal allocation`
	s = append(s, n)          // want `append \(may grow the backing array\)`
	m := make(map[int]int, 4) // want `make allocation`
	_ = m
	q := new(item) // want `new allocation`
	_ = q
	fmt.Println() // want `fmt call`
	box(n)
	if n > 99 {
		// panic arguments are a failing path; their allocations are exempt.
		panic(fmt.Sprintf("bad %d", n))
	}
}

func box(v int) {
	sink(v)      // want `interface boxing`
	p := &item{} // want `escaping composite literal`
	sink(p)      // pointers into interface slots do not box
}

func sink(any) {}

// asAny boxes its concrete struct result into the interface return slot.
func asAny() any {
	return item{v: 2} // want `interface boxing`
}

var buf []int

// cited carries the amortization protocol: the suppression names the
// dynamic AllocsPerRun guard that pins the site.
func cited() {
	buf = append(buf, 1) //mars:alloc TestNetsimStepAllocs capacity is retained across cycles
}

// badCite cites a guard that is not in the registry, which is itself a
// finding rather than an accepted suppression.
func badCite() {
	buf = append(buf, 2) //mars:alloc TestBogusAllocs no such guard exists // want `//mars:alloc must cite the AllocsPerRun guard test`
}

func helper(fn func()) { fn() }

// grow is only reachable through a dynamic edge (the fn() call above),
// which allocfree does not follow: the typed-event agenda keeps closures
// off the packet path, so dynamic targets are cold by construction.
func grow() {
	_ = make([]int, 4)
}

// unreachable is not called from the root at all.
func unreachable() {
	_ = make([]int, 1)
}
