// Corpus for the call-graph engine's unit tests: static calls, method
// values, conservative interface dispatch, and function-typed fields.
// TestCallGraph pins which nodes are reachable from Root and through
// which edge kinds; there are no // want expectations here.
package callgraph

type greeter interface{ greet() }

type english struct{}

func (english) greet() { helperEnglish() }

func helperEnglish() {}

type french struct{}

func (french) greet() { helperFrench() }

func helperFrench() {}

type holder struct{ fn func(int) }

func fieldTarget(int) {}

// methodValueUser takes a method value; the later mv() call is a dynamic
// edge back to english.greet.
func methodValueUser() {
	e := english{}
	mv := e.greet
	mv()
}

func Root(g greeter) {
	g.greet()
	h := holder{fn: fieldTarget}
	h.fn(1)
	methodValueUser()
}

func isolated() {}
