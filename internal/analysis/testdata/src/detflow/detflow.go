// Golden corpus for the detflow analyzer: nondeterminism sinks are
// flagged only when transitively reachable from a //mars:root entry
// point, and every finding names the concrete call chain.
package detflow

import (
	"math/rand"
	"sort"
	"time"
)

//mars:root
func Run() {
	step()
	spawn()
	iterate(map[string]int{"a": 1})
	suppressedSinks()
	viaIface(impl{})
	cb = helper
	cb()
}

func step() { deep() }

func deep() {
	_ = time.Now() // want `time\.Now reachable from the deterministic core via detflow\.Run -> detflow\.step -> detflow\.deep`
	_ = rand.Int() // want `rand\.Int reachable from the deterministic core`
}

func spawn() {
	go work() // want `goroutine spawned inside the deterministic core \(via detflow\.Run -> detflow\.spawn\)`
	//mars:sync results land in pre-indexed slots; completion order cannot show
	go work()
}

func work() {}

func iterate(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { //mars:mapiter-ok keys are fully sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	worst := ""
	for k := range m {
		if k > worst {
			worst = k // want `order-sensitive map iteration reachable from the deterministic core via detflow\.Run -> detflow\.iterate`
		}
	}
	_ = worst
}

func suppressedSinks() {
	_ = time.Now() //mars:wallclock wall-time benchmarking only
}

type doer interface{ do() }

type impl struct{}

// Interface dispatch is resolved conservatively to every implementer, so
// the sink inside the method body is reached through the call on doer.
func (impl) do() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reachable from the deterministic core via detflow\.Run -> detflow\.viaIface -> detflow\.impl\.do`
}

func viaIface(d doer) { d.do() }

// cb makes helper address-taken: the cb() call in Run reaches it through
// a dynamic edge.
var cb func()

func helper() {
	_ = time.Now() // want `time\.Now reachable from the deterministic core via detflow\.Run -> detflow\.helper`
}

// unreachable is never called from the root: its sink stays unflagged.
func unreachable() {
	_ = time.Now()
}
