// Golden corpus for the detrand analyzer: ambient wall-clock and global
// RNG calls are flagged unless the site carries //mars:wallclock.
package detrand

import (
	"math/rand"
	"time"
)

func clocked() time.Duration {
	start := time.Now()                 // want `ambient wall clock: time\.Now`
	time.Sleep(time.Millisecond)        // want `ambient wall clock: time\.Sleep`
	tick := time.Tick(time.Second)      // want `ambient wall clock: time\.Tick`
	timer := time.NewTimer(time.Second) // want `ambient wall clock: time\.NewTimer`
	_, _ = tick, timer
	return time.Since(start) // want `ambient wall clock: time\.Since`
}

func annotated() time.Time {
	return time.Now() //mars:wallclock operator-facing timestamp
}

func annotatedAbove() time.Duration {
	//mars:wallclock wall-time benchmarking
	start := time.Now()
	//mars:wallclock wall-time benchmarking
	return time.Since(start)
}

func globalRNG() int {
	rand.Seed(42)                      // want `rand\.Seed reseeds the process-global generator`
	x := rand.Intn(10)                 // want `global RNG: rand\.Intn draws from the ambient generator`
	f := rand.Float64()                // want `global RNG: rand\.Float64 draws from the ambient generator`
	rand.Shuffle(3, func(i, j int) {}) // want `global RNG: rand\.Shuffle draws from the ambient generator`
	return x + int(f)
}

// Constructors and methods on an explicit *rand.Rand never report: they
// are the sanctioned replacement.
func localRNG(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() + float64(r.Intn(3))
}

// time values that do not read the ambient clock are fine.
func pureTime(t time.Time) time.Time {
	return t.Add(3 * time.Millisecond).Truncate(time.Second)
}
