// Golden corpus for the exhaustcase analyzer: switches over enum-like
// named constant sets must list every value (a default clause does not
// excuse omissions) or carry //mars:partial with the reason.
package exhaustcase

type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
	// KindOther aliases KindB's value; coverage dedupes by value.
	KindOther = KindB
)

// full lists every distinct value, so the alias does not count as
// missing.
func full(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB, KindC:
		return 2
	}
	return 0
}

func missing(k Kind) int {
	switch k { // want `switch on Kind misses KindC`
	case KindA, KindB:
		return 1
	default:
		return 0
	}
}

func annotated(k Kind) int {
	//mars:partial KindC is resolved by the caller before dispatch
	switch k {
	case KindA, KindB:
		return 1
	}
	return 0
}

type Mode string

const (
	ModeFast Mode = "fast"
	ModeSlow Mode = "slow"
)

func modes(m Mode) bool {
	switch m { // want `switch on Mode misses ModeSlow`
	case ModeFast:
		return true
	}
	return false
}

// notEnum switches on a plain int: no constant universe, no finding.
func notEnum(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// stale: a //mars:partial that suppresses nothing is itself reported,
// since its only consumer (exhaustcase) ran.
func stale() int {
	//mars:partial nothing here needs this // want `stale directive //mars:partial suppresses nothing`
	return 0
}
