// Golden corpus for the lifecycle analyzer: fault-handle escrow (a
// produced Apply/Revert handle must be armed, returned, or stored within
// its own branch) and pool acquire/release pairing (every acquirer must
// reach the matching release or document the hand-off).
package lifecycle

// Window is handle-shaped: it has both Apply and Revert.
type Window struct{ armed bool }

func (w *Window) Apply()  { w.armed = true }
func (w *Window) Revert() { w.armed = false }

// newWindow's own producer is escrowed by the return.
func newWindow() *Window { return &Window{} }

func schedule(w *Window) {}

func goodEscrow() {
	w := newWindow()
	schedule(w)
}

func directEscrow() {
	schedule(newWindow())
}

func badEscrow() {
	w := newWindow() // want `\*Window handle assigned to w but never armed, returned, or stored in this branch`
	w.armed = false
}

func dropped() {
	newWindow() // want `\*Window handle dropped without escrow`
}

func discarded() {
	_ = newWindow() // want `\*Window handle discarded at creation`
}

// branches is judged branch by branch: each case must escrow its own
// handle.
func branches(kind int) {
	var w *Window
	switch kind {
	case 0:
		w = newWindow()
		schedule(w)
	case 1:
		w = newWindow() // want `\*Window handle assigned to w but never armed`
		w.armed = false
	case 2:
		//mars:lifecycle the window is pre-armed at creation; nothing to schedule
		w = newWindow()
	}
	_ = w
}

// armInPackage may call Apply directly: the declaring package owns the
// double-apply guard context.
func armInPackage(w *Window) {
	w.Apply()
}

// ---- pool pairing ----

type thing struct{ used bool }

type pool struct{ free []*thing }

func (p *pool) acquireThing() *thing {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return &thing{}
}

func (p *pool) releaseThing(t *thing) {
	t.used = false
	p.free = append(p.free, t)
}

func pairedUse(p *pool) {
	t := p.acquireThing()
	t.used = true
	p.releaseThing(t)
}

// pairedDeep releases through a callee, which the call graph sees.
func pairedDeep(p *pool) {
	t := p.acquireThing()
	finish(p, t)
}

func finish(p *pool, t *thing) { p.releaseThing(t) }

func leakyUse(p *pool) {
	t := p.acquireThing() // want `lifecycle\.leakyUse acquires a pooled Thing but no path from it reaches lifecycle\.pool\.releaseThing`
	t.used = true
}

var parked []*thing

func handoff(p *pool) {
	//mars:lifecycle ownership transfers to parked; the drain loop releases
	t := p.acquireThing()
	parked = append(parked, t)
}
