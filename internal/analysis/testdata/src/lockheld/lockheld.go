// Golden corpus for the lockheld analyzer: fields documented "guarded by
// <mu>" must be accessed under that mutex.
package lockheld

import "sync"

type Counter struct {
	mu sync.Mutex
	// n is guarded by mu.
	n int
	// free has no guard annotation and is never checked.
	free int
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Bad() int {
	return c.n // want `field n is documented as guarded by mu but is accessed before any mu\.Lock/RLock in Bad`
}

func (c *Counter) BadBefore() {
	c.n++ // want `accessed before any mu\.Lock/RLock in BadBefore`
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Unguarded() int {
	return c.free
}

//mars:locked caller holds mu
func (c *Counter) addLocked(d int) {
	c.n += d
}

type Stats struct {
	mu sync.RWMutex
	// hits guarded by mu (read lock suffices).
	hits map[string]int
}

func (s *Stats) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits[k]
}

func (s *Stats) Peek(k string) int {
	return s.hits[k] // want `field hits is documented as guarded by mu but is accessed before any mu\.Lock/RLock in Peek`
}
