// Golden corpus for the mapiter analyzer: order-sensitive writes, returns
// and deletes inside `range` over a map.
package mapiter

func appendLoop(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `write to out inside .range. over map m depends on iteration order`
	}
	return out
}

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `write to total inside .range. over map m`
	}
	return total
}

func argmax(m map[string]int) string {
	var bestK string
	best := -1
	for k, v := range m {
		if v > best {
			best = v  // want `write to best inside .range. over map m`
			bestK = k // want `write to bestK inside .range. over map m`
		}
	}
	return bestK
}

func crossMapWrite(m map[string]int, other map[string]int) {
	for k, v := range m {
		other[k] = v // want `write to other\[\.\.\.\] inside .range. over map m`
	}
}

func returnArbitrary(m map[string]int) int {
	for _, v := range m {
		return v // want `return inside .range. over map m yields an arbitrary element`
	}
	return 0
}

func deleteOther(m, other map[string]int) {
	for k := range m {
		delete(other, k) // want `delete from other inside .range. over map m`
	}
}

// Deleting from the map being ranged is a supported Go idiom and
// order-independent.
func deleteSelf(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Writes into the map being ranged land in an unordered container.
func writeSelf(m map[string]int) {
	for k, v := range m {
		m[k] = v + 1
	}
}

// Loop-local state is invisible outside one iteration.
func localState(m map[string][]int) int {
	n := 0
	//mars:mapiter-ok integer counting is order-independent
	for _, vs := range m {
		local := 0
		for _, v := range vs {
			local += v
		}
		n += local
	}
	return n
}

// A directive on (or above) the range line suppresses the whole loop.
func annotated(m map[string]int) int {
	n := 0
	//mars:mapiter-ok integer counting is order-independent
	for _, v := range m {
		n += v
	}
	return n
}

// A return inside a closure does not exit the loop; writes through the
// closure to outer state are still flagged.
func closures(m map[string]int) []func() int {
	var fns []func() int
	var leaked int
	for _, v := range m {
		v := v
		fns = append(fns, func() int { // want `write to fns inside .range. over map m`
			leaked = v // want `write to leaked inside .range. over map m`
			return v
		})
	}
	_ = leaked
	return fns
}

// Nested map ranges are analyzed independently: one report per hazard, at
// the innermost loop that causes it.
func nested(outer map[string]map[string]int) []string {
	var out []string
	for _, inner := range outer {
		for k := range inner {
			out = append(out, k) // want `write to out inside .range. over map inner`
		}
	}
	return out
}
