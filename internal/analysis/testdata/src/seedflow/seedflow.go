// Golden corpus for the seedflow analyzer: literal seeds hidden inside
// components decouple them from the run's configured seed.
package seedflow

import "math/rand"

const defaultSeed = 7

func fixed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `literal seed 42 in rand\.NewSource`
}

func fixedConst() *rand.Rand {
	return rand.New(rand.NewSource(defaultSeed)) // want `literal seed 7 in rand\.NewSource`
}

func fixedExpr() *rand.Rand {
	return rand.New(rand.NewSource(2*3 + 1)) // want `literal seed 7 in rand\.NewSource`
}

func fromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type cfg struct{ Seed int64 }

func fromConfig(c cfg) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func derived(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x9E3779B9)) // mixing a literal into a parameter is fine
}

func reviewed() *rand.Rand {
	return rand.New(rand.NewSource(1)) //mars:fixedseed reviewed constant for the demo generator
}
