// Codec-width corpus: <base>Codec types must declare wire widths their
// Marshal<Base> forms realize. The check is package-wide, so this file
// deliberately is not named wire.go.
package wirewidth

// goodCodec declares the width MarshalGood (wire.go) actually produces.
type goodCodec struct{}

func (goodCodec) WireBytes() int { return 7 }
func (goodCodec) HopBytes() int  { return 0 } // fixed-width: no hop marshaller needed

// lostCodec promises bytes nobody marshals.
type lostCodec struct{}

func (lostCodec) WireBytes() int { return 5 } // want `lostCodec.WireBytes\(\) declares 5 wire bytes but the package has no MarshalLost`

// slimCodec disagrees with its own marshaller.
type slimCodec struct{}

func (slimCodec) WireBytes() int { return 9 } // want `slimCodec.WireBytes\(\) = 9 but MarshalSlim produces \[4\]byte`

func MarshalSlim(h Hdr) [4]byte {
	var b [4]byte
	b[0] = h.C
	return b
}

// hoppyCodec grows per hop, so the hop form is checked too.
type hoppyCodec struct{}

func (hoppyCodec) WireBytes() int { return 6 }
func (hoppyCodec) HopBytes() int  { return 4 } // want `hoppyCodec.HopBytes\(\) = 4 but MarshalHoppyHop produces \[8\]byte`

func MarshalHoppy(h Hdr) [6]byte {
	var b [6]byte
	b[0] = h.C
	return b
}

func MarshalHoppyHop(h Hdr) [8]byte {
	var b [8]byte
	b[0] = h.C
	return b
}

// dynCodec's width is configuration-dependent; the analyzer cannot pin a
// constant and stays silent.
type dynCodec struct{ n int }

func (c dynCodec) WireBytes() int { return c.n }

// growCodec marshals into a variable-length slice, so the declared width
// cannot be checked against a fixed form.
type growCodec struct{}

func (growCodec) WireBytes() int { return 3 } // want `growCodec.WireBytes\(\) declares 3 wire bytes but MarshalGrow does not return a fixed \[N\]byte form`

func MarshalGrow(h Hdr) []byte { return []byte{h.C} }
