// Golden corpus for the wirewidth analyzer. The file must be named
// wire.go — the analyzer only inspects hand-written codec files.
package wirewidth

import "encoding/binary"

// The paper's constant is pinned: any other value is layout drift.
const TelemetryHeaderBytes = 12 // want `TelemetryHeaderBytes = 12, want 11`

type Hdr struct {
	A uint32
	B uint16
	C uint8
}

// A correct pair: same spans on both sides, no holes, single-byte tail.
func MarshalGood(h Hdr) [7]byte {
	var b [7]byte
	binary.BigEndian.PutUint32(b[0:4], h.A)
	binary.BigEndian.PutUint16(b[4:6], h.B)
	b[6] = h.C
	return b
}

func UnmarshalGood(b [7]byte) Hdr {
	return Hdr{
		A: binary.BigEndian.Uint32(b[0:4]),
		B: binary.BigEndian.Uint16(b[4:6]),
		C: b[6],
	}
}

// Encode/decode asymmetry: the encoder and decoder disagree on bytes 4-8.
func MarshalSkew(h Hdr) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], h.A)
	binary.BigEndian.PutUint16(b[4:6], h.B) // want `MarshalSkew writes b\[4:6\] but UnmarshalSkew never reads it`
	return b
}

func UnmarshalSkew(b [8]byte) Hdr {
	return Hdr{
		A: binary.BigEndian.Uint32(b[0:4]),
		B: binary.BigEndian.Uint16(b[6:8]), // want `UnmarshalSkew reads b\[6:8\] but MarshalSkew never writes it`
	}
}

// Accessor width must match the slice span it is applied to.
func MarshalWide(h Hdr) [4]byte {
	var b [4]byte
	binary.BigEndian.PutUint16(b[0:4], h.B) // want `PutUint16 over b\[0:4\] spans 4 bytes, but the accessor moves 2`
	return b
}

func UnmarshalWide(b [4]byte) Hdr {
	return Hdr{B: binary.BigEndian.Uint16(b[0:4])} // want `Uint16 over b\[0:4\] spans 4 bytes, but the accessor moves 2`
}

// Overlapping fields share bytes: the second write clobbers the first.
func MarshalLap(h Hdr) [6]byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], h.A)
	binary.BigEndian.PutUint32(b[2:6], h.A) // want `MarshalLap writes overlapping byte ranges \[0:4\) and \[2:6\)`
	return b
}

func UnmarshalLap(b [6]byte) Hdr {
	_ = binary.BigEndian.Uint32(b[2:6])
	return Hdr{A: binary.BigEndian.Uint32(b[0:4])}
}

// A hole: byte 2 is never written.
func MarshalHole(h Hdr) [4]byte { // want `MarshalHole leaves a hole: bytes \[2:3\)`
	var b [4]byte
	binary.BigEndian.PutUint16(b[0:2], h.B)
	b[3] = h.C
	return b
}

func UnmarshalHole(b [4]byte) Hdr {
	return Hdr{B: binary.BigEndian.Uint16(b[0:2]), C: b[3]}
}

// The telemetry header pair must cover all 11 bytes exactly; a trailing
// reserved byte that other codecs may leave is a fault here.
func MarshalINT(h Hdr) [11]byte { // want `MarshalINT field widths sum to 10 bytes, want 11`
	var b [11]byte
	binary.BigEndian.PutUint32(b[0:4], h.A)
	binary.BigEndian.PutUint32(b[4:8], h.A)
	binary.BigEndian.PutUint16(b[8:10], h.B)
	return b
}

func UnmarshalINT(b [11]byte) Hdr {
	return Hdr{
		A: binary.BigEndian.Uint32(b[0:4]) ^ binary.BigEndian.Uint32(b[4:8]),
		B: binary.BigEndian.Uint16(b[8:10]),
	}
}

// Codecs without a counterpart cannot be checked for symmetry.
func MarshalOrphan(h Hdr) [2]byte { // want `MarshalOrphan has no UnmarshalOrphan counterpart`
	var b [2]byte
	binary.BigEndian.PutUint16(b[0:2], h.B)
	return b
}

func UnmarshalWidow(b [2]byte) Hdr { // want `UnmarshalWidow has no MarshalWidow counterpart`
	return Hdr{B: binary.BigEndian.Uint16(b[0:2])}
}
