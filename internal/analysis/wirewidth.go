package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Wirewidth checks the hand-written wire codecs in wire.go: every
// Marshal<X>/Unmarshal<X> pair over an [N]byte array must write and read
// exactly the same byte spans with matching widths, fields must not
// overlap or leave holes, and the telemetry header pair (suffix "INT")
// must cover the paper's 11-byte payload exactly — TelemetryHeaderBytes
// is additionally pinned to 11. Layout drift (a widened counter, a moved
// field, an encoder/decoder that disagree) becomes a lint failure instead
// of a silent corruption.
//
// The analyzer is additionally codec-aware: a type named <base>Codec
// whose WireBytes (or HopBytes) method returns a constant N must be
// backed by a Marshal<Base> (or Marshal<Base>Hop) producing exactly
// [N]byte, so a codec can never promise one wire width to the simulator's
// byte accounting while its marshaller emits another.
var Wirewidth = &Analyzer{
	Name: "wirewidth",
	Doc:  "check wire.go encode/decode symmetry and field-width accounting",
	Run:  runWirewidth,
}

// telemetryPayloadBytes is the paper's fixed INT payload size (§4.1).
const telemetryPayloadBytes = 11

// span is one byte range [lo, hi) of a wire form.
type span struct {
	lo, hi int
	pos    token.Pos
}

// codecFunc is one side of a Marshal/Unmarshal pair.
type codecFunc struct {
	decl  *ast.FuncDecl
	size  int // the [N]byte array length
	spans []span
}

func runWirewidth(p *Pass) {
	for _, f := range p.Pkg.Files {
		if filepath.Base(p.Pkg.Fset.Position(f.Pos()).Filename) != "wire.go" {
			continue
		}
		checkWireFile(p, f)
	}
	checkCodecWidths(p)
}

// codecWidthMethods maps the dataplane.Codec width methods to the suffix
// of the marshaller that must realize the declared width.
var codecWidthMethods = map[string]string{
	"WireBytes": "",    // Marshal<Base>
	"HopBytes":  "Hop", // Marshal<Base>Hop
}

// checkCodecWidths cross-checks every <base>Codec type's declared wire
// widths against the package's marshallers. The check is package-wide:
// codec types typically live next to their behavior (mars11.go,
// perhop.go, ...) while the marshallers live in wire.go.
func checkCodecWidths(p *Pass) {
	// All Marshal<X> functions and their [N]byte result sizes.
	marshalSize := map[string]int{}
	marshalSeen := map[string]bool{}
	var codecs []*ast.FuncDecl
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil {
				if suffix, ok := strings.CutPrefix(fd.Name.Name, "Marshal"); ok && suffix != "" {
					marshalSeen[suffix] = true
					if size, ok := resultArraySize(p, fd); ok {
						marshalSize[suffix] = size
					}
				}
				continue
			}
			base := receiverBase(fd)
			if _, isWidth := codecWidthMethods[fd.Name.Name]; isWidth && strings.HasSuffix(base, "Codec") && base != "Codec" {
				codecs = append(codecs, fd)
			}
		}
	}
	for _, fd := range codecs {
		width, ok := constReturn(p, fd)
		if !ok {
			continue // dynamic width (e.g. a configurable stride) is unverifiable here
		}
		base := strings.TrimSuffix(receiverBase(fd), "Codec")
		suffix := exportName(base) + codecWidthMethods[fd.Name.Name]
		if fd.Name.Name == "HopBytes" && width == 0 {
			continue // fixed-width codec: no per-hop marshaller expected
		}
		size, sized := marshalSize[suffix]
		switch {
		case !marshalSeen[suffix]:
			p.Reportf(fd.Name.Pos(), "%s.%s() declares %d wire bytes but the package has no Marshal%s realizing them",
				receiverBase(fd), fd.Name.Name, width, suffix)
		case !sized:
			p.Reportf(fd.Name.Pos(), "%s.%s() declares %d wire bytes but Marshal%s does not return a fixed [N]byte form",
				receiverBase(fd), fd.Name.Name, width, suffix)
		case size != width:
			p.Reportf(fd.Name.Pos(), "%s.%s() = %d but Marshal%s produces [%d]byte (declared width and wire form disagree)",
				receiverBase(fd), fd.Name.Name, width, suffix, size)
		}
	}
}

// receiverBase returns the receiver's type name ("" for none), unwrapping
// a pointer receiver.
func receiverBase(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// constReturn extracts the method's constant return value when its body is
// statically a single constant (directly or via a named constant).
func constReturn(p *Pass, fd *ast.FuncDecl) (int, bool) {
	var (
		val   int
		found bool
		many  bool
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if found {
			many = true
			return false
		}
		tv, ok := p.Pkg.Info.Types[ret.Results[0]]
		if !ok || tv.Value == nil {
			return true
		}
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			val, found = int(v), true
		}
		return true
	})
	return val, found && !many
}

// exportName capitalizes the first rune: mars11 -> Mars11.
func exportName(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func checkWireFile(p *Pass, f *ast.File) {
	marshals := map[string]*codecFunc{}
	unmarshals := map[string]*codecFunc{}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if suffix, ok := strings.CutPrefix(fd.Name.Name, "Marshal"); ok && suffix != "" {
			if size, ok := resultArraySize(p, fd); ok {
				cf := &codecFunc{decl: fd, size: size}
				cf.spans = collectSpans(p, fd, size, true)
				marshals[suffix] = cf
			}
		}
		if suffix, ok := strings.CutPrefix(fd.Name.Name, "Unmarshal"); ok && suffix != "" {
			if size, ok := paramArraySize(p, fd); ok {
				cf := &codecFunc{decl: fd, size: size}
				cf.spans = collectSpans(p, fd, size, false)
				unmarshals[suffix] = cf
			}
		}
	}
	if len(marshals)+len(unmarshals) == 0 {
		return
	}

	// The paper's constant must stay the paper's constant.
	if obj := p.Pkg.Types.Scope().Lookup("TelemetryHeaderBytes"); obj != nil {
		if c, ok := obj.(*types.Const); ok {
			if v, ok := constant.Int64Val(c.Val()); ok && v != telemetryPayloadBytes {
				p.Reportf(obj.Pos(), "TelemetryHeaderBytes = %d, want %d (the paper's 11-byte telemetry payload)", v, telemetryPayloadBytes)
			}
		}
	}

	suffixes := make([]string, 0, len(marshals))
	for s := range marshals {
		//mars:mapiter-ok keys are sorted before use
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)

	for _, suffix := range suffixes {
		m := marshals[suffix]
		u, ok := unmarshals[suffix]
		if !ok {
			p.Reportf(m.decl.Name.Pos(), "Marshal%s has no Unmarshal%s counterpart to verify symmetry against", suffix, suffix)
			continue
		}
		delete(unmarshals, suffix)
		if m.size != u.size {
			p.Reportf(u.decl.Name.Pos(), "Unmarshal%s takes a [%d]byte wire form but Marshal%s produces [%d]byte", suffix, u.size, suffix, m.size)
			continue
		}
		mspans := dedupeSpans(m.spans)
		uspans := dedupeSpans(u.spans)

		// Overlap within the encoder: two fields sharing bytes.
		for i := 1; i < len(mspans); i++ {
			if mspans[i].lo < mspans[i-1].hi {
				p.Reportf(mspans[i].pos, "Marshal%s writes overlapping byte ranges [%d:%d) and [%d:%d)",
					suffix, mspans[i-1].lo, mspans[i-1].hi, mspans[i].lo, mspans[i].hi)
			}
		}

		// Encode/decode symmetry: identical span sets on both sides.
		for _, s := range diffSpans(mspans, uspans) {
			p.Reportf(s.pos, "Marshal%s writes b[%d:%d] but Unmarshal%s never reads it (encode/decode asymmetry)", suffix, s.lo, s.hi, suffix)
		}
		for _, s := range diffSpans(uspans, mspans) {
			p.Reportf(s.pos, "Unmarshal%s reads b[%d:%d] but Marshal%s never writes it (encode/decode asymmetry)", suffix, s.lo, s.hi, suffix)
		}

		// Coverage: fields must tile the wire form from byte 0 with no
		// holes. Trailing reserved/alignment bytes are tolerated except in
		// the telemetry header, whose widths must sum to exactly 11.
		covered := 0
		for _, s := range mspans {
			if s.lo > covered {
				p.Reportf(m.decl.Name.Pos(), "Marshal%s leaves a hole: bytes [%d:%d) of the %d-byte wire form are never written", suffix, covered, s.lo, m.size)
			}
			if s.hi > covered {
				covered = s.hi
			}
		}
		if suffix == "INT" && covered != m.size {
			p.Reportf(m.decl.Name.Pos(), "MarshalINT field widths sum to %d bytes, want %d (the paper's 11-byte telemetry payload)", covered, m.size)
		}
	}
	rest := make([]string, 0, len(unmarshals))
	for s := range unmarshals {
		//mars:mapiter-ok keys are sorted before use
		rest = append(rest, s)
	}
	sort.Strings(rest)
	for _, suffix := range rest {
		p.Reportf(unmarshals[suffix].decl.Name.Pos(), "Unmarshal%s has no Marshal%s counterpart to verify symmetry against", suffix, suffix)
	}
}

// endianWidths maps encoding/binary accessor names to their byte widths.
var endianWidths = map[string]int{
	"PutUint16": 2, "PutUint32": 4, "PutUint64": 8,
	"Uint16": 2, "Uint32": 4, "Uint64": 8,
}

// collectSpans gathers the byte spans a codec function touches on its
// [size]byte wire buffer: encoding/binary accessor calls over slices of
// the buffer, plus single-byte index writes (marshal) or reads
// (unmarshal).
func collectSpans(p *Pass, fd *ast.FuncDecl, size int, writes bool) []span {
	var spans []span

	// Index expressions appearing as assignment targets.
	assigned := map[*ast.IndexExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					assigned[ix] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p, x)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
				return true
			}
			width, ok := endianWidths[fn.Name()]
			if !ok || len(x.Args) == 0 {
				return true
			}
			isPut := strings.HasPrefix(fn.Name(), "Put")
			if isPut != writes {
				return true
			}
			se, ok := ast.Unparen(x.Args[0]).(*ast.SliceExpr)
			if !ok || !isWireBuffer(p, se.X, size) {
				return true
			}
			lo, okLo := constIndex(p, se.Low, 0)
			hi, okHi := constIndex(p, se.High, size)
			if !okLo || !okHi {
				p.Reportf(se.Pos(), "%s: non-constant slice bounds on the wire buffer defeat width checking", fd.Name.Name)
				return true
			}
			if hi-lo != width {
				p.Reportf(x.Pos(), "%s: %s over b[%d:%d] spans %d bytes, but the accessor moves %d", fd.Name.Name, fn.Name(), lo, hi, hi-lo, width)
			}
			spans = append(spans, span{lo: lo, hi: hi, pos: x.Pos()})
		case *ast.IndexExpr:
			if !isWireBuffer(p, x.X, size) {
				return true
			}
			if assigned[x] != writes {
				return true
			}
			idx, ok := constIndex(p, x.Index, -1)
			if !ok {
				p.Reportf(x.Pos(), "%s: non-constant index on the wire buffer defeats width checking", fd.Name.Name)
				return true
			}
			spans = append(spans, span{lo: idx, hi: idx + 1, pos: x.Pos()})
		}
		return true
	})
	return spans
}

// isWireBuffer reports whether e has type [size]byte (or pointer to it).
func isWireBuffer(p *Pass, e ast.Expr, size int) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok || arr.Len() != int64(size) {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8 // types.Byte is an alias
}

// constIndex evaluates a constant index expression; a nil expression takes
// the given default (slice bounds omit 0 and len).
func constIndex(p *Pass, e ast.Expr, dflt int) (int, bool) {
	if e == nil {
		if dflt < 0 {
			return 0, false
		}
		return dflt, true
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	return int(v), true
}

// resultArraySize extracts N when fd returns [N]byte.
func resultArraySize(p *Pass, fd *ast.FuncDecl) (int, bool) {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return 0, false
	}
	return byteArraySize(p.TypeOf(fd.Type.Results.List[0].Type))
}

// paramArraySize extracts N from fd's first [N]byte parameter.
func paramArraySize(p *Pass, fd *ast.FuncDecl) (int, bool) {
	if fd.Type.Params == nil {
		return 0, false
	}
	for _, fld := range fd.Type.Params.List {
		if n, ok := byteArraySize(p.TypeOf(fld.Type)); ok {
			return n, true
		}
	}
	return 0, false
}

func byteArraySize(t types.Type) (int, bool) {
	if t == nil {
		return 0, false
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return 0, false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	if !ok || (basic.Kind() != types.Byte && basic.Kind() != types.Uint8) {
		return 0, false
	}
	return int(arr.Len()), true
}

// dedupeSpans sorts spans by (lo, hi) and folds exact duplicates (the same
// field written on both arms of a conditional).
func dedupeSpans(spans []span) []span {
	s := append([]span(nil), spans...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].lo != s[j].lo {
			return s[i].lo < s[j].lo
		}
		return s[i].hi < s[j].hi
	})
	out := s[:0]
	for _, sp := range s {
		if len(out) > 0 && out[len(out)-1].lo == sp.lo && out[len(out)-1].hi == sp.hi {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// diffSpans returns the spans of a absent from b (both sorted, deduped).
func diffSpans(a, b []span) []span {
	have := map[string]bool{}
	for _, s := range b {
		have[fmt.Sprintf("%d:%d", s.lo, s.hi)] = true
	}
	var out []span
	for _, s := range a {
		if !have[fmt.Sprintf("%d:%d", s.lo, s.hi)] {
			out = append(out, s)
		}
	}
	return out
}
