// Package intsight re-implements the comparison baseline IntSight
// (Marques et al., CoNEXT'20) at the fidelity needed for Table 1 and
// Fig. 9: every packet carries a large (33 B) INT header accumulating an
// end-to-end latency and a contention bitmap (switches whose queues were
// building when the packet passed), and the sink emits a conditional flow
// report per epoch when the SLO was violated.
//
// Faithful limitations reproduced here (per §5.4): contention points come
// from queuing delta only, so out-of-queue Delay faults produce no
// contention bits and no localization; drop events are sensed at flow
// level (source/destination counter mismatch) but cannot be attributed to
// a switch or port, so Localize returns nothing useful for them.
package intsight

import (
	"sort"

	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Config tunes the baseline.
type Config struct {
	// HeaderBytes is IntSight's per-packet INT cost (the paper cites 33 B).
	HeaderBytes int32
	// SLOLatency is the static end-to-end latency objective.
	SLOLatency netsim.Time
	// ContentionQueueDepth marks a switch as a contention point when its
	// egress queue is at least this deep.
	ContentionQueueDepth int
	// Epoch is the reporting period.
	Epoch netsim.Time
	// ReportBytes is the size of one conditional flow report.
	ReportBytes int64
}

// DefaultConfig mirrors the paper's accounting.
func DefaultConfig() Config {
	return Config{
		HeaderBytes:          33,
		SLOLatency:           25 * netsim.Millisecond,
		ContentionQueueDepth: 8,
		Epoch:                100 * netsim.Millisecond,
		ReportBytes:          64,
	}
}

// meta is the per-packet IntSight header.
type meta struct {
	start      netsim.Time
	contention []topology.NodeID
}

// report is one conditional flow report at the sink.
type report struct {
	flow       netsim.FlowKey
	flowID     dataplane.FlowID
	epoch      int64
	violations int
	contention map[topology.NodeID]int
}

// Culprit is one ranked output entry.
type Culprit struct {
	// Switch is the cited contention point (-1 for flow-only entries).
	Switch topology.NodeID
	// Flow is the reporting (suffering) flow.
	Flow   netsim.FlowKey
	FlowID dataplane.FlowID
	Score  float64
}

// System is the IntSight baseline attached to one simulator run.
type System struct {
	netsim.NopHooks
	Cfg  Config
	Topo *topology.Topology

	reports map[int64]map[netsim.FlowKey]*report
	// srcCount/dstCount give flow-level drop sensing.
	srcCount map[netsim.FlowKey]int64
	dstCount map[netsim.FlowKey]int64

	TelemetryBytes int64
	DiagnosisBytes int64

	sloViolated bool
	dropSensed  bool
	sinkOf      map[topology.NodeID]topology.NodeID
}

// New attaches a fresh IntSight instance.
func New(cfg Config, topo *topology.Topology) *System {
	s := &System{
		Cfg:      cfg,
		Topo:     topo,
		reports:  make(map[int64]map[netsim.FlowKey]*report),
		srcCount: make(map[netsim.FlowKey]int64),
		dstCount: make(map[netsim.FlowKey]int64),
		sinkOf:   make(map[topology.NodeID]topology.NodeID),
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			s.sinkOf[h] = sw
		}
	}
	return s
}

// Detected reports whether any SLO violation report was emitted.
func (s *System) Detected() bool { return s.sloViolated }

// DropSensed reports flow-level drop awareness (never localizable).
func (s *System) DropSensed() bool { return s.dropSensed }

// OnForward implements netsim.Hooks.
func (s *System) OnForward(sim *netsim.Simulator, sw topology.NodeID, inPort, outPort topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	m, _ := pkt.Meta.(*meta)
	if m == nil {
		m = &meta{start: sim.Now()}
		pkt.Meta = m
		pkt.ExtraBytes = s.Cfg.HeaderBytes
		s.srcCount[pkt.Flow]++
	}
	s.TelemetryBytes += int64(s.Cfg.HeaderBytes)
	if qlen >= s.Cfg.ContentionQueueDepth {
		m.contention = append(m.contention, sw)
	}

	// Sink processing: strip header, evaluate SLO, update reports.
	if s.Topo.IsHost(s.Topo.Node(sw).Ports[outPort].Peer) {
		s.dstCount[pkt.Flow]++
		e2e := sim.Now() - m.start
		epoch := int64(sim.Now() / s.Cfg.Epoch)
		if e2e > s.Cfg.SLOLatency {
			s.sloViolated = true
			b := s.reports[epoch]
			if b == nil {
				b = make(map[netsim.FlowKey]*report)
				s.reports[epoch] = b
			}
			r := b[pkt.Flow]
			if r == nil {
				src := s.sinkOf[pkt.Src]
				r = &report{
					flow:       pkt.Flow,
					flowID:     dataplane.FlowID{Src: src, Sink: sw},
					epoch:      epoch,
					contention: make(map[topology.NodeID]int),
				}
				b[pkt.Flow] = r
				s.DiagnosisBytes += s.Cfg.ReportBytes
			}
			r.violations++
			for _, c := range m.contention {
				r.contention[c]++
			}
		}
		// Flow-level drop sensing from the per-flow counters.
		if s.srcCount[pkt.Flow] > s.dstCount[pkt.Flow]+3 {
			s.dropSensed = true
		}
		pkt.ExtraBytes = 0
	}
	return netsim.ActionForward
}

// Localize ranks contention points by citation count across violating
// reports, interleaved with the reporting flows themselves (IntSight's
// reports are per suffering flow — the culprit burst flow is just one of
// many reporters, which is why its micro-burst recall is poor).
func (s *System) Localize() []Culprit {
	if !s.sloViolated {
		return nil
	}
	citations := make(map[topology.NodeID]float64)
	flowViolations := make(map[netsim.FlowKey]float64)
	flowIDs := make(map[netsim.FlowKey]dataplane.FlowID)
	for _, epoch := range det.Keys(s.reports) {
		b := s.reports[epoch]
		for _, fk := range det.Keys(b) {
			r := b[fk]
			for _, sw := range det.Keys(r.contention) {
				citations[sw] += float64(r.contention[sw])
			}
			flowViolations[r.flow] += float64(r.violations)
			flowIDs[r.flow] = r.flowID
		}
	}
	var out []Culprit
	for _, sw := range det.Keys(citations) {
		out = append(out, Culprit{Switch: sw, Flow: 0, Score: citations[sw]})
	}
	for _, f := range det.Keys(flowViolations) {
		out = append(out, Culprit{Switch: -1, Flow: f, FlowID: flowIDs[f], Score: flowViolations[f] / 2})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Switch != out[j].Switch {
			return out[i].Switch > out[j].Switch
		}
		return out[i].Flow < out[j].Flow
	})
	return out
}

var _ netsim.Hooks = (*System)(nil)
