package intsight

import (
	"testing"

	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

func setup(t *testing.T, seed int64) (*System, *netsim.Simulator, *topology.FatTree, *netsim.ECMPRouter) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	cfg := netsim.Config{
		LinkBandwidthBps:     14_000_000,
		HostLinkBandwidthBps: 100_000_000,
		PropDelay:            10 * netsim.Microsecond,
		SwitchProcDelay:      5 * netsim.Microsecond,
		QueueCapacity:        128,
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, seed)
	return sys, sim, ft, router
}

func background(sim *netsim.Simulator, ft *topology.FatTree, stop netsim.Time) {
	workload.RandomBackground(sim, ft, workload.BackgroundConfig{
		NumFlows: 96, RatePPS: 220, Gaps: workload.GapExponential,
		Start: 0, Stop: stop, CrossPodBias: 1.0,
		RoundRobinSrc: true, RoundRobinDst: true,
	}, 1)
}

func TestHeaderCostCharged(t *testing.T) {
	sys, sim, ft, _ := setup(t, 1)
	background(sim, ft, 500*netsim.Millisecond)
	sim.Run(netsim.Second)
	if sys.TelemetryBytes == 0 {
		t.Fatal("IntSight charged no telemetry bytes")
	}
	// 33 B per packet per hop: far heavier than MARS's 12 B per telemetry
	// packet. Sanity: per-packet average over hops must be >= 33 B.
	perPkt := float64(sys.TelemetryBytes) / float64(sim.Stats.Delivered)
	if perPkt < 33 {
		t.Errorf("telemetry per packet = %.1f B, want >= 33", perPkt)
	}
}

func TestNoReportsWithoutViolation(t *testing.T) {
	sys, sim, ft, _ := setup(t, 2)
	background(sim, ft, netsim.Second)
	sim.Run(2 * netsim.Second)
	if sys.Detected() {
		t.Skip("background latency crossed the SLO this seed")
	}
	if got := sys.Localize(); got != nil {
		t.Error("localization without SLO violations")
	}
}

func TestMicroBurstCitesContentionPoints(t *testing.T) {
	sys, sim, ft, router := setup(t, 3)
	background(sim, ft, 4*netsim.Second)
	inj := faults.NewInjector(sim, ft, router)
	inj.Inject(faults.MicroBurst, 2*netsim.Second, netsim.Second)
	sim.Run(4 * netsim.Second)
	if !sys.Detected() {
		t.Fatal("burst did not violate the SLO")
	}
	culprits := sys.Localize()
	if len(culprits) == 0 {
		t.Fatal("no culprits")
	}
	hasSwitch := false
	for _, c := range culprits {
		if c.Switch >= 0 {
			hasSwitch = true
		}
	}
	if !hasSwitch {
		t.Error("no contention-point switches cited")
	}
	if sys.DiagnosisBytes == 0 {
		t.Error("no report bytes charged")
	}
}

func TestDropSensedButNotLocalized(t *testing.T) {
	sys, sim, ft, router := setup(t, 4)
	background(sim, ft, 4*netsim.Second)
	inj := faults.NewInjector(sim, ft, router)
	inj.Inject(faults.Drop, 2*netsim.Second, 1500*netsim.Millisecond)
	sim.Run(4 * netsim.Second)
	// Flow-level drop sensing may fire, but without SLO violations there
	// is no localization output — the paper's "-" cell.
	if !sys.Detected() && sys.Localize() != nil {
		t.Error("localization without SLO violations")
	}
	_ = sys.DropSensed()
}
