// Package spidermon re-implements the comparison baseline SpiderMon
// (Wang et al., NSDI'22) at the fidelity needed for the paper's Table 1
// and Fig. 9: packets carry a small cumulative-queuing-delay header; when
// the accumulated delay crosses a static threshold a "spider" wave
// collects telemetry from ALL switches (not just edges — SpiderMon's
// defining overhead), and diagnosis builds a Wait-For Graph (WFG) between
// flows sharing congested queues, ranking culprits by degree.
//
// Faithful limitations reproduced here (per §5.4): the trigger fires only
// on queuing delay, so out-of-queue Delay faults and Drop faults are never
// detected and no culprit list is produced for them.
package spidermon

import (
	"sort"

	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Config tunes the baseline.
type Config struct {
	// TriggerQueueDepth is the static cumulative queue-depth threshold that
	// fires the spider wave (SpiderMon uses queuing-delta time; queue depth
	// is its observable proxy here).
	TriggerQueueDepth uint32
	// WindowBuckets x BucketLen is the telemetry history the wave collects.
	BucketLen netsim.Time
	// HeaderBytes is SpiderMon's per-packet INT cost (latency only).
	HeaderBytes int32
	// PerSwitchReportBytes is the per-switch cost of one spider wave.
	PerSwitchReportBytes int64
}

// DefaultConfig mirrors the paper's description: a minimal header and
// wave collection from every switch.
func DefaultConfig() Config {
	return Config{
		TriggerQueueDepth:    60,
		BucketLen:            100 * netsim.Millisecond,
		HeaderBytes:          4,
		PerSwitchReportBytes: 2048,
	}
}

// meta is SpiderMon's per-packet header.
type meta struct {
	cumQueue uint32
}

// occKey identifies one egress queue.
type occKey struct {
	sw   topology.NodeID
	port topology.PortID
}

// Culprit is one ranked output entry.
type Culprit struct {
	// Flow is the blamed flow (WFG vertices are flows).
	Flow netsim.FlowKey
	// FlowID is the MARS-style edge-pair identity for cross-system scoring.
	FlowID dataplane.FlowID
	// Switches are the locations implicated by the flow's wait-for edges:
	// the congested switch plus its upstream feeder.
	Switches []topology.NodeID
	// Score is indegree minus outdegree in the WFG.
	Score float64
}

// System is the SpiderMon baseline attached to one simulator run.
type System struct {
	netsim.NopHooks
	Cfg  Config
	Topo *topology.Topology

	// occupancy[bucket][queue][flow] = packets enqueued.
	occupancy map[int64]map[occKey]map[netsim.FlowKey]int32
	// pred[flow] = predecessor switch before each switch (for upstream
	// implication), keyed by (flow, switch).
	pred map[flowSwitch]topology.NodeID
	// flowEdges records each flow's (source edge, sink edge).
	flowEdges map[netsim.FlowKey]dataplane.FlowID

	triggered   bool
	triggerTime netsim.Time
	triggerSw   topology.NodeID

	// Overhead accounting.
	TelemetryBytes int64
	DiagnosisBytes int64

	sinkOf map[topology.NodeID]topology.NodeID
}

type flowSwitch struct {
	flow netsim.FlowKey
	sw   topology.NodeID
}

// New attaches a fresh SpiderMon instance (use as the simulator's Hooks).
func New(cfg Config, topo *topology.Topology) *System {
	s := &System{
		Cfg:       cfg,
		Topo:      topo,
		occupancy: make(map[int64]map[occKey]map[netsim.FlowKey]int32),
		pred:      make(map[flowSwitch]topology.NodeID),
		flowEdges: make(map[netsim.FlowKey]dataplane.FlowID),
		sinkOf:    make(map[topology.NodeID]topology.NodeID),
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			s.sinkOf[h] = sw
		}
	}
	return s
}

// Detected reports whether the static trigger ever fired.
func (s *System) Detected() bool { return s.triggered }

// OnForward implements netsim.Hooks.
func (s *System) OnForward(sim *netsim.Simulator, sw topology.NodeID, inPort, outPort topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	m, _ := pkt.Meta.(*meta)
	if m == nil {
		m = &meta{}
		pkt.Meta = m
		pkt.ExtraBytes = s.Cfg.HeaderBytes
		src, _ := s.sinkOf[pkt.Src]
		s.flowEdges[pkt.Flow] = dataplane.FlowID{Src: src, Sink: s.sinkOf[pkt.Dst]}
	}
	m.cumQueue += uint32(qlen)
	s.TelemetryBytes += int64(s.Cfg.HeaderBytes)

	bucket := int64(sim.Now() / s.Cfg.BucketLen)
	qk := occKey{sw, outPort}
	b := s.occupancy[bucket]
	if b == nil {
		b = make(map[occKey]map[netsim.FlowKey]int32)
		s.occupancy[bucket] = b
	}
	q := b[qk]
	if q == nil {
		q = make(map[netsim.FlowKey]int32)
		b[qk] = q
	}
	q[pkt.Flow]++

	if inPeer := s.Topo.Node(sw).Ports[inPort].Peer; s.Topo.IsSwitch(inPeer) {
		s.pred[flowSwitch{pkt.Flow, sw}] = inPeer
	}

	if !s.triggered && m.cumQueue >= s.Cfg.TriggerQueueDepth {
		s.triggered = true
		s.triggerTime = sim.Now()
		s.triggerSw = sw
		// Spider wave: every switch reports its recent telemetry.
		s.DiagnosisBytes += int64(s.Topo.NumSwitches()) * s.Cfg.PerSwitchReportBytes
	}
	return netsim.ActionForward
}

// Localize builds the WFG over the buckets around the trigger and returns
// flows ranked by (indegree - outdegree). It returns nil when the trigger
// never fired — SpiderMon cannot start an RCA it never detected.
func (s *System) Localize() []Culprit {
	if !s.triggered {
		return nil
	}
	trigBucket := int64(s.triggerTime / s.Cfg.BucketLen)
	in := make(map[netsim.FlowKey]float64)
	out := make(map[netsim.FlowKey]float64)
	domQueue := make(map[netsim.FlowKey]occKey)
	domCount := make(map[netsim.FlowKey]int32)

	occKeyLess := func(a, b occKey) bool {
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		return a.port < b.port
	}
	for b := trigBucket - 1; b <= trigBucket; b++ {
		buckets := s.occupancy[b]
		for _, qk := range det.KeysFunc(buckets, occKeyLess) {
			flows := buckets[qk]
			// Flows with fewer packets in the queue wait for flows with
			// more; self-edges are excluded.
			type fc struct {
				f netsim.FlowKey
				c int32
			}
			list := make([]fc, 0, len(flows))
			for _, f := range det.Keys(flows) {
				c := flows[f]
				list = append(list, fc{f, c})
				if c > domCount[f] {
					domCount[f] = c
					domQueue[f] = qk
				}
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].c != list[j].c {
					return list[i].c < list[j].c
				}
				return list[i].f < list[j].f
			})
			for i := 0; i < len(list); i++ {
				for j := i + 1; j < len(list); j++ {
					if list[j].c > list[i].c {
						out[list[i].f]++
						in[list[j].f]++
					}
				}
			}
		}
	}

	var flows []netsim.FlowKey
	seen := map[netsim.FlowKey]bool{}
	for _, f := range det.Keys(in) {
		if !seen[f] {
			seen[f] = true
			flows = append(flows, f)
		}
	}
	for _, f := range det.Keys(out) {
		if !seen[f] {
			seen[f] = true
			flows = append(flows, f)
		}
	}
	culprits := make([]Culprit, 0, len(flows))
	for _, f := range flows {
		qk := domQueue[f]
		locs := []topology.NodeID{qk.sw}
		// SpiderMon's wait-for provenance walks upstream along the
		// congestion tree: implicate the flow's feeder into the hot queue.
		if p, ok := s.pred[flowSwitch{f, qk.sw}]; ok {
			locs = append(locs, p)
		}
		culprits = append(culprits, Culprit{
			Flow:     f,
			FlowID:   s.flowEdges[f],
			Switches: locs,
			Score:    in[f] - out[f],
		})
	}
	sort.Slice(culprits, func(i, j int) bool {
		if culprits[i].Score != culprits[j].Score {
			return culprits[i].Score > culprits[j].Score
		}
		return culprits[i].Flow < culprits[j].Flow
	})
	return culprits
}

var _ netsim.Hooks = (*System)(nil)
