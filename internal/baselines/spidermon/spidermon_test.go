package spidermon

import (
	"testing"

	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

func setup(t *testing.T, seed int64) (*System, *netsim.Simulator, *topology.FatTree, *netsim.ECMPRouter) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	cfg := netsim.Config{
		LinkBandwidthBps:     14_000_000,
		HostLinkBandwidthBps: 100_000_000,
		PropDelay:            10 * netsim.Microsecond,
		SwitchProcDelay:      5 * netsim.Microsecond,
		QueueCapacity:        128,
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, seed)
	return sys, sim, ft, router
}

func background(sim *netsim.Simulator, ft *topology.FatTree, stop netsim.Time) {
	workload.RandomBackground(sim, ft, workload.BackgroundConfig{
		NumFlows: 96, RatePPS: 220, Gaps: workload.GapExponential,
		Start: 0, Stop: stop, CrossPodBias: 1.0,
		RoundRobinSrc: true, RoundRobinDst: true,
	}, 1)
}

func TestHealthyTrafficTriggerBehavior(t *testing.T) {
	// A static threshold may or may not misfire on healthy tail queueing —
	// that fragility is the paper's critique of trigger-based baselines.
	// The contract under test: no trigger => no localization output.
	sys, sim, ft, _ := setup(t, 1)
	background(sim, ft, 2*netsim.Second)
	sim.Run(2 * netsim.Second)
	if !sys.Detected() {
		if got := sys.Localize(); got != nil {
			t.Errorf("Localize without trigger = %v, want nil", got)
		}
	} else {
		t.Logf("static trigger misfired on healthy traffic (expected fragility)")
	}
}

func TestTriggersOnMicroBurstAndRanksFlows(t *testing.T) {
	sys, sim, ft, router := setup(t, 2)
	background(sim, ft, 4*netsim.Second)
	inj := faults.NewInjector(sim, ft, router)
	inj.Inject(faults.MicroBurst, 2*netsim.Second, netsim.Second)
	sim.Run(4 * netsim.Second)
	if !sys.Detected() {
		t.Fatal("burst congestion did not trigger the spider wave")
	}
	culprits := sys.Localize()
	if len(culprits) == 0 {
		t.Fatal("no culprits")
	}
	// Scores must be non-increasing.
	for i := 1; i < len(culprits); i++ {
		if culprits[i].Score > culprits[i-1].Score {
			t.Fatalf("scores not sorted at %d", i)
		}
	}
	// The wave must have been charged to every switch.
	wantDiag := int64(ft.NumSwitches()) * DefaultConfig().PerSwitchReportBytes
	if sys.DiagnosisBytes != wantDiag {
		t.Errorf("diagnosis bytes = %d, want %d", sys.DiagnosisBytes, wantDiag)
	}
}

func TestNoDetectionForDelayFault(t *testing.T) {
	// SpiderMon's trigger is queuing-based: an out-of-queue delay fault
	// must not fire it (the paper's "-" cells).
	sys, sim, ft, router := setup(t, 3)
	background(sim, ft, 4*netsim.Second)
	inj := faults.NewInjector(sim, ft, router)
	inj.Inject(faults.Delay, 2*netsim.Second, 1500*netsim.Millisecond)
	sim.Run(4 * netsim.Second)
	if sys.Detected() {
		t.Skip("background queueing crossed the static trigger this seed")
	}
	if got := sys.Localize(); got != nil {
		t.Error("localization without detection")
	}
}

func TestTelemetryBytesAccrue(t *testing.T) {
	sys, sim, ft, _ := setup(t, 4)
	background(sim, ft, 500*netsim.Millisecond)
	sim.Run(netsim.Second)
	if sys.TelemetryBytes == 0 {
		t.Error("no telemetry accounted")
	}
}
