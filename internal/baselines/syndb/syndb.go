// Package syndb re-implements the comparison baseline SyNDB (Kannan et
// al., NSDI'21) at the fidelity needed for Table 1 and Fig. 9: every
// switch streams a p-record for every packet it forwards into a central
// database (enormous diagnosis bandwidth, zero INT header), and diagnosis
// is query-based — the operator must know what to look for.
//
// As in the paper's evaluation, this implementation is granted expert
// knowledge: Localize takes the fault class as the query to run, which is
// why its accuracy is shown grayed-out in Table 1. Without that hint an
// operator would iterate every query.
package syndb

import (
	"sort"

	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Query selects the expert diagnosis procedure.
type Query uint8

const (
	// QueryMicroBurst looks for per-flow rate spikes.
	QueryMicroBurst Query = iota
	// QueryECMP looks for uneven successor splits.
	QueryECMP
	// QueryProcessRate looks for persistently deep queues.
	QueryProcessRate
	// QueryDelay looks for inflated per-switch residence times.
	QueryDelay
	// QueryDrop looks for packets that vanish after a switch.
	QueryDrop
)

// Config tunes the baseline.
type Config struct {
	// RecordBytes is the wire size of one p-record streamed to the DB.
	RecordBytes int64
	// MaxRecords bounds the database (a capture ring, as in SyNDB).
	MaxRecords int
	// Bucket is the time bucket for rate queries.
	Bucket netsim.Time
}

// DefaultConfig mirrors the paper's accounting.
func DefaultConfig() Config {
	return Config{RecordBytes: 16, MaxRecords: 1 << 20, Bucket: 100 * netsim.Millisecond}
}

// pRecord is one per-switch packet record.
type pRecord struct {
	pkt  uint64
	flow netsim.FlowKey
	sw   topology.NodeID
	port topology.PortID
	at   netsim.Time
	qlen int32
}

// Culprit is one ranked output entry.
type Culprit struct {
	Switch topology.NodeID // -1 for flow entries
	Flow   netsim.FlowKey
	FlowID dataplane.FlowID
	Score  float64
}

// System is the SyNDB baseline attached to one simulator run.
type System struct {
	netsim.NopHooks
	Cfg  Config
	Topo *topology.Topology

	records []pRecord
	// lastSeen/delivered support the drop query.
	lastSeen  map[uint64]topology.NodeID
	delivered map[uint64]bool
	flowIDs   map[netsim.FlowKey]dataplane.FlowID

	TelemetryBytes int64 // always 0: SyNDB adds no INT header
	DiagnosisBytes int64

	sinkOf map[topology.NodeID]topology.NodeID
}

// New attaches a fresh SyNDB instance.
func New(cfg Config, topo *topology.Topology) *System {
	s := &System{
		Cfg:       cfg,
		Topo:      topo,
		lastSeen:  make(map[uint64]topology.NodeID),
		delivered: make(map[uint64]bool),
		flowIDs:   make(map[netsim.FlowKey]dataplane.FlowID),
		sinkOf:    make(map[topology.NodeID]topology.NodeID),
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			s.sinkOf[h] = sw
		}
	}
	return s
}

// OnForward implements netsim.Hooks: every switch streams a p-record.
func (s *System) OnForward(sim *netsim.Simulator, sw topology.NodeID, inPort, outPort topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	if len(s.records) < s.Cfg.MaxRecords {
		s.records = append(s.records, pRecord{
			pkt: pkt.ID, flow: pkt.Flow, sw: sw, port: outPort,
			at: sim.Now(), qlen: int32(qlen),
		})
	}
	s.DiagnosisBytes += s.Cfg.RecordBytes
	s.lastSeen[pkt.ID] = sw
	if _, ok := s.flowIDs[pkt.Flow]; !ok {
		s.flowIDs[pkt.Flow] = dataplane.FlowID{Src: s.sinkOf[pkt.Src], Sink: s.sinkOf[pkt.Dst]}
	}
	return netsim.ActionForward
}

// OnDeliver implements netsim.Hooks.
func (s *System) OnDeliver(sim *netsim.Simulator, host topology.NodeID, pkt *netsim.Packet) {
	s.delivered[pkt.ID] = true
}

// Localize runs the expert query for the (externally known) fault class.
func (s *System) Localize(q Query) []Culprit {
	switch q {
	case QueryMicroBurst:
		return s.queryMicroBurst()
	case QueryECMP:
		return s.queryECMP()
	case QueryProcessRate:
		return s.queryProcessRate()
	case QueryDelay:
		return s.queryDelay()
	case QueryDrop:
		return s.queryDrop()
	default:
		return s.queryDrop()
	}
}

func sortCulprits(out []Culprit) []Culprit {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Flow < out[j].Flow
	})
	return out
}

// queryMicroBurst ranks flows by peak-to-median bucket rate.
func (s *System) queryMicroBurst() []Culprit {
	buckets := make(map[netsim.FlowKey]map[int64]float64)
	for _, r := range s.records {
		b := buckets[r.flow]
		if b == nil {
			b = make(map[int64]float64)
			buckets[r.flow] = b
		}
		b[int64(r.at/s.Cfg.Bucket)]++
	}
	var out []Culprit
	for _, f := range det.Keys(buckets) {
		b := buckets[f]
		var vals []float64
		var peak float64
		//mars:mapiter-ok peak is a pure maximum and vals is fully sorted before use
		for _, v := range b {
			vals = append(vals, v)
			if v > peak {
				peak = v
			}
		}
		sort.Float64s(vals)
		med := vals[len(vals)/2]
		if med < 1 {
			med = 1
		}
		out = append(out, Culprit{Switch: -1, Flow: f, FlowID: s.flowIDs[f], Score: peak / med})
	}
	return sortCulprits(out)
}

// queryECMP ranks switches by successor-count imbalance.
func (s *System) queryECMP() []Culprit {
	// Reconstruct per-packet switch sequences from record order.
	succ := make(map[topology.NodeID]map[topology.NodeID]float64)
	prevSw := make(map[uint64]topology.NodeID)
	hasPrev := make(map[uint64]bool)
	for _, r := range s.records {
		if hasPrev[r.pkt] {
			p := prevSw[r.pkt]
			m := succ[p]
			if m == nil {
				m = make(map[topology.NodeID]float64)
				succ[p] = m
			}
			m[r.sw]++
		}
		prevSw[r.pkt] = r.sw
		hasPrev[r.pkt] = true
	}
	var out []Culprit
	for _, sw := range det.Keys(succ) {
		m := succ[sw]
		if len(m) < 2 {
			continue
		}
		var max, min float64
		first := true
		//mars:mapiter-ok max and min are pure extrema over the values
		for _, v := range m {
			if first || v > max {
				max = v
			}
			if first || v < min {
				min = v
			}
			first = false
		}
		if min < 1 {
			min = 1
		}
		out = append(out, Culprit{Switch: sw, Score: max / min})
	}
	return sortCulprits(out)
}

// queryProcessRate ranks switches by their deepest port's mean queue.
func (s *System) queryProcessRate() []Culprit {
	type pk struct {
		sw   topology.NodeID
		port topology.PortID
	}
	sum := make(map[pk]float64)
	n := make(map[pk]float64)
	for _, r := range s.records {
		k := pk{r.sw, r.port}
		sum[k] += float64(r.qlen)
		n[k]++
	}
	best := make(map[topology.NodeID]float64)
	//mars:mapiter-ok best keeps a pure per-switch maximum; ties store the identical value
	for k, s2 := range sum {
		mean := s2 / n[k]
		if mean > best[k.sw] {
			best[k.sw] = mean
		}
	}
	var out []Culprit
	for _, sw := range det.Keys(best) {
		out = append(out, Culprit{Switch: sw, Score: best[sw]})
	}
	return sortCulprits(out)
}

// queryDelay ranks switches by mean hop gap (time between the previous
// switch's record and this switch's record for the same packet). The gap
// contains the upstream serialization plus this switch's own processing
// latency, so out-of-queue delay faults surface at the delayed switch.
func (s *System) queryDelay() []Culprit {
	lastAt := make(map[uint64]netsim.Time)
	has := make(map[uint64]bool)
	sum := make(map[topology.NodeID]float64)
	n := make(map[topology.NodeID]float64)
	for _, r := range s.records {
		if has[r.pkt] {
			sum[r.sw] += float64(r.at - lastAt[r.pkt])
			n[r.sw]++
		}
		lastAt[r.pkt] = r.at
		has[r.pkt] = true
	}
	var out []Culprit
	for _, sw := range det.Keys(sum) {
		out = append(out, Culprit{Switch: sw, Score: sum[sw] / n[sw]})
	}
	return sortCulprits(out)
}

// queryDrop ranks switches by the number of packets last seen there that
// were never delivered.
func (s *System) queryDrop() []Culprit {
	vanished := make(map[topology.NodeID]float64)
	//mars:mapiter-ok counting by exact float increments of 1 is order-independent
	for pkt, sw := range s.lastSeen {
		if !s.delivered[pkt] {
			vanished[sw]++
		}
	}
	var out []Culprit
	for _, sw := range det.Keys(vanished) {
		out = append(out, Culprit{Switch: sw, Score: vanished[sw]})
	}
	return sortCulprits(out)
}

var _ netsim.Hooks = (*System)(nil)
