package syndb

import (
	"testing"

	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

func setup(t *testing.T, seed int64) (*System, *netsim.Simulator, *topology.FatTree, *netsim.ECMPRouter) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	cfg := netsim.Config{
		LinkBandwidthBps:     14_000_000,
		HostLinkBandwidthBps: 100_000_000,
		PropDelay:            10 * netsim.Microsecond,
		SwitchProcDelay:      5 * netsim.Microsecond,
		QueueCapacity:        128,
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, seed)
	return sys, sim, ft, router
}

func run(t *testing.T, seed int64, kind faults.Kind) (*System, faults.GroundTruth) {
	sys, sim, ft, router := setup(t, seed)
	workload.RandomBackground(sim, ft, workload.BackgroundConfig{
		NumFlows: 96, RatePPS: 220, Gaps: workload.GapExponential,
		Start: 0, Stop: 4 * netsim.Second, CrossPodBias: 1.0,
		RoundRobinSrc: true, RoundRobinDst: true,
	}, 1)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(kind, 2*netsim.Second, 1500*netsim.Millisecond)
	sim.Run(4 * netsim.Second)
	return sys, gt
}

func rankOf(culprits []Culprit, sw topology.NodeID) int {
	for i, c := range culprits {
		if c.Switch == sw {
			return i + 1
		}
	}
	return 0
}

func TestZeroTelemetryHugeDiagnosis(t *testing.T) {
	sys, _ := run(t, 1, faults.Delay)
	if sys.TelemetryBytes != 0 {
		t.Errorf("SyNDB should add no INT header, got %d B", sys.TelemetryBytes)
	}
	if sys.DiagnosisBytes < 1<<20 {
		t.Errorf("p-record streaming = %d B, expected MBs", sys.DiagnosisBytes)
	}
}

func TestExpertDelayQueryFindsSwitch(t *testing.T) {
	sys, gt := run(t, 2, faults.Delay)
	r := rankOf(sys.Localize(QueryDelay), gt.Switch)
	if r < 1 || r > 2 {
		t.Errorf("delay query ranked true switch %d", r)
	}
}

func TestExpertDropQueryFindsSwitch(t *testing.T) {
	sys, gt := run(t, 3, faults.Drop)
	r := rankOf(sys.Localize(QueryDrop), gt.Switch)
	if r < 1 || r > 2 {
		t.Errorf("drop query ranked true switch %d", r)
	}
}

func TestExpertProcessRateQuery(t *testing.T) {
	sys, gt := run(t, 4, faults.ProcessRateDecrease)
	r := rankOf(sys.Localize(QueryProcessRate), gt.Switch)
	if r < 1 || r > 3 {
		t.Errorf("process-rate query ranked true switch %d", r)
	}
}

func TestMicroBurstQueryRanksFlows(t *testing.T) {
	sys, gt := run(t, 5, faults.MicroBurst)
	culprits := sys.Localize(QueryMicroBurst)
	if len(culprits) == 0 {
		t.Fatal("no culprits")
	}
	// The burst flow should rank well by peak/median rate.
	want := gt.BurstSrcEdge
	found := 0
	for i, c := range culprits {
		if i >= 5 {
			break
		}
		if c.Switch == -1 && c.FlowID.Src == want && c.FlowID.Sink == gt.BurstSinkEdge {
			found = i + 1
			break
		}
	}
	if found == 0 {
		t.Logf("burst flow not in top-5 (acceptable per paper's 44%% R@1); head: %v", culprits[:3])
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a, _ := run(t, 6, faults.Delay)
	b, _ := run(t, 6, faults.Delay)
	la, lb := a.Localize(QueryDelay), b.Localize(QueryDelay)
	if len(la) != len(lb) {
		t.Fatalf("lengths differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i].Switch != lb[i].Switch {
			t.Fatalf("order differs at %d", i)
		}
	}
}
