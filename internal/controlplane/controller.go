// Package controlplane implements the MARS controller: it periodically
// pulls the "latency" field of sink-switch Ring Tables (the paper uses the
// P4Runtime API; here every exchange travels an explicit control channel
// with counted bytes), feeds per-flow reservoirs, pushes refreshed dynamic
// thresholds down to the data plane, and — when a data-plane notification
// arrives — collects the Ring Tables of all edge switches as diagnosis
// data for root cause analysis (§4.3, §4.4).
//
// The channel (internal/ctrlchan) may lose, delay, reorder, or duplicate
// messages, so the controller is built to survive its own control plane
// being faulty: Ring Table collections and refresh pulls carry per-request
// timeouts with capped exponential backoff and a retry budget; channel
// sequence numbers deduplicate duplicated or reordered notifications; and
// threshold pushes are acknowledged and re-sent until confirmed. When some
// edge switches never answer a collection within the retry budget, the
// controller does not stall: it hands RCA a partial diagnosis tagged with
// the missing sinks, and the analyzer annotates its culprits with the
// resulting confidence instead of silently assuming complete data.
package controlplane

import (
	"math/rand"

	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/reservoir"
	"mars/internal/topology"
)

// Config parameterizes the controller.
type Config struct {
	// RefreshPeriod is how often reservoirs are fed and thresholds pushed.
	RefreshPeriod netsim.Time
	// ResponseWindow rate-limits diagnosis collections: the control plane
	// responds to at most one notification per window (§4.4).
	ResponseWindow netsim.Time
	// Reservoir configures the per-flow latency reservoirs.
	Reservoir reservoir.Config
	// Seed drives reservoir replacement randomness and retry jitter.
	Seed int64

	// RequestTimeout is the per-request response deadline for Ring Table
	// collections, refresh pulls, and threshold pushes.
	RequestTimeout netsim.Time
	// MaxRetries is the retry budget per request after the first attempt;
	// 0 disables retransmission (the no-retry ablation).
	MaxRetries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax.
	BackoffBase netsim.Time
	// BackoffMax caps the exponential backoff.
	BackoffMax netsim.Time
	// BackoffJitter randomizes each backoff by ±Jitter/2 of its value so
	// retries to many switches do not synchronize.
	BackoffJitter float64

	// Decoder is the controller-side half of the selected telemetry codec
	// (internal/telemetry): it reconstructs collected Ring Table records
	// and prices them on the collection wire. nil means the paper's exact
	// encoding — identity reconstruction, 28-byte records.
	Decoder RecordDecoder
}

// Clock is the controller's scheduling seam. In the simulator it is the
// discrete-event heap itself (*netsim.Simulator implements it directly and
// callbacks run at virtual times); in the real-process deployment mode it
// is a serialized wall-clock run loop (internal/rtclock) whose Time values
// are nanoseconds since process start. The controller never compares its
// clock against record arrival stamps — recency anchoring uses the
// data-plane's own timeline via Diagnosis.AsOf — so the two interpretations
// never mix.
type Clock interface {
	// Now returns the current time on the clock's timeline.
	Now() netsim.Time
	// After runs fn once, d after Now.
	After(d netsim.Time, fn func())
	// At runs fn once at absolute time t (immediately if t has passed).
	At(t netsim.Time, fn func())
}

// RecordDecoder reconstructs a collected telemetry snapshot. The second
// return of DecodeRecords is the per-record reconstruction confidence in
// [0,1], aligned with the returned records; RCA folds its mean into
// culprit confidence. Every internal/telemetry Codec satisfies this.
type RecordDecoder interface {
	DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64)
	RecordBytes() int
}

// DefaultConfig matches the data plane's 100 ms epochs: thresholds refresh
// every 200 ms, diagnosis at most once per 500 ms. The deviation multiple
// is raised to 6 MAD units (~4σ-equivalent for Gaussian noise): multi-hop
// latency under Poisson cross-traffic is heavy-tailed, and a 3-MAD
// threshold flags a few percent of healthy telemetry records. Reliability
// knobs assume a ~1 ms control RTT: 20 ms deadlines, 3 retries, 10→80 ms
// backoff — a full retry cycle fits well inside one response window.
func DefaultConfig() Config {
	rc := reservoir.DefaultConfig()
	rc.C = 6
	return Config{
		RefreshPeriod:  200 * netsim.Millisecond,
		ResponseWindow: 500 * netsim.Millisecond,
		Reservoir:      rc,
		Seed:           1,
		RequestTimeout: 20 * netsim.Millisecond,
		MaxRetries:     3,
		BackoffBase:    10 * netsim.Millisecond,
		BackoffMax:     80 * netsim.Millisecond,
		BackoffJitter:  0.5,
	}
}

// Diagnosis is one on-demand collection: the trigger plus the telemetry
// snapshot pulled from the edge switches that answered in time.
type Diagnosis struct {
	Trigger dataplane.Notification
	Records []dataplane.RTRecord
	Time    netsim.Time
	// AsOf is the newest snapshot stamp among the collect responses (the
	// data-plane timeline moment the collected records are current as of).
	// Zero in the simulator, where collection is synchronous and Time
	// already sits on the data's timeline; the deployment mode's analyzer
	// anchors record recency to AsOf instead of the controller's wall clock.
	AsOf netsim.Time
	// Requested is how many edge switches the collection contacted.
	Requested int
	// MissingSinks lists the edge switches that never responded within
	// the retry budget; empty for a complete collection.
	MissingSinks []topology.NodeID
	// RecordConfidence, when non-nil, is the codec decoder's per-record
	// reconstruction confidence aligned with Records. nil means the exact
	// default encoding (confidence 1 everywhere).
	RecordConfidence []float64
}

// ReconstructionConfidence is the mean per-record reconstruction
// confidence, 1 for exact encodings (nil RecordConfidence) and for empty
// collections.
func (d Diagnosis) ReconstructionConfidence() float64 {
	if len(d.RecordConfidence) == 0 {
		return 1
	}
	var s float64
	for _, c := range d.RecordConfidence {
		s += c
	}
	return s / float64(len(d.RecordConfidence))
}

// Coverage returns the fraction of contacted sinks that answered (1 for a
// complete collection, and for the degenerate zero-sink topology).
func (d Diagnosis) Coverage() float64 {
	if d.Requested == 0 {
		return 1
	}
	return float64(d.Requested-len(d.MissingSinks)) / float64(d.Requested)
}

// Partial reports whether any contacted sink is missing.
func (d Diagnosis) Partial() bool { return len(d.MissingSinks) > 0 }

// BandwidthStats counts every control-channel byte for the Fig. 9 study.
type BandwidthStats struct {
	// NotificationBytes: data plane -> control plane triggers.
	NotificationBytes int64
	// CollectionBytes: Ring Table pulls (diagnosis data). Counted when a
	// response is put on the channel, so retransmitted collections cost
	// their true repeated bytes.
	CollectionBytes int64
	// RefreshBytes: periodic latency pulls for reservoir upkeep.
	RefreshBytes int64
	// ThresholdPushBytes: control plane -> data plane threshold updates.
	ThresholdPushBytes int64
	// RequestBytes: collection and refresh request frames (kept out of
	// DiagnosisBytes so the Fig. 9 bar keeps its original definition).
	RequestBytes int64
	// AckBytes: threshold acknowledgement frames.
	AckBytes int64
	// Diagnoses counts completed collections.
	Diagnoses int64
	// PartialDiagnoses counts collections that finished with missing sinks.
	PartialDiagnoses int64
	// SuppressedNotifications counts notifications that arrived inside the
	// response window (the latest one is retained, not dropped).
	SuppressedNotifications int64
	// DuplicateNotifications counts channel-duplicated or reordered
	// re-deliveries discarded by sequence-number dedup.
	DuplicateNotifications int64
	// Retries counts request retransmissions (collect + refresh + push).
	Retries int64
}

// DiagnosisBytes returns the on-demand (trigger + collection) total, the
// "Diagnosis" bar of Fig. 9.
func (b BandwidthStats) DiagnosisBytes() int64 {
	return b.NotificationBytes + b.CollectionBytes
}

// collection is one in-flight diagnosis: per-sink requests race their
// timeouts, and the diagnosis finalizes when every sink has either
// answered or exhausted its retry budget.
type collection struct {
	trigger   dataplane.Notification
	records   []dataplane.RTRecord
	pending   map[topology.NodeID]bool
	missing   []topology.NodeID
	requested int
	finished  bool
	// asOf tracks the newest response Stamp (zero on the in-sim path).
	asOf netsim.Time
}

// collectReq tracks one outstanding collection request attempt.
type collectReq struct {
	col     *collection
	sw      topology.NodeID
	attempt int
}

// refreshReq tracks one outstanding refresh pull attempt.
type refreshReq struct {
	sw      topology.NodeID
	attempt int
}

// noteKey deduplicates notification deliveries. The sequence number alone
// is not enough: in the multi-process deployment every switch process mints
// its own Seq stream, so streams from different switches collide. In the
// simulator the controller mints every Seq from one global counter, making
// the (switch, seq) pair exactly as unique as the bare seq was.
type noteKey struct {
	sw  topology.NodeID
	seq uint64
}

// pushKey identifies a per-switch per-flow threshold installation.
type pushKey struct {
	sw   topology.NodeID
	flow dataplane.FlowID
}

// pushState tracks threshold convergence for one (switch, flow): the value
// the controller wants installed, the last value the switch acknowledged,
// and the in-flight attempt. At most one push per key is outstanding.
type pushState struct {
	want          netsim.Time
	confirmed     netsim.Time
	haveConfirmed bool
	inFlight      bool
	seq           uint64
	attempts      int
}

// Controller is the MARS control plane.
type Controller struct {
	Cfg   Config
	Prog  *dataplane.Program
	Topo  *topology.Topology
	Bytes BandwidthStats

	// OnDiagnosis receives each collected diagnosis (the RCA entry point).
	OnDiagnosis func(d Diagnosis)

	clock      Clock
	tr         ctrlchan.Transport
	rng        *rand.Rand
	reservoirs map[dataplane.FlowID]*reservoir.Reservoir
	// lastSeen tracks, per sink switch, the arrival time of the newest RT
	// record already fed to reservoirs (the refresh pull watermark).
	lastSeen      map[topology.NodeID]netsim.Time
	lastDiagnosis netsim.Time
	haveDiagnosed bool
	edgeSwitches  []topology.NodeID
	started       bool

	// Channel sequencing and outstanding-request state.
	nextSeq        uint64
	seenNotes      map[noteKey]bool
	collectSeqs    map[uint64]collectReq
	refreshSeqs    map[uint64]refreshReq
	refreshPending map[topology.NodeID]bool
	pushes         map[pushKey]*pushState
	pushSeqs       map[uint64]pushKey

	// suppressed retains the newest notification that arrived inside the
	// response window, so a diagnosis fires when the window reopens
	// instead of the trigger being silently dropped.
	suppressed     *dataplane.Notification
	flushScheduled bool
}

// New wires a controller to a simulator and data-plane program over a
// perfect (synchronous, lossless) control channel. Call Start to begin
// the refresh loop, and pass the controller to the program as its
// Notifier.
func New(cfg Config, sim *netsim.Simulator, prog *dataplane.Program) *Controller {
	return NewWithChannel(cfg, sim, prog, nil)
}

// NewWithChannel wires a controller over an explicit control channel
// (nil means a perfect one).
func NewWithChannel(cfg Config, sim *netsim.Simulator, prog *dataplane.Program, ch *ctrlchan.Channel) *Controller {
	if ch == nil {
		ch = ctrlchan.New(sim, ctrlchan.Config{Seed: cfg.Seed})
	}
	return NewWithTransport(cfg, sim, prog, ch)
}

// NewWithTransport wires a controller to an arbitrary clock and transport —
// the seam the real-process deployment mode enters through. With a
// *netsim.Simulator clock and a *ctrlchan.Channel transport this is exactly
// NewWithChannel; with an rtclock loop and a UDP transport the same
// reliability machinery runs against real sockets.
func NewWithTransport(cfg Config, clock Clock, prog *dataplane.Program, tr ctrlchan.Transport) *Controller {
	c := &Controller{
		Cfg:            cfg,
		Prog:           prog,
		Topo:           prog.Topo,
		clock:          clock,
		tr:             tr,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		reservoirs:     make(map[dataplane.FlowID]*reservoir.Reservoir),
		lastSeen:       make(map[topology.NodeID]netsim.Time),
		seenNotes:      make(map[noteKey]bool),
		collectSeqs:    make(map[uint64]collectReq),
		refreshSeqs:    make(map[uint64]refreshReq),
		refreshPending: make(map[topology.NodeID]bool),
		pushes:         make(map[pushKey]*pushState),
		pushSeqs:       make(map[uint64]pushKey),
	}
	for _, sw := range c.Topo.Switches() {
		for _, p := range c.Topo.Node(sw).Ports {
			if c.Topo.IsHost(p.Peer) {
				c.edgeSwitches = append(c.edgeSwitches, sw)
				break
			}
		}
	}
	return c
}

// Channel exposes the control channel (for fault injection and stats); nil
// when the controller runs over a non-Channel transport.
func (c *Controller) Channel() *ctrlchan.Channel {
	ch, _ := c.tr.(*ctrlchan.Channel)
	return ch
}

// Deliver dispatches an inbound switch → controller message. It is the
// handler a socket transport's read loop hands frames to; the in-simulator
// path reaches the same dispatch through the Channel's deliver callback.
func (c *Controller) Deliver(m ctrlchan.Message) { c.deliverToController(m) }

// EdgeSwitches returns the switches with attached hosts (telemetry sinks).
func (c *Controller) EdgeSwitches() []topology.NodeID { return c.edgeSwitches }

// Start schedules the periodic reservoir/threshold refresh loop.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	var tick func()
	tick = func() {
		c.Refresh()
		c.clock.After(c.Cfg.RefreshPeriod, tick)
	}
	c.clock.After(c.Cfg.RefreshPeriod, tick)
}

// ReservoirFor returns (creating if needed) the flow's reservoir.
func (c *Controller) ReservoirFor(flow dataplane.FlowID) *reservoir.Reservoir {
	r := c.reservoirs[flow]
	if r == nil {
		r = reservoir.New(c.Cfg.Reservoir, c.rng)
		c.reservoirs[flow] = r
	}
	return r
}

// ThresholdOf returns the dynamic threshold currently derived for flow.
func (c *Controller) ThresholdOf(flow dataplane.FlowID) netsim.Time {
	return netsim.Time(c.ReservoirFor(flow).Threshold())
}

// backoff returns the jittered exponential delay before retry `attempt`
// (1-based: the first retry uses BackoffBase).
func (c *Controller) backoff(attempt int) netsim.Time {
	d := c.Cfg.BackoffBase
	for i := 1; i < attempt && d < c.Cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.Cfg.BackoffMax {
		d = c.Cfg.BackoffMax
	}
	if j := c.Cfg.BackoffJitter; j > 0 && d > 0 {
		d += netsim.Time(float64(d) * j * (c.rng.Float64() - 0.5))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// seq mints the next channel sequence number.
func (c *Controller) seq() uint64 {
	c.nextSeq++
	return c.nextSeq
}

// armTimeout schedules fn at the request deadline unless the request was
// already satisfied synchronously (perfect channel), keeping the event
// heap untouched on the reliable path.
func (c *Controller) armTimeout(stillPending func() bool, fn func()) {
	if !stillPending() {
		return
	}
	c.clock.After(c.Cfg.RequestTimeout, fn)
}

// --- Switch-side agent ----------------------------------------------------
//
// In the paper each switch runs a P4Runtime server; here a thin agent
// executes controller requests against the shared Program state and sends
// the response back over the channel. It holds no controller state — all
// reliability logic lives on the controller side.

// deliverToSwitch handles controller → switch messages at the switch.
func (c *Controller) deliverToSwitch(m ctrlchan.Message) {
	//mars:partial only controller->switch request kinds arrive here; responses, acks, and notifications travel the other direction and are handled by deliverToController
	switch m.Kind {
	case ctrlchan.KindCollectRequest:
		recs := c.Prog.RTSnapshot(m.Switch)
		wire := int64(len(recs)) * c.recordBytes()
		c.Bytes.CollectionBytes += wire
		c.tr.Send(ctrlchan.ToController, ctrlchan.Message{
			Kind: ctrlchan.KindCollectResponse, Seq: m.Seq, Switch: m.Switch,
			Records: recs, Wire: wire,
		}, c.deliverToController)

	case ctrlchan.KindRefreshRequest:
		// Incremental pull: only records newer than the controller's
		// watermark cross the channel (8 B per compressed latency sample,
		// as in the seed accounting).
		var recs []dataplane.RTRecord
		for _, r := range c.Prog.RTSnapshot(m.Switch) {
			if r.Arrival > m.Watermark {
				recs = append(recs, r)
			}
		}
		c.Bytes.RefreshBytes += int64(len(recs)) * 8
		c.tr.Send(ctrlchan.ToController, ctrlchan.Message{
			Kind: ctrlchan.KindRefreshResponse, Seq: m.Seq, Switch: m.Switch,
			Records: recs, Wire: int64(len(recs)) * 8,
		}, c.deliverToController)

	case ctrlchan.KindThresholdPush:
		c.Prog.SetThreshold(m.Switch, m.Flow, m.Threshold)
		c.Bytes.AckBytes += ctrlchan.AckBytes
		c.tr.Send(ctrlchan.ToController, ctrlchan.Message{
			Kind: ctrlchan.KindThresholdAck, Seq: m.Seq, Switch: m.Switch,
			Flow: m.Flow, Threshold: m.Threshold, Wire: ctrlchan.AckBytes,
		}, c.deliverToController)
	}
}

// deliverToController dispatches switch → controller messages.
func (c *Controller) deliverToController(m ctrlchan.Message) {
	//mars:partial only switch->controller response kinds arrive here; requests and pushes travel the other direction and are handled by deliverToSwitch
	switch m.Kind {
	case ctrlchan.KindNotification:
		c.onNotification(m)
	case ctrlchan.KindCollectResponse:
		c.onCollectResponse(m)
	case ctrlchan.KindRefreshResponse:
		c.onRefreshResponse(m)
	case ctrlchan.KindThresholdAck:
		c.onThresholdAck(m)
	}
}

// --- Refresh (reservoir upkeep + threshold pushes) ------------------------

// Refresh starts one incremental pull round: every sink without an
// outstanding pull is asked for records newer than its watermark. The
// responses feed the reservoirs and drive threshold pushes as they arrive;
// a sink whose pull is still pending (timed out and backing off) is
// skipped rather than piled onto.
func (c *Controller) Refresh() {
	for _, sw := range c.edgeSwitches {
		if c.refreshPending[sw] {
			continue
		}
		c.sendRefresh(sw, 0)
	}
}

// sendRefresh issues one refresh pull attempt to sw.
func (c *Controller) sendRefresh(sw topology.NodeID, attempt int) {
	c.refreshPending[sw] = true
	seq := c.seq()
	c.refreshSeqs[seq] = refreshReq{sw: sw, attempt: attempt}
	c.Bytes.RequestBytes += ctrlchan.RefreshRequestBytes
	c.tr.Send(ctrlchan.ToSwitch, ctrlchan.Message{
		Kind: ctrlchan.KindRefreshRequest, Seq: seq, Switch: sw,
		Watermark: c.lastSeen[sw], Wire: ctrlchan.RefreshRequestBytes,
	}, c.deliverToSwitch)
	c.armTimeout(
		func() bool { _, ok := c.refreshSeqs[seq]; return ok },
		func() { c.refreshTimeout(seq) })
}

// refreshTimeout retries an unanswered pull within the budget, else gives
// up until the next periodic round (the watermark is unchanged, so no
// data is lost — only delayed).
func (c *Controller) refreshTimeout(seq uint64) {
	req, ok := c.refreshSeqs[seq]
	if !ok {
		return // answered in time
	}
	delete(c.refreshSeqs, seq)
	if req.attempt < c.Cfg.MaxRetries {
		c.Bytes.Retries++
		c.clock.After(c.backoff(req.attempt+1), func() {
			c.sendRefresh(req.sw, req.attempt+1)
		})
		return
	}
	c.refreshPending[req.sw] = false
}

// onRefreshResponse feeds the reservoirs and pushes refreshed thresholds
// for the flows this sink updated.
func (c *Controller) onRefreshResponse(m ctrlchan.Message) {
	req, ok := c.refreshSeqs[m.Seq]
	if !ok {
		return // duplicate or post-timeout straggler
	}
	delete(c.refreshSeqs, m.Seq)
	c.refreshPending[req.sw] = false

	last := c.lastSeen[req.sw]
	newest := last
	var updated []dataplane.FlowID
	seen := make(map[dataplane.FlowID]bool)
	for _, r := range m.Records {
		if r.Arrival <= last {
			continue // straggler overlap with an already-consumed pull
		}
		if r.Arrival > newest {
			newest = r.Arrival
		}
		c.ReservoirFor(r.Flow).Input(float64(r.Latency))
		if !seen[r.Flow] {
			seen[r.Flow] = true
			updated = append(updated, r.Flow)
		}
	}
	c.lastSeen[req.sw] = newest
	for _, flow := range updated {
		c.pushThreshold(flow, c.ThresholdOf(flow))
	}
}

// --- Threshold pushes (acknowledged, deduplicated) ------------------------

// pushThreshold installs th for flow on every switch, skipping switches
// whose acknowledged value already matches (re-deriving an unchanged
// threshold costs no bytes) and re-sending unacknowledged pushes.
func (c *Controller) pushThreshold(flow dataplane.FlowID, th netsim.Time) {
	for _, sw := range c.Topo.Switches() {
		k := pushKey{sw: sw, flow: flow}
		ps := c.pushes[k]
		if ps == nil {
			ps = &pushState{}
			c.pushes[k] = ps
		}
		ps.want = th
		if ps.inFlight {
			continue // resolved on ack/timeout against the new want
		}
		if ps.haveConfirmed && ps.confirmed == th {
			continue // value didn't move: no push, no bytes
		}
		ps.attempts = 0
		c.sendPush(k, ps)
	}
}

// sendPush issues one push attempt carrying the latest wanted value.
func (c *Controller) sendPush(k pushKey, ps *pushState) {
	seq := c.seq()
	ps.inFlight = true
	ps.seq = seq
	c.pushSeqs[seq] = k
	c.Bytes.ThresholdPushBytes += dataplane.ThresholdPushBytes
	c.tr.Send(ctrlchan.ToSwitch, ctrlchan.Message{
		Kind: ctrlchan.KindThresholdPush, Seq: seq, Switch: k.sw,
		Flow: k.flow, Threshold: ps.want, Wire: dataplane.ThresholdPushBytes,
	}, c.deliverToSwitch)
	c.armTimeout(
		func() bool { _, ok := c.pushSeqs[seq]; return ok },
		func() { c.pushTimeout(seq) })
}

// pushTimeout re-sends a lost push within the budget. Past the budget the
// push state is left unconfirmed, so the next refresh of the flow tries
// again even if the derived value is unchanged.
func (c *Controller) pushTimeout(seq uint64) {
	k, ok := c.pushSeqs[seq]
	if !ok {
		return
	}
	delete(c.pushSeqs, seq)
	ps := c.pushes[k]
	if ps == nil || !ps.inFlight || ps.seq != seq {
		return
	}
	ps.inFlight = false
	if ps.attempts < c.Cfg.MaxRetries {
		ps.attempts++
		c.Bytes.Retries++
		c.clock.After(c.backoff(ps.attempts), func() {
			if !ps.inFlight && !(ps.haveConfirmed && ps.confirmed == ps.want) {
				c.sendPush(k, ps)
			}
		})
	}
}

// onThresholdAck marks the pushed value confirmed and chases a value that
// moved while the push was in flight.
func (c *Controller) onThresholdAck(m ctrlchan.Message) {
	k, ok := c.pushSeqs[m.Seq]
	if !ok {
		return // duplicate ack
	}
	delete(c.pushSeqs, m.Seq)
	ps := c.pushes[k]
	if ps == nil {
		return
	}
	ps.confirmed = m.Threshold
	ps.haveConfirmed = true
	if ps.seq == m.Seq {
		ps.inFlight = false
	}
	ps.attempts = 0
	if ps.want != ps.confirmed && !ps.inFlight {
		c.sendPush(k, ps)
	}
}

// --- Notifications and diagnosis collection -------------------------------

// Notify implements dataplane.Notifier. It runs at the notifying switch:
// the trigger is accounted and sent up the control channel, where loss,
// delay, duplication, and reordering may apply before onNotification sees
// it.
func (c *Controller) Notify(n dataplane.Notification) {
	c.Bytes.NotificationBytes += dataplane.NotificationBytes
	c.tr.Send(ctrlchan.ToController, ctrlchan.Message{
		Kind: ctrlchan.KindNotification, Seq: c.seq(), Switch: n.Switch,
		Note: n, Wire: dataplane.NotificationBytes,
	}, c.deliverToController)
}

// onNotification deduplicates deliveries and applies the response window.
// A notification inside the window is not dropped: the newest one is
// retained and fires a diagnosis the moment the window reopens.
func (c *Controller) onNotification(m ctrlchan.Message) {
	k := noteKey{sw: m.Switch, seq: m.Seq}
	if c.seenNotes[k] {
		c.Bytes.DuplicateNotifications++
		return
	}
	c.seenNotes[k] = true
	now := c.clock.Now()
	if c.haveDiagnosed && now-c.lastDiagnosis < c.Cfg.ResponseWindow {
		c.Bytes.SuppressedNotifications++
		n := m.Note
		c.suppressed = &n
		if !c.flushScheduled {
			c.flushScheduled = true
			c.clock.At(c.lastDiagnosis+c.Cfg.ResponseWindow, c.flushSuppressed)
		}
		return
	}
	c.beginDiagnosis(m.Note)
}

// flushSuppressed fires the retained in-window trigger once the response
// window has reopened (re-arming itself if a newer diagnosis moved the
// window meanwhile).
func (c *Controller) flushSuppressed() {
	c.flushScheduled = false
	if c.suppressed == nil {
		return
	}
	now := c.clock.Now()
	if c.haveDiagnosed && now-c.lastDiagnosis < c.Cfg.ResponseWindow {
		c.flushScheduled = true
		c.clock.At(c.lastDiagnosis+c.Cfg.ResponseWindow, c.flushSuppressed)
		return
	}
	n := *c.suppressed
	c.suppressed = nil
	c.beginDiagnosis(n)
}

// beginDiagnosis opens a response window and starts the collection.
func (c *Controller) beginDiagnosis(n dataplane.Notification) {
	c.haveDiagnosed = true
	c.lastDiagnosis = c.clock.Now()
	c.suppressed = nil
	c.startCollection(n)
}

// startCollection pulls diagnosis data from every edge switch's Ring
// Table. Only edge switches are contacted — MARS's Motivation #1 — so
// core switches carry no collection load. Each sink's request races a
// timeout with retries; sinks that exhaust the budget are reported as
// missing rather than stalling the diagnosis.
func (c *Controller) startCollection(trigger dataplane.Notification) {
	col := &collection{
		trigger:   trigger,
		pending:   make(map[topology.NodeID]bool, len(c.edgeSwitches)),
		requested: len(c.edgeSwitches),
	}
	if col.requested == 0 {
		c.finalizeCollection(col)
		return
	}
	for _, sw := range c.edgeSwitches {
		col.pending[sw] = true
	}
	for _, sw := range c.edgeSwitches {
		c.sendCollect(col, sw, 0)
	}
}

// sendCollect issues one collection request attempt to sw.
func (c *Controller) sendCollect(col *collection, sw topology.NodeID, attempt int) {
	if col.finished || !col.pending[sw] {
		return
	}
	seq := c.seq()
	c.collectSeqs[seq] = collectReq{col: col, sw: sw, attempt: attempt}
	c.Bytes.RequestBytes += ctrlchan.CollectRequestBytes
	c.tr.Send(ctrlchan.ToSwitch, ctrlchan.Message{
		Kind: ctrlchan.KindCollectRequest, Seq: seq, Switch: sw,
		Note: col.trigger, Wire: ctrlchan.CollectRequestBytes,
	}, c.deliverToSwitch)
	c.armTimeout(
		func() bool { _, ok := c.collectSeqs[seq]; return ok },
		func() { c.collectTimeout(seq) })
}

// collectTimeout retries an unanswered collection request, or marks the
// sink missing once the budget is spent.
func (c *Controller) collectTimeout(seq uint64) {
	req, ok := c.collectSeqs[seq]
	if !ok {
		return
	}
	delete(c.collectSeqs, seq)
	col := req.col
	if col.finished || !col.pending[req.sw] {
		return
	}
	if req.attempt < c.Cfg.MaxRetries {
		c.Bytes.Retries++
		c.clock.After(c.backoff(req.attempt+1), func() {
			c.sendCollect(col, req.sw, req.attempt+1)
		})
		return
	}
	delete(col.pending, req.sw)
	col.missing = append(col.missing, req.sw)
	if len(col.pending) == 0 {
		c.finalizeCollection(col)
	}
}

// onCollectResponse folds one sink's snapshot into its collection.
func (c *Controller) onCollectResponse(m ctrlchan.Message) {
	req, ok := c.collectSeqs[m.Seq]
	if !ok {
		return // duplicate or post-timeout straggler
	}
	delete(c.collectSeqs, m.Seq)
	col := req.col
	if col.finished || !col.pending[req.sw] {
		return
	}
	delete(col.pending, req.sw)
	col.records = append(col.records, m.Records...)
	if m.Stamp > col.asOf {
		col.asOf = m.Stamp
	}
	if len(col.pending) == 0 {
		c.finalizeCollection(col)
	}
}

// recordBytes is the collection wire size of one Ring Table record under
// the active codec.
func (c *Controller) recordBytes() int64 {
	if c.Cfg.Decoder != nil {
		return int64(c.Cfg.Decoder.RecordBytes())
	}
	return dataplane.RTRecordBytes
}

// finalizeCollection runs the codec decoder over the collected snapshot
// and hands the (possibly partial) diagnosis to RCA.
func (c *Controller) finalizeCollection(col *collection) {
	col.finished = true
	c.Bytes.Diagnoses++
	if len(col.missing) > 0 {
		c.Bytes.PartialDiagnoses++
	}
	if c.OnDiagnosis != nil {
		records := col.records
		var conf []float64
		if c.Cfg.Decoder != nil {
			records, conf = c.Cfg.Decoder.DecodeRecords(records)
		}
		c.OnDiagnosis(Diagnosis{
			Trigger:          col.trigger,
			Records:          records,
			Time:             c.clock.Now(),
			AsOf:             col.asOf,
			Requested:        col.requested,
			MissingSinks:     col.missing,
			RecordConfidence: conf,
		})
	}
}

var _ dataplane.Notifier = (*Controller)(nil)
