// Package controlplane implements the MARS controller: it periodically
// pulls the "latency" field of sink-switch Ring Tables (the paper uses the
// P4Runtime API; here the calls are direct but every exchanged byte is
// counted), feeds per-flow reservoirs, pushes refreshed dynamic thresholds
// down to the data plane, and — when a data-plane notification arrives —
// collects the Ring Tables of all edge switches as diagnosis data for root
// cause analysis (§4.3, §4.4).
package controlplane

import (
	"math/rand"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/reservoir"
	"mars/internal/topology"
)

// Config parameterizes the controller.
type Config struct {
	// RefreshPeriod is how often reservoirs are fed and thresholds pushed.
	RefreshPeriod netsim.Time
	// ResponseWindow rate-limits diagnosis collections: the control plane
	// responds to at most one notification per window (§4.4).
	ResponseWindow netsim.Time
	// Reservoir configures the per-flow latency reservoirs.
	Reservoir reservoir.Config
	// Seed drives reservoir replacement randomness.
	Seed int64
}

// DefaultConfig matches the data plane's 100 ms epochs: thresholds refresh
// every 200 ms, diagnosis at most once per 500 ms. The deviation multiple
// is raised to 6 MAD units (~4σ-equivalent for Gaussian noise): multi-hop
// latency under Poisson cross-traffic is heavy-tailed, and a 3-MAD
// threshold flags a few percent of healthy telemetry records.
func DefaultConfig() Config {
	rc := reservoir.DefaultConfig()
	rc.C = 6
	return Config{
		RefreshPeriod:  200 * netsim.Millisecond,
		ResponseWindow: 500 * netsim.Millisecond,
		Reservoir:      rc,
		Seed:           1,
	}
}

// Diagnosis is one on-demand collection: the trigger plus the telemetry
// snapshot pulled from every edge switch.
type Diagnosis struct {
	Trigger dataplane.Notification
	Records []dataplane.RTRecord
	Time    netsim.Time
}

// BandwidthStats counts every control-channel byte for the Fig. 9 study.
type BandwidthStats struct {
	// NotificationBytes: data plane -> control plane triggers.
	NotificationBytes int64
	// CollectionBytes: Ring Table pulls (diagnosis data).
	CollectionBytes int64
	// RefreshBytes: periodic latency pulls for reservoir upkeep.
	RefreshBytes int64
	// ThresholdPushBytes: control plane -> data plane threshold updates.
	ThresholdPushBytes int64
	// Diagnoses counts completed collections.
	Diagnoses int64
}

// DiagnosisBytes returns the on-demand (trigger + collection) total, the
// "Diagnosis" bar of Fig. 9.
func (b BandwidthStats) DiagnosisBytes() int64 {
	return b.NotificationBytes + b.CollectionBytes
}

// Controller is the MARS control plane.
type Controller struct {
	Cfg   Config
	Prog  *dataplane.Program
	Topo  *topology.Topology
	Bytes BandwidthStats

	// OnDiagnosis receives each collected diagnosis (the RCA entry point).
	OnDiagnosis func(d Diagnosis)

	sim        *netsim.Simulator
	rng        *rand.Rand
	reservoirs map[dataplane.FlowID]*reservoir.Reservoir
	// lastSeen tracks, per sink switch, the arrival time of the newest RT
	// record already fed to reservoirs.
	lastSeen      map[topology.NodeID]netsim.Time
	lastDiagnosis netsim.Time
	haveDiagnosed bool
	edgeSwitches  []topology.NodeID
	started       bool
}

// New wires a controller to a simulator and data-plane program. Call
// Start to begin the refresh loop, and pass the controller to the program
// as its Notifier.
func New(cfg Config, sim *netsim.Simulator, prog *dataplane.Program) *Controller {
	c := &Controller{
		Cfg:        cfg,
		Prog:       prog,
		Topo:       prog.Topo,
		sim:        sim,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		reservoirs: make(map[dataplane.FlowID]*reservoir.Reservoir),
		lastSeen:   make(map[topology.NodeID]netsim.Time),
	}
	for _, sw := range c.Topo.Switches() {
		for _, p := range c.Topo.Node(sw).Ports {
			if c.Topo.IsHost(p.Peer) {
				c.edgeSwitches = append(c.edgeSwitches, sw)
				break
			}
		}
	}
	return c
}

// EdgeSwitches returns the switches with attached hosts (telemetry sinks).
func (c *Controller) EdgeSwitches() []topology.NodeID { return c.edgeSwitches }

// Start schedules the periodic reservoir/threshold refresh loop.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	var tick func()
	tick = func() {
		c.Refresh()
		c.sim.After(c.Cfg.RefreshPeriod, tick)
	}
	c.sim.After(c.Cfg.RefreshPeriod, tick)
}

// ReservoirFor returns (creating if needed) the flow's reservoir.
func (c *Controller) ReservoirFor(flow dataplane.FlowID) *reservoir.Reservoir {
	r := c.reservoirs[flow]
	if r == nil {
		r = reservoir.New(c.Cfg.Reservoir, c.rng)
		c.reservoirs[flow] = r
	}
	return r
}

// ThresholdOf returns the dynamic threshold currently derived for flow.
func (c *Controller) ThresholdOf(flow dataplane.FlowID) netsim.Time {
	return netsim.Time(c.ReservoirFor(flow).Threshold())
}

// Refresh pulls new RT latencies from every sink, feeds the reservoirs,
// and pushes updated thresholds to the data plane (one push per flow, to
// every switch, as the program's threshold tables are per switch).
func (c *Controller) Refresh() {
	updated := make(map[dataplane.FlowID]bool)
	for _, sw := range c.edgeSwitches {
		recs := c.Prog.RTSnapshot(sw)
		last := c.lastSeen[sw]
		newest := last
		for _, r := range recs {
			if r.Arrival <= last {
				continue
			}
			if r.Arrival > newest {
				newest = r.Arrival
			}
			// Pulling one latency field costs a few bytes on the control
			// channel (the paper compresses timestamps; 8 B is generous).
			c.Bytes.RefreshBytes += 8
			c.ReservoirFor(r.Flow).Input(float64(r.Latency))
			updated[r.Flow] = true
		}
		c.lastSeen[sw] = newest
	}
	numSwitches := int64(c.Topo.NumSwitches())
	for flow := range updated {
		th := c.ThresholdOf(flow)
		c.Prog.SetThresholdAll(flow, th)
		c.Bytes.ThresholdPushBytes += numSwitches * dataplane.ThresholdPushBytes
	}
}

// Notify implements dataplane.Notifier: it accounts the trigger and, if
// outside the response window, schedules an immediate diagnosis
// collection.
func (c *Controller) Notify(n dataplane.Notification) {
	c.Bytes.NotificationBytes += dataplane.NotificationBytes
	now := c.sim.Now()
	if c.haveDiagnosed && now-c.lastDiagnosis < c.Cfg.ResponseWindow {
		return
	}
	c.haveDiagnosed = true
	c.lastDiagnosis = now
	c.collect(n)
}

// collect pulls diagnosis data from every edge switch's Ring Table. Only
// edge switches are contacted — MARS's Motivation #1 — so core switches
// carry no collection load.
func (c *Controller) collect(trigger dataplane.Notification) {
	var all []dataplane.RTRecord
	for _, sw := range c.edgeSwitches {
		recs := c.Prog.RTSnapshot(sw)
		c.Bytes.CollectionBytes += int64(len(recs)) * dataplane.RTRecordBytes
		all = append(all, recs...)
	}
	c.Bytes.Diagnoses++
	if c.OnDiagnosis != nil {
		c.OnDiagnosis(Diagnosis{Trigger: trigger, Records: all, Time: c.sim.Now()})
	}
}

var _ dataplane.Notifier = (*Controller)(nil)
