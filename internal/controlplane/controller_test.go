package controlplane

import (
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
	"mars/internal/workload"
)

type env struct {
	ft   *topology.FatTree
	sim  *netsim.Simulator
	prog *dataplane.Program
	ctrl *Controller
}

func newEnv(t *testing.T, seed int64) *env {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), seed)
	ctrl := New(DefaultConfig(), sim, prog)
	prog.Notifier = ctrl
	ctrl.Start()
	return &env{ft: ft, sim: sim, prog: prog, ctrl: ctrl}
}

func TestEdgeSwitchDiscovery(t *testing.T) {
	e := newEnv(t, 1)
	// In a K=4 fat-tree the 8 edge switches are exactly the host-attached
	// ones.
	if got := len(e.ctrl.EdgeSwitches()); got != 8 {
		t.Errorf("edge switches = %d, want 8", got)
	}
	for _, sw := range e.ctrl.EdgeSwitches() {
		if e.ft.Node(sw).Layer != topology.LayerEdge {
			t.Errorf("switch %d is %v, not edge", sw, e.ft.Node(sw).Layer)
		}
	}
}

func TestRefreshFeedsReservoirsAndPushesThresholds(t *testing.T) {
	e := newEnv(t, 2)
	src, dst := e.ft.HostIDs[0], e.ft.HostIDs[8]
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: 3 * netsim.Second}
	f.Install(e.sim)
	e.sim.Run(4 * netsim.Second)

	srcEdge, _ := e.ft.EdgeSwitchOf(src)
	sink, _ := e.ft.EdgeSwitchOf(dst)
	flow := dataplane.FlowID{Src: srcEdge, Sink: sink}
	r := e.ctrl.ReservoirFor(flow)
	if r.Len() == 0 {
		t.Fatal("reservoir never fed")
	}
	th := e.ctrl.ThresholdOf(flow)
	if th <= 0 || th >= 10*netsim.Second {
		t.Errorf("threshold = %v, want dynamic (not default)", th)
	}
	if e.ctrl.Bytes.RefreshBytes == 0 || e.ctrl.Bytes.ThresholdPushBytes == 0 {
		t.Errorf("refresh accounting: %+v", e.ctrl.Bytes)
	}
}

func TestRefreshConsumesEachRecordOnce(t *testing.T) {
	e := newEnv(t, 3)
	src, dst := e.ft.HostIDs[0], e.ft.HostIDs[8]
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 100,
		Gaps: workload.GapConstant, Start: 0, Stop: netsim.Second}
	f.Install(e.sim)
	e.sim.Run(2 * netsim.Second)
	srcEdge, _ := e.ft.EdgeSwitchOf(src)
	sink, _ := e.ft.EdgeSwitchOf(dst)
	r := e.ctrl.ReservoirFor(dataplane.FlowID{Src: srcEdge, Sink: sink})
	// 10 telemetry epochs -> exactly 10 samples accepted (reservoir not full).
	if got := r.Accepted; got != 10 {
		t.Errorf("reservoir accepted = %d, want 10 (each record once)", got)
	}
}

func TestNotificationTriggersDiagnosis(t *testing.T) {
	e := newEnv(t, 4)
	var diags []Diagnosis
	e.ctrl.OnDiagnosis = func(d Diagnosis) { diags = append(diags, d) }
	src, dst := e.ft.HostIDs[0], e.ft.HostIDs[8]
	srcEdge, _ := e.ft.EdgeSwitchOf(src)
	sink, _ := e.ft.EdgeSwitchOf(dst)
	flow := dataplane.FlowID{Src: srcEdge, Sink: sink}
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: 4 * netsim.Second}
	f.Install(e.sim)
	// After thresholds stabilize, inject latency at an aggregation switch.
	e.sim.At(2*netsim.Second, func() {
		e.sim.SetSwitchExtraDelay(e.ft.AggIDs[0], 50*netsim.Millisecond)
		e.sim.SetSwitchExtraDelay(e.ft.AggIDs[1], 50*netsim.Millisecond)
	})
	e.sim.Run(5 * netsim.Second)
	if len(diags) == 0 {
		t.Fatal("no diagnosis collected")
	}
	d := diags[0]
	if d.Trigger.Kind != dataplane.NotifyHighLatency {
		t.Errorf("trigger kind = %v", d.Trigger.Kind)
	}
	if d.Trigger.Flow != flow {
		t.Errorf("trigger flow = %v, want %v", d.Trigger.Flow, flow)
	}
	if len(d.Records) == 0 {
		t.Error("diagnosis carried no records")
	}
	if e.ctrl.Bytes.CollectionBytes == 0 || e.ctrl.Bytes.NotificationBytes == 0 {
		t.Errorf("diagnosis accounting: %+v", e.ctrl.Bytes)
	}
}

func TestResponseWindowLimitsDiagnoses(t *testing.T) {
	e := newEnv(t, 5)
	var diags []Diagnosis
	e.ctrl.OnDiagnosis = func(d Diagnosis) { diags = append(diags, d) }
	// Fire notifications directly, 100 in 100 ms; window is 500 ms. The
	// first fires immediately; the other 99 land inside the window and are
	// suppressed, with the newest retained — it must fire exactly one
	// follow-up diagnosis when the window reopens at t=500 ms, not vanish.
	for i := 0; i < 100; i++ {
		at := netsim.Time(i) * netsim.Millisecond
		e.sim.At(at, func() {
			e.ctrl.Notify(dataplane.Notification{Kind: dataplane.NotifyHighLatency, Time: at})
		})
	}
	e.sim.Run(netsim.Second)
	if len(diags) != 2 {
		t.Fatalf("diagnoses = %d, want 2 (one per window: initial + flushed)", len(diags))
	}
	if got := diags[1].Trigger.Time; got != 99*netsim.Millisecond {
		t.Errorf("flushed trigger time = %v, want the newest suppressed (99ms)", got)
	}
	if diags[1].Time != 500*netsim.Millisecond {
		t.Errorf("flushed diagnosis at %v, want window reopen (500ms)", diags[1].Time)
	}
	if e.ctrl.Bytes.SuppressedNotifications != 99 {
		t.Errorf("suppressed = %d, want 99", e.ctrl.Bytes.SuppressedNotifications)
	}
	if e.ctrl.Bytes.NotificationBytes != 100*dataplane.NotificationBytes {
		t.Errorf("notification bytes = %d", e.ctrl.Bytes.NotificationBytes)
	}
}

func TestDiagnosisBytesSum(t *testing.T) {
	b := BandwidthStats{NotificationBytes: 10, CollectionBytes: 20, RefreshBytes: 5}
	if b.DiagnosisBytes() != 30 {
		t.Errorf("DiagnosisBytes = %d", b.DiagnosisBytes())
	}
}

func TestStartIdempotent(t *testing.T) {
	e := newEnv(t, 6)
	e.ctrl.Start() // second call must not double the refresh cadence
	src, dst := e.ft.HostIDs[0], e.ft.HostIDs[8]
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 100,
		Gaps: workload.GapConstant, Start: 0, Stop: netsim.Second}
	f.Install(e.sim)
	e.sim.Run(2 * netsim.Second)
	srcEdge, _ := e.ft.EdgeSwitchOf(src)
	sink, _ := e.ft.EdgeSwitchOf(dst)
	r := e.ctrl.ReservoirFor(dataplane.FlowID{Src: srcEdge, Sink: sink})
	if r.Accepted != 10 {
		t.Errorf("accepted = %d, want 10 (double Start would double-feed)", r.Accepted)
	}
}

func TestCoreSwitchesCarryNoTelemetryState(t *testing.T) {
	// Motivation #1: MARS stores telemetry only at edge switches and the
	// controller never collects from the core. After a busy run, core and
	// aggregation Ring Tables must be empty and collection must touch
	// edge switches only.
	e := newEnv(t, 9)
	var diag Diagnosis
	e.ctrl.OnDiagnosis = func(d Diagnosis) { diag = d }
	for i := 0; i < 8; i++ {
		f := &workload.Flow{
			Src: e.ft.HostIDs[i], Dst: e.ft.HostIDs[(i+9)%len(e.ft.HostIDs)],
			Key: netsim.FlowKey(i + 1), RatePPS: 200, Gaps: workload.GapConstant,
			Start: 0, Stop: 2 * netsim.Second,
		}
		f.Install(e.sim)
	}
	// Force one collection.
	e.sim.At(1500*netsim.Millisecond, func() {
		e.ctrl.Notify(dataplane.Notification{Kind: dataplane.NotifyHighLatency})
	})
	e.sim.Run(2 * netsim.Second)
	for _, sw := range append(e.ft.CoreIDs, e.ft.AggIDs...) {
		if n := len(e.prog.RTSnapshot(sw)); n != 0 {
			t.Errorf("non-edge switch s%d holds %d RT records", sw, n)
		}
	}
	if len(diag.Records) == 0 {
		t.Fatal("collection returned nothing")
	}
	edge := map[topology.NodeID]bool{}
	for _, sw := range e.ctrl.EdgeSwitches() {
		edge[sw] = true
	}
	for _, r := range diag.Records {
		if !edge[r.Flow.Sink] {
			t.Errorf("record collected from non-edge sink s%d", r.Flow.Sink)
		}
	}
}
