package controlplane

import (
	"testing"

	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
	"mars/internal/workload"
)

// newLossyEnv is newEnv with an explicit control channel and controller
// config.
func newLossyEnv(t *testing.T, seed int64, cfg Config, chCfg ctrlchan.Config) *env {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), seed)
	ch := ctrlchan.New(sim, chCfg)
	ctrl := NewWithChannel(cfg, sim, prog, ch)
	prog.Notifier = ctrl
	ctrl.Start()
	return &env{ft: ft, sim: sim, prog: prog, ctrl: ctrl}
}

func TestZeroEdgeSwitchTopology(t *testing.T) {
	// A switch-only topology has no telemetry sinks. The controller must
	// not crash: a notification still produces a diagnosis — an empty,
	// complete one (Requested 0, full coverage) — rather than a stall.
	b := topology.NewBuilder()
	s0 := b.AddSwitch("s0", topology.LayerCore)
	s1 := b.AddSwitch("s1", topology.LayerCore)
	b.Connect(s0, s1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog := dataplane.New(dataplane.DefaultProgramConfig(), topo, nil, nil)
	sim := netsim.New(topo, nil, prog, netsim.DefaultConfig(), 1)
	ctrl := New(DefaultConfig(), sim, prog)
	if n := len(ctrl.EdgeSwitches()); n != 0 {
		t.Fatalf("edge switches = %d, want 0", n)
	}
	var diags []Diagnosis
	ctrl.OnDiagnosis = func(d Diagnosis) { diags = append(diags, d) }
	ctrl.Start()
	ctrl.Notify(dataplane.Notification{Kind: dataplane.NotifyHighLatency})
	sim.Run(netsim.Second)
	if len(diags) != 1 {
		t.Fatalf("diagnoses = %d, want 1", len(diags))
	}
	d := diags[0]
	if d.Requested != 0 || len(d.Records) != 0 || d.Partial() {
		t.Errorf("diagnosis = %+v, want empty complete collection", d)
	}
	if d.Coverage() != 1 {
		t.Errorf("coverage = %v, want 1 for the zero-sink degenerate case", d.Coverage())
	}
	if ctrl.Bytes.CollectionBytes != 0 || ctrl.Bytes.Diagnoses != 1 {
		t.Errorf("accounting = %+v", ctrl.Bytes)
	}
}

func TestIdleRefreshSendsNothing(t *testing.T) {
	// Once every Ring Table record predates the per-sink watermark, further
	// refresh rounds move no record bytes and push no thresholds — the
	// incremental pull must recognize an idle network.
	e := newEnv(t, 11)
	f := &workload.Flow{Src: e.ft.HostIDs[0], Dst: e.ft.HostIDs[8], Key: 1,
		RatePPS: 100, Gaps: workload.GapConstant, Start: 0, Stop: netsim.Second}
	f.Install(e.sim)
	e.sim.Run(2 * netsim.Second)
	refresh, push := e.ctrl.Bytes.RefreshBytes, e.ctrl.Bytes.ThresholdPushBytes
	if refresh == 0 || push == 0 {
		t.Fatalf("busy phase moved no bytes: %+v", e.ctrl.Bytes)
	}
	e.sim.Run(5 * netsim.Second) // 15 more idle refresh rounds
	if got := e.ctrl.Bytes.RefreshBytes; got != refresh {
		t.Errorf("idle refresh moved %d record bytes", got-refresh)
	}
	if got := e.ctrl.Bytes.ThresholdPushBytes; got != push {
		t.Errorf("idle refresh pushed %d threshold bytes", got-push)
	}
}

func TestThresholdPushSkipsUnchangedValue(t *testing.T) {
	// Satellite of the Fig. 9 study: re-deriving an unchanged threshold
	// must cost zero push bytes; only a moved value goes on the wire.
	e := newEnv(t, 12)
	flow := dataplane.FlowID{Src: e.ctrl.EdgeSwitches()[0], Sink: e.ctrl.EdgeSwitches()[1]}
	numSw := len(e.ctrl.Topo.Switches())
	perRound := int64(numSw) * dataplane.ThresholdPushBytes

	e.ctrl.pushThreshold(flow, 5*netsim.Millisecond)
	if got := e.ctrl.Bytes.ThresholdPushBytes; got != perRound {
		t.Fatalf("first push = %d bytes, want %d", got, perRound)
	}
	if got := e.ctrl.Bytes.AckBytes; got != int64(numSw)*ctrlchan.AckBytes {
		t.Errorf("acks = %d bytes, want %d", got, int64(numSw)*ctrlchan.AckBytes)
	}
	e.ctrl.pushThreshold(flow, 5*netsim.Millisecond)
	if got := e.ctrl.Bytes.ThresholdPushBytes; got != perRound {
		t.Errorf("unchanged value re-pushed: %d bytes, want still %d", got, perRound)
	}
	e.ctrl.pushThreshold(flow, 6*netsim.Millisecond)
	if got := e.ctrl.Bytes.ThresholdPushBytes; got != 2*perRound {
		t.Errorf("moved value = %d bytes, want %d", got, 2*perRound)
	}
}

func TestCollectionRetriesRecoverMissingSinks(t *testing.T) {
	// Lose 60% of controller→switch requests. Without retries the
	// collection finishes partial (missing sinks tagged, coverage < 1);
	// with the retry budget the same seed recovers more sinks.
	chCfg := ctrlchan.Config{
		ToSwitch: ctrlchan.DirConfig{Loss: 0.6, Latency: netsim.Millisecond},
		Seed:     21,
	}
	collect := func(cfg Config) Diagnosis {
		e := newLossyEnv(t, 21, cfg, chCfg)
		var diags []Diagnosis
		e.ctrl.OnDiagnosis = func(d Diagnosis) { diags = append(diags, d) }
		e.sim.At(0, func() {
			e.ctrl.Notify(dataplane.Notification{Kind: dataplane.NotifyHighLatency})
		})
		e.sim.Run(2 * netsim.Second)
		if len(diags) != 1 {
			t.Fatalf("diagnoses = %d, want 1", len(diags))
		}
		return diags[0]
	}

	noRetry := DefaultConfig()
	noRetry.MaxRetries = 0
	dn := collect(noRetry)
	if !dn.Partial() || dn.Coverage() >= 1 {
		t.Fatalf("no-retry at 60%% loss should be partial, got %d/%d sinks",
			dn.Requested-len(dn.MissingSinks), dn.Requested)
	}
	if dn.Requested != 8 {
		t.Errorf("requested = %d, want 8 edge switches", dn.Requested)
	}

	dr := collect(DefaultConfig())
	if len(dr.MissingSinks) >= len(dn.MissingSinks) {
		t.Errorf("retries did not recover sinks: %d missing with retries vs %d without",
			len(dr.MissingSinks), len(dn.MissingSinks))
	}
}

func TestDuplicatedNotificationsDeduplicated(t *testing.T) {
	// Every notification is duplicated in transit; sequence numbers must
	// collapse the copies to one diagnosis.
	chCfg := ctrlchan.Config{
		ToController: ctrlchan.DirConfig{Latency: netsim.Millisecond, DupProb: 1},
		Seed:         31,
	}
	e := newLossyEnv(t, 31, DefaultConfig(), chCfg)
	var diags []Diagnosis
	e.ctrl.OnDiagnosis = func(d Diagnosis) { diags = append(diags, d) }
	e.sim.At(0, func() {
		e.ctrl.Notify(dataplane.Notification{Kind: dataplane.NotifyHighLatency})
	})
	e.sim.Run(netsim.Second)
	if len(diags) != 1 {
		t.Fatalf("diagnoses = %d, want 1 (duplicate suppressed)", len(diags))
	}
	if e.ctrl.Bytes.DuplicateNotifications != 1 {
		t.Errorf("duplicate notifications = %d, want 1", e.ctrl.Bytes.DuplicateNotifications)
	}
}
