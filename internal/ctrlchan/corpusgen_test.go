package ctrlchan

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus when run
// with MARS_WRITE_CORPUS=1. It is a no-op otherwise.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("MARS_WRITE_CORPUS") == "" {
		t.Skip("set MARS_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMessage")
	for i, m := range wireMessages() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", EncodeMessage(&m))
		name := filepath.Join(dir, fmt.Sprintf("seed-%s-%d", m.Kind, i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
