// Package ctrlchan models the control channel between the MARS controller
// and its switches. The paper's deployment speaks P4Runtime over a real
// network, where notifications, Ring Table pulls, and threshold pushes can
// be lost, delayed, reordered, or duplicated; the seed reproduction used
// perfectly reliable direct method calls instead. This package makes the
// channel explicit: every controller↔switch exchange becomes a typed
// Message submitted to a Channel, which delivers it through the
// simulator's event heap under a configurable per-direction fault model
// (loss probability, base latency, jitter, duplication, reordering).
//
// A direction whose fault model is all-zero is "perfect" and delivers
// synchronously, byte-for-byte reproducing the seed repo's direct-call
// behavior — attaching a perfect Channel changes nothing, so the default
// configuration keeps every existing experiment result identical.
//
// The Channel draws randomness from its own seeded source, not the
// simulator's: attaching or degrading the channel never perturbs the
// workload/fault random stream, and two runs with the same seeds are
// exactly reproducible event for event.
package ctrlchan

import (
	"math/rand"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Direction identifies which way a message travels.
type Direction uint8

const (
	// ToController is switch → controller (notifications, responses).
	ToController Direction = iota
	// ToSwitch is controller → switch (requests, threshold pushes).
	ToSwitch
)

func (d Direction) String() string {
	if d == ToController {
		return "to-controller"
	}
	return "to-switch"
}

// Kind enumerates the typed control-channel exchanges.
type Kind uint8

const (
	// KindNotification is a data-plane anomaly trigger (switch → controller).
	KindNotification Kind = iota
	// KindCollectRequest asks an edge switch for its Ring Table (diagnosis).
	KindCollectRequest
	// KindCollectResponse returns the Ring Table snapshot.
	KindCollectResponse
	// KindRefreshRequest is the periodic incremental latency pull; it
	// carries the controller's per-sink watermark so the switch sends only
	// records it has not seen.
	KindRefreshRequest
	// KindRefreshResponse returns the records newer than the watermark.
	KindRefreshResponse
	// KindThresholdPush installs a per-flow dynamic threshold at a switch.
	KindThresholdPush
	// KindThresholdAck confirms a threshold push (switch → controller).
	KindThresholdAck
)

func (k Kind) String() string {
	switch k {
	case KindNotification:
		return "notification"
	case KindCollectRequest:
		return "collect-req"
	case KindCollectResponse:
		return "collect-resp"
	case KindRefreshRequest:
		return "refresh-req"
	case KindRefreshResponse:
		return "refresh-resp"
	case KindThresholdPush:
		return "threshold-push"
	case KindThresholdAck:
		return "threshold-ack"
	default:
		return "threshold-ack"
	}
}

// Wire sizes of the request/ack message types this layer adds. The
// response payloads keep the seed repo's accounting (dataplane.RTRecordBytes
// per collected record, 8 B per refreshed latency, ThresholdPushBytes and
// NotificationBytes unchanged); requests and acks are small fixed-size
// frames counted separately so the Fig. 9 "Diagnosis" bar keeps its
// original definition.
const (
	// CollectRequestBytes is one Ring Table collection request.
	CollectRequestBytes = 16
	// RefreshRequestBytes is one watermark-carrying refresh pull request.
	RefreshRequestBytes = 16
	// AckBytes is one threshold acknowledgement.
	AckBytes = 12
)

// Message is one typed control-channel exchange. Exactly the fields of
// its Kind are meaningful; the rest are zero.
type Message struct {
	Kind Kind
	// Seq matches responses (and acks) to requests and deduplicates
	// duplicated or reordered deliveries. Every transmission attempt gets
	// a fresh Seq, so a retry is distinguishable from the original.
	Seq uint64
	// Switch is the switch-side endpoint of the exchange.
	Switch topology.NodeID
	// Note is the payload of KindNotification.
	Note dataplane.Notification
	// Records is the payload of collect/refresh responses.
	Records []dataplane.RTRecord
	// Watermark is the refresh request's newest-already-seen arrival time.
	Watermark netsim.Time
	// Flow and Threshold are the payload of threshold pushes and acks.
	Flow      dataplane.FlowID
	Threshold netsim.Time
	// Wire is the message's size on the channel in bytes (set by the
	// sender; the Channel only accounts it).
	Wire int64
	// Stamp is the sender's clock at snapshot time on collect/refresh
	// responses. The in-simulator path leaves it zero (collection there is
	// synchronous); the real-socket deployment mode sets it so the
	// controller can anchor record-recency analysis to the data's own
	// timeline rather than the wall clock.
	Stamp netsim.Time
}

// DirConfig is the fault model of one channel direction.
type DirConfig struct {
	// Loss is the probability a message vanishes in transit.
	Loss float64
	// Latency is the base one-way delivery delay.
	Latency netsim.Time
	// Jitter adds a uniform [0, Jitter) extra delay per delivery; two
	// messages sent back to back can therefore arrive reordered.
	Jitter netsim.Time
	// DupProb is the probability a message is delivered twice (the second
	// copy takes an independent delay draw).
	DupProb float64
	// ReorderProb is the probability a message is held back an extra
	// 3×Jitter (a deliberate reordering spike on top of natural jitter).
	ReorderProb float64
}

// perfect reports whether the direction needs no event-heap involvement.
func (d DirConfig) perfect() bool {
	return d.Loss == 0 && d.Latency == 0 && d.Jitter == 0 &&
		d.DupProb == 0 && d.ReorderProb == 0
}

// Config parameterizes both directions plus the channel's random source.
type Config struct {
	ToController DirConfig
	ToSwitch     DirConfig
	// Seed drives the channel's own deterministic randomness.
	Seed int64
}

// Lossy returns a symmetric fault model: the given loss rate both ways,
// 1 ms ± 0.5 ms one-way latency, 1% duplication, and 5% reordering
// spikes — the regime the ctrlchan experiment sweeps.
func Lossy(loss float64, seed int64) Config {
	dir := DirConfig{
		Loss:        loss,
		Latency:     netsim.Millisecond,
		Jitter:      500 * netsim.Microsecond,
		DupProb:     0.01,
		ReorderProb: 0.05,
	}
	return Config{ToController: dir, ToSwitch: dir, Seed: seed}
}

// DirStats counts one direction's traffic.
type DirStats struct {
	// Sent counts submission attempts (including ones later lost).
	Sent int64
	// SentBytes sums the wire size of every submission.
	SentBytes int64
	// Lost counts messages dropped by the fault model.
	Lost int64
	// Duplicated counts extra deliveries minted by duplication.
	Duplicated int64
	// Delivered counts deliveries handed to the receiving endpoint.
	Delivered int64
}

// Stats aggregates both directions.
type Stats struct {
	ToController DirStats
	ToSwitch     DirStats
}

// Channel is the fault-injectable message layer. All methods must be
// called from inside the simulator's event loop (the whole system is
// single-threaded discrete-event code).
type Channel struct {
	Cfg   Config
	Stats Stats

	sim *netsim.Simulator
	rng *rand.Rand
}

// New attaches a channel to a simulator. The zero Config is a perfect
// channel: synchronous, lossless, byte-identical to direct calls.
func New(sim *netsim.Simulator, cfg Config) *Channel {
	return &Channel{Cfg: cfg, sim: sim, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// dir returns the fault model and stats slot of a direction.
func (ch *Channel) dir(d Direction) (*DirConfig, *DirStats) {
	if d == ToController {
		return &ch.Cfg.ToController, &ch.Stats.ToController
	}
	return &ch.Cfg.ToSwitch, &ch.Stats.ToSwitch
}

// SetLoss adjusts one direction's loss probability at runtime (the
// control-channel degradation fault injector's knob).
func (ch *Channel) SetLoss(d Direction, p float64) {
	cfg, _ := ch.dir(d)
	cfg.Loss = p
}

// Loss returns one direction's current loss probability (the value a
// revert must restore when degradation windows overlap).
func (ch *Channel) Loss(d Direction) float64 {
	cfg, _ := ch.dir(d)
	return cfg.Loss
}

// SetDirConfig replaces one direction's whole fault model.
func (ch *Channel) SetDirConfig(d Direction, cfg DirConfig) {
	c, _ := ch.dir(d)
	*c = cfg
}

// Send submits a message in direction d; deliver runs when (and if) the
// message arrives. A perfect direction delivers synchronously before Send
// returns; otherwise delivery is scheduled on the event heap after the
// drawn delay, may happen twice (duplication), may never happen (loss),
// and later Sends can overtake earlier ones (jitter/reorder).
func (ch *Channel) Send(d Direction, m Message, deliver func(Message)) {
	cfg, st := ch.dir(d)
	st.Sent++
	st.SentBytes += m.Wire
	if cfg.perfect() {
		st.Delivered++
		deliver(m)
		return
	}
	if cfg.Loss > 0 && ch.rng.Float64() < cfg.Loss {
		st.Lost++
		return
	}
	ch.scheduleDelivery(cfg, st, m, deliver)
	if cfg.DupProb > 0 && ch.rng.Float64() < cfg.DupProb {
		st.Duplicated++
		ch.scheduleDelivery(cfg, st, m, deliver)
	}
}

// scheduleDelivery queues one delivery with an independent delay draw.
func (ch *Channel) scheduleDelivery(cfg *DirConfig, st *DirStats, m Message, deliver func(Message)) {
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += netsim.Time(ch.rng.Int63n(int64(cfg.Jitter)))
	}
	if cfg.ReorderProb > 0 && ch.rng.Float64() < cfg.ReorderProb {
		delay += 3 * cfg.Jitter
	}
	ch.sim.After(delay, func() {
		st.Delivered++
		deliver(m)
	})
}
