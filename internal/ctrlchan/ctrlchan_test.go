package ctrlchan

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// newSim builds a minimal one-switch simulator; the channel only needs the
// event heap, no packets ever cross this topology.
func newSim(t *testing.T, seed int64) *netsim.Simulator {
	t.Helper()
	b := topology.NewBuilder()
	b.AddSwitch("s0", topology.LayerEdge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return netsim.New(topo, nil, nil, netsim.DefaultConfig(), seed)
}

func TestPerfectChannelDeliversSynchronously(t *testing.T) {
	sim := newSim(t, 1)
	ch := New(sim, Config{Seed: 1})
	delivered := false
	ch.Send(ToController, Message{Kind: KindNotification, Wire: 24}, func(m Message) {
		delivered = true
		if m.Wire != 24 {
			t.Errorf("wire = %d", m.Wire)
		}
	})
	// The zero config is perfect: delivery happens inline, before Send
	// returns, with no event-heap involvement — and therefore no change to
	// any seeded experiment's event stream.
	if !delivered {
		t.Fatal("perfect channel did not deliver before Send returned")
	}
	st := ch.Stats.ToController
	if st.Sent != 1 || st.Delivered != 1 || st.SentBytes != 24 || st.Lost != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFullLossDropsEverything(t *testing.T) {
	sim := newSim(t, 2)
	ch := New(sim, Config{ToSwitch: DirConfig{Loss: 1}, Seed: 2})
	n := 0
	for i := 0; i < 10; i++ {
		ch.Send(ToSwitch, Message{Kind: KindCollectRequest, Wire: 16}, func(Message) { n++ })
	}
	sim.Run(netsim.Second)
	if n != 0 {
		t.Errorf("%d messages survived loss=1", n)
	}
	st := ch.Stats.ToSwitch
	if st.Sent != 10 || st.Lost != 10 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
	// SetLoss back to zero makes the direction perfect again.
	ch.SetLoss(ToSwitch, 0)
	ok := false
	ch.Send(ToSwitch, Message{Kind: KindCollectRequest}, func(Message) { ok = true })
	if !ok {
		t.Error("recovered direction did not deliver synchronously")
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	sim := newSim(t, 3)
	ch := New(sim, Config{
		ToController: DirConfig{Latency: netsim.Millisecond, DupProb: 1},
		Seed:         3,
	})
	n := 0
	ch.Send(ToController, Message{Kind: KindThresholdAck, Wire: 12}, func(Message) { n++ })
	sim.Run(netsim.Second)
	if n != 2 {
		t.Errorf("deliveries = %d, want 2 (dup prob 1)", n)
	}
	st := ch.Stats.ToController
	if st.Sent != 1 || st.Duplicated != 1 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJitterReordersBackToBackSends(t *testing.T) {
	sim := newSim(t, 4)
	ch := New(sim, Config{
		ToSwitch: DirConfig{Latency: netsim.Millisecond, Jitter: 5 * netsim.Millisecond},
		Seed:     4,
	})
	var order []uint64
	for i := uint64(1); i <= 30; i++ {
		m := Message{Kind: KindThresholdPush, Seq: i}
		ch.Send(ToSwitch, m, func(got Message) { order = append(order, got.Seq) })
	}
	sim.Run(netsim.Second)
	if len(order) != 30 {
		t.Fatalf("delivered %d of 30", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("30 back-to-back sends under 5ms jitter arrived in order; jitter not applied")
	}
}

func TestLossyChannelIsDeterministic(t *testing.T) {
	run := func() (Stats, []uint64) {
		sim := newSim(t, 7)
		ch := New(sim, Lossy(0.3, 99))
		var order []uint64
		for i := uint64(1); i <= 200; i++ {
			d := ToController
			if i%2 == 0 {
				d = ToSwitch
			}
			m := Message{Kind: KindNotification, Seq: i, Wire: 24}
			at := netsim.Time(i) * 100 * netsim.Microsecond
			sim.At(at, func() {
				ch.Send(d, m, func(got Message) { order = append(order, got.Seq) })
			})
		}
		sim.Run(netsim.Second)
		return ch.Stats, order
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Errorf("same seed, different stats:\n%+v\n%+v", s1, s2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different delivery order at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	if s1.ToController.Lost == 0 && s1.ToSwitch.Lost == 0 {
		t.Error("200 sends at 30% loss lost nothing; fault model inert")
	}
}

func TestLossyConfigShape(t *testing.T) {
	cfg := Lossy(0.1, 5)
	for _, d := range []DirConfig{cfg.ToController, cfg.ToSwitch} {
		if d.Loss != 0.1 || d.Latency != netsim.Millisecond || d.Jitter == 0 {
			t.Errorf("dir config = %+v", d)
		}
		if d.perfect() {
			t.Error("lossy direction reported perfect")
		}
	}
	if (DirConfig{}).perfect() != true {
		t.Error("zero DirConfig must be perfect")
	}
}
