package ctrlchan

// Transport is the seam between the control-plane endpoints (controller,
// switch agents) and the medium carrying their Messages. Two
// implementations exist:
//
//   - Channel, the deterministic in-simulator medium: delivery happens on
//     the simulator's event heap (synchronously for a perfect direction),
//     the deliver callback is invoked in-process, and all randomness is
//     seeded. This is the default and the only mode experiments run in —
//     attaching it is byte-identical to the historical direct-call path.
//   - UDPTransport, the real-socket medium of the deployment mode: the
//     Message is encoded with EncodeMessage and written to the peer
//     process resolved from a port map; the deliver argument is ignored
//     because delivery happens in the receiving process, which dispatches
//     inbound frames through its own registered handler.
//
// The controller's reliability machinery (timeouts, capped backoff, retry
// budgets, sequence dedup) sits above this seam and is identical in both
// modes; only the cause of loss differs (injected fault model vs. a real
// lossy network).
type Transport interface {
	// Send submits m in direction d. deliver is the in-process delivery
	// hook; transports that cross a process boundary ignore it.
	Send(d Direction, m Message, deliver func(Message))
}

var _ Transport = (*Channel)(nil)
