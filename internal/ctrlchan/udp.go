package ctrlchan

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mars/internal/topology"
)

// UDPTransport carries control-channel Messages between real OS processes
// over a UDP socket — the deployment-mode implementation of Transport.
//
// Each process owns one socket. Outbound messages are encoded with
// EncodeMessage and split into MTU-sized fragments; the receiving process
// reassembles them, decodes the frame, and hands the Message to its
// registered deliver function on the transport's read goroutine (callers
// serialize into their own run loop). A lost, truncated, or corrupted
// fragment loses the whole frame — exactly the failure the controller's
// timeout/backoff/retry machinery above this seam already absorbs.
//
// LossProb injects seeded random outbound fragment drops so the retry
// path can be exercised deterministically on an otherwise reliable
// loopback network.
type UDPTransport struct {
	conn *net.UDPConn
	// controller is where ToController traffic goes.
	controller *net.UDPAddr
	// switches routes ToSwitch traffic by Message.Switch. Several switch
	// IDs may map to the same process (switch groups).
	switches map[topology.NodeID]*net.UDPAddr
	deliver  func(Message)

	maxFragment int
	frameID     atomic.Uint32
	closed      atomic.Bool
	// lossProb holds the injected-loss probability ×1e9, readable without
	// the rng mutex.
	lossProb atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand

	stats UDPStats

	reasmMu sync.Mutex
	reasm   map[reasmKey]*partialFrame
	sweep   time.Time

	readDone chan struct{}
}

// UDPStats counts transport-level traffic (all fields are atomic).
type UDPStats struct {
	FramesSent     atomic.Int64
	FramesReceived atomic.Int64
	FragmentsSent  atomic.Int64
	FragmentsRecvd atomic.Int64
	InjectedDrops  atomic.Int64
	DecodeErrors   atomic.Int64
	ReasmDropped   atomic.Int64
}

// UDPConfig parameterizes a UDPTransport.
type UDPConfig struct {
	// Controller is the ToController destination (nil in the controller
	// process itself, which never sends in that direction).
	Controller *net.UDPAddr
	// Switches maps switch IDs to their hosting process (nil entries and
	// an empty map are valid in switch processes, which never send
	// ToSwitch).
	Switches map[topology.NodeID]*net.UDPAddr
	// LossProb drops each outbound fragment with this probability, drawn
	// from a rand stream seeded by Seed (retry-path testing knob).
	LossProb float64
	Seed     int64
	// MaxFragment caps the fragment payload size; 0 means 1400 bytes.
	MaxFragment int
}

// Fragment header: 2 B magic, 4 B frame id, 2 B index, 2 B count.
const (
	fragMagic       = 0x4D46 // "MF"
	fragHeaderBytes = 10
	defaultFragment = 1400
	// reasmTTL bounds how long an incomplete frame waits for fragments.
	reasmTTL = 2 * time.Second
)

type reasmKey struct {
	from string
	id   uint32
}

type partialFrame struct {
	frags    [][]byte
	have     int
	deadline time.Time
}

// NewUDP wraps an already-bound socket. deliver receives every decoded
// inbound Message on the read goroutine; it must serialize into the
// owner's run loop itself. Close the transport (not the conn) to shut
// down.
func NewUDP(conn *net.UDPConn, cfg UDPConfig, deliver func(Message)) *UDPTransport {
	maxFrag := cfg.MaxFragment
	if maxFrag <= 0 {
		maxFrag = defaultFragment
	}
	t := &UDPTransport{
		conn:        conn,
		controller:  cfg.Controller,
		switches:    cfg.Switches,
		deliver:     deliver,
		maxFragment: maxFrag,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		reasm:       make(map[reasmKey]*partialFrame),
		readDone:    make(chan struct{}),
	}
	t.lossProb.Store(int64(cfg.LossProb * 1e9))
	//mars:sync the read loop only invokes the deliver callback, which posts onto the node's single-threaded rtclock loop; socket arrival order is inherently wall-clock and outside the seeded digest surface
	go t.readLoop()
	return t
}

// Send implements Transport: encode, fragment, write to the peer resolved
// from the direction and Message.Switch. The deliver argument is ignored —
// delivery happens in the receiving process.
func (t *UDPTransport) Send(d Direction, m Message, _ func(Message)) {
	if t.closed.Load() {
		return
	}
	var peer *net.UDPAddr
	if d == ToController {
		peer = t.controller
	} else {
		peer = t.switches[m.Switch]
	}
	if peer == nil {
		return // unroutable: indistinguishable from loss, retries handle it
	}
	frame := EncodeMessage(&m)
	id := t.frameID.Add(1)
	count := (len(frame) + t.maxFragment - 1) / t.maxFragment
	if count == 0 {
		count = 1
	}
	t.stats.FramesSent.Add(1)
	loss := float64(t.lossProb.Load()) / 1e9
	for i := 0; i < count; i++ {
		lo := i * t.maxFragment
		hi := lo + t.maxFragment
		if hi > len(frame) {
			hi = len(frame)
		}
		if loss > 0 && t.drawLoss(loss) {
			t.stats.InjectedDrops.Add(1)
			continue
		}
		pkt := make([]byte, fragHeaderBytes+hi-lo)
		binary.BigEndian.PutUint16(pkt[0:2], fragMagic)
		binary.BigEndian.PutUint32(pkt[2:6], id)
		binary.BigEndian.PutUint16(pkt[6:8], uint16(i))
		binary.BigEndian.PutUint16(pkt[8:10], uint16(count))
		copy(pkt[fragHeaderBytes:], frame[lo:hi])
		if _, err := t.conn.WriteToUDP(pkt, peer); err != nil {
			return // socket closed or unreachable; retries handle it
		}
		t.stats.FragmentsSent.Add(1)
	}
}

func (t *UDPTransport) drawLoss(p float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < p
}

// SetLossProb adjusts the injected outbound fragment loss at runtime.
func (t *UDPTransport) SetLossProb(p float64) { t.lossProb.Store(int64(p * 1e9)) }

// Stats exposes the transport counters.
func (t *UDPTransport) Stats() *UDPStats { return &t.stats }

// Close stops the read loop and closes the socket.
func (t *UDPTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := t.conn.Close()
	<-t.readDone
	return err
}

// readLoop receives fragments, reassembles frames, decodes, delivers.
// Read deadlines keep the loop responsive to Close even when the peer has
// gone quiet.
func (t *UDPTransport) readLoop() {
	defer close(t.readDone)
	buf := make([]byte, 65536)
	for {
		//mars:wallclock socket read deadline; deployment-mode I/O, never simulation state
		t.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		t.onFragment(append([]byte(nil), buf[:n]...), from)
	}
}

// onFragment folds one received datagram into its frame; a completed
// frame is decoded and delivered.
func (t *UDPTransport) onFragment(pkt []byte, from *net.UDPAddr) {
	if len(pkt) < fragHeaderBytes || binary.BigEndian.Uint16(pkt[0:2]) != fragMagic {
		t.stats.DecodeErrors.Add(1)
		return
	}
	t.stats.FragmentsRecvd.Add(1)
	id := binary.BigEndian.Uint32(pkt[2:6])
	index := int(binary.BigEndian.Uint16(pkt[6:8]))
	count := int(binary.BigEndian.Uint16(pkt[8:10]))
	if count == 0 || index >= count {
		t.stats.DecodeErrors.Add(1)
		return
	}
	payload := pkt[fragHeaderBytes:]

	var frame []byte
	if count == 1 {
		frame = payload
	} else {
		frame = t.reassemble(reasmKey{from: from.String(), id: id}, index, count, payload)
		if frame == nil {
			return // still waiting for fragments
		}
	}
	m, _, err := DecodeMessage(frame)
	if err != nil {
		t.stats.DecodeErrors.Add(1)
		return
	}
	t.stats.FramesReceived.Add(1)
	t.deliver(m)
}

// reassemble buffers one fragment and returns the whole frame when the
// last piece lands. Incomplete frames are evicted after reasmTTL.
func (t *UDPTransport) reassemble(k reasmKey, index, count int, payload []byte) []byte {
	//mars:wallclock reassembly TTL eviction; deployment-mode I/O, never simulation state
	now := time.Now()
	t.reasmMu.Lock()
	defer t.reasmMu.Unlock()
	if now.After(t.sweep) {
		for key, p := range t.reasm {
			if now.After(p.deadline) {
				delete(t.reasm, key)
				t.stats.ReasmDropped.Add(1)
			}
		}
		t.sweep = now.Add(reasmTTL)
	}
	p := t.reasm[k]
	if p == nil || len(p.frags) != count {
		p = &partialFrame{frags: make([][]byte, count), deadline: now.Add(reasmTTL)}
		t.reasm[k] = p
	}
	if p.frags[index] == nil {
		p.frags[index] = payload
		p.have++
	}
	if p.have < count {
		return nil
	}
	delete(t.reasm, k)
	var frame []byte
	for _, f := range p.frags {
		frame = append(frame, f...)
	}
	return frame
}

var _ Transport = (*UDPTransport)(nil)
