package ctrlchan

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// udpPair binds two loopback sockets wired at each other: a "controller"
// end and a "switch" end hosting the given switch IDs.
func udpPair(t *testing.T, loss float64, maxFrag int, sws ...topology.NodeID) (ctrl, sw *UDPTransport, ctrlRx, swRx *msgSink) {
	t.Helper()
	ctrlConn := bindLoopback(t)
	swConn := bindLoopback(t)
	swAddr := swConn.LocalAddr().(*net.UDPAddr)
	ctrlAddr := ctrlConn.LocalAddr().(*net.UDPAddr)

	switches := make(map[topology.NodeID]*net.UDPAddr)
	for _, id := range sws {
		switches[id] = swAddr
	}
	ctrlRx, swRx = &msgSink{}, &msgSink{}
	ctrl = NewUDP(ctrlConn, UDPConfig{Switches: switches, LossProb: loss, Seed: 7, MaxFragment: maxFrag}, ctrlRx.take)
	sw = NewUDP(swConn, UDPConfig{Controller: ctrlAddr, LossProb: loss, Seed: 8, MaxFragment: maxFrag}, swRx.take)
	t.Cleanup(func() { ctrl.Close(); sw.Close() })
	return ctrl, sw, ctrlRx, swRx
}

func bindLoopback(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("bind loopback: %v", err)
	}
	return conn
}

// msgSink collects delivered messages across goroutines.
type msgSink struct {
	mu   sync.Mutex
	msgs []Message
}

func (s *msgSink) take(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, m)
}

func (s *msgSink) wait(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //mars:wallclock test deadline
	for {
		s.mu.Lock()
		got := append([]Message(nil), s.msgs...)
		s.mu.Unlock()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) { //mars:wallclock test deadline
			t.Fatalf("timed out waiting for %d messages, have %d", n, len(got))
		}
		time.Sleep(time.Millisecond) //mars:wallclock test polling
	}
}

func TestUDPRoundTripBothDirections(t *testing.T) {
	ctrl, sw, ctrlRx, swRx := udpPair(t, 0, 0, 3)

	req := Message{Kind: KindCollectRequest, Seq: 9, Switch: 3,
		Note: dataplane.Notification{Kind: dataplane.NotifyDrop, Switch: 3,
			Flow: dataplane.FlowID{Src: 1, Sink: 3}, Time: netsim.Second, Dropped: 4},
		Wire: CollectRequestBytes}
	ctrl.Send(ToSwitch, req, nil)
	got := swRx.wait(t, 1)
	if !reflect.DeepEqual(got[0], req) {
		t.Fatalf("switch received %+v, want %+v", got[0], req)
	}

	resp := Message{Kind: KindCollectResponse, Seq: 9, Switch: 3,
		Stamp: 2 * netsim.Second,
		Records: []dataplane.RTRecord{{Flow: dataplane.FlowID{Src: 1, Sink: 3},
			Epoch: 12, Latency: 300 * netsim.Microsecond, Arrival: netsim.Second}},
		Wire: dataplane.RTRecordBytes}
	sw.Send(ToController, resp, nil)
	back := ctrlRx.wait(t, 1)
	if !reflect.DeepEqual(back[0], resp) {
		t.Fatalf("controller received %+v, want %+v", back[0], resp)
	}
}

// TestUDPFragmentation forces a response across many fragments and checks
// it reassembles exactly.
func TestUDPFragmentation(t *testing.T) {
	_, sw, ctrlRx, _ := udpPair(t, 0, 128, 3)

	recs := make([]dataplane.RTRecord, 200) // 200×60 B ≫ 128 B fragments
	for i := range recs {
		recs[i] = dataplane.RTRecord{
			Flow:  dataplane.FlowID{Src: topology.NodeID(i), Sink: 3},
			Epoch: uint32(i), Latency: netsim.Time(i) * netsim.Microsecond,
			Arrival: netsim.Time(i) * netsim.Millisecond,
		}
	}
	resp := Message{Kind: KindCollectResponse, Seq: 1, Switch: 3, Records: recs}
	sw.Send(ToController, resp, nil)
	got := ctrlRx.wait(t, 1)
	if !reflect.DeepEqual(got[0], resp) {
		t.Fatal("fragmented frame did not reassemble to the original message")
	}
	if sw.Stats().FragmentsSent.Load() < 10 {
		t.Fatalf("expected many fragments, sent %d", sw.Stats().FragmentsSent.Load())
	}
}

// TestUDPInjectedLoss drops fragments with high probability and verifies
// frames actually go missing (the retry machinery's food) while repeated
// sends still get some through.
func TestUDPInjectedLoss(t *testing.T) {
	ctrl, _, _, swRx := udpPair(t, 0.5, 0, 3)

	const sends = 60
	for i := 0; i < sends; i++ {
		ctrl.Send(ToSwitch, Message{Kind: KindRefreshRequest, Seq: uint64(i + 1),
			Switch: 3, Wire: RefreshRequestBytes}, nil)
	}
	time.Sleep(300 * time.Millisecond) //mars:wallclock allow in-flight datagrams to land
	swRx.mu.Lock()
	got := len(swRx.msgs)
	swRx.mu.Unlock()
	if got == 0 {
		t.Fatal("all frames lost: loss injection should be probabilistic, not total")
	}
	if got == sends {
		t.Fatal("no frames lost despite 50% injected fragment loss")
	}
	if ctrl.Stats().InjectedDrops.Load() == 0 {
		t.Fatal("loss injection recorded no drops")
	}
}

// TestUDPGarbageTolerance feeds raw garbage datagrams at a transport; the
// read loop must survive and keep delivering valid frames.
func TestUDPGarbageTolerance(t *testing.T) {
	ctrl, sw, ctrlRx, _ := udpPair(t, 0, 0, 3)
	ctrlAddr := ctrl.conn.LocalAddr().(*net.UDPAddr)

	attacker := bindLoopback(t)
	defer attacker.Close()
	for _, pkt := range [][]byte{
		{},
		{0xFF},
		{0x4D, 0x46, 0, 0, 0, 1, 0, 9, 0, 2}, // index >= count
		{0x4D, 0x46, 0, 0, 0, 2, 0, 0, 0, 0}, // zero count
		{0x4D, 0x46, 0, 0, 0, 3, 0, 0, 0, 1, 0xAB}, // valid fragment, garbage frame
	} {
		if len(pkt) > 0 {
			attacker.WriteToUDP(pkt, ctrlAddr)
		}
	}

	resp := Message{Kind: KindThresholdAck, Seq: 4, Switch: 3,
		Flow: dataplane.FlowID{Src: 1, Sink: 3}, Threshold: netsim.Millisecond, Wire: AckBytes}
	sw.Send(ToController, resp, nil)
	got := ctrlRx.wait(t, 1)
	if !reflect.DeepEqual(got[0], resp) {
		t.Fatalf("valid frame lost after garbage: got %+v", got[0])
	}
}

// TestUDPUnroutableSwitchDropsSilently sends to a switch with no portmap
// entry: the frame must vanish without error (retries own recovery).
func TestUDPUnroutableSwitchDropsSilently(t *testing.T) {
	ctrl, _, _, swRx := udpPair(t, 0, 0, 3)
	ctrl.Send(ToSwitch, Message{Kind: KindRefreshRequest, Seq: 1, Switch: 99}, nil)
	ctrl.Send(ToSwitch, Message{Kind: KindRefreshRequest, Seq: 2, Switch: 3,
		Wire: RefreshRequestBytes}, nil)
	got := swRx.wait(t, 1)
	if got[0].Switch != 3 {
		t.Fatalf("delivered to %d, want 3", got[0].Switch)
	}
}
