package ctrlchan

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// Wire formats for the control channel. In the simulator, Messages travel
// as Go values over the deterministic Channel; the real-process deployment
// mode (internal/deploy, cmd/mars-node) sends the same Messages over UDP
// sockets as versioned, length-framed byte frames. Every frame is
//
//	header [FrameHeaderBytes]byte   (magic, version, kind, seq, switch,
//	                                 modeled wire bytes, payload length)
//	payload [Len]byte               (layout fixed per Kind)
//
// in big-endian, following the explicit-span style of dataplane/wire.go:
// the fixed-size layouts are Marshal/Unmarshal [N]byte pairs so the
// wirewidth analyzer verifies encode/decode symmetry, and the
// variable-length frame assembly (EncodeMessage/DecodeMessage) composes
// them. Unlike the in-band telemetry encodings, these frames carry full
// field widths — the control channel is not byte-budgeted; Message.Wire
// keeps carrying the *modeled* size the experiments account.

// Frame constants.
const (
	// FrameMagic opens every frame ("M1" big-endian).
	FrameMagic = 0x4D31
	// FrameVersion is the protocol version this build speaks. A version
	// bump is a wire break: peers reject frames from other versions.
	FrameVersion = 1
	// FrameHeaderBytes is the fixed frame header size.
	FrameHeaderBytes = 28
	// NotificationWireBytes is the full-width notification payload.
	NotificationWireBytes = 41
	// RecordWireBytes is one full-width Ring Table record (including the
	// sink switch and arrival time, which the in-band 28-byte collection
	// form leaves implicit).
	RecordWireBytes = 60
	// ThresholdWireBytes is the threshold push/ack payload.
	ThresholdWireBytes = 16
	// responseHeadBytes prefixes collect/refresh response payloads:
	// 8-byte snapshot stamp + 4-byte record count.
	responseHeadBytes = 12
	// MaxFramePayload bounds a frame's payload; DecodeMessage rejects
	// anything larger before allocating.
	MaxFramePayload = 1 << 22
)

// Frame decoding errors.
var (
	// ErrShortFrame means the buffer ends before the frame does; a stream
	// reader should read more bytes and retry.
	ErrShortFrame = errors.New("ctrlchan: short frame")
	// ErrBadFrame means the bytes cannot be a frame (bad magic, version,
	// kind, or a payload inconsistent with its kind) and must be dropped.
	ErrBadFrame = errors.New("ctrlchan: bad frame")
)

// FrameHeader is the decoded fixed header of one frame.
type FrameHeader struct {
	Version uint8
	Kind    Kind
	Seq     uint64
	Switch  topology.NodeID
	// Wire is the modeled message size (Message.Wire), carried so both
	// ends account identical experiment bytes regardless of frame size.
	Wire int64
	// Len is the payload length following the header.
	Len uint32
}

// MarshalFrameHeader encodes the fixed frame header:
//
//	0:2   magic
//	2     version
//	3     kind
//	4:12  sequence number
//	12:16 switch ID
//	16:24 modeled wire bytes
//	24:28 payload length
func MarshalFrameHeader(h *FrameHeader) [FrameHeaderBytes]byte {
	var b [FrameHeaderBytes]byte
	binary.BigEndian.PutUint16(b[0:2], FrameMagic)
	b[2] = h.Version
	b[3] = byte(h.Kind)
	binary.BigEndian.PutUint64(b[4:12], h.Seq)
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Switch))
	binary.BigEndian.PutUint64(b[16:24], uint64(h.Wire))
	binary.BigEndian.PutUint32(b[24:28], h.Len)
	return b
}

// UnmarshalFrameHeader decodes and validates the fixed frame header.
func UnmarshalFrameHeader(b [FrameHeaderBytes]byte) (*FrameHeader, error) {
	if binary.BigEndian.Uint16(b[0:2]) != FrameMagic {
		return nil, fmt.Errorf("%w: magic %#04x", ErrBadFrame, binary.BigEndian.Uint16(b[0:2]))
	}
	h := &FrameHeader{
		Version: b[2],
		Kind:    Kind(b[3]),
		Seq:     binary.BigEndian.Uint64(b[4:12]),
		Switch:  topology.NodeID(binary.BigEndian.Uint32(b[12:16])),
		Wire:    int64(binary.BigEndian.Uint64(b[16:24])),
		Len:     binary.BigEndian.Uint32(b[24:28]),
	}
	if h.Version != FrameVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, h.Version, FrameVersion)
	}
	if h.Kind > KindThresholdAck {
		return nil, fmt.Errorf("%w: kind %d", ErrBadFrame, h.Kind)
	}
	if h.Len > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, h.Len, MaxFramePayload)
	}
	return h, nil
}

// MarshalNotificationWire encodes a notification payload at full width
// (unlike the in-band 24-byte form, no timestamp compression — control
// frames are not byte-budgeted):
//
//	0     notification kind
//	1:5   switch ID
//	5:9   flow source switch
//	9:13  flow sink switch
//	13:21 event time (ns)
//	21:29 latency (ns)
//	29:37 dropped count
//	37:41 epoch gap
func MarshalNotificationWire(n *dataplane.Notification) [NotificationWireBytes]byte {
	var b [NotificationWireBytes]byte
	b[0] = byte(n.Kind)
	binary.BigEndian.PutUint32(b[1:5], uint32(n.Switch))
	binary.BigEndian.PutUint32(b[5:9], uint32(n.Flow.Src))
	binary.BigEndian.PutUint32(b[9:13], uint32(n.Flow.Sink))
	binary.BigEndian.PutUint64(b[13:21], uint64(n.Time))
	binary.BigEndian.PutUint64(b[21:29], uint64(n.Latency))
	binary.BigEndian.PutUint64(b[29:37], uint64(n.Dropped))
	binary.BigEndian.PutUint32(b[37:41], n.EpochGap)
	return b
}

// UnmarshalNotificationWire decodes the full-width notification payload.
func UnmarshalNotificationWire(b [NotificationWireBytes]byte) (dataplane.Notification, error) {
	k := dataplane.NotificationKind(b[0])
	if k != dataplane.NotifyHighLatency && k != dataplane.NotifyDrop {
		return dataplane.Notification{}, fmt.Errorf("%w: notification kind %d", ErrBadFrame, b[0])
	}
	return dataplane.Notification{
		Kind:   k,
		Switch: topology.NodeID(binary.BigEndian.Uint32(b[1:5])),
		Flow: dataplane.FlowID{
			Src:  topology.NodeID(binary.BigEndian.Uint32(b[5:9])),
			Sink: topology.NodeID(binary.BigEndian.Uint32(b[9:13])),
		},
		Time:     netsim.Time(binary.BigEndian.Uint64(b[13:21])),
		Latency:  netsim.Time(binary.BigEndian.Uint64(b[21:29])),
		Dropped:  int64(binary.BigEndian.Uint64(b[29:37])),
		EpochGap: binary.BigEndian.Uint32(b[37:41]),
	}, nil
}

// MarshalRecordWire encodes one Ring Table record at full width for
// collect/refresh response payloads:
//
//	0:4   flow source switch
//	4:8   flow sink switch
//	8:12  PathID
//	12:16 epoch
//	16:24 latency (ns)
//	24:28 source count
//	28:32 sink count
//	32:36 path count
//	36:44 path bytes
//	44:48 total queue depth
//	48:52 epoch gap
//	52:60 arrival time (ns)
//
// Codec-private record state (RTRecord.Ext) does not cross the socket:
// the deployment mode runs the default exact encoding.
func MarshalRecordWire(r *dataplane.RTRecord) [RecordWireBytes]byte {
	var b [RecordWireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.Flow.Src))
	binary.BigEndian.PutUint32(b[4:8], uint32(r.Flow.Sink))
	binary.BigEndian.PutUint32(b[8:12], uint32(r.PathID))
	binary.BigEndian.PutUint32(b[12:16], r.Epoch)
	binary.BigEndian.PutUint64(b[16:24], uint64(r.Latency))
	binary.BigEndian.PutUint32(b[24:28], r.SourceCount)
	binary.BigEndian.PutUint32(b[28:32], r.SinkCount)
	binary.BigEndian.PutUint32(b[32:36], r.PathCount)
	binary.BigEndian.PutUint64(b[36:44], r.PathBytes)
	binary.BigEndian.PutUint32(b[44:48], r.TotalQueueDepth)
	binary.BigEndian.PutUint32(b[48:52], r.EpochGap)
	binary.BigEndian.PutUint64(b[52:60], uint64(r.Arrival))
	return b
}

// UnmarshalRecordWire decodes one full-width Ring Table record.
func UnmarshalRecordWire(b [RecordWireBytes]byte) dataplane.RTRecord {
	return dataplane.RTRecord{
		Flow: dataplane.FlowID{
			Src:  topology.NodeID(binary.BigEndian.Uint32(b[0:4])),
			Sink: topology.NodeID(binary.BigEndian.Uint32(b[4:8])),
		},
		PathID:          pathid.ID(binary.BigEndian.Uint32(b[8:12])),
		Epoch:           binary.BigEndian.Uint32(b[12:16]),
		Latency:         netsim.Time(binary.BigEndian.Uint64(b[16:24])),
		SourceCount:     binary.BigEndian.Uint32(b[24:28]),
		SinkCount:       binary.BigEndian.Uint32(b[28:32]),
		PathCount:       binary.BigEndian.Uint32(b[32:36]),
		PathBytes:       binary.BigEndian.Uint64(b[36:44]),
		TotalQueueDepth: binary.BigEndian.Uint32(b[44:48]),
		EpochGap:        binary.BigEndian.Uint32(b[48:52]),
		Arrival:         netsim.Time(binary.BigEndian.Uint64(b[52:60])),
	}
}

// MarshalThresholdWire encodes a threshold push/ack payload:
//
//	0:4  flow source switch
//	4:8  flow sink switch
//	8:16 threshold (ns)
func MarshalThresholdWire(flow dataplane.FlowID, th netsim.Time) [ThresholdWireBytes]byte {
	var b [ThresholdWireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(flow.Src))
	binary.BigEndian.PutUint32(b[4:8], uint32(flow.Sink))
	binary.BigEndian.PutUint64(b[8:16], uint64(th))
	return b
}

// UnmarshalThresholdWire decodes a threshold push/ack payload.
func UnmarshalThresholdWire(b [ThresholdWireBytes]byte) (dataplane.FlowID, netsim.Time) {
	return dataplane.FlowID{
		Src:  topology.NodeID(binary.BigEndian.Uint32(b[0:4])),
		Sink: topology.NodeID(binary.BigEndian.Uint32(b[4:8])),
	}, netsim.Time(binary.BigEndian.Uint64(b[8:16]))
}

// payloadLen returns the encoded payload size of m.
func payloadLen(m *Message) int {
	switch m.Kind {
	case KindNotification, KindCollectRequest:
		// A collect request carries its trigger notification so a remote
		// switch agent can identify the diagnosis being served.
		return NotificationWireBytes
	case KindCollectResponse, KindRefreshResponse:
		return responseHeadBytes + len(m.Records)*RecordWireBytes
	case KindRefreshRequest:
		return 8 // watermark
	case KindThresholdPush, KindThresholdAck:
		return ThresholdWireBytes
	}
	return 0
}

// EncodeMessage renders one Message as a complete frame.
func EncodeMessage(m *Message) []byte {
	plen := payloadLen(m)
	h := FrameHeader{
		Version: FrameVersion,
		Kind:    m.Kind,
		Seq:     m.Seq,
		Switch:  m.Switch,
		Wire:    m.Wire,
		Len:     uint32(plen),
	}
	out := make([]byte, 0, FrameHeaderBytes+plen)
	hb := MarshalFrameHeader(&h)
	out = append(out, hb[:]...)
	switch m.Kind {
	case KindNotification, KindCollectRequest:
		nb := MarshalNotificationWire(&m.Note)
		out = append(out, nb[:]...)
	case KindCollectResponse, KindRefreshResponse:
		var head [responseHeadBytes]byte
		binary.BigEndian.PutUint64(head[0:8], uint64(m.Stamp))
		binary.BigEndian.PutUint32(head[8:12], uint32(len(m.Records)))
		out = append(out, head[:]...)
		for i := range m.Records {
			rb := MarshalRecordWire(&m.Records[i])
			out = append(out, rb[:]...)
		}
	case KindRefreshRequest:
		var wb [8]byte
		binary.BigEndian.PutUint64(wb[:], uint64(m.Watermark))
		out = append(out, wb[:]...)
	case KindThresholdPush, KindThresholdAck:
		tb := MarshalThresholdWire(m.Flow, m.Threshold)
		out = append(out, tb[:]...)
	}
	return out
}

// DecodeMessage parses one frame from the front of b, returning the
// message and the number of bytes consumed. ErrShortFrame means b ends
// before the frame does (a stream reader should buffer more and retry);
// ErrBadFrame means the bytes are not a valid frame and must be dropped.
func DecodeMessage(b []byte) (Message, int, error) {
	if len(b) < FrameHeaderBytes {
		return Message{}, 0, ErrShortFrame
	}
	var hb [FrameHeaderBytes]byte
	copy(hb[:], b[:FrameHeaderBytes])
	h, err := UnmarshalFrameHeader(hb)
	if err != nil {
		return Message{}, 0, err
	}
	total := FrameHeaderBytes + int(h.Len)
	if len(b) < total {
		return Message{}, 0, ErrShortFrame
	}
	p := b[FrameHeaderBytes:total]
	m := Message{Kind: h.Kind, Seq: h.Seq, Switch: h.Switch, Wire: h.Wire}
	switch h.Kind {
	case KindNotification, KindCollectRequest:
		if len(p) != NotificationWireBytes {
			return Message{}, 0, fmt.Errorf("%w: %v payload %d bytes, want %d", ErrBadFrame, h.Kind, len(p), NotificationWireBytes)
		}
		var nb [NotificationWireBytes]byte
		copy(nb[:], p)
		n, err := UnmarshalNotificationWire(nb)
		if err != nil {
			return Message{}, 0, err
		}
		m.Note = n
	case KindCollectResponse, KindRefreshResponse:
		if len(p) < responseHeadBytes {
			return Message{}, 0, fmt.Errorf("%w: %v payload %d bytes, want >= %d", ErrBadFrame, h.Kind, len(p), responseHeadBytes)
		}
		m.Stamp = netsim.Time(binary.BigEndian.Uint64(p[0:8]))
		count := int(binary.BigEndian.Uint32(p[8:12]))
		if len(p) != responseHeadBytes+count*RecordWireBytes {
			return Message{}, 0, fmt.Errorf("%w: %v record count %d disagrees with payload %d bytes", ErrBadFrame, h.Kind, count, len(p))
		}
		if count > 0 {
			m.Records = make([]dataplane.RTRecord, count)
			for i := 0; i < count; i++ {
				var rb [RecordWireBytes]byte
				copy(rb[:], p[responseHeadBytes+i*RecordWireBytes:])
				m.Records[i] = UnmarshalRecordWire(rb)
			}
		}
	case KindRefreshRequest:
		if len(p) != 8 {
			return Message{}, 0, fmt.Errorf("%w: refresh-req payload %d bytes, want 8", ErrBadFrame, len(p))
		}
		m.Watermark = netsim.Time(binary.BigEndian.Uint64(p))
	case KindThresholdPush, KindThresholdAck:
		if len(p) != ThresholdWireBytes {
			return Message{}, 0, fmt.Errorf("%w: threshold payload %d bytes, want %d", ErrBadFrame, len(p), ThresholdWireBytes)
		}
		var tb [ThresholdWireBytes]byte
		copy(tb[:], p)
		m.Flow, m.Threshold = UnmarshalThresholdWire(tb)
	}
	return m, total, nil
}
