package ctrlchan

import (
	"errors"
	"reflect"
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// FuzzDecodeMessage drives the frame decoder with arbitrary bytes: it must
// never panic, must classify every input as a message / short frame / bad
// frame, and any accepted message must re-encode to bytes the decoder
// accepts identically (decode∘encode idempotence over the accepted set).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range []Message{
		{Kind: KindNotification, Seq: 1, Switch: 7,
			Note: dataplane.Notification{Kind: dataplane.NotifyDrop, Switch: 7,
				Flow: dataplane.FlowID{Src: 3, Sink: 9}, Time: netsim.Second, Dropped: 12}},
		{Kind: KindCollectRequest, Seq: 2, Switch: 9, Wire: CollectRequestBytes},
		{Kind: KindCollectResponse, Seq: 2, Switch: 9, Stamp: 2 * netsim.Second,
			Records: []dataplane.RTRecord{{Flow: dataplane.FlowID{Src: 1, Sink: 2},
				PathID: 0xAB, Epoch: 23, Latency: 830 * netsim.Microsecond,
				SourceCount: 120, SinkCount: 117, Arrival: 2400 * netsim.Millisecond}}},
		{Kind: KindRefreshRequest, Seq: 3, Switch: 4, Watermark: 1900 * netsim.Millisecond},
		{Kind: KindThresholdPush, Seq: 5, Switch: 11,
			Flow: dataplane.FlowID{Src: 1, Sink: 2}, Threshold: 700 * netsim.Microsecond},
	} {
		f.Add(EncodeMessage(&m))
	}
	f.Add([]byte{0x4D, 0x31, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, n, err := DecodeMessage(raw)
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < FrameHeaderBytes || n > len(raw) {
			t.Fatalf("consumed %d bytes of %d", n, len(raw))
		}
		b2 := EncodeMessage(&m)
		m2, n2, err := DecodeMessage(b2)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if n2 != len(b2) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(b2))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("codec not idempotent:\n m=%+v\nm2=%+v", m, m2)
		}
	})
}

// FuzzMessageRoundTrip goes the other direction: any in-range message must
// survive encode -> decode exactly.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1), int32(7), int32(3), int32(9), int64(netsim.Second),
		int64(500*netsim.Microsecond), int64(0), uint32(0), int64(24), uint8(2))
	f.Add(uint8(2), uint64(99), int32(2), int32(1), int32(2), int64(0),
		int64(0), int64(41), uint32(3), int64(56), uint8(3))
	f.Add(uint8(5), uint64(7), int32(11), int32(4), int32(6), int64(2*netsim.Second),
		int64(700*netsim.Microsecond), int64(0), uint32(0), int64(10), uint8(0))
	f.Fuzz(func(t *testing.T, kind uint8, seq uint64, sw, src, sink int32,
		ts, lat, dropped int64, gap uint32, wire int64, nrec uint8) {
		k := Kind(kind % uint8(KindThresholdAck+1))
		nk := dataplane.NotifyHighLatency
		if dropped != 0 {
			nk = dataplane.NotifyDrop
		}
		m := Message{Kind: k, Seq: seq, Switch: topology.NodeID(sw), Wire: wire}
		switch k {
		case KindNotification, KindCollectRequest:
			m.Note = dataplane.Notification{Kind: nk, Switch: topology.NodeID(sw),
				Flow: dataplane.FlowID{Src: topology.NodeID(src), Sink: topology.NodeID(sink)},
				Time: netsim.Time(ts), Latency: netsim.Time(lat),
				Dropped: dropped, EpochGap: gap}
		case KindCollectResponse, KindRefreshResponse:
			m.Stamp = netsim.Time(ts)
			for i := uint8(0); i < nrec%8; i++ {
				m.Records = append(m.Records, dataplane.RTRecord{
					Flow:        dataplane.FlowID{Src: topology.NodeID(src), Sink: topology.NodeID(sink)},
					Epoch:       gap + uint32(i),
					Latency:     netsim.Time(lat),
					SourceCount: uint32(dropped) + uint32(i),
					Arrival:     netsim.Time(ts) + netsim.Time(i),
				})
			}
		case KindRefreshRequest:
			m.Watermark = netsim.Time(ts)
		case KindThresholdPush, KindThresholdAck:
			m.Flow = dataplane.FlowID{Src: topology.NodeID(src), Sink: topology.NodeID(sink)}
			m.Threshold = netsim.Time(lat)
		}
		b := EncodeMessage(&m)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", m, err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	})
}
