package ctrlchan

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
)

// wireMessages is a corpus covering every kind and payload shape.
func wireMessages() []Message {
	note := dataplane.Notification{
		Kind:     dataplane.NotifyDrop,
		Switch:   7,
		Flow:     dataplane.FlowID{Src: 3, Sink: 9},
		Time:     2345 * netsim.Millisecond,
		Dropped:  41,
		EpochGap: 2,
	}
	recs := []dataplane.RTRecord{
		{
			Flow: dataplane.FlowID{Src: 1, Sink: 2}, PathID: 0xAB, Epoch: 23,
			Latency: 830 * netsim.Microsecond, SourceCount: 120, SinkCount: 117,
			PathCount: 64, PathBytes: 96000, TotalQueueDepth: 9, EpochGap: 1,
			Arrival: 2400 * netsim.Millisecond,
		},
		{
			Flow: dataplane.FlowID{Src: 5, Sink: 2}, PathID: 0x11, Epoch: 24,
			Latency: 120 * netsim.Microsecond, SourceCount: 80, SinkCount: 80,
			Arrival: 2500 * netsim.Millisecond,
		},
	}
	return []Message{
		{Kind: KindNotification, Seq: 1, Switch: 7, Note: note, Wire: dataplane.NotificationBytes},
		{Kind: KindCollectRequest, Seq: 2, Switch: 9, Note: note, Wire: CollectRequestBytes},
		{Kind: KindCollectResponse, Seq: 2, Switch: 9, Records: recs,
			Wire: int64(len(recs)) * dataplane.RTRecordBytes, Stamp: 2600 * netsim.Millisecond},
		{Kind: KindRefreshRequest, Seq: 3, Switch: 4, Watermark: 1900 * netsim.Millisecond, Wire: RefreshRequestBytes},
		{Kind: KindRefreshResponse, Seq: 3, Switch: 4, Records: recs[:1], Wire: 8, Stamp: 2 * netsim.Second},
		{Kind: KindRefreshResponse, Seq: 8, Switch: 4, Wire: 0}, // empty response
		{Kind: KindThresholdPush, Seq: 5, Switch: 11, Flow: dataplane.FlowID{Src: 1, Sink: 2},
			Threshold: 700 * netsim.Microsecond, Wire: dataplane.ThresholdPushBytes},
		{Kind: KindThresholdAck, Seq: 5, Switch: 11, Flow: dataplane.FlowID{Src: 1, Sink: 2},
			Threshold: 700 * netsim.Microsecond, Wire: AckBytes},
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	for _, want := range wireMessages() {
		b := EncodeMessage(&want)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if n != len(b) {
			t.Fatalf("%v: consumed %d of %d bytes", want.Kind, n, len(b))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

// TestDecodeStreamed verifies frames concatenate: a stream reader can
// decode back-to-back frames by consumed-length framing.
func TestDecodeStreamed(t *testing.T) {
	msgs := wireMessages()
	var stream []byte
	for i := range msgs {
		stream = append(stream, EncodeMessage(&msgs[i])...)
	}
	for i := 0; len(stream) > 0; i++ {
		got, n, err := DecodeMessage(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, msgs[i]) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, msgs[i])
		}
		stream = stream[n:]
	}
}

func TestDecodeShortFrame(t *testing.T) {
	m := wireMessages()[2] // collect response with records
	full := EncodeMessage(&m)
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeMessage(full[:cut])
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("truncated at %d/%d: err = %v, want ErrShortFrame", cut, len(full), err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	base := EncodeMessage(&Message{Kind: KindRefreshRequest, Seq: 1, Switch: 2})

	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), base...)
		mutate(b)
		if _, _, err := DecodeMessage(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 0xFF })
	corrupt("bad version", func(b []byte) { b[2] = FrameVersion + 1 })
	corrupt("bad kind", func(b []byte) { b[3] = 200 })
	corrupt("payload too short for kind", func(b []byte) {
		binary.BigEndian.PutUint32(b[24:28], 4) // refresh-req wants 8
	})

	// Oversized declared payload must be rejected before allocation.
	big := append([]byte(nil), base...)
	binary.BigEndian.PutUint32(big[24:28], MaxFramePayload+1)
	if _, _, err := DecodeMessage(big); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized payload: err = %v, want ErrBadFrame", err)
	}

	// A response whose record count disagrees with the payload length.
	resp := EncodeMessage(&Message{Kind: KindCollectResponse, Seq: 2, Switch: 3,
		Records: []dataplane.RTRecord{{Flow: dataplane.FlowID{Src: 1, Sink: 3}}}})
	binary.BigEndian.PutUint32(resp[FrameHeaderBytes+8:FrameHeaderBytes+12], 7)
	if _, _, err := DecodeMessage(resp); !errors.Is(err, ErrBadFrame) {
		t.Errorf("record count mismatch: err = %v, want ErrBadFrame", err)
	}

	// A notification payload carrying an unknown notification kind.
	note := EncodeMessage(&Message{Kind: KindNotification, Seq: 3, Switch: 1})
	note[FrameHeaderBytes] = 99
	if _, _, err := DecodeMessage(note); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad notification kind: err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeEmptyInput(t *testing.T) {
	if _, _, err := DecodeMessage(nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("nil input: err = %v, want ErrShortFrame", err)
	}
}
