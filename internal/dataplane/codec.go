package dataplane

import (
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Codec is the data-plane half of a telemetry encoding. The switch program
// consults it at the three points where the paper's fixed 11-byte design
// is actually a free design choice: whether a marked packet is promoted to
// a telemetry packet (source), what the in-flight header accumulates and
// how many wire bytes it grows (per hop), and what reaches the sink's Ring
// Table record. Implementations live in internal/telemetry; a nil
// Config.Codec selects the built-in behavior below, which is the paper's
// encoding with byte-identical arithmetic.
//
// By convention, concrete implementations are named <name>Codec and pair
// with Marshal<Name>/Unmarshal<Name> wire functions whose fixed array
// length equals WireBytes() (and Marshal<Name>Hop for a non-zero
// HopBytes()); the mars-lint wirewidth analyzer enforces the pairing.
type Codec interface {
	// Name is the registered codec name ("mars11", "perhop", ...).
	Name() string
	// WireBytes is the fixed header size added at the source switch.
	WireBytes() int
	// HopBytes is the per-hop wire growth (classic INT stacks); 0 for
	// fixed-width encodings.
	HopBytes() int
	// EpochStride is the promotion period in epochs: 1 promotes one
	// telemetry packet every epoch (the paper), N only every Nth epoch.
	// The sink's epoch-gap drop detection scales by it.
	EpochStride() uint32
	// Promote decides whether the flow's marked packet for this epoch
	// becomes a telemetry packet.
	Promote(flow FlowID, epoch uint32) bool
	// OnHop updates the in-flight header at one switch and returns the
	// wire bytes the header grew by at this hop.
	OnHop(h *INTHeader, pktID uint64, sw topology.NodeID, qlen int, now netsim.Time) int
	// SinkRecord lets the codec move codec-private header state (h.Ext)
	// into the Ring Table record before it is pushed.
	SinkRecord(h *INTHeader, r *RTRecord)
}

// builtin is the paper's fixed 11-byte encoding as the program has always
// executed it: every epoch mark is promoted, each hop folds its queue
// depth into the accumulator, nothing grows, nothing is carried beyond the
// base header. Keeping it inside the package (rather than importing
// internal/telemetry's mars11) preserves the import direction
// telemetry → dataplane.
type builtin struct{}

func (builtin) Name() string        { return "mars11" }
func (builtin) WireBytes() int      { return TelemetryHeaderBytes }
func (builtin) HopBytes() int       { return 0 }
func (builtin) EpochStride() uint32 { return 1 }

func (builtin) Promote(FlowID, uint32) bool { return true }

func (builtin) OnHop(h *INTHeader, _ uint64, _ topology.NodeID, qlen int, _ netsim.Time) int {
	h.TotalQueueDepth += uint32(qlen)
	return 0
}

func (builtin) SinkRecord(*INTHeader, *RTRecord) {}

var _ Codec = builtin{}
