package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/workload"
)

func TestSourceSinkCountConsistencyFullMesh(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 1259)
	workload.RandomBackground(env.sim, env.ft, workload.BackgroundConfig{
		NumFlows: 96, RatePPS: 220, RateJitter: 0.2,
		Gaps: workload.GapExponential, Start: 0, Stop: 2 * netsim.Second,
		CrossPodBias: 1.0, RoundRobinSrc: true, RoundRobinDst: true,
	}, 1)
	env.sim.Run(3 * netsim.Second)
	shown := 0
	for _, sinkSw := range env.ft.EdgeIDs {
		for _, r := range env.prog.RTSnapshot(sinkSw) {
			if r.Epoch < 2 {
				continue
			}
			diff := int64(r.SourceCount) - int64(r.SinkCount)
			margin := int64(r.SourceCount/8 + 3)
			if (diff > margin || diff < -margin) && shown < 12 {
				shown++
				t.Logf("sink s%d flow %v epoch %d: src=%d sink=%d pathCnt=%d", sinkSw, r.Flow, r.Epoch, r.SourceCount, r.SinkCount, r.PathCount)
			}
		}
	}
	if shown == 0 {
		t.Log("no mismatches")
	}
}
