package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/workload"
)

// TestSourceSinkCountConsistency: with steady multi-subflow traffic and no
// loss, RT records must show SourceCount ≈ SinkCount (within the relative
// in-flight margin) for every epoch after the first.
func TestSourceSinkCountConsistency(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 77)
	src1, src2 := env.ft.HostIDs[0], env.ft.HostIDs[1] // both behind edge0
	dst1, dst2 := env.ft.HostIDs[8], env.ft.HostIDs[9] // both behind edge4 (pod1)
	for i, pair := range [][2]int{{0, 0}, {1, 1}, {0, 1}, {1, 0}} {
		srcs := []int32{int32(src1), int32(src2)}
		dsts := []int32{int32(dst1), int32(dst2)}
		f := &workload.Flow{
			Src: env.ft.HostIDs[0]*0 + env.ft.HostIDs[0], Dst: dst1,
			Key: netsim.FlowKey(i + 1), RatePPS: 220, Gaps: workload.GapExponential,
			Start: 0, Stop: 3 * netsim.Second,
		}
		_ = srcs
		_ = dsts
		_ = pair
		f.Src = env.ft.HostIDs[pair[0]]
		f.Dst = env.ft.HostIDs[8+pair[1]]
		f.Install(env.sim)
	}
	env.sim.Run(4 * netsim.Second)
	sink, _ := env.ft.EdgeSwitchOf(dst1)
	recs := env.prog.RTSnapshot(sink)
	if len(recs) < 10 {
		t.Fatalf("records = %d", len(recs))
	}
	bad := 0
	for _, r := range recs {
		if r.Epoch < 2 {
			continue
		}
		diff := int64(r.SourceCount) - int64(r.SinkCount)
		margin := int64(r.SourceCount/8 + 3)
		if diff > margin || diff < -margin {
			bad++
			t.Logf("epoch %d: src=%d sink=%d diff=%d", r.Epoch, r.SourceCount, r.SinkCount, diff)
		}
	}
	if bad > len(recs)/10 {
		t.Errorf("%d/%d records with count mismatch", bad, len(recs))
	}
}
