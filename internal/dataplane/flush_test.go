package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

// A reboot flush wipes the switch's register arrays — Ingress Table,
// Egress Table, Ring Table, pushed thresholds — while leaving every other
// switch untouched, and the flushed switch keeps working afterwards.
func TestFlushSwitchWipesRegisterState(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 5)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 100,
		Gaps: workload.GapConstant, Sizes: workload.FixedSize(500),
		Start: 0, Stop: netsim.Second}
	f.Install(env.sim)
	env.sim.Run(2 * netsim.Second)

	// The Ingress Table loads at the flow's source edge and the Ring Table
	// at its sink edge: flush the sink, keep the source as the untouched
	// witness.
	sws := append(append(append([]topology.NodeID{}, env.ft.EdgeIDs...), env.ft.AggIDs...), env.ft.CoreIDs...)
	var victim, witness topology.NodeID = -1, -1
	for _, sw := range sws {
		if len(env.prog.RTSnapshot(sw)) > 0 && victim < 0 {
			victim = sw
		}
		if env.prog.ITFlows(sw) > 0 && witness < 0 {
			witness = sw
		}
	}
	if victim < 0 || witness < 0 || victim == witness {
		t.Fatalf("victim = %d, witness = %d", victim, witness)
	}
	env.prog.SetThreshold(victim, FlowID{Src: src, Sink: dst}, netsim.Millisecond)

	env.prog.FlushSwitch(victim)
	if env.prog.ITFlows(victim) != 0 {
		t.Errorf("IT flows after flush = %d", env.prog.ITFlows(victim))
	}
	if env.prog.ETEntries(victim) != 0 {
		t.Errorf("ET entries after flush = %d", env.prog.ETEntries(victim))
	}
	if n := len(env.prog.RTSnapshot(victim)); n != 0 {
		t.Errorf("RT records after flush = %d", n)
	}
	if env.prog.ITFlows(witness) == 0 {
		t.Error("flush must not touch other switches")
	}

	// The flushed switch must keep functioning: new traffic repopulates it.
	f2 := &workload.Flow{Src: src, Dst: dst, Key: 2, RatePPS: 100,
		Gaps: workload.GapConstant, Sizes: workload.FixedSize(500),
		Start: 2 * netsim.Second, Stop: 3 * netsim.Second}
	f2.Install(env.sim)
	env.sim.Run(4 * netsim.Second)
	if len(env.prog.RTSnapshot(victim)) == 0 {
		t.Error("flushed switch did not repopulate from new traffic")
	}
}

// Flushing a host (a node with no switch state) is a no-op, not a panic.
func TestFlushSwitchHostNoop(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 6)
	env.prog.FlushSwitch(env.ft.HostIDs[0])
}
