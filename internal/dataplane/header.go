// Package dataplane implements the MARS switch program (§4.2): the Go
// equivalent of the paper's 1429-line P4 pipeline. It attaches to the
// simulator's Hooks interface and performs, per packet:
//
//   - PathID chaining at every hop (naïve and telemetry packets alike),
//   - telemetry-header insertion at source switches (one packet per flow
//     per epoch becomes a telemetry packet carrying 11 bytes),
//   - in-network accumulation of total queue depth,
//   - per-flow packet/byte counting at edge switches (Ingress Table at
//     sources, Egress Table at sinks),
//   - Ring Table recording of telemetry records at sinks,
//   - in-switch anomaly detection (dynamic latency thresholds, drop
//     detection via count mismatch and epoch-ID gaps) with notification
//     suppression, and
//   - INT header stripping at the sink so monitoring stays transparent to
//     hosts.
package dataplane

import (
	"fmt"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// FlowID is MARS's flow identity: ⟨source switch, sink switch⟩, no host
// information (§4.1). All host pairs behind the same edge-switch pair
// share a FlowID.
type FlowID struct {
	Src, Sink topology.NodeID
}

func (f FlowID) String() string { return fmt.Sprintf("<s%d,s%d>", f.Src, f.Sink) }

// Wire-size constants used for the Fig. 9 bandwidth accounting.
const (
	// TelemetryHeaderBytes is the INT payload of a telemetry packet: source
	// timestamp (compressed, 4 B), last-epoch packet count (2 B), total
	// queue depth (2 B), epoch ID (2 B), flags/category (1 B) — the
	// paper's 11 bytes including the option framing.
	TelemetryHeaderBytes = 11
	// NotificationBytes is one data-plane → control-plane anomaly
	// notification (switch ID, kind, flow, value, timestamp).
	NotificationBytes = 24
	// RTRecordBytes is the wire size of one Ring Table record during
	// on-demand collection.
	RTRecordBytes = 28
	// ThresholdPushBytes is one per-flow threshold update pushed from the
	// control plane to a switch.
	ThresholdPushBytes = 12
)

// INTHeader is the telemetry header carried by telemetry packets.
type INTHeader struct {
	// SourceTS is the time the packet entered the source switch.
	SourceTS netsim.Time
	// LastEpochCount is the source switch's packet count for this FlowID
	// in the previous epoch.
	LastEpochCount uint32
	// TotalQueueDepth accumulates each hop's egress queue occupancy
	// (in-network computation).
	TotalQueueDepth uint32
	// EpochID is the telemetry epoch this packet samples.
	EpochID uint32
	// Flagged suppresses anomaly detection at subsequent hops once one
	// switch has notified the control plane (§4.2.2).
	Flagged bool
	// Ext is codec-private in-flight state (nil for the paper's fixed
	// encoding): the perhop codec's hop stack, the pintlike codec's
	// sampled hop slot. The active Codec owns its concrete type.
	Ext any
}

// PacketMeta is MARS's per-packet state: the PathID field present on every
// packet plus the INT header on telemetry packets. It rides in
// netsim.Packet.Meta.
type PacketMeta struct {
	PathID pathid.ID
	// SourceSwitch is recorded for FlowID reconstruction at the sink.
	SourceSwitch topology.NodeID
	// INT is nil for naïve packets; on telemetry packets it points at the
	// embedded hdr below so promotion needs no separate allocation.
	INT *INTHeader
	// hdr is the in-place storage for INT, enabling PacketMeta pooling.
	hdr INTHeader
}

// NotificationKind distinguishes anomaly classes.
type NotificationKind uint8

const (
	// NotifyHighLatency reports a telemetry packet over its flow threshold.
	NotifyHighLatency NotificationKind = iota
	// NotifyDrop reports a packet-count mismatch or epoch-ID gap.
	NotifyDrop
)

func (k NotificationKind) String() string {
	if k == NotifyHighLatency {
		return "high-latency"
	}
	return "drop"
}

// Notification is the data plane's trigger message to the control plane.
type Notification struct {
	Kind   NotificationKind
	Switch topology.NodeID
	Flow   FlowID
	Time   netsim.Time
	// Latency is set for high-latency notifications.
	Latency netsim.Time
	// Dropped and EpochGap are set for drop notifications.
	Dropped  int64
	EpochGap uint32
}

// Notifier receives data-plane notifications (the control plane).
type Notifier interface {
	Notify(n Notification)
}
