package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// These guards pin the program's per-packet allocation counts at exact
// constants (zero throughout). They are the teeth behind the hot-path
// benchmarks: a regression here fails `go test` everywhere, not just the
// CI bench-gate. If one fails, fix the offending change — do not raise
// the pin.

func allocEnv(t *testing.T) (*Program, *netsim.Simulator, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultProgramConfig()
	table, err := pathid.BuildTable(cfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	prog := New(cfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, 1)
	sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), 1)
	return prog, sim, ft
}

// TestPerHopFoldAllocs pins the transit-hop telemetry fold (PathID hash
// chain, codec queue-depth accumulation, threshold check) at zero
// allocations per packet.
func TestPerHopFoldAllocs(t *testing.T) {
	prog, sim, ft := allocEnv(t)
	topo := ft.Topology
	var sw topology.NodeID = -1
	var in, out topology.PortID
	for _, cand := range topo.Switches() {
		if topo.Node(cand).Layer != topology.LayerAggregation {
			continue
		}
		in, out = -1, -1
		for i, p := range topo.Node(cand).Ports {
			if !topo.IsSwitch(p.Peer) {
				continue
			}
			if topo.Node(p.Peer).Layer == topology.LayerEdge && in < 0 {
				in = topology.PortID(i)
			}
			if topo.Node(p.Peer).Layer == topology.LayerCore && out < 0 {
				out = topology.PortID(i)
			}
		}
		if in >= 0 && out >= 0 {
			sw = cand
			break
		}
	}
	if sw < 0 {
		t.Fatal("no transit hop found")
	}
	pkt := &netsim.Packet{ID: 1, Flow: 7, Size: 700}
	meta := &PacketMeta{SourceSwitch: topo.Switches()[0]}
	meta.INT = &meta.hdr
	pkt.Meta = meta
	avg := testing.AllocsPerRun(500, func() {
		prog.OnForward(sim, sw, in, out, pkt, 5)
	})
	if avg != 0 {
		t.Errorf("per-hop fold allocates %.2f objects/op, want 0", avg)
	}
}

// TestPromoteAllocs pins the source-switch promotion path (Ingress Table
// epoch-counter fold plus the codec's promotion decision) at zero
// allocations per packet, with the epoch advancing every call so each run
// takes the telemetry-packet branch.
func TestPromoteAllocs(t *testing.T) {
	prog, _, ft := allocEnv(t)
	sink := ft.Topology.Switches()[1]
	flow := FlowID{Src: ft.Topology.Switches()[0], Sink: sink}
	it := NewIngressTable(len(ft.Topology.Nodes))
	cdc := prog.cdc
	e := uint32(0)
	avg := testing.AllocsPerRun(500, func() {
		mark, _ := it.Record(sink, e, 700, netsim.Time(e))
		if mark {
			cdc.Promote(flow, e)
		}
		e++
	})
	if avg != 0 {
		t.Errorf("promote path allocates %.2f objects/op, want 0", avg)
	}
}

// TestSinkRecordAllocs pins the sink-switch record fold (Egress Table
// per-flow and per-path counters, previous-epoch reads, Ring Table push)
// at zero allocations per packet once the flow's table slots exist.
func TestSinkRecordAllocs(t *testing.T) {
	_, _, ft := allocEnv(t)
	src := ft.Topology.Switches()[0]
	sink := ft.Topology.Switches()[1]
	flow := FlowID{Src: src, Sink: sink}
	et := NewEgressTable(len(ft.Topology.Nodes))
	rt := NewRingTable(512)
	path := pathid.ID(0x5a)
	et.Record(src, path, 0, 700) // create the per-path map entry
	i := uint32(0)
	avg := testing.AllocsPerRun(500, func() {
		e := i >> 6
		et.Record(src, path, e, 700)
		sc := et.FlowLastEpochCount(src, e)
		pc, pb := et.PathLastEpoch(src, path, e)
		rt.Push(RTRecord{
			Flow: flow, PathID: path, Epoch: e,
			SourceCount: sc, SinkCount: sc, PathCount: pc, PathBytes: pb,
		})
		i++
	})
	if avg != 0 {
		t.Errorf("sink record allocates %.2f objects/op, want 0", avg)
	}
}

// TestProgramSteadyStateAllocs pins the full pipeline — netsim event loop
// plus the MARS program at source, transit, and sink hops — at zero
// allocations per end-to-end packet once flows and pools are warm.
func TestProgramSteadyStateAllocs(t *testing.T) {
	_, sim, ft := allocEnv(t)
	hosts := ft.HostIDs
	// Warm every (src, dst) pair the measured loop will use, so flow map
	// entries, pools, and queue arrays all exist.
	for i := 0; i < 4*len(hosts); i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, netsim.FlowKey(i%len(hosts)), 700)
		sim.RunAll()
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, netsim.FlowKey(i%len(hosts)), 700)
		sim.RunAll()
		i++
	})
	if avg != 0 {
		t.Errorf("full-program packet allocates %.2f objects/op, want 0", avg)
	}
}
