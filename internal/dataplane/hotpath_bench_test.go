package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// Hot-path microbenchmarks. These four series (together with
// BenchmarkNetsimStep in internal/netsim) are the CI bench-gate's
// regression surface: stable names, b.ReportAllocs, no setup inside the
// timed region. Allocation counts are pinned separately by
// TestHotPathAllocs.

// benchEnv builds the K=4 evaluation substrate once per benchmark.
func benchEnv(b *testing.B) (*Program, *netsim.Simulator, *topology.FatTree) {
	b.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultProgramConfig()
	table, err := pathid.BuildTable(cfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		b.Fatal(err)
	}
	prog := New(cfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, 1)
	sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), 1)
	return prog, sim, ft
}

// transitHop locates an aggregation switch with a switch-facing ingress
// and egress port, the shape of every mid-path hop.
func transitHop(b *testing.B, ft *topology.FatTree) (sw topology.NodeID, in, out topology.PortID) {
	b.Helper()
	topo := ft.Topology
	for _, cand := range topo.Switches() {
		if topo.Node(cand).Layer != topology.LayerAggregation {
			continue
		}
		in, out = -1, -1
		for i, p := range topo.Node(cand).Ports {
			if !topo.IsSwitch(p.Peer) {
				continue
			}
			if topo.Node(p.Peer).Layer == topology.LayerEdge && in < 0 {
				in = topology.PortID(i)
			}
			if topo.Node(p.Peer).Layer == topology.LayerCore && out < 0 {
				out = topology.PortID(i)
			}
		}
		if in >= 0 && out >= 0 {
			return cand, in, out
		}
	}
	b.Fatal("no transit hop found")
	return 0, 0, 0
}

// BenchmarkPerHopFold measures the per-hop cost of a telemetry packet at a
// transit switch: the PathID hash fold, the codec's queue-depth
// accumulation, and the latency-threshold check.
func BenchmarkPerHopFold(b *testing.B) {
	prog, sim, ft := benchEnv(b)
	sw, in, out := transitHop(b, ft)
	srcEdge := ft.Topology.Switches()[0]
	pkt := &netsim.Packet{ID: 1, Flow: 7, Size: 700}
	meta := &PacketMeta{SourceSwitch: srcEdge}
	meta.INT = &INTHeader{SourceTS: 0, EpochID: 0}
	pkt.Meta = meta
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.OnForward(sim, sw, in, out, pkt, 5)
	}
}

// BenchmarkPromote measures the source-switch promotion machinery: the
// Ingress Table fold (epoch counter roll + count) and the codec's
// promotion decision, with the epoch advancing every op so each call takes
// the telemetry-packet branch.
func BenchmarkPromote(b *testing.B) {
	prog, _, ft := benchEnv(b)
	sink := ft.Topology.Switches()[1]
	flow := FlowID{Src: ft.Topology.Switches()[0], Sink: sink}
	it := NewIngressTable(len(ft.Topology.Nodes))
	cdc := prog.cdc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := uint32(i)
		mark, _ := it.Record(sink, e, 700, netsim.Time(i))
		if mark {
			cdc.Promote(flow, e)
		}
	}
}

// BenchmarkSinkRecord measures the sink-switch record fold: the Egress
// Table per-flow and per-path counter updates, the previous-epoch reads,
// and the Ring Table push.
func BenchmarkSinkRecord(b *testing.B) {
	_, _, ft := benchEnv(b)
	src := ft.Topology.Switches()[0]
	sink := ft.Topology.Switches()[1]
	flow := FlowID{Src: src, Sink: sink}
	et := NewEgressTable(len(ft.Topology.Nodes))
	rt := NewRingTable(512)
	path := pathid.ID(0x5a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := uint32(i >> 6)
		et.Record(src, path, e, 700)
		sc := et.FlowLastEpochCount(src, e)
		pc, pb := et.PathLastEpoch(src, path, e)
		rt.Push(RTRecord{
			Flow: flow, PathID: path, Epoch: e,
			SourceCount: sc, SinkCount: sc, PathCount: pc, PathBytes: pb,
		})
	}
}
