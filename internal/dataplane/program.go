package dataplane

import (
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// Config parameterizes the MARS switch program.
type Config struct {
	// Epoch is the telemetry sampling period set by the controller
	// (§4.2.1: "the epoch period can be set by the controller at runtime").
	Epoch netsim.Time
	// PathCfg is the PathID hash configuration shared with the control
	// plane.
	PathCfg pathid.Config
	// RingSize is the Ring Table capacity per sink switch.
	RingSize int
	// DefaultThreshold applies to flows without a pushed dynamic threshold
	// (the paper uses a deliberately high default, e.g. 10 s).
	DefaultThreshold netsim.Time
	// DropCountThreshold is the source-vs-sink count difference that
	// triggers a drop notification.
	DropCountThreshold uint32
	// NotifyWindow rate-limits notifications: at most one per switch per
	// window (§4.2.2).
	NotifyWindow netsim.Time
	// Codec selects the telemetry encoding; nil is the paper's fixed
	// 11-byte header (byte-identical to the historical pipeline).
	Codec Codec
}

// DefaultProgramConfig returns the configuration used across the
// evaluation: 100 ms epochs, 8-bit CRC16 PathIDs, 256-record rings.
func DefaultProgramConfig() Config {
	return Config{
		Epoch:              100 * netsim.Millisecond,
		PathCfg:            pathid.DefaultConfig(),
		RingSize:           512,
		DefaultThreshold:   10 * netsim.Second,
		DropCountThreshold: 3,
		NotifyWindow:       50 * netsim.Millisecond,
	}
}

// Stats aggregates the program's bandwidth-relevant counters for the
// Fig. 9 overhead study.
type Stats struct {
	// TelemetryLinkBytes counts extra header bytes crossing inter-switch
	// links (PathID field + INT headers), the "Telemetry" bandwidth bar.
	TelemetryLinkBytes int64
	// TelemetryPackets counts packets promoted to telemetry packets.
	TelemetryPackets int64
	// Notifications counts data-plane triggers sent (post rate limiting).
	Notifications int64
	// SuppressedNotifications counts triggers absorbed by the per-switch
	// window or the in-header flag.
	SuppressedNotifications int64
}

// switchState is the per-switch register memory.
type switchState struct {
	it *IngressTable
	et *EgressTable
	rt *RingTable
	// thresholds holds dynamic per-flow latency thresholds pushed by the
	// control plane.
	thresholds map[FlowID]netsim.Time
	// telemEpoch tracks the latest telemetry epoch seen per flow at the
	// sink, for epoch-gap drop detection. The stored value is epoch+1 so
	// that 0 means "never seen", folding the former seen-flag map into
	// one lookup on the per-telemetry-packet path.
	telemEpoch map[FlowID]int64
	// lastNotify enforces the notification window.
	lastNotify netsim.Time
	notified   bool
}

// Program is the MARS data plane attached to a simulator. One Program
// serves every switch of the topology (state is per switch inside).
type Program struct {
	netsim.NopHooks

	Cfg   Config
	Topo  *topology.Topology
	Paths *pathid.Table
	// Notify receives anomaly triggers; nil disables notification.
	Notifier Notifier
	// OnRecord observes every Ring Table record as the sink pushes it —
	// the streaming controller's ingest tap. The record is passed by value
	// (no escape from the zero-alloc forwarding path); nil disables the
	// tap. The callback runs inside the simulator event loop, so it must
	// not block and must touch only state owned by this program's shard.
	OnRecord func(sw topology.NodeID, rec RTRecord)
	Stats    Stats

	states []switchState
	// sinkOf caches each host's edge switch, indexed by node ID (-1 for
	// non-hosts).
	sinkOf []topology.NodeID
	// cdc is the resolved telemetry codec (Cfg.Codec or the builtin).
	cdc Codec
	// metaFree recycles PacketMeta values: a meta is acquired at the
	// source switch and released at the sink or on drop, so steady-state
	// forwarding allocates nothing. LIFO reuse in a single-threaded
	// simulator is deterministic.
	metaFree []*PacketMeta
}

func (p *Program) acquireMeta() *PacketMeta {
	if n := len(p.metaFree); n > 0 {
		m := p.metaFree[n-1]
		p.metaFree[n-1] = nil
		p.metaFree = p.metaFree[:n-1]
		return m
	}
	//mars:alloc TestProgramSteadyStateAllocs cold-start pool refill only; steady state hits the free list
	return &PacketMeta{}
}

func (p *Program) releaseMeta(m *PacketMeta) {
	*m = PacketMeta{}
	//mars:alloc TestProgramSteadyStateAllocs the free list keeps its capacity; steady state recycles without growing
	p.metaFree = append(p.metaFree, m)
}

// New creates the program. paths is the control-plane PathID table (the
// consensus hash chain + MAT entries).
func New(cfg Config, topo *topology.Topology, paths *pathid.Table, notifier Notifier) *Program {
	return NewResident(cfg, topo, paths, notifier, nil)
}

// NewResident creates a program whose register state (Ingress/Egress/Ring
// Tables, threshold maps) is allocated only for switches in the resident
// set; nil means every switch. The sharded engine attaches one resident
// program per shard — a switch's packets are always processed by its
// owning shard, so per-switch registers need exist only there, and total
// register memory stays flat as the shard count grows. Per-switch
// accessors are nil-safe for non-resident switches (SetThreshold and
// FlushSwitch no-op; ITFlows/ETEntries report zero).
func NewResident(cfg Config, topo *topology.Topology, paths *pathid.Table, notifier Notifier, resident []topology.NodeID) *Program {
	p := &Program{Cfg: cfg, Topo: topo, Paths: paths, Notifier: notifier}
	p.cdc = cfg.Codec
	if p.cdc == nil {
		p.cdc = builtin{}
	}
	p.states = make([]switchState, len(topo.Nodes))
	populate := func(i topology.NodeID) {
		if topo.Nodes[i].Kind != topology.KindSwitch {
			return
		}
		p.states[i] = switchState{
			it:         NewIngressTable(len(topo.Nodes)),
			et:         NewEgressTable(len(topo.Nodes)),
			rt:         NewRingTable(cfg.RingSize),
			thresholds: make(map[FlowID]netsim.Time),
			telemEpoch: make(map[FlowID]int64),
		}
	}
	if resident == nil {
		for i := range topo.Nodes {
			populate(topology.NodeID(i))
		}
	} else {
		for _, sw := range resident {
			populate(sw)
		}
	}
	p.sinkOf = make([]topology.NodeID, len(topo.Nodes))
	for i := range p.sinkOf {
		p.sinkOf[i] = -1
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			p.sinkOf[h] = sw
		}
	}
	return p
}

// Resident reports whether sw's registers live in this program instance.
func (p *Program) Resident(sw topology.NodeID) bool {
	return int(sw) < len(p.states) && p.states[sw].it != nil
}

// EpochOf converts a time to a telemetry epoch ID.
func (p *Program) EpochOf(t netsim.Time) uint32 {
	return uint32(t / p.Cfg.Epoch)
}

// FlushSwitch wipes sw's register state — Ingress Table, Egress Table,
// Ring Table, dynamic thresholds, and the per-flow telemetry epoch cache —
// as a switch reboot does to P4 register arrays. The controller is not
// informed: until its next threshold push the switch runs on defaults,
// which is exactly the mid-epoch blind spot the switch-reboot gray
// scenario exercises. No-op for hosts.
func (p *Program) FlushSwitch(sw topology.NodeID) {
	st := &p.states[sw]
	if st.it == nil {
		return
	}
	st.it = NewIngressTable(len(p.Topo.Nodes))
	st.et = NewEgressTable(len(p.Topo.Nodes))
	st.rt = NewRingTable(p.Cfg.RingSize)
	clear(st.thresholds)
	clear(st.telemEpoch)
	st.lastNotify = 0
	st.notified = false
}

// SetThreshold installs a dynamic latency threshold for flow at switch sw
// (the control plane pushes the same value to every switch on the flow's
// paths; pushing to all switches is equivalent and simpler).
func (p *Program) SetThreshold(sw topology.NodeID, flow FlowID, d netsim.Time) {
	if p.states[sw].thresholds == nil {
		return
	}
	p.states[sw].thresholds[flow] = d
}

// SetThresholdAll installs a flow threshold on every resident switch.
func (p *Program) SetThresholdAll(flow FlowID, d netsim.Time) {
	for _, sw := range p.Topo.Switches() {
		p.SetThreshold(sw, flow, d)
	}
}

// threshold returns the latency threshold in force for flow at sw.
func (p *Program) threshold(sw topology.NodeID, flow FlowID) netsim.Time {
	if d, ok := p.states[sw].thresholds[flow]; ok {
		return d
	}
	return p.Cfg.DefaultThreshold
}

// RTSnapshot returns the sink switch's Ring Table contents oldest-first.
// The control plane's collection cost is accounted by the caller.
func (p *Program) RTSnapshot(sw topology.NodeID) []RTRecord {
	if p.states[sw].rt == nil {
		return nil
	}
	return p.states[sw].rt.Snapshot()
}

// ITFlows / ETEntries expose table occupancy for the resource model.
// Non-resident switches report zero.
func (p *Program) ITFlows(sw topology.NodeID) int {
	if p.states[sw].it == nil {
		return 0
	}
	return p.states[sw].it.Flows()
}

// ETEntries returns the sink-side (flow, path) entry count at sw.
func (p *Program) ETEntries(sw topology.NodeID) int {
	if p.states[sw].et == nil {
		return 0
	}
	return p.states[sw].et.Entries()
}

// notify sends a notification unless suppressed by the per-switch window.
func (p *Program) notify(s *netsim.Simulator, sw topology.NodeID, n Notification) {
	st := &p.states[sw]
	if st.notified && s.Now()-st.lastNotify < p.Cfg.NotifyWindow {
		p.Stats.SuppressedNotifications++
		return
	}
	st.lastNotify = s.Now()
	st.notified = true
	p.Stats.Notifications++
	if p.Notifier != nil {
		p.Notifier.Notify(n)
	}
}

// OnForward implements the switch pipeline for one packet at one switch.
func (p *Program) OnForward(s *netsim.Simulator, sw topology.NodeID, inPort, outPort topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	now := s.Now()
	epoch := p.EpochOf(now)

	inPeer := p.Topo.Node(sw).Ports[inPort].Peer
	outPeer := p.Topo.Node(sw).Ports[outPort].Peer
	isSource := p.Topo.IsHost(inPeer)
	isSink := p.Topo.IsHost(outPeer)

	var meta *PacketMeta
	if isSource {
		// Source switch: attach the PathID field, count the flow, and
		// possibly promote this packet to the epoch's telemetry packet.
		meta = p.acquireMeta()
		meta.SourceSwitch = sw
		pkt.Meta = meta
		pkt.ExtraBytes += int32(p.Cfg.PathCfg.HeaderBytes())
		sink := p.sinkOf[pkt.Dst]
		st := &p.states[sw]
		mark, lastCount := st.it.Record(sink, epoch, pkt.Size, now)
		if mark && p.cdc.Promote(FlowID{Src: sw, Sink: sink}, epoch) {
			meta.hdr = INTHeader{
				SourceTS:       now,
				LastEpochCount: lastCount,
				EpochID:        epoch,
			}
			meta.INT = &meta.hdr
			pkt.ExtraBytes += int32(p.cdc.WireBytes())
			p.Stats.TelemetryPackets++
		}
	} else {
		var ok bool
		meta, ok = pkt.Meta.(*PacketMeta)
		if !ok || meta == nil {
			// Packet entered the network before the program attached (or a
			// foreign pipeline); treat as untracked.
			return netsim.ActionForward
		}
	}

	// PathID chaining with the consensus port conventions.
	in := uint16(inPort)
	if isSource {
		in = pathid.HostPort
	}
	out := uint16(outPort)
	if isSink {
		out = pathid.HostPort
	}
	ctrl := uint8(0)
	if p.Paths != nil {
		ctrl = p.Paths.ControlFor(sw, meta.PathID, in, out)
	}
	meta.PathID = pathid.Step(p.Cfg.PathCfg, meta.PathID, sw, in, out, ctrl)

	flow := FlowID{Src: meta.SourceSwitch, Sink: p.sinkOf[pkt.Dst]}

	// Telemetry packet processing at every hop: let the codec fold in this
	// hop's observation (the paper's encoding accumulates queue depth; the
	// perhop codec also grows the packet), then run the latency check
	// against the dynamic threshold.
	if meta.INT != nil {
		if grow := p.cdc.OnHop(meta.INT, pkt.ID, sw, qlen, now); grow != 0 {
			pkt.ExtraBytes += int32(grow)
		}
		latency := now - meta.INT.SourceTS
		if !meta.INT.Flagged && latency > p.threshold(sw, flow) {
			meta.INT.Flagged = true // suppress downstream re-detection
			p.notify(s, sw, Notification{
				Kind: NotifyHighLatency, Switch: sw, Flow: flow,
				Time: now, Latency: latency,
			})
		}
	}

	if isSink {
		st := &p.states[sw]
		st.et.Record(flow.Src, meta.PathID, epoch, pkt.Size)
		if meta.INT != nil {
			e := meta.INT.EpochID
			sinkCount := st.et.FlowLastEpochCount(flow.Src, e)
			pathCount, pathBytes := st.et.PathLastEpoch(flow.Src, meta.PathID, e)
			rec := RTRecord{
				Flow:            flow,
				PathID:          meta.PathID,
				Epoch:           e,
				Latency:         now - meta.INT.SourceTS,
				SourceCount:     meta.INT.LastEpochCount,
				SinkCount:       sinkCount,
				PathCount:       pathCount,
				PathBytes:       pathBytes,
				TotalQueueDepth: meta.INT.TotalQueueDepth,
				Arrival:         now,
			}
			p.cdc.SinkRecord(meta.INT, &rec)
			// Epoch-gap drop detection (§4.3.2): missing telemetry epochs
			// mean the sampled packets themselves were lost. The expected
			// spacing is the codec's promotion stride (1 for the paper's
			// every-epoch encoding), so only whole missing promotions count.
			v := st.telemEpoch[flow] // epoch+1; 0 = never seen
			had := v > 0
			if had {
				last := uint32(v - 1)
				if e > last {
					if missed := (e - last - 1) / p.cdc.EpochStride(); missed > 0 {
						rec.EpochGap = missed
						p.notify(s, sw, Notification{
							Kind: NotifyDrop, Switch: sw, Flow: flow,
							Time: now, EpochGap: rec.EpochGap,
						})
					}
				}
			}
			if !had || int64(e)+1 > v {
				st.telemEpoch[flow] = int64(e) + 1
			}
			// Count-mismatch drop detection: source saw more packets last
			// epoch than the sink received. The margin scales with volume:
			// under transient queueing the path latency can reach a third
			// of an epoch, displacing that share of packets across the
			// boundary without any loss.
			margin := p.Cfg.DropCountThreshold
			if rel := rec.SourceCount / 4; rel > margin {
				margin = rel
			}
			if rec.SourceCount > rec.SinkCount+margin {
				p.notify(s, sw, Notification{
					Kind: NotifyDrop, Switch: sw, Flow: flow,
					Time: now, Dropped: int64(rec.SourceCount - rec.SinkCount),
				})
			}
			st.rt.Push(rec)
			if p.OnRecord != nil {
				p.OnRecord(sw, rec)
			}
		}
		// Strip all MARS headers before the host link: monitoring is
		// transparent to end hosts.
		pkt.ExtraBytes = 0
		pkt.Meta = nil
		p.releaseMeta(meta)
		return netsim.ActionForward
	}

	// The extra header bytes will cross the link out of this switch.
	p.Stats.TelemetryLinkBytes += int64(pkt.ExtraBytes)
	return netsim.ActionForward
}

// OnDrop recycles the packet's PacketMeta: the simulator pools dropped
// packets, so their meta must be detached and returned with them.
func (p *Program) OnDrop(s *netsim.Simulator, sw topology.NodeID, port topology.PortID, pkt *netsim.Packet, reason netsim.DropReason) {
	if meta, ok := pkt.Meta.(*PacketMeta); ok && meta != nil {
		pkt.Meta = nil
		p.releaseMeta(meta)
	}
}

var _ netsim.Hooks = (*Program)(nil)
