package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
	"mars/internal/workload"
)

// testEnv wires a K=4 fat-tree with the MARS program attached.
type testEnv struct {
	ft    *topology.FatTree
	sim   *netsim.Simulator
	prog  *Program
	table *pathid.Table
	notes []Notification
}

type noteSink struct{ env *testEnv }

func (n *noteSink) Notify(note Notification) { n.env.notes = append(n.env.notes, note) }

func newEnv(t *testing.T, cfg Config, seed int64) *testEnv {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	table, err := pathid.BuildTable(cfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{ft: ft, table: table}
	prog := New(cfg, ft.Topology, table, &noteSink{env})
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), seed)
	env.sim = sim
	env.prog = prog
	return env
}

func TestTelemetryOnePerFlowPerEpoch(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 1)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	// 100 pps CBR for 1 s = 10 epochs of 100 ms.
	f := &workload.Flow{Src: src, Dst: dst, Key: 1, RatePPS: 100,
		Gaps: workload.GapConstant, Sizes: workload.FixedSize(500),
		Start: 0, Stop: netsim.Second}
	f.Install(env.sim)
	env.sim.Run(2 * netsim.Second)
	if env.prog.Stats.TelemetryPackets != 10 {
		t.Errorf("telemetry packets = %d, want 10", env.prog.Stats.TelemetryPackets)
	}
}

func TestRTRecordsPathDecodable(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 2)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[12]
	f := &workload.Flow{Src: src, Dst: dst, Key: 5, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: netsim.Second}
	f.Install(env.sim)
	env.sim.Run(2 * netsim.Second)

	sink, _ := env.ft.EdgeSwitchOf(dst)
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	recs := env.prog.RTSnapshot(sink)
	if len(recs) == 0 {
		t.Fatal("no RT records at sink")
	}
	for _, r := range recs {
		if r.Flow.Src != srcEdge || r.Flow.Sink != sink {
			t.Errorf("flow = %v, want <%d,%d>", r.Flow, srcEdge, sink)
		}
		path, ok := env.table.Lookup(sink, r.PathID)
		if !ok {
			t.Fatalf("PathID %#x not decodable at sink %d", r.PathID, sink)
		}
		if path[0] != srcEdge || path[len(path)-1] != sink {
			t.Errorf("decoded path %v has wrong endpoints", path)
		}
		if r.Latency <= 0 {
			t.Errorf("latency = %v", r.Latency)
		}
	}
}

func TestHeadersStrippedAtSink(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 3)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[4]
	var deliveredExtra int32 = -1
	check := &deliverCheck{extra: &deliveredExtra, inner: env.prog}
	// Re-create sim with wrapper hooks.
	router := netsim.NewECMPRouter(env.ft.Topology, 3)
	sim := netsim.New(env.ft.Topology, router, check, netsim.DefaultConfig(), 3)
	sim.Send(0, src, dst, 1, 400)
	sim.RunAll()
	if deliveredExtra != 0 {
		t.Errorf("delivered ExtraBytes = %d, want 0 (stripped)", deliveredExtra)
	}
}

type deliverCheck struct {
	netsim.NopHooks
	extra *int32
	inner *Program
}

func (d *deliverCheck) OnForward(s *netsim.Simulator, sw topology.NodeID, in, out topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	return d.inner.OnForward(s, sw, in, out, pkt, qlen)
}

func (d *deliverCheck) OnDeliver(s *netsim.Simulator, host topology.NodeID, pkt *netsim.Packet) {
	*d.extra = pkt.ExtraBytes
}

func TestHighLatencyNotification(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 4)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	flow := FlowID{Src: srcEdge, Sink: sink}
	// Push a tight threshold so normal latency trips it.
	env.prog.SetThresholdAll(flow, 1*netsim.Microsecond)
	f := &workload.Flow{Src: src, Dst: dst, Key: 9, RatePPS: 100,
		Gaps: workload.GapConstant, Start: 0, Stop: 500 * netsim.Millisecond}
	f.Install(env.sim)
	env.sim.Run(netsim.Second)
	found := false
	for _, n := range env.notes {
		if n.Kind == NotifyHighLatency && n.Flow == flow {
			found = true
			if n.Latency <= 1*netsim.Microsecond {
				t.Errorf("notification latency = %v", n.Latency)
			}
		}
	}
	if !found {
		t.Fatal("no high-latency notification")
	}
}

func TestNotificationRateLimited(t *testing.T) {
	cfg := DefaultProgramConfig()
	cfg.NotifyWindow = 10 * netsim.Second // one per switch for the whole run
	env := newEnv(t, cfg, 5)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	env.prog.SetThresholdAll(FlowID{srcEdge, sink}, 1)
	f := &workload.Flow{Src: src, Dst: dst, Key: 9, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: 2 * netsim.Second}
	f.Install(env.sim)
	env.sim.Run(3 * netsim.Second)
	// Only the source edge switch sees unflagged telemetry packets (it
	// flags them), so exactly one notification should escape its window.
	if len(env.notes) != 1 {
		t.Errorf("notifications = %d, want 1 (rate-limited)", len(env.notes))
	}
	if env.prog.Stats.SuppressedNotifications == 0 {
		t.Error("expected suppressed notifications")
	}
}

func TestSuppressionFlagStopsDownstreamDetection(t *testing.T) {
	// With per-switch windows disabled (tiny window), the in-header flag
	// should still ensure at most one notification per telemetry packet.
	cfg := DefaultProgramConfig()
	cfg.NotifyWindow = 0
	env := newEnv(t, cfg, 6)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	env.prog.SetThresholdAll(FlowID{srcEdge, sink}, 1)
	env.sim.Send(0, src, dst, 77, 500)
	env.sim.RunAll()
	latencyNotes := 0
	for _, n := range env.notes {
		if n.Kind == NotifyHighLatency {
			latencyNotes++
		}
	}
	if latencyNotes != 1 {
		t.Errorf("high-latency notifications for one packet = %d, want 1", latencyNotes)
	}
}

func TestDropDetectionCountMismatch(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 7)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[4] // cross-pod not needed
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	// Blackhole one uplink of the source edge after some traffic: drop a
	// fraction of packets so source/sink counts diverge.
	f := &workload.Flow{Src: src, Dst: dst, Key: 3, RatePPS: 400,
		Gaps: workload.GapConstant, Start: 0, Stop: 3 * netsim.Second}
	f.Install(env.sim)
	env.sim.At(500*netsim.Millisecond, func() {
		// Drop 50% on the uplink actually used: set on both uplinks.
		for _, agg := range env.ft.AggIDs[:2] {
			if p, ok := env.ft.PortTo(srcEdge, agg); ok {
				env.sim.SetPortDropProb(srcEdge, p, 0.5)
			}
		}
	})
	env.sim.Run(4 * netsim.Second)
	var drops int
	for _, n := range env.notes {
		if n.Kind == NotifyDrop && n.Flow == (FlowID{srcEdge, sink}) && n.Dropped > 0 {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no count-mismatch drop notification")
	}
}

func TestDropDetectionEpochGap(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 8)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[4]
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	f := &workload.Flow{Src: src, Dst: dst, Key: 3, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: 4 * netsim.Second}
	f.Install(env.sim)
	// Total blackhole for 1 s (10 epochs) on both uplinks.
	env.sim.At(1*netsim.Second, func() {
		for _, agg := range env.ft.AggIDs[:2] {
			if p, ok := env.ft.PortTo(srcEdge, agg); ok {
				env.sim.SetPortBlackhole(srcEdge, p, true)
			}
		}
	})
	env.sim.At(2*netsim.Second, func() {
		for _, agg := range env.ft.AggIDs[:2] {
			if p, ok := env.ft.PortTo(srcEdge, agg); ok {
				env.sim.SetPortBlackhole(srcEdge, p, false)
			}
		}
	})
	env.sim.Run(5 * netsim.Second)
	var gapNote *Notification
	for i, n := range env.notes {
		if n.Kind == NotifyDrop && n.EpochGap > 0 {
			gapNote = &env.notes[i]
			break
		}
	}
	if gapNote == nil {
		t.Fatal("no epoch-gap drop notification")
	}
	if gapNote.EpochGap < 5 || gapNote.EpochGap > 12 {
		t.Errorf("epoch gap = %d, want ~10", gapNote.EpochGap)
	}
	_ = sink
}

func TestTelemetryBandwidthAccounting(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 9)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8] // 5-switch path
	env.sim.Send(0, src, dst, 1, 500)
	env.sim.RunAll()
	// One telemetry packet crossing 4 inter-switch links with 1 B PathID +
	// 11 B INT = 48 bytes.
	want := int64(4 * (1 + TelemetryHeaderBytes))
	if got := env.prog.Stats.TelemetryLinkBytes; got != want {
		t.Errorf("telemetry link bytes = %d, want %d", got, want)
	}
}

func TestQueueDepthAccumulates(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 10)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[1] // same edge switch
	// Burst enough packets to build a queue, then check the telemetry
	// records carry nonzero total queue depth.
	for i := 0; i < 60; i++ {
		env.sim.Send(0, src, dst, netsim.FlowKey(i), 1400)
	}
	env.sim.RunAll()
	sink, _ := env.ft.EdgeSwitchOf(dst)
	recs := env.prog.RTSnapshot(sink)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	var maxDepth uint32
	for _, r := range recs {
		if r.TotalQueueDepth > maxDepth {
			maxDepth = r.TotalQueueDepth
		}
	}
	_ = maxDepth // depth can be zero for the single telemetry packet; at
	// least ensure the field was populated without panic.
}

func TestDefaultThresholdApplies(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 11)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	// No thresholds pushed: default 10 s means no notifications for
	// ordinary latency.
	f := &workload.Flow{Src: src, Dst: dst, Key: 2, RatePPS: 200,
		Gaps: workload.GapConstant, Start: 0, Stop: netsim.Second}
	f.Install(env.sim)
	env.sim.Run(2 * netsim.Second)
	for _, n := range env.notes {
		if n.Kind == NotifyHighLatency {
			t.Fatalf("unexpected notification %+v under default threshold", n)
		}
	}
}

func TestEpochOf(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 12)
	if env.prog.EpochOf(0) != 0 {
		t.Error("epoch of 0")
	}
	if env.prog.EpochOf(250*netsim.Millisecond) != 2 {
		t.Errorf("epoch of 250ms = %d", env.prog.EpochOf(250*netsim.Millisecond))
	}
}

func TestITETAccounting(t *testing.T) {
	cfg := DefaultProgramConfig()
	env := newEnv(t, cfg, 13)
	src, dst := env.ft.HostIDs[0], env.ft.HostIDs[8]
	env.sim.Send(0, src, dst, 1, 500)
	env.sim.RunAll()
	srcEdge, _ := env.ft.EdgeSwitchOf(src)
	sink, _ := env.ft.EdgeSwitchOf(dst)
	if env.prog.ITFlows(srcEdge) != 1 {
		t.Errorf("IT flows = %d", env.prog.ITFlows(srcEdge))
	}
	if env.prog.ETEntries(sink) != 1 {
		t.Errorf("ET entries = %d", env.prog.ETEntries(sink))
	}
}
