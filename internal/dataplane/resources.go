package dataplane

// Switch resource model for the Fig. 10 study: how MARS's pipeline
// consumes a Tofino-class switch's resources as the Ring Table grows.
// The paper reports MARS "fits in the Tofino pipeline comfortably" with
// usage percentages per resource class; this model reproduces the shape
// (SRAM grows linearly with the ring, the other classes are flat) using
// public Tofino capacity figures.

// ResourceUsage is the share of each resource class consumed, in percent.
type ResourceUsage struct {
	RingSize int
	// SRAMPct: register memory for IT/ET/RT state.
	SRAMPct float64
	// PHVPct: packet header vector bits for the INT fields.
	PHVPct float64
	// HashBitsPct: hash generator bits (PathID CRC + ECMP).
	HashBitsPct float64
	// TCAMPct: match memory (forwarding + PathID conflict MATs).
	TCAMPct float64
	// ActionDataPct: stage action data for the telemetry ALU ops.
	ActionDataPct float64
}

// Public Tofino-generation capacity figures used for normalization.
const (
	tofinoSRAMBytes  = 12 * 1 << 20 // ~12 MiB register SRAM per pipe
	tofinoPHVBits    = 4096         // PHV bits available per packet
	tofinoHashBits   = 5000         // aggregate hash-distribution bits
	tofinoTCAMBytes  = 3 << 19      // 1.5 MiB
	tofinoActionData = 1 << 20
)

// ModelResources estimates MARS's switch resource usage for a given Ring
// Table size (records per switch) and a PathID MAT entry count.
func ModelResources(ringSize, matEntries, itFlows, etEntries int) ResourceUsage {
	// SRAM: RT records dominate; IT/ET registers add a small fixed cost.
	sram := float64(ringSize*RTRecordBytes + itFlows*8 + etEntries*12)
	// PHV: PathID (1 B) + telemetry header (11 B) + scratch ≈ 128 bits.
	phv := 128.0
	// Hash bits: one CRC16 over a 13-byte input (104 bits) + ECMP hash.
	hash := 104.0 + 64.0
	// TCAM: PathID conflict entries at 10 B each.
	tcam := float64(matEntries * pathIDMATBytes)
	// Action data: constants for telemetry arithmetic, flat.
	action := 2048.0

	return ResourceUsage{
		RingSize:      ringSize,
		SRAMPct:       100 * sram / float64(tofinoSRAMBytes),
		PHVPct:        100 * phv / float64(tofinoPHVBits),
		HashBitsPct:   100 * hash / float64(tofinoHashBits),
		TCAMPct:       100 * tcam / float64(tofinoTCAMBytes),
		ActionDataPct: 100 * action / float64(tofinoActionData),
	}
}

// pathIDMATBytes mirrors pathid.MATEntryBytes without the import cycle.
const pathIDMATBytes = 10
