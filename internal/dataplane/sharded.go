package dataplane

import "mars/internal/topology"

// ShardedRegisters routes register flushes across a fleet of per-shard
// resident Programs (see NewResident). It implements
// faults.RegisterFlusher: a switch-reboot fault injected during a sharded
// trial must wipe the registers where they actually live — on the shard
// that owns the switch — not on every replica of the program.
//
// ShardFor maps a switch to the index of the owning program in Progs.
// Because FlushSwitch is a no-op on non-resident switches, a wrong route
// would silently miss the flush; the routing therefore mirrors the
// sharded engine's ownership map exactly.
type ShardedRegisters struct {
	Progs    []*Program
	ShardFor func(sw topology.NodeID) int
}

// FlushSwitch wipes sw's registers on the owning shard's program.
func (sr *ShardedRegisters) FlushSwitch(sw topology.NodeID) {
	sr.Progs[sr.ShardFor(sw)].FlushSwitch(sw)
}
