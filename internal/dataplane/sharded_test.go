package dataplane

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// shardFixture builds a k=4 fat-tree with its switches split across two
// resident programs by pod-partition unit parity, mirroring how the
// sharded engine assigns per-shard register residency.
func shardFixture(t *testing.T) (*topology.FatTree, *topology.Partition, [2]*Program, func(topology.NodeID) int) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	part := ft.PodPartition()
	shardFor := func(sw topology.NodeID) int { return int(part.UnitOf[sw]) % 2 }
	var owned [2][]topology.NodeID
	for _, sw := range ft.Switches() {
		s := shardFor(sw)
		owned[s] = append(owned[s], sw)
	}
	cfg := DefaultProgramConfig()
	var progs [2]*Program
	for s := range progs {
		progs[s] = NewResident(cfg, ft.Topology, nil, nil, owned[s])
	}
	return ft, part, progs, shardFor
}

// Register state exists only on the owning shard's program, and every
// per-switch accessor is safe to call on a non-resident switch.
func TestResidentProgramPartitionsRegisters(t *testing.T) {
	ft, _, progs, shardFor := shardFixture(t)
	flow := FlowID{Src: ft.HostIDs[0], Sink: ft.HostIDs[8]}
	for _, sw := range ft.Switches() {
		home, away := progs[shardFor(sw)], progs[1-shardFor(sw)]
		if !home.Resident(sw) {
			t.Fatalf("switch %d not resident on its owning shard", sw)
		}
		if away.Resident(sw) {
			t.Fatalf("switch %d resident on a foreign shard", sw)
		}
		// Non-resident accessors: no-ops and zero values, never a panic.
		away.SetThreshold(sw, flow, netsim.Millisecond)
		away.FlushSwitch(sw)
		if away.ITFlows(sw) != 0 || away.ETEntries(sw) != 0 || away.RTSnapshot(sw) != nil {
			t.Fatalf("switch %d reports register state on a foreign shard", sw)
		}
		if d := away.threshold(sw, flow); d != away.Cfg.DefaultThreshold {
			t.Fatalf("non-resident threshold = %v, want default", d)
		}
	}
	// Resident programs cover the fabric exactly once.
	total := 0
	for _, p := range progs {
		for _, sw := range ft.Switches() {
			if p.Resident(sw) {
				total++
			}
		}
	}
	if total != ft.NumSwitches() {
		t.Fatalf("resident switches = %d, want %d", total, ft.NumSwitches())
	}
}

// SetThresholdAll touches only resident switches, and ShardedRegisters
// routes a reboot flush to the program that actually holds the registers.
func TestShardedRegistersRouteFlush(t *testing.T) {
	ft, _, progs, shardFor := shardFixture(t)
	flow := FlowID{Src: ft.HostIDs[0], Sink: ft.HostIDs[8]}
	for _, p := range progs {
		p.SetThresholdAll(flow, netsim.Millisecond)
	}
	sr := &ShardedRegisters{Progs: progs[:], ShardFor: shardFor}
	victim := ft.EdgeIDs[0]
	home := progs[shardFor(victim)]
	if home.threshold(victim, flow) != netsim.Millisecond {
		t.Fatal("threshold not installed on owning shard")
	}
	sr.FlushSwitch(victim)
	if d := home.threshold(victim, flow); d != home.Cfg.DefaultThreshold {
		t.Fatalf("threshold after routed flush = %v, want default", d)
	}
	// Other resident switches keep their thresholds.
	witness := ft.EdgeIDs[1]
	if progs[shardFor(witness)].threshold(witness, flow) != netsim.Millisecond {
		t.Fatal("routed flush touched a non-victim switch")
	}
}
