package dataplane

import (
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// epochCounter tracks per-key packet/byte counts for the current and
// previous epoch, the register pattern a P4 pipeline would use.
type epochCounter struct {
	epoch      uint32
	count      uint32
	bytes      uint64
	prevCount  uint32
	prevBytes  uint64
	prevEpoch  uint32
	everEpochs uint32 // number of distinct epochs seen (diagnostics)
}

// roll advances the counter to epoch e, shifting current into previous.
// Skipped epochs zero the previous window.
func (c *epochCounter) roll(e uint32) {
	if e == c.epoch {
		return
	}
	if e == c.epoch+1 {
		c.prevCount, c.prevBytes, c.prevEpoch = c.count, c.bytes, c.epoch
	} else {
		c.prevCount, c.prevBytes, c.prevEpoch = 0, 0, e-1
	}
	c.epoch = e
	c.count, c.bytes = 0, 0
}

// add records one packet of size b in epoch e.
func (c *epochCounter) add(e uint32, b int32) {
	if c.everEpochs == 0 || e != c.epoch {
		c.everEpochs++
	}
	c.roll(e)
	c.count++
	c.bytes += uint64(b)
}

// lastEpochCount returns the completed count for epoch e-1 as visible at
// epoch e.
func (c *epochCounter) lastEpochCount(e uint32) uint32 {
	if c.epoch == e && c.prevEpoch == e-1 {
		return c.prevCount
	}
	if c.epoch == e-1 {
		// Epoch e has produced no packets for this key yet; the "previous"
		// window is still the live one.
		return c.count
	}
	return 0
}

// IngressTable (IT) is the source-switch state: per-FlowID epoch counters
// and the bookkeeping that marks exactly one telemetry packet per flow per
// epoch (§4.2.2). FlowID is simplified to the sink switch because the
// source switch's own ID covers the other half. Entries are preallocated
// register slots indexed by sink switch ID, matching the fixed-size
// register arrays a P4 pipeline would use; Record is allocation-free.
type IngressTable struct {
	entries []itEntry
	flows   int
}

type itEntry struct {
	counter        epochCounter
	lastTelemEpoch uint32
	haveTelem      bool
	present        bool
	lastTelemTS    netsim.Time
}

// NewIngressTable returns an IT with one preallocated slot per possible
// sink (numNodes is the topology's node count).
func NewIngressTable(numNodes int) *IngressTable {
	return &IngressTable{entries: make([]itEntry, numNodes)}
}

// Record counts a packet toward (sink, epoch) and reports whether this
// packet should become the epoch's telemetry packet, together with the
// previous epoch's packet count to embed.
func (it *IngressTable) Record(sink topology.NodeID, epoch uint32, size int32, now netsim.Time) (mark bool, lastEpochCount uint32) {
	e := &it.entries[sink]
	if !e.present {
		e.present = true
		it.flows++
	}
	e.counter.add(epoch, size)
	lastEpochCount = e.counter.lastEpochCount(epoch)
	if !e.haveTelem || e.lastTelemEpoch != epoch {
		e.haveTelem = true
		e.lastTelemEpoch = epoch
		e.lastTelemTS = now
		return true, lastEpochCount
	}
	return false, lastEpochCount
}

// Flows returns the number of tracked flows (state accounting).
func (it *IngressTable) Flows() int { return it.flows }

// EgressTable (ET) is the sink-switch state: per-(FlowID, PathID) and
// per-FlowID epoch counters (§4.2.2). FlowID is simplified to the source
// switch at the sink. The per-flow counters are preallocated slots indexed
// by source switch ID; the per-(flow, path) counters stay keyed by the
// sparse 16-bit PathID space but store counter values in-map to avoid a
// pointer allocation per path.
type EgressTable struct {
	perPath map[etKey]*epochCounter
	perFlow []epochCounter
}

type etKey struct {
	src  topology.NodeID
	path pathid.ID
}

// NewEgressTable returns an ET with one preallocated per-flow slot per
// possible source (numNodes is the topology's node count).
func NewEgressTable(numNodes int) *EgressTable {
	return &EgressTable{
		perPath: make(map[etKey]*epochCounter),
		perFlow: make([]epochCounter, numNodes),
	}
}

// Record counts an arriving packet.
func (et *EgressTable) Record(src topology.NodeID, path pathid.ID, epoch uint32, size int32) {
	k := etKey{src, path}
	c := et.perPath[k]
	if c == nil {
		//mars:alloc TestSinkRecordAllocs one counter per (src,path) on first touch only; steady state is a map hit
		c = &epochCounter{}
		et.perPath[k] = c
	}
	c.add(epoch, size)
	et.perFlow[src].add(epoch, size)
}

// FlowLastEpochCount returns the sink-side count of the flow in epoch-1.
func (et *EgressTable) FlowLastEpochCount(src topology.NodeID, epoch uint32) uint32 {
	return et.perFlow[src].lastEpochCount(epoch)
}

// PathLastEpoch returns the per-path count and bytes for epoch-1.
func (et *EgressTable) PathLastEpoch(src topology.NodeID, path pathid.ID, epoch uint32) (uint32, uint64) {
	c := et.perPath[etKey{src, path}]
	if c == nil {
		return 0, 0
	}
	n := c.lastEpochCount(epoch)
	var b uint64
	if c.epoch == epoch && c.prevEpoch == epoch-1 {
		b = c.prevBytes
	} else if c.epoch == epoch-1 {
		b = c.bytes
	}
	return n, b
}

// Entries returns the number of (flow, path) keys (state accounting).
func (et *EgressTable) Entries() int { return len(et.perPath) }

// RTRecord is one Ring Table entry: the self-contained telemetry sample
// the control plane collects on demand for diagnosis (§4.2.2, §4.4).
type RTRecord struct {
	Flow   FlowID
	PathID pathid.ID
	Epoch  uint32
	// Latency is sink arrival time minus source timestamp.
	Latency netsim.Time
	// SourceCount is the source switch's packet count for the flow in the
	// previous epoch (from the INT header).
	SourceCount uint32
	// SinkCount is this sink's count for the flow in the previous epoch.
	SinkCount uint32
	// PathCount / PathBytes are the per-(flow,path) counts for the
	// previous epoch, used by traffic estimation and throughput signatures.
	PathCount uint32
	PathBytes uint64
	// TotalQueueDepth is the in-network accumulated queue occupancy.
	TotalQueueDepth uint32
	// EpochGap is the number of missing telemetry epochs before this one
	// (> 0 reveals sustained drop events, §4.3.2).
	EpochGap uint32
	// Arrival is the sink arrival time.
	Arrival netsim.Time
	// Ext is codec-private record state copied from the INT header at the
	// sink (nil for the paper's fixed encoding); the controller-side
	// decoder of the same codec consumes it during reconstruction.
	Ext any
}

// RingTable keeps the most recent Size telemetry records, overwriting the
// oldest ("that is why the table is called as ring").
type RingTable struct {
	buf  []RTRecord
	next int
	full bool
}

// NewRingTable creates a ring with the given capacity.
func NewRingTable(size int) *RingTable {
	if size <= 0 {
		panic("dataplane: ring table size must be positive")
	}
	return &RingTable{buf: make([]RTRecord, size)}
}

// Push appends a record, overwriting the oldest when full.
func (rt *RingTable) Push(r RTRecord) {
	rt.buf[rt.next] = r
	rt.next++
	if rt.next == len(rt.buf) {
		rt.next = 0
		rt.full = true
	}
}

// Len returns the number of valid records.
func (rt *RingTable) Len() int {
	if rt.full {
		return len(rt.buf)
	}
	return rt.next
}

// Cap returns the ring capacity.
func (rt *RingTable) Cap() int { return len(rt.buf) }

// Snapshot returns the valid records oldest-first.
func (rt *RingTable) Snapshot() []RTRecord {
	if !rt.full {
		out := make([]RTRecord, rt.next)
		copy(out, rt.buf[:rt.next])
		return out
	}
	out := make([]RTRecord, 0, len(rt.buf))
	out = append(out, rt.buf[rt.next:]...)
	out = append(out, rt.buf[:rt.next]...)
	return out
}
