package dataplane

import (
	"testing"
	"testing/quick"

	"mars/internal/pathid"
)

func TestEpochCounterRoll(t *testing.T) {
	var c epochCounter
	c.add(5, 100)
	c.add(5, 100)
	if c.count != 2 || c.bytes != 200 {
		t.Fatalf("count=%d bytes=%d", c.count, c.bytes)
	}
	c.add(6, 100)
	if c.lastEpochCount(6) != 2 {
		t.Errorf("lastEpochCount(6) = %d, want 2", c.lastEpochCount(6))
	}
	// Skipped epochs zero the previous window.
	c.add(9, 100)
	if c.lastEpochCount(9) != 0 {
		t.Errorf("lastEpochCount(9) = %d, want 0 after gap", c.lastEpochCount(9))
	}
}

func TestEpochCounterLastEpochBeforeRoll(t *testing.T) {
	// If epoch e has no packets yet for the key, the live window of e-1 is
	// the answer.
	var c epochCounter
	c.add(3, 50)
	c.add(3, 50)
	if got := c.lastEpochCount(4); got != 2 {
		t.Errorf("lastEpochCount(4) = %d, want 2", got)
	}
	if got := c.lastEpochCount(9); got != 0 {
		t.Errorf("lastEpochCount(9) = %d, want 0", got)
	}
}

func TestIngressTableOneTelemetryPerEpoch(t *testing.T) {
	it := NewIngressTable(16)
	marks := 0
	for i := 0; i < 10; i++ {
		mark, _ := it.Record(7, 1, 100, 0)
		if mark {
			marks++
		}
	}
	if marks != 1 {
		t.Errorf("marks in one epoch = %d, want 1", marks)
	}
	mark, last := it.Record(7, 2, 100, 0)
	if !mark {
		t.Error("new epoch should mark a telemetry packet")
	}
	if last != 10 {
		t.Errorf("lastEpochCount = %d, want 10", last)
	}
	if it.Flows() != 1 {
		t.Errorf("flows = %d", it.Flows())
	}
}

func TestIngressTablePerSinkIsolation(t *testing.T) {
	it := NewIngressTable(16)
	it.Record(1, 1, 100, 0)
	mark, _ := it.Record(2, 1, 100, 0)
	if !mark {
		t.Error("different sink should get its own telemetry packet")
	}
	if it.Flows() != 2 {
		t.Errorf("flows = %d", it.Flows())
	}
}

func TestEgressTableCounts(t *testing.T) {
	et := NewEgressTable(16)
	for i := 0; i < 5; i++ {
		et.Record(3, pathid.ID(0xAB), 1, 500)
	}
	et.Record(3, pathid.ID(0xCD), 1, 500)
	// Move to epoch 2.
	et.Record(3, pathid.ID(0xAB), 2, 500)
	if got := et.FlowLastEpochCount(3, 2); got != 6 {
		t.Errorf("flow last epoch = %d, want 6", got)
	}
	n, b := et.PathLastEpoch(3, pathid.ID(0xAB), 2)
	if n != 5 || b != 2500 {
		t.Errorf("path last epoch = %d,%d want 5,2500", n, b)
	}
	n, _ = et.PathLastEpoch(3, pathid.ID(0xCD), 2)
	if n != 1 {
		t.Errorf("other path = %d, want 1", n)
	}
	if n, _ := et.PathLastEpoch(9, pathid.ID(1), 2); n != 0 {
		t.Errorf("unknown key = %d", n)
	}
	if et.Entries() != 2 {
		t.Errorf("entries = %d", et.Entries())
	}
}

func TestRingTableWraps(t *testing.T) {
	rt := NewRingTable(3)
	if rt.Len() != 0 || rt.Cap() != 3 {
		t.Fatalf("empty ring len=%d cap=%d", rt.Len(), rt.Cap())
	}
	for i := uint32(1); i <= 5; i++ {
		rt.Push(RTRecord{Epoch: i})
	}
	if rt.Len() != 3 {
		t.Fatalf("len = %d", rt.Len())
	}
	snap := rt.Snapshot()
	if snap[0].Epoch != 3 || snap[1].Epoch != 4 || snap[2].Epoch != 5 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRingTablePartial(t *testing.T) {
	rt := NewRingTable(4)
	rt.Push(RTRecord{Epoch: 1})
	rt.Push(RTRecord{Epoch: 2})
	snap := rt.Snapshot()
	if len(snap) != 2 || snap[0].Epoch != 1 || snap[1].Epoch != 2 {
		t.Errorf("partial snapshot = %v", snap)
	}
}

func TestRingTablePanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRingTable(0)
}

// Property: ring keeps exactly the last min(n, cap) pushes, oldest first.
func TestPropertyRingKeepsNewest(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		c := int(capRaw)%16 + 1
		n := int(nRaw) % 64
		rt := NewRingTable(c)
		for i := 0; i < n; i++ {
			rt.Push(RTRecord{Epoch: uint32(i)})
		}
		snap := rt.Snapshot()
		want := n
		if want > c {
			want = c
		}
		if len(snap) != want {
			return false
		}
		for j, r := range snap {
			if r.Epoch != uint32(n-want+j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
