package dataplane

import (
	"encoding/binary"
	"fmt"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// Wire formats for MARS's telemetry structures. The paper fixes the
// telemetry header at 11 bytes by compressing the source timestamp the way
// SpiderMon does [47]: the receiver only ever compares against timestamps
// from the recent past, so carrying the low bits of the nanosecond clock
// suffices and the full value is recovered relative to the receiver's own
// clock. These codecs are exercised by the switch pipeline tests and keep
// the overhead accounting honest — the constants in header.go are the
// lengths of these encodings.

// tsWindowBits is the width of the compressed timestamp: 32 bits of
// microseconds ≈ a 71-minute window, far beyond any packet lifetime.
const tsWindowBits = 32

// CompressTimestamp reduces a simulation timestamp to the 32-bit
// microsecond window carried on the wire.
func CompressTimestamp(t netsim.Time) uint32 {
	return uint32(uint64(t/netsim.Microsecond) & (1<<tsWindowBits - 1))
}

// DecompressTimestamp recovers the full timestamp of a compressed value,
// given any reference time ("now") within 2^31 µs after the original.
func DecompressTimestamp(c uint32, now netsim.Time) netsim.Time {
	nowUS := uint64(now / netsim.Microsecond)
	base := nowUS &^ (1<<tsWindowBits - 1)
	cand := base | uint64(c)
	// The carried window may have wrapped relative to now.
	if cand > nowUS {
		if cand < 1<<tsWindowBits {
			// No earlier window exists; clamp to the value itself.
			return netsim.Time(cand) * netsim.Microsecond
		}
		cand -= 1 << tsWindowBits
	}
	return netsim.Time(cand) * netsim.Microsecond
}

// MarshalINT encodes the telemetry header into its 11-byte wire form:
//
//	0:4  compressed source timestamp (µs, low 32 bits)
//	4:6  last-epoch packet count (saturating uint16)
//	6:8  total queue depth (saturating uint16)
//	8:10 epoch ID (low 16 bits)
//	10   flags (bit 0: anomaly-flagged)
func MarshalINT(h *INTHeader) [TelemetryHeaderBytes]byte {
	var b [TelemetryHeaderBytes]byte
	binary.BigEndian.PutUint32(b[0:4], CompressTimestamp(h.SourceTS))
	binary.BigEndian.PutUint16(b[4:6], sat16(h.LastEpochCount))
	binary.BigEndian.PutUint16(b[6:8], sat16(h.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[8:10], uint16(h.EpochID))
	if h.Flagged {
		b[10] = 1
	}
	return b
}

// UnmarshalINT decodes an 11-byte header. now anchors timestamp recovery;
// epochHint anchors the 16-bit epoch field (pass the receiver's current
// epoch).
func UnmarshalINT(b [TelemetryHeaderBytes]byte, now netsim.Time, epochHint uint32) *INTHeader {
	h := &INTHeader{
		SourceTS:        DecompressTimestamp(binary.BigEndian.Uint32(b[0:4]), now),
		LastEpochCount:  uint32(binary.BigEndian.Uint16(b[4:6])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[6:8])),
		EpochID:         expandEpoch(binary.BigEndian.Uint16(b[8:10]), epochHint),
		Flagged:         b[10]&1 != 0,
	}
	return h
}

// expandEpoch recovers a full 32-bit epoch from its low 16 bits relative
// to the receiver's current epoch (telemetry is always from the recent
// past).
func expandEpoch(low uint16, hint uint32) uint32 {
	base := hint &^ 0xFFFF
	cand := base | uint32(low)
	if cand > hint {
		if base == 0 {
			return cand
		}
		cand -= 1 << 16
	}
	return cand
}

func sat16(v uint32) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

// MarshalNotification encodes a notification into its 24-byte wire form:
//
//	0    kind
//	1:5  switch ID
//	5:9  flow source switch
//	9:13 flow sink switch
//	13:17 compressed timestamp
//	17:21 latency µs or dropped count (by kind)
//	21:23 epoch gap
//	23   reserved
func MarshalNotification(n *Notification) [NotificationBytes]byte {
	var b [NotificationBytes]byte
	b[0] = byte(n.Kind)
	binary.BigEndian.PutUint32(b[1:5], uint32(n.Switch))
	binary.BigEndian.PutUint32(b[5:9], uint32(n.Flow.Src))
	binary.BigEndian.PutUint32(b[9:13], uint32(n.Flow.Sink))
	binary.BigEndian.PutUint32(b[13:17], CompressTimestamp(n.Time))
	if n.Kind == NotifyHighLatency {
		binary.BigEndian.PutUint32(b[17:21], uint32(n.Latency/netsim.Microsecond))
	} else {
		binary.BigEndian.PutUint32(b[17:21], uint32(min64w(n.Dropped, 0xFFFFFFFF)))
	}
	binary.BigEndian.PutUint16(b[21:23], uint16(n.EpochGap))
	return b
}

// UnmarshalNotification decodes the 24-byte wire form; now anchors the
// timestamp recovery.
func UnmarshalNotification(b [NotificationBytes]byte, now netsim.Time) (*Notification, error) {
	k := NotificationKind(b[0])
	if k != NotifyHighLatency && k != NotifyDrop {
		return nil, fmt.Errorf("dataplane: unknown notification kind %d", b[0])
	}
	n := &Notification{
		Kind:   k,
		Switch: topology.NodeID(binary.BigEndian.Uint32(b[1:5])),
		Flow: FlowID{
			Src:  topology.NodeID(binary.BigEndian.Uint32(b[5:9])),
			Sink: topology.NodeID(binary.BigEndian.Uint32(b[9:13])),
		},
		Time:     DecompressTimestamp(binary.BigEndian.Uint32(b[13:17]), now),
		EpochGap: uint32(binary.BigEndian.Uint16(b[21:23])),
	}
	v := binary.BigEndian.Uint32(b[17:21])
	if k == NotifyHighLatency {
		n.Latency = netsim.Time(v) * netsim.Microsecond
	} else {
		n.Dropped = int64(v)
	}
	return n, nil
}

func min64w(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MarshalRTRecord encodes a Ring Table record into its 28-byte collection
// form:
//
//	0:4   flow source switch
//	4:6   PathID (16 bits carried; the 8-bit default fits)
//	6:8   epoch (low 16 bits)
//	8:12  latency µs
//	12:14 source count (sat)
//	14:16 sink count (sat)
//	16:18 path count (sat)
//	18:22 path bytes (sat uint32)
//	22:24 total queue depth (sat)
//	24:26 epoch gap (sat)
//	26:28 reserved / alignment
//
// The sink switch is implicit (the controller knows which switch it is
// pulling from), matching the paper's FlowID simplification.
func MarshalRTRecord(r *RTRecord) [RTRecordBytes]byte {
	var b [RTRecordBytes]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.Flow.Src))
	binary.BigEndian.PutUint16(b[4:6], uint16(r.PathID))
	binary.BigEndian.PutUint16(b[6:8], uint16(r.Epoch))
	binary.BigEndian.PutUint32(b[8:12], uint32(r.Latency/netsim.Microsecond))
	binary.BigEndian.PutUint16(b[12:14], sat16(r.SourceCount))
	binary.BigEndian.PutUint16(b[14:16], sat16(r.SinkCount))
	binary.BigEndian.PutUint16(b[16:18], sat16(r.PathCount))
	binary.BigEndian.PutUint32(b[18:22], sat32(r.PathBytes))
	binary.BigEndian.PutUint16(b[22:24], sat16(r.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[24:26], sat16(r.EpochGap))
	return b
}

// UnmarshalRTRecord decodes the 28-byte collection form. sink restores the
// implicit sink switch; epochHint anchors epoch expansion; arrival is not
// carried on the wire (the controller stamps collection time).
func UnmarshalRTRecord(b [RTRecordBytes]byte, sink topology.NodeID, epochHint uint32, arrival netsim.Time) *RTRecord {
	return &RTRecord{
		Flow: FlowID{
			Src:  topology.NodeID(binary.BigEndian.Uint32(b[0:4])),
			Sink: sink,
		},
		PathID:          pathid.ID(binary.BigEndian.Uint16(b[4:6])),
		Epoch:           expandEpoch(binary.BigEndian.Uint16(b[6:8]), epochHint),
		Latency:         netsim.Time(binary.BigEndian.Uint32(b[8:12])) * netsim.Microsecond,
		SourceCount:     uint32(binary.BigEndian.Uint16(b[12:14])),
		SinkCount:       uint32(binary.BigEndian.Uint16(b[14:16])),
		PathCount:       uint32(binary.BigEndian.Uint16(b[16:18])),
		PathBytes:       uint64(binary.BigEndian.Uint32(b[18:22])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[22:24])),
		EpochGap:        uint32(binary.BigEndian.Uint16(b[24:26])),
		Arrival:         arrival,
	}
}

func sat32(v uint64) uint32 {
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(v)
}
