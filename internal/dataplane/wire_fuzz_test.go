package dataplane

import (
	"reflect"
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// FuzzWireRoundTrip drives the telemetry-header codec with arbitrary wire
// bytes and anchors: UnmarshalINT must never panic, and the codec must be
// idempotent — decode(encode(decode(b))) == decode(b) under the same
// anchors. (Raw bytes are not compared: byte 10's high bits are reserved
// and legitimately dropped by MarshalINT.)
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, int64(0), uint32(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		int64(5400*netsim.Second), uint32(1<<20))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0x80}, int64(3*netsim.Second), uint32(70000))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64, epochHint uint32) {
		var b [TelemetryHeaderBytes]byte
		copy(b[:], raw)
		if nowRaw < 0 {
			nowRaw = 0 // the codecs' contract is a non-negative clock
		}
		now := netsim.Time(nowRaw)

		h := UnmarshalINT(b, now, epochHint)
		b2 := MarshalINT(h)
		h2 := UnmarshalINT(b2, now, epochHint)
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("INT codec not idempotent:\n b=%v -> %+v\nb2=%v -> %+v", b, h, b2, h2)
		}
		// Every byte except the flags byte must survive re-encoding; the
		// flags byte keeps exactly its defined bit.
		for i := 0; i < TelemetryHeaderBytes-1; i++ {
			if b2[i] != b[i] {
				t.Fatalf("byte %d changed across re-encode: %#x -> %#x", i, b[i], b2[i])
			}
		}
		if b2[10] != b[10]&1 {
			t.Fatalf("flags byte %#x re-encoded as %#x, want %#x", b[10], b2[10], b[10]&1)
		}
	})
}

// FuzzINTHeaderRoundTrip goes the other direction: any in-range header
// must survive encode -> decode exactly.
func FuzzINTHeaderRoundTrip(f *testing.F) {
	f.Add(int64(5*netsim.Second), uint64(1000), uint32(100), uint32(7), uint32(42), true)
	f.Add(int64(0), uint64(0), uint32(0), uint32(0), uint32(0), false)
	f.Fuzz(func(t *testing.T, nowRaw int64, tsBack uint64, count, depth, epoch uint32, flagged bool) {
		if nowRaw < 0 {
			nowRaw = 0 // the codecs' contract is a non-negative clock
		}
		now := netsim.Time(nowRaw)
		nowUS := uint64(now / netsim.Microsecond)
		// The compressed timestamp window: at most 2^31 µs in the past,
		// and never before t=0. Timestamps are carried in whole µs.
		back := tsBack % (1 << 31)
		if back > nowUS {
			back = nowUS
		}
		// The epoch hint window: at most 2^15 epochs before the hint.
		hint := epoch
		epochBack := uint32(uint16(tsBack)) % (1 << 15)
		if epochBack > hint {
			epochBack = hint
		}
		h := &INTHeader{
			SourceTS:        netsim.Time(nowUS-back) * netsim.Microsecond,
			LastEpochCount:  count % 0x10000, // sat16 is lossy above this
			TotalQueueDepth: depth % 0x10000,
			EpochID:         hint - epochBack,
			Flagged:         flagged,
		}
		got := UnmarshalINT(MarshalINT(h), now, hint)
		if !reflect.DeepEqual(h, got) {
			t.Fatalf("in-range header did not round-trip:\nin  %+v\nout %+v (now=%d hint=%d)", h, got, now, hint)
		}
	})
}

// FuzzNotificationRoundTrip checks the notification codec the same way:
// arbitrary bytes never panic, unknown kinds error instead of guessing,
// and decoding is idempotent for valid kinds.
func FuzzNotificationRoundTrip(f *testing.F) {
	f.Add(make([]byte, NotificationBytes), int64(0))
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 1, 0, 0, 0, 0, 5, 0, 2, 0},
		int64(2*netsim.Second))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64) {
		var b [NotificationBytes]byte
		copy(b[:], raw)
		if nowRaw < 0 {
			nowRaw = 0 // the codecs' contract is a non-negative clock
		}
		now := netsim.Time(nowRaw)

		n, err := UnmarshalNotification(b, now)
		if k := NotificationKind(b[0]); k != NotifyHighLatency && k != NotifyDrop {
			if err == nil {
				t.Fatalf("kind %d decoded without error", b[0])
			}
			return
		}
		if err != nil {
			t.Fatalf("valid kind %d failed to decode: %v", b[0], err)
		}
		n2, err := UnmarshalNotification(MarshalNotification(n), now)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(n, n2) {
			t.Fatalf("notification codec not idempotent:\n%+v\n%+v", n, n2)
		}
	})
}

// FuzzRTRecordRoundTrip checks the Ring Table collection codec: decoding
// arbitrary bytes never panics and is idempotent under fixed sink/anchors.
func FuzzRTRecordRoundTrip(f *testing.F) {
	f.Add(make([]byte, RTRecordBytes), int32(4), uint32(12), int64(netsim.Second))
	f.Add([]byte{0, 0, 0, 2, 0, 7, 0, 9, 0, 0, 3, 0, 0, 5, 0, 4, 0, 6, 0, 0, 9, 9, 0, 8, 0, 1, 0, 0},
		int32(11), uint32(70000), int64(3*netsim.Second))
	f.Fuzz(func(t *testing.T, raw []byte, sinkRaw int32, epochHint uint32, arrivalRaw int64) {
		var b [RTRecordBytes]byte
		copy(b[:], raw)
		sink := topology.NodeID(sinkRaw)
		r := UnmarshalRTRecord(b, sink, epochHint, netsim.Time(arrivalRaw))
		r2 := UnmarshalRTRecord(MarshalRTRecord(r), sink, epochHint, netsim.Time(arrivalRaw))
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("RTRecord codec not idempotent:\n%+v\n%+v", r, r2)
		}
	})
}
