package dataplane

import (
	"testing"
	"testing/quick"

	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

func TestTimestampCompressionRoundTrip(t *testing.T) {
	cases := []struct {
		t, now netsim.Time
	}{
		{0, 0},
		{netsim.Second, netsim.Second + netsim.Millisecond},
		{5 * netsim.Second, 5*netsim.Second + 40*netsim.Millisecond},
		{1000 * netsim.Second, 1000*netsim.Second + 3*netsim.Second},
	}
	for _, c := range cases {
		got := DecompressTimestamp(CompressTimestamp(c.t), c.now)
		// Microsecond resolution is lossy below 1 µs.
		if d := got - c.t; d < -netsim.Microsecond || d > netsim.Microsecond {
			t.Errorf("roundtrip(%v, now=%v) = %v", c.t, c.now, got)
		}
	}
}

// Property: compression round-trips for any timestamp whose age relative
// to now is within the 32-bit microsecond window.
func TestPropertyTimestampRoundTrip(t *testing.T) {
	f := func(tsMS uint32, ageMS uint16) bool {
		orig := netsim.Time(tsMS) * netsim.Millisecond
		now := orig + netsim.Time(ageMS)*netsim.Millisecond
		got := DecompressTimestamp(CompressTimestamp(orig), now)
		d := got - orig
		return d >= -netsim.Microsecond && d <= netsim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestINTHeaderRoundTrip(t *testing.T) {
	h := &INTHeader{
		SourceTS:        2*netsim.Second + 123*netsim.Microsecond,
		LastEpochCount:  1234,
		TotalQueueDepth: 87,
		EpochID:         21,
		Flagged:         true,
	}
	b := MarshalINT(h)
	if len(b) != TelemetryHeaderBytes {
		t.Fatalf("wire size = %d", len(b))
	}
	got := UnmarshalINT(b, 2*netsim.Second+5*netsim.Millisecond, 21)
	if got.LastEpochCount != h.LastEpochCount || got.TotalQueueDepth != h.TotalQueueDepth ||
		got.EpochID != h.EpochID || got.Flagged != h.Flagged {
		t.Errorf("roundtrip = %+v, want %+v", got, h)
	}
	if d := got.SourceTS - h.SourceTS; d < -netsim.Microsecond || d > netsim.Microsecond {
		t.Errorf("timestamp drift %v", d)
	}
}

func TestINTHeaderSaturation(t *testing.T) {
	h := &INTHeader{LastEpochCount: 1 << 20, TotalQueueDepth: 1 << 20}
	got := UnmarshalINT(MarshalINT(h), 0, 0)
	if got.LastEpochCount != 0xFFFF || got.TotalQueueDepth != 0xFFFF {
		t.Errorf("saturation failed: %+v", got)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	for _, n := range []*Notification{
		{Kind: NotifyHighLatency, Switch: 9, Flow: FlowID{Src: 6, Sink: 17},
			Time: 3 * netsim.Second, Latency: 48 * netsim.Millisecond},
		{Kind: NotifyDrop, Switch: 22, Flow: FlowID{Src: 14, Sink: 22},
			Time: 2500 * netsim.Millisecond, Dropped: 31, EpochGap: 4},
	} {
		b := MarshalNotification(n)
		got, err := UnmarshalNotification(b, n.Time+netsim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != n.Kind || got.Switch != n.Switch || got.Flow != n.Flow ||
			got.EpochGap != n.EpochGap {
			t.Errorf("roundtrip = %+v, want %+v", got, n)
		}
		if n.Kind == NotifyHighLatency && got.Latency != n.Latency {
			t.Errorf("latency = %v, want %v", got.Latency, n.Latency)
		}
		if n.Kind == NotifyDrop && got.Dropped != n.Dropped {
			t.Errorf("dropped = %d, want %d", got.Dropped, n.Dropped)
		}
	}
}

func TestNotificationRejectsGarbage(t *testing.T) {
	var b [NotificationBytes]byte
	b[0] = 99
	if _, err := UnmarshalNotification(b, 0); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestRTRecordRoundTrip(t *testing.T) {
	r := &RTRecord{
		Flow:            FlowID{Src: 14, Sink: 22},
		PathID:          pathid.ID(0xAB),
		Epoch:           37,
		Latency:         12345 * netsim.Microsecond,
		SourceCount:     120,
		SinkCount:       118,
		PathCount:       60,
		PathBytes:       42000,
		TotalQueueDepth: 31,
		EpochGap:        2,
	}
	b := MarshalRTRecord(r)
	if len(b) != RTRecordBytes {
		t.Fatalf("wire size = %d", len(b))
	}
	got := UnmarshalRTRecord(b, 22, 37, 4*netsim.Second)
	if got.Flow != r.Flow || got.PathID != r.PathID || got.Epoch != r.Epoch ||
		got.Latency != r.Latency || got.SourceCount != r.SourceCount ||
		got.SinkCount != r.SinkCount || got.PathCount != r.PathCount ||
		got.PathBytes != r.PathBytes || got.TotalQueueDepth != r.TotalQueueDepth ||
		got.EpochGap != r.EpochGap {
		t.Errorf("roundtrip = %+v, want %+v", got, r)
	}
	if got.Arrival != 4*netsim.Second {
		t.Errorf("arrival not stamped")
	}
}

// Property: RTRecord round-trips for in-range values under epoch hints
// ahead of the record's epoch.
func TestPropertyRTRecordRoundTrip(t *testing.T) {
	f := func(src uint16, id uint8, epoch uint16, latUS uint16, sc, kc, pc uint16, qd uint8, gap uint8, ahead uint8) bool {
		r := &RTRecord{
			Flow:            FlowID{Src: topology.NodeID(src), Sink: 5},
			PathID:          pathid.ID(id),
			Epoch:           uint32(epoch),
			Latency:         netsim.Time(latUS) * netsim.Microsecond,
			SourceCount:     uint32(sc),
			SinkCount:       uint32(kc),
			PathCount:       uint32(pc),
			PathBytes:       uint64(sc) * 700,
			TotalQueueDepth: uint32(qd),
			EpochGap:        uint32(gap),
		}
		hint := r.Epoch + uint32(ahead%16)
		got := UnmarshalRTRecord(MarshalRTRecord(r), 5, hint, 0)
		return got.Flow == r.Flow && got.PathID == r.PathID && got.Epoch == r.Epoch &&
			got.SourceCount == r.SourceCount && got.SinkCount == r.SinkCount &&
			got.PathCount == r.PathCount && got.TotalQueueDepth == r.TotalQueueDepth &&
			got.EpochGap == r.EpochGap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandEpoch(t *testing.T) {
	cases := []struct {
		low  uint16
		hint uint32
		want uint32
	}{
		{5, 5, 5},
		{5, 70000, 65536 + 5},
		{0xFFFF, 70000, 0xFFFF},
		{0xFFFE, 65537, 0xFFFE},
	}
	for _, c := range cases {
		if got := expandEpoch(c.low, c.hint); got != c.want {
			t.Errorf("expandEpoch(%d, %d) = %d, want %d", c.low, c.hint, got, c.want)
		}
	}
}
