package deploy

import (
	"net"

	"mars/internal/controlplane"
	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/rca"
	"mars/internal/rtclock"
	"mars/internal/stream"
	"mars/internal/topology"
)

// ControllerNode is the controller process: the unmodified
// controlplane.Controller running on a wall-clock loop over a UDP
// transport, feeding the same RCA analyzer the simulator uses — and,
// optionally, the streaming diagnosis service.
type ControllerNode struct {
	cap  *Capture
	loop *rtclock.Loop
	tr   *ctrlchan.UDPTransport
	ctrl *controlplane.Controller
	rca  *rca.Analyzer

	// currentThr holds the matched captured diagnosis's threshold map for
	// the duration of one Analyze call (set and read on the loop goroutine).
	currentThr map[dataplane.FlowID]netsim.Time

	lists     [][]rca.Culprit
	diagnoses []controlplane.Diagnosis

	// noteSeen records the wall time each distinct trigger first reached
	// this process; collectLat accumulates trigger→finalized-diagnosis
	// wall latencies. Both loop-owned.
	noteSeen   map[noteIdent]netsim.Time
	collectLat []netsim.Time

	// Stream, when non-nil, additionally ingests every collected record
	// into the streaming diagnosis service (set before Start).
	Stream *stream.Service

	// OnDiagnosis, if set, observes each diagnosis on the loop goroutine.
	OnDiagnosis func(controlplane.Diagnosis, []rca.Culprit)
}

// noteIdent is a trigger notification's identity across retransmissions.
type noteIdent struct {
	kind  dataplane.NotificationKind
	sw    topology.NodeID
	flow  dataplane.FlowID
	simAt netsim.Time
}

func identOf(n dataplane.Notification) noteIdent {
	return noteIdent{kind: n.Kind, sw: n.Switch, flow: n.Flow, simAt: n.Time}
}

// NewControllerNode binds the controller to a socket. switchAddrs maps
// every switch ID to its hosting process.
func NewControllerNode(cap *Capture, conn *net.UDPConn, switchAddrs map[topology.NodeID]*net.UDPAddr) *ControllerNode {
	n := &ControllerNode{cap: cap, loop: rtclock.New(), noteSeen: make(map[noteIdent]netsim.Time)}
	n.tr = ctrlchan.NewUDP(conn, ctrlchan.UDPConfig{
		Switches: switchAddrs,
		LossProb: cap.Scenario.LossProb,
		Seed:     cap.Scenario.Seed + 200,
	}, func(m ctrlchan.Message) {
		n.loop.Post(func() {
			if m.Kind == ctrlchan.KindNotification {
				id := identOf(m.Note)
				if _, ok := n.noteSeen[id]; !ok {
					n.noteSeen[id] = n.loop.Now()
				}
			}
			n.ctrl.Deliver(m)
		})
	})

	cfg := ScaledControllerConfig(cap.Scenario)
	n.ctrl = controlplane.NewWithTransport(cfg, n.loop, cap.Sys.Program, n.tr)

	// RCA consults the thresholds the simulator had derived at the matched
	// capture's moment, so abnormality classification sees the data plane's
	// own timeline, not the wall clock's partially-warmed reservoirs.
	n.rca = rca.New(cap.Sys.Analyzer.Cfg, cap.Sys.Paths, rca.ThresholdFunc(func(f dataplane.FlowID) netsim.Time {
		if th, ok := n.currentThr[f]; ok {
			return th
		}
		return n.ctrl.ThresholdOf(f)
	}))

	n.ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		// Re-anchor to the collected data's own timeline: d.Time is wall
		// nanoseconds, but the records' arrivals (and RCA's recency
		// window) live on the sim timeline the snapshots carry in AsOf.
		if d.AsOf != 0 {
			d.Time = d.AsOf
		}
		if m := cap.matchDiag(d.Trigger); m != nil {
			n.currentThr = m.Thresholds
		}
		list := n.rca.Analyze(d)
		n.currentThr = nil
		if at, ok := n.noteSeen[identOf(d.Trigger)]; ok {
			n.collectLat = append(n.collectLat, n.loop.Now()-at)
		}
		n.diagnoses = append(n.diagnoses, d)
		if len(list) > 0 {
			n.lists = append(n.lists, list)
		}
		if n.Stream != nil {
			for _, r := range d.Records {
				n.Stream.Ingest(r)
			}
		}
		if n.OnDiagnosis != nil {
			n.OnDiagnosis(d, list)
		}
	}
	return n
}

// Start launches the controller's periodic refresh loop on the wall
// clock. Call once every process is listening.
func (n *ControllerNode) Start() { n.loop.Post(n.ctrl.Start) }

// Culprits returns the merged ranked culprit list accumulated so far
// (synchronized through the loop; callable from any goroutine).
func (n *ControllerNode) Culprits() []rca.Culprit {
	var out []rca.Culprit
	n.loop.Run(func() { out = rca.MergeRanked(n.lists) })
	return out
}

// Diagnoses returns the collected diagnoses so far.
func (n *ControllerNode) Diagnoses() []controlplane.Diagnosis {
	var out []controlplane.Diagnosis
	n.loop.Run(func() { out = append(out, n.diagnoses...) })
	return out
}

// CollectionLatencies returns the wall-clock delay from each diagnosis's
// trigger arriving at this process to its collection finalizing — the
// latency of a real socket round to every edge switch, including retries.
func (n *ControllerNode) CollectionLatencies() []netsim.Time {
	var out []netsim.Time
	n.loop.Run(func() { out = append(out, n.collectLat...) })
	return out
}

// FinishStream seals the attached streaming service's tail windows and
// reports (closed windows, merged culprits). No-op (0, 0) when no
// service is attached.
func (n *ControllerNode) FinishStream() (windows, culprits int) {
	n.loop.Run(func() {
		if n.Stream == nil {
			return
		}
		n.Stream.Finish()
		windows = len(n.Stream.Results())
		culprits = len(n.Stream.Merged())
	})
	return windows, culprits
}

// BandwidthStats snapshots the controller's byte accounting.
func (n *ControllerNode) BandwidthStats() controlplane.BandwidthStats {
	var out controlplane.BandwidthStats
	n.loop.Run(func() { out = n.ctrl.Bytes })
	return out
}

// SetLossProb adjusts the node transport's injected fragment loss.
func (n *ControllerNode) SetLossProb(p float64) { n.tr.SetLossProb(p) }

// Stats exposes the node's transport counters.
func (n *ControllerNode) Stats() *ctrlchan.UDPStats { return n.tr.Stats() }

// Stop tears the node down: transport first, then the loop.
func (n *ControllerNode) Stop() {
	n.tr.Close()
	n.loop.Stop()
}
