// Package deploy runs MARS as real OS processes: each switch group and
// the controller live in their own process and exchange control-plane
// traffic over real UDP sockets (cmd/mars-node is the entry point; this
// package is the machinery).
//
// # The replay-replica design
//
// The repository's data plane is a deterministic discrete-event
// simulation, and determinism is the property every experiment and pinned
// digest rests on. Deployment mode therefore does not fake a packet
// data plane across processes; it splits the system along the seam the
// paper itself draws — the control channel:
//
//   - Data plane: every process runs the identical seeded simulation
//     locally (same Scenario ⇒ byte-identical event history in every
//     replica) and extracts only its own slice of the resulting telemetry:
//     which notifications its switches raised and at what sim time, what
//     each Ring Table held when a diagnosis collected it, and what dynamic
//     thresholds the sim controller had derived at that moment.
//   - Control plane: genuinely real. Switch processes replay their
//     notifications at scaled wall-clock offsets over UDP; the controller
//     process runs the unmodified controlplane.Controller — the same
//     timeout, capped-backoff, retry-budget, and dedup machinery as the
//     simulator — against real sockets, collects Ring Table snapshots
//     from the switch processes, and feeds the same RCA analyzer.
//
// A run succeeds when the multi-process diagnosis reproduces the
// simulator's top-1 culprit: the control plane that produced it was real,
// and the telemetry it collected crossed real sockets.
//
// Sim-time anchoring: the controller's clock in this mode is the wall
// clock, but Ring Table records carry sim-time arrivals. Collect and
// refresh responses therefore carry a Stamp (the snapshot's sim time),
// which the controller folds into Diagnosis.AsOf; the ControllerNode
// re-anchors each diagnosis to AsOf before analysis so RCA's recency
// window sees one consistent timeline.
package deploy

import (
	"fmt"
	"sort"

	"mars"
	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/rca"
	"mars/internal/topology"
)

// Scenario is the complete, JSON-serializable description of one
// deployment run. Every process derives its replay data from the same
// Scenario, so nothing but this struct and the port map crosses process
// boundaries out of band.
type Scenario struct {
	// K is the fat-tree arity.
	K int `json:"k"`
	// Seed drives all simulation randomness.
	Seed int64 `json:"seed"`
	// Flows and RatePPS shape the background workload.
	Flows   int     `json:"flows"`
	RatePPS float64 `json:"rate_pps"`
	// Fault names the injected scenario (faults.Parse names); empty means
	// a healthy run.
	Fault string `json:"fault"`
	// FaultStart and FaultDur position the injection on the sim timeline.
	FaultStart netsim.Time `json:"fault_start"`
	FaultDur   netsim.Time `json:"fault_dur"`
	// RunFor is the simulated duration.
	RunFor netsim.Time `json:"run_for"`
	// Scale maps sim time to wall time: wall = sim × Scale. 1 replays in
	// real time; 0.25 replays 4 sim-seconds in one wall second. The
	// controller's timing knobs scale with it so the protocol keeps its
	// shape.
	Scale float64 `json:"scale"`
	// LossProb injects seeded outbound fragment loss at every transport,
	// exercising the retry machinery on an otherwise reliable loopback.
	LossProb float64 `json:"loss_prob,omitempty"`
	// Groups is how many switch processes host the topology's switches.
	Groups int `json:"groups"`
}

// DefaultScenario is the CI smoke run: the gray experiment's silent-drop
// injection on the default K=4 system, replayed at 4× compression across
// 4 switch processes.
func DefaultScenario() Scenario {
	return Scenario{
		K:          4,
		Seed:       1000,
		Flows:      96,
		RatePPS:    220,
		Fault:      "silent-drop",
		FaultStart: 2 * netsim.Second,
		FaultDur:   1500 * netsim.Millisecond,
		RunFor:     4 * netsim.Second,
		Scale:      0.25,
		Groups:     4,
	}
}

// CapturedDiag is one simulator diagnosis, captured with everything the
// deployment needs to reproduce its analysis: the trigger identity, the
// collected records, the collection's sim time, and the dynamic
// thresholds the sim controller held for the involved flows at that
// moment.
type CapturedDiag struct {
	Trigger    dataplane.Notification
	Records    []dataplane.RTRecord
	Time       netsim.Time
	Thresholds map[dataplane.FlowID]netsim.Time
}

// TimedNote is one switch notification with its sim-time offset.
type TimedNote struct {
	Note dataplane.Notification
	At   netsim.Time
}

// Capture is the deterministic replay data one process derives from a
// Scenario by running the simulation locally.
type Capture struct {
	Scenario Scenario
	// Notes are all notifications raised by the data plane, in emission
	// order (each process replays only its own switches' entries).
	Notes []TimedNote
	// Diags are the simulator's diagnoses in collection order.
	Diags []CapturedDiag
	// Expected is the simulator's merged ranked culprit list — the ground
	// truth a deployment run must reproduce at rank 1.
	Expected []rca.Culprit
	// Sys is the simulated system the capture ran on (topology, program,
	// PathID table — everything the real controller and agents rewire).
	Sys *mars.System
}

// Build runs the Scenario's simulation to completion and extracts the
// replay capture. Deterministic: every process calls this with the same
// Scenario and derives an identical capture.
func Build(sc Scenario) (*Capture, error) {
	if sc.Scale <= 0 {
		return nil, fmt.Errorf("deploy: scale must be positive, got %v", sc.Scale)
	}
	cfg := mars.DefaultConfig()
	cfg.FatTreeK = sc.K
	cfg.Seed = sc.Seed
	sys, err := mars.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	cap := &Capture{Scenario: sc, Sys: sys}

	// Tee every data-plane notification (with its sim time) while still
	// delivering it to the sim controller unchanged.
	inner := sys.Program.Notifier
	sys.Program.Notifier = notifierFunc(func(n dataplane.Notification) {
		cap.Notes = append(cap.Notes, TimedNote{Note: n, At: sys.Sim.Now()})
		inner.Notify(n)
	})

	// Capture each diagnosis with the thresholds RCA will consult for it.
	sys.OnDiagnosis = func(d mars.Diagnosis, _ []mars.Culprit) {
		cd := CapturedDiag{
			Trigger:    d.Trigger,
			Records:    d.Records,
			Time:       d.Time,
			Thresholds: make(map[dataplane.FlowID]netsim.Time),
		}
		record := func(f dataplane.FlowID) {
			if _, ok := cd.Thresholds[f]; !ok {
				cd.Thresholds[f] = sys.Controller.ThresholdOf(f)
			}
		}
		record(d.Trigger.Flow)
		for _, r := range d.Records {
			record(r.Flow)
		}
		cap.Diags = append(cap.Diags, cd)
	}

	sys.StartBackground(sc.Flows, sc.RatePPS)
	if sc.Fault != "" {
		kind, err := faults.Parse(sc.Fault)
		if err != nil {
			return nil, fmt.Errorf("deploy: %w", err)
		}
		sys.InjectSchedule(mars.Schedule{Injections: []mars.Injection{
			{Kind: kind, Start: sc.FaultStart, Dur: sc.FaultDur},
		}})
	}
	sys.Run(sc.RunFor)
	cap.Expected = sys.Culprits()
	return cap, nil
}

// notifierFunc adapts a function to dataplane.Notifier.
type notifierFunc func(dataplane.Notification)

func (f notifierFunc) Notify(n dataplane.Notification) { f(n) }

// matchDiag finds the captured diagnosis for a trigger: the exact trigger
// if the controller picked the same one the simulator did, else the
// nearest capture by trigger time (real-clock jitter can make the
// deployment's response window retain a different in-window notification
// than the simulator's did).
func (c *Capture) matchDiag(n dataplane.Notification) *CapturedDiag {
	if len(c.Diags) == 0 {
		return nil
	}
	best := -1
	for i := range c.Diags {
		t := &c.Diags[i].Trigger
		if t.Kind == n.Kind && t.Switch == n.Switch && t.Flow == n.Flow && t.Time == n.Time {
			return &c.Diags[i]
		}
		if best < 0 || absTime(c.Diags[i].Trigger.Time-n.Time) < absTime(c.Diags[best].Trigger.Time-n.Time) {
			best = i
		}
	}
	return &c.Diags[best]
}

func absTime(t netsim.Time) netsim.Time {
	if t < 0 {
		return -t
	}
	return t
}

// recordLog builds a sink switch's cumulative record history from the
// captured diagnoses: every record the simulator ever collected at sw,
// deduplicated and ordered by arrival. Refresh pulls serve from this log
// (records with Arrival inside the pull's watermark window), feeding the
// deployment controller's reservoirs real traffic without re-running the
// data plane per request.
func (c *Capture) recordLog(sw topology.NodeID) []dataplane.RTRecord {
	type key struct {
		flow    dataplane.FlowID
		epoch   uint32
		arrival netsim.Time
	}
	seen := make(map[key]bool)
	var log []dataplane.RTRecord
	for i := range c.Diags {
		for _, r := range c.Diags[i].Records {
			if r.Flow.Sink != sw {
				continue
			}
			k := key{flow: r.Flow, epoch: r.Epoch, arrival: r.Arrival}
			if seen[k] {
				continue
			}
			seen[k] = true
			log = append(log, r)
		}
	}
	sort.Slice(log, func(i, j int) bool {
		if log[i].Arrival != log[j].Arrival {
			return log[i].Arrival < log[j].Arrival
		}
		if log[i].Flow.Src != log[j].Flow.Src {
			return log[i].Flow.Src < log[j].Flow.Src
		}
		return log[i].Epoch < log[j].Epoch
	})
	return log
}

// GroupSwitches partitions the fat tree's switches into n process groups:
// group g hosts pod g's aggregation and edge switches (for n ≤ pods), and
// core switches are dealt round-robin so every switch — including cores,
// which receive threshold pushes — is routable. n beyond the pod count is
// clamped; n ≤ 0 means one group.
func GroupSwitches(ft *topology.FatTree, n int) [][]topology.NodeID {
	if n <= 0 {
		n = 1
	}
	if n > ft.K {
		n = ft.K
	}
	groups := make([][]topology.NodeID, n)
	for _, sw := range append(append([]topology.NodeID{}, ft.EdgeIDs...), ft.AggIDs...) {
		g := ft.PodOf(sw) % n
		groups[g] = append(groups[g], sw)
	}
	for i, sw := range ft.CoreIDs {
		groups[i%n] = append(groups[i%n], sw)
	}
	return groups
}

// ScaledControllerConfig compresses the controller's wall-time knobs by
// the scenario's Scale so the protocol's shape (how many refresh rounds
// and response windows fit in the run) is preserved under time
// compression.
func ScaledControllerConfig(sc Scenario) controlplane.Config {
	cfg := controlplane.DefaultConfig()
	cfg.Seed = sc.Seed
	scale := func(t netsim.Time) netsim.Time {
		return netsim.Time(float64(t) * sc.Scale)
	}
	cfg.RefreshPeriod = scale(cfg.RefreshPeriod)
	cfg.ResponseWindow = scale(cfg.ResponseWindow)
	cfg.RequestTimeout = scale(cfg.RequestTimeout)
	cfg.BackoffBase = scale(cfg.BackoffBase)
	cfg.BackoffMax = scale(cfg.BackoffMax)
	return cfg
}

// Top1Key reduces a culprit to its identity (cause, level, location, and
// flow for flow-level culprits) — the equivalence the deployment run must
// reproduce. Scores are excluded: real-clock collection timing shifts
// scores without changing the diagnosis.
func Top1Key(c rca.Culprit) string {
	s := fmt.Sprintf("%v/%v", c.Cause, c.Level)
	for _, id := range c.Location {
		s += fmt.Sprintf("/s%d", id)
	}
	if c.Level == rca.LevelFlow {
		s += fmt.Sprintf("/f%d-%d", c.Flow.Src, c.Flow.Sink)
	}
	return s
}
