package deploy

import (
	"net"
	"sync"
	"testing"
	"time"

	"mars/internal/topology"
)

// buildOnce caches the default scenario's capture: the sim run is the
// expensive part and is identical for every test that needs it.
var (
	buildMu  sync.Mutex
	buildCap *Capture
)

func defaultCapture(t *testing.T) *Capture {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if buildCap == nil {
		c, err := Build(DefaultScenario())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		buildCap = c
	}
	return buildCap
}

// launchInProcess wires a controller node and one switch node per group
// inside the test process — same transports, sockets, and replay logic as
// the multi-process launcher, minus fork/exec.
func launchInProcess(t *testing.T, c *Capture) (*ControllerNode, []*SwitchNode) {
	t.Helper()
	groups := GroupSwitches(c.Sys.FT, c.Scenario.Groups)
	conns, pm, err := AllocatePorts(groups)
	if err != nil {
		t.Fatal(err)
	}
	swAddrs, err := pm.SwitchAddrs()
	if err != nil {
		t.Fatal(err)
	}
	ctrlAddr, err := pm.ControllerAddr()
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewControllerNode(c, conns[0], swAddrs)
	var nodes []*SwitchNode
	for i, g := range groups {
		nodes = append(nodes, NewSwitchNode(c, g, conns[i+1], ctrlAddr))
	}
	t.Cleanup(func() {
		ctrl.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	})
	ctrl.Start()
	for _, n := range nodes {
		n.Start()
	}
	return ctrl, nodes
}

// wallDeadline is the replay duration plus a generous drain margin.
func wallDeadline(c *Capture) time.Duration {
	replay := time.Duration(float64(c.Scenario.RunFor) * c.Scenario.Scale)
	return replay + 5*time.Second
}

// TestGroupSwitchesCoversAll verifies the process grouping hosts every
// switch exactly once (threshold pushes must be routable to all of them).
func TestGroupSwitchesCoversAll(t *testing.T) {
	c := defaultCapture(t)
	for _, n := range []int{1, 2, 4, 7} {
		groups := GroupSwitches(c.Sys.FT, n)
		seen := make(map[topology.NodeID]int)
		for _, g := range groups {
			for _, sw := range g {
				seen[sw]++
			}
		}
		for _, sw := range c.Sys.FT.Switches() {
			if seen[sw] != 1 {
				t.Fatalf("n=%d: switch %d hosted %d times", n, sw, seen[sw])
			}
		}
	}
}

// TestCaptureFindsCulprit guards the ground truth: the simulated run the
// deployment replays must itself diagnose the injected fault.
func TestCaptureFindsCulprit(t *testing.T) {
	c := defaultCapture(t)
	if len(c.Expected) == 0 {
		t.Fatal("sim run produced no culprits; the deploy comparison is vacuous")
	}
	if len(c.Notes) == 0 || len(c.Diags) == 0 {
		t.Fatalf("capture incomplete: %d notes, %d diags", len(c.Notes), len(c.Diags))
	}
}

// TestLoopbackReproducesSimTop1 is the tentpole assertion: controller and
// switch groups on separate sockets, real UDP in between, and the
// resulting diagnosis must agree with the simulator's top-1 culprit.
func TestLoopbackReproducesSimTop1(t *testing.T) {
	c := defaultCapture(t)
	if len(c.Expected) == 0 {
		t.Skip("sim produced no culprits")
	}
	ctrl, nodes := launchInProcess(t, c)

	want := Top1Key(c.Expected[0])
	deadline := time.Now().Add(wallDeadline(c)) //mars:wallclock test deadline
	for {
		got := ctrl.Culprits()
		if len(got) > 0 && Top1Key(got[0]) == want {
			break
		}
		if time.Now().After(deadline) { //mars:wallclock test deadline
			if len(got) == 0 {
				t.Fatalf("no culprits from deployment run; want top-1 %s", want)
			}
			t.Fatalf("deployment top-1 = %s, want %s", Top1Key(got[0]), want)
		}
		time.Sleep(20 * time.Millisecond) //mars:wallclock test polling
	}

	if ds := ctrl.Diagnoses(); len(ds) == 0 {
		t.Fatal("no diagnoses collected")
	} else {
		for _, d := range ds {
			if d.AsOf == 0 && len(d.Records) > 0 {
				t.Fatal("populated deployment diagnosis lost its sim-time anchor (AsOf=0)")
			}
		}
	}
	var sent int
	for _, n := range nodes {
		notes, _ := n.Counts()
		sent += notes
	}
	if sent == 0 {
		t.Fatal("no notifications replayed")
	}
	if ctrl.Stats().FramesReceived.Load() == 0 {
		t.Fatal("controller transport saw no frames: the exchange did not cross sockets")
	}
}

// TestLoopbackRetriesUnderInjectedLoss drops a quarter of all fragments
// at every transport and checks the controller's retry machinery carries
// the diagnosis anyway.
func TestLoopbackRetriesUnderInjectedLoss(t *testing.T) {
	base := defaultCapture(t)
	lossy := *base
	lossy.Scenario.LossProb = 0.25
	ctrl, _ := launchInProcess(t, &lossy)

	deadline := time.Now().Add(wallDeadline(&lossy)) //mars:wallclock test deadline
	for {
		if len(ctrl.Diagnoses()) > 0 && ctrl.BandwidthStats().Retries > 0 {
			break
		}
		if time.Now().After(deadline) { //mars:wallclock test deadline
			t.Fatalf("under 25%% fragment loss: %d diagnoses, %d retries (want both > 0)",
				len(ctrl.Diagnoses()), ctrl.BandwidthStats().Retries)
		}
		time.Sleep(20 * time.Millisecond) //mars:wallclock test polling
	}
	if ctrl.Stats().InjectedDrops.Load() == 0 {
		t.Fatal("loss injection never dropped a fragment")
	}
}

// TestPortMapRoundTrip checks the JSON discovery file survives a write /
// read / resolve cycle.
func TestPortMapRoundTrip(t *testing.T) {
	pm := &PortMap{
		Controller: "127.0.0.1:7000",
		Groups: []PortGroup{
			{Addr: "127.0.0.1:7001", Switches: []topology.NodeID{1, 2, 3}},
			{Addr: "127.0.0.1:7002", Switches: []topology.NodeID{4, 5}},
		},
	}
	path := t.TempDir() + "/portmap.json"
	if err := pm.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPortMap(path)
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := got.SwitchAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 5 {
		t.Fatalf("resolved %d switch addrs, want 5", len(addrs))
	}
	if addrs[4].Port != 7002 {
		t.Fatalf("switch 4 routed to port %d, want 7002", addrs[4].Port)
	}
	if _, err := got.ControllerAddr(); err != nil {
		t.Fatal(err)
	}
	var _ *net.UDPAddr = addrs[1]
}
