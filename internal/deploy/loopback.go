package deploy

import (
	"sort"
	"time"

	"mars/internal/controlplane"
	"mars/internal/netsim"
	"mars/internal/rca"
)

// LoopbackResult summarizes one complete loopback deployment run.
type LoopbackResult struct {
	// Expected is the simulator's merged culprit ranking; Got the
	// deployment's. Top1Match is the run's verdict.
	Expected  []rca.Culprit
	Got       []rca.Culprit
	Top1Match bool
	// Diagnoses counts finalized collections; NotesSent replayed
	// notifications across all switch nodes.
	Diagnoses int
	NotesSent int
	// WallSeconds is the wall-clock duration of the live phase.
	WallSeconds float64
	// CollectLatencies are per-diagnosis trigger→finalize wall latencies.
	CollectLatencies []netsim.Time
	// Bytes is the controller's control-channel accounting.
	Bytes controlplane.BandwidthStats
}

// MeanCollectMs returns the mean collection latency in milliseconds (0
// when no diagnosis completed).
func (r *LoopbackResult) MeanCollectMs() float64 { return latMs(r.CollectLatencies, 0.0) }

// P95CollectMs returns the 95th-percentile collection latency in
// milliseconds.
func (r *LoopbackResult) P95CollectMs() float64 { return latMs(r.CollectLatencies, 0.95) }

// latMs reduces latencies to the mean (q=0) or the q-quantile, in ms.
func latMs(lats []netsim.Time, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	if q == 0 {
		var sum netsim.Time
		for _, l := range lats {
			sum += l
		}
		return float64(sum) / float64(len(lats)) / 1e6
	}
	s := append([]netsim.Time(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx]) / 1e6
}

// DiagnosesPerSec is the deployment's sustained diagnosis rate.
func (r *LoopbackResult) DiagnosesPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.Diagnoses) / r.WallSeconds
}

// ReplayDuration is the wall-clock length of a scenario's live phase.
func ReplayDuration(sc Scenario) time.Duration {
	return time.Duration(float64(sc.RunFor) * sc.Scale)
}

// WaitSettled blocks until in-flight collections drain: the diagnosis
// count must hold stable across two consecutive polls, bounded by a
// fixed margin. Call it after the replay phase has elapsed.
func WaitSettled(ctrl *ControllerNode) {
	stableFor, last := 0, -1
	for i := 0; i < 20 && stableFor < 2; i++ {
		time.Sleep(100 * time.Millisecond) //mars:wallclock drain polling
		n := len(ctrl.Diagnoses())
		if n == last {
			stableFor++
		} else {
			stableFor, last = 0, n
		}
	}
}

// RunLoopback executes a complete deployment run inside one process:
// controller node plus one switch node per group, each on its own
// loopback UDP socket, replaying the capture in scaled real time. It
// blocks for the whole live phase (Scenario.RunFor × Scale plus drain)
// and tears everything down before returning.
func RunLoopback(c *Capture) (*LoopbackResult, error) {
	groups := GroupSwitches(c.Sys.FT, c.Scenario.Groups)
	conns, pm, err := AllocatePorts(groups)
	if err != nil {
		return nil, err
	}
	swAddrs, err := pm.SwitchAddrs()
	if err != nil {
		return nil, err
	}
	ctrlAddr, err := pm.ControllerAddr()
	if err != nil {
		return nil, err
	}
	ctrl := NewControllerNode(c, conns[0], swAddrs)
	var nodes []*SwitchNode
	for i, g := range groups {
		nodes = append(nodes, NewSwitchNode(c, g, conns[i+1], ctrlAddr))
	}
	defer func() {
		ctrl.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	}()

	start := time.Now() //mars:wallclock the deployment's live phase is wall-clock by nature
	ctrl.Start()
	for _, n := range nodes {
		n.Start()
	}
	time.Sleep(ReplayDuration(c.Scenario)) //mars:wallclock live replay phase
	WaitSettled(ctrl)
	wall := time.Since(start).Seconds() //mars:wallclock the deployment's live phase is wall-clock by nature

	res := &LoopbackResult{
		Expected:         c.Expected,
		Got:              ctrl.Culprits(),
		Diagnoses:        len(ctrl.Diagnoses()),
		WallSeconds:      wall,
		CollectLatencies: ctrl.CollectionLatencies(),
		Bytes:            ctrl.BandwidthStats(),
	}
	for _, n := range nodes {
		notes, _ := n.Counts()
		res.NotesSent += notes
	}
	res.Top1Match = len(res.Expected) > 0 && len(res.Got) > 0 &&
		Top1Key(res.Expected[0]) == Top1Key(res.Got[0])
	return res, nil
}
