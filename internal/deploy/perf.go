package deploy

import "mars/internal/experiments"

// PerfSection builds the scenario's capture, runs one loopback
// deployment, and reduces it to the BENCH_perf.json "deploy" tier
// (wall-clock collection latency and diagnosis rate). It lives here
// rather than on experiments.PerfResult because deployment mode sits
// above the root mars package in the import graph.
func PerfSection(sc Scenario) (*experiments.DeployPerf, error) {
	c, err := Build(sc)
	if err != nil {
		return nil, err
	}
	res, err := RunLoopback(c)
	if err != nil {
		return nil, err
	}
	return &experiments.DeployPerf{
		K:             sc.K,
		Groups:        sc.Groups,
		Scale:         sc.Scale,
		Fault:         sc.Fault,
		Diagnoses:     res.Diagnoses,
		NotesReplayed: res.NotesSent,
		Top1Match:     res.Top1Match,
		WallSeconds:   res.WallSeconds,
		CollectMeanMs: res.MeanCollectMs(),
		CollectP95Ms:  res.P95CollectMs(),
		DiagPerSec:    res.DiagnosesPerSec(),
		Retries:       res.Bytes.Retries,
	}, nil
}
