package deploy

import (
	"encoding/json"
	"fmt"
	"net"
	"os"

	"mars/internal/topology"
)

// PortMap is the shared discovery config of one deployment run: where the
// controller listens and which process hosts which switches. The launcher
// writes it as JSON; every node process reads it back.
type PortMap struct {
	// Controller is the controller process's UDP address.
	Controller string `json:"controller"`
	// Groups lists the switch processes in group-index order.
	Groups []PortGroup `json:"groups"`
}

// PortGroup is one switch process: its address and hosted switch IDs.
type PortGroup struct {
	Addr     string            `json:"addr"`
	Switches []topology.NodeID `json:"switches"`
}

// WriteFile serializes the port map as JSON.
func (p *PortMap) WriteFile(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encoding portmap: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadPortMap loads a portmap JSON file.
func ReadPortMap(path string) (*PortMap, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: reading portmap: %w", err)
	}
	var p PortMap
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("deploy: parsing portmap %s: %w", path, err)
	}
	return &p, nil
}

// ControllerAddr resolves the controller endpoint.
func (p *PortMap) ControllerAddr() (*net.UDPAddr, error) {
	return net.ResolveUDPAddr("udp", p.Controller)
}

// SwitchAddrs resolves the switch-ID → process-address routing table the
// controller's transport sends through.
func (p *PortMap) SwitchAddrs() (map[topology.NodeID]*net.UDPAddr, error) {
	out := make(map[topology.NodeID]*net.UDPAddr)
	for _, g := range p.Groups {
		addr, err := net.ResolveUDPAddr("udp", g.Addr)
		if err != nil {
			return nil, fmt.Errorf("deploy: resolving group addr %s: %w", g.Addr, err)
		}
		for _, sw := range g.Switches {
			out[sw] = addr
		}
	}
	return out, nil
}

// AllocatePorts binds one loopback UDP socket per role (controller +
// len(groups) switch processes), returning the sockets and the resulting
// port map. The launcher binds everything itself and passes the listening
// sockets' addresses down, so no port is guessed and no race with other
// processes exists; node processes re-bind the address they are assigned.
func AllocatePorts(groups [][]topology.NodeID) ([]*net.UDPConn, *PortMap, error) {
	conns := make([]*net.UDPConn, 0, len(groups)+1)
	bind := func() (*net.UDPConn, error) {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for _, open := range conns {
				open.Close()
			}
			return nil, fmt.Errorf("deploy: binding loopback: %w", err)
		}
		conns = append(conns, c)
		return c, nil
	}
	ctrlConn, err := bind()
	if err != nil {
		return nil, nil, err
	}
	pm := &PortMap{Controller: ctrlConn.LocalAddr().String()}
	for _, sws := range groups {
		c, err := bind()
		if err != nil {
			return nil, nil, err
		}
		pm.Groups = append(pm.Groups, PortGroup{
			Addr:     c.LocalAddr().String(),
			Switches: sws,
		})
	}
	return conns, pm, nil
}
