package deploy

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteFile serializes the scenario as JSON — the launcher writes it once
// and every node process re-derives the identical capture from it.
func (s Scenario) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encoding scenario: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadScenario loads a scenario JSON file.
func ReadScenario(path string) (Scenario, error) {
	var s Scenario
	b, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("deploy: reading scenario: %w", err)
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("deploy: parsing scenario %s: %w", path, err)
	}
	return s, nil
}
