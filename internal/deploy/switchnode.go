package deploy

import (
	"fmt"
	"net"

	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/rtclock"
	"mars/internal/topology"
)

// SwitchNode is one switch-group process: it replays its switches'
// captured notifications onto the wire at scaled wall offsets and answers
// the controller's collect, refresh, and threshold-push requests from the
// captured telemetry. All state is owned by a single rtclock loop — the
// same single-threaded discipline the simulator enforces.
type SwitchNode struct {
	cap      *Capture
	switches []topology.NodeID
	hosted   map[topology.NodeID]bool
	loop     *rtclock.Loop
	tr       *ctrlchan.UDPTransport

	// logs holds each hosted sink's cumulative record history.
	logs map[topology.NodeID][]dataplane.RTRecord
	// thresholds tracks pushed per-switch per-flow thresholds (the
	// deployment's observable effect of the push path).
	thresholds map[string]netsim.Time
	nextSeq    uint64

	// thresholdPushes counts accepted pushes; notesSent counts replayed
	// notifications. Loop-owned: read them through Counts.
	thresholdPushes int
	notesSent       int
}

// Counts returns (notifications replayed, threshold pushes accepted),
// synchronized through the loop; callable from any goroutine.
func (s *SwitchNode) Counts() (notes, pushes int) {
	s.loop.Run(func() { notes, pushes = s.notesSent, s.thresholdPushes })
	return notes, pushes
}

// NewSwitchNode binds a switch-group agent to a socket. switches lists
// the hosted switch IDs; controller is the controller process's address.
func NewSwitchNode(cap *Capture, switches []topology.NodeID, conn *net.UDPConn, controller *net.UDPAddr) *SwitchNode {
	s := &SwitchNode{
		cap:        cap,
		switches:   switches,
		hosted:     make(map[topology.NodeID]bool, len(switches)),
		loop:       rtclock.New(),
		logs:       make(map[topology.NodeID][]dataplane.RTRecord),
		thresholds: make(map[string]netsim.Time),
	}
	for _, sw := range switches {
		s.hosted[sw] = true
		s.logs[sw] = cap.recordLog(sw)
	}
	s.tr = ctrlchan.NewUDP(conn, ctrlchan.UDPConfig{
		Controller: controller,
		LossProb:   cap.Scenario.LossProb,
		Seed:       cap.Scenario.Seed + 100, // distinct stream per role
	}, func(m ctrlchan.Message) { s.loop.Post(func() { s.handle(m) }) })
	return s
}

// Start begins the notification replay: each captured note raised by a
// hosted switch is scheduled at its scaled wall offset. Call once, after
// every process is listening.
func (s *SwitchNode) Start() {
	s.loop.Post(func() {
		for _, tn := range s.cap.Notes {
			if !s.hosted[tn.Note.Switch] {
				continue
			}
			note := tn.Note
			s.loop.After(s.wallOffset(tn.At), func() { s.sendNote(note) })
		}
	})
}

// wallOffset maps a sim time to a wall offset on this node's clock.
func (s *SwitchNode) wallOffset(at netsim.Time) netsim.Time {
	return netsim.Time(float64(at) * s.cap.Scenario.Scale)
}

// simNow maps the node's wall clock back to the sim timeline (clamped to
// the captured run).
func (s *SwitchNode) simNow() netsim.Time {
	t := netsim.Time(float64(s.loop.Now()) / s.cap.Scenario.Scale)
	if t > s.cap.Scenario.RunFor {
		t = s.cap.Scenario.RunFor
	}
	return t
}

func (s *SwitchNode) seq() uint64 {
	s.nextSeq++
	return s.nextSeq
}

// sendNote replays one notification to the controller.
func (s *SwitchNode) sendNote(n dataplane.Notification) {
	s.notesSent++
	s.tr.Send(ctrlchan.ToController, ctrlchan.Message{
		Kind: ctrlchan.KindNotification, Seq: s.seq(), Switch: n.Switch,
		Note: n, Wire: dataplane.NotificationBytes,
	}, nil)
}

// handle answers one controller request on the loop goroutine.
func (s *SwitchNode) handle(m ctrlchan.Message) {
	if !s.hosted[m.Switch] {
		return // misrouted: ignore, the controller's retry machinery owns it
	}
	//mars:partial only controller->switch request kinds arrive at an agent; the other kinds travel switch->controller
	switch m.Kind {
	case ctrlchan.KindCollectRequest:
		s.onCollect(m)
	case ctrlchan.KindRefreshRequest:
		s.onRefresh(m)
	case ctrlchan.KindThresholdPush:
		s.thresholds[fmt.Sprintf("s%d/f%d-%d", m.Switch, m.Flow.Src, m.Flow.Sink)] = m.Threshold
		s.thresholdPushes++
		s.tr.Send(ctrlchan.ToController, ctrlchan.Message{
			Kind: ctrlchan.KindThresholdAck, Seq: m.Seq, Switch: m.Switch,
			Flow: m.Flow, Threshold: m.Threshold, Wire: ctrlchan.AckBytes,
		}, nil)
	}
}

// onCollect serves a diagnosis pull: the request carries its trigger
// notification, which selects the captured diagnosis snapshot; the
// response carries this switch's slice of it, stamped with the snapshot's
// sim time.
func (s *SwitchNode) onCollect(m ctrlchan.Message) {
	var recs []dataplane.RTRecord
	var stamp netsim.Time
	if d := s.cap.matchDiag(m.Note); d != nil {
		stamp = d.Time
		for _, r := range d.Records {
			if r.Flow.Sink == m.Switch {
				recs = append(recs, r)
			}
		}
	}
	s.tr.Send(ctrlchan.ToController, ctrlchan.Message{
		Kind: ctrlchan.KindCollectResponse, Seq: m.Seq, Switch: m.Switch,
		Records: recs, Stamp: stamp,
		Wire: int64(len(recs)) * dataplane.RTRecordBytes,
	}, nil)
}

// onRefresh serves an incremental latency pull from the captured record
// log: records that have "arrived" by the current (scaled) sim time and
// are newer than the controller's watermark.
func (s *SwitchNode) onRefresh(m ctrlchan.Message) {
	now := s.simNow()
	var recs []dataplane.RTRecord
	for _, r := range s.logs[m.Switch] {
		if r.Arrival > m.Watermark && r.Arrival <= now {
			recs = append(recs, r)
		}
	}
	s.tr.Send(ctrlchan.ToController, ctrlchan.Message{
		Kind: ctrlchan.KindRefreshResponse, Seq: m.Seq, Switch: m.Switch,
		Records: recs, Stamp: now, Wire: int64(len(recs)) * 8,
	}, nil)
}

// SetLossProb adjusts the node transport's injected fragment loss.
func (s *SwitchNode) SetLossProb(p float64) { s.tr.SetLossProb(p) }

// Stats exposes the node's transport counters.
func (s *SwitchNode) Stats() *ctrlchan.UDPStats { return s.tr.Stats() }

// Stop tears the node down: transport first (no new posts), then the
// loop.
func (s *SwitchNode) Stop() {
	s.tr.Close()
	s.loop.Stop()
}
