// Package det provides deterministic iteration helpers. Go randomizes map
// iteration order on purpose; any loop that ranges over a map and emits
// ordered output (appends to a slice, accumulates floating point, selects
// an argmax) silently couples results to that randomness. MARS's seeded
// runs must produce byte-identical culprit lists, so such loops iterate a
// sorted key view instead. The mars-lint `mapiter` analyzer enforces the
// convention; these helpers are the sanctioned way to satisfy it.
package det

import (
	"cmp"
	"slices"
	"sort"
)

// Keys returns m's keys in ascending order. The map itself is the only
// place iteration order leaks from, so the one range loop below carries
// the suppression directive: the collected keys are fully sorted before
// they are returned.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	//mars:mapiter-ok keys are fully sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// KeysFunc returns m's keys ordered by less, for key types without a
// natural order (structs, arrays). less must be a strict weak ordering
// that distinguishes any two distinct keys, or determinism is lost again.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	//mars:mapiter-ok keys are fully sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
