package experiments

import (
	"fmt"
	"strings"

	"mars/internal/faults"
	"mars/internal/fsm"
	"mars/internal/harness"
	"mars/internal/metrics"
	"mars/internal/rca"
	"mars/internal/sbfl"
)

// AblationResult is a generic named-variant localization comparison.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationRow is one variant's aggregate localization quality.
type AblationRow struct {
	Name string
	Loc  metrics.Localization
}

// Render formats the comparison.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-18s %6s %6s %6s %6s %8s\n", "variant", "R@1", "R@2", "R@3", "R@5", "Exam")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %6.2f %6.2f %6.2f %6.2f %8.2f\n", row.Name,
			row.Loc.RecallAt(1), row.Loc.RecallAt(2), row.Loc.RecallAt(3), row.Loc.RecallAt(5), row.Loc.MeanExamScore())
	}
	return b.String()
}

// runMARSVariant runs MARS trials across all fault kinds on the harness
// with a per-trial marsSystem factory (RCA config hooks, matching rules),
// aggregating ranks in the historical (fault, trial) order. Variant trials
// never touch the shared result cache: the variant knobs live outside
// TrialConfig, so identical keys could mean different computations.
func runMARSVariant(opts EngineOptions, trials int, baseSeed int64, label string, mk func() *marsSystem) metrics.Localization {
	plan := opts.plan()
	var (
		tcs []TrialConfig
		ts  []harness.Trial
	)
	for _, kind := range faults.Kinds() {
		for i := 0; i < trials; i++ {
			seed := plan.TrialSeed(baseSeed, int(kind), i)
			tc := DefaultTrialConfig(seed, kind)
			tc.CtrlSeed = plan.CtrlChanSeed(seed)
			tcs = append(tcs, tc)
			ts = append(ts, harness.Trial{
				Index: len(ts), Seed: seed,
				Label: fmt.Sprintf("ablation/%s/%s/t%d", label, kind, i),
			})
		}
	}
	results := mustRun(opts, ts, func(tr harness.Trial) TrialResult {
		return runSystemTrial(mk(), tcs[tr.Index])
	})
	var loc metrics.Localization
	for _, r := range results {
		loc.Add(r.Rank)
	}
	return loc
}

// RunAblationSBFL compares SBFL scoring formulas (relative risk is the
// paper's choice).
func RunAblationSBFL(trials int, baseSeed int64) *AblationResult {
	return RunAblationSBFLWith(EngineOptions{}, trials, baseSeed)
}

// RunAblationSBFLWith is RunAblationSBFL on configured engine options.
func RunAblationSBFLWith(opts EngineOptions, trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: SBFL formula"}
	for _, name := range []string{"relative-risk", "ochiai", "tarantula", "jaccard", "dstar"} {
		formula := sbfl.Formulas()[name]
		loc := runMARSVariant(opts, trials, baseSeed, "sbfl-"+name, func() *marsSystem {
			return &marsSystem{mutateRCA: func(c *rca.Config) { c.Formula = formula }}
		})
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}

// RunAblationFSMMaxLen compares culprit pattern length caps (MARS uses 2:
// switches and links).
func RunAblationFSMMaxLen(trials int, baseSeed int64) *AblationResult {
	return RunAblationFSMMaxLenWith(EngineOptions{}, trials, baseSeed)
}

// RunAblationFSMMaxLenWith is RunAblationFSMMaxLen on configured options.
func RunAblationFSMMaxLenWith(opts EngineOptions, trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: FSM max pattern length"}
	for _, maxLen := range []int{1, 2, 3} {
		maxLen := maxLen
		loc := runMARSVariant(opts, trials, baseSeed, fmt.Sprintf("fsmlen-%d", maxLen), func() *marsSystem {
			return &marsSystem{mutateRCA: func(c *rca.Config) { c.MaxPatternLen = maxLen }}
		})
		out.Rows = append(out.Rows, AblationRow{Name: fmt.Sprintf("maxlen=%d", maxLen), Loc: loc})
	}
	return out
}

// RunAblationMiner confirms miner choice does not change results (they
// return identical pattern sets), only runtime.
func RunAblationMiner(trials int, baseSeed int64) *AblationResult {
	return RunAblationMinerWith(EngineOptions{}, trials, baseSeed)
}

// RunAblationMinerWith is RunAblationMiner on configured engine options.
func RunAblationMinerWith(opts EngineOptions, trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: FSM algorithm (results must match)"}
	for _, name := range []string{"PrefixSpan", "GSP", "CM-SPADE"} {
		m := fsm.ByName(name)
		loc := runMARSVariant(opts, trials, baseSeed, "miner-"+name, func() *marsSystem {
			return &marsSystem{mutateRCA: func(c *rca.Config) { c.Miner = m }}
		})
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}

// RunAblationCauseAccuracy scores MARS with the strict cause-matching rule
// (the diagnosed cause class must equal the injected class, in addition to
// the location).
func RunAblationCauseAccuracy(trials int, baseSeed int64) *AblationResult {
	return RunAblationCauseAccuracyWith(EngineOptions{}, trials, baseSeed)
}

// RunAblationCauseAccuracyWith is RunAblationCauseAccuracy on configured
// engine options.
func RunAblationCauseAccuracyWith(opts EngineOptions, trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: location-only vs location+cause matching"}
	for _, strict := range []bool{false, true} {
		strict := strict
		name := "location"
		if strict {
			name = "location+cause"
		}
		loc := runMARSVariant(opts, trials, baseSeed, name, func() *marsSystem {
			return &marsSystem{strictCause: strict}
		})
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}
