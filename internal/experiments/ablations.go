package experiments

import (
	"fmt"
	"strings"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/fsm"
	"mars/internal/metrics"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/sbfl"
)

// AblationResult is a generic named-variant localization comparison.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationRow is one variant's aggregate localization quality.
type AblationRow struct {
	Name string
	Loc  metrics.Localization
}

// Render formats the comparison.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-18s %6s %6s %6s %6s %8s\n", "variant", "R@1", "R@2", "R@3", "R@5", "Exam")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %6.2f %6.2f %6.2f %6.2f %8.2f\n", row.Name,
			row.Loc.RecallAt(1), row.Loc.RecallAt(2), row.Loc.RecallAt(3), row.Loc.RecallAt(5), row.Loc.MeanExamScore())
	}
	return b.String()
}

// runMARSVariant runs MARS trials across all fault kinds with a customized
// RCA config, aggregating ranks.
func runMARSVariant(trials int, baseSeed int64, mutate func(*rca.Config)) metrics.Localization {
	var loc metrics.Localization
	for _, kind := range faults.Kinds() {
		for i := 0; i < trials; i++ {
			tc := DefaultTrialConfig(baseSeed+int64(kind)*1000+int64(i), kind)
			r := runMARSTrialWith(tc, mutate)
			loc.Add(r.Rank)
		}
	}
	return loc
}

// runMARSTrialWith is runMARSTrial with an RCA config hook.
func runMARSTrialWith(tc TrialConfig, mutate func(*rca.Config)) TrialResult {
	ft, router, sim := buildNet(tc, nil)
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		panic(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	// Rebuild the sim with the program attached (buildNet attached nil).
	router = netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim = netsim.New(ft.Topology, router, prog, cfg, tc.Seed)
	ccfg := controlplane.DefaultConfig()
	ccfg.Seed = tc.Seed
	ctrl := controlplane.New(ccfg, sim, prog)
	prog.Notifier = ctrl
	ctrl.Start()

	rcfg := rca.DefaultConfig()
	if mutate != nil {
		mutate(&rcfg)
	}
	analyzer := rca.New(rcfg, table, ctrl)
	var lists [][]rca.Culprit
	detected := false
	ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		if d.Time >= tc.FaultStart {
			detected = true
			lists = append(lists, analyzer.Analyze(d))
		}
	}
	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	merged := rca.MergeRanked(lists)
	rank := 0
	for i, c := range merged {
		if marsMatches(c, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{System: SysMARS, GT: gt, Rank: rank, Detected: detected}
}

// RunAblationSBFL compares SBFL scoring formulas (relative risk is the
// paper's choice).
func RunAblationSBFL(trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: SBFL formula"}
	for _, name := range []string{"relative-risk", "ochiai", "tarantula", "jaccard", "dstar"} {
		formula := sbfl.Formulas()[name]
		loc := runMARSVariant(trials, baseSeed, func(c *rca.Config) { c.Formula = formula })
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}

// RunAblationFSMMaxLen compares culprit pattern length caps (MARS uses 2:
// switches and links).
func RunAblationFSMMaxLen(trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: FSM max pattern length"}
	for _, maxLen := range []int{1, 2, 3} {
		loc := runMARSVariant(trials, baseSeed, func(c *rca.Config) { c.MaxPatternLen = maxLen })
		out.Rows = append(out.Rows, AblationRow{Name: fmt.Sprintf("maxlen=%d", maxLen), Loc: loc})
	}
	return out
}

// RunAblationMiner confirms miner choice does not change results (they
// return identical pattern sets), only runtime.
func RunAblationMiner(trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: FSM algorithm (results must match)"}
	for _, name := range []string{"PrefixSpan", "GSP", "CM-SPADE"} {
		m := fsm.ByName(name)
		loc := runMARSVariant(trials, baseSeed, func(c *rca.Config) { c.Miner = m })
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}

// RunAblationCauseAccuracy scores MARS with the strict cause-matching rule
// (the diagnosed cause class must equal the injected class, in addition to
// the location).
func RunAblationCauseAccuracy(trials int, baseSeed int64) *AblationResult {
	out := &AblationResult{Title: "Ablation: location-only vs location+cause matching"}
	for _, strict := range []bool{false, true} {
		var loc metrics.Localization
		for _, kind := range faults.Kinds() {
			for i := 0; i < trials; i++ {
				tc := DefaultTrialConfig(baseSeed+int64(kind)*1000+int64(i), kind)
				r := runMARSTrialStrict(tc, strict)
				loc.Add(r.Rank)
			}
		}
		name := "location"
		if strict {
			name = "location+cause"
		}
		out.Rows = append(out.Rows, AblationRow{Name: name, Loc: loc})
	}
	return out
}

// runMARSTrialStrict runs one MARS trial with selectable matching.
func runMARSTrialStrict(tc TrialConfig, strict bool) TrialResult {
	res := runMARSTrialLists(tc)
	rank := 0
	for i, c := range res.merged {
		ok := marsMatches(c, res.gt)
		if strict {
			ok = marsCauseMatches(c, res.gt)
		}
		if ok {
			rank = i + 1
			break
		}
	}
	return TrialResult{System: SysMARS, GT: res.gt, Rank: rank, Detected: res.detected}
}

type marsTrialLists struct {
	merged   []rca.Culprit
	gt       faults.GroundTruth
	detected bool
}

// runMARSTrialLists factors the common MARS trial body returning the raw
// merged list for custom scoring.
func runMARSTrialLists(tc TrialConfig) marsTrialLists {
	ft, _, _ := buildNet(tc, nil)
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		panic(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, prog, cfg, tc.Seed)
	ccfg := controlplane.DefaultConfig()
	ccfg.Seed = tc.Seed
	ctrl := controlplane.New(ccfg, sim, prog)
	prog.Notifier = ctrl
	ctrl.Start()
	analyzer := rca.New(rca.DefaultConfig(), table, ctrl)
	var lists [][]rca.Culprit
	detected := false
	ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		if d.Time >= tc.FaultStart {
			detected = true
			lists = append(lists, analyzer.Analyze(d))
		}
	}
	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)
	return marsTrialLists{merged: rca.MergeRanked(lists), gt: gt, detected: detected}
}
