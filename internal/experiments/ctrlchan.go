package experiments

import (
	"fmt"
	"strings"

	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/metrics"
	"mars/internal/netsim"
)

// The ctrlchan experiment (this repository's addition, beyond the paper's
// idealized control plane): MARS runs the Table 1 fault suite while its
// own controller↔switch channel drops messages, sweeping the loss rate
// from 0% to 30%. Two controller modes are compared at every point —
// the hardened one (timeouts, capped exponential backoff, retry budget,
// acks, degraded-mode partial diagnoses) and a no-retry ablation that
// sends every request exactly once. The curves show that the reliability
// machinery holds localization accuracy where the naive channel collapses.

// CtrlChanLosses is the swept symmetric loss probability.
var CtrlChanLosses = []float64{0, 0.05, 0.10, 0.20, 0.30}

// CtrlChanRow aggregates one (loss, mode) sweep point over the fault
// suite.
type CtrlChanRow struct {
	Loss  float64
	Retry bool
	Loc   metrics.Localization
	// MeanDiagLatency is the mean fault-start → first-diagnosis delay
	// over the trials that diagnosed at all.
	MeanDiagLatency netsim.Time
	// Detected counts trials with at least one post-fault diagnosis.
	Detected int
	// Diagnoses / Partial count completed collections and how many of
	// them finished with missing sinks.
	Diagnoses, Partial int64
}

// CtrlChanResult is the full sweep.
type CtrlChanResult struct {
	Trials int
	Rows   []CtrlChanRow
}

// RunCtrlChan sweeps control-channel loss with the default engine options.
func RunCtrlChan(trials int, baseSeed int64) *CtrlChanResult {
	return RunCtrlChanWith(EngineOptions{}, trials, baseSeed)
}

// RunCtrlChanWith sweeps control-channel loss over the Table 1 fault suite
// on the harness. Seeds derive exactly as in RunTable1, so every sweep
// point faces the same fault sequence; per-row aggregation walks results
// in the historical (loss, mode, fault, trial) nesting order, keeping the
// whole experiment deterministic under a fixed base seed and any worker
// count.
func RunCtrlChanWith(opts EngineOptions, trials int, baseSeed int64) *CtrlChanResult {
	plan := opts.plan()
	res := &CtrlChanResult{Trials: trials}
	var (
		tcs   []TrialConfig
		rowOf []int
		ts    []harness.Trial
	)
	for _, loss := range CtrlChanLosses {
		for _, retry := range []bool{true, false} {
			res.Rows = append(res.Rows, CtrlChanRow{Loss: loss, Retry: retry})
			row := len(res.Rows) - 1
			for _, kind := range faults.Kinds() {
				for t := 0; t < trials; t++ {
					seed := plan.TrialSeed(baseSeed, int(kind), t)
					tc := DefaultTrialConfig(seed, kind)
					tc.CtrlSeed = plan.CtrlChanSeed(seed)
					tc.CtrlLossy = true
					tc.CtrlLoss = loss
					tc.CtrlNoRetry = !retry
					tcs = append(tcs, tc)
					rowOf = append(rowOf, row)
					mode := "retry"
					if !retry {
						mode = "no-retry"
					}
					ts = append(ts, harness.Trial{
						Index: len(ts), Seed: seed,
						Label: fmt.Sprintf("ctrlchan/%.0f%%/%s/%s/t%d", 100*loss, mode, kind, t),
					})
				}
			}
		}
	}
	results := mustRun(opts, ts, func(tr harness.Trial) TrialResult {
		return opts.runTrial(SysMARS, tcs[tr.Index])
	})
	latSum := make([]netsim.Time, len(res.Rows))
	for i, r := range results {
		row := &res.Rows[rowOf[i]]
		row.Loc.Add(r.Rank)
		row.Diagnoses += r.Diagnoses
		row.Partial += r.PartialDiagnoses
		if r.DiagDetected {
			row.Detected++
			latSum[rowOf[i]] += r.DiagLatency
		}
	}
	for i := range res.Rows {
		if res.Rows[i].Detected > 0 {
			res.Rows[i].MeanDiagLatency = latSum[i] / netsim.Time(res.Rows[i].Detected)
		}
	}
	return res
}

// Row returns the sweep point for (loss, retry), or nil.
func (r *CtrlChanResult) Row(loss float64, retry bool) *CtrlChanRow {
	for i := range r.Rows {
		if r.Rows[i].Loss == loss && r.Rows[i].Retry == retry {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the degradation curves.
func (r *CtrlChanResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ctrl-chan sweep: localization vs control-channel loss (%d trials per fault)\n", r.Trials)
	fmt.Fprintf(&b, "%-6s %-9s %6s %6s %8s %10s %10s %9s\n",
		"loss", "mode", "R@1", "R@3", "Exam", "diag(ms)", "diagnoses", "partial")
	for _, row := range r.Rows {
		mode := "retry"
		if !row.Retry {
			mode = "no-retry"
		}
		fmt.Fprintf(&b, "%-6s %-9s %6.2f %6.2f %8.2f %10.1f %10d %9d\n",
			fmt.Sprintf("%.0f%%", 100*row.Loss), mode,
			row.Loc.RecallAt(1), row.Loc.RecallAt(3), row.Loc.MeanExamScore(),
			row.MeanDiagLatency.Millis(), row.Diagnoses, row.Partial)
	}
	return b.String()
}
