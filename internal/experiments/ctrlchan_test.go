package experiments

import (
	"strings"
	"testing"

	"mars/internal/faults"
)

func TestCtrlChanResultRenderAndLookup(t *testing.T) {
	r := &CtrlChanResult{Trials: 1, Rows: []CtrlChanRow{
		{Loss: 0.1, Retry: true, Detected: 4},
		{Loss: 0.1, Retry: false, Detected: 2},
	}}
	if r.Row(0.1, true) == nil || r.Row(0.1, false) == nil {
		t.Fatal("lookup failed")
	}
	if r.Row(0.2, true) != nil {
		t.Error("lookup invented a row")
	}
	out := r.Render()
	if !strings.Contains(out, "retry") || !strings.Contains(out, "no-retry") {
		t.Errorf("render missing mode labels:\n%s", out)
	}
}

func TestCtrlChanTrialKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// Identical trials through the realistic lossy channel must agree
	// exactly (the sweep's determinism rests on this).
	tc := DefaultTrialConfig(5, faults.Delay)
	tc.CtrlLossy, tc.CtrlLoss = true, 0.25
	a := runMARSTrial(tc)
	b := runMARSTrial(tc)
	if a.Rank != b.Rank || a.Diagnoses != b.Diagnoses ||
		a.PartialDiagnoses != b.PartialDiagnoses || a.DiagnosisBytes != b.DiagnosisBytes {
		t.Errorf("same trial config diverged:\n%+v\n%+v", a, b)
	}
	// The no-retry ablation at the same loss leaves far more collections
	// partial; the retry budget is what keeps diagnosis data complete.
	tc.CtrlNoRetry = true
	n := runMARSTrial(tc)
	if n.PartialDiagnoses <= a.PartialDiagnoses {
		t.Errorf("no-retry partial=%d not above retry partial=%d (of %d/%d diagnoses)",
			n.PartialDiagnoses, a.PartialDiagnoses, n.Diagnoses, a.Diagnoses)
	}
}
