package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"mars/internal/controlplane"
	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
)

// culpritDigest runs one full seeded MARS trial — simulator, data plane,
// control channel, RCA — and hashes the merged ranked-culprit list,
// including every field that reaches an operator. Two runs with the same
// seed must produce the same digest bit for bit; this is the regression
// net under the mapiter/detrand fixes (map-iteration order and ambient
// randomness were the ways runs used to diverge).
func culpritDigest(t *testing.T, tc TrialConfig) string {
	t.Helper()
	ft := newFatTree(tc)
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	sim := netsim.New(ft.Topology, router, prog, scaledSimConfig(), tc.Seed)
	ch := ctrlchan.New(sim, ctrlchan.Config{Seed: tc.Seed + 7})
	ccfg := controlplane.DefaultConfig()
	ccfg.Seed = tc.Seed
	ctrl := controlplane.NewWithChannel(ccfg, sim, prog, ch)
	prog.Notifier = ctrl
	ctrl.Start()

	analyzer := rca.New(rca.DefaultConfig(), table, ctrl)
	var lists [][]rca.Culprit
	ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		if d.Time >= tc.FaultStart {
			lists = append(lists, analyzer.Analyze(d))
		}
	}

	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	inj.Chan = ch
	inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	h := sha256.New()
	for _, c := range rca.MergeRanked(lists) {
		fmt.Fprintf(h, "%d|%d|%v|%v|%v|%.9e|%.9e\n",
			c.Cause, c.Level, c.Location, c.Flow, c.String(), c.Score, c.Confidence)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestSeededRunsAreDeterministic asserts that two identical seeded MARS
// trials rank culprits identically, for a fault whose diagnosis exercises
// the flow-level (micro-burst) signature path and one that exercises the
// switch-level (congestion/ECMP) path.
func TestSeededRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full seeded trials are not short")
	}
	for _, kind := range []faults.Kind{faults.MicroBurst, faults.ProcessRateDecrease} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			tc := DefaultTrialConfig(11, kind)
			first := culpritDigest(t, tc)
			second := culpritDigest(t, tc)
			if first != second {
				t.Fatalf("two identical seeded runs diverged: %s vs %s", first, second)
			}
			if first == hex.EncodeToString(sha256.New().Sum(nil)) {
				t.Fatalf("trial produced no culprits; the determinism check is vacuous")
			}
		})
	}
}
