package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"testing"

	"mars/internal/faults"
)

// Pinned digests of the three seeded experiment sweeps, captured before
// the zero-alloc pipeline optimization. Every hot-path change (typed
// events, packet/meta pooling, slice-indexed tables, table-driven CRC16)
// must leave these byte-identical: the digests cover both the rendered
// operator output and the exact per-trial integers behind it (ranks,
// byte counters, diagnosis latencies), so a float-rounding-sized
// divergence cannot hide behind %.2f formatting.
//
// If one of these fails, the optimization changed observable behavior —
// fix the code, do not re-pin. (Re-pinning is only legitimate when an
// intentional semantic change to the experiments themselves lands, and
// then the new values must be justified in the commit.)
const (
	pinnedTable1Digest   = "10f2a98004c1a5605aa9300b7072071036cf3173da513e420eaf20804923967e"
	pinnedCtrlChanDigest = "a709ed4ec94e9cb3d76d1da446ac5911014f61c4fcbaab80bc9520c1257e8654"
	pinnedOverheadDigest = "a5a8d1aa7a8bc339696cc0a0a2a57aaad986b946b9cc9c21526de3cc9017e856"
)

// pinTrials keeps the pin suite affordable: one trial per fault kind per
// sweep point still exercises every fault signature, every system, every
// codec, and the lossy control channel end to end.
const pinTrials = 1

// pinSeed is the historical default base seed (mars-bench -seed).
const pinSeed = 1000

func table1Digest() string {
	res := RunTable1With(EngineOptions{}, pinTrials, pinSeed)
	h := sha256.New()
	io.WriteString(h, res.Render())
	for _, kind := range faults.Kinds() {
		for _, sys := range Systems() {
			fmt.Fprintf(h, "%v/%v:%+v\n", kind, sys, res.Cells[kind][sys].Loc.Results)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func ctrlChanDigest() string {
	res := RunCtrlChanWith(EngineOptions{}, pinTrials, pinSeed)
	h := sha256.New()
	io.WriteString(h, res.Render())
	for _, row := range res.Rows {
		fmt.Fprintf(h, "%v/%v:%+v|%d|%d|%d|%d\n", row.Loss, row.Retry,
			row.Loc.Results, int64(row.MeanDiagLatency), row.Detected,
			row.Diagnoses, row.Partial)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func overheadDigest() string {
	res := RunOverheadWith(EngineOptions{}, pinTrials, pinSeed)
	h := sha256.New()
	io.WriteString(h, res.Render())
	for _, row := range res.Rows {
		fmt.Fprintf(h, "%s:%+v|%+v|%d|%d|%d|%d|%d|%d\n", row.Codec,
			row.Loc.Results, row.Det, row.TelemetryBytes, row.TotalLinkBytes,
			row.DiagnosisBytes, row.Packets, row.TelemetryPackets, row.Detected)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestPinnedSeededDigests is the acceptance gate for the zero-alloc
// pipeline: the table1, ctrlchan, and overhead sweeps must produce
// byte-identical seeded output before and after the optimization.
func TestPinnedSeededDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full seeded sweeps are not short")
	}
	for _, c := range []struct {
		name, want string
		got        func() string
	}{
		{"table1", pinnedTable1Digest, table1Digest},
		{"ctrlchan", pinnedCtrlChanDigest, ctrlChanDigest},
		{"overhead", pinnedOverheadDigest, overheadDigest},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got := c.got(); got != c.want {
				t.Errorf("%s digest = %s, pinned %s", c.name, got, c.want)
			}
		})
	}
}
