package experiments

import (
	"mars/internal/harness"
)

// EngineOptions configures how a trial-based driver schedules its matrix
// on the harness. The zero value reproduces the historical sequential
// drivers bit for bit: legacy seed plan, GOMAXPROCS workers (results are
// byte-identical for any worker count), shared result cache enabled.
type EngineOptions struct {
	// Workers bounds the harness worker pool (<= 0: runtime.GOMAXPROCS).
	Workers int
	// Progress receives per-trial completion callbacks (may be nil).
	Progress harness.Progress
	// Plan derives trial and control-channel seeds; nil means
	// harness.LegacyPlan, the formula all recorded EXPERIMENTS.md numbers
	// use.
	Plan harness.SeedPlan
	// DisableCache bypasses the shared (system, config) result cache.
	// Determinism tests set it so a second run re-executes trials instead
	// of echoing memoized results.
	DisableCache bool
}

func (o EngineOptions) plan() harness.SeedPlan {
	if o.Plan == nil {
		return harness.LegacyPlan{}
	}
	return o.Plan
}

func (o EngineOptions) config() harness.Config {
	return harness.Config{Workers: o.Workers, Progress: o.Progress}
}

// trialKey identifies one cacheable trial: the system plus the complete
// trial configuration (which subsumes the (system, fault, seed) key —
// fault and every seed are TrialConfig fields, so two trials share a key
// only if they are the same pure computation).
type trialKey struct {
	Sys SystemKind
	TC  TrialConfig
}

// sharedResults memoizes default-substrate trial results across drivers in
// one process, so sweeps that replay another sweep's scenarios reuse them:
// `mars-bench -exp all` runs Table 1 and then Fig. 9 over the same
// (system, fault, seed) trials, and Fig. 9 gets every result for free.
// Trials are pure functions of their key, so hits cannot change output.
var sharedResults = harness.NewCache[trialKey, TrialResult]()

// runTrial executes (or recalls) one trial according to the options.
// Trials with a custom physical config are never cached: TrialConfig holds
// *netsim.Config by pointer, so equal-content configs at distinct
// addresses would miss anyway and pin dead configs in the key.
func (o EngineOptions) runTrial(sys SystemKind, tc TrialConfig) TrialResult {
	if o.DisableCache || tc.SimCfg != nil {
		return RunTrial(sys, tc)
	}
	key := trialKey{Sys: sys, TC: tc}
	if r, ok := sharedResults.Get(key); ok {
		return r
	}
	r := RunTrial(sys, tc)
	sharedResults.Put(key, r)
	return r
}

// mustRun drives the harness over a trial list and panics on the first
// trial failure: experiment drivers have no error path to their callers,
// and a matrix with a dead trial would aggregate into meaningless numbers.
// The panic payload is the harness's joined *TrialError chain, which names
// exactly which trials died and why.
func mustRun(opts EngineOptions, trials []harness.Trial, fn func(harness.Trial) TrialResult) []TrialResult {
	results, err := harness.Run(opts.config(), trials, fn)
	if err != nil {
		panic(err)
	}
	return results
}
