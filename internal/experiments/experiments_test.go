package experiments

import (
	"sort"
	"strings"
	"testing"

	"mars/internal/faults"
)

func TestFig2ShapeCoreHotterThanEdge(t *testing.T) {
	r := RunFig2(1)
	if r.Core.Len() == 0 || r.Edge.Len() == 0 {
		t.Fatal("empty CDFs")
	}
	if r.Core.Mean() <= r.Edge.Mean() {
		t.Errorf("core mean %.3f not above edge mean %.3f (paper's Fig 2 shape)",
			r.Core.Mean(), r.Edge.Mean())
	}
	if !strings.Contains(r.Render(), "core") {
		t.Error("render missing core row")
	}
}

func TestFig3Shape(t *testing.T) {
	r := RunFig3()
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// INT-MD grows with hops; the others are flat.
	if r.Rows[9].INTMDBytes <= r.Rows[0].INTMDBytes {
		t.Error("INT-MD header should grow with path length")
	}
	if r.Rows[9].MARSBytes != r.Rows[0].MARSBytes {
		t.Error("MARS header must be flat")
	}
	// MARS saves most of IntSight's path-encoding memory.
	if r.SavingsPct < 50 {
		t.Errorf("savings = %.1f%%, want > 50%%", r.SavingsPct)
	}
	if r.MARSEntries >= r.IntSightEntries {
		t.Error("MARS must need fewer MAT entries")
	}
}

func TestFig5Shape(t *testing.T) {
	r := RunFig5(1)
	if len(r.Points) == 0 {
		t.Fatal("no trace")
	}
	// The dynamic detector handles both failure modes of the statics.
	if r.DynFN > r.StaFN && r.DynFP > r.StaLowFP {
		t.Errorf("dynamic detector worse on both axes: %+v", r)
	}
	if r.DynFP+r.DynFN >= r.StaFP+r.StaFN+r.StaLowFP+r.StaLowFN {
		t.Errorf("dynamic total errors (%d) not below combined statics", r.DynFP+r.DynFN)
	}
	if r.StaFN == 0 && r.StaLowFP == 0 {
		t.Error("static thresholds showed no dilemma; scenario too easy")
	}
}

func TestFig7Shape(t *testing.T) {
	r := RunFig7(1000)
	if len(r.BurstT) == 0 || len(r.ECMPT) == 0 {
		t.Fatal("empty traces")
	}
	// (a) median latency during the burst window must exceed the pre-burst
	// median (medians are robust to transient background spikes).
	var pre, dur []float64
	for i, ts := range r.BurstT {
		switch {
		case ts < 2.0 && ts > 0.5:
			pre = append(pre, r.BurstLatencyMs[i])
		case ts > 2.3 && ts < 3.0:
			dur = append(dur, r.BurstLatencyMs[i])
		}
	}
	if len(pre) == 0 || len(dur) == 0 {
		t.Fatal("trace windows empty")
	}
	sort.Float64s(pre)
	sort.Float64s(dur)
	if dur[len(dur)/2] < 1.5*pre[len(pre)/2] {
		t.Errorf("burst median latency %.2f not above 1.5x baseline %.2f", dur[len(dur)/2], pre[len(pre)/2])
	}
	// (b) the skewed split must diverge during the fault.
	var ratioDur float64
	var n int
	for i, ts := range r.ECMPT {
		if ts > 2.3 && ts < 3.4 {
			if r.ECMPLightPPS[i] > 0 {
				ratioDur += r.ECMPHeavyPPS[i] / r.ECMPLightPPS[i]
				n++
			}
		}
	}
	if n == 0 || ratioDur/float64(n) < 2 {
		t.Errorf("ECMP heavy/light ratio %.2f during fault, want >= 2", ratioDur/float64(n))
	}
}

func TestFig8Shape(t *testing.T) {
	r := RunFig8(1, 12, 500)
	scores := map[string]float64{}
	for _, row := range r.Rows {
		scores[row.Name] = row.F1()
	}
	if scores["reservoir"] <= scores["static-low"] || scores["reservoir"] <= scores["static-mid"] {
		t.Errorf("reservoir F1 %.3f not above low/mid statics (%v)", scores["reservoir"], scores)
	}
	if scores["reservoir"] <= scores["reservoir-noalpha"] {
		t.Errorf("penalty factor did not help: %v", scores)
	}
}

func TestFig10Shape(t *testing.T) {
	r := RunFig10()
	if len(r.Rows) < 3 {
		t.Fatal("too few sweep points")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].SRAMPct <= r.Rows[i-1].SRAMPct {
			t.Error("SRAM must grow with ring size")
		}
		if r.Rows[i].PHVPct != r.Rows[0].PHVPct {
			t.Error("PHV must be flat")
		}
	}
	// MARS "fits comfortably": every class below 10% at the default ring.
	for _, u := range r.Rows {
		if u.RingSize == 512 {
			for name, v := range map[string]float64{
				"sram": u.SRAMPct, "phv": u.PHVPct, "hash": u.HashBitsPct,
				"tcam": u.TCAMPct, "action": u.ActionDataPct,
			} {
				if v > 10 {
					t.Errorf("%s = %.1f%% at ring 512", name, v)
				}
			}
		}
	}
}

func TestFig11AllMinersAgree(t *testing.T) {
	r := RunFig11(1, 800, 1)
	if len(r.Rows) != 7 {
		t.Fatalf("miners = %d", len(r.Rows))
	}
	want := r.Rows[0].NPatterns
	for _, row := range r.Rows {
		if row.NPatterns != want {
			t.Errorf("%s found %d patterns, others %d", row.Name, row.NPatterns, want)
		}
		if row.Runtime <= 0 {
			t.Errorf("%s runtime not measured", row.Name)
		}
	}
}

func TestPathIDMemoryShape(t *testing.T) {
	r := RunPathIDMemory()
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.Bytes >= r.IntSightBytes {
			t.Errorf("%s/%d: %d B not below IntSight %d B", row.Alg, row.Width, row.Bytes, r.IntSightBytes)
		}
	}
}

func TestFig9ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// One delay trial per system is enough to check the overhead ordering.
	tel := map[SystemKind]int64{}
	diag := map[SystemKind]int64{}
	for _, sys := range Systems() {
		tc := DefaultTrialConfig(5, faults.Delay)
		r := RunTrial(sys, tc)
		tel[sys] = r.TelemetryBytes
		diag[sys] = r.DiagnosisBytes
	}
	if tel[SysSyNDB] != 0 {
		t.Error("SyNDB must add no telemetry header")
	}
	if !(tel[SysIntSight] > tel[SysSpiderMon] && tel[SysSpiderMon] > tel[SysMARS]) {
		t.Errorf("telemetry ordering wrong: %v", tel)
	}
	if diag[SysSyNDB] <= diag[SysMARS] {
		t.Errorf("SyNDB diagnosis bytes %d not above MARS %d", diag[SysSyNDB], diag[SysMARS])
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := RunTable1(2, 77)
	if res.Trials != 2 {
		t.Fatal("trials mismatch")
	}
	// MARS must beat SpiderMon and IntSight overall (the paper's headline
	// comparison); two trials per fault is enough for the gap given that
	// those baselines cannot rank delay and drop at all.
	mars := res.Overall(SysMARS)
	sm := res.Overall(SysSpiderMon)
	is := res.Overall(SysIntSight)
	if mars.RecallAt(5) <= sm.RecallAt(5) || mars.RecallAt(5) <= is.RecallAt(5) {
		t.Errorf("MARS R@5 %.2f not above SpiderMon %.2f / IntSight %.2f",
			mars.RecallAt(5), sm.RecallAt(5), is.RecallAt(5))
	}
	out := res.Render()
	if !strings.Contains(out, "overall") {
		t.Error("render missing overall rows")
	}
}

func TestDefaultTrialConfigSane(t *testing.T) {
	tc := DefaultTrialConfig(1, faults.Delay)
	if tc.FaultStart >= tc.Total || tc.FaultStart+tc.FaultDur > tc.Total {
		t.Error("fault window exceeds run")
	}
	if tc.NumFlows <= 0 || tc.RatePPS <= 0 {
		t.Error("degenerate workload")
	}
}

func TestScaleSweepShape(t *testing.T) {
	r := RunScale([]int{4, 6})
	if len(r.Rows) != 2 {
		t.Fatal("rows")
	}
	// Header bytes flat with scale; MARS memory far below IntSight's.
	if r.Rows[0].HeaderB != r.Rows[1].HeaderB {
		t.Error("header bytes grew with K")
	}
	for _, row := range r.Rows {
		if row.MATBytes >= row.IntSightBytes {
			t.Errorf("K=%d: MARS %d B not below IntSight %d B", row.K, row.MATBytes, row.IntSightBytes)
		}
	}
	// IntSight's cost grows superlinearly with the path set.
	if r.Rows[1].IntSightBytes <= r.Rows[0].IntSightBytes*2 {
		t.Error("per-hop encoding did not blow up with scale")
	}
}
