package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"mars/internal/fsm"
)

// Fig11Row is one miner's performance on the abnormal-set corpus.
type Fig11Row struct {
	Name      string
	Runtime   time.Duration
	AllocMiB  float64
	NPatterns int
}

// Fig11Result compares the seven FSM algorithms.
type Fig11Result struct {
	Corpus int // sequences mined
	Rows   []Fig11Row
}

// fsmCorpus synthesizes an abnormal path set shaped like MARS's: short
// switch sequences over a fat-tree-sized alphabet, with a hot subsequence
// (the culprit) appearing in a large fraction of them.
func fsmCorpus(rng *rand.Rand, n int) fsm.Dataset {
	db := make(fsm.Dataset, n)
	culprit := []fsm.Item{7, 13}
	for i := range db {
		l := 3 + rng.Intn(3)
		seq := make(fsm.Sequence, 0, l)
		seq = append(seq, fsm.Item(20+rng.Intn(8)))
		if rng.Float64() < 0.6 {
			seq = append(seq, culprit...)
		} else {
			seq = append(seq, fsm.Item(rng.Intn(20)), fsm.Item(rng.Intn(20)))
		}
		for len(seq) < l {
			seq = append(seq, fsm.Item(28+rng.Intn(8)))
		}
		db[i] = seq
	}
	return db
}

// RunFig11 measures runtime and allocation of every miner over the same
// corpus with MARS's parameters (max length 2, 5% support).
func RunFig11(seed int64, corpusSize, reps int) *Fig11Result {
	rng := rand.New(rand.NewSource(seed))
	db := fsmCorpus(rng, corpusSize)
	params := fsm.Params{MinRelSupport: 0.05, MaxLen: 2}
	out := &Fig11Result{Corpus: corpusSize}
	for _, m := range fsm.All() {
		// Warm up once so one-time costs don't skew the first miner.
		patterns := m.Mine(db, params)
		var ms1, ms2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		start := time.Now() //mars:wallclock Fig. 11 measures real miner runtime
		for i := 0; i < reps; i++ {
			patterns = m.Mine(db, params)
		}
		elapsed := time.Since(start) / time.Duration(reps) //mars:wallclock Fig. 11 measures real miner runtime
		runtime.ReadMemStats(&ms2)
		out.Rows = append(out.Rows, Fig11Row{
			Name:      m.Name(),
			Runtime:   elapsed,
			AllocMiB:  float64(ms2.TotalAlloc-ms1.TotalAlloc) / float64(reps) / (1 << 20),
			NPatterns: len(patterns),
		})
	}
	return out
}

// Render formats the comparison.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: FSM algorithms on %d abnormal paths (maxlen=2, support=5%%)\n", r.Corpus)
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "algorithm", "runtime", "alloc(MiB)", "patterns")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12v %12.2f %10d\n", row.Name, row.Runtime, row.AllocMiB, row.NPatterns)
	}
	return b.String()
}
