package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/metrics"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/reservoir"
	"mars/internal/topology"
	"mars/internal/workload"
)

// --- Fig. 2: link utilization CDF, core vs edge ---------------------------

// Fig2Result holds per-layer link utilization samples.
type Fig2Result struct {
	// Utilization[layer] = per-link utilization fractions sampled over
	// 100 ms windows.
	Core, Agg, Edge *metrics.CDF
}

// RunFig2 reproduces the motivation study: under a realistic mesh, core
// links run hotter than edge links, which is why MARS offloads telemetry
// storage to edge switches.
func RunFig2(seed int64) *Fig2Result {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		panic(err)
	}
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	cfg := scaledSimConfig()
	cfg.HostLinkBandwidthBps = cfg.LinkBandwidthBps // uniform rating for the CDF
	sim := netsim.New(ft.Topology, router, nil, cfg, seed)
	// The motivating CDF reproduces the *measurement conditions* of the
	// Benson et al. study the paper cites: skewed host popularity (zipf
	// endpoints — most access links idle, a few hot) over an oversubscribed
	// fabric. The structural 1:1 fat-tree is rated 4:1 at the core for the
	// utilization normalization (see DESIGN.md substitutions).
	rng := rand.New(rand.NewSource(seed))
	zipf := func() topology.NodeID {
		// P(host h) ∝ 1/(h+1): host 0 is ~12x hotter than host 15.
		var weights []float64
		total := 0.0
		for i := range ft.HostIDs {
			w := 1 / float64(i+1)
			weights = append(weights, w)
			total += w
		}
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return ft.HostIDs[i]
			}
		}
		return ft.HostIDs[len(ft.HostIDs)-1]
	}
	for i := 0; i < 48; i++ {
		src := zipf()
		dst := zipf()
		for dst == src {
			dst = zipf()
		}
		f := &workload.Flow{
			Src: src, Dst: dst, Key: netsim.FlowKey(i + 1),
			RatePPS: 220 * (0.7 + 0.6*rng.Float64()),
			Gaps:    workload.GapLognormal,
			Start:   0, Stop: 5 * netsim.Second,
		}
		f.Install(sim)
	}

	type linkClass struct {
		link  topology.LinkID
		class topology.Layer
	}
	// Layer classes follow the measurement convention of the Benson et
	// al. study the paper cites: "edge" is the access layer (host-facing
	// links), "aggregation" the agg-edge fabric, "core" the core-agg
	// links. Hotspot traffic leaves many access links idle while the
	// shared core concentrates whatever crosses pods.
	var classes []linkClass
	for _, l := range ft.Links {
		la, lb := ft.Node(l.A).Layer, ft.Node(l.B).Layer
		switch {
		case la == topology.LayerHost || lb == topology.LayerHost:
			classes = append(classes, linkClass{l.ID, topology.LayerEdge})
		case la == topology.LayerCore || lb == topology.LayerCore:
			classes = append(classes, linkClass{l.ID, topology.LayerCore})
		default:
			classes = append(classes, linkClass{l.ID, topology.LayerAggregation})
		}
	}

	var core, agg, edge []float64
	window := 100 * netsim.Millisecond
	prev := make([][2]int64, len(ft.Links))
	var sample func()
	sample = func() {
		for _, lc := range classes {
			cur := sim.Stats.LinkDirBytes[lc.link]
			for d := 0; d < 2; d++ {
				bits := float64(cur[d]-prev[lc.link][d]) * 8
				bw := float64(sim.Cfg.LinkBandwidthBps)
				if lc.class == topology.LayerCore {
					bw /= 4 // 4:1 oversubscription rating
				}
				util := bits / (window.Seconds() * bw)
				if util > 1 {
					util = 1 // rated utilization saturates
				}
				switch lc.class {
				case topology.LayerCore:
					core = append(core, util)
				case topology.LayerAggregation:
					agg = append(agg, util)
				case topology.LayerEdge, topology.LayerHost, topology.LayerUnknown:
					edge = append(edge, util)
				default:
					edge = append(edge, util)
				}
			}
			prev[lc.link] = cur
		}
		if sim.Now() < 5*netsim.Second {
			sim.After(window, sample)
		}
	}
	sim.At(window, sample)
	sim.Run(5 * netsim.Second)
	return &Fig2Result{
		Core: metrics.NewCDF(core),
		Agg:  metrics.NewCDF(agg),
		Edge: metrics.NewCDF(edge),
	}
}

// Render formats the CDF quantiles.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: link utilization CDF by layer (quantiles)\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %8s\n", "layer", "p10", "p50", "p90", "p99", "mean")
	row := func(name string, c *metrics.CDF) {
		fmt.Fprintf(&b, "%-8s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name,
			c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99), c.Mean())
	}
	row("core", r.Core)
	row("agg", r.Agg)
	row("edge", r.Edge)
	return b.String()
}

// --- Fig. 3: INT header size vs hops; path-encoding memory ----------------

// Fig3Row compares per-packet header bytes at a given hop count.
type Fig3Row struct {
	Hops                      int
	INTMDBytes, IntSightBytes int
	SpiderMonBytes, MARSBytes int
}

// Fig3Result holds the header-size sweep and the MAT memory comparison.
type Fig3Result struct {
	Rows []Fig3Row
	// Memory comparison on the K=4 fat-tree path set:
	MARSEntries, IntSightEntries int
	MARSBytes, IntSightBytes     int
	SavingsPct                   float64
}

// RunFig3 computes the Motivation #2 numbers: INT-MD headers grow with
// path length while ID-based encodings stay flat, and MARS's
// conflict-only MAT entries cost far less switch memory than IntSight's
// per-hop entries.
func RunFig3() *Fig3Result {
	const intMDPerHop = 8 // INT-MD metadata per hop (one 8-byte stack entry)
	res := &Fig3Result{}
	for hops := 1; hops <= 10; hops++ {
		res.Rows = append(res.Rows, Fig3Row{
			Hops:           hops,
			INTMDBytes:     12 + intMDPerHop*hops, // fixed INT header + stack
			IntSightBytes:  33,                    // fixed (paper)
			SpiderMonBytes: 4,
			MARSBytes:      pathid.DefaultConfig().HeaderBytes() + dataplane.TelemetryHeaderBytes,
		})
	}
	ft, err := topology.NewFatTree(4)
	if err != nil {
		panic(err)
	}
	paths := ft.AllEdgePairPaths()
	tbl, err := pathid.BuildTable(pathid.DefaultConfig(), ft.Topology, paths)
	if err != nil {
		panic(err)
	}
	res.MARSEntries = tbl.MATEntryCount()
	res.MARSBytes = tbl.MemoryBytes()
	res.IntSightEntries = pathid.IntSightMATEntries(paths)
	res.IntSightBytes = pathid.IntSightMemoryBytes(paths)
	res.SavingsPct = 100 * (1 - float64(res.MARSBytes)/float64(res.IntSightBytes))
	return res
}

// Render formats the Fig 3 tables.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 (left): telemetry header bytes per packet vs path length\n")
	fmt.Fprintf(&b, "%-6s %8s %10s %11s %6s\n", "hops", "INT-MD", "IntSight", "SpiderMon", "MARS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %8d %10d %11d %6d\n", row.Hops, row.INTMDBytes, row.IntSightBytes, row.SpiderMonBytes, row.MARSBytes)
	}
	fmt.Fprintf(&b, "\nFig 3 (right) / §5.5: PathID switch memory on K=4 fat-tree (%d ordered paths)\n", 208)
	fmt.Fprintf(&b, "MARS:     %4d MAT entries, %6d B\n", r.MARSEntries, r.MARSBytes)
	fmt.Fprintf(&b, "IntSight: %4d MAT entries, %6d B\n", r.IntSightEntries, r.IntSightBytes)
	fmt.Fprintf(&b, "MARS saves %.1f%% switch memory\n", r.SavingsPct)
	return b.String()
}

// --- Fig. 5: dynamic vs static threshold on diurnal load ------------------

// Fig5Point is one sample of the threshold-tracking trace.
type Fig5Point struct {
	T              netsim.Time
	Latency        float64
	DynamicThr     float64
	StaticThr      float64
	IsAnomaly      bool // ground truth (injected spike)
	DynamicFlagged bool
	StaticFlagged  bool
}

// Fig5Result is the full trace plus summary counts.
type Fig5Result struct {
	Points []Fig5Point
	// False positives/negatives per detector (static = high pick; the low
	// pick is tallied separately).
	DynFP, DynFN, StaFP, StaFN, StaLowFP, StaLowFN int
}

// RunFig5 reproduces the Fig. 5 illustration: latency follows a diurnal
// load curve; a static threshold either misses the spike or false-alarms
// at the daily peak, while the reservoir's dynamic threshold tracks the
// baseline and catches the spike.
func RunFig5(seed int64) *Fig5Result {
	rng := rand.New(rand.NewSource(seed))
	day := 20 * netsim.Second // compressed "day"
	rate := workload.Diurnal(0.3, 1.0, day)
	res := reservoir.New(reservoir.Config{
		Volume: 128, StaticProb: 0.5, C: 6, Scale: reservoir.ScaleMAD,
		Penalty: reservoir.PenaltyText, DefaultThreshold: 1e12, MinSamples: 8,
	}, rng)

	// Latency scales with load (queueing): base 1 ms, up to ~5 ms at peak.
	latAt := func(t netsim.Time) float64 {
		load := rate(t)
		base := 1e6 + 4e6*load*load
		return base * (1 + 0.1*rng.NormFloat64())
	}
	// Two static picks illustrate the dilemma: the high threshold clears
	// the daily peak but misses a trough-time spike; the low threshold
	// catches the spike but false-alarms every peak (Fig. 5's green zone).
	staticHigh, staticLow := 8e6, 3e6

	out := &Fig5Result{}
	// The spike lands in the diurnal trough, where latency is low.
	spikeStart, spikeEnd := 2500*netsim.Millisecond, 3500*netsim.Millisecond
	for t := netsim.Time(0); t < day; t += 50 * netsim.Millisecond {
		l := latAt(t)
		anomaly := t >= spikeStart && t < spikeEnd
		if anomaly {
			l *= 4 // the spike
		}
		dynFlag := res.Input(l)
		staHighFlag := l > staticHigh
		staLowFlag := l > staticLow
		out.Points = append(out.Points, Fig5Point{
			T: t, Latency: l, DynamicThr: res.Threshold(), StaticThr: staticHigh,
			IsAnomaly: anomaly, DynamicFlagged: dynFlag, StaticFlagged: staHighFlag,
		})
		switch {
		case dynFlag && !anomaly:
			out.DynFP++
		case !dynFlag && anomaly:
			out.DynFN++
		}
		switch {
		case staHighFlag && !anomaly:
			out.StaFP++
		case !staHighFlag && anomaly:
			out.StaFN++
		}
		switch {
		case staLowFlag && !anomaly:
			out.StaLowFP++
		case !staLowFlag && anomaly:
			out.StaLowFN++
		}
	}
	return out
}

// Render summarizes the trace.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: dynamic vs static threshold over a diurnal day with one spike\n")
	fmt.Fprintf(&b, "samples=%d  dynamic: FP=%d FN=%d   static-high: FP=%d FN=%d   static-low: FP=%d FN=%d\n",
		len(r.Points), r.DynFP, r.DynFN, r.StaFP, r.StaFN, r.StaLowFP, r.StaLowFN)
	// Downsampled trace for plotting.
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %s\n", "t(s)", "latency(ms)", "dynThr(ms)", "staThr(ms)", "flags")
	for i, p := range r.Points {
		if i%20 != 0 {
			continue
		}
		flags := ""
		if p.IsAnomaly {
			flags += "A"
		}
		if p.DynamicFlagged {
			flags += "d"
		}
		if p.StaticFlagged {
			flags += "s"
		}
		fmt.Fprintf(&b, "%-8.1f %12.2f %12.2f %12.2f %s\n",
			p.T.Seconds(), p.Latency/1e6, p.DynamicThr/1e6, p.StaticThr/1e6, flags)
	}
	return b.String()
}

// --- Fig. 7: fault symptom traces ------------------------------------------

// Fig7Result captures the two illustration traces.
type Fig7Result struct {
	// BurstLatencyMs: mean end-to-end latency per 100 ms window around a
	// micro-burst injection.
	BurstT         []float64
	BurstLatencyMs []float64
	// ECMP per-path throughput (pps) for the skewed group, per window.
	ECMPT        []float64
	ECMPHeavyPPS []float64
	ECMPLightPPS []float64
}

// RunFig7 reproduces the fault-injection symptom illustrations: the
// transient latency spike of a micro-burst (7a) and the diverging path
// throughputs under ECMP imbalance (7b).
func RunFig7(seed int64) *Fig7Result {
	out := &Fig7Result{}

	// (a) micro-burst latency trace: mean latency of traffic sinking at
	// the burst's destination rack (the affected path), as in the paper's
	// per-path illustration.
	{
		ft, _ := topology.NewFatTree(4)
		router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
		var winLat netsim.Time
		var winN int64
		hook := &latencyWindow{lat: &winLat, n: &winN}
		sim := netsim.New(ft.Topology, router, hook, scaledSimConfig(), seed)
		tc := DefaultTrialConfig(seed, faults.MicroBurst)
		installWorkload(tc, sim, ft)
		inj := faults.NewInjector(sim, ft, router)
		gt := inj.Inject(faults.MicroBurst, tc.FaultStart, netsim.Second)
		hook.sinkEdge = gt.BurstSinkEdge
		hook.topo = ft.Topology
		window := 100 * netsim.Millisecond
		var sample func()
		sample = func() {
			mean := 0.0
			if winN > 0 {
				mean = (netsim.Time(int64(winLat) / winN)).Millis()
			}
			out.BurstT = append(out.BurstT, sim.Now().Seconds())
			out.BurstLatencyMs = append(out.BurstLatencyMs, mean)
			winLat, winN = 0, 0
			if sim.Now() < tc.Total {
				sim.After(window, sample)
			}
		}
		sim.At(window, sample)
		sim.Run(tc.Total)
	}

	// (b) ECMP imbalance throughput split.
	{
		ft, _ := topology.NewFatTree(4)
		router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
		sim := netsim.New(ft.Topology, router, nil, scaledSimConfig(), seed)
		tc := DefaultTrialConfig(seed, faults.ECMPImbalance)
		installWorkload(tc, sim, ft)
		// Deterministic: skew edge 0's uplinks 1:8 during the window.
		e0 := ft.EdgeIDs[0]
		up := ft.AggIDs[:2]
		sim.At(tc.FaultStart, func() { router.SetWeight(e0, up[1], 8) })
		sim.At(tc.FaultStart+tc.FaultDur, func() { router.ResetWeights(e0) })
		p0, _ := ft.PortTo(e0, up[0])
		p1, _ := ft.PortTo(e0, up[1])
		l0 := ft.Node(e0).Ports[p0].Link
		l1 := ft.Node(e0).Ports[p1].Link
		// Count only the upward direction (edge -> agg).
		d0, d1 := 0, 0
		if ft.Links[l0].A != e0 {
			d0 = 1
		}
		if ft.Links[l1].A != e0 {
			d1 = 1
		}
		prev0, prev1 := int64(0), int64(0)
		window := 100 * netsim.Millisecond
		var sample func()
		sample = func() {
			c0, c1 := sim.Stats.LinkDirBytes[l0][d0], sim.Stats.LinkDirBytes[l1][d1]
			// Approximate pps by bytes/avg-size per window.
			const avgPkt = 700.0
			out.ECMPT = append(out.ECMPT, sim.Now().Seconds())
			out.ECMPLightPPS = append(out.ECMPLightPPS, float64(c0-prev0)/avgPkt/window.Seconds())
			out.ECMPHeavyPPS = append(out.ECMPHeavyPPS, float64(c1-prev1)/avgPkt/window.Seconds())
			prev0, prev1 = c0, c1
			if sim.Now() < tc.Total {
				sim.After(window, sample)
			}
		}
		sim.At(window, sample)
		sim.Run(tc.Total)
	}
	return out
}

type latencyWindow struct {
	netsim.NopHooks
	lat      *netsim.Time
	n        *int64
	topo     *topology.Topology
	sinkEdge topology.NodeID
}

func (l *latencyWindow) OnDeliver(s *netsim.Simulator, _ topology.NodeID, pkt *netsim.Packet) {
	if l.topo != nil {
		if edge, ok := l.topo.EdgeSwitchOf(pkt.Dst); !ok || edge != l.sinkEdge {
			return
		}
	}
	*l.lat += s.Now() - pkt.SendTime
	*l.n++
}

// Render prints both traces.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7a: mean e2e latency (ms) per 100 ms window; burst at t=2.0-3.0s\n")
	for i := range r.BurstT {
		fmt.Fprintf(&b, "  t=%.1f lat=%.2f\n", r.BurstT[i], r.BurstLatencyMs[i])
	}
	fmt.Fprintf(&b, "Fig 7b: per-uplink throughput (pps); skew 1:8 at t=2.0-3.5s\n")
	for i := range r.ECMPT {
		fmt.Fprintf(&b, "  t=%.1f light=%.0f heavy=%.0f\n", r.ECMPT[i], r.ECMPLightPPS[i], r.ECMPHeavyPPS[i])
	}
	return b.String()
}

// --- Fig. 8: anomaly detection effectiveness -------------------------------

// Fig8Row is one detector's scores.
type Fig8Row struct {
	Name string
	metrics.Confusion
}

// Fig8Result compares static thresholds against the reservoir variants.
type Fig8Result struct {
	Rows []Fig8Row
}

// RunFig8 evaluates detectors on labeled synthetic latency streams: many
// flows with diurnal baselines and injected latency anomalies. Static
// thresholds trade recall against precision; the reservoir with the
// penalty factor scores best, and removing the penalty costs recall
// because sustained anomalies inflate the threshold (the paper's Fig. 8
// story).
func RunFig8(seed int64, flows, samplesPerFlow int) *Fig8Result {
	rng := rand.New(rand.NewSource(seed))
	type det struct {
		name string
		mk   func() reservoir.Detector
	}
	mkRes := func(p reservoir.PenaltyMode, scale reservoir.Scale) func() reservoir.Detector {
		return func() reservoir.Detector {
			return reservoir.New(reservoir.Config{
				Volume: 128, StaticProb: 0.5, C: 6, Scale: scale,
				Penalty: p, DefaultThreshold: 1e12, MinSamples: 8,
			}, rand.New(rand.NewSource(rng.Int63())))
		}
	}
	dets := []det{
		{"static-low", func() reservoir.Detector { return &reservoir.StaticDetector{Threshold: 4e6} }},
		{"static-mid", func() reservoir.Detector { return &reservoir.StaticDetector{Threshold: 8e6} }},
		{"static-high", func() reservoir.Detector { return &reservoir.StaticDetector{Threshold: 16e6} }},
		{"reservoir", mkRes(reservoir.PenaltyText, reservoir.ScaleMAD)},
		{"reservoir-noalpha", mkRes(reservoir.PenaltyOff, reservoir.ScaleMAD)},
		{"reservoir-stddev", mkRes(reservoir.PenaltyText, reservoir.ScaleStddev)},
	}
	confusions := make([]metrics.Confusion, len(dets))

	day := netsim.Time(samplesPerFlow) * 50 * netsim.Millisecond
	for f := 0; f < flows; f++ {
		// Per-flow baseline level and diurnal phase.
		base := 0.3e6 + rng.Float64()*5.7e6
		curve := workload.Diurnal(0.3, 1.0, day)
		insts := make([]reservoir.Detector, len(dets))
		for i, d := range dets {
			insts[i] = d.mk()
		}
		// One sustained anomaly window per flow (20% of the stream).
		aStart := rng.Intn(samplesPerFlow / 2)
		aEnd := aStart + samplesPerFlow/5
		for s := 0; s < samplesPerFlow; s++ {
			t := netsim.Time(s) * 50 * netsim.Millisecond
			l := base * (1 + 3*curve(t)) * (1 + 0.1*rng.NormFloat64())
			anomaly := s >= aStart && s < aEnd
			if anomaly {
				l *= 3.5
			}
			warm := s >= samplesPerFlow/10 // let reservoirs fill before scoring
			for i := range insts {
				flag := insts[i].Input(l)
				if warm {
					confusions[i].Add(flag, anomaly)
				}
			}
		}
	}
	out := &Fig8Result{}
	for i, d := range dets {
		out.Rows = append(out.Rows, Fig8Row{Name: d.name, Confusion: confusions[i]})
	}
	return out
}

// Render formats the detector comparison.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: anomaly detection effectiveness\n")
	fmt.Fprintf(&b, "%-20s %9s %9s %9s\n", "detector", "precision", "recall", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %9.3f %9.3f %9.3f\n", row.Name, row.Precision(), row.Recall(), row.F1())
	}
	return b.String()
}

// --- Fig. 9: bandwidth overhead --------------------------------------------

// Fig9Row is one system's overhead, averaged over trials.
type Fig9Row struct {
	System         SystemKind
	TelemetryBytes float64
	DiagnosisBytes float64
	// PctOfTraffic is total overhead relative to all link traffic.
	PctOfTraffic float64
}

// Fig9Result compares the four systems' bandwidth costs.
type Fig9Result struct {
	Rows []Fig9Row
}

// RunFig9 measures overhead with the default engine options.
func RunFig9(baseSeed int64) *Fig9Result {
	return RunFig9With(EngineOptions{}, baseSeed)
}

// RunFig9With measures overhead in the same Table 1 scenarios: telemetry
// bytes are extra in-band header bytes crossing links; diagnosis bytes are
// control-channel exchanges. One trial per fault kind per system — the
// SeedPlan's trial-0 seeds, i.e. exactly the scenarios Table 1 already
// ran, so when RunTable1 preceded this in the same process (as in
// `mars-bench -exp all`), every trial is recalled from the shared result
// cache instead of re-simulated.
func RunFig9With(opts EngineOptions, baseSeed int64) *Fig9Result {
	plan := opts.plan()
	type unit struct {
		sys  SystemKind
		kind faults.Kind
	}
	var (
		units []unit
		tcs   []TrialConfig
		ts    []harness.Trial
	)
	for _, sys := range Systems() {
		for _, kind := range faults.Kinds() {
			seed := plan.TrialSeed(baseSeed, int(kind), 0)
			tc := DefaultTrialConfig(seed, kind)
			tc.CtrlSeed = plan.CtrlChanSeed(seed)
			units = append(units, unit{sys, kind})
			tcs = append(tcs, tc)
			ts = append(ts, harness.Trial{
				Index: len(ts), Seed: seed,
				Label: fmt.Sprintf("fig9/%s/%s", sys, kind),
			})
		}
	}
	results := mustRun(opts, ts, func(tr harness.Trial) TrialResult {
		return opts.runTrial(units[tr.Index].sys, tcs[tr.Index])
	})
	out := &Fig9Result{}
	var tel, diag, total float64
	n := 0
	for i, r := range results {
		tel += float64(r.TelemetryBytes)
		diag += float64(r.DiagnosisBytes)
		total += float64(r.TotalLinkBytes)
		n++
		if i+1 == len(results) || units[i+1].sys != units[i].sys {
			out.Rows = append(out.Rows, Fig9Row{
				System:         units[i].sys,
				TelemetryBytes: tel / float64(n),
				DiagnosisBytes: diag / float64(n),
				PctOfTraffic:   100 * (tel + diag) / total,
			})
			tel, diag, total, n = 0, 0, 0, 0
		}
	}
	return out
}

// Render formats the overhead comparison.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: bandwidth overhead per 4 s run (mean over 5 fault scenarios)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %12s\n", "system", "telemetry(B)", "diagnosis(B)", "% of traffic")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %14.0f %14.0f %12.3f\n", row.System, row.TelemetryBytes, row.DiagnosisBytes, row.PctOfTraffic)
	}
	return b.String()
}

// --- Fig. 10: switch resources vs Ring Table size --------------------------

// Fig10Result sweeps the Ring Table size through the resource model.
type Fig10Result struct {
	Rows []dataplane.ResourceUsage
}

// RunFig10 evaluates the resource model at the paper's sweep points using
// the real MAT entry count of the K=4 path set and representative table
// occupancies from a trial run.
func RunFig10() *Fig10Result {
	ft, _ := topology.NewFatTree(4)
	tbl, err := pathid.BuildTable(pathid.DefaultConfig(), ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		panic(err)
	}
	out := &Fig10Result{}
	for _, rs := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		out.Rows = append(out.Rows, dataplane.ModelResources(rs, tbl.MATEntryCount(), 16, 64))
	}
	return out
}

// Render formats the sweep.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: switch resource usage vs Ring Table size (%% of Tofino capacity)\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %8s %12s\n", "ring", "SRAM", "PHV", "HashBits", "TCAM", "ActionData")
	for _, u := range r.Rows {
		fmt.Fprintf(&b, "%-8d %8.3f %8.3f %10.3f %8.3f %12.3f\n",
			u.RingSize, u.SRAMPct, u.PHVPct, u.HashBitsPct, u.TCAMPct, u.ActionDataPct)
	}
	return b.String()
}

// --- §5.5 PathID memory (standalone) ---------------------------------------

// PathIDMemoryResult compares encodings across widths and algorithms.
type PathIDMemoryResult struct {
	Rows []PathIDMemoryRow
	// IntSight baseline:
	IntSightEntries, IntSightBytes int
}

// PathIDMemoryRow is one (algorithm, width) configuration.
type PathIDMemoryRow struct {
	Alg     string
	Width   uint
	Entries int
	Bytes   int
}

// RunPathIDMemory sweeps hash configurations over the K=4 path set.
func RunPathIDMemory() *PathIDMemoryResult {
	ft, _ := topology.NewFatTree(4)
	paths := ft.AllEdgePairPaths()
	out := &PathIDMemoryResult{
		IntSightEntries: pathid.IntSightMATEntries(paths),
		IntSightBytes:   pathid.IntSightMemoryBytes(paths),
	}
	for _, cfg := range []pathid.Config{
		{Alg: pathid.CRC16, Width: 8},
		{Alg: pathid.CRC16, Width: 12},
		{Alg: pathid.CRC16, Width: 16},
		{Alg: pathid.CRC32, Width: 8},
		{Alg: pathid.CRC32, Width: 16},
	} {
		tbl, err := pathid.BuildTable(cfg, ft.Topology, paths)
		if err != nil {
			continue
		}
		out.Rows = append(out.Rows, PathIDMemoryRow{
			Alg: cfg.Alg.String(), Width: cfg.Width,
			Entries: tbl.MATEntryCount(), Bytes: tbl.MemoryBytes(),
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Alg != out.Rows[j].Alg {
			return out.Rows[i].Alg < out.Rows[j].Alg
		}
		return out.Rows[i].Width < out.Rows[j].Width
	})
	return out
}

// Render formats the sweep.
func (r *PathIDMemoryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.5: PathID MAT entries on K=4 fat-tree (208 ordered paths)\n")
	fmt.Fprintf(&b, "%-8s %6s %8s %8s\n", "hash", "width", "entries", "bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %6d %8d %8d\n", row.Alg, row.Width, row.Entries, row.Bytes)
	}
	fmt.Fprintf(&b, "IntSight baseline: %d entries, %d bytes\n", r.IntSightEntries, r.IntSightBytes)
	return b.String()
}
