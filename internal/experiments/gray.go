package experiments

import (
	"fmt"
	"strings"

	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/metrics"
	"mars/internal/netsim"
	"mars/internal/rca"
)

// The gray experiment measures fault localization under the failures the
// paper's clean five-scenario suite never exercises: silent partial drop,
// link flapping, hard link failure (topology churn), switch reboots that
// wipe register state, a degraded uplink masked by its own ECMP reaction,
// and a correlated two-root episode. Every scenario runs twice — once
// with the paper's five signatures (mode "paper") and once with
// compound-cause disambiguation enabled (mode "compound") — so the grid
// shows exactly where the paper breaks and what the new signatures
// recover.

// GrayMode selects the analyzer configuration a gray trial runs under.
type GrayMode uint8

const (
	// GrayPaper is the unmodified five-signature analyzer.
	GrayPaper GrayMode = iota
	// GrayCompound enables rca.Config.CompoundCauses.
	GrayCompound
)

// GrayModes lists the grid's column groups in order.
func GrayModes() []GrayMode { return []GrayMode{GrayPaper, GrayCompound} }

func (m GrayMode) String() string {
	if m == GrayCompound {
		return "compound"
	}
	return "paper"
}

// GrayScenario is one row of the gray grid: a named fault schedule.
type GrayScenario struct {
	Name     string
	Schedule faults.Schedule
}

// GrayScenarios lists the suite. Windows sit inside the standard 2 s
// warmup / 4 s total trial timeline; the reboot is short (switches come
// back) and the correlated row overlaps two independent roots.
func GrayScenarios() []GrayScenario {
	const (
		sec = netsim.Second
		ms  = netsim.Millisecond
	)
	return []GrayScenario{
		{"silent-drop", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.SilentDrop, Start: 2 * sec, Dur: 1500 * ms},
		}}},
		{"link-flap", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.LinkFlap, Start: 2 * sec, Dur: 1500 * ms},
		}}},
		{"link-down", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.LinkDown, Start: 2 * sec, Dur: 800 * ms},
		}}},
		{"switch-reboot", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.SwitchReboot, Start: 2 * sec, Dur: 300 * ms},
		}}},
		{"uplink-degrade", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.UplinkDegrade, Start: 2 * sec, Dur: 1500 * ms},
		}}},
		{"delay+drop", faults.Schedule{Injections: []faults.Injection{
			{Kind: faults.Delay, Start: 2 * sec, Dur: 1500 * ms},
			{Kind: faults.Drop, Start: 2300 * ms, Dur: 1000 * ms},
		}}},
	}
}

// GrayCell aggregates one (scenario, mode) cell.
type GrayCell struct {
	// Link scores ranks at link precision: for link-scoped roots the
	// culprit must name both endpoints; node-scoped roots fall back to
	// switch containment.
	Link metrics.Localization
	// Sw scores ranks at switch precision (containment, non-flow).
	Sw metrics.Localization
	// CauseHits counts trials where some top-3 culprit matched a root's
	// location AND its true cause class.
	CauseHits int
	// Detected counts trials with at least one post-fault diagnosis.
	Detected int
	Trials   int
}

// GrayResult holds the scenario x mode grid.
type GrayResult struct {
	Trials int
	Cells  map[string]map[GrayMode]*GrayCell
}

// grayOutcome is one trial's episode-aware score.
type grayOutcome struct {
	LinkRank int // best rank over roots at link precision; 0 = missed
	SwRank   int // best rank over roots at switch precision
	CauseHit bool
	Detected bool
}

// RunGray runs the gray suite with default engine options.
func RunGray(trials int, baseSeed int64) *GrayResult {
	return RunGrayWith(EngineOptions{}, trials, baseSeed)
}

// grayKindIndex offsets the seed-plan fault index so gray seeds never
// collide with the Table 1 kinds (0..4) or the ctrlchan sweeps.
const grayKindIndex = 100

// RunGrayWith runs the gray/correlated/churn suite on the harness: MARS
// only, every scenario in both analyzer modes, scored against the episode
// ground truth (roots only — consequences are the distractors). Both
// modes of a trial share one seed, so they face the identical episode and
// the grid isolates the analyzer change. Results aggregate in declaration
// order and are byte-identical for any worker count.
func RunGrayWith(opts EngineOptions, trials int, baseSeed int64) *GrayResult {
	plan := opts.plan()
	scens := GrayScenarios()
	type unit struct {
		scen int
		mode GrayMode
	}
	var (
		units []unit
		tcs   []TrialConfig
		ts    []harness.Trial
	)
	res := &GrayResult{
		Trials: trials,
		Cells:  make(map[string]map[GrayMode]*GrayCell),
	}
	for si, sc := range scens {
		res.Cells[sc.Name] = make(map[GrayMode]*GrayCell)
		for _, mode := range GrayModes() {
			res.Cells[sc.Name][mode] = &GrayCell{}
		}
		for t := 0; t < trials; t++ {
			seed := plan.TrialSeed(baseSeed, grayKindIndex+si, t)
			tc := DefaultTrialConfig(seed, faults.SilentDrop)
			tc.CtrlSeed = plan.CtrlChanSeed(seed)
			// FaultStart separates detections from false alarms; use the
			// episode's earliest window.
			tc.FaultStart, tc.FaultDur = scheduleWindow(sc.Schedule)
			for _, mode := range GrayModes() {
				units = append(units, unit{si, mode})
				tcs = append(tcs, tc)
				ts = append(ts, harness.Trial{
					Index: len(ts), Seed: seed,
					Label: fmt.Sprintf("gray/%s/%s/t%d", sc.Name, mode, t),
				})
			}
		}
	}
	outcomes, err := harness.Run(opts.config(), ts, func(tr harness.Trial) grayOutcome {
		u := units[tr.Index]
		return runGrayTrial(tcs[tr.Index], scens[u.scen].Schedule, u.mode == GrayCompound)
	})
	if err != nil {
		panic(err)
	}
	for i, o := range outcomes {
		cell := res.Cells[scens[units[i].scen].Name][units[i].mode]
		cell.Trials++
		cell.Link.Add(o.LinkRank)
		cell.Sw.Add(o.SwRank)
		if o.CauseHit {
			cell.CauseHits++
		}
		if o.Detected {
			cell.Detected++
		}
	}
	return res
}

// scheduleWindow returns the episode's overall [start, dur] envelope.
func scheduleWindow(s faults.Schedule) (netsim.Time, netsim.Time) {
	var start, end netsim.Time
	for i, in := range s.Injections {
		if i == 0 || in.Start < start {
			start = in.Start
		}
		if e := in.Start + in.Dur; e > end {
			end = e
		}
	}
	return start, end - start
}

// runGrayTrial runs one MARS trial over a fault schedule. It bypasses the
// shared trial cache (episodes are not TrialConfig-keyed) but uses the
// same substrate path as every other driver.
func runGrayTrial(tc TrialConfig, sched faults.Schedule, compound bool) grayOutcome {
	m := &marsSystem{mutateRCA: func(c *rca.Config) { c.CompoundCauses = compound }}
	ft := newFatTree(tc)
	sub := newSubstrate(tc, ft, m.Build(tc, ft))
	inj := faults.NewInjector(sub.Sim, ft, sub.Router)
	inj.ScheduleSeed = tc.Seed
	m.Start(tc, sub, inj)
	installWorkload(tc, sub.Sim, ft)
	ep := inj.Apply(sched)
	sub.Sim.Run(tc.Total)

	ranked := rca.MergeRanked(m.lists)
	out := grayOutcome{Detected: m.detected}
	for _, gt := range ep.Roots() {
		if r := rankWhere(ranked, gt, grayLinkMatch); r > 0 && (out.LinkRank == 0 || r < out.LinkRank) {
			out.LinkRank = r
		}
		if r := rankWhere(ranked, gt, graySwitchMatch); r > 0 && (out.SwRank == 0 || r < out.SwRank) {
			out.SwRank = r
		}
		if !out.CauseHit {
			want := grayCauseWant(gt.Kind)
			for i, c := range ranked {
				if i >= 3 {
					break
				}
				if c.Cause == want && graySwitchMatch(c, gt) {
					out.CauseHit = true
					break
				}
			}
		}
	}
	return out
}

// rankWhere returns the 1-based rank of the first culprit matching gt
// under the given rule (0 = none).
func rankWhere(ranked []rca.Culprit, gt faults.GroundTruth, match func(rca.Culprit, faults.GroundTruth) bool) int {
	for i, c := range ranked {
		if match(c, gt) {
			return i + 1
		}
	}
	return 0
}

// grayLinkMatch is the strict location rule: a link-scoped root is
// located only by a port-level culprit naming both endpoints (in either
// orientation); node-scoped roots fall back to switch containment.
func grayLinkMatch(c rca.Culprit, gt faults.GroundTruth) bool {
	//mars:partial only link-scoped kinds need the strict both-endpoints rule; every node-scoped kind intentionally falls back to switch containment via graySwitchMatch
	switch gt.Kind {
	case faults.SilentDrop, faults.LinkFlap, faults.LinkDown, faults.UplinkDegrade:
		if c.Level != rca.LevelPort || len(c.Location) != 2 {
			return false
		}
		a, b := c.Location[0], c.Location[1]
		return (a == gt.Switch && b == gt.Peer) || (a == gt.Peer && b == gt.Switch)
	default:
		return graySwitchMatch(c, gt)
	}
}

// graySwitchMatch is switch-level containment (non-flow culprits). For a
// link-scoped fault either endpoint counts: an operator inspecting either
// switch finds the link. The strict both-endpoints rule is grayLinkMatch.
func graySwitchMatch(c rca.Culprit, gt faults.GroundTruth) bool {
	if c.Level == rca.LevelFlow {
		return false
	}
	if c.ContainsSwitch(gt.Switch) {
		return true
	}
	return gt.Peer >= 0 && c.ContainsSwitch(gt.Peer)
}

// grayCauseWant maps a root kind to its true cause class. Paper mode
// cannot emit the gray classes at all — its cause accuracy on those rows
// is zero by construction, which is the point of the comparison.
func grayCauseWant(k faults.Kind) rca.Cause {
	//mars:partial every loss-class kind (SilentDrop, LinkDown, Drop, ...) deliberately maps to CauseDrop through the default: loss is loss
	switch k {
	case faults.LinkFlap:
		return rca.CauseLinkFlap
	case faults.SwitchReboot:
		return rca.CauseSwitchReboot
	case faults.UplinkDegrade:
		return rca.CauseLinkDegrade
	case faults.Delay:
		return rca.CauseDelay
	default: // SilentDrop, LinkDown, Drop: loss is loss
		return rca.CauseDrop
	}
}

// Render formats the grid, paper vs compound per scenario.
func (r *GrayResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gray failures, correlated faults, and topology churn (%d trials per scenario)\n", r.Trials)
	fmt.Fprintf(&b, "%-15s %-9s %5s %8s %8s %6s %6s %7s %8s\n",
		"Scenario", "Mode", "Det", "linkR@1", "linkR@3", "swR@1", "swR@3", "Cause@3", "Exam")
	for _, sc := range GrayScenarios() {
		for _, mode := range GrayModes() {
			c := r.Cells[sc.Name][mode]
			n := c.Trials
			if n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "%-15s %-9s %5.2f %8.2f %8.2f %6.2f %6.2f %7.2f %8.2f\n",
				sc.Name, mode,
				float64(c.Detected)/float64(n),
				c.Link.RecallAt(1), c.Link.RecallAt(3),
				c.Sw.RecallAt(1), c.Sw.RecallAt(3),
				float64(c.CauseHits)/float64(n),
				c.Link.MeanExamScore())
		}
	}
	return b.String()
}
