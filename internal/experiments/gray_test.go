package experiments

import (
	"strings"
	"testing"
)

// The gray suite must render byte-identically for any worker count —
// parallelism may only change wall-clock time. This is the same guarantee
// the other drivers pin, extended to the schedule-based trials that bypass
// the shared result cache.
func TestGrayDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full gray suite in -short mode")
	}
	one := RunGrayWith(EngineOptions{Workers: 1, DisableCache: true}, 2, 77).Render()
	eight := RunGrayWith(EngineOptions{Workers: 8, DisableCache: true}, 2, 77).Render()
	if one != eight {
		t.Fatalf("gray grid differs between 1 and 8 workers:\n--- w1 ---\n%s--- w8 ---\n%s", one, eight)
	}
}

// Both analyzer modes of every scenario appear in the rendered grid, and
// every trial of every scenario is detected or not without panicking —
// the smoke-level contract the CI job relies on.
func TestGrayRenderCoversGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full gray suite in -short mode")
	}
	out := RunGrayWith(EngineOptions{Workers: 4}, 1, 33).Render()
	for _, sc := range GrayScenarios() {
		if !strings.Contains(out, sc.Name) {
			t.Errorf("grid lacks scenario %q:\n%s", sc.Name, out)
		}
	}
	for _, mode := range []string{"paper", "compound"} {
		if !strings.Contains(out, mode) {
			t.Errorf("grid lacks mode %q:\n%s", mode, out)
		}
	}
}

// The episode window helper spans overlapping injections.
func TestScheduleWindowEnvelope(t *testing.T) {
	scens := GrayScenarios()
	last := scens[len(scens)-1] // delay+drop: 2s+1.5s and 2.3s+1.0s
	start, dur := scheduleWindow(last.Schedule)
	if start != 2_000_000_000 || dur != 1_500_000_000 {
		t.Fatalf("envelope = start %v dur %v", start, dur)
	}
}
