package experiments

import (
	"testing"

	"mars/internal/faults"
	"mars/internal/metrics"
)

// TestMARSAggregate runs several MARS trials per fault and reports R@k —
// the integration health check for Table 1's MARS column.
func TestMARSAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	trials := 8
	for _, kind := range faults.Kinds() {
		var loc metrics.Localization
		for i := 0; i < trials; i++ {
			tc := DefaultTrialConfig(int64(1000+i*37), kind)
			r := RunTrial(SysMARS, tc)
			loc.Add(r.Rank)
			if r.Rank == 0 || r.Rank > 2 {
				t.Logf("  MISS %v seed=%d rank=%d gt=%v detected=%v", kind, 1000+i*37, r.Rank, r.GT, r.Detected)
			}
		}
		t.Logf("%-14s R@1=%.2f R@2=%.2f R@3=%.2f R@5=%.2f exam=%.1f",
			kind, loc.RecallAt(1), loc.RecallAt(2), loc.RecallAt(3), loc.RecallAt(5), loc.MeanExamScore())
	}
}
