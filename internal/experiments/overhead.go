package experiments

import (
	"fmt"
	"strings"

	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/metrics"
)

// The overhead experiment (this repository's addition, extending the
// paper's Fig. 2 / §4.2 low-cost argument): MARS runs the Table 1 fault
// suite under each registered telemetry codec, measuring the
// cost–accuracy frontier the fixed 11-byte header occupies. Cost is
// in-band bytes per packet and link-utilization inflation; accuracy is
// detection F1 (post-fault diagnosis vs. pre-fault false alarms) and the
// paper's R@k / Exam Score. The perhop codec (classic INT) bounds the
// frontier from above on cost with identical accuracy; sampled bounds it
// from below; pintlike sits between, paying 5 extra bytes for per-hop
// visibility mars11 gives up.

// OverheadCodecs is the swept codec order (cheap to expensive in
// bytes/packet, with the paper's default first).
var OverheadCodecs = []string{"mars11", "sampled", "pintlike", "perhop"}

// OverheadRow aggregates one codec over the fault suite.
type OverheadRow struct {
	Codec string
	Loc   metrics.Localization
	// Det is per-trial detection: a trial scores TP when a diagnosis
	// completed after fault start, FN when none did, and one FP when any
	// diagnosis completed before the fault (a false alarm on the healthy
	// network).
	Det metrics.Confusion
	// Byte totals over all trials.
	TelemetryBytes int64
	TotalLinkBytes int64
	DiagnosisBytes int64
	// Packets / TelemetryPackets total end-to-end and promoted packets.
	Packets          int64
	TelemetryPackets int64
	// Detected counts trials with at least one post-fault diagnosis.
	Detected int
}

// BytesPerPacket is the mean in-band telemetry overhead per end-to-end
// packet (PathID field + codec headers).
func (r *OverheadRow) BytesPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.TelemetryBytes) / float64(r.Packets)
}

// UtilizationInflation is the relative link-byte increase telemetry
// causes: telemetry bytes over non-telemetry bytes.
func (r *OverheadRow) UtilizationInflation() float64 {
	base := r.TotalLinkBytes - r.TelemetryBytes
	if base <= 0 {
		return 0
	}
	return float64(r.TelemetryBytes) / float64(base)
}

// OverheadResult is the full frontier.
type OverheadResult struct {
	Trials int
	Rows   []OverheadRow
}

// RunOverhead sweeps the codecs with default engine options.
func RunOverhead(trials int, baseSeed int64) *OverheadResult {
	return RunOverheadWith(EngineOptions{}, trials, baseSeed)
}

// RunOverheadWith runs the codec sweep on the harness. Seeds derive
// exactly as in RunTable1, so every codec faces the same fault sequence
// and the mars11 row reproduces Table 1's MARS accuracy; per-row
// aggregation walks results in the (codec, fault, trial) nesting order,
// keeping the frontier deterministic under a fixed base seed and any
// worker count.
func RunOverheadWith(opts EngineOptions, trials int, baseSeed int64) *OverheadResult {
	plan := opts.plan()
	res := &OverheadResult{Trials: trials}
	var (
		tcs   []TrialConfig
		rowOf []int
		ts    []harness.Trial
	)
	for _, codec := range OverheadCodecs {
		res.Rows = append(res.Rows, OverheadRow{Codec: codec})
		row := len(res.Rows) - 1
		for _, kind := range faults.Kinds() {
			for t := 0; t < trials; t++ {
				seed := plan.TrialSeed(baseSeed, int(kind), t)
				tc := DefaultTrialConfig(seed, kind)
				tc.CtrlSeed = plan.CtrlChanSeed(seed)
				tc.Codec = codec
				tcs = append(tcs, tc)
				rowOf = append(rowOf, row)
				ts = append(ts, harness.Trial{
					Index: len(ts), Seed: seed,
					Label: fmt.Sprintf("overhead/%s/%s/t%d", codec, kind, t),
				})
			}
		}
	}
	results := mustRun(opts, ts, func(tr harness.Trial) TrialResult {
		return opts.runTrial(SysMARS, tcs[tr.Index])
	})
	for i, r := range results {
		row := &res.Rows[rowOf[i]]
		row.Loc.Add(r.Rank)
		row.Det.Add(r.DiagDetected, true)
		if r.FalseAlarms > 0 {
			row.Det.Add(true, false)
		}
		row.TelemetryBytes += r.TelemetryBytes
		row.TotalLinkBytes += r.TotalLinkBytes
		row.DiagnosisBytes += r.DiagnosisBytes
		row.Packets += r.Packets
		row.TelemetryPackets += r.TelemetryPackets
		if r.DiagDetected {
			row.Detected++
		}
	}
	return res
}

// Row returns the sweep row for a codec, or nil.
func (r *OverheadResult) Row(codec string) *OverheadRow {
	for i := range r.Rows {
		if r.Rows[i].Codec == codec {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the cost–accuracy frontier.
func (r *OverheadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overhead frontier: telemetry codec cost vs accuracy (%d trials per fault)\n", r.Trials)
	fmt.Fprintf(&b, "%-10s %8s %8s %7s %7s %7s %6s %6s %8s\n",
		"codec", "B/pkt", "util+%", "det-P", "det-R", "det-F1", "R@1", "R@3", "Exam")
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %7.2f %7.2f %7.2f %6.2f %6.2f %8.2f\n",
			row.Codec, row.BytesPerPacket(), 100*row.UtilizationInflation(),
			row.Det.Precision(), row.Det.Recall(), row.Det.F1(),
			row.Loc.RecallAt(1), row.Loc.RecallAt(3), row.Loc.MeanExamScore())
	}
	return b.String()
}
