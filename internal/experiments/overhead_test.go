package experiments

import (
	"reflect"
	"strings"
	"testing"

	"mars/internal/faults"
)

// TestOverheadRowMath pins the derived cost metrics and rendering without
// running any simulation.
func TestOverheadRowMath(t *testing.T) {
	row := OverheadRow{Codec: "mars11", TelemetryBytes: 440, TotalLinkBytes: 10440, Packets: 100}
	if got := row.BytesPerPacket(); got != 4.4 {
		t.Errorf("BytesPerPacket = %v, want 4.4", got)
	}
	if got := row.UtilizationInflation(); got != 0.044 {
		t.Errorf("UtilizationInflation = %v, want 0.044", got)
	}
	var zero OverheadRow
	if zero.BytesPerPacket() != 0 || zero.UtilizationInflation() != 0 {
		t.Error("zero row must not divide by zero")
	}

	res := &OverheadResult{Trials: 1, Rows: []OverheadRow{row}}
	if res.Row("mars11") == nil || res.Row("nope") != nil {
		t.Error("Row lookup broken")
	}
	out := res.Render()
	if !strings.Contains(out, "mars11") || !strings.Contains(out, "B/pkt") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

// TestOverheadCodecTrialQuick runs one delay trial per codec and checks
// the frontier's deterministic properties: the default (empty) codec and
// an explicit mars11 are indistinguishable, repeated runs are identical,
// and per-trial telemetry cost orders sampled < mars11 < pintlike <
// perhop exactly as the declared wire widths dictate.
func TestOverheadCodecTrialQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tc := DefaultTrialConfig(5, faults.Delay)
	results := map[string]TrialResult{}
	for _, codec := range append([]string{""}, OverheadCodecs...) {
		c := tc
		c.Codec = codec
		results[codec] = RunTrial(SysMARS, c)
	}

	// The pluggable seam must be invisible when the paper's codec is
	// selected explicitly — same seed, same everything.
	if !reflect.DeepEqual(results[""], results["mars11"]) {
		t.Errorf("explicit mars11 diverged from the default path:\n%+v\n%+v",
			results[""], results["mars11"])
	}
	// And deterministic across repeats.
	c := tc
	c.Codec = "perhop"
	if again := RunTrial(SysMARS, c); !reflect.DeepEqual(again, results["perhop"]) {
		t.Errorf("perhop trial not deterministic:\n%+v\n%+v", again, results["perhop"])
	}

	cost := func(codec string) int64 { return results[codec].TelemetryBytes }
	if !(cost("sampled") < cost("mars11") && cost("mars11") < cost("pintlike") && cost("pintlike") < cost("perhop")) {
		t.Errorf("telemetry cost ordering wrong: sampled=%d mars11=%d pintlike=%d perhop=%d",
			cost("sampled"), cost("mars11"), cost("pintlike"), cost("perhop"))
	}
	for _, codec := range OverheadCodecs {
		if !results[codec].DiagDetected {
			t.Errorf("%s: delay fault went undetected", codec)
		}
		if results[codec].Packets == 0 || results[codec].TelemetryPackets == 0 {
			t.Errorf("%s: packet accounting empty: %+v", codec, results[codec])
		}
	}
}
