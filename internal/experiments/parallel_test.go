package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
	"testing"
	"time"

	"mars/internal/faults"
	"mars/internal/harness"
)

// renderDigest hashes a rendered experiment table; two runs agree iff
// every cell is byte-identical.
func renderDigest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// TestTable1ParallelDeterminism runs the full Table-1 suite sequentially
// and on an oversubscribed worker pool and requires byte-identical output.
// The cache is disabled so the second run actually re-executes every trial
// instead of echoing the first run's memoized results; with it enabled the
// comparison would be vacuously true. CI runs this under -race, so any
// unsynchronized sharing between trial workers fails the build even when
// the digests happen to agree.
//
// The parallel run doubles as the progress-wiring check (the same path
// mars-bench -progress uses): every trial must be reported exactly once.
func TestTable1ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table-1 suites are not short")
	}
	const (
		trials   = 1
		baseSeed = 4242
	)
	seq := RunTable1With(EngineOptions{Workers: 1, DisableCache: true}, trials, baseSeed).Render()

	var (
		mu sync.Mutex
		// seen counts completions per trial label; guarded by mu.
		seen = map[string]int{}
	)
	opts := EngineOptions{
		Workers:      8,
		DisableCache: true,
		Progress: func(done, total int, tr harness.Trial, _ time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			seen[tr.Label]++
			if done < 1 || done > total {
				t.Errorf("progress done=%d outside [1,%d]", done, total)
			}
		},
	}
	par := RunTable1With(opts, trials, baseSeed).Render()

	if renderDigest(seq) != renderDigest(par) {
		t.Fatalf("workers=1 and workers=8 rendered different tables:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "overall") {
		t.Fatalf("rendered table lacks the overall rows; determinism check is vacuous:\n%s", seq)
	}

	mu.Lock()
	defer mu.Unlock()
	want := trials * len(Systems()) * len(faults.Kinds())
	if len(seen) != want {
		t.Fatalf("progress saw %d distinct trials, want %d", len(seen), want)
	}
	for label, n := range seen {
		if n != 1 {
			t.Fatalf("trial %s reported %d times, want 1", label, n)
		}
	}
}

// TestFig9ReusesTable1Results pins the cross-driver result sharing: Fig. 9
// scores the same (system, fault, trial-0 seed) scenarios as Table 1, so
// after a Table-1 run every Fig. 9 trial must be a cache hit — zero new
// simulations. This is what makes `mars-bench -exp all` pay for the shared
// trial matrix once.
func TestFig9ReusesTable1Results(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweeps are not short")
	}
	sharedResults.Reset()
	defer sharedResults.Reset()

	RunTable1With(EngineOptions{}, 1, 9090)
	hitsBefore, missesBefore := sharedResults.Stats()
	if missesBefore == 0 {
		t.Fatalf("Table 1 populated no cache entries; reuse check is vacuous")
	}

	fig9 := RunFig9With(EngineOptions{}, 9090)
	hitsAfter, missesAfter := sharedResults.Stats()
	if missesAfter != missesBefore {
		t.Fatalf("Fig. 9 re-ran %d trials Table 1 already executed (misses %d -> %d)",
			missesAfter-missesBefore, missesBefore, missesAfter)
	}
	if hitsAfter == hitsBefore {
		t.Fatalf("Fig. 9 never consulted the shared cache; reuse check is vacuous")
	}
	if len(fig9.Rows) == 0 {
		t.Fatalf("Fig. 9 produced no rows from cached trials")
	}
}
