package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"mars/internal/faults"
)

// The perf experiment measures the simulator's end-to-end packet
// throughput and the per-packet telemetry cost for every registered codec:
// one full MARS trial per codec (identical seeds, so identical packet
// populations), timed wall-clock. Unlike every other experiment, its
// numbers are machine-dependent by design — the JSON output is a committed
// baseline (BENCH_perf.json) used by humans and the bench-gate CI job to
// spot order-of-magnitude regressions, not a deterministic artifact.

// PerfRow is one codec's throughput and overhead measurement.
type PerfRow struct {
	Codec string `json:"codec"`
	// Trials is the number of timed trials aggregated into this row.
	Trials int `json:"trials"`
	// Packets is the total end-to-end packet count across trials;
	// TelemetryPackets the subset promoted to carry INT headers.
	Packets          int64 `json:"packets"`
	TelemetryPackets int64 `json:"telemetry_packets"`
	// TelemetryBytes / TotalLinkBytes mirror the overhead experiment's
	// byte accounting.
	TelemetryBytes int64 `json:"telemetry_bytes"`
	TotalLinkBytes int64 `json:"total_link_bytes"`
	// WallSeconds is the summed wall-clock time of the timed trials.
	WallSeconds float64 `json:"wall_seconds"`
	// PacketsPerSec is end-to-end packets simulated per wall second.
	PacketsPerSec float64 `json:"packets_per_sec"`
	// BytesPerPacket is mean in-band telemetry bytes per packet.
	BytesPerPacket float64 `json:"bytes_per_packet"`
}

// ScaleShardMem is one shard's memory high-water marks in the scale tier.
type ScaleShardMem struct {
	Shard         int   `json:"shard"`
	OwnedSwitches int   `json:"owned_switches"`
	AgendaPeak    int   `json:"agenda_peak"`
	PeakKB        int64 `json:"peak_kb"`
}

// ScalePerf is the sharded scale tier's throughput/memory baseline: one
// full k-arity data-plane trial through the sharded engine. Like the rest
// of this file it is machine-dependent by design.
type ScalePerf struct {
	K             int             `json:"k"`
	Shards        int             `json:"shards"`
	Flows         int             `json:"flows"`
	Packets       int64           `json:"packets"`
	Events        int64           `json:"events"`
	Rounds        int64           `json:"rounds"`
	WallSeconds   float64         `json:"wall_seconds"`
	PacketsPerSec float64         `json:"packets_per_sec"`
	EventsPerSec  float64         `json:"events_per_sec"`
	ShardMem      []ScaleShardMem `json:"shard_mem"`
}

// StreamPerf is the streaming-diagnosis tier's sustained-operation
// baseline: one continuously-diagnosing k-arity trial. Throughput
// figures are machine-dependent; the detection outcome is not.
type StreamPerf struct {
	K             int     `json:"k"`
	Shards        int     `json:"shards"`
	Flows         int     `json:"flows"`
	Epochs        int     `json:"epochs"`
	WindowEpochs  int     `json:"window_epochs"`
	Records       int64   `json:"records"`
	Diagnoses     int64   `json:"diagnoses"`
	DetectionMs   float64 `json:"detection_ms"` // -1 if the fault was missed
	WallSeconds   float64 `json:"wall_seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	DiagPerSec    float64 `json:"diagnoses_per_sec"`
}

// DeployPerf is the real-process deployment tier's baseline: one full
// loopback run (controller + switch-group nodes on separate UDP sockets
// inside this process — the same transports and replay machinery
// cmd/mars-node forks into real processes). Wall-clock figures are
// machine-dependent; Top1Match is not and must stay true.
type DeployPerf struct {
	K      int     `json:"k"`
	Groups int     `json:"groups"`
	Scale  float64 `json:"scale"`
	Fault  string  `json:"fault"`
	// Diagnoses counts finalized socket collections; NotesReplayed the
	// notifications the switch nodes put on the wire.
	Diagnoses     int  `json:"diagnoses"`
	NotesReplayed int  `json:"notes_replayed"`
	Top1Match     bool `json:"top1_match"`
	// WallSeconds covers the live phase (replay + drain).
	WallSeconds float64 `json:"wall_seconds"`
	// CollectMeanMs / CollectP95Ms are wall-clock trigger→diagnosis
	// collection latencies over real sockets.
	CollectMeanMs float64 `json:"collect_mean_ms"`
	CollectP95Ms  float64 `json:"collect_p95_ms"`
	DiagPerSec    float64 `json:"diagnoses_per_sec"`
	// Retries counts control-channel retransmissions the run needed.
	Retries int64 `json:"retries"`
}

// PerfResult is the full sweep, JSON-serializable for BENCH_perf.json.
type PerfResult struct {
	// Note flags the machine sensitivity for anyone diffing baselines.
	Note   string      `json:"note"`
	Seed   int64       `json:"seed"`
	Fault  string      `json:"fault"`
	Rows   []PerfRow   `json:"rows"`
	Scale  *ScalePerf  `json:"scale,omitempty"`
	Stream *StreamPerf `json:"stream,omitempty"`
	Deploy *DeployPerf `json:"deploy,omitempty"`
}

// RunPerf measures with default engine options.
func RunPerf(trials int, baseSeed int64) *PerfResult {
	return RunPerfWith(EngineOptions{}, trials, baseSeed)
}

// RunPerfWith times one MARS trial per (codec, trial index) sequentially —
// timing is the measurement, so the harness pool is bypassed on purpose.
// Seeds derive exactly as in the overhead sweep, so every codec simulates
// the same fault sequence and packet population.
func RunPerfWith(opts EngineOptions, trials int, baseSeed int64) *PerfResult {
	if trials < 1 {
		trials = 1
	}
	plan := opts.plan()
	kind := faults.MicroBurst
	res := &PerfResult{
		Note:  "wall-clock throughput baseline; machine-dependent, compare only order of magnitude across hosts",
		Seed:  baseSeed,
		Fault: kind.String(),
	}
	for _, codec := range OverheadCodecs {
		row := PerfRow{Codec: codec, Trials: trials}
		for t := 0; t < trials; t++ {
			seed := plan.TrialSeed(baseSeed, int(kind), t)
			tc := DefaultTrialConfig(seed, kind)
			tc.CtrlSeed = plan.CtrlChanSeed(seed)
			tc.Codec = codec
			start := time.Now() //mars:wallclock the perf experiment measures wall-clock throughput
			r := opts.runTrial(SysMARS, tc)
			row.WallSeconds += time.Since(start).Seconds() //mars:wallclock the perf experiment measures wall-clock throughput
			row.Packets += r.Packets
			row.TelemetryPackets += r.TelemetryPackets
			row.TelemetryBytes += r.TelemetryBytes
			row.TotalLinkBytes += r.TotalLinkBytes
		}
		if row.WallSeconds > 0 {
			row.PacketsPerSec = float64(row.Packets) / row.WallSeconds
		}
		if row.Packets > 0 {
			row.BytesPerPacket = float64(row.TelemetryBytes) / float64(row.Packets)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// AddScale runs the sharded scale trial described by tc and attaches its
// throughput and per-shard memory numbers to the baseline.
func (r *PerfResult) AddScale(tc TrialConfig) {
	st := RunScaleTrial(tc, nil)
	sp := &ScalePerf{
		K:           st.K,
		Shards:      st.Shards,
		Flows:       st.Flows,
		Packets:     st.Delivered,
		Events:      st.Events,
		Rounds:      st.Rounds,
		WallSeconds: st.WallSeconds,
	}
	if st.WallSeconds > 0 {
		sp.PacketsPerSec = float64(st.Delivered) / st.WallSeconds
		sp.EventsPerSec = float64(st.Events) / st.WallSeconds
	}
	for _, m := range st.Mem {
		sp.ShardMem = append(sp.ShardMem, ScaleShardMem{
			Shard:         m.Shard,
			OwnedSwitches: m.OwnedSwitches,
			AgendaPeak:    m.AgendaPeak,
			PeakKB:        m.PeakBytes / 1024,
		})
	}
	r.Scale = sp
}

// AddStream runs the streaming-diagnosis trial described by tc and
// attaches its sustained throughput and detection latency.
func (r *PerfResult) AddStream(tc StreamTrialConfig) {
	st := RunStreamTrial(tc, nil)
	sp := &StreamPerf{
		K:             st.K,
		Shards:        st.Shards,
		Flows:         st.Flows,
		Epochs:        st.Epochs,
		WindowEpochs:  st.PrimaryWindow,
		Records:       st.RecordsDrained,
		WallSeconds:   st.WallSeconds,
		RecordsPerSec: st.RecordsPerSec,
		DiagPerSec:    st.DiagPerSec,
		Diagnoses:     st.Diagnoses,
		DetectionMs:   -1,
	}
	if st.DetectionEpoch >= 0 {
		sp.DetectionMs = float64(st.DetectionLatency) / float64(1e6)
	}
	r.Stream = sp
}

// JSON renders the machine-readable baseline (the BENCH_perf.json format).
func (r *PerfResult) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// The struct contains only plain scalars; marshaling cannot fail.
		panic(err)
	}
	return string(b) + "\n"
}

// Render formats the human-readable summary.
func (r *PerfResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Perf: simulator throughput per codec (fault=%s, seed=%d)\n", r.Fault, r.Seed)
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %12s %8s\n",
		"codec", "pkts/sec", "packets", "telem-pkt", "wall-sec", "B/pkt")
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(&b, "%-10s %12.0f %10d %10d %12.2f %8.2f\n",
			row.Codec, row.PacketsPerSec, row.Packets, row.TelemetryPackets,
			row.WallSeconds, row.BytesPerPacket)
	}
	if s := r.Scale; s != nil {
		fmt.Fprintf(&b, "scale: k=%d shards=%d packets=%d events=%d wall=%.2fs pkts/s=%.0f events/s=%.0f\n",
			s.K, s.Shards, s.Packets, s.Events, s.WallSeconds, s.PacketsPerSec, s.EventsPerSec)
	}
	if s := r.Stream; s != nil {
		fmt.Fprintf(&b, "stream: k=%d shards=%d records=%d wall=%.2fs records/s=%.0f diagnoses/s=%.0f detection=%.0fms\n",
			s.K, s.Shards, s.Records, s.WallSeconds, s.RecordsPerSec, s.DiagPerSec, s.DetectionMs)
	}
	if s := r.Deploy; s != nil {
		fmt.Fprintf(&b, "deploy: k=%d groups=%d scale=%.2f diagnoses=%d match=%v wall=%.2fs collect_mean=%.1fms p95=%.1fms diagnoses/s=%.1f\n",
			s.K, s.Groups, s.Scale, s.Diagnoses, s.Top1Match, s.WallSeconds,
			s.CollectMeanMs, s.CollectP95Ms, s.DiagPerSec)
	}
	return b.String()
}
