package experiments

import (
	"fmt"
	"strings"
	"time"

	"mars/internal/dataplane"
	"mars/internal/harness"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// ScaleRow captures MARS's per-network costs at one fat-tree arity.
type ScaleRow struct {
	K          int
	Switches   int
	Hosts      int
	Paths      int
	MaxHops    int
	HeaderB    int
	MATEntries int
	MATBytes   int
	// IntSightEntries is the per-hop-encoding baseline at the same scale.
	IntSightEntries int
	IntSightBytes   int
	// BuildMs is the control-plane PathID precomputation time.
	BuildMs float64
}

// ScaleResult is the K-sweep backing the paper's Motivation #2 claim that
// the path-aware method "is independent of the length of the path and
// does not raise extra costs as the network becomes larger".
type ScaleResult struct {
	Rows []ScaleRow
	// Width is the PathID width used (wider IDs for bigger path sets).
	Width uint
}

// RunScale sweeps fat-tree arities with the default engine options.
func RunScale(ks []int) *ScaleResult {
	return RunScaleWith(EngineOptions{}, ks)
}

// RunScaleWith sweeps fat-tree arities and measures MARS's header and
// memory costs against IntSight's encoding. A 16-bit PathID accommodates
// the larger path sets (the 8-bit default is sized for K=4). Each arity is
// one harness trial, so big-K topology and table builds proceed in
// parallel; rows come back in sweep order. BuildMs is the one wall-clock
// field: under parallel workers concurrent builds share the CPUs, so
// per-row build latency can read higher than a sequential sweep even
// though the whole sweep finishes sooner.
func RunScaleWith(opts EngineOptions, ks []int) *ScaleResult {
	out := &ScaleResult{Width: 16}
	cfg := pathid.Config{Alg: pathid.CRC16, Width: out.Width}
	ts := make([]harness.Trial, len(ks))
	for i, k := range ks {
		ts[i] = harness.Trial{Index: i, Seed: int64(k), Label: fmt.Sprintf("scale/K=%d", k)}
	}
	rows, err := harness.Run(opts.config(), ts, func(tr harness.Trial) ScaleRow {
		k := ks[tr.Index]
		ft, err := topology.NewFatTree(k)
		if err != nil {
			panic(err)
		}
		paths := ft.AllEdgePairPaths()
		maxHops := 0
		for _, p := range paths {
			if len(p) > maxHops {
				maxHops = len(p)
			}
		}
		start := time.Now() //mars:wallclock Table 2 reports real build latency
		tbl, err := pathid.BuildTable(cfg, ft.Topology, paths)
		if err != nil {
			panic(err)
		}
		return ScaleRow{
			K:               k,
			Switches:        ft.NumSwitches(),
			Hosts:           ft.NumHosts(),
			Paths:           len(paths),
			MaxHops:         maxHops,
			HeaderB:         cfg.HeaderBytes() + dataplane.TelemetryHeaderBytes,
			MATEntries:      tbl.MATEntryCount(),
			MATBytes:        tbl.MemoryBytes(),
			IntSightEntries: pathid.IntSightMATEntries(paths),
			IntSightBytes:   pathid.IntSightMemoryBytes(paths),
			BuildMs:         float64(time.Since(start).Microseconds()) / 1000, //mars:wallclock Table 2 reports real build latency
		}
	})
	if err != nil {
		panic(err)
	}
	out.Rows = rows
	return out
}

// Render formats the sweep.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: MARS monitoring cost vs fat-tree arity (PathID width %d)\n", r.Width)
	fmt.Fprintf(&b, "%-4s %9s %6s %7s %8s %9s %10s %10s %12s %12s\n",
		"K", "switches", "hosts", "paths", "maxhops", "header(B)", "MARS-MAT", "MARS(B)", "IntSight-MAT", "IntSight(B)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d %9d %6d %7d %8d %9d %10d %10d %12d %12d\n",
			row.K, row.Switches, row.Hosts, row.Paths, row.MaxHops, row.HeaderB,
			row.MATEntries, row.MATBytes, row.IntSightEntries, row.IntSightBytes)
	}
	b.WriteString("Header bytes stay flat with scale; MARS MAT memory grows only with hash collisions,\n")
	b.WriteString("while the per-hop encoding grows with (paths x hops).\n")
	return b.String()
}
