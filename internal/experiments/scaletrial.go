package experiments

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

// The scale trial is the sharded engine's end-to-end tier: one full
// data-plane simulation (MARS program attached, telemetry promoted,
// registers resident per shard) at k=16/k=32 fat-tree arity, executed by
// internal/netsim.Sharded under the conservative-lookahead barrier. The
// simulated output — Render() — is invariant under the shard count (CI
// diffs shards=1 against shards=8 byte for byte); only the wall-clock and
// per-shard memory accounting on stderr vary per machine.

// DefaultScaleTrialConfig sizes a single scale-tier trial: a cross-pod
// mesh of two flows per host at a modest rate, one simulated second.
// shards<=0 means auto (GOMAXPROCS, clamped to the partition's units).
func DefaultScaleTrialConfig(k, shards int, seed int64) TrialConfig {
	hosts := k * k * k / 4
	return TrialConfig{
		Seed:     seed,
		K:        k,
		NumFlows: 2 * hosts,
		RatePPS:  60,
		Total:    netsim.Second,
		Shards:   shards,
	}
}

// ScaleTrialResult carries the simulated outcome (shard-count-invariant)
// plus the machine-dependent throughput and memory accounting.
type ScaleTrialResult struct {
	K      int
	Shards int // effective shard count actually run
	// Topology and workload dimensions.
	Switches, Hosts, Links, Flows int
	// Simulated outcome (invariant under Shards).
	Sent, Delivered, Dropped int64
	MeanLatency              netsim.Time
	TotalLinkBytes           int64
	TelemetryBytes           int64
	TelemetryPackets         int64
	Rounds                   int64
	Events                   int64
	// Machine-dependent accounting (stderr only).
	WallSeconds float64
	Mem         []netsim.MemEstimate
}

// RunScaleTrial executes one sharded data-plane trial. Each shard gets a
// resident dataplane.Program (register arrays only for its owned
// switches), flows are installed through OnNode so their events and RNG
// draws stamp with the owning unit, and progress (if non-nil) observes
// barrier rounds for the -progress heartbeat.
func RunScaleTrial(tc TrialConfig, progress netsim.ShardProgress) *ScaleTrialResult {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	part := ft.PodPartition()
	shards := tc.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	simCfg := scaledSimConfig()
	if tc.SimCfg != nil {
		simCfg = *tc.SimCfg
	}
	progCfg := dataplane.DefaultProgramConfig()

	// One resident program per shard, mirroring NewSharded's unit
	// round-robin. Clamp exactly as the engine does so program index i
	// always pairs with shard i.
	if shards > part.NumUnits {
		shards = part.NumUnits
	}
	if shards < 1 {
		shards = 1
	}
	owned := make([][]topology.NodeID, shards)
	for _, sw := range ft.Switches() {
		s := int(part.UnitOf[sw]) % shards
		owned[s] = append(owned[s], sw)
	}
	progs := make([]*dataplane.Program, shards)
	for i := range progs {
		// Paths is nil: at k=16 the all-pairs path set is millions of
		// entries; the in-band hash chain still runs, only the MAT
		// control lookup is skipped.
		progs[i] = dataplane.NewResident(progCfg, ft.Topology, nil, nil, owned[i])
	}

	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	sh := netsim.NewSharded(ft.Topology, part, router, func(i int) netsim.Hooks { return progs[i] },
		simCfg, tc.Seed, netsim.ShardedConfig{Shards: shards, Progress: progress})
	defer sh.Close()

	// Deterministic cross-pod mesh: flow i runs from host i (mod hosts) to
	// a host 1..K-1 pods away, staggered starts, Poisson gaps and
	// trace-shaped sizes drawn from the source unit's RNG stream.
	hosts := ft.HostIDs
	perPod := len(hosts) / ft.K
	for i := 0; i < tc.NumFlows; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i%len(hosts)+perPod*(1+i%(ft.K-1)))%len(hosts)]
		f := &workload.Flow{
			Src: src, Dst: dst, Key: netsim.FlowKey(i + 1),
			RatePPS: tc.RatePPS,
			Gaps:    workload.GapExponential,
			Start:   netsim.Time(i%97) * 50 * netsim.Microsecond,
			Stop:    tc.Total,
		}
		sh.OnNode(src, f.Install)
	}

	start := time.Now() //mars:wallclock the scale tier reports real sharded throughput
	sh.Run(tc.Total + 50*netsim.Millisecond)
	wall := time.Since(start).Seconds() //mars:wallclock the scale tier reports real sharded throughput

	stats := sh.MergedStats()
	res := &ScaleTrialResult{
		K:        tc.K,
		Shards:   sh.NumShards(),
		Switches: ft.NumSwitches(),
		Hosts:    ft.NumHosts(),
		Links:    len(ft.Links),
		Flows:    tc.NumFlows,
		Sent:     stats.Sent, Delivered: stats.Delivered, Dropped: stats.Dropped,
		TotalLinkBytes: func() int64 {
			var n int64
			for _, b := range stats.LinkBytes {
				n += b
			}
			return n
		}(),
		Rounds:      sh.Rounds(),
		WallSeconds: wall,
		Mem:         sh.Mem(),
	}
	if stats.Delivered > 0 {
		res.MeanLatency = stats.TotalLatency / netsim.Time(stats.Delivered)
	}
	for _, n := range sh.Events() {
		res.Events += n
	}
	for _, p := range progs {
		res.TelemetryBytes += p.Stats.TelemetryLinkBytes
		res.TelemetryPackets += p.Stats.TelemetryPackets
	}
	return res
}

// Render formats the simulated outcome. Everything here is invariant
// under the shard count — the determinism CI job diffs this output across
// shard counts — so neither Shards nor any wall-clock/memory figure may
// appear.
func (r *ScaleTrialResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale trial: full data-plane run at K=%d\n", r.K)
	fmt.Fprintf(&b, "  topology: switches=%d hosts=%d links=%d flows=%d\n",
		r.Switches, r.Hosts, r.Links, r.Flows)
	fmt.Fprintf(&b, "  packets:  sent=%d delivered=%d dropped=%d mean-latency=%v\n",
		r.Sent, r.Delivered, r.Dropped, r.MeanLatency)
	fmt.Fprintf(&b, "  bytes:    links=%d telemetry=%d telemetry-packets=%d\n",
		r.TotalLinkBytes, r.TelemetryBytes, r.TelemetryPackets)
	fmt.Fprintf(&b, "  engine:   barrier-rounds=%d events=%d\n", r.Rounds, r.Events)
	return b.String()
}

// RenderMem formats the per-shard memory estimates (stderr: the shard
// count and per-shard residency are machine/flag dependent).
func (r *ScaleTrialResult) RenderMem() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory: %d shard(s), MemStats-free estimates\n", r.Shards)
	var est, peak int64
	for _, m := range r.Mem {
		fmt.Fprintf(&b, "  %s\n", m)
		est += m.EstBytes
		peak += m.PeakBytes
	}
	fmt.Fprintf(&b, "  total: est=%dKB peak=%dKB\n", est/1024, peak/1024)
	return b.String()
}

// TimingLine is the machine-readable stderr throughput summary.
func (r *ScaleTrialResult) TimingLine() string {
	pps, eps := 0.0, 0.0
	if r.WallSeconds > 0 {
		pps = float64(r.Delivered) / r.WallSeconds
		eps = float64(r.Events) / r.WallSeconds
	}
	return fmt.Sprintf("timing: exp=scale-trial k=%d shards=%d wall=%.2fs pkts/s=%.0f events/s=%.0f",
		r.K, r.Shards, r.WallSeconds, pps, eps)
}

// ScaleHeartbeat builds the -progress callback for the scale tier: one
// stderr line per observed barrier epoch with the per-shard cumulative
// event counts, so long k=32 runs show liveness and load balance. The
// line is formatted into a buffer and flushed as one write per tick —
// the %v of a per-shard slice otherwise fragments into dozens of
// unbuffered stderr writes on every barrier round.
func ScaleHeartbeat(w io.Writer) netsim.ShardProgress {
	bw := bufio.NewWriter(w)
	return func(now netsim.Time, events []int64) {
		fmt.Fprintf(bw, "scale-progress: t=%v shard-events=%v\n", now, events)
		bw.Flush()
	}
}
