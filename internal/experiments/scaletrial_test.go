package experiments

import (
	"strings"
	"testing"

	"mars/internal/netsim"
)

// The scale trial's simulated outcome must be invariant under the shard
// count: Render() — the exact bytes CI diffs — is compared across an
// unsharded and a sharded run of the same config. (k=4 keeps the test
// fast; the k=16/k=32 arities exercise the same code paths at size.)
func TestScaleTrialShardInvariance(t *testing.T) {
	tc := DefaultScaleTrialConfig(4, 1, 7)
	tc.NumFlows = 32
	tc.RatePPS = 150
	tc.Total = 200 * netsim.Millisecond
	var beats int
	a := RunScaleTrial(tc, nil)
	tc.Shards = 3
	b := RunScaleTrial(tc, func(netsim.Time, []int64) { beats++ })
	if a.Delivered == 0 || a.TelemetryPackets == 0 {
		t.Fatalf("degenerate trial: %+v", a)
	}
	if ra, rb := a.Render(), b.Render(); ra != rb {
		t.Fatalf("render diverges across shard counts:\nshards=1:\n%s\nshards=3:\n%s", ra, rb)
	}
	if beats == 0 {
		t.Error("progress heartbeat never fired")
	}
	if a.Shards != 1 || b.Shards != 3 {
		t.Errorf("effective shard counts %d/%d, want 1/3", a.Shards, b.Shards)
	}
	// Resident register memory partitions the fabric: every switch is
	// owned by exactly one shard in both runs.
	for _, r := range []*ScaleTrialResult{a, b} {
		ownedSwitches := 0
		for _, m := range r.Mem {
			ownedSwitches += m.OwnedSwitches
		}
		if ownedSwitches != r.Switches {
			t.Errorf("shards own %d switches, fabric has %d", ownedSwitches, r.Switches)
		}
	}
	if !strings.Contains(b.TimingLine(), "shards=3") {
		t.Errorf("timing line missing shard count: %q", b.TimingLine())
	}
}
