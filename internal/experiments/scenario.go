// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), shared by cmd/mars-bench and the root
// benchmarks. Each driver returns a plain data structure plus a formatted
// text rendering, so EXPERIMENTS.md can record paper-vs-measured rows.
//
// Trial-based drivers declare their (system x fault x trial) matrix to the
// internal/harness engine, which derives seeds through a SeedPlan,
// executes trials on a bounded worker pool, and returns results in
// deterministic trial order — output is byte-identical for any worker
// count. The systems themselves are wired through the SystemUnderTest
// interface (systems.go), so MARS and the three baselines share one
// substrate-construction path.
package experiments

import (
	"mars/internal/baselines/syndb"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/netsim"
	"mars/internal/rca"
	"mars/internal/topology"
	"mars/internal/workload"
)

// SystemKind names the compared systems (Table 1, Fig. 9).
type SystemKind uint8

const (
	// SysMARS is this paper's system.
	SysMARS SystemKind = iota
	// SysSpiderMon is the NSDI'22 baseline.
	SysSpiderMon
	// SysIntSight is the CoNEXT'20 baseline.
	SysIntSight
	// SysSyNDB is the NSDI'21 baseline (expert-aided).
	SysSyNDB
)

// Systems lists the Table 1 column order.
func Systems() []SystemKind { return []SystemKind{SysMARS, SysSpiderMon, SysIntSight, SysSyNDB} }

func (s SystemKind) String() string {
	switch s {
	case SysMARS:
		return "MARS"
	case SysSpiderMon:
		return "SpiderMon"
	case SysIntSight:
		return "IntSight"
	case SysSyNDB:
		return "SyNDB"
	default:
		return "SyNDB"
	}
}

// TrialConfig parameterizes one fault-localization trial.
type TrialConfig struct {
	Seed  int64
	Fault faults.Kind
	K     int
	// Background traffic shape; zero-value fields take the defaults below.
	NumFlows int
	RatePPS  float64
	// Timeline.
	FaultStart netsim.Time
	FaultDur   netsim.Time
	Total      netsim.Time
	// SimCfg overrides the physical parameters (zero = scaled defaults).
	SimCfg *netsim.Config

	// CtrlSeed seeds the control channel's own random stream, derived from
	// Seed by the sweep's harness.SeedPlan (constructors always fill it;
	// zero falls back to the legacy Seed+7 offset).
	CtrlSeed int64
	// CtrlLossy runs MARS over the realistic control channel model
	// (1 ms ± jitter latency, duplication, reordering) instead of the
	// perfect synchronous one, with CtrlLoss symmetric message loss.
	// Only the MARS trial uses these: the baselines have no equivalent
	// explicit control channel to degrade.
	CtrlLossy bool
	CtrlLoss  float64
	// CtrlNoRetry zeroes the controller's retry budget (the ablation the
	// ctrlchan experiment compares against).
	CtrlNoRetry bool

	// Codec names the telemetry encoding for MARS trials (internal/
	// telemetry); "" keeps the historical built-in mars11 path, leaving
	// every pre-existing sweep byte-identical. Only the overhead
	// experiment sets it.
	Codec string

	// Shards is the sharded-engine shard count for the scale tier
	// (RunScaleTrial); 0 means auto (GOMAXPROCS, clamped to the partition).
	// The count never changes simulated output — only wall-clock time —
	// and the classic single-heap trials ignore it.
	Shards int
}

// DefaultTrialConfig sizes a trial so the five fault signatures are
// observable at software-switch scale: links fit ~2500 pps of mixed
// traffic, background load sits near 50% on the fat-tree uplinks, and
// faults run for 1.5 s after a 2 s warmup.
func DefaultTrialConfig(seed int64, kind faults.Kind) TrialConfig {
	return TrialConfig{
		Seed:       seed,
		Fault:      kind,
		K:          4,
		NumFlows:   96,
		RatePPS:    220,
		FaultStart: 2 * netsim.Second,
		FaultDur:   1500 * netsim.Millisecond,
		Total:      4 * netsim.Second,
		CtrlSeed:   harness.LegacyPlan{}.CtrlChanSeed(seed),
	}
}

// scaledSimConfig matches the BMv2-like environment of the paper: modest
// link rates so fault loads visibly build queues.
func scaledSimConfig() netsim.Config {
	return netsim.Config{
		LinkBandwidthBps:     14_000_000, // ~2500 pps of 700 B packets
		HostLinkBandwidthBps: 100_000_000,
		PropDelay:            10 * netsim.Microsecond,
		SwitchProcDelay:      5 * netsim.Microsecond,
		QueueCapacity:        128,
	}
}

// TrialResult is the outcome of one (system, fault) trial.
type TrialResult struct {
	System   SystemKind
	GT       faults.GroundTruth
	Rank     int // 1-based rank of the true cause; 0 = not found
	Detected bool
	// Overhead (Fig. 9): bytes of extra in-band headers on links, and
	// bytes exchanged with the control plane for diagnosis.
	TelemetryBytes int64
	DiagnosisBytes int64
	// TotalLinkBytes is all traffic serialized, for normalization.
	TotalLinkBytes int64
	// DiagLatency is the delay from fault start to the first completed
	// diagnosis (MARS trials; valid only when DiagDetected).
	DiagLatency  netsim.Time
	DiagDetected bool
	// Diagnoses / PartialDiagnoses count completed collections after the
	// fault started and how many finished with missing sinks.
	Diagnoses        int64
	PartialDiagnoses int64
	// Packets is the end-to-end packet count (for bytes/packet overhead
	// normalization); TelemetryPackets counts packets promoted to carry
	// telemetry.
	Packets          int64
	TelemetryPackets int64
	// FalseAlarms counts completed diagnoses before the fault started
	// (detection false positives; MARS trials only).
	FalseAlarms int64
}

// installWorkload starts the background mesh and returns the flows.
func installWorkload(tc TrialConfig, sim *netsim.Simulator, ft *topology.FatTree) []*workload.Flow {
	return workload.RandomBackground(sim, ft, workload.BackgroundConfig{
		NumFlows:      tc.NumFlows,
		RatePPS:       tc.RatePPS,
		RateJitter:    0.2,
		Gaps:          workload.GapExponential,
		Start:         0,
		Stop:          tc.Total,
		CrossPodBias:  1.0,
		RoundRobinSrc: true,
		RoundRobinDst: true,
	}, 1)
}

func totalLinkBytes(sim *netsim.Simulator) int64 {
	var n int64
	for _, b := range sim.Stats.LinkBytes {
		n += b
	}
	return n
}

// RunTrial executes one trial for one system and scores it against the
// injected ground truth. Every system goes through the same
// SystemUnderTest substrate path (systems.go).
func RunTrial(sys SystemKind, tc TrialConfig) TrialResult {
	return runSystemTrial(newSystem(sys), tc)
}

// runMARSTrial runs one MARS trial through the unified substrate path
// (kept as a named helper for the control-channel tests).
func runMARSTrial(tc TrialConfig) TrialResult {
	return runSystemTrial(&marsSystem{}, tc)
}

// marsMatches decides whether a MARS culprit locates the injected fault.
// Table 1’s R@k measures whether "the root cause can be located within the
// top k culprits": a micro-burst is located by naming the offending flow;
// every other fault is located by naming the faulty switch (the same
// location-based rule the baselines are scored with — they emit no cause
// taxonomy at all). MARS’s cause labels remain part of its output and are
// evaluated separately by the cause-accuracy ablation.
func marsMatches(c rca.Culprit, gt faults.GroundTruth) bool {
	if gt.Kind == faults.MicroBurst {
		return c.Level == rca.LevelFlow &&
			c.Flow == dataplane.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}
	}
	if gt.Kind == faults.ECMPImbalance && c.Cause == rca.CauseECMPImbalance {
		return c.ContainsSwitch(gt.Switch)
	}
	if c.Level == rca.LevelFlow {
		return false
	}
	return c.ContainsSwitch(gt.Switch)
}

// marsCauseMatches is the stricter variant requiring the diagnosed cause
// class to match as well (used by the cause-accuracy ablation).
func marsCauseMatches(c rca.Culprit, gt faults.GroundTruth) bool {
	want := map[faults.Kind]rca.Cause{
		faults.MicroBurst:          rca.CauseMicroBurst,
		faults.ECMPImbalance:       rca.CauseECMPImbalance,
		faults.ProcessRateDecrease: rca.CauseProcessRate,
		faults.Delay:               rca.CauseDelay,
		faults.Drop:                rca.CauseDrop,
	}[gt.Kind]
	return c.Cause == want && marsMatches(c, gt)
}

// baselineMatches scores a baseline culprit: flow-identity match for
// micro-bursts (when the entry names a flow), switch containment otherwise.
func baselineMatches(switches []topology.NodeID, flowID dataplane.FlowID, hasFlow bool, gt faults.GroundTruth) bool {
	if gt.Kind == faults.MicroBurst {
		if hasFlow {
			return flowID == dataplane.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}
		}
		return false
	}
	for _, sw := range switches {
		if sw == gt.Switch {
			return true
		}
	}
	return false
}

// syndbQuery maps an injected fault to the expert query SyNDB is given.
func syndbQuery(k faults.Kind) syndb.Query {
	//mars:partial every loss-class fault kind shares the expert drop query through the default; only the four specialized queries need naming
	switch k {
	case faults.MicroBurst:
		return syndb.QueryMicroBurst
	case faults.ECMPImbalance:
		return syndb.QueryECMP
	case faults.ProcessRateDecrease:
		return syndb.QueryProcessRate
	case faults.Delay:
		return syndb.QueryDelay
	default:
		return syndb.QueryDrop
	}
}
