// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), shared by cmd/mars-bench and the root
// benchmarks. Each driver returns a plain data structure plus a formatted
// text rendering, so EXPERIMENTS.md can record paper-vs-measured rows.
package experiments

import (
	"mars/internal/baselines/intsight"
	"mars/internal/baselines/spidermon"
	"mars/internal/baselines/syndb"
	"mars/internal/controlplane"
	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/topology"
	"mars/internal/workload"
)

// SystemKind names the compared systems (Table 1, Fig. 9).
type SystemKind uint8

const (
	// SysMARS is this paper's system.
	SysMARS SystemKind = iota
	// SysSpiderMon is the NSDI'22 baseline.
	SysSpiderMon
	// SysIntSight is the CoNEXT'20 baseline.
	SysIntSight
	// SysSyNDB is the NSDI'21 baseline (expert-aided).
	SysSyNDB
)

// Systems lists the Table 1 column order.
func Systems() []SystemKind { return []SystemKind{SysMARS, SysSpiderMon, SysIntSight, SysSyNDB} }

func (s SystemKind) String() string {
	switch s {
	case SysMARS:
		return "MARS"
	case SysSpiderMon:
		return "SpiderMon"
	case SysIntSight:
		return "IntSight"
	default:
		return "SyNDB"
	}
}

// TrialConfig parameterizes one fault-localization trial.
type TrialConfig struct {
	Seed  int64
	Fault faults.Kind
	K     int
	// Background traffic shape; zero-value fields take the defaults below.
	NumFlows int
	RatePPS  float64
	// Timeline.
	FaultStart netsim.Time
	FaultDur   netsim.Time
	Total      netsim.Time
	// SimCfg overrides the physical parameters (zero = scaled defaults).
	SimCfg *netsim.Config

	// CtrlLossy runs MARS over the realistic control channel model
	// (1 ms ± jitter latency, duplication, reordering) instead of the
	// perfect synchronous one, with CtrlLoss symmetric message loss.
	// Only the MARS trial uses these: the baselines have no equivalent
	// explicit control channel to degrade.
	CtrlLossy bool
	CtrlLoss  float64
	// CtrlNoRetry zeroes the controller's retry budget (the ablation the
	// ctrlchan experiment compares against).
	CtrlNoRetry bool
}

// DefaultTrialConfig sizes a trial so the five fault signatures are
// observable at software-switch scale: links fit ~2500 pps of mixed
// traffic, background load sits near 50% on the fat-tree uplinks, and
// faults run for 1.5 s after a 2 s warmup.
func DefaultTrialConfig(seed int64, kind faults.Kind) TrialConfig {
	return TrialConfig{
		Seed:       seed,
		Fault:      kind,
		K:          4,
		NumFlows:   96,
		RatePPS:    220,
		FaultStart: 2 * netsim.Second,
		FaultDur:   1500 * netsim.Millisecond,
		Total:      4 * netsim.Second,
	}
}

// scaledSimConfig matches the BMv2-like environment of the paper: modest
// link rates so fault loads visibly build queues.
func scaledSimConfig() netsim.Config {
	return netsim.Config{
		LinkBandwidthBps:     14_000_000, // ~2500 pps of 700 B packets
		HostLinkBandwidthBps: 100_000_000,
		PropDelay:            10 * netsim.Microsecond,
		SwitchProcDelay:      5 * netsim.Microsecond,
		QueueCapacity:        128,
	}
}

// TrialResult is the outcome of one (system, fault) trial.
type TrialResult struct {
	System   SystemKind
	GT       faults.GroundTruth
	Rank     int // 1-based rank of the true cause; 0 = not found
	Detected bool
	// Overhead (Fig. 9): bytes of extra in-band headers on links, and
	// bytes exchanged with the control plane for diagnosis.
	TelemetryBytes int64
	DiagnosisBytes int64
	// TotalLinkBytes is all traffic serialized, for normalization.
	TotalLinkBytes int64
	// DiagLatency is the delay from fault start to the first completed
	// diagnosis (MARS trials; valid only when DiagDetected).
	DiagLatency  netsim.Time
	DiagDetected bool
	// Diagnoses / PartialDiagnoses count completed collections after the
	// fault started and how many finished with missing sinks.
	Diagnoses        int64
	PartialDiagnoses int64
}

// buildNet constructs the shared substrate of a trial.
func buildNet(tc TrialConfig, hooks netsim.Hooks) (*topology.FatTree, *netsim.ECMPRouter, *netsim.Simulator) {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, hooks, cfg, tc.Seed)
	return ft, router, sim
}

// installWorkload starts the background mesh and returns the flows.
func installWorkload(tc TrialConfig, sim *netsim.Simulator, ft *topology.FatTree) []*workload.Flow {
	return workload.RandomBackground(sim, ft, workload.BackgroundConfig{
		NumFlows:      tc.NumFlows,
		RatePPS:       tc.RatePPS,
		RateJitter:    0.2,
		Gaps:          workload.GapExponential,
		Start:         0,
		Stop:          tc.Total,
		CrossPodBias:  1.0,
		RoundRobinSrc: true,
		RoundRobinDst: true,
	}, 1)
}

func totalLinkBytes(sim *netsim.Simulator) int64 {
	var n int64
	for _, b := range sim.Stats.LinkBytes {
		n += b
	}
	return n
}

// RunTrial executes one trial for one system and scores it against the
// injected ground truth.
func RunTrial(sys SystemKind, tc TrialConfig) TrialResult {
	switch sys {
	case SysMARS:
		return runMARSTrial(tc)
	case SysSpiderMon:
		return runSpiderMonTrial(tc)
	case SysIntSight:
		return runIntSightTrial(tc)
	default:
		return runSyNDBTrial(tc)
	}
}

// --- MARS -----------------------------------------------------------------

func runMARSTrial(tc TrialConfig) TrialResult {
	ft, _, _ := buildNet(tc, nil) // build once for the PathID table
	dcfg := dataplane.DefaultProgramConfig()
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		panic(err)
	}
	prog := dataplane.New(dcfg, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, prog, cfg, tc.Seed)
	chcfg := ctrlchan.Config{Seed: tc.Seed + 7}
	if tc.CtrlLossy {
		chcfg = ctrlchan.Lossy(tc.CtrlLoss, tc.Seed+7)
	}
	ch := ctrlchan.New(sim, chcfg)
	ccfg := controlplane.DefaultConfig()
	ccfg.Seed = tc.Seed
	if tc.CtrlNoRetry {
		ccfg.MaxRetries = 0
	}
	ctrl := controlplane.NewWithChannel(ccfg, sim, prog, ch)
	prog.Notifier = ctrl
	ctrl.Start()

	analyzer := rca.New(rca.DefaultConfig(), table, ctrl)
	var lists [][]rca.Culprit
	detected := false
	var firstDiag netsim.Time
	var diagnoses, partial int64
	ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		if d.Time >= tc.FaultStart {
			if !detected {
				detected = true
				firstDiag = d.Time - tc.FaultStart
			}
			diagnoses++
			if d.Partial() {
				partial++
			}
			lists = append(lists, analyzer.Analyze(d))
		}
	}

	ftree := ft
	installWorkload(tc, sim, ftree)
	inj := faults.NewInjector(sim, ftree, router)
	inj.Chan = ch
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	merged := rca.MergeRanked(lists)
	rank := 0
	for i, c := range merged {
		if marsMatches(c, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysMARS, GT: gt, Rank: rank, Detected: detected,
		TelemetryBytes: prog.Stats.TelemetryLinkBytes,
		DiagnosisBytes: ctrl.Bytes.DiagnosisBytes() + ctrl.Bytes.RefreshBytes + ctrl.Bytes.ThresholdPushBytes,
		TotalLinkBytes: totalLinkBytes(sim),
		DiagLatency:    firstDiag, DiagDetected: detected,
		Diagnoses: diagnoses, PartialDiagnoses: partial,
	}
}

// marsMatches decides whether a MARS culprit locates the injected fault.
// Table 1’s R@k measures whether "the root cause can be located within the
// top k culprits": a micro-burst is located by naming the offending flow;
// every other fault is located by naming the faulty switch (the same
// location-based rule the baselines are scored with — they emit no cause
// taxonomy at all). MARS’s cause labels remain part of its output and are
// evaluated separately by the cause-accuracy ablation.
func marsMatches(c rca.Culprit, gt faults.GroundTruth) bool {
	if gt.Kind == faults.MicroBurst {
		return c.Level == rca.LevelFlow &&
			c.Flow == dataplane.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}
	}
	if gt.Kind == faults.ECMPImbalance && c.Cause == rca.CauseECMPImbalance {
		return c.ContainsSwitch(gt.Switch)
	}
	if c.Level == rca.LevelFlow {
		return false
	}
	return c.ContainsSwitch(gt.Switch)
}

// marsCauseMatches is the stricter variant requiring the diagnosed cause
// class to match as well (used by the cause-accuracy ablation).
func marsCauseMatches(c rca.Culprit, gt faults.GroundTruth) bool {
	want := map[faults.Kind]rca.Cause{
		faults.MicroBurst:          rca.CauseMicroBurst,
		faults.ECMPImbalance:       rca.CauseECMPImbalance,
		faults.ProcessRateDecrease: rca.CauseProcessRate,
		faults.Delay:               rca.CauseDelay,
		faults.Drop:                rca.CauseDrop,
	}[gt.Kind]
	return c.Cause == want && marsMatches(c, gt)
}

// --- SpiderMon --------------------------------------------------------------

func runSpiderMonTrial(tc TrialConfig) TrialResult {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	sys := spidermon.New(spidermon.DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, tc.Seed)
	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	culprits := sys.Localize()
	rank := 0
	for i, c := range culprits {
		if baselineMatches(c.Switches, c.FlowID, true, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysSpiderMon, GT: gt, Rank: rank, Detected: sys.Detected(),
		TelemetryBytes: sys.TelemetryBytes,
		DiagnosisBytes: sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sim),
	}
}

// baselineMatches scores a baseline culprit: flow-identity match for
// micro-bursts (when the entry names a flow), switch containment otherwise.
func baselineMatches(switches []topology.NodeID, flowID dataplane.FlowID, hasFlow bool, gt faults.GroundTruth) bool {
	if gt.Kind == faults.MicroBurst {
		if hasFlow {
			return flowID == dataplane.FlowID{Src: gt.BurstSrcEdge, Sink: gt.BurstSinkEdge}
		}
		return false
	}
	for _, sw := range switches {
		if sw == gt.Switch {
			return true
		}
	}
	return false
}

// --- IntSight ---------------------------------------------------------------

func runIntSightTrial(tc TrialConfig) TrialResult {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	sys := intsight.New(intsight.DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, tc.Seed)
	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	culprits := sys.Localize()
	rank := 0
	for i, c := range culprits {
		var sws []topology.NodeID
		if c.Switch >= 0 {
			sws = []topology.NodeID{c.Switch}
		}
		if baselineMatches(sws, c.FlowID, c.Switch < 0, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysIntSight, GT: gt, Rank: rank, Detected: sys.Detected(),
		TelemetryBytes: sys.TelemetryBytes,
		DiagnosisBytes: sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sim),
	}
}

// --- SyNDB -------------------------------------------------------------------

func syndbQuery(k faults.Kind) syndb.Query {
	switch k {
	case faults.MicroBurst:
		return syndb.QueryMicroBurst
	case faults.ECMPImbalance:
		return syndb.QueryECMP
	case faults.ProcessRateDecrease:
		return syndb.QueryProcessRate
	case faults.Delay:
		return syndb.QueryDelay
	default:
		return syndb.QueryDrop
	}
}

func runSyNDBTrial(tc TrialConfig) TrialResult {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	sys := syndb.New(syndb.DefaultConfig(), ft.Topology)
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, sys, cfg, tc.Seed)
	installWorkload(tc, sim, ft)
	inj := faults.NewInjector(sim, ft, router)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sim.Run(tc.Total)

	culprits := sys.Localize(syndbQuery(tc.Fault))
	rank := 0
	for i, c := range culprits {
		var sws []topology.NodeID
		if c.Switch >= 0 {
			sws = []topology.NodeID{c.Switch}
		}
		if baselineMatches(sws, c.FlowID, c.Switch < 0, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysSyNDB, GT: gt, Rank: rank, Detected: true, // always-on capture
		TelemetryBytes: sys.TelemetryBytes,
		DiagnosisBytes: sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sim),
	}
}
