package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/stream"
	"mars/internal/topology"
	"mars/internal/workload"
)

// The stream trial is the continuous-operation tier: the same sharded
// k=16 data-plane simulation as the scale trial, but instead of one
// post-hoc diagnosis the sink records feed internal/stream epoch by
// epoch — bounded per-flow state, sliding-window incremental mining, a
// cross-unit culprit merge per window — while a silent-drop gray failure
// turns on and off mid-run. The trial reports the streaming service's
// whole observable surface: detection latency from fault injection to
// the first window that ranks the true culprit, localization accuracy
// as a function of the window size, and the live metrics snapshot.
//
// Everything on stdout (Render) is invariant under the simulator shard
// count AND the stream worker count — CI diffs both. Only wall-clock
// throughput on stderr varies per machine.

// StreamTrialConfig sizes one streaming-diagnosis trial.
type StreamTrialConfig struct {
	Seed   int64
	K      int
	Shards int // simulator shards; <=0 = GOMAXPROCS, clamped to units
	// Workers bounds the stream service's per-window analysis fan-out.
	Workers int
	// Background traffic, as in the scale trial.
	NumFlows int
	RatePPS  float64
	// Epoch geometry: Epochs telemetry epochs of Epoch each.
	Epoch  netsim.Time
	Epochs int
	// Windows lists the window sizes (in epochs) evaluated side by side
	// over the same record stream; Windows[0] is the primary service
	// whose metrics and detection latency are reported.
	Windows []int
	// Fault: silent drop at DropProb on one aggregation switch's
	// edge-facing ports during epochs [FaultStart, FaultStop).
	FaultStart, FaultStop uint32
	DropProb              float64
	// Stream memory bounds (zero = stream.DefaultConfig values).
	BudgetBytes    int
	EpochSampleCap int

	// Tee, if non-nil, observes every drained sink record in coordinator
	// order — the hook behind the batch-equivalence test.
	Tee func(dataplane.RTRecord)
}

// DefaultStreamTrialConfig is the benched configuration: a k-ary fabric
// under the scale trial's cross-pod mesh, 100 ms epochs, a fault over
// the middle third of the run, and windows 2/4/8 compared.
func DefaultStreamTrialConfig(k, shards int, seed int64) StreamTrialConfig {
	hosts := k * k * k / 4
	return StreamTrialConfig{
		Seed:       seed,
		K:          k,
		Shards:     shards,
		Workers:    1,
		NumFlows:   2 * hosts,
		RatePPS:    120,
		Epoch:      100 * netsim.Millisecond,
		Epochs:     15,
		Windows:    []int{4, 2, 8},
		FaultStart: 5,
		FaultStop:  10,
		DropProb:   0.30,
	}
}

// StreamWindowAccuracy is one window size's localization score: the
// fraction of fault-overlapping windows whose merged top-1 culprit is a
// drop at the injected switch.
type StreamWindowAccuracy struct {
	WindowEpochs int
	Windows      int // fault-overlapping windows analyzed
	Top1         int // of those, top-1 == ground truth
}

// StreamTrialResult carries the simulated outcome (invariant under the
// shard and worker counts) plus machine-dependent throughput figures.
type StreamTrialResult struct {
	K       int
	Shards  int // effective simulator shards actually run
	Workers int
	// Topology and workload dimensions.
	Switches, Hosts, Flows int
	// Epoch geometry and ground truth.
	Epochs     int
	EpochDur   netsim.Time
	FaultStart uint32
	FaultStop  uint32
	Culprit    topology.NodeID
	// Record flow (invariant).
	Sent, Delivered, Dropped int64
	RecordsDrained           int64
	// Primary service outcome (Windows[0]).
	PrimaryWindow    int
	DetectionEpoch   int // window-end epoch of first top-3 hit; -1 never
	DetectionLatency netsim.Time
	WindowsAnalyzed  int
	Diagnoses        int64
	Accuracy         []StreamWindowAccuracy
	MetricsJSON      string // primary service's live metrics snapshot
	// Machine-dependent accounting (stderr only).
	WallSeconds   float64
	DiagPerSec    float64 // per-unit window analyses per wall second
	RecordsPerSec float64
}

// RunStreamTrial executes one continuously-diagnosing trial: the sharded
// simulator advances one telemetry epoch per step, each shard's resident
// program taps its sink records through Program.OnRecord into a
// per-shard buffer, and the coordinator drains the buffers into the
// stream services between steps. The per-unit record order is invariant
// under the shard count, and every service consumes per-unit sequences
// only, so the simulated outcome is byte-identical for any Shards or
// Workers value.
func RunStreamTrial(tc StreamTrialConfig, progress netsim.ShardProgress) *StreamTrialResult {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	part := ft.PodPartition()
	shards := tc.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > part.NumUnits {
		shards = part.NumUnits
	}
	if shards < 1 {
		shards = 1
	}

	simCfg := scaledSimConfig()

	// The path table comes first: it covers exactly the (source edge,
	// sink edge) pairs the mesh can produce (the all-pairs set is
	// infeasible at k=16), and the data plane shares it so the MAT
	// control values that break hash collisions are consistent between
	// the per-hop chain and the sink-side decompression.
	table := selectivePathTable(ft, streamMeshPairs(ft, tc.NumFlows))
	progCfg := dataplane.DefaultProgramConfig()
	progCfg.PathCfg = table.Cfg

	owned := make([][]topology.NodeID, shards)
	for _, sw := range ft.Switches() {
		s := int(part.UnitOf[sw]) % shards
		owned[s] = append(owned[s], sw)
	}
	// One resident program per shard; each taps its sink records into its
	// own buffer. The tap runs inside the shard's event loop, so buffers
	// are strictly per-shard — the coordinator drains them between steps.
	progs := make([]*dataplane.Program, shards)
	bufs := make([][]dataplane.RTRecord, shards)
	for i := range progs {
		progs[i] = dataplane.NewResident(progCfg, ft.Topology, table, nil, owned[i])
		buf := &bufs[i]
		progs[i].OnRecord = func(_ topology.NodeID, rec dataplane.RTRecord) {
			*buf = append(*buf, rec)
		}
	}

	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	sh := netsim.NewSharded(ft.Topology, part, router, func(i int) netsim.Hooks { return progs[i] },
		simCfg, tc.Seed, netsim.ShardedConfig{Shards: shards, Progress: progress})
	defer sh.Close()

	// The scale trial's deterministic cross-pod mesh.
	total := netsim.Time(tc.Epochs) * tc.Epoch
	for i := 0; i < tc.NumFlows; i++ {
		src, dst := streamMeshEndpoints(ft, i)
		f := &workload.Flow{
			Src: src, Dst: dst, Key: netsim.FlowKey(i + 1),
			RatePPS: tc.RatePPS,
			Gaps:    workload.GapExponential,
			Start:   netsim.Time(i%97) * 50 * netsim.Microsecond,
			Stop:    total,
		}
		sh.OnNode(src, f.Install)
	}

	// One stream service per window size over the same record stream.
	svcs := make([]*stream.Service, len(tc.Windows))
	for i, w := range tc.Windows {
		scfg := stream.DefaultConfig(tc.Seed)
		scfg.Epoch = tc.Epoch
		scfg.WindowEpochs = w
		scfg.Workers = tc.Workers
		if tc.BudgetBytes > 0 {
			scfg.BudgetBytes = tc.BudgetBytes
		}
		if tc.EpochSampleCap > 0 {
			scfg.EpochSampleCap = tc.EpochSampleCap
		}
		svcs[i] = stream.New(scfg, part, table)
	}

	// Ground truth: silent drop on the edge-facing ports of the first
	// aggregation switch. Port loss state lives on the owning shard only,
	// so the mutation targets that shard's simulator between Run steps.
	badAgg := ft.AggIDs[0]
	isEdge := map[topology.NodeID]bool{}
	for _, e := range ft.EdgeIDs {
		isEdge[e] = true
	}
	setDrop := func(p float64) {
		sim := sh.Shard(sh.ShardFor(badAgg))
		for _, nb := range ft.Topology.Neighbors(badAgg) {
			if !isEdge[nb] {
				continue // edge-facing ports only
			}
			if port, ok := ft.Topology.PortTo(badAgg, nb); ok {
				sim.SetPortDropProb(badAgg, port, p)
			}
		}
	}

	var drained int64
	start := time.Now() //mars:wallclock the stream tier reports real sustained throughput
	for e := 0; e < tc.Epochs; e++ {
		if uint32(e) == tc.FaultStart {
			setDrop(tc.DropProb)
		}
		if uint32(e) == tc.FaultStop {
			setDrop(0)
		}
		sh.Run(netsim.Time(e+1) * tc.Epoch)
		// Drain shard buffers in shard order. Unit u's records live in
		// exactly one buffer (shard u%shards) in deterministic order, so
		// every per-unit ingest sequence is shard-count invariant.
		for i := range bufs {
			for _, rec := range bufs[i] {
				if tc.Tee != nil {
					tc.Tee(rec)
				}
				for _, svc := range svcs {
					svc.Ingest(rec)
				}
			}
			drained += int64(len(bufs[i]))
			bufs[i] = bufs[i][:0]
		}
		// By the end of epoch e every record of epoch e-1 has arrived
		// (one-epoch lateness bound), so e-1 and older may finalize.
		for _, svc := range svcs {
			svc.CloseEpoch(uint32(e))
		}
	}
	// One grace epoch flushes the final epoch's in-flight records.
	sh.Run(netsim.Time(tc.Epochs+1) * tc.Epoch)
	for i := range bufs {
		for _, rec := range bufs[i] {
			if tc.Tee != nil {
				tc.Tee(rec)
			}
			for _, svc := range svcs {
				svc.Ingest(rec)
			}
		}
		drained += int64(len(bufs[i]))
		bufs[i] = bufs[i][:0]
	}
	for _, svc := range svcs {
		svc.Finish()
	}
	wall := time.Since(start).Seconds() //mars:wallclock the stream tier reports real sustained throughput

	stats := sh.MergedStats()
	res := &StreamTrialResult{
		K:        tc.K,
		Shards:   sh.NumShards(),
		Workers:  tc.Workers,
		Switches: ft.NumSwitches(),
		Hosts:    ft.NumHosts(),
		Flows:    tc.NumFlows,
		Epochs:   tc.Epochs, EpochDur: tc.Epoch,
		FaultStart: tc.FaultStart, FaultStop: tc.FaultStop,
		Culprit: badAgg,
		Sent:    stats.Sent, Delivered: stats.Delivered, Dropped: stats.Dropped,
		RecordsDrained: drained,
		PrimaryWindow:  tc.Windows[0],
		DetectionEpoch: -1,
		WallSeconds:    wall,
	}

	// Detection latency: the first window (primary service) whose merged
	// list ranks a drop at the true switch within the top 3 of the
	// drop-cause culprits, measured from the fault's first epoch to that
	// window's close. The rank is within the fault's cause class: the
	// always-on latency pipeline surfaces tail-latency culprits from
	// every healthy pod each window, and the cross-unit merge normalizes
	// per unit, so class-blind rank would measure pod count, not
	// localization.
	primary := svcs[0]
	for _, w := range primary.Results() {
		if res.DetectionEpoch >= 0 {
			break
		}
		drops := 0
		for _, c := range w.Culprits {
			if c.Cause != rca.CauseDrop {
				continue
			}
			if drops++; drops > 3 {
				break
			}
			if c.ContainsSwitch(badAgg) {
				res.DetectionEpoch = int(w.End)
				res.DetectionLatency = netsim.Time(w.End+1)*tc.Epoch - netsim.Time(tc.FaultStart)*tc.Epoch
				break
			}
		}
	}
	res.WindowsAnalyzed = len(primary.Results())
	res.MetricsJSON = primary.Metrics().Snapshot()
	if v, ok := primary.Metrics().Get("diagnoses"); ok {
		res.Diagnoses = v
		if wall > 0 {
			res.DiagPerSec = float64(v) / wall
		}
	}
	if wall > 0 {
		res.RecordsPerSec = float64(drained) / wall
	}

	for i, svc := range svcs {
		acc := StreamWindowAccuracy{WindowEpochs: tc.Windows[i]}
		for _, w := range svc.Results() {
			if w.End < tc.FaultStart || w.Start >= tc.FaultStop {
				continue
			}
			acc.Windows++
			// Top-1 within the drop class, matching the detection rank.
			for _, c := range w.Culprits {
				if c.Cause != rca.CauseDrop {
					continue
				}
				if c.ContainsSwitch(badAgg) {
					acc.Top1++
				}
				break
			}
		}
		res.Accuracy = append(res.Accuracy, acc)
	}
	sort.Slice(res.Accuracy, func(i, j int) bool {
		return res.Accuracy[i].WindowEpochs < res.Accuracy[j].WindowEpochs
	})
	return res
}

// streamMeshEndpoints returns flow i's hosts under the scale trial's
// deterministic cross-pod mesh: source host i (mod hosts), destination
// 1..K-1 pods away.
func streamMeshEndpoints(ft *topology.FatTree, i int) (src, dst topology.NodeID) {
	hosts := ft.HostIDs
	perPod := len(hosts) / ft.K
	src = hosts[i%len(hosts)]
	dst = hosts[(i%len(hosts)+perPod*(1+i%(ft.K-1)))%len(hosts)]
	return src, dst
}

// streamMeshPairs returns the set of (source edge, sink edge) switch
// pairs the mesh's first numFlows flows traverse.
func streamMeshPairs(ft *topology.FatTree, numFlows int) map[[2]topology.NodeID]bool {
	pairs := map[[2]topology.NodeID]bool{}
	for i := 0; i < numFlows; i++ {
		src, dst := streamMeshEndpoints(ft, i)
		se, _ := ft.EdgeSwitchOf(src)
		de, _ := ft.EdgeSwitchOf(dst)
		pairs[[2]topology.NodeID{se, de}] = true
	}
	return pairs
}

// selectivePathTable builds a path-ID table over exactly the edge pairs
// the workload uses, widening the ID space until the used set is
// collision-free.
func selectivePathTable(ft *topology.FatTree, pairs map[[2]topology.NodeID]bool) *pathid.Table {
	keys := make([][2]topology.NodeID, 0, len(pairs))
	for p := range pairs { //mars:mapiter-ok keys are sorted before use
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var paths []topology.Path
	for _, p := range keys {
		if p[0] == p[1] {
			continue
		}
		paths = append(paths, ft.AllShortestPaths(p[0], p[1])...)
	}
	cfg := pathid.DefaultConfig()
	for {
		table, err := pathid.BuildTable(cfg, ft.Topology, paths)
		if err == nil {
			return table
		}
		// The wire format carries 16 PathID bits, so that is the ceiling.
		if cfg.Width >= 16 {
			panic(err)
		}
		cfg.Width += 8
	}
}

// Render formats the simulated outcome. Invariant under both the
// simulator shard count and the stream worker count — the determinism CI
// job diffs this output across both — so neither Shards, Workers, nor
// any wall-clock figure may appear.
func (r *StreamTrialResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream trial: continuous diagnosis at K=%d\n", r.K)
	fmt.Fprintf(&b, "  topology: switches=%d hosts=%d flows=%d\n", r.Switches, r.Hosts, r.Flows)
	fmt.Fprintf(&b, "  timeline: epochs=%d epoch=%v fault=[%d,%d) culprit=s%d\n",
		r.Epochs, r.EpochDur, r.FaultStart, r.FaultStop, r.Culprit)
	fmt.Fprintf(&b, "  packets:  sent=%d delivered=%d dropped=%d records=%d\n",
		r.Sent, r.Delivered, r.Dropped, r.RecordsDrained)
	if r.DetectionEpoch >= 0 {
		fmt.Fprintf(&b, "  detect:   window=%d epochs, first-hit epoch=%d latency=%v\n",
			r.PrimaryWindow, r.DetectionEpoch, r.DetectionLatency)
	} else {
		fmt.Fprintf(&b, "  detect:   window=%d epochs, MISSED (%d windows analyzed)\n",
			r.PrimaryWindow, r.WindowsAnalyzed)
	}
	for _, a := range r.Accuracy {
		pct := 0.0
		if a.Windows > 0 {
			pct = 100 * float64(a.Top1) / float64(a.Windows)
		}
		fmt.Fprintf(&b, "  window=%d: fault-windows=%d top1=%d (%.0f%%)\n",
			a.WindowEpochs, a.Windows, a.Top1, pct)
	}
	fmt.Fprintf(&b, "  metrics:  %s\n", r.MetricsJSON)
	return b.String()
}

// TimingLine is the machine-readable stderr throughput summary.
func (r *StreamTrialResult) TimingLine() string {
	return fmt.Sprintf("timing: exp=stream-trial k=%d shards=%d workers=%d wall=%.2fs records/s=%.0f diagnoses/s=%.0f",
		r.K, r.Shards, r.Workers, r.WallSeconds, r.RecordsPerSec, r.DiagPerSec)
}
