package experiments

import (
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/rca"
	"mars/internal/stream"
	"mars/internal/topology"
)

// testStreamConfig is a small-but-real trial: k=4 fabric, enough traffic
// and fault duration for the drop pipeline to clear its support floors.
func testStreamConfig(seed int64, shards, workers int) StreamTrialConfig {
	tc := DefaultStreamTrialConfig(4, shards, seed)
	tc.Workers = workers
	tc.NumFlows = 64
	tc.RatePPS = 120
	tc.Epochs = 12
	tc.FaultStart = 4
	tc.FaultStop = 9
	tc.DropProb = 0.3
	tc.Windows = []int{3, 2}
	return tc
}

// The driver's stdout surface must be byte-identical for any simulator
// shard count and any stream worker count.
func TestStreamTrialShardWorkerInvariance(t *testing.T) {
	base := RunStreamTrial(testStreamConfig(42, 1, 1), nil)
	out := base.Render()
	for _, tc := range []struct{ shards, workers int }{{2, 1}, {4, 1}, {1, 4}, {3, 7}} {
		got := RunStreamTrial(testStreamConfig(42, tc.shards, tc.workers), nil).Render()
		if got != out {
			t.Errorf("shards=%d workers=%d diverges from shards=1 workers=1:\n--- base ---\n%s--- got ---\n%s",
				tc.shards, tc.workers, out, got)
		}
	}
}

// The trial must actually detect the injected silent drop: a drop culprit
// containing the faulted aggregation switch within the top 3 of some
// window, with positive latency from the fault start.
func TestStreamTrialDetectsFault(t *testing.T) {
	r := RunStreamTrial(testStreamConfig(42, 2, 2), nil)
	if r.DetectionEpoch < 0 {
		t.Fatalf("fault never detected:\n%s", r.Render())
	}
	if r.DetectionEpoch < int(r.FaultStart) {
		t.Fatalf("detection epoch %d precedes fault start %d", r.DetectionEpoch, r.FaultStart)
	}
	if r.DetectionLatency <= 0 {
		t.Fatalf("non-positive detection latency %v", r.DetectionLatency)
	}
	if r.RecordsDrained == 0 {
		t.Fatal("no sink records drained")
	}
}

// flatThresholds is the batch comparison's stand-in for the controller's
// reservoirs: the paper's deliberately high default for unknown flows.
type flatThresholds struct{}

func (flatThresholds) ThresholdOf(dataplane.FlowID) netsim.Time {
	return 10 * netsim.Second
}

// The windowed streaming path must converge to the batch path's verdict:
// one analyzer over the full record trace (the post-hoc diagnosis) and
// the stream's cross-window merge must blame the same top-1 switch.
func TestStreamMatchesBatchTop1(t *testing.T) {
	var all []dataplane.RTRecord
	tc := testStreamConfig(42, 1, 1)
	// Static fault: on for the entire run, the convergence setting — both
	// paths see the same sustained deficit against their cumulative margin.
	tc.FaultStart = 0
	tc.FaultStop = uint32(tc.Epochs) + 2
	tc.Tee = func(rec dataplane.RTRecord) { all = append(all, rec) }

	// Re-run the primary service standalone to read its merged list (the
	// driver reports only the rendered surface).
	r := RunStreamTrial(tc, nil)
	if len(all) == 0 {
		t.Fatal("tee saw no records")
	}

	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		t.Fatal(err)
	}
	table := selectivePathTable(ft, streamMeshPairs(ft, tc.NumFlows))

	scfg := stream.DefaultConfig(tc.Seed)
	scfg.Epoch = tc.Epoch
	scfg.WindowEpochs = tc.Windows[0]
	svc := stream.New(scfg, ft.PodPartition(), table)
	// Replay in drain order, sealing as the stream advances: once a record
	// of epoch e appears, every record of epoch <= e-2 has already drained
	// (the one-epoch lateness bound), so e-1 and older may finalize.
	cur := uint32(0)
	for _, rec := range all {
		if rec.Epoch > cur {
			svc.CloseEpoch(rec.Epoch - 1)
			cur = rec.Epoch
		}
		svc.Ingest(rec)
	}
	svc.Finish()
	if len(svc.Results()) == 0 {
		t.Fatalf("stream produced no windows:\n%s", r.Render())
	}

	// Batch verdict: one diagnosis over the entire trace with a recent
	// window covering the whole run.
	rcfg := rca.DefaultConfig()
	rcfg.EpochDuration = tc.Epoch
	rcfg.RecentWindow = netsim.Time(tc.Epochs+1) * tc.Epoch
	an := rca.New(rcfg, table, flatThresholds{})
	batch := an.AnalyzeWindow(all, netsim.Time(tc.Epochs+1)*tc.Epoch, 1)
	if len(batch) == 0 {
		t.Fatal("batch analyzer produced no culprits")
	}

	if !batch[0].ContainsSwitch(r.Culprit) {
		t.Fatalf("batch top-1 %v does not blame ground truth s%d", batch[0], r.Culprit)
	}

	// Convergence: once the reservoir thresholds and affected-flow sets
	// stabilize, a window's top-1 must reach the batch verdict exactly —
	// same cause, same location.
	converged := false
	for _, w := range svc.Results() {
		if len(w.Culprits) == 0 {
			continue
		}
		c := w.Culprits[0]
		if c.Cause == batch[0].Cause && c.Level == batch[0].Level &&
			topology.Path(c.Location).String() == topology.Path(batch[0].Location).String() {
			converged = true
			break
		}
	}
	if !converged {
		var got []string
		for _, w := range svc.Results() {
			if len(w.Culprits) > 0 {
				got = append(got, w.Culprits[0].String())
			}
		}
		t.Fatalf("no window top-1 converged to the batch verdict %v; window tops: %v", batch[0], got)
	}
}
