package experiments

import (
	"mars/internal/baselines/intsight"
	"mars/internal/baselines/spidermon"
	"mars/internal/baselines/syndb"
	"mars/internal/controlplane"
	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/telemetry"
	"mars/internal/topology"
)

// Substrate is the per-trial simulation stack shared by every compared
// system: one fat-tree, one ECMP router, one simulator. It is built
// exactly once per trial (the MARS path used to construct the topology and
// router twice), by runSystemTrial.
type Substrate struct {
	FT     *topology.FatTree
	Router *netsim.ECMPRouter
	Sim    *netsim.Simulator
}

// newFatTree builds the trial's topology, panicking on a malformed K (the
// harness recovers trial panics into typed errors).
func newFatTree(tc TrialConfig) *topology.FatTree {
	ft, err := topology.NewFatTree(tc.K)
	if err != nil {
		panic(err)
	}
	return ft
}

// newSubstrate wires the router and simulator around the topology with the
// trial's physical configuration and seed.
func newSubstrate(tc TrialConfig, ft *topology.FatTree, hooks netsim.Hooks) *Substrate {
	router := netsim.NewECMPRouter(ft.Topology, uint64(tc.Seed))
	cfg := scaledSimConfig()
	if tc.SimCfg != nil {
		cfg = *tc.SimCfg
	}
	sim := netsim.New(ft.Topology, router, hooks, cfg, tc.Seed)
	return &Substrate{FT: ft, Router: router, Sim: sim}
}

// SystemUnderTest wires one compared system into a trial. The lifecycle is
// fixed by runSystemTrial: Build constructs the system's data-plane hooks
// against the trial topology (before the simulator exists), Start attaches
// whatever needs the live simulator (controller, control channel, fault
// injector), and Localize scores the finished run into a TrialResult.
// Implementations carry per-trial state, so a fresh value must be built
// for every trial (newSystem); instances are never shared across harness
// workers.
type SystemUnderTest interface {
	// Kind names the system (Table 1 column).
	Kind() SystemKind
	// Build constructs the system for this trial's topology and returns
	// the data-plane hooks the simulator must install.
	Build(tc TrialConfig, ft *topology.FatTree) netsim.Hooks
	// Start completes wiring once the simulator exists; it runs before
	// traffic is installed and before the fault is injected.
	Start(tc TrialConfig, sub *Substrate, inj *faults.Injector)
	// Localize scores the finished run against the injected ground truth.
	Localize(tc TrialConfig, sub *Substrate, gt faults.GroundTruth) TrialResult
}

// newSystem builds a fresh per-trial SystemUnderTest for one Table-1
// column.
func newSystem(kind SystemKind) SystemUnderTest {
	switch kind {
	case SysMARS:
		return &marsSystem{}
	case SysSpiderMon:
		return &spiderMonSystem{}
	case SysIntSight:
		return &intSightSystem{}
	case SysSyNDB:
		return &synDBSystem{}
	default:
		return &synDBSystem{}
	}
}

// runSystemTrial is the single substrate-construction path behind every
// trial: build the topology once, hand it to the system for its hooks,
// build the simulator once, wire the system and injector, run the
// workload and fault, and score.
func runSystemTrial(s SystemUnderTest, tc TrialConfig) TrialResult {
	ft := newFatTree(tc)
	sub := newSubstrate(tc, ft, s.Build(tc, ft))
	inj := faults.NewInjector(sub.Sim, ft, sub.Router)
	s.Start(tc, sub, inj)
	installWorkload(tc, sub.Sim, ft)
	gt := inj.Inject(tc.Fault, tc.FaultStart, tc.FaultDur)
	sub.Sim.Run(tc.Total)
	res := s.Localize(tc, sub, gt)
	// The handle is live injection lifecycle state, not part of the result
	// record; keeping it would make otherwise-identical results compare
	// unequal across reruns.
	res.GT.Handle = nil
	return res
}

// --- MARS -----------------------------------------------------------------

// marsSystem runs MARS proper: PathID table, in-switch program, explicit
// control channel, controller, and RCA. The two optional knobs serve the
// ablations: mutateRCA edits the analyzer config before construction, and
// strictCause switches Localize to the cause-class matching rule.
type marsSystem struct {
	mutateRCA   func(*rca.Config)
	strictCause bool

	// Per-trial state, populated by Build/Start and consumed by Localize.
	table       *pathid.Table
	prog        *dataplane.Program
	codec       telemetry.Codec
	ch          *ctrlchan.Channel
	ctrl        *controlplane.Controller
	lists       [][]rca.Culprit
	detected    bool
	firstDiag   netsim.Time
	diagnoses   int64
	partial     int64
	falseAlarms int64
}

func (m *marsSystem) Kind() SystemKind { return SysMARS }

func (m *marsSystem) Build(tc TrialConfig, ft *topology.FatTree) netsim.Hooks {
	dcfg := dataplane.DefaultProgramConfig()
	if tc.Codec != "" {
		cdc, err := telemetry.New(tc.Codec, tc.Seed)
		if err != nil {
			panic(err)
		}
		m.codec = cdc
		dcfg.Codec = cdc
	}
	table, err := pathid.BuildTable(dcfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		panic(err)
	}
	m.table = table
	m.prog = dataplane.New(dcfg, ft.Topology, table, nil)
	return m.prog
}

func (m *marsSystem) Start(tc TrialConfig, sub *Substrate, inj *faults.Injector) {
	chcfg := ctrlchan.Config{Seed: tc.ctrlSeed()}
	if tc.CtrlLossy {
		chcfg = ctrlchan.Lossy(tc.CtrlLoss, tc.ctrlSeed())
	}
	m.ch = ctrlchan.New(sub.Sim, chcfg)
	ccfg := controlplane.DefaultConfig()
	ccfg.Seed = tc.Seed
	if m.codec != nil {
		ccfg.Decoder = m.codec
	}
	if tc.CtrlNoRetry {
		ccfg.MaxRetries = 0
	}
	m.ctrl = controlplane.NewWithChannel(ccfg, sub.Sim, m.prog, m.ch)
	m.prog.Notifier = m.ctrl
	m.ctrl.Start()

	rcfg := rca.DefaultConfig()
	if m.mutateRCA != nil {
		m.mutateRCA(&rcfg)
	}
	analyzer := rca.New(rcfg, m.table, m.ctrl)
	m.ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		if d.Time >= tc.FaultStart {
			if !m.detected {
				m.detected = true
				m.firstDiag = d.Time - tc.FaultStart
			}
			m.diagnoses++
			if d.Partial() {
				m.partial++
			}
			m.lists = append(m.lists, analyzer.Analyze(d))
		} else {
			m.falseAlarms++
		}
	}
	inj.Chan = m.ch
	// Wire the reboot register flush: a SwitchReboot injection wipes the
	// program's IT/ET/RT state on recovery. Harmless for every other
	// scenario (the flusher only fires from a reboot revert).
	inj.Registers = m.prog
}

func (m *marsSystem) Localize(tc TrialConfig, sub *Substrate, gt faults.GroundTruth) TrialResult {
	match := marsMatches
	if m.strictCause {
		match = marsCauseMatches
	}
	rank := 0
	for i, c := range rca.MergeRanked(m.lists) {
		if match(c, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysMARS, GT: gt, Rank: rank, Detected: m.detected,
		TelemetryBytes: m.prog.Stats.TelemetryLinkBytes,
		DiagnosisBytes: m.ctrl.Bytes.DiagnosisBytes() + m.ctrl.Bytes.RefreshBytes + m.ctrl.Bytes.ThresholdPushBytes,
		TotalLinkBytes: totalLinkBytes(sub.Sim),
		DiagLatency:    m.firstDiag, DiagDetected: m.detected,
		Diagnoses: m.diagnoses, PartialDiagnoses: m.partial,
		Packets:          sub.Sim.Stats.Sent,
		TelemetryPackets: m.prog.Stats.TelemetryPackets,
		FalseAlarms:      m.falseAlarms,
	}
}

// ctrlSeed resolves the trial's control-channel seed: the value the
// SeedPlan derived (constructors always set it), or the legacy offset for
// hand-rolled zero-value configs.
func (tc TrialConfig) ctrlSeed() int64 {
	if tc.CtrlSeed != 0 {
		return tc.CtrlSeed
	}
	return harness.LegacyPlan{}.CtrlChanSeed(tc.Seed)
}

// --- SpiderMon --------------------------------------------------------------

type spiderMonSystem struct {
	sys *spidermon.System
}

func (s *spiderMonSystem) Kind() SystemKind { return SysSpiderMon }

func (s *spiderMonSystem) Build(tc TrialConfig, ft *topology.FatTree) netsim.Hooks {
	s.sys = spidermon.New(spidermon.DefaultConfig(), ft.Topology)
	return s.sys
}

func (s *spiderMonSystem) Start(TrialConfig, *Substrate, *faults.Injector) {}

func (s *spiderMonSystem) Localize(tc TrialConfig, sub *Substrate, gt faults.GroundTruth) TrialResult {
	rank := 0
	for i, c := range s.sys.Localize() {
		if baselineMatches(c.Switches, c.FlowID, true, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysSpiderMon, GT: gt, Rank: rank, Detected: s.sys.Detected(),
		TelemetryBytes: s.sys.TelemetryBytes,
		DiagnosisBytes: s.sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sub.Sim),
	}
}

// --- IntSight ---------------------------------------------------------------

type intSightSystem struct {
	sys *intsight.System
}

func (s *intSightSystem) Kind() SystemKind { return SysIntSight }

func (s *intSightSystem) Build(tc TrialConfig, ft *topology.FatTree) netsim.Hooks {
	s.sys = intsight.New(intsight.DefaultConfig(), ft.Topology)
	return s.sys
}

func (s *intSightSystem) Start(TrialConfig, *Substrate, *faults.Injector) {}

func (s *intSightSystem) Localize(tc TrialConfig, sub *Substrate, gt faults.GroundTruth) TrialResult {
	rank := 0
	for i, c := range s.sys.Localize() {
		var sws []topology.NodeID
		if c.Switch >= 0 {
			sws = []topology.NodeID{c.Switch}
		}
		if baselineMatches(sws, c.FlowID, c.Switch < 0, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysIntSight, GT: gt, Rank: rank, Detected: s.sys.Detected(),
		TelemetryBytes: s.sys.TelemetryBytes,
		DiagnosisBytes: s.sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sub.Sim),
	}
}

// --- SyNDB -------------------------------------------------------------------

type synDBSystem struct {
	sys *syndb.System
}

func (s *synDBSystem) Kind() SystemKind { return SysSyNDB }

func (s *synDBSystem) Build(tc TrialConfig, ft *topology.FatTree) netsim.Hooks {
	s.sys = syndb.New(syndb.DefaultConfig(), ft.Topology)
	return s.sys
}

func (s *synDBSystem) Start(TrialConfig, *Substrate, *faults.Injector) {}

func (s *synDBSystem) Localize(tc TrialConfig, sub *Substrate, gt faults.GroundTruth) TrialResult {
	rank := 0
	for i, c := range s.sys.Localize(syndbQuery(tc.Fault)) {
		var sws []topology.NodeID
		if c.Switch >= 0 {
			sws = []topology.NodeID{c.Switch}
		}
		if baselineMatches(sws, c.FlowID, c.Switch < 0, gt) {
			rank = i + 1
			break
		}
	}
	return TrialResult{
		System: SysSyNDB, GT: gt, Rank: rank, Detected: true, // always-on capture
		TelemetryBytes: s.sys.TelemetryBytes,
		DiagnosisBytes: s.sys.DiagnosisBytes,
		TotalLinkBytes: totalLinkBytes(sub.Sim),
	}
}
