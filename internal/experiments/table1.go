package experiments

import (
	"fmt"
	"strings"

	"mars/internal/faults"
	"mars/internal/harness"
	"mars/internal/metrics"
)

// Table1Cell aggregates one (fault, system) cell.
type Table1Cell struct {
	Loc metrics.Localization
}

// Table1Result holds the full Table 1 matrix plus the Overall row.
type Table1Result struct {
	Trials int
	// Cells[fault][system].
	Cells map[faults.Kind]map[SystemKind]*Table1Cell
}

// RunTable1 runs `trials` trials per fault kind per system with the
// default engine options (legacy seeds, GOMAXPROCS workers).
func RunTable1(trials int, baseSeed int64) *Table1Result {
	return RunTable1With(EngineOptions{}, trials, baseSeed)
}

// RunTable1With runs the Table 1 matrix on the harness. Seeds derive from
// baseSeed through the options' SeedPlan so every system faces the same
// fault sequence; trials execute on the worker pool and aggregate in the
// historical (fault, trial, system) nesting order, so the result is
// byte-identical for any worker count.
func RunTable1With(opts EngineOptions, trials int, baseSeed int64) *Table1Result {
	plan := opts.plan()
	type unit struct {
		kind faults.Kind
		sys  SystemKind
	}
	var (
		units []unit
		tcs   []TrialConfig
		ts    []harness.Trial
	)
	res := &Table1Result{
		Trials: trials,
		Cells:  make(map[faults.Kind]map[SystemKind]*Table1Cell),
	}
	for _, kind := range faults.Kinds() {
		res.Cells[kind] = make(map[SystemKind]*Table1Cell)
		for _, sys := range Systems() {
			res.Cells[kind][sys] = &Table1Cell{}
		}
		for t := 0; t < trials; t++ {
			seed := plan.TrialSeed(baseSeed, int(kind), t)
			tc := DefaultTrialConfig(seed, kind)
			tc.CtrlSeed = plan.CtrlChanSeed(seed)
			for _, sys := range Systems() {
				units = append(units, unit{kind, sys})
				tcs = append(tcs, tc)
				ts = append(ts, harness.Trial{
					Index: len(ts), Seed: seed,
					Label: fmt.Sprintf("table1/%s/%s/t%d", kind, sys, t),
				})
			}
		}
	}
	results := mustRun(opts, ts, func(tr harness.Trial) TrialResult {
		return opts.runTrial(units[tr.Index].sys, tcs[tr.Index])
	})
	for i, r := range results {
		res.Cells[units[i].kind][units[i].sys].Loc.Add(r.Rank)
	}
	return res
}

// Overall merges all fault kinds for one system.
func (r *Table1Result) Overall(sys SystemKind) *metrics.Localization {
	var all metrics.Localization
	for _, kind := range faults.Kinds() {
		all.Merge(&r.Cells[kind][sys].Loc)
	}
	return &all
}

// Render formats the matrix like the paper's Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Recall@k and Exam Score (%d trials per fault)\n", r.Trials)
	fmt.Fprintf(&b, "%-14s %-10s %6s %6s %6s %6s %8s\n", "Fault", "System", "R@1", "R@2", "R@3", "R@5", "Exam")
	row := func(name string, sys SystemKind, loc *metrics.Localization) {
		fmt.Fprintf(&b, "%-14s %-10s %6.2f %6.2f %6.2f %6.2f %8.2f\n",
			name, sys, loc.RecallAt(1), loc.RecallAt(2), loc.RecallAt(3), loc.RecallAt(5), loc.MeanExamScore())
	}
	for _, kind := range faults.Kinds() {
		for _, sys := range Systems() {
			row(kind.String(), sys, &r.Cells[kind][sys].Loc)
		}
	}
	for _, sys := range Systems() {
		row("overall", sys, r.Overall(sys))
	}
	return b.String()
}
