// Package faults injects the paper's five fault scenarios (§5.2) into a
// running simulation and records the ground truth needed to score
// localization:
//
//   - Micro-burst: a transient flow at >1000 pps for about a second.
//   - ECMP load imbalance: a randomly picked switch's equal split is skewed
//     to a ratio between 1:4 and 1:10.
//   - Process-rate decrease: one port of a random switch is limited below
//     100 pps.
//   - Delay: switch-level extra latency outside the queue (Chaosblade-style
//     interface injection).
//   - Drop: probabilistic loss on a random inter-switch port.
//
// A sixth, beyond-the-paper scenario degrades the monitoring system
// itself: CtrlChanDegrade makes the controller↔switch control channel
// lossy, exercising the control plane's retry and degraded-diagnosis
// machinery (see internal/ctrlchan).
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"mars/internal/ctrlchan"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

// Kind enumerates the five scenarios.
type Kind uint8

const (
	// MicroBurst is the flow-level scenario.
	MicroBurst Kind = iota
	// ECMPImbalance is the switch-level scenario.
	ECMPImbalance
	// ProcessRateDecrease is the port/switch-level slow-drain scenario.
	ProcessRateDecrease
	// Delay is out-of-queue latency at a switch.
	Delay
	// Drop is unanticipated packet loss at a port.
	Drop
	// CtrlChanDegrade is the sixth, control-plane-level scenario (this
	// repository's addition): the controller↔switch channel itself loses
	// messages, so notifications, collections, refresh pulls, and
	// threshold pushes all become unreliable while the data plane keeps
	// forwarding normally.
	CtrlChanDegrade
)

// Kinds lists all scenarios in the paper's Table 1 order. CtrlChanDegrade
// is not part of the Table 1 suite — it degrades the monitoring system
// rather than the monitored network, and is swept by the ctrlchan
// experiment instead.
func Kinds() []Kind {
	return []Kind{MicroBurst, ECMPImbalance, ProcessRateDecrease, Delay, Drop}
}

func (k Kind) String() string {
	switch k {
	case MicroBurst:
		return "micro-burst"
	case ECMPImbalance:
		return "ecmp-imbalance"
	case ProcessRateDecrease:
		return "process-rate"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case CtrlChanDegrade:
		return "ctrl-chan"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Parse maps a scenario name (as printed by Kind.String, matched
// case-insensitively) to its Kind. All six scenarios parse, including
// ctrl-chan. The error for an unknown name lists the valid set, so CLI
// surfaces can echo it directly.
func Parse(name string) (Kind, error) {
	all := append(Kinds(), CtrlChanDegrade)
	for _, k := range all {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	names := make([]string, len(all))
	for i, k := range all {
		names[i] = k.String()
	}
	return 0, fmt.Errorf("faults: unknown fault %q (valid: %s)", name, strings.Join(names, ", "))
}

// GroundTruth describes the injected fault for scoring.
type GroundTruth struct {
	Kind Kind
	// Switch is the culprit switch (the skewed switch for ECMP, the slow /
	// delayed / dropping switch otherwise; the burst flow's source edge
	// switch for micro-bursts).
	Switch topology.NodeID
	// Port is the culprit egress port where the fault is port-scoped
	// (process rate, drop); -1 otherwise.
	Port topology.PortID
	// BurstSrcEdge/BurstSinkEdge identify the offending flow for
	// micro-bursts.
	BurstSrcEdge, BurstSinkEdge topology.NodeID
	// CtrlLoss is the control-channel loss probability for
	// CtrlChanDegrade; 0 otherwise.
	CtrlLoss float64
	// Start and End bound the fault's active window.
	Start, End netsim.Time
}

func (g GroundTruth) String() string {
	switch g.Kind {
	case MicroBurst:
		return fmt.Sprintf("%v flow <s%d,s%d> [%v,%v]", g.Kind, g.BurstSrcEdge, g.BurstSinkEdge, g.Start, g.End)
	case ProcessRateDecrease, Drop:
		return fmt.Sprintf("%v s%d port %d [%v,%v]", g.Kind, g.Switch, g.Port, g.Start, g.End)
	case CtrlChanDegrade:
		return fmt.Sprintf("%v loss=%.0f%% [%v,%v]", g.Kind, 100*g.CtrlLoss, g.Start, g.End)
	default:
		return fmt.Sprintf("%v s%d [%v,%v]", g.Kind, g.Switch, g.Start, g.End)
	}
}

// Injector plants faults into a simulation over a fat-tree.
type Injector struct {
	Sim    *netsim.Simulator
	FT     *topology.FatTree
	Router *netsim.ECMPRouter
	// Chan is the control channel degraded by CtrlChanDegrade; leaving it
	// nil (a deployment without an explicit channel) makes that scenario
	// unavailable.
	Chan *ctrlchan.Channel
	rng  *rand.Rand
}

// NewInjector creates an injector drawing randomness from the simulator's
// seeded source (so trials are reproducible).
func NewInjector(sim *netsim.Simulator, ft *topology.FatTree, router *netsim.ECMPRouter) *Injector {
	return &Injector{Sim: sim, FT: ft, Router: router, rng: sim.RNG()}
}

// interSwitchPorts lists sw's ports whose peer is a switch.
func (in *Injector) interSwitchPorts(sw topology.NodeID) []topology.PortID {
	var out []topology.PortID
	for i, p := range in.FT.Node(sw).Ports {
		if in.FT.IsSwitch(p.Peer) {
			out = append(out, topology.PortID(i))
		}
	}
	return out
}

// Inject schedules a fault of the given kind over [start, start+dur] and
// returns its ground truth.
func (in *Injector) Inject(kind Kind, start, dur netsim.Time) GroundTruth {
	gt := GroundTruth{Kind: kind, Port: -1, Start: start, End: start + dur}
	switch kind {
	case MicroBurst:
		hosts := in.FT.HostIDs
		src := hosts[in.rng.Intn(len(hosts))]
		srcEdge, _ := in.FT.EdgeSwitchOf(src)
		// The burst must cross the fabric to be observable: pick a
		// destination behind a different edge switch.
		var dst topology.NodeID
		var sinkEdge topology.NodeID
		for {
			dst = hosts[in.rng.Intn(len(hosts))]
			sinkEdge, _ = in.FT.EdgeSwitchOf(dst)
			if sinkEdge != srcEdge {
				break
			}
		}
		gt.Switch = srcEdge
		gt.BurstSrcEdge, gt.BurstSinkEdge = srcEdge, sinkEdge
		pps := 1000 + in.rng.Float64()*1000 // >1000 pps, paper §5.2
		key := netsim.FlowKey(0xB0000000 + uint64(in.rng.Intn(1<<20)))
		workload.Burst(in.Sim, src, dst, key, pps, start, dur, 1000)

	case ECMPImbalance:
		// Pick a switch with an equal-cost choice: any edge or aggregation
		// switch (K/2 uplinks each).
		var cands []topology.NodeID
		cands = append(cands, in.FT.EdgeIDs...)
		cands = append(cands, in.FT.AggIDs...)
		sw := cands[in.rng.Intn(len(cands))]
		gt.Switch = sw
		// Skew toward one uplink with ratio 1:r, r in [4,10].
		r := int32(4 + in.rng.Intn(7))
		ups := in.uplinks(sw)
		skewed := ups[in.rng.Intn(len(ups))]
		in.Sim.At(start, func() { in.Router.SetWeight(sw, skewed, r) })
		in.Sim.At(gt.End, func() { in.Router.ResetWeights(sw) })

	case ProcessRateDecrease:
		sw := in.randomSwitch()
		ports := in.interSwitchPorts(sw)
		port := ports[in.rng.Intn(len(ports))]
		gt.Switch, gt.Port = sw, port
		// The paper limits the port below 100 pps against ~200 pps flows —
		// about half the port's typical load. Scaled to this substrate's
		// ~1000-1200 pps uplinks: a 150-400 pps cap reproduces the same
		// queue-buildup-with-stable-input symptom without turning the port
		// into a blackhole.
		pps := 150 + in.rng.Float64()*250
		in.Sim.At(start, func() { in.Sim.SetPortRateLimit(sw, port, pps) })
		in.Sim.At(gt.End, func() { in.Sim.SetPortRateLimit(sw, port, 0) })

	case Delay:
		sw := in.randomSwitch()
		gt.Switch = sw
		d := netsim.Time(20+in.rng.Intn(80)) * netsim.Millisecond
		in.Sim.At(start, func() { in.Sim.SetSwitchExtraDelay(sw, d) })
		in.Sim.At(gt.End, func() { in.Sim.SetSwitchExtraDelay(sw, 0) })

	case Drop:
		sw := in.randomSwitch()
		ports := in.interSwitchPorts(sw)
		port := ports[in.rng.Intn(len(ports))]
		gt.Switch, gt.Port = sw, port
		p := 0.4 + in.rng.Float64()*0.5
		in.Sim.At(start, func() { in.Sim.SetPortDropProb(sw, port, p) })
		in.Sim.At(gt.End, func() { in.Sim.SetPortDropProb(sw, port, 0) })

	case CtrlChanDegrade:
		// A randomly drawn loss rate in the 10-30% band the ctrlchan
		// experiment sweeps; use InjectCtrlChanLoss for an exact rate.
		return in.InjectCtrlChanLoss(start, gt.End-start, 0.1+in.rng.Float64()*0.2)
	}
	return gt
}

// InjectCtrlChanLoss degrades the control channel to the given symmetric
// loss probability over [start, start+dur]. The data plane is untouched:
// only the monitoring system's own messaging suffers.
func (in *Injector) InjectCtrlChanLoss(start, dur netsim.Time, loss float64) GroundTruth {
	if in.Chan == nil {
		panic("faults: CtrlChanDegrade requires an attached ctrlchan.Channel")
	}
	gt := GroundTruth{
		Kind: CtrlChanDegrade, Switch: -1, Port: -1,
		CtrlLoss: loss, Start: start, End: start + dur,
	}
	in.Sim.At(start, func() {
		in.Chan.SetLoss(ctrlchan.ToController, loss)
		in.Chan.SetLoss(ctrlchan.ToSwitch, loss)
	})
	in.Sim.At(gt.End, func() {
		in.Chan.SetLoss(ctrlchan.ToController, 0)
		in.Chan.SetLoss(ctrlchan.ToSwitch, 0)
	})
	return gt
}

// uplinks returns the next-hop switches above sw (toward the core).
func (in *Injector) uplinks(sw topology.NodeID) []topology.NodeID {
	var ups []topology.NodeID
	layer := in.FT.Node(sw).Layer
	for _, p := range in.FT.Node(sw).Ports {
		peer := p.Peer
		if !in.FT.IsSwitch(peer) {
			continue
		}
		pl := in.FT.Node(peer).Layer
		if (layer == topology.LayerEdge && pl == topology.LayerAggregation) ||
			(layer == topology.LayerAggregation && pl == topology.LayerCore) {
			ups = append(ups, peer)
		}
	}
	return ups
}

// randomSwitch picks uniformly among all switches.
func (in *Injector) randomSwitch() topology.NodeID {
	sws := in.FT.Switches()
	return sws[in.rng.Intn(len(sws))]
}
