// Package faults injects the paper's five fault scenarios (§5.2) into a
// running simulation and records the ground truth needed to score
// localization:
//
//   - Micro-burst: a transient flow at >1000 pps for about a second.
//   - ECMP load imbalance: a randomly picked switch's equal split is skewed
//     to a ratio between 1:4 and 1:10.
//   - Process-rate decrease: one port of a random switch is limited below
//     100 pps.
//   - Delay: switch-level extra latency outside the queue (Chaosblade-style
//     interface injection).
//   - Drop: probabilistic loss on a random inter-switch port.
//
// A sixth, beyond-the-paper scenario degrades the monitoring system
// itself: CtrlChanDegrade makes the controller↔switch control channel
// lossy, exercising the control plane's retry and degraded-diagnosis
// machinery (see internal/ctrlchan).
//
// Beyond those single-shot scenarios, the package models the gray
// failures real fabrics actually see — silent partial drop, link
// flapping, hard link failure, switch reboots that wipe register state,
// and a degraded uplink whose ECMP reaction masquerades as a switch
// fault. Gray faults compose into timed, overlapping Schedules (see
// schedule.go) whose Episode ground truth records causal links between
// co-injected faults.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mars/internal/ctrlchan"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

// Kind enumerates the fault scenarios.
type Kind uint8

const (
	// MicroBurst is the flow-level scenario.
	MicroBurst Kind = iota
	// ECMPImbalance is the switch-level scenario.
	ECMPImbalance
	// ProcessRateDecrease is the port/switch-level slow-drain scenario.
	ProcessRateDecrease
	// Delay is out-of-queue latency at a switch.
	Delay
	// Drop is unanticipated packet loss at a port.
	Drop
	// CtrlChanDegrade is the control-plane-level scenario (this
	// repository's addition): the controller↔switch channel itself loses
	// messages, so notifications, collections, refresh pulls, and
	// threshold pushes all become unreliable while the data plane keeps
	// forwarding normally.
	CtrlChanDegrade
	// SilentDrop is a gray failure: a low (3-12%) loss rate on an
	// inter-switch port — too small to blackhole flows, often too small
	// to cross the data plane's notification margins, silently corroding
	// goodput.
	SilentDrop
	// LinkFlap toggles a link down and up with a seeded period and duty
	// cycle, the classic intermittent-optics symptom.
	LinkFlap
	// LinkDown fails a link outright for the whole window (topology
	// churn: ECMP keeps hashing onto the dead link until weights react).
	LinkDown
	// SwitchReboot takes a switch dark for the window and flushes its
	// IT/ET/RT register state on recovery, erasing mid-epoch telemetry.
	SwitchReboot
	// UplinkDegrade is the compound gray scenario: one uplink is
	// rate-limited with silent loss (the root) and ECMP weights react by
	// skewing traffic away from it (the consequence). The paper's ECMP
	// signature blames the switch; compound-cause RCA must rank the
	// degraded link.
	UplinkDegrade
)

// Kinds lists the single-shot scenarios in the paper's Table 1 order.
// CtrlChanDegrade and the gray kinds are not part of the Table 1 suite —
// they are swept by the ctrlchan and gray experiments instead.
func Kinds() []Kind {
	return []Kind{MicroBurst, ECMPImbalance, ProcessRateDecrease, Delay, Drop}
}

// GrayKinds lists the gray-failure scenario family in grid order.
func GrayKinds() []Kind {
	return []Kind{SilentDrop, LinkFlap, LinkDown, SwitchReboot, UplinkDegrade}
}

// AllKinds lists every parseable scenario.
func AllKinds() []Kind {
	all := append(Kinds(), CtrlChanDegrade)
	return append(all, GrayKinds()...)
}

func (k Kind) String() string {
	switch k {
	case MicroBurst:
		return "micro-burst"
	case ECMPImbalance:
		return "ecmp-imbalance"
	case ProcessRateDecrease:
		return "process-rate"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case CtrlChanDegrade:
		return "ctrl-chan"
	case SilentDrop:
		return "silent-drop"
	case LinkFlap:
		return "link-flap"
	case LinkDown:
		return "link-down"
	case SwitchReboot:
		return "switch-reboot"
	case UplinkDegrade:
		return "uplink-degrade"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Parse maps a scenario name (as printed by Kind.String, matched
// case-insensitively) to its Kind. Every kind parses, including ctrl-chan
// and the gray family. The error for an unknown name lists the valid set
// in sorted order, so CLI surfaces can echo it directly and the message is
// stable across enum reorderings.
func Parse(name string) (Kind, error) {
	all := AllKinds()
	for _, k := range all {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	names := make([]string, len(all))
	for i, k := range all {
		names[i] = k.String()
	}
	sort.Strings(names)
	return 0, fmt.Errorf("faults: unknown fault %q (valid: %s)", name, strings.Join(names, ", "))
}

// GroundTruth describes the injected fault for scoring.
type GroundTruth struct {
	Kind Kind
	// Switch is the culprit switch (the skewed switch for ECMP, the slow /
	// delayed / dropping switch otherwise; the burst flow's source edge
	// switch for micro-bursts; the link's A-side for link faults).
	Switch topology.NodeID
	// Port is the culprit egress port where the fault is port-scoped
	// (process rate, drop, silent drop, link faults, uplink degrade);
	// -1 otherwise.
	Port topology.PortID
	// Peer is the node on the far side of the culprit port for
	// link-scoped faults; -1 otherwise. A port-level culprit that names
	// {Switch, Peer} has localized the link exactly.
	Peer topology.NodeID
	// Link is the affected link for link-scoped faults; -1 otherwise.
	Link topology.LinkID
	// BurstSrcEdge/BurstSinkEdge identify the offending flow for
	// micro-bursts.
	BurstSrcEdge, BurstSinkEdge topology.NodeID
	// CtrlLoss is the control-channel loss probability for
	// CtrlChanDegrade; 0 otherwise.
	CtrlLoss float64
	// Start and End bound the fault's active window.
	Start, End netsim.Time
	// Handle guards the injection's apply/revert lifecycle (see
	// schedule.go). Reverting through it before End cuts the fault short;
	// double reverts are errors, not silent state corruption.
	Handle *Handle
}

func (g GroundTruth) String() string {
	switch g.Kind {
	case MicroBurst:
		return fmt.Sprintf("%v flow <s%d,s%d> [%v,%v]", g.Kind, g.BurstSrcEdge, g.BurstSinkEdge, g.Start, g.End)
	case ProcessRateDecrease, Drop, SilentDrop:
		return fmt.Sprintf("%v s%d port %d [%v,%v]", g.Kind, g.Switch, g.Port, g.Start, g.End)
	case LinkFlap, LinkDown:
		return fmt.Sprintf("%v s%d<->s%d [%v,%v]", g.Kind, g.Switch, g.Peer, g.Start, g.End)
	case UplinkDegrade:
		return fmt.Sprintf("%v s%d->s%d port %d [%v,%v]", g.Kind, g.Switch, g.Peer, g.Port, g.Start, g.End)
	case CtrlChanDegrade:
		return fmt.Sprintf("%v loss=%.0f%% [%v,%v]", g.Kind, 100*g.CtrlLoss, g.Start, g.End)
	case ECMPImbalance, Delay, SwitchReboot:
		// Switch-scoped kinds share the rendering below.
	}
	return fmt.Sprintf("%v s%d [%v,%v]", g.Kind, g.Switch, g.Start, g.End)
}

// Injector plants faults into a simulation over a fat-tree.
type Injector struct {
	Sim    *netsim.Simulator
	FT     *topology.FatTree
	Router *netsim.ECMPRouter
	// Chan is the control channel degraded by CtrlChanDegrade; leaving it
	// nil (a deployment without an explicit channel) makes that scenario
	// unavailable.
	Chan *ctrlchan.Channel
	// Registers, when set, is flushed on SwitchReboot recovery (the
	// dataplane Program in a full deployment).
	Registers RegisterFlusher
	// ScheduleSeed seeds the per-injection RNGs of Apply. Zero means
	// "derive one from the shared sim RNG at first use".
	ScheduleSeed int64
	rng          *rand.Rand
}

// NewInjector creates an injector drawing randomness from the simulator's
// seeded source (so trials are reproducible).
func NewInjector(sim *netsim.Simulator, ft *topology.FatTree, router *netsim.ECMPRouter) *Injector {
	return &Injector{Sim: sim, FT: ft, Router: router, rng: sim.RNG()}
}

// interSwitchPorts lists sw's ports whose peer is a switch.
func (in *Injector) interSwitchPorts(sw topology.NodeID) []topology.PortID {
	var out []topology.PortID
	for i, p := range in.FT.Node(sw).Ports {
		if in.FT.IsSwitch(p.Peer) {
			out = append(out, topology.PortID(i))
		}
	}
	return out
}

// Inject schedules a single fault of the given kind over [start,
// start+dur] and returns its ground truth. It draws from the shared sim
// RNG, preserving the draw sequence seeded experiments pin; composed
// episodes use Apply instead.
func (in *Injector) Inject(kind Kind, start, dur netsim.Time) GroundTruth {
	ep := &Episode{}
	idx := in.plan(kind, start, dur, in.rng, ep, -1)
	return ep.Faults[idx].GT
}

// plan materializes one injection: draws its parameters from rng, arms
// guarded apply/revert events on the agenda, and appends its ground truth
// (plus any consequence faults) to ep. It returns the index of the root
// fault it appended.
func (in *Injector) plan(kind Kind, start, dur netsim.Time, rng *rand.Rand, ep *Episode, causedBy int) int {
	gt := GroundTruth{Kind: kind, Port: -1, Peer: -1, Link: -1, Start: start, End: start + dur}
	var h *Handle
	switch kind {
	case MicroBurst:
		hosts := in.FT.HostIDs
		src := hosts[rng.Intn(len(hosts))]
		srcEdge, _ := in.FT.EdgeSwitchOf(src)
		// The burst must cross the fabric to be observable: pick a
		// destination behind a different edge switch.
		var dst topology.NodeID
		var sinkEdge topology.NodeID
		for {
			dst = hosts[rng.Intn(len(hosts))]
			sinkEdge, _ = in.FT.EdgeSwitchOf(dst)
			if sinkEdge != srcEdge {
				break
			}
		}
		gt.Switch = srcEdge
		gt.BurstSrcEdge, gt.BurstSinkEdge = srcEdge, sinkEdge
		pps := 1000 + rng.Float64()*1000 // >1000 pps, paper §5.2
		key := netsim.FlowKey(0xB0000000 + uint64(rng.Intn(1<<20)))
		workload.Burst(in.Sim, src, dst, key, pps, start, dur, 1000)
		// The burst traffic is already on the agenda; there is nothing to
		// apply later and nothing a revert could unsend.
		//mars:lifecycle the pre-armed handle exists only so GroundTruth.Handle stays uniform for revert bookkeeping; the shared epilogue below stores it
		h = &Handle{kind: kind, applied: true}

	case ECMPImbalance:
		// Pick a switch with an equal-cost choice: any edge or aggregation
		// switch (K/2 uplinks each).
		var cands []topology.NodeID
		cands = append(cands, in.FT.EdgeIDs...)
		cands = append(cands, in.FT.AggIDs...)
		sw := cands[rng.Intn(len(cands))]
		gt.Switch = sw
		// Skew toward one uplink with ratio 1:r, r in [4,10].
		r := int32(4 + rng.Intn(7))
		ups := in.uplinks(sw)
		skewed := ups[rng.Intn(len(ups))]
		var prev map[topology.NodeID]int32
		h = in.newHandle(kind,
			func() {
				prev = in.Router.WeightsAt(sw)
				in.Router.SetWeight(sw, skewed, r)
			},
			func() { in.Router.RestoreWeights(sw, prev) })
		in.scheduleWindow(h, start, gt.End)

	case ProcessRateDecrease:
		sw := in.randomSwitch(rng)
		ports := in.interSwitchPorts(sw)
		port := ports[rng.Intn(len(ports))]
		gt.Switch, gt.Port = sw, port
		// The paper limits the port below 100 pps against ~200 pps flows —
		// about half the port's typical load. Scaled to this substrate's
		// ~1000-1200 pps uplinks: a 150-400 pps cap reproduces the same
		// queue-buildup-with-stable-input symptom without turning the port
		// into a blackhole.
		pps := 150 + rng.Float64()*250
		var prev float64
		h = in.newHandle(kind,
			func() {
				prev = in.Sim.PortRateLimit(sw, port)
				in.Sim.SetPortRateLimit(sw, port, pps)
			},
			func() { in.Sim.SetPortRateLimit(sw, port, prev) })
		in.scheduleWindow(h, start, gt.End)

	case Delay:
		sw := in.randomSwitch(rng)
		gt.Switch = sw
		d := netsim.Time(20+rng.Intn(80)) * netsim.Millisecond
		var prev netsim.Time
		h = in.newHandle(kind,
			func() {
				prev = in.Sim.SwitchExtraDelay(sw)
				in.Sim.SetSwitchExtraDelay(sw, d)
			},
			func() { in.Sim.SetSwitchExtraDelay(sw, prev) })
		in.scheduleWindow(h, start, gt.End)

	case Drop:
		sw := in.randomSwitch(rng)
		ports := in.interSwitchPorts(sw)
		port := ports[rng.Intn(len(ports))]
		gt.Switch, gt.Port = sw, port
		p := 0.4 + rng.Float64()*0.5
		h = in.dropHandle(kind, sw, port, p)
		in.scheduleWindow(h, start, gt.End)

	case CtrlChanDegrade:
		// A randomly drawn loss rate in the 10-30% band the ctrlchan
		// experiment sweeps; use InjectCtrlChanLoss for an exact rate.
		return in.planCtrlLoss(start, dur, 0.1+rng.Float64()*0.2, ep, causedBy)

	case SilentDrop:
		sw := in.randomSwitch(rng)
		ports := in.interSwitchPorts(sw)
		port := ports[rng.Intn(len(ports))]
		gt.Switch, gt.Port = sw, port
		gt.Peer = in.FT.Node(sw).Ports[port].Peer
		gt.Link = in.FT.Node(sw).Ports[port].Link
		// Low enough that per-epoch per-flow deltas usually sit inside the
		// data plane's notification margins — the gray part.
		p := 0.03 + rng.Float64()*0.09
		h = in.dropHandle(kind, sw, port, p)
		in.scheduleWindow(h, start, gt.End)

	case LinkDown:
		link := in.randomInterSwitchLink(rng)
		in.fillLinkGT(&gt, link)
		h = in.linkDownHandle(kind, link)
		in.scheduleWindow(h, start, gt.End)

	case LinkFlap:
		link := in.randomInterSwitchLink(rng)
		in.fillLinkGT(&gt, link)
		// Multi-epoch periods: the telemetry epoch is 100 ms, so sub-epoch
		// flapping would average into steady partial loss and be
		// indistinguishable from SilentDrop in any epoch-granular evidence.
		period := netsim.Time(300+rng.Intn(300)) * netsim.Millisecond
		duty := 0.3 + rng.Float64()*0.4 // fraction of each period spent down
		downFor := netsim.Time(float64(period) * duty)
		h = in.linkDownHandle(kind, link)
		in.scheduleWindow(h, start, gt.End)
		// The toggle timeline is planned up front so runtime draws no RNG;
		// each toggle checks the handle so an early revert stops the flap.
		hh := h
		for t := start; t < gt.End; t += period {
			if up := t + downFor; up < gt.End {
				in.Sim.At(up, func() {
					if hh.active() {
						in.Sim.SetLinkUp(link, true)
					}
				})
			}
			if dn := t + period; dn < gt.End {
				in.Sim.At(dn, func() {
					if hh.active() {
						in.Sim.SetLinkUp(link, false)
					}
				})
			}
		}

	case SwitchReboot:
		sw := in.randomSwitch(rng)
		gt.Switch = sw
		h = in.newHandle(kind,
			func() { in.Sim.SetSwitchDown(sw, true) },
			func() {
				in.Sim.SetSwitchDown(sw, false)
				// Coming back up with empty register arrays is what makes
				// a reboot gray: the fabric forwards again but the switch
				// has amnesia about every flow mid-epoch.
				if in.Registers != nil {
					in.Registers.FlushSwitch(sw)
				}
			})
		in.scheduleWindow(h, start, gt.End)

	case UplinkDegrade:
		return in.planUplinkDegrade(start, dur, rng, ep, causedBy)

	default:
		panic(fmt.Sprintf("faults: cannot plan unknown kind %v", kind))
	}
	gt.Handle = h
	idx := len(ep.Faults)
	ep.Faults = append(ep.Faults, Fault{GT: gt, CausedBy: causedBy})
	return idx
}

// dropHandle builds a guarded apply/revert pair for probabilistic loss on
// one egress port, restoring whatever probability it displaced.
func (in *Injector) dropHandle(kind Kind, sw topology.NodeID, port topology.PortID, p float64) *Handle {
	var prev float64
	return in.newHandle(kind,
		func() {
			prev = in.Sim.PortDropProb(sw, port)
			in.Sim.SetPortDropProb(sw, port, p)
		},
		func() { in.Sim.SetPortDropProb(sw, port, prev) })
}

// linkDownHandle builds a guarded apply/revert pair that lowers a link and
// restores its previous administrative state.
func (in *Injector) linkDownHandle(kind Kind, link topology.LinkID) *Handle {
	var prevUp bool
	return in.newHandle(kind,
		func() {
			prevUp = in.Sim.LinkUp(link)
			in.Sim.SetLinkUp(link, false)
		},
		func() { in.Sim.SetLinkUp(link, prevUp) })
}

// randomInterSwitchLink picks uniformly among switch-to-switch links.
func (in *Injector) randomInterSwitchLink(rng *rand.Rand) topology.LinkID {
	links := in.FT.InterSwitchLinks()
	return links[rng.Intn(len(links))]
}

// fillLinkGT records a link fault's location: A-side switch and port, peer
// and link ID.
func (in *Injector) fillLinkGT(gt *GroundTruth, link topology.LinkID) {
	l := in.FT.Links[link]
	gt.Switch, gt.Port, gt.Peer, gt.Link = l.A, l.APort, l.B, link
}

// planUplinkDegrade materializes the compound scenario: the root fault is
// a rate-limited, silently lossy uplink; the consequence is the ECMP
// reaction that skews traffic away from it about 150 ms later. The
// consequence's congestion on the healthy branches is what the paper's
// ECMP signature sees — and blames the switch for.
func (in *Injector) planUplinkDegrade(start, dur netsim.Time, rng *rand.Rand, ep *Episode, causedBy int) int {
	var cands []topology.NodeID
	cands = append(cands, in.FT.EdgeIDs...)
	cands = append(cands, in.FT.AggIDs...)
	sw := cands[rng.Intn(len(cands))]
	ups := in.uplinks(sw)
	peer := ups[rng.Intn(len(ups))]
	port, _ := in.FT.PortTo(sw, peer)
	gt := GroundTruth{
		Kind: UplinkDegrade, Switch: sw, Port: port, Peer: peer,
		Link:  in.FT.Node(sw).Ports[port].Link,
		Start: start, End: start + dur,
	}
	// The limit sits well under the uplink's fair share, so until the
	// reroute reacts the port queues and drops visibly, and even the
	// post-reroute minority share keeps it marginally saturated — the
	// degradation stays observable without being an outright outage.
	pps := 60 + rng.Float64()*60
	loss := 0.03 + rng.Float64()*0.05
	var prevRate, prevDrop float64
	h := in.newHandle(UplinkDegrade,
		func() {
			prevRate = in.Sim.PortRateLimit(sw, port)
			prevDrop = in.Sim.PortDropProb(sw, port)
			in.Sim.SetPortRateLimit(sw, port, pps)
			in.Sim.SetPortDropProb(sw, port, loss)
		},
		func() {
			in.Sim.SetPortRateLimit(sw, port, prevRate)
			in.Sim.SetPortDropProb(sw, port, prevDrop)
		})
	in.scheduleWindow(h, start, gt.End)
	gt.Handle = h
	rootIdx := len(ep.Faults)
	ep.Faults = append(ep.Faults, Fault{GT: gt, CausedBy: causedBy})

	// The ECMP reaction: every healthy uplink gains weight r, starving the
	// degraded one. Recorded as a consequence fault caused by the root.
	r := int32(3 + rng.Intn(4))
	var others []topology.NodeID
	for _, u := range ups {
		if u != peer {
			others = append(others, u)
		}
	}
	cstart := start + 150*netsim.Millisecond
	if cstart > gt.End {
		cstart = start
	}
	cgt := GroundTruth{
		Kind: ECMPImbalance, Switch: sw, Port: -1, Peer: -1, Link: -1,
		Start: cstart, End: gt.End,
	}
	var prevW map[topology.NodeID]int32
	ch := in.newHandle(ECMPImbalance,
		func() {
			prevW = in.Router.WeightsAt(sw)
			for _, via := range others {
				in.Router.SetWeight(sw, via, r)
			}
		},
		func() { in.Router.RestoreWeights(sw, prevW) })
	in.scheduleWindow(ch, cstart, cgt.End)
	cgt.Handle = ch
	ep.Faults = append(ep.Faults, Fault{GT: cgt, CausedBy: rootIdx})
	return rootIdx
}

// InjectCtrlChanLoss degrades the control channel to the given symmetric
// loss probability over [start, start+dur]. The data plane is untouched:
// only the monitoring system's own messaging suffers.
func (in *Injector) InjectCtrlChanLoss(start, dur netsim.Time, loss float64) GroundTruth {
	ep := &Episode{}
	idx := in.planCtrlLoss(start, dur, loss, ep, -1)
	return ep.Faults[idx].GT
}

func (in *Injector) planCtrlLoss(start, dur netsim.Time, loss float64, ep *Episode, causedBy int) int {
	if in.Chan == nil {
		panic("faults: CtrlChanDegrade requires an attached ctrlchan.Channel")
	}
	gt := GroundTruth{
		Kind: CtrlChanDegrade, Switch: -1, Port: -1, Peer: -1, Link: -1,
		CtrlLoss: loss, Start: start, End: start + dur,
	}
	var prevUp, prevDown float64
	h := in.newHandle(CtrlChanDegrade,
		func() {
			prevUp = in.Chan.Loss(ctrlchan.ToController)
			prevDown = in.Chan.Loss(ctrlchan.ToSwitch)
			in.Chan.SetLoss(ctrlchan.ToController, loss)
			in.Chan.SetLoss(ctrlchan.ToSwitch, loss)
		},
		func() {
			in.Chan.SetLoss(ctrlchan.ToController, prevUp)
			in.Chan.SetLoss(ctrlchan.ToSwitch, prevDown)
		})
	in.scheduleWindow(h, start, gt.End)
	gt.Handle = h
	idx := len(ep.Faults)
	ep.Faults = append(ep.Faults, Fault{GT: gt, CausedBy: causedBy})
	return idx
}

// uplinks returns the next-hop switches above sw (toward the core).
func (in *Injector) uplinks(sw topology.NodeID) []topology.NodeID {
	var ups []topology.NodeID
	layer := in.FT.Node(sw).Layer
	for _, p := range in.FT.Node(sw).Ports {
		peer := p.Peer
		if !in.FT.IsSwitch(peer) {
			continue
		}
		pl := in.FT.Node(peer).Layer
		if (layer == topology.LayerEdge && pl == topology.LayerAggregation) ||
			(layer == topology.LayerAggregation && pl == topology.LayerCore) {
			ups = append(ups, peer)
		}
	}
	return ups
}

// randomSwitch picks uniformly among all switches.
func (in *Injector) randomSwitch(rng *rand.Rand) topology.NodeID {
	sws := in.FT.Switches()
	return sws[rng.Intn(len(sws))]
}
