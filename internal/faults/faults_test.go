package faults

import (
	"strings"
	"testing"

	"mars/internal/ctrlchan"
	"mars/internal/netsim"
	"mars/internal/topology"
	"mars/internal/workload"
)

func setup(t *testing.T, seed int64) (*Injector, *netsim.Simulator, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	router := netsim.NewECMPRouter(ft.Topology, uint64(seed))
	sim := netsim.New(ft.Topology, router, nil, netsim.DefaultConfig(), seed)
	return NewInjector(sim, ft, router), sim, ft
}

func TestKindsAndStrings(t *testing.T) {
	if len(Kinds()) != 5 {
		t.Fatalf("kinds = %d", len(Kinds()))
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestMicroBurstGeneratesTraffic(t *testing.T) {
	inj, sim, ft := setup(t, 1)
	gt := inj.Inject(MicroBurst, 100*netsim.Millisecond, netsim.Second)
	sim.Run(2 * netsim.Second)
	if gt.Kind != MicroBurst {
		t.Fatal("wrong kind")
	}
	if sim.Stats.Sent < 900 {
		t.Errorf("burst sent only %d packets", sim.Stats.Sent)
	}
	if !ft.IsSwitch(gt.BurstSrcEdge) || !ft.IsSwitch(gt.BurstSinkEdge) {
		t.Error("burst flow edges not switches")
	}
}

func TestECMPImbalanceAppliesAndReverts(t *testing.T) {
	inj, sim, ft := setup(t, 2)
	gt := inj.Inject(ECMPImbalance, 100*netsim.Millisecond, netsim.Second)
	layer := ft.Node(gt.Switch).Layer
	if layer != topology.LayerEdge && layer != topology.LayerAggregation {
		t.Errorf("ECMP culprit layer = %v", layer)
	}
	// During the fault the router splits unevenly; afterwards it is even.
	countSplit := func() map[topology.NodeID]int {
		split := map[topology.NodeID]int{}
		// Use many synthetic flows and inspect next hop via Route.
		for i := 0; i < 400; i++ {
			pkt := &netsim.Packet{Flow: netsim.FlowKey(i * 7919), Dst: ft.HostIDs[len(ft.HostIDs)-1], Src: ft.HostIDs[0]}
			if port, ok := inj.Router.Route(gt.Switch, pkt); ok {
				split[ft.Node(gt.Switch).Ports[port].Peer]++
			}
		}
		return split
	}
	sim.Run(500 * netsim.Millisecond) // fault active
	during := countSplit()
	sim.Run(2 * netsim.Second) // fault reverted
	after := countSplit()
	imb := func(m map[topology.NodeID]int) float64 {
		max, min := 0, 1<<30
		for _, v := range m {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		if min == 0 {
			min = 1
		}
		return float64(max) / float64(min)
	}
	if len(during) > 1 && imb(during) < 2 {
		t.Errorf("during-fault imbalance = %.2f, want >= 2", imb(during))
	}
	if len(after) > 1 && imb(after) > 2 {
		t.Errorf("post-fault imbalance = %.2f, want ~1", imb(after))
	}
}

func TestProcessRateDecreaseSlowsPort(t *testing.T) {
	inj, sim, ft := setup(t, 3)
	gt := inj.Inject(ProcessRateDecrease, 0, 10*netsim.Second)
	if gt.Port < 0 {
		t.Fatal("process-rate fault must pin a port")
	}
	peer := ft.Node(gt.Switch).Ports[gt.Port].Peer
	if !ft.IsSwitch(peer) {
		t.Error("rate-limited port peer is a host")
	}
	sim.Run(netsim.Second)
}

func TestDelayFaultWindow(t *testing.T) {
	inj, sim, ft := setup(t, 4)
	gt := inj.Inject(Delay, 500*netsim.Millisecond, netsim.Second)

	// A probe flow crossing the delayed switch should see higher latency
	// during the window than after. Find a host pair routed via gt.Switch.
	probe := func(at netsim.Time) netsim.Time {
		var total netsim.Time
		var n int
		h := &latencyCapture{total: &total, n: &n}
		router := netsim.NewECMPRouter(ft.Topology, 4)
		s2 := netsim.New(ft.Topology, router, h, netsim.DefaultConfig(), 4)
		// Recreate the same fault window on s2 for a clean measurement.
		if ft.Node(gt.Switch).Layer != topology.LayerHost {
			s2.At(0, func() { s2.SetSwitchExtraDelay(gt.Switch, 30*netsim.Millisecond) })
		}
		_ = at
		f := &workload.Flow{Src: ft.HostIDs[0], Dst: ft.HostIDs[8], Key: 5, RatePPS: 100,
			Gaps: workload.GapConstant, Start: 0, Stop: 200 * netsim.Millisecond}
		f.Install(s2)
		s2.RunAll()
		if n == 0 {
			return 0
		}
		return total / netsim.Time(n)
	}
	_ = probe
	sim.Run(2 * netsim.Second)
	if gt.End-gt.Start != netsim.Second {
		t.Errorf("window = %v", gt.End-gt.Start)
	}
}

type latencyCapture struct {
	netsim.NopHooks
	total *netsim.Time
	n     *int
}

func (l *latencyCapture) OnDeliver(s *netsim.Simulator, _ topology.NodeID, pkt *netsim.Packet) {
	*l.total += s.Now() - pkt.SendTime
	*l.n++
}

func TestDropFaultDropsDuringWindowOnly(t *testing.T) {
	inj, sim, ft := setup(t, 5)
	gt := inj.Inject(Drop, 200*netsim.Millisecond, 500*netsim.Millisecond)
	// Saturate every link with flows between all edge pairs so the faulty
	// port definitely carries traffic.
	id := 0
	for _, src := range []int{0, 2, 4, 6, 8, 10, 12, 14} {
		for _, dst := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
			if src == dst {
				continue
			}
			id++
			f := &workload.Flow{Src: ft.HostIDs[src], Dst: ft.HostIDs[dst],
				Key: netsim.FlowKey(id), RatePPS: 100, Gaps: workload.GapConstant,
				Start: 0, Stop: netsim.Second}
			f.Install(sim)
		}
	}
	sim.Run(2 * netsim.Second)
	if sim.Stats.DropsByReason[netsim.DropFault] == 0 {
		t.Skip("faulty port carried no traffic this seed; acceptable")
	}
	_ = gt
}

func TestDeterministicInjection(t *testing.T) {
	run := func() GroundTruth {
		inj, _, _ := setup(t, 42)
		return inj.Inject(Drop, 0, netsim.Second)
	}
	a, b := run(), run()
	if a.Switch != b.Switch || a.Port != b.Port {
		t.Errorf("same seed produced different faults: %v vs %v", a, b)
	}
}

func TestCtrlChanDegradeSetsAndRevertsLoss(t *testing.T) {
	inj, sim, _ := setup(t, 6)
	ch := ctrlchan.New(sim, ctrlchan.Config{Seed: 6})
	inj.Chan = ch
	gt := inj.InjectCtrlChanLoss(100*netsim.Millisecond, netsim.Second, 0.25)
	if gt.Kind != CtrlChanDegrade || gt.CtrlLoss != 0.25 || gt.Switch != -1 {
		t.Fatalf("ground truth = %+v", gt)
	}
	lossAt := func(at netsim.Time) (up, down float64) {
		sim.Run(at)
		return ch.Cfg.ToController.Loss, ch.Cfg.ToSwitch.Loss
	}
	if up, down := lossAt(50 * netsim.Millisecond); up != 0 || down != 0 {
		t.Errorf("pre-fault loss = %v/%v", up, down)
	}
	if up, down := lossAt(500 * netsim.Millisecond); up != 0.25 || down != 0.25 {
		t.Errorf("in-fault loss = %v/%v, want 0.25 both ways", up, down)
	}
	if up, down := lossAt(2 * netsim.Second); up != 0 || down != 0 {
		t.Errorf("post-fault loss = %v/%v, want reverted", up, down)
	}
}

func TestCtrlChanDegradeRandomBand(t *testing.T) {
	inj, sim, _ := setup(t, 7)
	inj.Chan = ctrlchan.New(sim, ctrlchan.Config{Seed: 7})
	gt := inj.Inject(CtrlChanDegrade, 0, netsim.Second)
	if gt.CtrlLoss < 0.1 || gt.CtrlLoss > 0.3 {
		t.Errorf("random loss = %v, want in [0.1, 0.3]", gt.CtrlLoss)
	}
	if gt.String() == "" || gt.Kind.String() != "ctrl-chan" {
		t.Errorf("stringers: kind=%q gt=%q", gt.Kind, gt)
	}
}

func TestCtrlChanDegradeRequiresChannel(t *testing.T) {
	inj, _, _ := setup(t, 8)
	defer func() {
		if recover() == nil {
			t.Error("injecting ctrl-chan degradation without a channel must panic")
		}
	}()
	inj.Inject(CtrlChanDegrade, 0, netsim.Second)
}

func TestParseValidNames(t *testing.T) {
	for _, k := range append(Kinds(), CtrlChanDegrade) {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k, err)
		}
		if got != k {
			t.Errorf("Parse(%q) = %v, want %v", k, got, k)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	for name, want := range map[string]Kind{
		"MICRO-BURST":    MicroBurst,
		"Delay":          Delay,
		"eCmP-ImBaLaNcE": ECMPImbalance,
	} {
		got, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseUnknownListsValid(t *testing.T) {
	_, err := Parse("blackhole")
	if err == nil {
		t.Fatal("Parse of an unknown fault must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"blackhole"`) {
		t.Errorf("error %q does not echo the bad name", msg)
	}
	for _, k := range append(Kinds(), CtrlChanDegrade) {
		if !strings.Contains(msg, k.String()) {
			t.Errorf("error %q does not list valid name %q", msg, k)
		}
	}
}
