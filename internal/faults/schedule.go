package faults

import (
	"fmt"
	"math/rand"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// Injection is one timed entry of a Schedule: a fault kind and its active
// window. Parameters (which switch, which link, how much loss) are drawn
// from the injection's own seeded RNG when the schedule is applied, so two
// runs with the same ScheduleSeed materialize identical episodes.
type Injection struct {
	Kind  Kind
	Start netsim.Time
	Dur   netsim.Time
}

// Schedule is a declarative set of timed, possibly overlapping injections.
// It replaces the single-shot Inject model for gray-failure and
// correlated-fault episodes: the injector materializes every entry up
// front, records the full ground-truth episode (including causal links
// between co-injected faults), and guards each apply/revert pair so
// overlapping windows cannot corrupt simulator state.
type Schedule struct {
	Injections []Injection
}

// Fault is one materialized injection within an episode.
type Fault struct {
	GT GroundTruth
	// CausedBy indexes the root fault (in the same episode) that this
	// fault is a downstream consequence of; -1 for root faults. The
	// uplink-degrade scenario, for example, records the degraded link as
	// the root and the resulting ECMP weight skew as its consequence —
	// exactly the causal structure compound-cause RCA must untangle.
	CausedBy int
}

// Episode is the ground truth of one applied schedule: every fault it
// materialized, in application order, with causal links.
type Episode struct {
	Faults []Fault
}

// GroundTruths lists every fault in the episode, roots and consequences.
func (e *Episode) GroundTruths() []GroundTruth {
	out := make([]GroundTruth, len(e.Faults))
	for i, f := range e.Faults {
		out[i] = f.GT
	}
	return out
}

// Roots lists only the root faults (those not caused by another fault).
// Scoring targets roots: blaming a consequence is exactly the mistake
// compound-cause disambiguation exists to avoid.
func (e *Episode) Roots() []GroundTruth {
	var out []GroundTruth
	for _, f := range e.Faults {
		if f.CausedBy < 0 {
			out = append(out, f.GT)
		}
	}
	return out
}

// RegisterFlusher wipes a switch's register state, as a reboot does to P4
// register arrays. The dataplane Program implements it; the injector calls
// it when a SwitchReboot injection's outage ends.
type RegisterFlusher interface {
	FlushSwitch(sw topology.NodeID)
}

// Handle guards one injection's apply/revert lifecycle. Apply captures the
// state it displaces and Revert restores that capture, so nested windows
// compose; applying twice, reverting before apply, or reverting twice is
// an error rather than silent state corruption.
type Handle struct {
	kind     Kind
	applied  bool
	reverted bool
	apply    func()
	revert   func()
}

func (in *Injector) newHandle(kind Kind, apply, revert func()) *Handle {
	return &Handle{kind: kind, apply: apply, revert: revert}
}

// Applied reports whether the injection's apply has run.
func (h *Handle) Applied() bool { return h.applied }

// Reverted reports whether the injection has been reverted.
func (h *Handle) Reverted() bool { return h.reverted }

// active reports whether the fault is currently in force. Scheduled
// mid-window actions (flap toggles, the end-of-window revert) check it so
// a manual early Revert stops them cleanly.
func (h *Handle) active() bool { return h.applied && !h.reverted }

// Apply puts the fault into force. Applying twice is an error.
func (h *Handle) Apply() error {
	if h.applied {
		return fmt.Errorf("faults: %v injection applied twice", h.kind)
	}
	h.applied = true
	if h.apply != nil {
		h.apply()
	}
	return nil
}

// Revert restores the state the injection displaced. Reverting a
// never-applied or already-reverted injection is an error.
func (h *Handle) Revert() error {
	if !h.applied {
		return fmt.Errorf("faults: revert of never-applied %v injection", h.kind)
	}
	if h.reverted {
		return fmt.Errorf("faults: double revert of %v injection", h.kind)
	}
	h.reverted = true
	if h.revert != nil {
		h.revert()
	}
	return nil
}

// scheduleWindow arms h's window: apply fires at start, revert at end. The
// end event skips silently if the injection was already reverted by hand;
// a failing scheduled apply is an internal invariant violation and panics.
func (in *Injector) scheduleWindow(h *Handle, start, end netsim.Time) {
	in.Sim.At(start, func() {
		if err := h.Apply(); err != nil {
			panic(err)
		}
	})
	in.Sim.At(end, func() {
		if !h.active() {
			return
		}
		if err := h.Revert(); err != nil {
			panic(err)
		}
	})
}

// Apply materializes every injection of the schedule and returns the
// episode ground truth. Each injection draws its parameters from its own
// RNG, seeded from ScheduleSeed and the injection's position, so episodes
// are reproducible independent of how much randomness earlier injections
// consumed — the property that makes overlapping schedules composable.
func (in *Injector) Apply(s Schedule) *Episode {
	base := in.ScheduleSeed
	if base == 0 {
		// Fall back to the shared seeded stream so plain deployments stay
		// reproducible without configuring a second seed.
		base = in.rng.Int63()
	}
	ep := &Episode{}
	for i, spec := range s.Injections {
		rng := rand.New(rand.NewSource(mixSeed(base, int64(i))))
		in.plan(spec.Kind, spec.Start, spec.Dur, rng, ep, -1)
	}
	return ep
}

// mixSeed derives a well-spread per-injection seed (splitmix64 finalizer).
func mixSeed(base, i int64) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
