package faults

import (
	"strings"
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

const ms = netsim.Millisecond

// --- Handle guards (revert semantics) ---------------------------------------

func TestHandleGuards(t *testing.T) {
	inj, _, _ := setup(t, 10)
	var applies, reverts int
	h := inj.newHandle(Drop, func() { applies++ }, func() { reverts++ })

	if err := h.Revert(); err == nil {
		t.Fatal("revert of a never-applied injection must error")
	}
	if reverts != 0 {
		t.Fatal("guarded revert must not run the revert hook")
	}
	if err := h.Apply(); err != nil {
		t.Fatal(err)
	}
	if !h.Applied() || h.Reverted() {
		t.Fatal("state after apply")
	}
	if err := h.Apply(); err == nil {
		t.Fatal("double apply must error")
	}
	if applies != 1 {
		t.Fatalf("apply hook ran %d times", applies)
	}
	if err := h.Revert(); err != nil {
		t.Fatal(err)
	}
	if err := h.Revert(); err == nil {
		t.Fatal("double revert must error")
	}
	if reverts != 1 {
		t.Fatalf("revert hook ran %d times", reverts)
	}
}

// A manual early revert must not make the scheduled end-of-window revert
// panic — it skips silently.
func TestScheduledEndSkipsAfterManualRevert(t *testing.T) {
	inj, sim, _ := setup(t, 11)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: Drop, Start: 100 * ms, Dur: 500 * ms},
	}})
	h := ep.Faults[0].GT.Handle
	if h == nil {
		t.Fatal("ground truth must carry the injection handle")
	}
	sim.Run(200 * ms)
	if !h.Applied() {
		t.Fatal("injection not applied at window start")
	}
	if err := h.Revert(); err != nil {
		t.Fatal(err)
	}
	sim.Run(netsim.Second) // the 600 ms end event must skip, not panic
	if !h.Reverted() {
		t.Fatal("handle must stay reverted")
	}
}

// The ground truth records the window end explicitly.
func TestGroundTruthEndTime(t *testing.T) {
	inj, _, _ := setup(t, 12)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: Delay, Start: 300 * ms, Dur: 700 * ms},
	}})
	gt := ep.Faults[0].GT
	if gt.Start != 300*ms || gt.End != 1000*ms {
		t.Fatalf("window = [%v, %v], want [300ms, 1000ms]", gt.Start, gt.End)
	}
}

// --- Parse/String round trip over every kind --------------------------------

func TestParseStringRoundTripAllKinds(t *testing.T) {
	all := AllKinds()
	if len(all) != len(Kinds())+1+len(GrayKinds()) {
		t.Fatalf("AllKinds() = %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, k := range all {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != k {
			t.Errorf("Parse(%q) = %v, want %v", s, got, k)
		}
	}
}

func TestParseErrorListsAllKindsSorted(t *testing.T) {
	_, err := Parse("nope")
	if err == nil {
		t.Fatal("Parse of an unknown fault must error")
	}
	msg := err.Error()
	for _, k := range AllKinds() {
		if !strings.Contains(msg, k.String()) {
			t.Fatalf("error %q does not list %q", msg, k)
		}
	}
	// The listing is deterministically sorted (lexicographic).
	start := strings.Index(msg, "valid: ")
	if start < 0 {
		t.Fatalf("error %q lacks the valid-kinds listing", msg)
	}
	listing := strings.TrimSuffix(msg[start+len("valid: "):], ")")
	names := strings.Split(listing, ", ")
	if len(names) != len(AllKinds()) {
		t.Fatalf("listing has %d names, want %d: %q", len(names), len(AllKinds()), listing)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("kind listing not sorted at %q > %q", names[i-1], names[i])
		}
	}
}

// --- Gray kind behavior ------------------------------------------------------

func TestLinkDownDropsAndRestores(t *testing.T) {
	inj, sim, ft := setup(t, 13)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: LinkDown, Start: 100 * ms, Dur: 400 * ms},
	}})
	gt := ep.Faults[0].GT
	if gt.Link < 0 || gt.Peer < 0 {
		t.Fatal("link fault must record link and peer")
	}
	if !ft.IsSwitch(gt.Switch) || !ft.IsSwitch(gt.Peer) {
		t.Fatal("link-down endpoints must be switches")
	}
	if !sim.LinkUp(gt.Link) {
		t.Fatal("link must start up")
	}
	sim.Run(200 * ms)
	if sim.LinkUp(gt.Link) {
		t.Fatal("link must be down during the window")
	}
	sim.Run(netsim.Second)
	if !sim.LinkUp(gt.Link) {
		t.Fatal("link must come back after the window")
	}
}

func TestLinkFlapTogglesWithinWindow(t *testing.T) {
	inj, sim, _ := setup(t, 14)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: LinkFlap, Start: 0, Dur: 2 * netsim.Second},
	}})
	gt := ep.Faults[0].GT
	transitions := 0
	prev := sim.LinkUp(gt.Link)
	for at := netsim.Time(0); at < 2*netsim.Second; at += 50 * ms {
		sim.Run(at + 50*ms)
		if up := sim.LinkUp(gt.Link); up != prev {
			transitions++
			prev = up
		}
	}
	if transitions < 4 {
		t.Fatalf("flap produced only %d link-state transitions", transitions)
	}
	sim.Run(3 * netsim.Second)
	if !sim.LinkUp(gt.Link) {
		t.Fatal("link must end up after the window")
	}
}

func TestSilentDropSetsAndRevertsProbability(t *testing.T) {
	inj, sim, _ := setup(t, 15)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: SilentDrop, Start: 100 * ms, Dur: 500 * ms},
	}})
	gt := ep.Faults[0].GT
	sim.Run(200 * ms)
	p := sim.PortDropProb(gt.Switch, gt.Port)
	if p < 0.03 || p > 0.12 {
		t.Fatalf("silent drop probability = %v, want in [0.03, 0.12]", p)
	}
	sim.Run(netsim.Second)
	if got := sim.PortDropProb(gt.Switch, gt.Port); got != 0 {
		t.Fatalf("drop probability after revert = %v, want 0", got)
	}
}

type fakeFlusher struct{ flushed []topology.NodeID }

func (f *fakeFlusher) FlushSwitch(sw topology.NodeID) { f.flushed = append(f.flushed, sw) }

func TestSwitchRebootDownsSwitchAndFlushesRegisters(t *testing.T) {
	inj, sim, _ := setup(t, 16)
	fl := &fakeFlusher{}
	inj.Registers = fl
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: SwitchReboot, Start: 100 * ms, Dur: 300 * ms},
	}})
	gt := ep.Faults[0].GT
	sim.Run(200 * ms)
	if !sim.SwitchDown(gt.Switch) {
		t.Fatal("switch must be down during the reboot")
	}
	if len(fl.flushed) != 0 {
		t.Fatal("registers must not flush before recovery")
	}
	sim.Run(netsim.Second)
	if sim.SwitchDown(gt.Switch) {
		t.Fatal("switch must recover after the window")
	}
	if len(fl.flushed) != 1 || fl.flushed[0] != gt.Switch {
		t.Fatalf("recovery must flush the rebooted switch once, got %v", fl.flushed)
	}
}

func TestUplinkDegradeEpisodeStructure(t *testing.T) {
	inj, _, ft := setup(t, 17)
	ep := inj.Apply(Schedule{Injections: []Injection{
		{Kind: UplinkDegrade, Start: 100 * ms, Dur: netsim.Second},
	}})
	if len(ep.Faults) != 2 {
		t.Fatalf("uplink-degrade episode has %d faults, want 2", len(ep.Faults))
	}
	root, cons := ep.Faults[0], ep.Faults[1]
	if root.CausedBy != -1 {
		t.Fatal("root must not be caused by another fault")
	}
	if cons.CausedBy != 0 {
		t.Fatalf("consequence CausedBy = %d, want 0", cons.CausedBy)
	}
	if root.GT.Kind != UplinkDegrade || cons.GT.Kind != ECMPImbalance {
		t.Fatalf("episode kinds = %v, %v", root.GT.Kind, cons.GT.Kind)
	}
	if cons.GT.Switch != root.GT.Switch {
		t.Fatal("the ECMP reaction must happen at the degraded switch")
	}
	layer := ft.Node(root.GT.Peer).Layer
	if layer != topology.LayerAggregation && layer != topology.LayerCore {
		t.Errorf("degraded uplink peer layer = %v", layer)
	}
	roots := ep.Roots()
	if len(roots) != 1 || roots[0].Kind != UplinkDegrade {
		t.Fatalf("Roots() = %v", roots)
	}
	if got := len(ep.GroundTruths()); got != 2 {
		t.Fatalf("GroundTruths() = %d entries", got)
	}
}

// --- Schedule determinism ----------------------------------------------------

// Two injectors with the same ScheduleSeed materialize identical episodes,
// and the parameters of injection i do not depend on how much randomness
// earlier injections consumed.
func TestApplyScheduleDeterministic(t *testing.T) {
	sched := Schedule{Injections: []Injection{
		{Kind: SilentDrop, Start: 100 * ms, Dur: 500 * ms},
		{Kind: LinkDown, Start: 200 * ms, Dur: 300 * ms},
		{Kind: SwitchReboot, Start: 300 * ms, Dur: 200 * ms},
	}}
	run := func() []GroundTruth {
		inj, _, _ := setup(t, 99)
		inj.ScheduleSeed = 42
		return inj.Apply(sched).GroundTruths()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("episode sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ga, gb := a[i], b[i]
		ga.Handle, gb.Handle = nil, nil
		if ga != gb {
			t.Errorf("fault %d differs: %+v vs %+v", i, ga, gb)
		}
	}
	// Dropping the first injection must not change the second's parameters
	// (per-injection seeding is positional, not stream-order dependent).
	inj, _, _ := setup(t, 99)
	inj.ScheduleSeed = 42
	solo := inj.Apply(Schedule{Injections: sched.Injections[:2]}).GroundTruths()
	sa, sb := a[1], solo[1]
	sa.Handle, sb.Handle = nil, nil
	if sa != sb {
		t.Errorf("injection 1 depends on schedule prefix: %+v vs %+v", sa, sb)
	}
}
