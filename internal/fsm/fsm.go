// Package fsm implements Frequent Sequence Mining over switch paths
// (§4.4.2). MARS feeds the abnormal set's paths to a miner and keeps the
// frequent patterns of length <= 2 — single switches and links — as
// candidate culprits.
//
// Seven algorithms from the paper's Fig. 11 comparison are provided:
// PrefixSpan, GSP, SPADE, SPAM, LAPIN-SPAM, CM-SPADE, and CM-SPAM. All
// implement the Miner interface and return identical pattern sets, which
// the test suite cross-checks against a naive enumerator.
//
// Semantics: MARS treats a "link" pattern ⟨a,b⟩ as two *adjacent* switches
// on a path (the paper's worked example keeps ⟨s3,s2⟩ but not ⟨s3,s4⟩ for
// path ⟨s3,s2,s4⟩), i.e. contiguous substring matching. The classic
// gap-allowed subsequence semantics of the original algorithms is also
// supported via Params.AllowGaps, and both are exercised in tests.
package fsm

import (
	"fmt"
	"sort"

	"mars/internal/det"
)

// Item is one sequence element (a switch ID).
type Item int32

// Sequence is an ordered list of items (a packet path).
type Sequence []Item

// Dataset is the sequence database a miner operates on.
type Dataset []Sequence

// Pattern is a mined frequent sequence with its support (the number of
// database sequences that contain it).
type Pattern struct {
	Items   []Item
	Support int
}

func (p Pattern) String() string {
	s := "<"
	for i, it := range p.Items {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("s%d", it)
	}
	return fmt.Sprintf("%s>:%d", s, p.Support)
}

// Key returns a map key for the pattern's items.
func (p Pattern) Key() string { return seqKey(p.Items) }

func seqKey(items []Item) string {
	b := make([]byte, 0, len(items)*4)
	for _, it := range items {
		b = append(b, byte(it>>24), byte(it>>16), byte(it>>8), byte(it))
	}
	return string(b)
}

// Params configures a mining run.
type Params struct {
	// MinSupport is the absolute support floor. If zero, MinRelSupport
	// applies instead.
	MinSupport int
	// MinRelSupport is the relative support floor as a fraction of the
	// database size (the paper's example uses 50%).
	MinRelSupport float64
	// MaxLen caps pattern length; 0 means unlimited. MARS uses 2.
	MaxLen int
	// AllowGaps selects classic subsequence semantics; false (default)
	// requires contiguous substring matches, which is what MARS's
	// link-or-switch patterns mean.
	AllowGaps bool
}

// minSupport resolves the effective absolute support for db.
func (p Params) minSupport(db Dataset) int {
	ms := p.MinSupport
	if ms <= 0 {
		ms = int(p.MinRelSupport * float64(len(db)))
		if ms < 1 {
			ms = 1
		}
	}
	return ms
}

// maxLen resolves the effective pattern length cap.
func (p Params) maxLen() int {
	if p.MaxLen <= 0 {
		return 1 << 30
	}
	return p.MaxLen
}

// Miner is a frequent sequence mining algorithm.
type Miner interface {
	Name() string
	Mine(db Dataset, p Params) []Pattern
}

// All returns one instance of every implemented algorithm, in the order
// used by the Fig. 11 experiment.
func All() []Miner {
	return []Miner{
		NewPrefixSpan(),
		NewLapin(),
		NewGSP(),
		NewSpade(),
		NewSpam(),
		NewCMSpade(),
		NewCMSpam(),
	}
}

// ByName returns the miner with the given Name, or nil.
func ByName(name string) Miner {
	for _, m := range All() {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// Contains reports whether seq contains pat under the given semantics.
func Contains(seq Sequence, pat []Item, allowGaps bool) bool {
	if len(pat) == 0 {
		return true
	}
	if allowGaps {
		i := 0
		for _, it := range seq {
			if it == pat[i] {
				i++
				if i == len(pat) {
					return true
				}
			}
		}
		return false
	}
outer:
	for i := 0; i+len(pat) <= len(seq); i++ {
		for j := range pat {
			if seq[i+j] != pat[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// sortPatterns orders output deterministically: support descending, then
// length ascending, then lexicographic items.
func sortPatterns(ps []Pattern) []Pattern {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		if len(ps[i].Items) != len(ps[j].Items) {
			return len(ps[i].Items) < len(ps[j].Items)
		}
		a, b := ps[i].Items, ps[j].Items
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return ps
}

// frequentItems returns items meeting minSup with their supports,
// ascending by item.
func frequentItems(db Dataset, minSup int) []Pattern {
	sup := map[Item]int{}
	for _, seq := range db {
		seen := map[Item]bool{}
		for _, it := range seq {
			if !seen[it] {
				seen[it] = true
				sup[it]++
			}
		}
	}
	var out []Pattern
	for _, it := range det.Keys(sup) {
		if s := sup[it]; s >= minSup {
			out = append(out, Pattern{Items: []Item{it}, Support: s})
		}
	}
	return out
}

// NaiveMiner enumerates every distinct substring/subsequence up to MaxLen
// and counts support by scanning. It is the test oracle and is
// exponential for gap semantics on long sequences — use only on small
// databases.
type NaiveMiner struct{}

// Name implements Miner.
func (NaiveMiner) Name() string { return "naive" }

// Mine implements Miner.
func (NaiveMiner) Mine(db Dataset, p Params) []Pattern {
	minSup := p.minSupport(db)
	maxLen := p.maxLen()
	cands := map[string][]Item{}
	for _, seq := range db {
		if p.AllowGaps {
			collectSubseqs(seq, maxLen, cands)
		} else {
			for i := range seq {
				for l := 1; l <= maxLen && i+l <= len(seq); l++ {
					sub := seq[i : i+l]
					cands[seqKey(sub)] = append([]Item{}, sub...)
				}
			}
		}
	}
	var out []Pattern
	for _, k := range det.Keys(cands) {
		items := cands[k]
		sup := 0
		for _, seq := range db {
			if Contains(seq, items, p.AllowGaps) {
				sup++
			}
		}
		if sup >= minSup {
			out = append(out, Pattern{Items: items, Support: sup})
		}
	}
	return sortPatterns(out)
}

func collectSubseqs(seq Sequence, maxLen int, into map[string][]Item) {
	var rec func(start int, cur []Item)
	rec = func(start int, cur []Item) {
		if len(cur) > 0 {
			into[seqKey(cur)] = append([]Item{}, cur...)
		}
		if len(cur) == maxLen {
			return
		}
		for i := start; i < len(seq); i++ {
			rec(i+1, append(cur, seq[i]))
		}
	}
	rec(0, nil)
}
