package fsm

import (
	"math/rand"
	"reflect"
	"testing"
)

// paperExample is §4.4.2's worked example: four copies of <s3,s2,s4> and
// two of <s6,s2,s7>, max length 2, min relative support 50%.
func paperExample() Dataset {
	db := Dataset{}
	for i := 0; i < 4; i++ {
		db = append(db, Sequence{3, 2, 4})
	}
	for i := 0; i < 2; i++ {
		db = append(db, Sequence{6, 2, 7})
	}
	return db
}

func patternsToMap(ps []Pattern) map[string]int {
	m := map[string]int{}
	for _, p := range ps {
		m[p.Key()] = p.Support
	}
	return m
}

func TestPaperExampleAllMiners(t *testing.T) {
	db := paperExample()
	params := Params{MinRelSupport: 0.5, MaxLen: 2}
	want := map[string]int{
		seqKey([]Item{2}):    6,
		seqKey([]Item{2, 4}): 4,
		seqKey([]Item{3}):    4,
		seqKey([]Item{3, 2}): 4,
		seqKey([]Item{4}):    4,
	}
	for _, m := range append(All(), NaiveMiner{}) {
		got := patternsToMap(m.Mine(db, params))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v patterns, want the paper's 5", m.Name(), len(got))
			for k, v := range got {
				t.Logf("  %s: %v -> %d", m.Name(), []byte(k), v)
			}
		}
	}
}

func TestPaperExampleExcludesNonLink(t *testing.T) {
	// <s3,s4> is a gap subsequence of <s3,s2,s4> with support 4, but MARS
	// must not report it: it is not a link (contiguous pair).
	db := paperExample()
	got := patternsToMap(NewPrefixSpan().Mine(db, Params{MinRelSupport: 0.5, MaxLen: 2}))
	if _, bad := got[seqKey([]Item{3, 4})]; bad {
		t.Error("contiguous mining reported non-adjacent pair <s3,s4>")
	}
	// With gaps allowed, it *should* appear — the semantics differ.
	gapped := patternsToMap(NewPrefixSpan().Mine(db, Params{MinRelSupport: 0.5, MaxLen: 2, AllowGaps: true}))
	if _, ok := gapped[seqKey([]Item{3, 4})]; !ok {
		t.Error("gap mining lost subsequence <s3,s4>")
	}
}

func TestTopPatternIsS2(t *testing.T) {
	db := paperExample()
	ps := NewPrefixSpan().Mine(db, Params{MinRelSupport: 0.5, MaxLen: 2})
	if len(ps) == 0 || len(ps[0].Items) != 1 || ps[0].Items[0] != 2 || ps[0].Support != 6 {
		t.Fatalf("top pattern = %v, want <s2>:6", ps[0])
	}
}

func TestEmptyAndTinyDatasets(t *testing.T) {
	for _, m := range All() {
		if got := m.Mine(nil, Params{MinSupport: 1, MaxLen: 2}); len(got) != 0 {
			t.Errorf("%s: empty db returned %d patterns", m.Name(), len(got))
		}
		got := m.Mine(Dataset{{7}}, Params{MinSupport: 1, MaxLen: 2})
		if len(got) != 1 || got[0].Support != 1 {
			t.Errorf("%s: single-item db = %v", m.Name(), got)
		}
	}
}

func TestMinSupportAbsoluteOverridesRelative(t *testing.T) {
	db := paperExample()
	// Absolute 5 keeps only <s2>.
	ps := NewPrefixSpan().Mine(db, Params{MinSupport: 5, MinRelSupport: 0.01, MaxLen: 2})
	if len(ps) != 1 || ps[0].Items[0] != 2 {
		t.Fatalf("got %v, want only <s2>", ps)
	}
}

func TestMaxLenUnlimited(t *testing.T) {
	db := Dataset{{1, 2, 3}, {1, 2, 3}}
	ps := NewPrefixSpan().Mine(db, Params{MinSupport: 2})
	m := patternsToMap(ps)
	if m[seqKey([]Item{1, 2, 3})] != 2 {
		t.Errorf("full-length pattern missing: %v", ps)
	}
}

func TestRepeatedItemsWithinSequence(t *testing.T) {
	// Support counts sequences, not occurrences.
	db := Dataset{{5, 5, 5}, {5, 1}}
	for _, m := range append(All(), NaiveMiner{}) {
		ps := patternsToMap(m.Mine(db, Params{MinSupport: 1, MaxLen: 2}))
		if ps[seqKey([]Item{5})] != 2 {
			t.Errorf("%s: support of <5> = %d, want 2", m.Name(), ps[seqKey([]Item{5})])
		}
		if ps[seqKey([]Item{5, 5})] != 1 {
			t.Errorf("%s: support of <5,5> = %d, want 1", m.Name(), ps[seqKey([]Item{5, 5})])
		}
	}
}

// randomPaths builds a dataset that looks like MARS's abnormal sets:
// short switch sequences (length 1-6) over a small alphabet.
func randomPaths(rng *rand.Rand, n int) Dataset {
	db := make(Dataset, n)
	for i := range db {
		l := 1 + rng.Intn(6)
		seq := make(Sequence, l)
		for j := range seq {
			seq[j] = Item(rng.Intn(12))
		}
		db[i] = seq
	}
	return db
}

func TestCrossValidationContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		db := randomPaths(rng, 20+rng.Intn(30))
		params := Params{MinSupport: 2 + rng.Intn(4), MaxLen: 1 + rng.Intn(3)}
		want := patternsToMap(NaiveMiner{}.Mine(db, params))
		for _, m := range All() {
			got := patternsToMap(m.Mine(db, params))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %s disagrees with naive (got %d, want %d patterns)\nparams %+v",
					trial, m.Name(), len(got), len(want), params)
			}
		}
	}
}

func TestCrossValidationGapped(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 10; trial++ {
		db := randomPaths(rng, 15+rng.Intn(15))
		params := Params{MinSupport: 2 + rng.Intn(3), MaxLen: 1 + rng.Intn(3), AllowGaps: true}
		want := patternsToMap(NaiveMiner{}.Mine(db, params))
		for _, m := range All() {
			got := patternsToMap(m.Mine(db, params))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %s (gapped) disagrees with naive (got %d, want %d)\nparams %+v",
					trial, m.Name(), len(got), len(want), params)
			}
		}
	}
}

func TestDeterministicOrdering(t *testing.T) {
	db := paperExample()
	params := Params{MinRelSupport: 0.5, MaxLen: 2}
	for _, m := range All() {
		a := m.Mine(db, params)
		b := m.Mine(db, params)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: non-deterministic output order", m.Name())
		}
	}
}

func TestContains(t *testing.T) {
	seq := Sequence{1, 2, 3, 2}
	cases := []struct {
		pat  []Item
		gaps bool
		want bool
	}{
		{[]Item{}, false, true},
		{[]Item{2, 3}, false, true},
		{[]Item{1, 3}, false, false},
		{[]Item{1, 3}, true, true},
		{[]Item{3, 2}, false, true},
		{[]Item{2, 2}, false, false},
		{[]Item{2, 2}, true, true},
		{[]Item{1, 2, 3, 2}, false, true},
		{[]Item{1, 2, 3, 2, 9}, false, false},
	}
	for _, c := range cases {
		if got := Contains(seq, c.pat, c.gaps); got != c.want {
			t.Errorf("Contains(%v, gaps=%v) = %v, want %v", c.pat, c.gaps, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	if m := ByName("PrefixSpan"); m == nil || m.Name() != "PrefixSpan" {
		t.Error("ByName(PrefixSpan) failed")
	}
	if m := ByName("nonsense"); m != nil {
		t.Error("ByName(nonsense) should be nil")
	}
	names := map[string]bool{}
	for _, m := range All() {
		if names[m.Name()] {
			t.Errorf("duplicate miner name %s", m.Name())
		}
		names[m.Name()] = true
	}
	if len(names) != 7 {
		t.Errorf("expected 7 miners, have %d", len(names))
	}
}

func TestPopcount(t *testing.T) {
	b := newBitmap(2)
	b.set(0)
	b.set(63)
	b.set(64)
	if popcount(b) != 3 {
		t.Errorf("popcount = %d", popcount(b))
	}
}

func BenchmarkMinersOnPathCorpus(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	db := randomPaths(rng, 2000)
	params := Params{MinRelSupport: 0.05, MaxLen: 2}
	for _, m := range All() {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Mine(db, params)
			}
		})
	}
}
