package fsm

import "mars/internal/det"

// Incremental maintains the frequent-pattern state of a sliding window
// without re-mining from scratch: sequences are added when their epoch
// enters the window and removed when it expires, and the per-pattern
// support counts update by the delta only. It implements the contiguous
// (gap-free) semantics MARS uses for switch/link culprits; pattern length
// is capped at construction.
//
// Two read paths serve the stream service:
//
//   - Patterns(p) mines the indexed multiset itself — exactly what a batch
//     miner would return over the same dataset (the equivalence tests pin
//     this against PrefixSpan and the naive oracle);
//   - Miner() adapts the index to the rca seam: Mine(db, p) counts each
//     indexed candidate's support over db exactly. Because every db the
//     analyzer builds is drawn from window records whose paths are
//     indexed, and a contiguous pattern frequent in a subset necessarily
//     occurs in some indexed sequence, the candidate set is complete — the
//     adapter's output equals a from-scratch mine of db.
//
// Not safe for concurrent use; each stream unit owns one index.
type Incremental struct {
	maxLen int
	// counts maps pattern key → entry. Support counts sequences (with
	// multiplicity) containing the pattern at least once.
	counts map[string]*incEntry
	// size is the number of indexed sequences (with multiplicity).
	size int
	// scratch dedupes patterns within one sequence.
	scratch map[string]bool
}

type incEntry struct {
	items   []Item
	support int
}

// NewIncremental creates an empty window index for contiguous patterns of
// length <= maxLen (MARS uses 2: switches and links).
func NewIncremental(maxLen int) *Incremental {
	if maxLen <= 0 {
		maxLen = 2
	}
	return &Incremental{
		maxLen:  maxLen,
		counts:  make(map[string]*incEntry),
		scratch: make(map[string]bool),
	}
}

// Len returns the number of indexed sequences.
func (x *Incremental) Len() int { return x.size }

// patternsOf visits each distinct contiguous pattern of seq once.
func (x *Incremental) patternsOf(seq Sequence, visit func(key string, items []Item)) {
	clear(x.scratch)
	for i := range seq {
		for l := 1; l <= x.maxLen && i+l <= len(seq); l++ {
			sub := seq[i : i+l]
			k := seqKey(sub)
			if x.scratch[k] {
				continue
			}
			x.scratch[k] = true
			visit(k, sub)
		}
	}
}

// Add indexes one sequence.
func (x *Incremental) Add(seq Sequence) {
	x.size++
	x.patternsOf(seq, func(k string, items []Item) {
		e := x.counts[k]
		if e == nil {
			e = &incEntry{items: append([]Item(nil), items...)}
			x.counts[k] = e
		}
		e.support++
	})
}

// Remove un-indexes one sequence previously passed to Add. Removing a
// sequence that was never added corrupts the counts; the stream service
// pairs every Remove with the Add of the expiring epoch bucket.
func (x *Incremental) Remove(seq Sequence) {
	if x.size == 0 {
		panic("fsm: Remove on empty incremental index")
	}
	x.size--
	x.patternsOf(seq, func(k string, _ []Item) {
		e := x.counts[k]
		if e == nil {
			panic("fsm: Remove of a sequence that was never added")
		}
		e.support--
		if e.support <= 0 {
			delete(x.counts, k)
		}
	})
}

// Patterns mines the indexed multiset: all contiguous patterns meeting
// p's support floor over the Len() indexed sequences, in the canonical
// order (support desc, length asc, lexicographic).
func (x *Incremental) Patterns(p Params) []Pattern {
	minSup := p.MinSupport
	if minSup <= 0 {
		minSup = int(p.MinRelSupport * float64(x.size))
		if minSup < 1 {
			minSup = 1
		}
	}
	maxLen := p.maxLen()
	var out []Pattern
	for _, k := range det.Keys(x.counts) {
		e := x.counts[k]
		if e.support >= minSup && len(e.items) <= maxLen {
			out = append(out, Pattern{Items: append([]Item(nil), e.items...), Support: e.support})
		}
	}
	return sortPatterns(out)
}

// Miner returns a Miner view of the index for the rca seam. See the type
// comment for the completeness argument; the adapter requires contiguous
// semantics (Params.AllowGaps false) and a MaxLen no larger than the
// index's.
func (x *Incremental) Miner() Miner { return windowMiner{x} }

type windowMiner struct{ x *Incremental }

// Name implements Miner.
func (windowMiner) Name() string { return "incremental-window" }

// Mine implements Miner: exact support counting of the indexed candidate
// patterns over db.
func (m windowMiner) Mine(db Dataset, p Params) []Pattern {
	if p.AllowGaps {
		panic("fsm: incremental window miner requires contiguous semantics")
	}
	minSup := p.minSupport(db)
	maxLen := p.maxLen()
	var out []Pattern
	for _, k := range det.Keys(m.x.counts) {
		e := m.x.counts[k]
		if len(e.items) > maxLen {
			continue
		}
		sup := 0
		for _, seq := range db {
			if Contains(seq, e.items, false) {
				sup++
			}
		}
		if sup >= minSup {
			out = append(out, Pattern{Items: append([]Item(nil), e.items...), Support: sup})
		}
	}
	return sortPatterns(out)
}
