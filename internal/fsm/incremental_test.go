package fsm

import (
	"math/rand"
	"testing"
)

func randSeq(rng *rand.Rand, maxItem, maxLen int) Sequence {
	n := 2 + rng.Intn(maxLen)
	out := make(Sequence, n)
	for i := range out {
		out[i] = Item(rng.Intn(maxItem))
	}
	return out
}

func patternsEqual(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Support != b[i].Support || len(a[i].Items) != len(b[i].Items) {
			return false
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				return false
			}
		}
	}
	return true
}

// The index over a dataset must mine exactly what the batch miners mine.
func TestIncrementalMatchesBatchMiners(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		db := make(Dataset, 3+rng.Intn(20))
		inc := NewIncremental(2)
		for i := range db {
			db[i] = randSeq(rng, 8, 5)
			inc.Add(db[i])
		}
		p := Params{MinRelSupport: 0.3, MaxLen: 2}
		want := NaiveMiner{}.Mine(db, p)
		if got := inc.Patterns(p); !patternsEqual(got, want) {
			t.Fatalf("trial %d: Patterns() = %v, want %v", trial, got, want)
		}
		if got := NewPrefixSpan().Mine(db, p); !patternsEqual(got, want) {
			t.Fatalf("trial %d: oracle disagreement prefixspan %v vs naive %v", trial, got, want)
		}
	}
}

// Sliding: Add/Remove sequences over a rolling window; at every step the
// index must equal a from-scratch mine of the live window.
func TestIncrementalSlideMatchesRemine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var stream Dataset
	for i := 0; i < 120; i++ {
		stream = append(stream, randSeq(rng, 6, 4))
	}
	const window = 15
	inc := NewIncremental(2)
	p := Params{MinRelSupport: 0.4, MaxLen: 2}
	for i, seq := range stream {
		inc.Add(seq)
		if i >= window {
			inc.Remove(stream[i-window])
		}
		lo := 0
		if i >= window {
			lo = i - window + 1
		}
		live := stream[lo : i+1]
		if inc.Len() != len(live) {
			t.Fatalf("step %d: Len()=%d, want %d", i, inc.Len(), len(live))
		}
		want := NaiveMiner{}.Mine(live, p)
		if got := inc.Patterns(p); !patternsEqual(got, want) {
			t.Fatalf("step %d: incremental %v != remine %v", i, got, want)
		}
	}
}

// Removing everything must empty the index completely (no leaked counts).
func TestIncrementalDrainsToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inc := NewIncremental(2)
	var seqs Dataset
	for i := 0; i < 30; i++ {
		s := randSeq(rng, 5, 4)
		seqs = append(seqs, s)
		inc.Add(s)
	}
	for _, s := range seqs {
		inc.Remove(s)
	}
	if inc.Len() != 0 {
		t.Fatalf("Len()=%d after full drain", inc.Len())
	}
	if got := inc.Patterns(Params{MinSupport: 1}); len(got) != 0 {
		t.Fatalf("drained index still mines %v", got)
	}
	if len(inc.counts) != 0 {
		t.Fatalf("drained index retains %d count entries", len(inc.counts))
	}
}

// The Miner() adapter over a superset index must mine any subset db
// exactly as PrefixSpan does from scratch.
func TestWindowMinerMatchesBatchOnSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		all := make(Dataset, 10+rng.Intn(20))
		inc := NewIncremental(2)
		for i := range all {
			all[i] = randSeq(rng, 7, 5)
			inc.Add(all[i])
		}
		// db: random subset, possibly with repeats (rca expands records
		// into multiple estimated packets sharing one path).
		db := make(Dataset, 1+rng.Intn(2*len(all)))
		for i := range db {
			db[i] = all[rng.Intn(len(all))]
		}
		p := Params{MinRelSupport: 0.3, MaxLen: 2}
		want := NewPrefixSpan().Mine(db, p)
		if got := inc.Miner().Mine(db, p); !patternsEqual(got, want) {
			t.Fatalf("trial %d: adapter %v != batch %v", trial, got, want)
		}
	}
}

func TestWindowMinerRejectsGapSemantics(t *testing.T) {
	inc := NewIncremental(2)
	inc.Add(Sequence{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("AllowGaps did not panic")
		}
	}()
	inc.Miner().Mine(Dataset{{1, 2}}, Params{AllowGaps: true, MinSupport: 1})
}

func TestIncrementalRemoveUnknownPanics(t *testing.T) {
	inc := NewIncremental(2)
	inc.Add(Sequence{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of unknown sequence did not panic")
		}
	}()
	inc.Remove(Sequence{7, 8})
}
