package fsm

import "mars/internal/det"

// PrefixSpan mines frequent sequences by prefix-projected pattern growth
// (Pei et al., ICDE'01). For each frequent prefix it builds a projected
// database of suffix positions and recurses on the items frequent within
// it, pruning infrequent branches as early as possible. The paper found
// it the fastest miner for MARS's short-pattern workload (Fig. 11).
type PrefixSpan struct{}

// NewPrefixSpan returns a PrefixSpan miner.
func NewPrefixSpan() *PrefixSpan { return &PrefixSpan{} }

// Name implements Miner.
func (*PrefixSpan) Name() string { return "PrefixSpan" }

// projEntry locates occurrences of the current prefix in one sequence.
// For gap semantics a single earliest end position suffices; for
// contiguous semantics all end positions are kept because extensions must
// continue from a specific occurrence.
type projEntry struct {
	seq  int
	ends []int32 // positions just past each prefix occurrence
}

// Mine implements Miner.
func (*PrefixSpan) Mine(db Dataset, p Params) []Pattern {
	minSup := p.minSupport(db)
	maxLen := p.maxLen()
	var out []Pattern

	// Initial projection: every sequence with "end" before position 0 ...
	// handled specially by seeding per frequent item.
	var grow func(prefix []Item, proj []projEntry)
	grow = func(prefix []Item, proj []projEntry) {
		if len(prefix) == maxLen {
			return
		}
		// Count extension items within the projected database.
		counts := map[Item]int{}
		for _, pe := range proj {
			seq := db[pe.seq]
			seen := map[Item]bool{}
			if p.AllowGaps {
				// Earliest end is first (ends sorted); any later item extends.
				for i := pe.ends[0]; i < int32(len(seq)); i++ {
					it := seq[i]
					if !seen[it] {
						seen[it] = true
						counts[it]++
					}
				}
			} else {
				for _, e := range pe.ends {
					if e < int32(len(seq)) {
						it := seq[e]
						if !seen[it] {
							seen[it] = true
							counts[it]++
						}
					}
				}
			}
		}
		for _, it := range det.Keys(counts) {
			sup := counts[it]
			if sup < minSup {
				continue
			}
			next := append(append([]Item{}, prefix...), it)
			var nproj []projEntry
			for _, pe := range proj {
				seq := db[pe.seq]
				var ends []int32
				if p.AllowGaps {
					for i := pe.ends[0]; i < int32(len(seq)); i++ {
						if seq[i] == it {
							ends = append(ends, i+1)
							break // earliest match suffices
						}
					}
				} else {
					for _, e := range pe.ends {
						if e < int32(len(seq)) && seq[e] == it {
							ends = append(ends, e+1)
						}
					}
				}
				if len(ends) > 0 {
					nproj = append(nproj, projEntry{seq: pe.seq, ends: ends})
				}
			}
			out = append(out, Pattern{Items: next, Support: sup})
			grow(next, nproj)
		}
	}

	// Seed with frequent 1-items and their occurrence projections.
	for _, f := range frequentItems(db, minSup) {
		it := f.Items[0]
		var proj []projEntry
		for si, seq := range db {
			var ends []int32
			for i, x := range seq {
				if x == it {
					ends = append(ends, int32(i+1))
					if p.AllowGaps {
						break
					}
				}
			}
			if len(ends) > 0 {
				proj = append(proj, projEntry{seq: si, ends: ends})
			}
		}
		out = append(out, Pattern{Items: []Item{it}, Support: f.Support})
		grow([]Item{it}, proj)
	}
	return sortPatterns(out)
}
