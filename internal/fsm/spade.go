package fsm

import "mars/internal/det"

// Spade is Zaki's SPADE (Machine Learning 2001): sequences are mined in a
// vertical layout where each pattern owns an id-list of (sequence,
// end-position) occurrences, and a pattern is extended by temporally
// joining its id-list with a 1-item id-list. Support counting never
// rescans the horizontal database.
type Spade struct {
	// cmap, when non-nil, prunes extensions using the CMAP co-occurrence
	// structure (Fournier-Viger et al. 2014); this is the CM-SPADE variant.
	cmap map[[2]Item]bool
	name string
}

// NewSpade returns the plain SPADE miner.
func NewSpade() *Spade { return &Spade{name: "SPADE"} }

// NewCMSpade returns SPADE with co-occurrence (CMAP) pruning.
func NewCMSpade() *Spade { return &Spade{name: "CM-SPADE", cmap: map[[2]Item]bool{}} }

// Name implements Miner.
func (s *Spade) Name() string { return s.name }

// idOcc is one occurrence in a vertical id-list.
type idOcc struct {
	sid int32 // sequence index
	eid int32 // position of the pattern's last item
}

// Mine implements Miner.
func (s *Spade) Mine(db Dataset, p Params) []Pattern {
	minSup := p.minSupport(db)
	maxLen := p.maxLen()

	// Build 1-item vertical id-lists.
	itemLists := map[Item][]idOcc{}
	for si, seq := range db {
		for pos, it := range seq {
			itemLists[it] = append(itemLists[it], idOcc{int32(si), int32(pos)})
		}
	}
	var items []Item
	for _, it := range det.Keys(itemLists) {
		if supportOf(itemLists[it]) >= minSup {
			items = append(items, it)
		}
	}

	// CM-SPADE: precompute which ordered pairs co-occur frequently enough
	// to be worth joining.
	useCmap := s.cmap != nil
	var cmap map[[2]Item]bool
	if useCmap {
		cmap = buildCMAP(db, minSup, p.AllowGaps)
	}

	var out []Pattern
	var dfs func(prefix []Item, list []idOcc)
	dfs = func(prefix []Item, list []idOcc) {
		sup := supportOf(list)
		if sup < minSup {
			return
		}
		out = append(out, Pattern{Items: append([]Item{}, prefix...), Support: sup})
		if len(prefix) == maxLen {
			return
		}
		last := prefix[len(prefix)-1]
		for _, it := range items {
			if useCmap && !cmap[[2]Item{last, it}] {
				continue
			}
			joined := temporalJoin(list, itemLists[it], p.AllowGaps)
			if supportOf(joined) >= minSup {
				dfs(append(prefix, it), joined)
			}
		}
	}
	for _, it := range items {
		dfs([]Item{it}, itemLists[it])
	}
	return sortPatterns(out)
}

// supportOf counts distinct sequence IDs in a sorted id-list.
func supportOf(list []idOcc) int {
	n := 0
	var prev int32 = -1
	for _, o := range list {
		if o.sid != prev {
			n++
			prev = o.sid
		}
	}
	return n
}

// temporalJoin extends a pattern id-list with an item id-list: the result
// holds occurrences where the item appears after (gap semantics) or
// immediately after (contiguous) an occurrence of the pattern, per
// sequence. Both inputs are sorted by (sid, eid); so is the output.
func temporalJoin(pat, item []idOcc, allowGaps bool) []idOcc {
	var out []idOcc
	i, j := 0, 0
	for i < len(pat) && j < len(item) {
		switch {
		case pat[i].sid < item[j].sid:
			i++
		case pat[i].sid > item[j].sid:
			j++
		default:
			sid := pat[i].sid
			// Collect both sides' positions for this sequence.
			pi := i
			for pi < len(pat) && pat[pi].sid == sid {
				pi++
			}
			ji := j
			for ji < len(item) && item[ji].sid == sid {
				ji++
			}
			if allowGaps {
				// Earliest pattern end; every later item position matches,
				// but for id-list correctness keep each item position that
				// has some pattern occurrence before it.
				minEnd := pat[i].eid
				for k := j; k < ji; k++ {
					if item[k].eid > minEnd {
						out = append(out, idOcc{sid, item[k].eid})
					}
				}
			} else {
				// Contiguous: item position must be exactly pattern end + 1.
				ends := map[int32]bool{}
				for k := i; k < pi; k++ {
					ends[pat[k].eid] = true
				}
				for k := j; k < ji; k++ {
					if ends[item[k].eid-1] {
						out = append(out, idOcc{sid, item[k].eid})
					}
				}
			}
			i, j = pi, ji
		}
	}
	return out
}

// buildCMAP records ordered item pairs whose 2-pattern support reaches
// minSup; any longer pattern ending in a pair absent from the map cannot
// be frequent, so DFS extensions are pruned without a join.
func buildCMAP(db Dataset, minSup int, allowGaps bool) map[[2]Item]bool {
	counts := map[[2]Item]int{}
	for _, seq := range db {
		seen := map[[2]Item]bool{}
		if allowGaps {
			for i := 0; i < len(seq); i++ {
				for j := i + 1; j < len(seq); j++ {
					seen[[2]Item{seq[i], seq[j]}] = true
				}
			}
		} else {
			for i := 0; i+1 < len(seq); i++ {
				seen[[2]Item{seq[i], seq[i+1]}] = true
			}
		}
		//mars:mapiter-ok integer counting into a map is order-independent
		for k := range seen {
			counts[k]++
		}
	}
	out := map[[2]Item]bool{}
	//mars:mapiter-ok building an unordered set is order-independent
	for k, c := range counts {
		if c >= minSup {
			out[k] = true
		}
	}
	return out
}
