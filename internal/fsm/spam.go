package fsm

import (
	"math/bits"

	"mars/internal/det"
)

// Spam is SPAM (Ayres et al., KDD'02): the database is encoded as one
// bitmap per item with a bit per position of every sequence, and a
// pattern's occurrences are a bitmap of its end positions. An S-step
// extension shifts the pattern bitmap into the "positions after" mask and
// ANDs the item bitmap — all support counting is word-parallel popcounts.
//
// The same engine also serves LAPIN-SPAM (Yang & Kitsuregawa, ICDE'05
// workshop): before paying for the shift+AND, the item's last position in
// each sequence is compared with the pattern's first end (last-position
// induction), skipping sequences that cannot possibly extend.
type Spam struct {
	lapin bool
	cmap  bool
	name  string
}

// NewSpam returns the plain SPAM miner.
func NewSpam() *Spam { return &Spam{name: "SPAM"} }

// NewLapin returns the LAPIN-SPAM variant (last-position induction).
func NewLapin() *Spam { return &Spam{name: "LAPIN", lapin: true} }

// NewCMSpam returns SPAM with CMAP co-occurrence pruning.
func NewCMSpam() *Spam { return &Spam{name: "CM-SPAM", cmap: true} }

// Name implements Miner.
func (s *Spam) Name() string { return s.name }

// bitmapDB lays all sequences into one flat bit space. Sequence i owns
// bits [offset[i], offset[i]+len(seq_i)).
type bitmapDB struct {
	words   int
	offset  []int32
	lengths []int32
	// lastPos[item][sid] is the final position (bit index) of item in
	// sequence sid, or -1.
	lastPos map[Item][]int32
}

type bitmap []uint64

func (b bitmap) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitmap) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func newBitmap(words int) bitmap  { return make(bitmap, words) }
func (b bitmap) clone() bitmap    { c := newBitmap(len(b)); copy(c, b); return c }
func (b bitmap) and(o bitmap) {
	for i := range b {
		b[i] &= o[i]
	}
}
func (b bitmap) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Mine implements Miner.
func (s *Spam) Mine(db Dataset, p Params) []Pattern {
	minSup := p.minSupport(db)
	maxLen := p.maxLen()

	totalBits := int32(0)
	bdb := &bitmapDB{offset: make([]int32, len(db)), lengths: make([]int32, len(db)), lastPos: map[Item][]int32{}}
	for i, seq := range db {
		bdb.offset[i] = totalBits
		bdb.lengths[i] = int32(len(seq))
		totalBits += int32(len(seq))
	}
	bdb.words = int(totalBits+63) / 64

	itemBitmaps := map[Item]bitmap{}
	for si, seq := range db {
		for pos, it := range seq {
			bm := itemBitmaps[it]
			if bm == nil {
				bm = newBitmap(bdb.words)
				itemBitmaps[it] = bm
			}
			bit := bdb.offset[si] + int32(pos)
			bm.set(bit)
			lp := bdb.lastPos[it]
			if lp == nil {
				lp = make([]int32, len(db))
				for k := range lp {
					lp[k] = -1
				}
				bdb.lastPos[it] = lp
			}
			lp[si] = bit
		}
	}

	var items []Item
	for _, it := range det.Keys(itemBitmaps) {
		if s.countSupport(bdb, itemBitmaps[it]) >= minSup {
			items = append(items, it)
		}
	}

	var cmap map[[2]Item]bool
	if s.cmap {
		cmap = buildCMAP(db, minSup, p.AllowGaps)
	}

	var out []Pattern
	var dfs func(prefix []Item, bm bitmap)
	dfs = func(prefix []Item, bm bitmap) {
		sup := s.countSupport(bdb, bm)
		if sup < minSup {
			return
		}
		out = append(out, Pattern{Items: append([]Item{}, prefix...), Support: sup})
		if len(prefix) == maxLen {
			return
		}
		last := prefix[len(prefix)-1]
		for _, it := range items {
			if s.cmap && !cmap[[2]Item{last, it}] {
				continue
			}
			if s.lapin && !s.lapinViable(bdb, bm, it, minSup) {
				continue
			}
			ext := s.sStep(bdb, bm, p.AllowGaps)
			ext.and(itemBitmaps[it])
			if !ext.empty() {
				dfs(append(prefix, it), ext)
			}
		}
	}
	for _, it := range items {
		dfs([]Item{it}, itemBitmaps[it].clone())
	}
	return sortPatterns(out)
}

// sStep transforms an end-position bitmap into the extension mask: for
// gap semantics all later positions within the same sequence; for
// contiguous semantics exactly the next position.
func (s *Spam) sStep(bdb *bitmapDB, bm bitmap, allowGaps bool) bitmap {
	out := newBitmap(bdb.words)
	for si := range bdb.offset {
		start := bdb.offset[si]
		end := start + bdb.lengths[si]
		if allowGaps {
			// Find first set bit in [start,end); set all bits after it.
			first := int32(-1)
			for i := start; i < end; i++ {
				if bm.get(i) {
					first = i
					break
				}
			}
			if first >= 0 {
				for i := first + 1; i < end; i++ {
					out.set(i)
				}
			}
		} else {
			for i := start; i < end-1; i++ {
				if bm.get(i) {
					out.set(i + 1)
				}
			}
		}
	}
	return out
}

// countSupport counts sequences with at least one set bit.
func (s *Spam) countSupport(bdb *bitmapDB, bm bitmap) int {
	sup := 0
	for si := range bdb.offset {
		start := bdb.offset[si]
		end := start + bdb.lengths[si]
		for i := start; i < end; i++ {
			if bm.get(i) {
				sup++
				break
			}
		}
	}
	return sup
}

// lapinViable applies last-position induction: count sequences where the
// item's last position lies beyond the pattern's first end position; if
// fewer than minSup, the S-step cannot yield a frequent pattern.
func (s *Spam) lapinViable(bdb *bitmapDB, bm bitmap, it Item, minSup int) bool {
	lp, ok := bdb.lastPos[it]
	if !ok {
		return false
	}
	viable := 0
	for si := range bdb.offset {
		if lp[si] < 0 {
			continue
		}
		start := bdb.offset[si]
		end := start + bdb.lengths[si]
		for i := start; i < end; i++ {
			if bm.get(i) {
				if lp[si] > i {
					viable++
				}
				break
			}
		}
	}
	return viable >= minSup
}

// popcount is retained for potential word-level support counting.
func popcount(b bitmap) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
