package harness

import "sync"

// Cache memoizes trial results across experiment drivers, so sweeps that
// replay another sweep's scenarios (Fig. 9 reuses Table 1's trials) get
// the stored result instead of re-running a multi-second simulation.
// Correctness rests on trials being pure functions of their key: a cached
// value is byte-identical to what a re-run would produce, so cache hits
// can never change experiment output, only wall-clock time. Safe for
// concurrent use by harness workers.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	// m holds the memoized values; guarded by mu.
	m map[K]V
	// hits and misses count Get outcomes; guarded by mu.
	hits, misses int
}

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: make(map[K]V)}
}

// Get returns the memoized value for k, if any.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put memoizes v under k, overwriting any previous value.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// Len returns the number of memoized entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the hit/miss counters.
func (c *Cache[K, V]) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every entry and zeroes the counters (test isolation).
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[K]V)
	c.hits, c.misses = 0, 0
}
