// Package harness is the deterministic parallel trial engine under every
// experiment driver. A driver declares its trial matrix as a flat, ordered
// slice of Trials (the enumeration order IS the aggregation order), hands
// the engine a pure per-trial function, and gets results back indexed
// exactly like the input — regardless of how many workers executed them or
// in what real-time order they finished. Three properties are load-bearing:
//
//   - Determinism: each trial is a pure function of its Trial value (all
//     randomness flows from Trial.Seed via a SeedPlan), results are stored
//     at the trial's index, and drivers aggregate by iterating that slice
//     in order. Output is therefore byte-identical for any worker count.
//   - Bounded parallelism: at most Config.Workers trials run at once
//     (default runtime.GOMAXPROCS(0)).
//   - Panic containment: a panicking trial is recovered into a typed
//     *TrialError naming the trial, instead of killing the process from a
//     worker goroutine; the remaining trials still complete.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Trial is one unit of work in a trial matrix. Index is the trial's
// position in the driver's deterministic enumeration (and aggregation)
// order; Seed is the substrate seed the SeedPlan derived for it; Label is
// a human-readable tag for progress reporting.
type Trial struct {
	Index int
	Seed  int64
	Label string
}

// Progress observes trial completions. done is the number of finished
// trials at the moment this trial completed (unique per call, 1..total,
// but calls may arrive out of done-order when workers race to report);
// elapsed is the trial's wall-clock execution time. Implementations must
// be safe for concurrent use; progress output must never feed back into
// experiment results (it is the one place wall-clock time is allowed).
type Progress func(done, total int, t Trial, elapsed time.Duration)

// Config tunes the engine.
type Config struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, if non-nil, is called once per completed trial.
	Progress Progress
}

// TrialError is a panic recovered from one trial, with the trial identity
// and the panicking goroutine's stack.
type TrialError struct {
	Trial     Trial
	Recovered any
	Stack     []byte
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d (%s, seed %d) panicked: %v\n%s",
		e.Trial.Index, e.Trial.Label, e.Trial.Seed, e.Recovered, e.Stack)
}

// collector owns the engine's cross-goroutine state. Workers write through
// put; Run reads the final state through finish after the pool has drained.
type collector[T any] struct {
	mu sync.Mutex
	// results[i] holds trial i's outcome; guarded by mu.
	results []T
	// errs[i] holds trial i's recovered panic (*TrialError), else nil;
	// guarded by mu.
	errs []error
	// done counts completed trials; guarded by mu.
	done int
}

// put records trial i's outcome and returns the completion count.
func (c *collector[T]) put(i int, v T, err error) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[i] = v
	c.errs[i] = err
	c.done++
	return c.done
}

// finish returns the results slice and the trial errors joined in trial
// order. Callers must not invoke it before every worker has exited.
func (c *collector[T]) finish() ([]T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var failed []error
	for _, err := range c.errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	return c.results, errors.Join(failed...)
}

// Run executes fn over every trial on a bounded worker pool and returns
// the results indexed identically to trials. fn must be self-contained:
// it may not share mutable state across trials (each trial builds its own
// substrate from Trial.Seed). The returned error joins one *TrialError per
// panicked trial, in trial order; the corresponding result slots hold T's
// zero value.
func Run[T any](cfg Config, trials []Trial, fn func(Trial) T) ([]T, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	c := &collector[T]{
		results: make([]T, len(trials)),
		errs:    make([]error, len(trials)),
	}
	if len(trials) == 0 {
		return c.results, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//mars:sync workers drain one shared index channel and write into pre-indexed result slots; output is byte-identical at any worker count (the tests diff workers=1 against workers=8)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(cfg, c, trials[i], i, len(trials), fn)
			}
		}()
	}
	for i := range trials {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return c.finish()
}

// runOne executes a single trial, converting a panic into a *TrialError
// stored at the trial's slot so the pool survives bad trials.
func runOne[T any](cfg Config, c *collector[T], t Trial, i, total int, fn func(Trial) T) {
	start := time.Now() //mars:wallclock per-trial timing hook for operator progress, never part of results
	var (
		v   T
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &TrialError{Trial: t, Recovered: r, Stack: debug.Stack()}
			}
		}()
		v = fn(t)
	}()
	done := c.put(i, v, err)
	if cfg.Progress != nil {
		cfg.Progress(done, total, t, time.Since(start)) //mars:wallclock per-trial timing hook for operator progress, never part of results
	}
}
