package harness

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// trialsN builds n trials with synthetic seeds and labels.
func trialsN(n int) []Trial {
	ts := make([]Trial, n)
	for i := range ts {
		ts[i] = Trial{Index: i, Seed: int64(100 + i), Label: fmt.Sprintf("t%d", i)}
	}
	return ts
}

// TestRunResultsIndexedAndWorkerInvariant runs a CPU-skewed workload (late
// trials finish first) under several worker counts and requires the result
// slice to be identical to the sequential one every time.
func TestRunResultsIndexedAndWorkerInvariant(t *testing.T) {
	const n = 64
	fn := func(tr Trial) int64 {
		// Skew work so completion order differs from index order: early
		// trials burn more cycles than late ones.
		acc := tr.Seed
		for i := 0; i < (n-tr.Index)*1500; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		return acc ^ tr.Seed
	}
	want, err := Run(Config{Workers: 1}, trialsN(n), fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 100} {
		got, err := Run(Config{Workers: workers}, trialsN(n), fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, sequential %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunPanicBecomesTypedError checks the panic policy: a bad trial is
// recovered into a *TrialError naming it, surviving trials still produce
// their results, and the joined error is in trial order.
func TestRunPanicBecomesTypedError(t *testing.T) {
	ts := trialsN(8)
	results, err := Run(Config{Workers: 4}, ts, func(tr Trial) int {
		if tr.Index == 3 || tr.Index == 5 {
			panic(fmt.Sprintf("boom %d", tr.Index))
		}
		return tr.Index * 10
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error not a *TrialError: %v", err)
	}
	if te.Trial.Index != 3 {
		t.Errorf("first joined error names trial %d, want 3", te.Trial.Index)
	}
	if te.Recovered != "boom 3" {
		t.Errorf("recovered value = %v", te.Recovered)
	}
	if len(te.Stack) == 0 {
		t.Error("no stack captured")
	}
	for i, r := range results {
		switch i {
		case 3, 5:
			if r != 0 {
				t.Errorf("panicked trial %d has non-zero result %d", i, r)
			}
		default:
			if r != i*10 {
				t.Errorf("surviving trial %d result %d, want %d", i, r, i*10)
			}
		}
	}
}

// TestRunProgressCountsEachTrialOnce verifies the progress hook fires
// exactly once per trial with unique done counts covering 1..n.
func TestRunProgressCountsEachTrialOnce(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	seenDone := map[int]bool{}
	seenTrial := map[int]int{}
	cfg := Config{Workers: 4, Progress: func(done, total int, tr Trial, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
		seenDone[done] = true
		seenTrial[tr.Index]++
	}}
	if _, err := Run(cfg, trialsN(n), func(tr Trial) int { return tr.Index }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if !seenDone[i] {
			t.Errorf("done count %d never reported", i)
		}
		if seenTrial[i-1] != 1 {
			t.Errorf("trial %d reported %d times", i-1, seenTrial[i-1])
		}
	}
}

// TestRunEmptyAndDefaults covers the zero-trial case and worker clamping.
func TestRunEmptyAndDefaults(t *testing.T) {
	results, err := Run(Config{}, nil, func(Trial) int { return 1 })
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v, %v", results, err)
	}
	// Workers beyond the trial count must not deadlock or drop trials.
	results, err = Run(Config{Workers: 50}, trialsN(3), func(tr Trial) int { return tr.Index + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[2] != 3 {
		t.Fatalf("clamped run results: %v", results)
	}
}

// TestCacheMemoizes covers Get/Put/Len/Stats/Reset and concurrent access.
func TestCacheMemoizes(t *testing.T) {
	c := NewCache[string, int]()
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 7)
	if v, ok := c.Get("a"); !ok || v != 7 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Put(fmt.Sprintf("k%d", i), i)
				c.Get(fmt.Sprintf("k%d", (i+w)%100))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 101 {
		t.Errorf("len = %d, want 101", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset left entries")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Error("reset left counters")
	}
}
