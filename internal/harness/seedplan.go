package harness

// SeedPlan derives every RNG seed of a trial matrix from (base seed,
// fault-kind index, trial index). Centralizing the arithmetic here keeps
// the two historical formulas — `base + kind*1000 + trial` for the
// substrate seed and `substrate seed + 7` for the control channel —
// defined in exactly one place, and lets new sweeps opt into a
// collision-resistant derivation without disturbing published numbers.
type SeedPlan interface {
	// Name identifies the plan in docs and rendered output.
	Name() string
	// TrialSeed returns the substrate seed (simulator, router, controller)
	// for trial `trial` of fault-kind index `kind`.
	TrialSeed(base int64, kind, trial int) int64
	// CtrlChanSeed derives the control-channel seed from a trial's
	// substrate seed; the channel draws from its own stream so degrading
	// it never perturbs workload or fault randomness.
	CtrlChanSeed(trialSeed int64) int64
}

// LegacyPlan is the historical seed arithmetic every published
// EXPERIMENTS.md number was produced under: substrate seed
// base + kind*1000 + trial, control channel at substrate seed + 7. It is
// the default plan; keep it for any sweep whose numbers are recorded.
//
// Its seeds are collision-free only while trial < 1000 (the kind stride):
// trial 1000 of kind k aliases trial 0 of kind k+1. Sweeps larger than
// that must use SplitPlan.
type LegacyPlan struct{}

// Name implements SeedPlan.
func (LegacyPlan) Name() string { return "legacy" }

// TrialSeed implements SeedPlan with the historical formula.
func (LegacyPlan) TrialSeed(base int64, kind, trial int) int64 {
	return base + int64(kind)*1000 + int64(trial)
}

// CtrlChanSeed implements SeedPlan with the historical +7 offset.
func (LegacyPlan) CtrlChanSeed(trialSeed int64) int64 { return trialSeed + 7 }

// SplitPlan derives seeds by splitmix64-style hashing, so any two distinct
// (base, kind, trial) coordinates map to unrelated 64-bit seeds with no
// arithmetic aliasing at any sweep size. Use it for new sweeps (e.g. K=6/8
// scale runs with thousands of trials); published legacy sweeps must stay
// on LegacyPlan.
type SplitPlan struct{}

// Name implements SeedPlan.
func (SplitPlan) Name() string { return "split" }

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator; it is
// a bijection on 64-bit values with strong avalanche, which is what makes
// the derived seed streams collision-free per coordinate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TrialSeed implements SeedPlan by chaining the mix over the coordinates.
func (SplitPlan) TrialSeed(base int64, kind, trial int) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ uint64(uint32(kind)))
	h = splitmix64(h ^ uint64(uint32(trial))<<32)
	return int64(h)
}

// CtrlChanSeed implements SeedPlan; the constant tags the control-channel
// stream so it can never coincide with the substrate stream.
func (SplitPlan) CtrlChanSeed(trialSeed int64) int64 {
	return int64(splitmix64(uint64(trialSeed) ^ 0xc791c4a1)) // stream tag
}
