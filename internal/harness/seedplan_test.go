package harness

import "testing"

// TestLegacyPlanPinsHistoricalFormulas is the regression pin for the seed
// arithmetic every published EXPERIMENTS.md number depends on. If either
// expression changes, recorded Table-1/ctrlchan results silently stop
// being reproducible — so the formulas are asserted literally.
func TestLegacyPlanPinsHistoricalFormulas(t *testing.T) {
	var p LegacyPlan
	for _, tt := range []struct {
		base        int64
		kind, trial int
		want        int64
	}{
		{1000, 0, 0, 1000},
		{1000, 3, 7, 4007},
		{77, 4, 1, 4078},
		{-50, 2, 999, 2949},
	} {
		if got := p.TrialSeed(tt.base, tt.kind, tt.trial); got != tt.want {
			t.Errorf("TrialSeed(%d,%d,%d) = %d, want %d", tt.base, tt.kind, tt.trial, got, tt.want)
		}
	}
	if got := p.CtrlChanSeed(4007); got != 4014 {
		t.Errorf("CtrlChanSeed(4007) = %d, want 4014", got)
	}
	if p.Name() != "legacy" {
		t.Errorf("name = %q", p.Name())
	}
}

// TestLegacyPlanNoCollidingSeeds proves the legacy plan emits no colliding
// seeds across the Table-1 and ctrlchan sweeps: every (kind, trial)
// coordinate in those sweeps gets a distinct substrate seed (up to the
// documented 1000-trial stride), and within each trial the control-channel
// stream never aliases the substrate stream. The ctrlchan sweep reuses the
// Table-1 seeds at every loss point BY DESIGN (each sweep point must face
// the same fault sequence), so cross-sweep seed equality at equal
// (kind, trial) is asserted, not forbidden.
func TestLegacyPlanNoCollidingSeeds(t *testing.T) {
	var p LegacyPlan
	const kinds = 6 // faults.Kinds() plus headroom for the next injector
	for _, trials := range []int{8, 24, 999} {
		seen := map[int64][2]int{}
		for k := 0; k < kinds; k++ {
			for tr := 0; tr < trials; tr++ {
				s := p.TrialSeed(1000, k, tr)
				if prev, dup := seen[s]; dup {
					t.Fatalf("trials=%d: seed %d collides: (kind %d, trial %d) and (kind %d, trial %d)",
						trials, s, prev[0], prev[1], k, tr)
				}
				seen[s] = [2]int{k, tr}
				if cs := p.CtrlChanSeed(s); cs == s {
					t.Fatalf("control-channel seed aliases substrate seed %d", s)
				}
			}
		}
	}
	// The documented cap: at trial 1000 the plan aliases the next kind.
	if p.TrialSeed(0, 0, 1000) != p.TrialSeed(0, 1, 0) {
		t.Error("stride documentation is stale: trial 1000 no longer aliases the next kind")
	}
}

// TestSplitPlanCollisionFreeAtScale checks the hash-based plan over a grid
// far beyond the legacy stride: all substrate and control-channel seeds
// across (kinds x 20000 trials) are pairwise distinct.
func TestSplitPlanCollisionFreeAtScale(t *testing.T) {
	var p SplitPlan
	seen := make(map[int64]bool, 6*20000*2)
	for k := 0; k < 6; k++ {
		for tr := 0; tr < 20000; tr++ {
			s := p.TrialSeed(1000, k, tr)
			cs := p.CtrlChanSeed(s)
			if seen[s] {
				t.Fatalf("substrate seed collision at (kind %d, trial %d)", k, tr)
			}
			seen[s] = true
			if seen[cs] {
				t.Fatalf("control-channel seed collision at (kind %d, trial %d)", k, tr)
			}
			seen[cs] = true
		}
	}
	// Legacy's stride aliasing must not exist here.
	if p.TrialSeed(0, 0, 1000) == p.TrialSeed(0, 1, 0) {
		t.Error("split plan reproduced the legacy stride aliasing")
	}
}
