// Package metrics implements the evaluation measures of §5: precision /
// recall / F1 for anomaly detection (Fig. 8), Recall@k and Exam Score for
// root cause localization (Table 1), and CDF helpers for the utilization
// study (Fig. 2).
package metrics

import (
	"fmt"
	"sort"
)

// Confusion tallies binary classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction against ground truth.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f (tp=%d fp=%d tn=%d fn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.TN, c.FN)
}

// RankResult is the outcome of one localization trial: the 1-based rank at
// which the true root cause appeared in the culprit list, or 0 if absent.
type RankResult struct {
	Rank int
}

// Found reports whether the root cause appeared at all.
func (r RankResult) Found() bool { return r.Rank > 0 }

// ExamDefaultPenalty is the paper's convention: "if the root cause is out
// of Top-5, we set a default 10 false positive causes before it".
const ExamDefaultPenalty = 10

// ExamScore returns the number of false positives an operator must discard
// before reaching the root cause in this trial.
func (r RankResult) ExamScore() float64 {
	if r.Rank >= 1 && r.Rank <= 5 {
		return float64(r.Rank - 1)
	}
	return ExamDefaultPenalty
}

// Localization aggregates rank results across trials.
type Localization struct {
	Results []RankResult
}

// Add records one trial.
func (l *Localization) Add(rank int) {
	l.Results = append(l.Results, RankResult{Rank: rank})
}

// RecallAt returns the fraction of trials whose root cause ranked within
// the top k.
func (l *Localization) RecallAt(k int) float64 {
	if len(l.Results) == 0 {
		return 0
	}
	hit := 0
	for _, r := range l.Results {
		if r.Rank >= 1 && r.Rank <= k {
			hit++
		}
	}
	return float64(hit) / float64(len(l.Results))
}

// MeanExamScore averages the per-trial exam scores.
func (l *Localization) MeanExamScore() float64 {
	if len(l.Results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range l.Results {
		sum += r.ExamScore()
	}
	return sum / float64(len(l.Results))
}

// Trials returns the number of recorded trials.
func (l *Localization) Trials() int { return len(l.Results) }

// Merge appends another aggregate's trials (for the Overall row).
func (l *Localization) Merge(o *Localization) {
	l.Results = append(l.Results, o.Results...)
}

// CDF computes the empirical distribution of values: Quantile(q) and the
// sorted sample for plotting.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the sample.
func NewCDF(values []float64) *CDF {
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Quantile returns the q-th empirical quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := q * float64(len(c.sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(c.sorted, x)
	// include equal values
	for n < len(c.sorted) && c.sorted[n] <= x {
		n++
	}
	return float64(n) / float64(len(c.sorted))
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}
