package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("P/R/F1 = %v/%v/%v", c.Precision(), c.Recall(), c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should score 0")
	}
	c.Add(false, false)
	if c.F1() != 0 {
		t.Error("all-TN F1 should be 0")
	}
}

func TestF1KnownValue(t *testing.T) {
	// The paper's headline: 0.96 recall, 0.97 precision -> 0.97 F1 (rounded).
	c := Confusion{TP: 96, FN: 4, FP: 3}
	f1 := c.F1()
	if math.Abs(f1-0.9648) > 0.01 {
		t.Errorf("F1 = %v", f1)
	}
}

func TestExamScore(t *testing.T) {
	cases := []struct {
		rank int
		want float64
	}{
		{1, 0}, {2, 1}, {3, 2}, {5, 4},
		{6, ExamDefaultPenalty}, {0, ExamDefaultPenalty}, {100, ExamDefaultPenalty},
	}
	for _, c := range cases {
		if got := (RankResult{Rank: c.rank}).ExamScore(); got != c.want {
			t.Errorf("ExamScore(rank=%d) = %v, want %v", c.rank, got, c.want)
		}
	}
}

func TestLocalizationAggregates(t *testing.T) {
	var l Localization
	for _, r := range []int{1, 1, 2, 3, 6, 0} {
		l.Add(r)
	}
	if got := l.RecallAt(1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("R@1 = %v", got)
	}
	if got := l.RecallAt(2); math.Abs(got-3.0/6) > 1e-12 {
		t.Errorf("R@2 = %v", got)
	}
	if got := l.RecallAt(5); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("R@5 = %v", got)
	}
	want := (0.0 + 0 + 1 + 2 + 10 + 10) / 6
	if got := l.MeanExamScore(); math.Abs(got-want) > 1e-12 {
		t.Errorf("exam = %v, want %v", got, want)
	}
	if l.Trials() != 6 {
		t.Errorf("trials = %d", l.Trials())
	}
}

func TestLocalizationMerge(t *testing.T) {
	var a, b Localization
	a.Add(1)
	b.Add(0)
	a.Merge(&b)
	if a.Trials() != 2 || a.RecallAt(1) != 0.5 {
		t.Errorf("merge: trials=%d R@1=%v", a.Trials(), a.RecallAt(1))
	}
}

func TestEmptyLocalization(t *testing.T) {
	var l Localization
	if l.RecallAt(5) != 0 || l.MeanExamScore() != 0 {
		t.Error("empty localization should score 0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 {
		t.Errorf("extremes = %v,%v", c.Quantile(0), c.Quantile(1))
	}
	if got := c.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v", got)
	}
	if got := c.At(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Quantile(0.5) != 0 || c.At(1) != 0 || c.Mean() != 0 {
		t.Error("empty CDF should return zeros")
	}
}

// Property: F1 lies between 0 and 1 and is at most min(P,R)*2/(...) sanity:
// bounded by both precision and recall's harmonic envelope.
func TestPropertyF1Bounds(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		p, r := c.Precision(), c.Recall()
		return f1 <= p+1e-9 || f1 <= r+1e-9 // harmonic mean <= max needed: f1 <= min actually
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is monotone non-decreasing.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		c := NewCDF(vals)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RecallAt is monotone in k.
func TestPropertyRecallMonotone(t *testing.T) {
	f := func(ranks []uint8) bool {
		var l Localization
		for _, r := range ranks {
			l.Add(int(r) % 8)
		}
		prev := 0.0
		for k := 1; k <= 6; k++ {
			cur := l.RecallAt(k)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
