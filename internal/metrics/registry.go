package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is the stream service's health surface: a set of named int64
// counters and gauges with a deterministic, sorted-key JSON snapshot. It
// deliberately stores only integers — every value published through it
// must be a pure function of the simulated input, so the snapshot can sit
// on stdout under the CI determinism diffs. Wall-clock-derived figures
// (diagnoses per second, wall seconds) never enter a Registry; they are
// computed at the render site and printed to stderr.
//
// A Registry is not safe for concurrent use. The stream service funnels
// all updates through its single-threaded coordinator (workers return
// per-unit deltas that the coordinator folds in unit order), which is also
// what keeps the values byte-identical at any worker count.
type Registry struct {
	names []string // sorted
	vals  map[string]*int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[string]*int64)}
}

// cell returns the value cell for name, creating it at zero on first use.
// Registering the same name twice returns the same cell, so a Counter and
// a Gauge may not share a name.
func (r *Registry) cell(name string) *int64 {
	if c, ok := r.vals[name]; ok {
		return c
	}
	c := new(int64)
	r.vals[name] = c
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return c
}

// Counter is a monotonically increasing value.
type Counter struct{ v *int64 }

// Counter registers (or fetches) the named counter.
func (r *Registry) Counter(name string) Counter { return Counter{r.cell(name)} }

// Add increments the counter; n must be non-negative.
func (c Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	*c.v += n
}

// Inc adds one.
func (c Counter) Inc() { *c.v++ }

// Value returns the current count.
func (c Counter) Value() int64 { return *c.v }

// Gauge is a point-in-time value that may move in both directions.
type Gauge struct{ v *int64 }

// Gauge registers (or fetches) the named gauge.
func (r *Registry) Gauge(name string) Gauge { return Gauge{r.cell(name)} }

// Set replaces the gauge value.
func (g Gauge) Set(v int64) { *g.v = v }

// Add moves the gauge by delta (either sign).
func (g Gauge) Add(delta int64) { *g.v += delta }

// Value returns the current value.
func (g Gauge) Value() int64 { return *g.v }

// Get returns the named value and whether it is registered.
func (r *Registry) Get(name string) (int64, bool) {
	c, ok := r.vals[name]
	if !ok {
		return 0, false
	}
	return *c, true
}

// Names returns the registered names in sorted order (a copy).
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Snapshot renders the registry as one line of JSON with keys in sorted
// order: `{"a":1,"b":2}`. Integer-only values and explicit ordering make
// the output byte-stable — encoding/json's map marshaling also sorts, but
// building the string directly keeps the format under this package's
// control and allocation-predictable.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range r.names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", name, *r.vals[name])
	}
	b.WriteByte('}')
	return b.String()
}
