package metrics

import (
	"encoding/json"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("records_ingested")
	g := r.Gauge("resident_bytes")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(1024)
	g.Add(-24)
	if got := g.Value(); got != 1000 {
		t.Fatalf("gauge = %d, want 1000", got)
	}

	if v, ok := r.Get("records_ingested"); !ok || v != 5 {
		t.Fatalf("Get(records_ingested) = %d,%v", v, ok)
	}
	if _, ok := r.Get("absent"); ok {
		t.Fatal("Get(absent) reported registered")
	}
}

func TestRegistrySameNameSharesCell(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	a.Add(2)
	b.Add(3)
	if got := a.Value(); got != 5 {
		t.Fatalf("shared cell = %d, want 5", got)
	}
	if n := len(r.Names()); n != 1 {
		t.Fatalf("names = %d, want 1", n)
	}
}

func TestRegistryCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestRegistrySnapshotSortedAndValidJSON(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of order.
	r.Gauge("zeta").Set(-7)
	r.Counter("alpha").Add(1)
	r.Counter("mid").Add(42)

	got := r.Snapshot()
	want := `{"alpha":1,"mid":42,"zeta":-7}`
	if got != want {
		t.Fatalf("Snapshot() = %s, want %s", got, want)
	}

	var m map[string]int64
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if m["zeta"] != -7 || m["alpha"] != 1 || m["mid"] != 42 {
		t.Fatalf("round-trip mismatch: %v", m)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	// Same names and values registered in different orders must render
	// identically.
	r1, r2 := NewRegistry(), NewRegistry()
	for _, n := range []string{"a", "b", "c"} {
		r1.Counter(n).Add(9)
	}
	for _, n := range []string{"c", "a", "b"} {
		r2.Counter(n).Add(9)
	}
	if r1.Snapshot() != r2.Snapshot() {
		t.Fatalf("registration order leaked into snapshot: %s vs %s", r1.Snapshot(), r2.Snapshot())
	}
}

func TestRegistryEmptySnapshot(t *testing.T) {
	if got := NewRegistry().Snapshot(); got != "{}" {
		t.Fatalf("empty Snapshot() = %q, want {}", got)
	}
}
