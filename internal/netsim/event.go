package netsim

import "container/heap"

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq) so that runs are deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// agenda is the simulator's pending-event set.
type agenda struct {
	h   eventHeap
	seq uint64
}

func (a *agenda) schedule(at Time, fn func()) {
	a.seq++
	heap.Push(&a.h, event{at: at, seq: a.seq, fn: fn})
}

func (a *agenda) empty() bool { return len(a.h) == 0 }

func (a *agenda) next() event { return heap.Pop(&a.h).(event) }

func (a *agenda) peek() Time { return a.h[0].at }
