package netsim

// The agenda stores typed events rather than closures: the packet hot path
// (host arrival, pipeline delay, enqueue, transmit, propagate) runs
// billions of events per experiment sweep, and a closure per event was the
// simulator's dominant allocation source. Control-plane and workload
// callbacks still use the generic evFunc kind through At/After — they fire
// at per-epoch, not per-packet, rates. Events with equal timestamps fire
// in scheduling order (seq) so that runs are deterministic; the hand-rolled
// heap below avoids container/heap's interface boxing, which allocated on
// every schedule.

type eventKind uint8

const (
	// evFunc runs a generic scheduled closure (At / After).
	evFunc eventKind = iota
	// evHostArrive completes the host NIC serialization + propagation:
	// the packet has fully arrived at its edge switch (a=edge, b=inPort).
	evHostArrive
	// evProcArrive completes the switch-level Delay fault's extra
	// processing (a=sw, b=inPort).
	evProcArrive
	// evEnqueue completes the pipeline processing delay: the packet is
	// ready at the egress queue (a=sw, b=outPort).
	evEnqueue
	// evTxDone completes serialization of the head-of-line packet onto
	// the link (a=sw, b=outPort).
	evTxDone
	// evPropagate completes link propagation: the packet reaches the peer
	// (a=transmitting sw, b=outPort).
	evPropagate
	// evStartTx is a deferred transmitter start when a rate-limit fault
	// pushed nextFreeAt into the future (a=sw, b=outPort).
	evStartTx
)

// event is one scheduled occurrence. Packet events carry their operands
// inline (node a, port b, pkt); only evFunc carries a closure.
//
// ord makes the agenda's order a total order that is invariant under
// sharding. The sharded engine packs (generating partition unit, that
// unit's event count) into it, unit-major — see unitShift in sim.go — so
// same-timestamp events order by generating unit, then by the unit's own
// scheduling order. Both halves are properties of the simulated system,
// not of the execution: a shard receiving a mailbox event from another
// shard inserts it with the ord it was generated with, so the heap's
// (at, ord) order is identical at any shard count. The classic
// single-heap simulator stamps a bare global counter (its only unit is
// 0), which is the historical (at, scheduling order) tie-break — and
// exactly what a single-unit sharded run produces.
type event struct {
	at   Time
	ord  uint64
	kind eventKind
	a    int32
	b    int32
	pkt  *Packet
	fn   func()
}

// agenda is the simulator's pending-event set: a binary min-heap ordered
// by (at, ord). Events are stored by value in a reusable backing
// slice, so scheduling allocates only on capacity growth.
type agenda struct {
	h   []event
	seq uint64
	// peak tracks the high-water pending-event count for the MemStats-free
	// memory accounting of the scale tier.
	peak int
}

// before reports heap order: earlier time first, then ord — the packed
// (generating unit, per-unit scheduling order) stamp, or the bare global
// counter in the classic simulator.
func (a *agenda) before(i, j int) bool {
	if a.h[i].at != a.h[j].at {
		return a.h[i].at < a.h[j].at
	}
	return a.h[i].ord < a.h[j].ord
}

func (a *agenda) push(e *event) {
	a.seq++
	e.ord = a.seq
	a.pushStamped(e)
}

// pushStamped inserts an event that already carries its ord stamp — the
// sharded engine packs (generating unit, per-unit seq) into it, and
// mailbox events arriving from another shard must keep theirs.
func (a *agenda) pushStamped(e *event) {
	//mars:alloc TestNetsimStepAllocs the agenda array keeps its capacity across pops; steady state re-slices in place
	a.h = append(a.h, *e)
	if len(a.h) > a.peak {
		a.peak = len(a.h)
	}
	// Sift up.
	i := len(a.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.before(i, parent) {
			break
		}
		a.h[i], a.h[parent] = a.h[parent], a.h[i]
		i = parent
	}
}

func (a *agenda) schedule(at Time, fn func()) {
	a.push(&event{at: at, kind: evFunc, fn: fn})
}

func (a *agenda) empty() bool { return len(a.h) == 0 }

func (a *agenda) next() event {
	top := a.h[0]
	n := len(a.h) - 1
	a.h[0] = a.h[n]
	a.h[n] = event{} // release the packet/closure reference
	a.h = a.h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.before(l, smallest) {
			smallest = l
		}
		if r < n && a.before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a.h[i], a.h[smallest] = a.h[smallest], a.h[i]
		i = smallest
	}
	return top
}

func (a *agenda) peek() Time { return a.h[0].at }

// peekTime returns the earliest pending timestamp, if any.
func (a *agenda) peekTime() (Time, bool) {
	if len(a.h) == 0 {
		return 0, false
	}
	return a.h[0].at, true
}
