package netsim

import (
	"testing"

	"mars/internal/topology"
)

// TestNetsimStepAllocs pins the end-to-end per-packet allocation count of
// the bare event loop at zero: with the typed-event agenda, the packet
// pool, and the head-indexed port queues, a warmed simulator must route a
// packet from host to host without touching the heap. If this fails, a
// hot-path change reintroduced a per-packet allocation — fix the change,
// do not raise the pin.
func TestNetsimStepAllocs(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	router := NewECMPRouter(ft.Topology, 1)
	sim := New(ft.Topology, router, nil, DefaultConfig(), 1)
	hosts := ft.HostIDs
	// Warm the agenda backing array, the packet pool, and every port
	// queue the workload below will traverse.
	for i := 0; i < 256; i++ {
		sim.Send(sim.Now(), hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], FlowKey(i), 700)
		sim.RunAll()
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, FlowKey(i), 700)
		sim.RunAll()
		i++
	})
	if avg != 0 {
		t.Errorf("netsim end-to-end packet allocates %.2f objects/op, want 0", avg)
	}
}
