package netsim

import (
	"testing"

	"mars/internal/topology"
)

// BenchmarkNetsimStep measures the event loop's per-packet cost with no
// pipeline attached: one packet sent across the fat-tree fabric and run to
// delivery, covering Send, switch arrival, routing, enqueue, transmit, and
// propagation events. One op is one end-to-end packet.
func BenchmarkNetsimStep(b *testing.B) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	router := NewECMPRouter(ft.Topology, 1)
	sim := New(ft.Topology, router, nil, DefaultConfig(), 1)
	hosts := ft.HostIDs
	// Warm up the event agenda and (post-optimization) the packet pool.
	for i := 0; i < 64; i++ {
		sim.Send(sim.Now(), hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], FlowKey(i), 700)
		sim.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, FlowKey(i), 700)
		sim.RunAll()
	}
}
