package netsim

import (
	"testing"

	"mars/internal/topology"
)

// BenchmarkNetsimStep measures the event loop's per-packet cost with no
// pipeline attached: one packet sent across the fat-tree fabric and run to
// delivery, covering Send, switch arrival, routing, enqueue, transmit, and
// propagation events. One op is one end-to-end packet.
func BenchmarkNetsimStep(b *testing.B) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	router := NewECMPRouter(ft.Topology, 1)
	sim := New(ft.Topology, router, nil, DefaultConfig(), 1)
	hosts := ft.HostIDs
	// Warm up the event agenda and (post-optimization) the packet pool.
	for i := 0; i < 64; i++ {
		sim.Send(sim.Now(), hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], FlowKey(i), 700)
		sim.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, FlowKey(i), 700)
		sim.RunAll()
	}
}

// BenchmarkShardedStep measures the sharded engine's per-packet cost at
// shards=1 — the configuration bench-gate holds against the classic
// BenchmarkNetsimStep so sharding never taxes the sequential hot path.
// One op is one end-to-end cross-pod packet, including the barrier
// rounds and (empty) mailbox exchanges its windows incur.
func BenchmarkShardedStep(b *testing.B) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	sh := NewSharded(ft.Topology, ft.PodPartition(), NewECMPRouter(ft.Topology, 1), nil, DefaultConfig(), 1, ShardedConfig{Shards: 1})
	defer sh.Close()
	hosts := ft.HostIDs
	perPod := len(hosts) / ft.K
	var (
		i       int
		horizon Time
	)
	step := func(s *Simulator) {
		src := hosts[i%len(hosts)]
		dst := hosts[(i%len(hosts)+perPod*(1+i%(ft.K-1)))%len(hosts)]
		s.Send(s.Now(), src, dst, FlowKey(i), 700)
	}
	send := func() {
		sh.OnNode(hosts[i%len(hosts)], step)
		horizon += 10 * Millisecond
		sh.Run(horizon)
		i++
	}
	for n := 0; n < 64; n++ {
		send()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		send()
	}
}
