package netsim

import (
	"testing"

	"mars/internal/topology"
)

func linkStateEnv(t *testing.T) (*Simulator, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	router := NewECMPRouter(ft.Topology, 7)
	return New(ft.Topology, router, nil, DefaultConfig(), 7), ft
}

func TestSetLinkUpDropsTraversingPackets(t *testing.T) {
	sim, ft := linkStateEnv(t)
	links := ft.InterSwitchLinks()
	if len(links) == 0 {
		t.Fatal("fat-tree has no inter-switch links")
	}
	// Down every inter-switch link: no cross-edge packet can be delivered,
	// and every loss must be accounted as DropLinkDown.
	for _, l := range links {
		sim.SetLinkUp(l, false)
		if sim.LinkUp(l) {
			t.Fatalf("link %d still up", l)
		}
	}
	hosts := ft.HostIDs
	sent := 0
	for i := 0; i < 64; i++ {
		src, dst := hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)]
		if src == dst {
			continue
		}
		sim.Send(sim.Now(), src, dst, FlowKey(i), 700)
		sent++
	}
	sim.RunAll()
	down := sim.Stats.DropsByReason[DropLinkDown]
	delivered := sim.Stats.Delivered
	// Same-pod same-edge pairs can still deliver; anything that crossed a
	// switch-to-switch link must have died with the link-down reason.
	if down == 0 {
		t.Fatal("no packets dropped with link-down reason")
	}
	if int(delivered)+int(down) != sent {
		t.Fatalf("delivered %d + linkDown %d != sent %d", delivered, down, sent)
	}
	// Restore and verify traffic flows again.
	for _, l := range links {
		sim.SetLinkUp(l, true)
	}
	before := sim.Stats.Delivered
	sim.Send(sim.Now(), hosts[0], hosts[len(hosts)-1], FlowKey(999), 700)
	sim.RunAll()
	if sim.Stats.Delivered != before+1 {
		t.Fatal("restored link must deliver again")
	}
}

func TestSetSwitchDownDropsAtIngress(t *testing.T) {
	sim, ft := linkStateEnv(t)
	// Down the first edge switch: its hosts lose all connectivity.
	edge := ft.EdgeIDs[0]
	sim.SetSwitchDown(edge, true)
	if !sim.SwitchDown(edge) {
		t.Fatal("switch not marked down")
	}
	var under []topology.NodeID
	for _, h := range ft.HostIDs {
		for _, p := range ft.Node(h).Ports {
			if p.Peer == edge {
				under = append(under, h)
			}
		}
	}
	if len(under) == 0 {
		t.Fatal("no hosts under the edge switch")
	}
	other := ft.HostIDs[len(ft.HostIDs)-1]
	sim.Send(sim.Now(), under[0], other, FlowKey(1), 700)
	sim.RunAll()
	if sim.Stats.Delivered != 0 {
		t.Fatal("packet delivered through a down switch")
	}
	if sim.Stats.DropsByReason[DropSwitchDown] != 1 {
		t.Fatalf("switch-down drops = %d, want 1", sim.Stats.DropsByReason[DropSwitchDown])
	}
	sim.SetSwitchDown(edge, false)
	sim.Send(sim.Now(), under[0], other, FlowKey(2), 700)
	sim.RunAll()
	if sim.Stats.Delivered != 1 {
		t.Fatal("recovered switch must forward again")
	}
}

func TestDropReasonStringsGray(t *testing.T) {
	if DropLinkDown.String() != "link-down" || DropSwitchDown.String() != "switch-down" {
		t.Fatalf("gray drop reason strings = %q, %q", DropLinkDown, DropSwitchDown)
	}
}

// TestNetsimStepAllocsWithDynamicLinkState proves the gray-failure link
// and switch state checks keep the hot path allocation-free: the same
// zero-allocs pin as TestNetsimStepAllocs, but with a link downed and
// restored mid-warmup so the down-flag branches are exercised, and with
// one unrelated link held down during measurement.
func TestNetsimStepAllocsWithDynamicLinkState(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	router := NewECMPRouter(ft.Topology, 1)
	sim := New(ft.Topology, router, nil, DefaultConfig(), 1)
	hosts := ft.HostIDs
	links := ft.InterSwitchLinks()
	for i := 0; i < 256; i++ {
		if i == 64 {
			sim.SetLinkUp(links[0], false)
			sim.SetSwitchDown(ft.AggIDs[0], true)
		}
		if i == 128 {
			sim.SetLinkUp(links[0], true)
			sim.SetSwitchDown(ft.AggIDs[0], false)
		}
		sim.Send(sim.Now(), hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], FlowKey(i), 700)
		sim.RunAll()
	}
	sim.SetLinkUp(links[len(links)-1], false)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+3)%len(hosts)]
		if src == dst {
			dst = hosts[(i*7+4)%len(hosts)]
		}
		sim.Send(sim.Now(), src, dst, FlowKey(i), 700)
		sim.RunAll()
		i++
	})
	if avg != 0 {
		t.Errorf("hot path with dynamic link state allocates %.2f objects/op, want 0", avg)
	}
}
