package netsim

import (
	"fmt"

	"mars/internal/topology"
)

// FlowKey identifies an end-to-end flow for ECMP hashing and per-flow
// statistics. In a real network this is a 5-tuple hash; the generator
// assigns each flow a distinct key.
type FlowKey uint64

// Packet is one unit of traffic. The simulator owns routing and queueing;
// the active Hooks implementation may attach protocol metadata via Meta
// and grow the wire size via ExtraBytes (e.g. INT headers).
type Packet struct {
	// ID is unique per simulation run, in send order.
	ID uint64
	// Src and Dst are host node IDs.
	Src, Dst topology.NodeID
	// Flow is the ECMP/flow identity.
	Flow FlowKey
	// Size is the original wire size in bytes (headers + payload).
	Size int32
	// ExtraBytes is telemetry overhead added by the pipeline; it counts
	// toward serialization time and link utilization.
	ExtraBytes int32
	// SendTime is when the source host emitted the packet.
	SendTime Time
	// Meta is pipeline-owned metadata (e.g. the MARS INT header).
	Meta any

	// Ground truth recorded by the simulator for validation and for
	// baselines that capture per-switch records (IntSight, SyNDB):

	// TruePath is the switch sequence traversed so far.
	TruePath []topology.NodeID
	// HopQueueDepths[i] is the egress-queue length observed when the packet
	// was enqueued at TruePath[i].
	HopQueueDepths []int32
	// HopArrivals[i] is the arrival time at TruePath[i].
	HopArrivals []Time
}

// WireSize returns the bytes this packet occupies on a link.
func (p *Packet) WireSize() int32 { return p.Size + p.ExtraBytes }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d flow=%d %d->%d %dB", p.ID, p.Flow, p.Src, p.Dst, p.WireSize())
}

// DropReason explains why the simulator dropped a packet.
type DropReason uint8

const (
	// DropQueueFull is a tail drop at a full egress queue.
	DropQueueFull DropReason = iota
	// DropFault is an injected loss (link failure, blackhole, random loss).
	DropFault
	// DropNoRoute means the routing function returned no egress port.
	DropNoRoute
	// DropByProgram means the active Hooks requested the drop.
	DropByProgram
	// DropLinkDown means the egress link was down (link failure or flap).
	DropLinkDown
	// DropSwitchDown means the packet arrived at a rebooting switch.
	DropSwitchDown
)

func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropFault:
		return "fault"
	case DropNoRoute:
		return "no-route"
	case DropByProgram:
		return "by-program"
	case DropLinkDown:
		return "link-down"
	case DropSwitchDown:
		return "switch-down"
	default:
		return fmt.Sprintf("DropReason(%d)", uint8(r))
	}
}
