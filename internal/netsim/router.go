package netsim

import (
	"fmt"
	"sort"

	"mars/internal/topology"
)

// Router decides the egress port for a packet at a switch. Implementations
// must be deterministic functions of (switch, packet identity) so that all
// packets of a flow follow one path unless weights change.
type Router interface {
	// Route returns the egress port at sw for pkt, or ok=false if the
	// switch has no route to the destination.
	Route(sw topology.NodeID, pkt *Packet) (topology.PortID, bool)
}

// ECMPRouter implements weighted equal-cost multi-path routing over all
// shortest paths of the topology, matching the paper's "ECMP strategy
// based on path weight". The path a flow takes is chosen per switch by
// hashing the flow key over the weighted next-hop set; with default
// weights the split is even, and the ECMP-imbalance fault skews the
// weights at one switch (e.g. 1:4 .. 1:10).
type ECMPRouter struct {
	topo *topology.Topology
	// dist[sw][edge] = hop distance from switch sw to edge switch of a host.
	dist map[topology.NodeID]map[topology.NodeID]int32
	// hostEdge maps each host to its edge switch.
	hostEdge map[topology.NodeID]topology.NodeID
	// weights[sw][nextHop] overrides the default weight 1.
	weights map[topology.NodeID]map[topology.NodeID]int32
	// salt perturbs the flow hash so different runs explore different
	// hash-to-path assignments.
	salt uint64
}

// NewECMPRouter precomputes shortest-path distances between all switches.
func NewECMPRouter(topo *topology.Topology, salt uint64) *ECMPRouter {
	r := &ECMPRouter{
		topo:     topo,
		dist:     make(map[topology.NodeID]map[topology.NodeID]int32),
		hostEdge: make(map[topology.NodeID]topology.NodeID),
		weights:  make(map[topology.NodeID]map[topology.NodeID]int32),
		salt:     salt,
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			r.hostEdge[h] = sw
		}
	}
	// BFS from every switch over the switch-only subgraph.
	for _, src := range topo.Switches() {
		d := make(map[topology.NodeID]int32, topo.NumSwitches())
		d[src] = 0
		queue := []topology.NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, p := range topo.Node(u).Ports {
				v := p.Peer
				if !topo.IsSwitch(v) {
					continue
				}
				if _, seen := d[v]; !seen {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		r.dist[src] = d
	}
	return r
}

// SetWeight overrides the ECMP weight used at sw when the candidate next
// hop is via. Weight must be >= 1. Weights apply to every destination the
// next hop is on a shortest path toward.
func (r *ECMPRouter) SetWeight(sw, via topology.NodeID, w int32) {
	if w < 1 {
		panic(fmt.Sprintf("netsim: ECMP weight must be >= 1, got %d", w))
	}
	m := r.weights[sw]
	if m == nil {
		m = make(map[topology.NodeID]int32)
		r.weights[sw] = m
	}
	m[via] = w
}

// ResetWeights restores even splitting at sw.
func (r *ECMPRouter) ResetWeights(sw topology.NodeID) {
	delete(r.weights, sw)
}

// NextHops returns the equal-cost next-hop switches from sw toward dst
// host, in ascending ID order (empty if sw is the destination edge switch).
func (r *ECMPRouter) NextHops(sw topology.NodeID, dst topology.NodeID) []topology.NodeID {
	edge, ok := r.hostEdge[dst]
	if !ok {
		return nil
	}
	if sw == edge {
		return nil
	}
	dcur, ok := r.dist[sw][edge]
	if !ok {
		return nil
	}
	var hops []topology.NodeID
	for _, p := range r.topo.Node(sw).Ports {
		v := p.Peer
		if !r.topo.IsSwitch(v) {
			continue
		}
		if d, ok := r.dist[v][edge]; ok && d == dcur-1 {
			hops = append(hops, v)
		}
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return hops
}

// Route implements Router.
func (r *ECMPRouter) Route(sw topology.NodeID, pkt *Packet) (topology.PortID, bool) {
	edge, ok := r.hostEdge[pkt.Dst]
	if !ok {
		return 0, false
	}
	if sw == edge {
		return r.topo.PortTo(sw, pkt.Dst)
	}
	hops := r.NextHops(sw, pkt.Dst)
	if len(hops) == 0 {
		return 0, false
	}
	next := hops[0]
	if len(hops) > 1 {
		var total int64
		w := make([]int32, len(hops))
		for i, h := range hops {
			w[i] = 1
			if m := r.weights[sw]; m != nil {
				if v, ok := m[h]; ok {
					w[i] = v
				}
			}
			total += int64(w[i])
		}
		h := splitmix64(uint64(pkt.Flow) ^ r.salt ^ uint64(sw)*0x9E3779B97F4A7C15)
		pick := int64(h % uint64(total))
		for i := range hops {
			pick -= int64(w[i])
			if pick < 0 {
				next = hops[i]
				break
			}
		}
	}
	return r.topo.PortTo(sw, next)
}

// splitmix64 is a fast, well-mixed 64-bit hash used for flow placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
