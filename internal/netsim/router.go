package netsim

import (
	"fmt"
	"sort"

	"mars/internal/topology"
)

// Router decides the egress port for a packet at a switch. Implementations
// must be deterministic functions of (switch, packet identity) so that all
// packets of a flow follow one path unless weights change.
type Router interface {
	// Route returns the egress port at sw for pkt, or ok=false if the
	// switch has no route to the destination.
	Route(sw topology.NodeID, pkt *Packet) (topology.PortID, bool)
}

// ECMPRouter implements weighted equal-cost multi-path routing over all
// shortest paths of the topology, matching the paper's "ECMP strategy
// based on path weight". The path a flow takes is chosen per switch by
// hashing the flow key over the weighted next-hop set; with default
// weights the split is even, and the ECMP-imbalance fault skews the
// weights at one switch (e.g. 1:4 .. 1:10).
type ECMPRouter struct {
	topo *topology.Topology
	// hostEdge[host] is each host's edge switch (-1 for non-hosts), dense
	// by node ID for map-free routing.
	hostEdge []topology.NodeID
	// hostPort[host] is the edge switch's port toward the host.
	hostPort []topology.PortID
	// cands[sw*numNodes+edge] lists the equal-cost next hops from switch
	// sw toward edge switch edge, ascending by next-hop ID. The candidate
	// sets depend only on the immutable topology (weights merely bias the
	// pick), so they are precomputed once and the per-packet Route is
	// allocation-free.
	cands [][]nextHop
	// weights[sw][nextHop] overrides the default weight 1.
	weights map[topology.NodeID]map[topology.NodeID]int32
	// salt perturbs the flow hash so different runs explore different
	// hash-to-path assignments.
	salt uint64
}

// nextHop is one precomputed equal-cost candidate: the neighbor switch and
// the local egress port toward it.
type nextHop struct {
	sw   topology.NodeID
	port topology.PortID
}

// NewECMPRouter precomputes shortest-path distances between all switches
// and the per-(switch, edge) equal-cost next-hop sets.
func NewECMPRouter(topo *topology.Topology, salt uint64) *ECMPRouter {
	n := len(topo.Nodes)
	r := &ECMPRouter{
		topo:     topo,
		hostEdge: make([]topology.NodeID, n),
		hostPort: make([]topology.PortID, n),
		weights:  make(map[topology.NodeID]map[topology.NodeID]int32),
		salt:     salt,
	}
	for i := range r.hostEdge {
		r.hostEdge[i] = -1
	}
	for _, h := range topo.Hosts() {
		if sw, ok := topo.EdgeSwitchOf(h); ok {
			r.hostEdge[h] = sw
			if p, ok := topo.PortTo(sw, h); ok {
				r.hostPort[h] = p
			}
		}
	}
	// BFS from every switch over the switch-only subgraph.
	dist := make(map[topology.NodeID]map[topology.NodeID]int32)
	for _, src := range topo.Switches() {
		d := make(map[topology.NodeID]int32, topo.NumSwitches())
		d[src] = 0
		queue := []topology.NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, p := range topo.Node(u).Ports {
				v := p.Peer
				if !topo.IsSwitch(v) {
					continue
				}
				if _, seen := d[v]; !seen {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		dist[src] = d
	}
	// Materialize the candidate sets. Ports are enumerated in ascending
	// peer order below, matching the sorted order the map-based
	// implementation produced.
	r.cands = make([][]nextHop, n*n)
	for _, sw := range topo.Switches() {
		for _, edge := range topo.Switches() {
			if sw == edge {
				continue
			}
			dcur, ok := dist[sw][edge]
			if !ok {
				continue
			}
			var hops []nextHop
			for i, p := range topo.Node(sw).Ports {
				v := p.Peer
				if !topo.IsSwitch(v) {
					continue
				}
				if d, ok := dist[v][edge]; ok && d == dcur-1 {
					hops = append(hops, nextHop{sw: v, port: topology.PortID(i)})
				}
			}
			sort.Slice(hops, func(i, j int) bool { return hops[i].sw < hops[j].sw })
			r.cands[int(sw)*n+int(edge)] = hops
		}
	}
	return r
}

// SetWeight overrides the ECMP weight used at sw when the candidate next
// hop is via. Weight must be >= 1. Weights apply to every destination the
// next hop is on a shortest path toward.
func (r *ECMPRouter) SetWeight(sw, via topology.NodeID, w int32) {
	if w < 1 {
		panic(fmt.Sprintf("netsim: ECMP weight must be >= 1, got %d", w))
	}
	m := r.weights[sw]
	if m == nil {
		m = make(map[topology.NodeID]int32)
		r.weights[sw] = m
	}
	m[via] = w
}

// ResetWeights restores even splitting at sw.
func (r *ECMPRouter) ResetWeights(sw topology.NodeID) {
	delete(r.weights, sw)
}

// WeightsAt returns a copy of the weight overrides at sw (nil when the
// split is even). Fault injections snapshot this before skewing so a
// revert can restore exactly what it displaced, even under overlapping
// schedule windows.
func (r *ECMPRouter) WeightsAt(sw topology.NodeID) map[topology.NodeID]int32 {
	m := r.weights[sw]
	if m == nil {
		return nil
	}
	out := make(map[topology.NodeID]int32, len(m))
	//mars:mapiter-ok plain copy; no ordered output derived from iteration
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RestoreWeights replaces sw's overrides with a snapshot from WeightsAt
// (nil restores even splitting, like ResetWeights).
func (r *ECMPRouter) RestoreWeights(sw topology.NodeID, saved map[topology.NodeID]int32) {
	if len(saved) == 0 {
		delete(r.weights, sw)
		return
	}
	r.weights[sw] = saved
}

// NextHops returns the equal-cost next-hop switches from sw toward dst
// host, in ascending ID order (empty if sw is the destination edge switch).
func (r *ECMPRouter) NextHops(sw topology.NodeID, dst topology.NodeID) []topology.NodeID {
	if int(dst) >= len(r.hostEdge) {
		return nil
	}
	edge := r.hostEdge[dst]
	if edge < 0 || sw == edge {
		return nil
	}
	cands := r.cands[int(sw)*len(r.hostEdge)+int(edge)]
	if len(cands) == 0 {
		return nil
	}
	hops := make([]topology.NodeID, len(cands))
	for i, c := range cands {
		hops[i] = c.sw
	}
	return hops
}

// weightOf returns the configured ECMP weight at sw for next hop via
// (default 1).
func (r *ECMPRouter) weightOf(sw, via topology.NodeID) int32 {
	if m := r.weights[sw]; m != nil {
		if v, ok := m[via]; ok {
			return v
		}
	}
	return 1
}

// Route implements Router. It runs per packet per hop and performs no
// allocation: candidate sets and host ports are precomputed.
func (r *ECMPRouter) Route(sw topology.NodeID, pkt *Packet) (topology.PortID, bool) {
	if int(pkt.Dst) >= len(r.hostEdge) {
		return 0, false
	}
	edge := r.hostEdge[pkt.Dst]
	if edge < 0 {
		return 0, false
	}
	if sw == edge {
		return r.hostPort[pkt.Dst], true
	}
	cands := r.cands[int(sw)*len(r.hostEdge)+int(edge)]
	if len(cands) == 0 {
		return 0, false
	}
	next := cands[0]
	if len(cands) > 1 {
		var total int64
		for _, c := range cands {
			total += int64(r.weightOf(sw, c.sw))
		}
		h := splitmix64(uint64(pkt.Flow) ^ r.salt ^ uint64(sw)*0x9E3779B97F4A7C15)
		pick := int64(h % uint64(total))
		for _, c := range cands {
			pick -= int64(r.weightOf(sw, c.sw))
			if pick < 0 {
				next = c
				break
			}
		}
	}
	return next.port, true
}

// splitmix64 is a fast, well-mixed 64-bit hash used for flow placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
