package netsim

import (
	"fmt"
	"math/rand"
	"runtime"

	"mars/internal/topology"
)

// Sharded runs one simulation split across N shard simulators under a
// conservative-lookahead barrier protocol (see DESIGN.md §"Sharded
// engine"). The topology is partitioned into units (topology.Partition);
// units are assigned round-robin to shards, and each shard owns its
// units' switch state, event heap, RNG streams, and packet pool.
//
// Correctness rests on three facts:
//
//  1. Ownership is total: dispatching an event only touches state of the
//     event's owning unit (plus per-shard counters that merge
//     commutatively), so shards never race on simulated state.
//  2. The only cross-unit event kind is evPropagate, scheduled exactly
//     one Cfg.PropDelay ahead. Running all shards over a window no wider
//     than PropDelay and exchanging outboxes at the barrier therefore
//     never delivers an event into a window that has already executed.
//  3. Events are globally ordered by (time, generating unit, per-unit
//     seq) — all three derived from the partition, not the shard count —
//     and each shard's heap pops its local events in exactly that order.
//     Mailbox merge order is irrelevant: the heap re-establishes the
//     total order on insert.
//
// Together these make the simulated trace — stats, packet IDs, RNG draws,
// hook invocations per switch — invariant under the shard count, which
// the shards=1≡N digest tests pin.
//
// Mid-run mutation must go through OnNode (or target state owned by a
// single unit); Stop and cross-unit toggles like SetLinkUp on a
// cross-shard link are not supported while Run is executing.
type Sharded struct {
	Topo *topology.Topology
	Part *topology.Partition
	Cfg  Config

	shards  []*Simulator
	shardOf []int32 // unit -> shard
	rounds  int64
	events  []int64 // per-shard dispatched-event counts
	horizon Time    // end of the last completed Run window

	serial   bool
	progress ShardProgress
	every    int64

	// Worker pool (parallel mode): one goroutine per shard, fed window
	// ends over cmd and reporting event counts over res. Started lazily on
	// the first parallel Run; Close shuts it down.
	cmd     []chan Time
	res     chan shardDone
	started bool
}

type shardDone struct {
	shard int
	n     int64
}

// ShardProgress observes barrier rounds: now is the window end just
// completed and events the cumulative per-shard dispatch counts. Called
// from the coordinator between rounds, so implementations need no locking;
// progress output must never feed back into simulation state.
type ShardProgress func(now Time, events []int64)

// ShardedConfig tunes the engine around the physical Config.
type ShardedConfig struct {
	// Shards is the shard count, clamped to [1, partition units]. The
	// count changes wall-clock behavior only — never simulated output.
	Shards int
	// Serial forces barrier rounds to run shard-by-shard on the calling
	// goroutine (no worker pool). Used by the alloc guard, and the
	// automatic choice when only one shard exists or GOMAXPROCS is 1.
	Serial bool
	// Progress, if non-nil, is invoked every ProgressEvery rounds.
	Progress ShardProgress
	// ProgressEvery defaults to 4096 rounds.
	ProgressEvery int
}

// NewSharded builds the sharded engine. Every shard gets its own
// Simulator with hooks from hooksFor (nil means no pipeline anywhere);
// router is shared and must be read-only during Run (ECMPRouter is).
// Cross-shard safety requires a positive propagation delay — it is the
// conservative lookahead.
func NewSharded(topo *topology.Topology, part *topology.Partition, router Router, hooksFor func(shard int) Hooks, cfg Config, seed int64, scfg ShardedConfig) *Sharded {
	if cfg.PropDelay <= 0 {
		panic("netsim: sharded execution requires PropDelay > 0 (it is the conservative lookahead)")
	}
	if err := part.Validate(topo); err != nil {
		panic(err)
	}
	n := scfg.Shards
	if n < 1 {
		n = 1
	}
	if n > part.NumUnits {
		n = part.NumUnits
	}
	sh := &Sharded{
		Topo:     topo,
		Part:     part,
		Cfg:      cfg,
		shards:   make([]*Simulator, n),
		shardOf:  make([]int32, part.NumUnits),
		events:   make([]int64, n),
		serial:   scfg.Serial || n == 1 || runtime.GOMAXPROCS(0) == 1,
		progress: scfg.Progress,
		every:    int64(scfg.ProgressEvery),
	}
	if sh.every <= 0 {
		sh.every = 4096
	}
	for u := range sh.shardOf {
		sh.shardOf[u] = int32(u % n)
	}
	for i := 0; i < n; i++ {
		var hooks Hooks
		if hooksFor != nil {
			hooks = hooksFor(i)
		}
		s := newShardSimulator(topo, part, router, hooks, cfg, i, sh.shardOf)
		// Per-unit RNG streams for this shard's owned units. Unit 0 keeps
		// the raw seed so a single-unit partition reproduces the classic
		// simulator's stream exactly.
		for u := i; u < part.NumUnits; u += n {
			s.shard.rngs[u] = rand.New(rand.NewSource(unitSeed(seed, u)))
		}
		sh.shards[i] = s
	}
	return sh
}

// unitSeed derives unit u's RNG seed; unit 0 gets the base seed verbatim.
func unitSeed(seed int64, u int) int64 {
	const golden = uint64(0x9E3779B97F4A7C15)
	return seed ^ int64(uint64(u)*golden)
}

// newShardSimulator builds one shard's Simulator: full per-link stats
// arrays (merged by summation), but port runtime only for owned switches —
// the dominant per-switch memory — so shard memory scales with its share
// of the fabric.
func newShardSimulator(topo *topology.Topology, part *topology.Partition, router Router, hooks Hooks, cfg Config, id int, shardOf []int32) *Simulator {
	if hooks == nil {
		hooks = NopHooks{}
	}
	s := &Simulator{
		Topo:   topo,
		Router: router,
		Cfg:    cfg,
		hooks:  hooks,
	}
	s.Stats.LinkBytes = make([]int64, len(topo.Links))
	s.Stats.LinkDirBytes = make([][2]int64, len(topo.Links))
	s.switches = make([]switchRuntime, len(topo.Nodes))
	for i := range topo.Nodes {
		if topo.Nodes[i].Kind == topology.KindSwitch && shardOf[part.UnitOf[i]] == int32(id) {
			s.switches[i].ports = make([]portRuntime, len(topo.Nodes[i].Ports))
		}
	}
	s.shard = &shardCtx{
		id:       int32(id),
		unitOf:   part.UnitOf,
		shardOf:  shardOf,
		unitSeq:  make([]uint64, part.NumUnits),
		unitPkt:  make([]uint64, part.NumUnits),
		rngs:     make([]*rand.Rand, part.NumUnits),
		numUnits: uint64(part.NumUnits),
		outbox:   make([][]event, numShards(shardOf)),
	}
	return s
}

func numShards(shardOf []int32) int {
	max := int32(0)
	for _, s := range shardOf {
		if s > max {
			max = s
		}
	}
	return int(max) + 1
}

// NumShards returns the effective shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard i's simulator (tests and memory accounting).
func (sh *Sharded) Shard(i int) *Simulator { return sh.shards[i] }

// ShardFor returns the shard that owns node n's state; register flushers
// and other per-switch control actions route through it.
func (sh *Sharded) ShardFor(n topology.NodeID) int {
	return int(sh.shardOf[sh.Part.UnitOf[n]])
}

// OnNode runs fn against the simulator shard that owns n, with the
// generation context (unit stamp, RNG stream) set to n's unit. All
// pre-run setup — installing workloads, scheduling fault callbacks,
// sending packets — must go through here so scheduled events land on the
// owning shard with shard-count-invariant stamps. It must not be called
// while Run is executing.
func (sh *Sharded) OnNode(n topology.NodeID, fn func(*Simulator)) {
	u := sh.Part.UnitOf[n]
	s := sh.shards[sh.shardOf[u]]
	s.shard.curUnit = u
	s.rng = s.shard.rngs[u]
	fn(s)
}

// Rounds returns the number of barrier rounds executed so far. The round
// sequence is determined by pending event times alone, so it too is
// invariant under the shard count.
func (sh *Sharded) Rounds() int64 { return sh.rounds }

// Events returns the cumulative per-shard dispatched-event counts.
func (sh *Sharded) Events() []int64 {
	out := make([]int64, len(sh.events))
	copy(out, sh.events)
	return out
}

// MergedStats sums the per-shard stats into one Stats. Every counter is
// incremented by exactly one shard per underlying occurrence, so the sums
// equal the sequential run's counters.
func (sh *Sharded) MergedStats() Stats {
	var out Stats
	out.LinkBytes = make([]int64, len(sh.Topo.Links))
	out.LinkDirBytes = make([][2]int64, len(sh.Topo.Links))
	for _, s := range sh.shards {
		st := &s.Stats
		for i, b := range st.LinkBytes {
			out.LinkBytes[i] += b
		}
		for i, d := range st.LinkDirBytes {
			out.LinkDirBytes[i][0] += d[0]
			out.LinkDirBytes[i][1] += d[1]
		}
		out.Sent += st.Sent
		out.Delivered += st.Delivered
		out.Dropped += st.Dropped
		for i, n := range st.DropsByReason {
			out.DropsByReason[i] += n
		}
		out.TotalLatency += st.TotalLatency
	}
	return out
}

// Run advances the whole simulation to `until` (inclusive, matching the
// sequential Simulator.Run) and returns it. Rounds are windows of the
// conservative lookahead Δ = Cfg.PropDelay aligned to the Δ grid: every
// shard drains its local events below the window end, the coordinator
// exchanges outbox events at the barrier, and empty stretches of the
// timeline are skipped by re-aligning to the earliest pending event.
func (sh *Sharded) Run(until Time) Time {
	delta := sh.Cfg.PropDelay
	sh.exchange() // events parked in outboxes by a previous Run's tail
	for {
		next, ok := sh.minPending()
		if !ok || next > until {
			break
		}
		end := next - next%delta + delta
		if end > until+1 {
			end = until + 1
		}
		sh.runRound(end)
		sh.exchange()
		sh.rounds++
		if sh.progress != nil && sh.rounds%sh.every == 0 {
			sh.progress(end, sh.events)
		}
	}
	for _, s := range sh.shards {
		if s.now < until {
			s.now = until
		}
	}
	sh.horizon = until
	return until
}

// minPending returns the earliest event time across all shard heaps.
// Outboxes are empty here (exchange runs before each scan), so the heaps
// hold the entire pending set.
func (sh *Sharded) minPending() (Time, bool) {
	var (
		min Time
		any bool
	)
	for _, s := range sh.shards {
		if t, ok := s.agenda.peekTime(); ok && (!any || t < min) {
			min, any = t, true
		}
	}
	return min, any
}

// runRound executes one barrier window on every shard.
func (sh *Sharded) runRound(end Time) {
	if sh.serial {
		for i, s := range sh.shards {
			sh.events[i] += s.RunShardWindow(end)
		}
		return
	}
	if !sh.started {
		sh.start()
	}
	for i := range sh.shards {
		sh.cmd[i] <- end
	}
	for range sh.shards {
		d := <-sh.res
		sh.events[d.shard] += d.n
	}
}

// start spins up the persistent worker pool. Workers only ever run
// between a cmd send and the matching res receive, so the coordinator and
// a worker never touch a shard concurrently.
func (sh *Sharded) start() {
	sh.cmd = make([]chan Time, len(sh.shards))
	sh.res = make(chan shardDone, len(sh.shards))
	for i := range sh.shards {
		sh.cmd[i] = make(chan Time)
		//mars:sync one worker per shard, lock-stepped by the coordinator: a window runs only between cmd send and res receive, shards touch disjoint unit state, and the digest tests diff shards=1 against shards=N byte for byte
		go func(i int) {
			for end := range sh.cmd[i] {
				sh.res <- shardDone{shard: i, n: sh.shards[i].RunShardWindow(end)}
			}
		}(i)
	}
	sh.started = true
}

// Close shuts down the worker pool (no-op in serial mode or before the
// first parallel round). The engine remains usable afterwards; the next
// parallel Run restarts workers.
func (sh *Sharded) Close() {
	if !sh.started {
		return
	}
	for _, c := range sh.cmd {
		close(c)
	}
	sh.cmd, sh.res, sh.started = nil, nil, false
}

// exchange drains every shard's outboxes into the owning shards' heaps.
// Events keep their generation stamps, so insertion order cannot affect
// the heap's (time, unit, seq) total order.
func (sh *Sharded) exchange() {
	for _, src := range sh.shards {
		for d, box := range src.shard.outbox {
			if len(box) == 0 {
				continue
			}
			dst := sh.shards[d]
			for i := range box {
				dst.agenda.pushStamped(&box[i])
			}
			clear(box) // drop packet references from the source buffer
			src.shard.outbox[d] = box[:0]
		}
	}
}

// MemEstimate is a runtime.MemStats-free accounting of one shard's
// dominant heap consumers, computed by walking the structures themselves.
// Est* fields measure current state; Peak* use high-water marks (the
// agenda's peak length, and the packet pool's total-ever-allocated count —
// pooled packets are never freed, so that IS the live-packet peak).
// PacketsLive can go negative for one shard of a sharded run: a packet
// acquired on its source shard is released into the pool of the shard
// that delivered it, so only the fleet-wide sum balances.
type MemEstimate struct {
	Shard         int
	OwnedSwitches int
	AgendaLen     int
	AgendaPeak    int
	PacketsLive   int
	PacketsPooled int
	EstBytes      int64
	PeakBytes     int64
}

// Mem computes the estimate for one simulator (shard or classic). Cold
// path: it walks the packet pool and every owned port queue.
func (s *Simulator) Mem() MemEstimate {
	const (
		eventBytes   = 64 // sizeof(event), padded
		packetBytes  = 120
		portBytes    = 80
		runtimeBytes = 48
	)
	m := MemEstimate{
		AgendaLen:     len(s.agenda.h),
		AgendaPeak:    s.agenda.peak,
		PacketsPooled: len(s.free),
		PacketsLive:   int(s.pktAlloc) - len(s.free),
	}
	if s.shard != nil {
		m.Shard = int(s.shard.id)
	}
	var pktSlices int64
	for _, p := range s.free {
		pktSlices += int64(cap(p.TruePath))*4 + int64(cap(p.HopQueueDepths))*4 + int64(cap(p.HopArrivals))*8
	}
	// Live packets' slice capacities are unknown; assume the pool average.
	perPkt := int64(packetBytes)
	if len(s.free) > 0 {
		perPkt += pktSlices / int64(len(s.free))
	}
	var queueBytes, portCount int64
	for i := range s.switches {
		ports := s.switches[i].ports
		if ports == nil {
			continue
		}
		m.OwnedSwitches++
		portCount += int64(len(ports))
		for j := range ports {
			queueBytes += int64(cap(ports[j].queue)) * 8
		}
	}
	statsBytes := int64(len(s.Stats.LinkBytes))*8 + int64(len(s.Stats.LinkDirBytes))*16
	fixed := int64(len(s.switches))*runtimeBytes + portCount*portBytes + queueBytes + statsBytes
	m.EstBytes = fixed + int64(cap(s.agenda.h))*eventBytes + s.pktAlloc*perPkt
	m.PeakBytes = fixed + int64(m.AgendaPeak)*eventBytes + s.pktAlloc*perPkt
	return m
}

// Mem returns per-shard memory estimates.
func (sh *Sharded) Mem() []MemEstimate {
	out := make([]MemEstimate, len(sh.shards))
	for i, s := range sh.shards {
		out[i] = s.Mem()
		out[i].Shard = i
	}
	return out
}

// String summarizes one estimate (human-readable, deterministic).
func (m MemEstimate) String() string {
	return fmt.Sprintf("shard %d: switches=%d agenda=%d/%d(peak) packets=%d live/%d pooled est=%dKB peak=%dKB",
		m.Shard, m.OwnedSwitches, m.AgendaLen, m.AgendaPeak, m.PacketsLive, m.PacketsPooled,
		m.EstBytes/1024, m.PeakBytes/1024)
}
