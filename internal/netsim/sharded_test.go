package netsim

import (
	"reflect"
	"runtime"
	"testing"

	"mars/internal/topology"
)

// traceRec is one observed packet event at one node.
type traceRec struct {
	at   Time
	flow FlowKey
	id   uint64
	sz   int32
}

// traceHooks records per-node event sequences. Every node's events are
// dispatched by exactly one engine (classic) or one owning shard, so the
// per-node slices are append-only from a single goroutine.
type traceHooks struct {
	NopHooks
	arrivals  [][]traceRec
	delivered [][]traceRec
	drops     [][]traceRec
}

func newTraceHooks(n int) *traceHooks {
	return &traceHooks{
		arrivals:  make([][]traceRec, n),
		delivered: make([][]traceRec, n),
		drops:     make([][]traceRec, n),
	}
}

func (h *traceHooks) OnSwitchArrival(s *Simulator, sw topology.NodeID, in topology.PortID, pkt *Packet) {
	h.arrivals[sw] = append(h.arrivals[sw], traceRec{s.Now(), pkt.Flow, pkt.ID, pkt.Size})
}

func (h *traceHooks) OnDeliver(s *Simulator, host topology.NodeID, pkt *Packet) {
	h.delivered[host] = append(h.delivered[host], traceRec{s.Now(), pkt.Flow, pkt.ID, pkt.Size})
}

func (h *traceHooks) OnDrop(s *Simulator, sw topology.NodeID, port topology.PortID, pkt *Packet, r DropReason) {
	h.drops[sw] = append(h.drops[sw], traceRec{s.Now(), pkt.Flow, pkt.ID, pkt.Size})
}

// mergeTraces folds per-shard traces into one per-node view. A node's
// events all run on its owning shard, so exactly one input contributes to
// each node slot and concatenation preserves its order.
func mergeTraces(hs []*traceHooks) *traceHooks {
	out := newTraceHooks(len(hs[0].arrivals))
	for _, h := range hs {
		for i := range h.arrivals {
			out.arrivals[i] = append(out.arrivals[i], h.arrivals[i]...)
			out.delivered[i] = append(out.delivered[i], h.delivered[i]...)
			out.drops[i] = append(out.drops[i], h.drops[i]...)
		}
	}
	return out
}

func clearIDs(h *traceHooks) {
	for _, seqs := range [][][]traceRec{h.arrivals, h.delivered, h.drops} {
		for i := range seqs {
			for j := range seqs[i] {
				seqs[i][j].id = 0
			}
		}
	}
}

// installEmitters schedules nflows recurring senders between cross-pod
// host pairs through `on` (OnNode for sharded engines, direct call for
// the classic one). When useRNG is set, sizes and gaps draw from the
// node-context RNG stream; otherwise the flow is CBR with fixed size.
func installEmitters(on func(topology.NodeID, func(*Simulator)), ft *topology.FatTree, nflows int, useRNG bool, stop Time) {
	hosts := ft.HostIDs
	perPod := len(hosts) / ft.K
	for i := 0; i < nflows; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i%len(hosts)+perPod*(1+i%(ft.K-1)))%len(hosts)]
		key := FlowKey(i + 1)
		start := Time(i%37) * 100 * Microsecond
		mean := float64(5 * Millisecond)
		on(src, func(s *Simulator) {
			var emit func()
			emit = func() {
				if s.Now() >= stop {
					return
				}
				size := int32(700)
				gap := Time(mean)
				if useRNG {
					size = int32(100 + s.RNG().Intn(1300))
					gap = Time(s.RNG().ExpFloat64() * mean)
				}
				s.Send(s.Now(), src, dst, key, size)
				s.After(gap+1, emit)
			}
			s.At(start, emit)
		})
	}
}

type engineResult struct {
	stats  Stats
	trace  *traceHooks
	rounds int64
	events int64
}

func runClassic(t *testing.T, ft *topology.FatTree, seed int64, nflows int, useRNG, withFault bool, until Time) engineResult {
	t.Helper()
	tr := newTraceHooks(len(ft.Nodes))
	sim := New(ft.Topology, NewECMPRouter(ft.Topology, 1), tr, DefaultConfig(), seed)
	if withFault {
		sim.SetPortDropProb(ft.AggIDs[0], 0, 0.2)
	}
	installEmitters(func(n topology.NodeID, fn func(*Simulator)) { fn(sim) }, ft, nflows, useRNG, until)
	sim.Run(until)
	return engineResult{stats: sim.Stats, trace: tr}
}

func runSharded(t *testing.T, ft *topology.FatTree, part *topology.Partition, seed int64, scfg ShardedConfig, nflows int, useRNG, withFault bool, until Time) engineResult {
	t.Helper()
	traces := make([]*traceHooks, 0, 16)
	hooksFor := func(int) Hooks {
		h := newTraceHooks(len(ft.Nodes))
		traces = append(traces, h)
		return h
	}
	sh := NewSharded(ft.Topology, part, NewECMPRouter(ft.Topology, 1), hooksFor, DefaultConfig(), seed, scfg)
	defer sh.Close()
	if withFault {
		sh.OnNode(ft.AggIDs[0], func(s *Simulator) { s.SetPortDropProb(ft.AggIDs[0], 0, 0.2) })
	}
	installEmitters(sh.OnNode, ft, nflows, useRNG, until)
	sh.Run(until)
	var events int64
	for _, n := range sh.Events() {
		events += n
	}
	return engineResult{stats: sh.MergedStats(), trace: mergeTraces(traces), rounds: sh.Rounds(), events: events}
}

func requireEqualTraces(t *testing.T, label string, want, got engineResult) {
	t.Helper()
	if !reflect.DeepEqual(want.stats, got.stats) {
		t.Errorf("%s: stats diverge:\nwant %+v\ngot  %+v", label, want.stats, got.stats)
	}
	for i := range want.trace.arrivals {
		if !reflect.DeepEqual(want.trace.arrivals[i], got.trace.arrivals[i]) {
			t.Fatalf("%s: node %d arrival sequence diverges (%d vs %d events)",
				label, i, len(want.trace.arrivals[i]), len(got.trace.arrivals[i]))
		}
		if !reflect.DeepEqual(want.trace.delivered[i], got.trace.delivered[i]) {
			t.Fatalf("%s: node %d delivery sequence diverges", label, i)
		}
		if !reflect.DeepEqual(want.trace.drops[i], got.trace.drops[i]) {
			t.Fatalf("%s: node %d drop sequence diverges", label, i)
		}
	}
}

// TestShardedMatchesClassicSingleUnit pins the strongest equivalence: with
// a single-unit partition the sharded engine must reproduce the classic
// simulator event for event — same RNG draws, same packet IDs, same
// per-node sequences — across arities and seeds, RNG-heavy workload and a
// random-loss fault included.
func TestShardedMatchesClassicSingleUnit(t *testing.T) {
	until := 300 * Millisecond
	for _, k := range []int{4, 6} {
		ft, err := topology.NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			classic := runClassic(t, ft, seed, 24, true, true, until)
			sharded := runSharded(t, ft, topology.SingleUnit(ft.Topology), seed,
				ShardedConfig{Shards: 1}, 24, true, true, until)
			if classic.stats.Sent == 0 || classic.stats.Delivered == 0 {
				t.Fatalf("k=%d seed=%d: degenerate workload (sent=%d delivered=%d)",
					k, seed, classic.stats.Sent, classic.stats.Delivered)
			}
			requireEqualTraces(t, "single-unit", classic, sharded)
		}
	}
}

// TestShardedMatchesClassicPodPartition is the order property against the
// pod partition: with an RNG-free workload (per-unit streams untouched)
// the per-node event sequences of the sharded run must be identical to
// the classic global-heap run — every node sees every event in the same
// order. Packet IDs are stride-encoded per unit in sharded mode, so they
// are normalized out; times, flows, sizes, and order must match exactly.
func TestShardedMatchesClassicPodPartition(t *testing.T) {
	until := 300 * Millisecond
	for _, k := range []int{4, 6} {
		ft, err := topology.NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			classic := runClassic(t, ft, seed, 24, false, false, until)
			sharded := runSharded(t, ft, ft.PodPartition(), seed,
				ShardedConfig{Shards: 4}, 24, false, false, until)
			clearIDs(classic.trace)
			clearIDs(sharded.trace)
			requireEqualTraces(t, "pod-partition", classic, sharded)
		}
	}
}

// TestShardedShardCountInvariance is the shards=1≡N digest: the same
// seeded scenario — RNG workload plus a random-loss fault — must produce
// identical stats, per-node traces, and barrier-round counts at every
// shard count, in both serial and parallel execution. CI runs this under
// -race, which exercises the coordinator/worker handoff.
func TestShardedShardCountInvariance(t *testing.T) {
	// Force the worker-pool path even on single-CPU machines (the engine
	// would otherwise auto-select serial rounds and leave the goroutine
	// handoff untested).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ft, err := topology.NewFatTree(6) // 9 units: 6 pods + 3 core stripes
	if err != nil {
		t.Fatal(err)
	}
	part := ft.PodPartition()
	until := 300 * Millisecond
	const seed = 42
	run := func(scfg ShardedConfig) engineResult {
		return runSharded(t, ft, part, seed, scfg, 24, true, true, until)
	}
	base := run(ShardedConfig{Shards: 1})
	if base.stats.Sent == 0 || base.stats.Dropped == 0 {
		t.Fatalf("degenerate workload: %+v", base.stats)
	}
	for _, n := range []int{2, 4, 8} {
		got := run(ShardedConfig{Shards: n})
		requireEqualTraces(t, "shards", base, got)
		if got.rounds != base.rounds {
			t.Errorf("shards=%d: %d barrier rounds, shards=1 had %d", n, got.rounds, base.rounds)
		}
		if got.events != base.events {
			t.Errorf("shards=%d: %d events dispatched, shards=1 had %d", n, got.events, base.events)
		}
		serial := run(ShardedConfig{Shards: n, Serial: true})
		requireEqualTraces(t, "serial", base, serial)
	}
}

// TestShardedMemEstimates sanity-checks the MemStats-free accounting: a
// run must report owned switches partitioning the fabric, a nonzero
// agenda peak, and live+pooled packets consistent with the pool counter.
func TestShardedMemEstimates(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	res := runShardedForMem(t, ft, 4)
	totalSwitches, totalLive := 0, 0
	for _, m := range res {
		totalSwitches += m.OwnedSwitches
		totalLive += m.PacketsLive
		if m.AgendaPeak <= 0 || m.EstBytes <= 0 || m.PeakBytes < m.EstBytes-int64(len(ft.Nodes))*64 {
			t.Errorf("shard %d: implausible estimate %+v", m.Shard, m)
		}
	}
	// Packets released on a different shard than they were acquired leave
	// one shard's live count negative and another's positive; after a full
	// drain the fleet-wide sum must balance to zero.
	if totalLive != 0 {
		t.Errorf("%d packets live across shards after drain, want 0", totalLive)
	}
	if totalSwitches != ft.NumSwitches() {
		t.Errorf("owned switches sum to %d, want %d", totalSwitches, ft.NumSwitches())
	}
}

func runShardedForMem(t *testing.T, ft *topology.FatTree, shards int) []MemEstimate {
	t.Helper()
	sh := NewSharded(ft.Topology, ft.PodPartition(), NewECMPRouter(ft.Topology, 1), nil, DefaultConfig(), 7, ShardedConfig{Shards: shards})
	defer sh.Close()
	installEmitters(sh.OnNode, ft, 16, true, 100*Millisecond)
	sh.Run(400 * Millisecond) // generous horizon: all in-flight packets drain
	return sh.Mem()
}

// TestShardedStepAllocs pins the sharded hot path at zero allocations per
// end-to-end packet in steady state, including the cross-shard outbox and
// mailbox exchange: the run uses two serial shards, so every packet
// crosses the barrier machinery. Serial mode keeps AllocsPerRun honest
// (no goroutine scheduling noise); the parallel coordinator adds no
// per-event work beyond channel sends.
func TestShardedStepAllocs(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	sh := NewSharded(ft.Topology, ft.PodPartition(), NewECMPRouter(ft.Topology, 1), nil, cfg, 1, ShardedConfig{Shards: 2, Serial: true})
	defer sh.Close()
	hosts := ft.HostIDs
	perPod := len(hosts) / ft.K
	var (
		i       int
		horizon Time
	)
	step := func(s *Simulator) {
		src := hosts[i%len(hosts)]
		dst := hosts[(i%len(hosts)+perPod*(1+i%(ft.K-1)))%len(hosts)]
		s.Send(s.Now(), src, dst, FlowKey(i), 700)
	}
	send := func() {
		sh.OnNode(hosts[i%len(hosts)], step)
		horizon += 10 * Millisecond
		sh.Run(horizon)
		i++
	}
	// Warm the agendas, outboxes, packet pools, and port queues on every
	// path the sends below traverse.
	for n := 0; n < 256; n++ {
		send()
	}
	avg := testing.AllocsPerRun(200, send)
	if avg != 0 {
		t.Errorf("sharded end-to-end packet allocates %.2f objects/op, want 0", avg)
	}
}
