package netsim

import (
	"fmt"
	"math/rand"

	"mars/internal/topology"
)

// Action is a Hooks verdict on a packet about to be enqueued.
type Action uint8

const (
	// ActionForward lets the packet proceed.
	ActionForward Action = iota
	// ActionDrop discards the packet (counted as DropByProgram).
	ActionDrop
)

// Hooks observes and influences packets as they move through switches.
// This is the P4-pipeline attachment point: MARS's data plane and each
// baseline system implement Hooks. All methods run synchronously inside
// the event loop; implementations must not retain pkt past the call unless
// they copy what they need (the MARS data plane copies into its register
// tables, as a real switch would).
type Hooks interface {
	// OnSwitchArrival fires when a packet has fully arrived at a switch,
	// before the routing decision.
	OnSwitchArrival(s *Simulator, sw topology.NodeID, inPort topology.PortID, pkt *Packet)
	// OnForward fires after routing; qlen is the egress queue length before
	// this packet is enqueued. Returning ActionDrop discards the packet.
	OnForward(s *Simulator, sw topology.NodeID, inPort, outPort topology.PortID, pkt *Packet, qlen int) Action
	// OnDeliver fires when a packet reaches its destination host.
	OnDeliver(s *Simulator, host topology.NodeID, pkt *Packet)
	// OnDrop fires when the simulator discards a packet at sw.
	OnDrop(s *Simulator, sw topology.NodeID, port topology.PortID, pkt *Packet, reason DropReason)
}

// NopHooks is an embeddable no-op Hooks implementation.
type NopHooks struct{}

// OnSwitchArrival implements Hooks.
func (NopHooks) OnSwitchArrival(*Simulator, topology.NodeID, topology.PortID, *Packet) {}

// OnForward implements Hooks.
func (NopHooks) OnForward(*Simulator, topology.NodeID, topology.PortID, topology.PortID, *Packet, int) Action {
	return ActionForward
}

// OnDeliver implements Hooks.
func (NopHooks) OnDeliver(*Simulator, topology.NodeID, *Packet) {}

// OnDrop implements Hooks.
func (NopHooks) OnDrop(*Simulator, topology.NodeID, topology.PortID, *Packet, DropReason) {}

var _ Hooks = NopHooks{}

// Config sets the physical parameters of the simulated network.
type Config struct {
	// LinkBandwidthBps is the serialization rate of every link in bits per
	// second. The paper's testbed uses 10 Gbps ports; the Mininet/BMv2
	// environment is far slower, and the defaults below match its scale so
	// queues actually build under the paper's fault loads.
	LinkBandwidthBps int64
	// HostLinkBandwidthBps overrides the rate of host-facing links
	// (0 = same as LinkBandwidthBps). Access links are typically faster
	// than the software-switch fabric, and a slower setting makes host
	// fan-in, not the fabric, the bottleneck.
	HostLinkBandwidthBps int64
	// PropDelay is the per-link propagation delay.
	PropDelay Time
	// SwitchProcDelay is the base per-packet pipeline latency at a switch.
	SwitchProcDelay Time
	// QueueCapacity is the per-port egress queue limit in packets; a full
	// queue tail-drops.
	QueueCapacity int
}

// DefaultConfig returns parameters sized like the paper's software-switch
// environment: modest bandwidth so that >1000 pps bursts visibly build
// queues, 10 us links, and 64-packet output queues.
func DefaultConfig() Config {
	return Config{
		LinkBandwidthBps: 20_000_000, // 20 Mbps software switch scale
		PropDelay:        10 * Microsecond,
		SwitchProcDelay:  5 * Microsecond,
		QueueCapacity:    64,
	}
}

// portRuntime is the mutable state of one switch egress port.
type portRuntime struct {
	// queue[qhead:] holds the waiting packets. Dequeue advances qhead
	// instead of re-slicing so the backing array is reused; enqueue
	// compacts lazily when the tail hits capacity. This keeps the
	// steady-state enqueue path allocation-free.
	queue []*Packet
	qhead int
	busy  bool
	// nextFreeAt enforces the process-rate-decrease fault: the earliest
	// time the next transmission may start.
	nextFreeAt Time

	// Fault state:
	dropProb     float64 // random loss probability per enqueue
	blackhole    bool    // drop everything
	down         bool    // attached link is administratively/physically down
	rateLimitPPS float64 // max departures per second; 0 = unlimited
	extraLatency Time    // added to every transmission (Delay fault)

	// enqueuedBytes tracks current occupancy in bytes for observability.
	enqueuedBytes int64
}

// qlen is the number of packets waiting in the queue (excluding any
// packet currently being serialized).
func (p *portRuntime) qlen() int { return len(p.queue) - p.qhead }

func (p *portRuntime) minGap() Time {
	if p.rateLimitPPS <= 0 {
		return 0
	}
	return Time(float64(Second) / p.rateLimitPPS)
}

// switchRuntime is per-switch mutable state.
type switchRuntime struct {
	ports     []portRuntime
	procExtra Time // switch-level Delay fault
	down      bool // switch is rebooting: every arriving packet is lost
}

// Stats aggregates run-level counters.
type Stats struct {
	// LinkBytes[linkID] counts bytes serialized on each link (both
	// directions summed).
	LinkBytes []int64
	// LinkDirBytes[linkID][d] splits the count by direction: d=0 is A→B,
	// d=1 is B→A (see topology.Link). Per-direction utilization studies
	// (Fig. 2) need this — a full-duplex link saturates per direction.
	LinkDirBytes [][2]int64
	// Sent, Delivered, Dropped count packets end to end.
	Sent      int64
	Delivered int64
	Dropped   int64
	// DropsByReason indexes DropReason.
	DropsByReason [6]int64
	// TotalLatency accumulates end-to-end latency of delivered packets.
	TotalLatency Time
}

// MeanLatency returns the average end-to-end latency of delivered packets.
func (st *Stats) MeanLatency() Time {
	if st.Delivered == 0 {
		return 0
	}
	return st.TotalLatency / Time(st.Delivered)
}

// Simulator owns the event loop and all runtime network state.
type Simulator struct {
	Topo   *topology.Topology
	Router Router
	Cfg    Config
	Stats  Stats

	hooks    Hooks
	agenda   agenda
	now      Time
	rng      *rand.Rand
	switches []switchRuntime
	nextPkt  uint64
	stopped  bool
	// free is the packet pool: delivered and dropped packets return here
	// and are reissued by Send with their ground-truth slices' capacity
	// intact, so a steady-state run allocates no packets at all. Reuse is
	// LIFO and single-threaded, hence deterministic.
	free []*Packet
	// pktAlloc counts packets ever allocated (pool misses); together with
	// len(free) it gives the live-packet estimate without runtime.MemStats.
	pktAlloc int64
	// shard is non-nil when this simulator is one shard of a Sharded
	// engine (sharded.go); nil keeps the classic single-heap behavior,
	// byte-identical to the historical simulator.
	shard *shardCtx
}

// shardCtx is the per-shard state the event path needs when this
// simulator runs as one shard of a Sharded engine. Events are stamped with
// their generating unit and a per-unit sequence number, and events whose
// owning unit lives on another shard are buffered in outboxes that the
// coordinator exchanges at epoch barriers.
type shardCtx struct {
	id int32
	// unitOf maps NodeID -> partition unit (shared, read-only).
	unitOf []int32
	// shardOf maps unit -> shard (shared, read-only).
	shardOf []int32
	// curUnit is the unit whose event (or OnNode callback) is executing;
	// everything generated now is stamped with it.
	curUnit int32
	// unitSeq / unitPkt / rngs are indexed by unit; only this shard's
	// owned units are ever touched (ownership is static).
	unitSeq []uint64
	unitPkt []uint64
	rngs    []*rand.Rand
	// numUnits sizes the packet-ID stride so IDs stay globally unique.
	numUnits uint64
	// outbox[d] buffers events owned by shard d, appended in local
	// dispatch order and drained by the coordinator at the next barrier.
	outbox [][]event
}

// New creates a simulator over topo using router for forwarding decisions
// and hooks as the attached pipeline (nil means no pipeline).
func New(topo *topology.Topology, router Router, hooks Hooks, cfg Config, seed int64) *Simulator {
	if hooks == nil {
		hooks = NopHooks{}
	}
	s := &Simulator{
		Topo:   topo,
		Router: router,
		Cfg:    cfg,
		hooks:  hooks,
		rng:    rand.New(rand.NewSource(seed)),
	}
	s.Stats.LinkBytes = make([]int64, len(topo.Links))
	s.Stats.LinkDirBytes = make([][2]int64, len(topo.Links))
	s.switches = make([]switchRuntime, len(topo.Nodes))
	for i := range topo.Nodes {
		if topo.Nodes[i].Kind == topology.KindSwitch {
			s.switches[i].ports = make([]portRuntime, len(topo.Nodes[i].Ports))
		}
	}
	return s
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// RNG exposes the run's deterministic random source for workload
// generators and fault injectors that must share the seed.
func (s *Simulator) RNG() *rand.Rand { return s.rng }

// At schedules fn to run at time t (clamped to now if in the past).
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.push(&event{at: t, kind: evFunc, fn: fn})
}

// After schedules fn after a delay from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop ends the run after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the agenda empties or until time `until`
// passes (events after `until` remain queued). It returns the final time.
func (s *Simulator) Run(until Time) Time {
	for !s.stopped && !s.agenda.empty() && s.agenda.peek() <= until {
		e := s.agenda.next()
		s.now = e.at
		s.dispatch(e)
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll processes events until the agenda empties.
func (s *Simulator) RunAll() Time {
	for !s.stopped && !s.agenda.empty() {
		e := s.agenda.next()
		s.now = e.at
		s.dispatch(e)
	}
	return s.now
}

// RunShardWindow processes this shard's local events with timestamps
// strictly below end and returns how many it dispatched. It is the
// per-shard inner loop of the Sharded engine's barrier protocol
// (sharded.go): the coordinator guarantees no event below end can still
// arrive from another shard, so draining the local heap up to end is
// exactly the sequential order. Stop is not honored here — a sharded run
// is bounded by its Run(until) horizon instead.
func (s *Simulator) RunShardWindow(end Time) int64 {
	var n int64
	for {
		t, ok := s.agenda.peekTime()
		if !ok || t >= end {
			return n
		}
		e := s.agenda.next()
		s.now = e.at
		s.dispatch(e)
		n++
	}
}

// unitShift packs the generating unit into an event's ord stamp above the
// per-unit sequence counter: ord = unit<<unitShift | seq. 48 bits leave
// room for ~2.8e14 events per unit per run, orders of magnitude beyond any
// sweep, while keeping heap comparisons a single uint64 compare.
const unitShift = 48

// push stamps and routes one event. The classic simulator stamps a global
// sequence number and inserts locally (this path must stay inline-thin —
// it is on the per-packet hot path); a shard stamps (generating unit,
// per-unit seq) and diverts events owned by a foreign shard into the
// outbox for the next barrier exchange.
func (s *Simulator) push(e *event) {
	if s.shard == nil {
		s.agenda.push(e)
		return
	}
	s.pushSharded(e)
}

// pushSharded is the sharded engine's stamp-and-route half of push.
func (s *Simulator) pushSharded(e *event) {
	c := s.shard
	u := c.curUnit
	c.unitSeq[u]++
	e.ord = uint64(u)<<unitShift | c.unitSeq[u]
	if d := c.shardOf[s.ownerUnit(e)]; d != c.id {
		//mars:alloc TestShardedStepAllocs outboxes keep their capacity across barrier drains; steady state appends in place
		c.outbox[d] = append(c.outbox[d], *e)
		return
	}
	s.agenda.pushStamped(e)
}

// ownerUnit returns the partition unit whose state the event touches when
// dispatched — the unit (and therefore shard) that must execute it. Only
// evPropagate can cross units: every other packet event operates on the
// switch that generated it, and evFunc closures stay with the unit that
// scheduled them (their generating unit, recovered from the ord stamp).
func (s *Simulator) ownerUnit(e *event) int32 {
	switch e.kind {
	case evFunc:
		return int32(e.ord >> unitShift)
	case evHostArrive, evProcArrive, evEnqueue, evTxDone, evStartTx:
		return s.shard.unitOf[e.a]
	case evPropagate:
		return s.shard.unitOf[s.Topo.Node(topology.NodeID(e.a)).Ports[e.b].Peer]
	}
	return int32(e.ord >> unitShift)
}

// setUnitContext switches the shard's generation context to the event's
// owning unit before dispatch: subsequent pushes are stamped with it and
// random draws come from its stream, so per-unit streams advance in each
// unit's own dispatch order regardless of how units share shards.
func (s *Simulator) setUnitContext(e *event) {
	u := s.ownerUnit(e)
	s.shard.curUnit = u
	s.rng = s.shard.rngs[u]
}

// dispatch executes one event. Packet events resolve their port operands
// against the immutable topology at fire time, so the agenda never carries
// more than (node, port, packet).
func (s *Simulator) dispatch(e event) {
	if s.shard != nil {
		s.setUnitContext(&e)
	}
	switch e.kind {
	case evFunc:
		e.fn()
	case evHostArrive:
		src := e.pkt.Src
		hostLink := s.Topo.Node(src).Ports[0].Link
		s.Stats.LinkBytes[hostLink] += int64(e.pkt.WireSize())
		s.countDir(hostLink, src, e.pkt.WireSize())
		s.arriveAtSwitch(topology.NodeID(e.a), topology.PortID(e.b), e.pkt)
	case evProcArrive:
		s.processAtSwitch(topology.NodeID(e.a), topology.PortID(e.b), e.pkt)
	case evEnqueue:
		s.enqueue(topology.NodeID(e.a), topology.PortID(e.b), e.pkt)
	case evTxDone:
		s.txDone(topology.NodeID(e.a), topology.PortID(e.b), e.pkt)
	case evPropagate:
		port := s.Topo.Node(topology.NodeID(e.a)).Ports[e.b]
		if s.Topo.IsHost(port.Peer) {
			s.deliver(port.Peer, e.pkt)
		} else {
			s.arriveAtSwitch(port.Peer, port.PeerPort, e.pkt)
		}
	case evStartTx:
		s.startTransmitNow(topology.NodeID(e.a), topology.PortID(e.b))
	}
}

// acquirePacket takes a packet from the pool (or allocates the pool's
// first packets) with all fields zeroed and slice capacity retained.
func (s *Simulator) acquirePacket() *Packet {
	if n := len(s.free); n > 0 {
		pkt := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return pkt
	}
	s.pktAlloc++
	return &Packet{}
}

// releasePacket resets a terminal (delivered or dropped) packet and
// returns it to the pool. Hooks have already run; per the Hooks contract
// they copied anything they needed.
func (s *Simulator) releasePacket(pkt *Packet) {
	*pkt = Packet{
		TruePath:       pkt.TruePath[:0],
		HopQueueDepths: pkt.HopQueueDepths[:0],
		HopArrivals:    pkt.HopArrivals[:0],
	}
	//mars:alloc TestNetsimStepAllocs the free list keeps its capacity; steady state recycles without growing
	s.free = append(s.free, pkt)
}

// Send emits a packet from its source host at time t. The packet ID is
// assigned here. Size must be positive. The returned packet is owned by
// the simulator and recycled once delivered or dropped; callers and hooks
// must copy anything they need rather than retain it.
func (s *Simulator) Send(t Time, src, dst topology.NodeID, flow FlowKey, size int32) *Packet {
	if !s.Topo.IsHost(src) || !s.Topo.IsHost(dst) {
		panic(fmt.Sprintf("netsim: Send endpoints must be hosts (%d -> %d)", src, dst))
	}
	if size <= 0 {
		panic("netsim: packet size must be positive")
	}
	//mars:lifecycle ownership transfers to the event agenda with the packet; deliver/drop release it at end of life
	pkt := s.acquirePacket()
	if c := s.shard; c != nil {
		// Per-unit ID stream, stride-encoded so IDs are globally unique
		// and — with one unit — identical to the classic 1,2,3... stream.
		u := c.curUnit
		pkt.ID = c.unitPkt[u]*c.numUnits + uint64(u) + 1
		c.unitPkt[u]++
	} else {
		s.nextPkt++
		pkt.ID = s.nextPkt
	}
	pkt.Src = src
	pkt.Dst = dst
	pkt.Flow = flow
	pkt.Size = size
	pkt.SendTime = t
	s.Stats.Sent++
	edge, ok := s.Topo.EdgeSwitchOf(src)
	if !ok {
		panic(fmt.Sprintf("netsim: host %d has no edge switch", src))
	}
	inPort, _ := s.Topo.PortTo(edge, src)
	// Host NIC: ideal serialization onto the access link.
	tx := s.txTimeHost(pkt.WireSize())
	at := t + tx + s.Cfg.PropDelay
	if at < s.now {
		at = s.now
	}
	s.push(&event{at: at, kind: evHostArrive, a: int32(edge), b: int32(inPort), pkt: pkt})
	return pkt
}

// txTime returns the serialization delay of n bytes at link bandwidth.
func (s *Simulator) txTime(n int32) Time {
	return Time(int64(n) * 8 * int64(Second) / s.Cfg.LinkBandwidthBps)
}

// txTimeHost returns the serialization delay on a host-facing link.
func (s *Simulator) txTimeHost(n int32) Time {
	bw := s.Cfg.HostLinkBandwidthBps
	if bw <= 0 {
		bw = s.Cfg.LinkBandwidthBps
	}
	return Time(int64(n) * 8 * int64(Second) / bw)
}

// arriveAtSwitch applies the switch-level extra processing delay (the
// Delay fault: interrupts, power, misconfiguration — latency the pipeline
// itself experiences) and then runs the pipeline.
func (s *Simulator) arriveAtSwitch(sw topology.NodeID, inPort topology.PortID, pkt *Packet) {
	if extra := s.switches[sw].procExtra; extra > 0 {
		//mars:alloc TestNetsimStepAllocs push copies the event into the agenda array; the literal never outlives the call and stays on the stack
		s.push(&event{at: s.now + extra, kind: evProcArrive, a: int32(sw), b: int32(inPort), pkt: pkt})
		return
	}
	s.processAtSwitch(sw, inPort, pkt)
}

// processAtSwitch runs the ingress pipeline, routing, and enqueue for pkt.
func (s *Simulator) processAtSwitch(sw topology.NodeID, inPort topology.PortID, pkt *Packet) {
	if s.switches[sw].down {
		// A rebooting switch does not run its pipeline: the packet is lost
		// before it can leave a telemetry trace at this hop.
		s.drop(sw, inPort, pkt, DropSwitchDown)
		return
	}
	pkt.TruePath = append(pkt.TruePath, sw)          //mars:alloc TestNetsimStepAllocs per-packet slices keep their capacity across pool recycling
	pkt.HopArrivals = append(pkt.HopArrivals, s.now) //mars:alloc TestNetsimStepAllocs per-packet slices keep their capacity across pool recycling
	s.hooks.OnSwitchArrival(s, sw, inPort, pkt)

	outPort, ok := s.Router.Route(sw, pkt)
	if !ok {
		s.drop(sw, 0, pkt, DropNoRoute)
		return
	}
	sr := &s.switches[sw]
	pr := &sr.ports[outPort]
	qlen := pr.qlen()
	if pr.busy {
		qlen++ // count the in-flight packet as queue occupancy
	}
	//mars:alloc TestNetsimStepAllocs per-packet slices keep their capacity across pool recycling
	pkt.HopQueueDepths = append(pkt.HopQueueDepths, int32(qlen))

	if act := s.hooks.OnForward(s, sw, inPort, outPort, pkt, qlen); act == ActionDrop {
		s.drop(sw, outPort, pkt, DropByProgram)
		return
	}
	if pr.blackhole {
		s.drop(sw, outPort, pkt, DropFault)
		return
	}
	if pr.down {
		s.drop(sw, outPort, pkt, DropLinkDown)
		return
	}
	if pr.dropProb > 0 && s.rng.Float64() < pr.dropProb {
		s.drop(sw, outPort, pkt, DropFault)
		return
	}
	// Pipeline processing delay before the packet is ready at the egress
	// queue.
	//mars:alloc TestNetsimStepAllocs push copies the event into the agenda array; the literal never outlives the call and stays on the stack
	s.push(&event{at: s.now + s.Cfg.SwitchProcDelay, kind: evEnqueue, a: int32(sw), b: int32(outPort), pkt: pkt})
}

// enqueue places pkt on the egress queue of sw/outPort (tail-dropping if
// the queue is at capacity) and kicks the transmitter if idle.
func (s *Simulator) enqueue(sw topology.NodeID, outPort topology.PortID, pkt *Packet) {
	pr := &s.switches[sw].ports[outPort]
	if pr.qlen() >= s.Cfg.QueueCapacity {
		s.drop(sw, outPort, pkt, DropQueueFull)
		return
	}
	if pr.qhead > 0 && len(pr.queue) == cap(pr.queue) {
		// Reclaim the drained prefix rather than growing the array.
		n := copy(pr.queue, pr.queue[pr.qhead:])
		clear(pr.queue[n:])
		pr.queue = pr.queue[:n]
		pr.qhead = 0
	}
	//mars:alloc TestNetsimStepAllocs the drained prefix is reclaimed above, so the queue array's capacity is reused
	pr.queue = append(pr.queue, pkt)
	pr.enqueuedBytes += int64(pkt.WireSize())
	if !pr.busy {
		s.startTransmit(sw, outPort)
	}
}

// startTransmit begins serializing the head-of-line packet.
func (s *Simulator) startTransmit(sw topology.NodeID, outPort topology.PortID) {
	pr := &s.switches[sw].ports[outPort]
	if pr.qlen() == 0 {
		pr.busy = false
		return
	}
	start := s.now
	if pr.nextFreeAt > start {
		pr.busy = true
		//mars:alloc TestNetsimStepAllocs push copies the event into the agenda array; the literal never outlives the call and stays on the stack
		s.push(&event{at: pr.nextFreeAt, kind: evStartTx, a: int32(sw), b: int32(outPort)})
		return
	}
	s.startTransmitNow(sw, outPort)
}

func (s *Simulator) startTransmitNow(sw topology.NodeID, outPort topology.PortID) {
	pr := &s.switches[sw].ports[outPort]
	if pr.qlen() == 0 {
		pr.busy = false
		return
	}
	pr.busy = true
	pkt := pr.queue[pr.qhead]
	pr.queue[pr.qhead] = nil // release the reference for the pool
	pr.qhead++
	if pr.qhead == len(pr.queue) {
		pr.queue = pr.queue[:0]
		pr.qhead = 0
	}
	pr.enqueuedBytes -= int64(pkt.WireSize())

	port := s.Topo.Node(sw).Ports[outPort]
	var tx Time
	if s.Topo.IsHost(port.Peer) {
		tx = s.txTimeHost(pkt.WireSize())
	} else {
		tx = s.txTime(pkt.WireSize())
	}
	tx += pr.extraLatency
	if g := pr.minGap(); g > tx {
		// Rate limit dominates serialization (process-rate decrease).
		tx = g
	}
	pr.nextFreeAt = s.now + tx
	//mars:alloc TestNetsimStepAllocs push copies the event into the agenda array; the literal never outlives the call and stays on the stack
	s.push(&event{at: s.now + tx, kind: evTxDone, a: int32(sw), b: int32(outPort), pkt: pkt})
}

// txDone completes one serialization: account the link bytes, schedule the
// propagation to the peer, then keep the transmitter going.
func (s *Simulator) txDone(sw topology.NodeID, outPort topology.PortID, pkt *Packet) {
	port := s.Topo.Node(sw).Ports[outPort]
	s.Stats.LinkBytes[port.Link] += int64(pkt.WireSize())
	s.countDir(port.Link, sw, pkt.WireSize())
	//mars:alloc TestNetsimStepAllocs push copies the event into the agenda array; the literal never outlives the call and stays on the stack
	s.push(&event{at: s.now + s.Cfg.PropDelay, kind: evPropagate, a: int32(sw), b: int32(outPort), pkt: pkt})
	s.startTransmit(sw, outPort)
}

// countDir attributes bytes to the link direction whose transmitter is
// `from`.
func (s *Simulator) countDir(link topology.LinkID, from topology.NodeID, n int32) {
	if s.Topo.Links[link].A == from {
		s.Stats.LinkDirBytes[link][0] += int64(n)
	} else {
		s.Stats.LinkDirBytes[link][1] += int64(n)
	}
}

func (s *Simulator) deliver(host topology.NodeID, pkt *Packet) {
	s.Stats.Delivered++
	s.Stats.TotalLatency += s.now - pkt.SendTime
	s.hooks.OnDeliver(s, host, pkt)
	s.releasePacket(pkt)
}

func (s *Simulator) drop(sw topology.NodeID, port topology.PortID, pkt *Packet, reason DropReason) {
	s.Stats.Dropped++
	s.Stats.DropsByReason[reason]++
	s.hooks.OnDrop(s, sw, port, pkt, reason)
	s.releasePacket(pkt)
}

// QueueLen returns the current occupancy (packets, including in-flight) of
// a switch egress port.
func (s *Simulator) QueueLen(sw topology.NodeID, port topology.PortID) int {
	pr := &s.switches[sw].ports[port]
	n := pr.qlen()
	if pr.busy {
		n++
	}
	return n
}

// TotalQueueLen returns the summed occupancy of all ports at sw.
func (s *Simulator) TotalQueueLen(sw topology.NodeID) int {
	n := 0
	for i := range s.switches[sw].ports {
		n += s.QueueLen(sw, topology.PortID(i))
	}
	return n
}

// --- Fault controls -------------------------------------------------------
//
// These are the Chaosblade-equivalent knobs; internal/faults composes them
// into the paper's five scenarios.

// SetPortDropProb sets random loss probability on an egress port.
func (s *Simulator) SetPortDropProb(sw topology.NodeID, port topology.PortID, p float64) {
	s.switches[sw].ports[port].dropProb = p
}

// SetPortBlackhole drops all packets on an egress port when on.
func (s *Simulator) SetPortBlackhole(sw topology.NodeID, port topology.PortID, on bool) {
	s.switches[sw].ports[port].blackhole = on
}

// SetPortRateLimit caps departures on a port at pps packets per second
// (0 removes the cap). This models the process-rate-decrease fault.
func (s *Simulator) SetPortRateLimit(sw topology.NodeID, port topology.PortID, pps float64) {
	s.switches[sw].ports[port].rateLimitPPS = pps
}

// SetPortExtraLatency adds fixed latency to every transmission on a port.
func (s *Simulator) SetPortExtraLatency(sw topology.NodeID, port topology.PortID, d Time) {
	s.switches[sw].ports[port].extraLatency = d
}

// SetSwitchExtraDelay adds processing latency to every packet traversing
// the switch (the Delay fault at switch level: interrupts, power, config).
func (s *Simulator) SetSwitchExtraDelay(sw topology.NodeID, d Time) {
	s.switches[sw].procExtra = d
}

// PortDropProb returns the current loss probability on an egress port.
func (s *Simulator) PortDropProb(sw topology.NodeID, port topology.PortID) float64 {
	return s.switches[sw].ports[port].dropProb
}

// PortRateLimit returns the current departure cap on a port (0 = none).
func (s *Simulator) PortRateLimit(sw topology.NodeID, port topology.PortID) float64 {
	return s.switches[sw].ports[port].rateLimitPPS
}

// SwitchExtraDelay returns the current switch-level extra delay.
func (s *Simulator) SwitchExtraDelay(sw topology.NodeID) Time {
	return s.switches[sw].procExtra
}

// --- Dynamic link and switch state ----------------------------------------
//
// Gray-failure scenarios (link down, flapping, switch reboot) toggle these
// mid-run. The flags live on the per-port and per-switch runtime structs the
// hot path already touches, so checking them costs one branch and zero
// allocations (see hotpath_allocs_test.go).

// SetLinkUp raises or lowers a link. A lowered link drops every packet that
// tries to cross it, in both directions, at the moment the sender's egress
// pipeline reaches it. Packets already serialized onto the wire complete
// their propagation (the photons are in flight).
func (s *Simulator) SetLinkUp(link topology.LinkID, up bool) {
	l := s.Topo.Links[link]
	if s.Topo.IsSwitch(l.A) {
		s.switches[l.A].ports[l.APort].down = !up
	}
	if s.Topo.IsSwitch(l.B) {
		s.switches[l.B].ports[l.BPort].down = !up
	}
}

// LinkUp reports whether a link is currently up. Host-to-host links do not
// exist in a fat-tree, so at least one endpoint carries the flag.
func (s *Simulator) LinkUp(link topology.LinkID) bool {
	l := s.Topo.Links[link]
	if s.Topo.IsSwitch(l.A) {
		return !s.switches[l.A].ports[l.APort].down
	}
	return !s.switches[l.B].ports[l.BPort].down
}

// SetSwitchDown marks a switch as rebooting (or recovered). While down the
// switch loses every arriving packet; its register state is NOT cleared
// here — the injector flushes the dataplane program separately, mirroring
// how a real reboot wipes P4 register arrays.
func (s *Simulator) SetSwitchDown(sw topology.NodeID, down bool) {
	s.switches[sw].down = down
}

// SwitchDown reports whether sw is currently rebooting.
func (s *Simulator) SwitchDown(sw topology.NodeID) bool {
	return s.switches[sw].down
}
