package netsim

import (
	"testing"
	"testing/quick"

	"mars/internal/topology"
)

// linearTopo builds h0 - s0 - s1 - h1.
func linearTopo(t *testing.T) (*topology.Topology, topology.NodeID, topology.NodeID) {
	t.Helper()
	b := topology.NewBuilder()
	s0 := b.AddSwitch("s0", topology.LayerEdge)
	s1 := b.AddSwitch("s1", topology.LayerEdge)
	h0 := b.AddHost("h0")
	h1 := b.AddHost("h1")
	b.Connect(s0, s1)
	b.Connect(s0, h0)
	b.Connect(s1, h1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, h0, h1
}

func TestSinglePacketDelivery(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 42)
	s.Send(0, h0, h1, 7, 1000)
	s.RunAll()
	if s.Stats.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", s.Stats.Delivered)
	}
	if s.Stats.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", s.Stats.Dropped)
	}
	// Expected latency: host tx + prop + (proc + tx + prop) per switch x2.
	cfg := DefaultConfig()
	tx := Time(int64(1000) * 8 * int64(Second) / cfg.LinkBandwidthBps)
	want := (tx + cfg.PropDelay) + 2*(cfg.SwitchProcDelay+tx+cfg.PropDelay)
	if got := s.Stats.MeanLatency(); got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestTruePathRecorded(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	var got []topology.NodeID
	// Copy: the simulator recycles the packet (and its slices) after the
	// hook returns.
	h := &captureHooks{onDeliver: func(pkt *Packet) {
		got = append([]topology.NodeID(nil), pkt.TruePath...)
	}}
	s := New(topo, r, h, DefaultConfig(), 1)
	s.Send(0, h0, h1, 1, 500)
	s.RunAll()
	want := topology.Path{0, 1}
	if !want.Equal(topology.Path(got)) {
		t.Errorf("TruePath = %v, want %v", got, want)
	}
}

type captureHooks struct {
	NopHooks
	onDeliver func(*Packet)
	onDrop    func(*Packet, DropReason)
	onForward func(sw topology.NodeID, pkt *Packet, qlen int) Action
}

func (c *captureHooks) OnDeliver(_ *Simulator, _ topology.NodeID, pkt *Packet) {
	if c.onDeliver != nil {
		c.onDeliver(pkt)
	}
}

func (c *captureHooks) OnDrop(_ *Simulator, _ topology.NodeID, _ topology.PortID, pkt *Packet, r DropReason) {
	if c.onDrop != nil {
		c.onDrop(pkt, r)
	}
}

func (c *captureHooks) OnForward(_ *Simulator, sw topology.NodeID, _, _ topology.PortID, pkt *Packet, qlen int) Action {
	if c.onForward != nil {
		return c.onForward(sw, pkt, qlen)
	}
	return ActionForward
}

func TestQueueBuildupIncreasesLatency(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 42)
	// Blast 50 packets at t=0; they serialize one after another on s0->s1.
	for i := 0; i < 50; i++ {
		s.Send(0, h0, h1, FlowKey(i), 1000)
	}
	s.RunAll()
	if s.Stats.Delivered != 50 {
		t.Fatalf("delivered = %d, want 50", s.Stats.Delivered)
	}
	cfg := DefaultConfig()
	tx := Time(int64(1000) * 8 * int64(Second) / cfg.LinkBandwidthBps)
	base := (tx + cfg.PropDelay) + 2*(cfg.SwitchProcDelay+tx+cfg.PropDelay)
	if mean := s.Stats.MeanLatency(); mean <= base {
		t.Errorf("mean latency %v not above uncongested %v", mean, base)
	}
}

func TestTailDropOnFullQueue(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = 4
	s := New(topo, r, nil, cfg, 42)
	for i := 0; i < 200; i++ {
		s.Send(0, h0, h1, FlowKey(i), 1500)
	}
	s.RunAll()
	if s.Stats.Dropped == 0 {
		t.Fatal("expected tail drops with tiny queue")
	}
	if s.Stats.DropsByReason[DropQueueFull] != s.Stats.Dropped {
		t.Errorf("drops by reason: %v", s.Stats.DropsByReason)
	}
	if s.Stats.Delivered+s.Stats.Dropped != s.Stats.Sent {
		t.Errorf("conservation: %d + %d != %d", s.Stats.Delivered, s.Stats.Dropped, s.Stats.Sent)
	}
}

func TestBlackholeDropsAll(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 42)
	p, _ := topo.PortTo(0, 1)
	s.SetPortBlackhole(0, p, true)
	for i := 0; i < 10; i++ {
		s.Send(Time(i)*Millisecond, h0, h1, FlowKey(i), 800)
	}
	s.RunAll()
	if s.Stats.Delivered != 0 {
		t.Errorf("delivered = %d, want 0", s.Stats.Delivered)
	}
	if s.Stats.DropsByReason[DropFault] != 10 {
		t.Errorf("fault drops = %d, want 10", s.Stats.DropsByReason[DropFault])
	}
}

func TestRandomDropProbability(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 7)
	p, _ := topo.PortTo(0, 1)
	s.SetPortDropProb(0, p, 0.5)
	n := 2000
	for i := 0; i < n; i++ {
		s.Send(Time(i)*Millisecond, h0, h1, FlowKey(i), 200)
	}
	s.RunAll()
	frac := float64(s.Stats.DropsByReason[DropFault]) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %.3f, want ~0.5", frac)
	}
}

func TestRateLimitSlowsDelivery(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)

	run := func(limit float64) Time {
		s := New(topo, r, nil, DefaultConfig(), 42)
		p, _ := topo.PortTo(0, 1)
		s.SetPortRateLimit(0, p, limit)
		for i := 0; i < 100; i++ {
			s.Send(Time(i)*10*Millisecond, h0, h1, FlowKey(i), 500)
		}
		s.RunAll()
		if s.Stats.Delivered != 100 {
			t.Fatalf("delivered = %d", s.Stats.Delivered)
		}
		return s.Stats.MeanLatency()
	}
	fast := run(0)
	slow := run(50) // 50 pps: 100 packets take ~2 s to drain
	if slow <= fast*2 {
		t.Errorf("rate-limited latency %v not >> unlimited %v", slow, fast)
	}
}

func TestExtraLatencyFault(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	base := New(topo, r, nil, DefaultConfig(), 42)
	base.Send(0, h0, h1, 1, 500)
	base.RunAll()

	delayed := New(topo, r, nil, DefaultConfig(), 42)
	delayed.SetSwitchExtraDelay(1, 5*Millisecond)
	delayed.Send(0, h0, h1, 1, 500)
	delayed.RunAll()

	diff := delayed.Stats.MeanLatency() - base.Stats.MeanLatency()
	if diff != 5*Millisecond {
		t.Errorf("delay fault added %v, want 5ms", diff)
	}
}

func TestECMPSplitsFlows(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewECMPRouter(ft.Topology, 99)
	s := New(ft.Topology, r, nil, DefaultConfig(), 42)
	// Many flows from host 0 to a cross-pod host: paths should use more
	// than one core switch.
	src := ft.HostIDs[0]
	dst := ft.HostIDs[8] // pod 2
	coreSeen := map[topology.NodeID]bool{}
	h := &captureHooks{onDeliver: func(pkt *Packet) {
		for _, sw := range pkt.TruePath {
			if ft.Node(sw).Layer == topology.LayerCore {
				coreSeen[sw] = true
			}
		}
	}}
	s.hooks = h
	for i := 0; i < 64; i++ {
		s.Send(Time(i)*Millisecond, src, dst, FlowKey(i*2654435761), 500)
	}
	s.RunAll()
	if s.Stats.Delivered != 64 {
		t.Fatalf("delivered = %d", s.Stats.Delivered)
	}
	if len(coreSeen) < 2 {
		t.Errorf("ECMP used %d cores, want >= 2", len(coreSeen))
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewECMPRouter(ft.Topology, 5)
	s := New(ft.Topology, r, nil, DefaultConfig(), 42)
	src, dst := ft.HostIDs[0], ft.HostIDs[8]
	paths := map[string]bool{}
	h := &captureHooks{onDeliver: func(pkt *Packet) {
		paths[topology.Path(pkt.TruePath).String()] = true
	}}
	s.hooks = h
	for i := 0; i < 20; i++ {
		s.Send(Time(i)*Millisecond, src, dst, FlowKey(12345), 400)
	}
	s.RunAll()
	if len(paths) != 1 {
		t.Errorf("one flow used %d distinct paths, want 1", len(paths))
	}
}

func TestECMPWeightSkew(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewECMPRouter(ft.Topology, 3)
	// Skew edge switch 0's uplinks 1:9 toward its second aggregation.
	e0 := ft.EdgeIDs[0]
	hops := r.NextHops(e0, ft.HostIDs[8])
	if len(hops) != 2 {
		t.Fatalf("uplink next hops = %d, want 2", len(hops))
	}
	r.SetWeight(e0, hops[1], 9)
	viaHop := map[topology.NodeID]int{}
	s := New(ft.Topology, r, nil, DefaultConfig(), 42)
	h := &captureHooks{onDeliver: func(pkt *Packet) { viaHop[pkt.TruePath[1]]++ }}
	s.hooks = h
	src, dst := ft.HostIDs[0], ft.HostIDs[8]
	n := 600
	for i := 0; i < n; i++ {
		s.Send(Time(i)*Millisecond/4, src, dst, FlowKey(uint64(i)*0x9E3779B97F4A7C15), 300)
	}
	s.RunAll()
	frac := float64(viaHop[hops[1]]) / float64(n)
	if frac < 0.8 {
		t.Errorf("skewed hop carried %.2f of traffic, want >= 0.8", frac)
	}
}

func TestHooksDropByProgram(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	h := &captureHooks{onForward: func(sw topology.NodeID, pkt *Packet, qlen int) Action {
		if sw == 0 && pkt.Flow == 13 {
			return ActionDrop
		}
		return ActionForward
	}}
	s := New(topo, r, h, DefaultConfig(), 42)
	s.Send(0, h0, h1, 13, 100)
	s.Send(0, h0, h1, 14, 100)
	s.RunAll()
	if s.Stats.Delivered != 1 || s.Stats.DropsByReason[DropByProgram] != 1 {
		t.Errorf("delivered=%d byProgram=%d", s.Stats.Delivered, s.Stats.DropsByReason[DropByProgram])
	}
}

func TestExtraBytesCountTowardLinkBytes(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	h := &captureHooks{onForward: func(sw topology.NodeID, pkt *Packet, qlen int) Action {
		if sw == 0 {
			pkt.ExtraBytes = 11
		}
		return ActionForward
	}}
	s := New(topo, r, h, DefaultConfig(), 42)
	s.Send(0, h0, h1, 1, 100)
	s.RunAll()
	interLink, _ := func() (topology.LinkID, bool) {
		p, ok := topo.PortTo(0, 1)
		return topo.Node(topology.NodeID(0)).Ports[p].Link, ok
	}()
	if got := s.Stats.LinkBytes[interLink]; got != 111 {
		t.Errorf("inter-switch link bytes = %d, want 111", got)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) (int64, Time) {
		ft, _ := topology.NewFatTree(4)
		r := NewECMPRouter(ft.Topology, 1)
		s := New(ft.Topology, r, nil, DefaultConfig(), seed)
		p, _ := ft.PortTo(ft.EdgeIDs[0], ft.AggIDs[0])
		s.SetPortDropProb(ft.EdgeIDs[0], p, 0.2)
		for i := 0; i < 300; i++ {
			src := ft.HostIDs[i%len(ft.HostIDs)]
			dst := ft.HostIDs[(i*7+3)%len(ft.HostIDs)]
			if src == dst {
				continue
			}
			s.Send(Time(i)*100*Microsecond, src, dst, FlowKey(i), int32(200+i%800))
		}
		s.RunAll()
		return s.Stats.Delivered, s.Stats.TotalLatency
	}
	d1, l1 := run(77)
	d2, l2 := run(77)
	if d1 != d2 || l1 != l2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", d1, l1, d2, l2)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 42)
	fired := 0
	s.At(1*Second, func() { fired++ })
	s.At(3*Second, func() { fired++ })
	s.Run(2 * Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*Second {
		t.Errorf("now = %v, want 2s", s.Now())
	}
	s.RunAll()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	_ = h0
	_ = h1
}

// Property: packet conservation holds under arbitrary drop probabilities.
func TestPropertyPacketConservation(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	f := func(seed int64, dropByte uint8, n uint8) bool {
		s := New(topo, r, nil, DefaultConfig(), seed)
		p, _ := topo.PortTo(0, 1)
		s.SetPortDropProb(0, p, float64(dropByte)/255)
		total := int(n)%100 + 1
		for i := 0; i < total; i++ {
			s.Send(Time(i)*200*Microsecond, h0, h1, FlowKey(i), 400)
		}
		s.RunAll()
		return s.Stats.Delivered+s.Stats.Dropped == s.Stats.Sent && s.Stats.Sent == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue depth recorded per hop is always within capacity.
func TestPropertyHopQueueDepthBounded(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = 16
	h := &captureHooks{}
	maxSeen := 0
	h.onDeliver = func(pkt *Packet) {
		for _, d := range pkt.HopQueueDepths {
			if int(d) > maxSeen {
				maxSeen = int(d)
			}
		}
	}
	s := New(topo, r, h, cfg, 11)
	for i := 0; i < 500; i++ {
		s.Send(Time(i)*20*Microsecond, h0, h1, FlowKey(i), 1200)
	}
	s.RunAll()
	if maxSeen > cfg.QueueCapacity+1 {
		t.Errorf("hop queue depth %d exceeds capacity %d", maxSeen, cfg.QueueCapacity)
	}
	if maxSeen == 0 {
		t.Error("expected some queue buildup")
	}
}

func TestSendPanicsOnNonHost(t *testing.T) {
	topo, h0, _ := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for switch endpoint")
		}
	}()
	s.Send(0, h0, 0, 1, 100) // dst node 0 is a switch
}

func TestLinkDirBytesSplitDirections(t *testing.T) {
	topo, h0, h1 := linearTopo(t)
	r := NewECMPRouter(topo, 1)
	s := New(topo, r, nil, DefaultConfig(), 1)
	s.Send(0, h0, h1, 1, 400) // h0 -> h1 only
	s.RunAll()
	interLink := topo.Node(0).Ports[0].Link // s0-s1
	d := s.Stats.LinkDirBytes[interLink]
	if d[0]+d[1] != s.Stats.LinkBytes[interLink] {
		t.Errorf("directional sum %d+%d != total %d", d[0], d[1], s.Stats.LinkBytes[interLink])
	}
	// Traffic went one way only: exactly one direction carries bytes.
	if (d[0] == 0) == (d[1] == 0) {
		t.Errorf("one-way traffic split %v", d)
	}
	// Reverse traffic fills the other direction.
	s2 := New(topo, r, nil, DefaultConfig(), 1)
	s2.Send(0, h0, h1, 1, 400)
	s2.Send(0, h1, h0, 2, 400)
	s2.RunAll()
	d2 := s2.Stats.LinkDirBytes[interLink]
	if d2[0] == 0 || d2[1] == 0 {
		t.Errorf("bidirectional traffic left a direction empty: %v", d2)
	}
}

func TestScaleK6Works(t *testing.T) {
	// The whole pipeline must run on larger fabrics too.
	ft, err := topology.NewFatTree(6)
	if err != nil {
		t.Fatal(err)
	}
	r := NewECMPRouter(ft.Topology, 1)
	s := New(ft.Topology, r, nil, DefaultConfig(), 1)
	for i := 0; i < 200; i++ {
		src := ft.HostIDs[i%len(ft.HostIDs)]
		dst := ft.HostIDs[(i*13+7)%len(ft.HostIDs)]
		if src == dst {
			continue
		}
		s.Send(Time(i)*50*Microsecond, src, dst, FlowKey(i), 600)
	}
	s.RunAll()
	if s.Stats.Delivered == 0 || s.Stats.Delivered+s.Stats.Dropped != s.Stats.Sent {
		t.Errorf("K=6 conservation: %+v", s.Stats)
	}
}
