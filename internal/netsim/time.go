// Package netsim is a deterministic discrete-event network simulator.
//
// It stands in for the paper's Mininet/BMv2 testbed: switches with
// per-port output queues, links with bandwidth and propagation delay, and
// ECMP forwarding. A pluggable Hooks interface lets MARS's data plane, the
// three baseline systems, and a plain forwarder observe and act on the
// same packet stream, which is what makes the Table 1 / Fig. 9 comparisons
// apples-to-apples.
//
// All randomness flows from a single seeded source per Simulator, and the
// event queue breaks time ties by insertion order, so runs are exactly
// reproducible.
package netsim

import (
	"fmt"
	"time"
)

// Time is simulation time in nanoseconds since the start of the run.
type Time int64

// Common durations in simulation time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
