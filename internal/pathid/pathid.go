// Package pathid implements MARS's path-aware telemetry encoding (§4.1,
// Motivation #2): every packet carries a fixed-width PathID that is
// re-hashed at each hop from {PathID, switchID, ingress port, egress port,
// control}. The control field is zero unless the control plane installed a
// Match-Action Table (MAT) entry to break a hash collision, so switch
// memory is consumed only for the (rare) colliding paths — unlike
// IntSight, which installs MAT entries for every hop of every path.
//
// The control plane precomputes the PathID of every path with the same
// hash chain (BuildTable) and keeps the PathID → path map used later by
// root cause analysis to decompress the fixed-size field back into a
// switch sequence.
package pathid

import (
	"fmt"
	"hash/crc32"
	"sort"

	"mars/internal/topology"
)

// ID is a PathID value. Only the low Config.Width bits are meaningful.
type ID uint32

// HashAlg selects the per-hop hash.
type HashAlg uint8

const (
	// CRC16 is CRC-16/CCITT-FALSE (poly 0x1021), the cheaper option the
	// paper cites for Tofino hash units.
	CRC16 HashAlg = iota
	// CRC32 is IEEE CRC-32.
	CRC32
)

func (a HashAlg) String() string {
	if a == CRC16 {
		return "crc16"
	}
	return "crc32"
}

// Config fixes the hash algorithm and the carried field width.
type Config struct {
	Alg HashAlg
	// Width is the number of PathID bits carried in the packet header
	// (the paper suggests a field of e.g. 8 bits; 16 gives fewer
	// collisions at 1 extra byte).
	Width uint
}

// DefaultConfig matches the paper's headline configuration: an 8-bit
// PathID field hashed with CRC16.
func DefaultConfig() Config { return Config{Alg: CRC16, Width: 8} }

// mask returns the width mask.
func (c Config) mask() ID {
	if c.Width >= 32 {
		return ^ID(0)
	}
	return ID(1)<<c.Width - 1
}

// HeaderBytes returns the bytes the PathID field occupies on the wire.
func (c Config) HeaderBytes() int { return int(c.Width+7) / 8 }

// HostPort is the sentinel used in place of the ingress port at the source
// switch and the egress port at the sink switch, so that the PathID is a
// pure function of the switch-level path (FlowID carries no host
// information; see §4.1).
const HostPort = 0xFFFF

// crc16Table is the byte-at-a-time lookup table for CRC-16/CCITT-FALSE
// (poly 0x1021, MSB-first), equivalent to the textbook bit loop but 8×
// fewer iterations per byte on the per-hop fold.
var crc16Table = func() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// crc16Update folds one byte into a running CRC-16/CCITT-FALSE state.
func crc16Update(crc uint16, b byte) uint16 {
	return crc<<8 ^ crc16Table[byte(crc>>8)^b]
}

// crc16 implements CRC-16/CCITT-FALSE over buf.
func crc16(buf []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range buf {
		crc = crc16Update(crc, b)
	}
	return crc
}

// Step computes the next PathID after one hop: the data-plane update
// hash{PathID, switchID, ingressPort, egressPort, control}. It runs per
// packet per hop; the CRC16 branch folds the 13 message bytes directly
// into the running CRC so no buffer is materialized (the stack buffer
// previously escaped through the hash call and was the fold's only
// allocation).
func Step(cfg Config, cur ID, sw topology.NodeID, in, out uint16, control uint8) ID {
	var h ID
	switch cfg.Alg {
	case CRC16:
		crc := uint16(0xFFFF)
		crc = crc16Update(crc, byte(cur>>24))
		crc = crc16Update(crc, byte(cur>>16))
		crc = crc16Update(crc, byte(cur>>8))
		crc = crc16Update(crc, byte(cur))
		crc = crc16Update(crc, byte(uint32(sw)>>24))
		crc = crc16Update(crc, byte(uint32(sw)>>16))
		crc = crc16Update(crc, byte(uint32(sw)>>8))
		crc = crc16Update(crc, byte(uint32(sw)))
		crc = crc16Update(crc, byte(in>>8))
		crc = crc16Update(crc, byte(in))
		crc = crc16Update(crc, byte(out>>8))
		crc = crc16Update(crc, byte(out))
		crc = crc16Update(crc, control)
		h = ID(crc)
	case CRC32:
		var buf [13]byte
		buf[0] = byte(cur >> 24)
		buf[1] = byte(cur >> 16)
		buf[2] = byte(cur >> 8)
		buf[3] = byte(cur)
		buf[4] = byte(uint32(sw) >> 24)
		buf[5] = byte(uint32(sw) >> 16)
		buf[6] = byte(uint32(sw) >> 8)
		buf[7] = byte(uint32(sw))
		buf[8] = byte(in >> 8)
		buf[9] = byte(in)
		buf[10] = byte(out >> 8)
		buf[11] = byte(out)
		buf[12] = control
		h = ID(crc32.ChecksumIEEE(buf[:]))
	}
	return h & cfg.mask()
}

// HopPorts returns, for each switch of path, the (ingress, egress) port
// numbers used in the PathID hash chain: real inter-switch port indices in
// the middle, HostPort sentinels at the ends.
func HopPorts(topo *topology.Topology, path topology.Path) ([][2]uint16, error) {
	ports := make([][2]uint16, len(path))
	for i, sw := range path {
		in := uint16(HostPort)
		out := uint16(HostPort)
		if i > 0 {
			p, ok := topo.PortTo(sw, path[i-1])
			if !ok {
				return nil, fmt.Errorf("pathid: %v not adjacent to %v", path[i-1], sw)
			}
			in = uint16(p)
		}
		if i < len(path)-1 {
			p, ok := topo.PortTo(sw, path[i+1])
			if !ok {
				return nil, fmt.Errorf("pathid: %v not adjacent to %v", sw, path[i+1])
			}
			out = uint16(p)
		}
		ports[i] = [2]uint16{in, out}
	}
	return ports, nil
}

// MATEntry is one collision-breaking rule installed at a switch: when a
// packet with matching current PathID crosses (in → out), use Control in
// the hash instead of zero.
type MATEntry struct {
	Switch  topology.NodeID
	Cur     ID
	In, Out uint16
	Control uint8
}

// MATEntryBytes is the paper's per-entry memory estimate for MARS
// (§5.5: "a MAT occupies around 10 bytes").
const MATEntryBytes = 10

// IntSightMATEntryBytes is the per-entry cost of IntSight's path encoding
// ("each MAT entry consuming around 7 bytes").
const IntSightMATEntryBytes = 7

type matKey struct {
	sw      topology.NodeID
	cur     ID
	in, out uint16
}

// Table is the control plane's PathID database: the consensus hash chain,
// the collision-breaking MAT entries, and the final-ID → path map used to
// decompress telemetry reports.
type Table struct {
	Cfg  Config
	topo *topology.Topology

	entries map[matKey]uint8
	// byFinal maps (sink switch, final ID) to the unique path.
	byFinal map[finalKey]topology.Path
	// finalOf maps a path (by string key) to its final ID.
	finalOf map[string]ID
	paths   []topology.Path
}

type finalKey struct {
	sink topology.NodeID
	id   ID
}

func pathKey(p topology.Path) string {
	b := make([]byte, 0, len(p)*4)
	for _, n := range p {
		b = append(b, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	return string(b)
}

// BuildTable computes PathIDs for every path, resolving collisions between
// paths that share a sink switch by assigning control values (installing
// MAT entries) from the sink hop backwards. It errors only if a collision
// cannot be broken with any of the 255 control values at any hop, which
// would require a wider PathID.
func BuildTable(cfg Config, topo *topology.Topology, paths []topology.Path) (*Table, error) {
	t := &Table{
		Cfg:     cfg,
		topo:    topo,
		entries: make(map[matKey]uint8),
		byFinal: make(map[finalKey]topology.Path),
		finalOf: make(map[string]ID),
	}
	// Deterministic processing order: shorter paths first, then lexicographic.
	sorted := make([]topology.Path, len(paths))
	copy(sorted, paths)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) < len(sorted[j])
		}
		return pathKey(sorted[i]) < pathKey(sorted[j])
	})
	for _, p := range sorted {
		if err := t.insert(p); err != nil {
			return nil, err
		}
	}
	t.paths = sorted
	return t, nil
}

// chain computes the stepwise IDs of a path under the current entry set.
// ids[i] is the PathID after hop i.
func (t *Table) chain(path topology.Path, ports [][2]uint16) []ID {
	ids := make([]ID, len(path))
	cur := ID(0)
	for i, sw := range path {
		ctrl := t.entries[matKey{sw, cur, ports[i][0], ports[i][1]}]
		cur = Step(t.Cfg, cur, sw, ports[i][0], ports[i][1], ctrl)
		ids[i] = cur
	}
	return ids
}

func (t *Table) insert(path topology.Path) error {
	ports, err := HopPorts(t.topo, path)
	if err != nil {
		return err
	}
	sink := path[len(path)-1]
	ids := t.chain(path, ports)
	final := ids[len(ids)-1]
	if existing, clash := t.byFinal[finalKey{sink, final}]; clash {
		if existing.Equal(path) {
			return nil // duplicate path
		}
		// Collision at this sink: walk hops from the sink backwards and try
		// control values until the final ID is fresh.
		for hop := len(path) - 1; hop >= 0; hop-- {
			prev := ID(0)
			if hop > 0 {
				prev = ids[hop-1]
			}
			key := matKey{path[hop], prev, ports[hop][0], ports[hop][1]}
			if _, taken := t.entries[key]; taken {
				// This hop already disambiguates another path; changing it
				// would break that path's chain. Move one hop earlier.
				continue
			}
			for c := uint8(1); c != 0; c++ {
				t.entries[key] = c
				newIDs := t.chain(path, ports)
				nf := newIDs[len(newIDs)-1]
				if _, clash2 := t.byFinal[finalKey{sink, nf}]; !clash2 {
					t.byFinal[finalKey{sink, nf}] = path.Clone()
					t.finalOf[pathKey(path)] = nf
					return nil
				}
				delete(t.entries, key)
			}
		}
		return fmt.Errorf("pathid: cannot disambiguate %v at width %d", path, t.Cfg.Width)
	}
	t.byFinal[finalKey{sink, final}] = path.Clone()
	t.finalOf[pathKey(path)] = final
	return nil
}

// FinalID returns the PathID a packet following path arrives with at the
// sink, under the table's consensus chain.
func (t *Table) FinalID(path topology.Path) (ID, bool) {
	id, ok := t.finalOf[pathKey(path)]
	return id, ok
}

// Lookup decompresses a (sink switch, PathID) pair back to the full path.
func (t *Table) Lookup(sink topology.NodeID, id ID) (topology.Path, bool) {
	p, ok := t.byFinal[finalKey{sink, id}]
	return p, ok
}

// ControlFor is the data-plane MAT lookup at one hop: it returns the
// control value to hash (0 if no entry matches). The empty-table fast
// path skips the map hash entirely — most configurations need no
// collision-breaking entries at all.
func (t *Table) ControlFor(sw topology.NodeID, cur ID, in, out uint16) uint8 {
	if len(t.entries) == 0 {
		return 0
	}
	return t.entries[matKey{sw, cur, in, out}]
}

// NumPaths returns the number of distinct paths in the table.
func (t *Table) NumPaths() int { return len(t.finalOf) }

// MATEntryCount returns the number of collision-breaking entries installed
// across all switches.
func (t *Table) MATEntryCount() int { return len(t.entries) }

// MemoryBytes returns the total switch memory spent on PathID MAT entries
// under the paper's 10 B/entry estimate.
func (t *Table) MemoryBytes() int { return t.MATEntryCount() * MATEntryBytes }

// EntriesPerSwitch breaks down entry placement for resource reporting.
func (t *Table) EntriesPerSwitch() map[topology.NodeID]int {
	m := make(map[topology.NodeID]int)
	//mars:mapiter-ok integer counting into a map is order-independent
	for k := range t.entries {
		m[k.sw]++
	}
	return m
}

// IntSightMATEntries returns the number of MAT entries IntSight's encoding
// needs for the same path set: one per hop of every path (§5.5:
// "IntSight needs to assign MAT entries for all switches on a path").
func IntSightMATEntries(paths []topology.Path) int {
	n := 0
	seen := map[string]bool{}
	for _, p := range paths {
		k := pathKey(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		n += len(p)
	}
	return n
}

// IntSightMemoryBytes returns IntSight's PathID memory at 7 B/entry.
func IntSightMemoryBytes(paths []topology.Path) int {
	return IntSightMATEntries(paths) * IntSightMATEntryBytes
}
