package pathid

import (
	"testing"
	"testing/quick"

	"mars/internal/topology"
)

func k4(t *testing.T) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("crc16 = %#x, want 0x29b1", got)
	}
}

func TestStepDeterministicAndWidthMasked(t *testing.T) {
	cfg := Config{Alg: CRC16, Width: 8}
	a := Step(cfg, 0, 3, 1, 2, 0)
	b := Step(cfg, 0, 3, 1, 2, 0)
	if a != b {
		t.Fatal("Step not deterministic")
	}
	if a > 0xFF {
		t.Errorf("Step exceeded 8-bit mask: %#x", a)
	}
	if c := Step(cfg, 0, 3, 1, 2, 1); c == a {
		t.Error("control value did not change hash")
	}
	if d := Step(cfg, 0, 4, 1, 2, 0); d == a {
		t.Error("switch ID did not change hash")
	}
}

func TestStepCRC32Differs(t *testing.T) {
	c16 := Config{Alg: CRC16, Width: 16}
	c32 := Config{Alg: CRC32, Width: 16}
	if Step(c16, 5, 1, 2, 3, 0) == Step(c32, 5, 1, 2, 3, 0) {
		t.Skip("coincidental equality; widen check")
	}
}

func TestHopPorts(t *testing.T) {
	ft := k4(t)
	paths := ft.AllShortestPaths(ft.EdgeIDs[0], ft.EdgeIDs[1])
	p := paths[0]
	ports, err := HopPorts(ft.Topology, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 3 {
		t.Fatalf("ports len = %d", len(ports))
	}
	if ports[0][0] != HostPort {
		t.Errorf("source ingress = %d, want HostPort", ports[0][0])
	}
	if ports[2][1] != HostPort {
		t.Errorf("sink egress = %d, want HostPort", ports[2][1])
	}
	// Middle hop uses real ports on both sides.
	if ports[1][0] == HostPort || ports[1][1] == HostPort {
		t.Errorf("transit ports = %v", ports[1])
	}
}

func TestHopPortsRejectsNonAdjacent(t *testing.T) {
	ft := k4(t)
	bad := topology.Path{ft.EdgeIDs[0], ft.EdgeIDs[7]}
	if _, err := HopPorts(ft.Topology, bad); err == nil {
		t.Error("expected error for non-adjacent path")
	}
}

func TestBuildTableAllPathsResolvable8Bit(t *testing.T) {
	ft := k4(t)
	paths := ft.AllEdgePairPaths()
	tbl, err := BuildTable(Config{Alg: CRC16, Width: 8}, ft.Topology, paths)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	if tbl.NumPaths() != len(paths) {
		t.Errorf("table paths = %d, want %d", tbl.NumPaths(), len(paths))
	}
	// Every path must round-trip through (sink, finalID).
	for _, p := range paths {
		id, ok := tbl.FinalID(p)
		if !ok {
			t.Fatalf("no final ID for %v", p)
		}
		got, ok := tbl.Lookup(p[len(p)-1], id)
		if !ok || !got.Equal(p) {
			t.Fatalf("Lookup(%v) = %v, %v", p, got, ok)
		}
	}
}

func TestBuildTableCollisionsNeedEntries(t *testing.T) {
	ft := k4(t)
	paths := ft.AllEdgePairPaths() // 208 ordered paths in K=4
	tbl8, err := BuildTable(Config{Alg: CRC16, Width: 8}, ft.Topology, paths)
	if err != nil {
		t.Fatal(err)
	}
	tbl16, err := BuildTable(Config{Alg: CRC16, Width: 16}, ft.Topology, paths)
	if err != nil {
		t.Fatal(err)
	}
	if tbl8.MATEntryCount() == 0 {
		t.Error("8-bit PathID over 208 paths should need some MAT entries")
	}
	if tbl16.MATEntryCount() >= tbl8.MATEntryCount() {
		t.Errorf("16-bit entries (%d) should be < 8-bit entries (%d)",
			tbl16.MATEntryCount(), tbl8.MATEntryCount())
	}
	// The paper's headline: MARS uses far fewer entries than IntSight (512
	// for K=4), saving memory even at 10 B vs 7 B per entry.
	is := IntSightMATEntries(paths)
	if is != 8*16+48*192/48 {
		// Ordered-pair accounting: 16 same-pod paths x 3 hops + 192
		// cross-pod paths x 5 hops = 1008. (The paper counts unordered
		// 112 paths -> 512 entries; the ratio is what matters.)
		_ = is
	}
	if tbl8.MemoryBytes() >= IntSightMemoryBytes(paths) {
		t.Errorf("MARS memory %d B not below IntSight %d B",
			tbl8.MemoryBytes(), IntSightMemoryBytes(paths))
	}
	t.Logf("8-bit: %d entries (%d B); 16-bit: %d entries; IntSight: %d entries (%d B)",
		tbl8.MATEntryCount(), tbl8.MemoryBytes(), tbl16.MATEntryCount(),
		IntSightMATEntries(paths), IntSightMemoryBytes(paths))
}

func TestDataPlaneChainMatchesControlPlane(t *testing.T) {
	// Simulate the data plane: walk each path applying Step with the
	// table's ControlFor at each hop; the arrival ID must equal FinalID.
	ft := k4(t)
	paths := ft.AllEdgePairPaths()
	cfg := Config{Alg: CRC16, Width: 8}
	tbl, err := BuildTable(cfg, ft.Topology, paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		ports, err := HopPorts(ft.Topology, p)
		if err != nil {
			t.Fatal(err)
		}
		cur := ID(0)
		for i, sw := range p {
			ctrl := tbl.ControlFor(sw, cur, ports[i][0], ports[i][1])
			cur = Step(cfg, cur, sw, ports[i][0], ports[i][1], ctrl)
		}
		want, _ := tbl.FinalID(p)
		if cur != want {
			t.Fatalf("data-plane chain for %v = %#x, want %#x", p, cur, want)
		}
	}
}

func TestLookupUnknownID(t *testing.T) {
	ft := k4(t)
	tbl, err := BuildTable(DefaultConfig(), ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	// An ID nobody produced at some sink: probe all 256 and ensure lookup
	// only succeeds for registered ones.
	sink := ft.EdgeIDs[0]
	found := 0
	for id := ID(0); id < 256; id++ {
		if _, ok := tbl.Lookup(sink, id); ok {
			found++
		}
	}
	// 7 other edge switches route to this sink: 2 same-pod neighbors... the
	// count of paths ending at sink = 2 (same-pod, x1 peer) + ... just
	// assert it is positive and below 256.
	if found == 0 || found >= 256 {
		t.Errorf("paths at sink = %d", found)
	}
}

func TestDuplicatePathsIgnored(t *testing.T) {
	ft := k4(t)
	paths := ft.AllShortestPaths(ft.EdgeIDs[0], ft.EdgeIDs[2])
	dup := append(append([]topology.Path{}, paths...), paths...)
	tbl, err := BuildTable(DefaultConfig(), ft.Topology, dup)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumPaths() != len(paths) {
		t.Errorf("NumPaths = %d, want %d", tbl.NumPaths(), len(paths))
	}
}

func TestHeaderBytes(t *testing.T) {
	cases := []struct {
		width uint
		want  int
	}{{8, 1}, {12, 2}, {16, 2}, {32, 4}}
	for _, c := range cases {
		if got := (Config{Width: c.width}).HeaderBytes(); got != c.want {
			t.Errorf("HeaderBytes(%d) = %d, want %d", c.width, got, c.want)
		}
	}
}

func TestEntriesPerSwitchSumsToTotal(t *testing.T) {
	ft := k4(t)
	tbl, err := BuildTable(Config{Alg: CRC16, Width: 8}, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range tbl.EntriesPerSwitch() {
		sum += n
	}
	if sum != tbl.MATEntryCount() {
		t.Errorf("per-switch sum %d != total %d", sum, tbl.MATEntryCount())
	}
}

// Property: distinct paths sharing a sink always resolve to distinct final
// IDs (the table's core guarantee), across widths and algorithms.
func TestPropertyUniqueFinalIDsPerSink(t *testing.T) {
	ft := k4(t)
	paths := ft.AllEdgePairPaths()
	for _, cfg := range []Config{
		{Alg: CRC16, Width: 8},
		{Alg: CRC16, Width: 16},
		{Alg: CRC32, Width: 8},
		{Alg: CRC32, Width: 16},
	} {
		tbl, err := BuildTable(cfg, ft.Topology, paths)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		type k struct {
			sink topology.NodeID
			id   ID
		}
		seen := map[k]string{}
		for _, p := range paths {
			id, ok := tbl.FinalID(p)
			if !ok {
				t.Fatalf("%v: missing id for %v", cfg, p)
			}
			key := k{p[len(p)-1], id}
			if prev, dup := seen[key]; dup && prev != p.String() {
				t.Fatalf("%v: sink collision between %s and %v", cfg, prev, p)
			}
			seen[key] = p.String()
		}
	}
}

// Property: Step output stays within the width mask for random inputs.
func TestPropertyStepMasked(t *testing.T) {
	f := func(cur uint32, sw int32, in, out uint16, ctrl uint8, width uint8) bool {
		w := uint(width%31) + 1
		cfg := Config{Alg: CRC16, Width: w}
		id := Step(cfg, ID(cur), topology.NodeID(sw), in, out, ctrl)
		return id <= cfg.mask()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
