package rca

import (
	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/topology"
)

// Compound-cause disambiguation (gray-failure signatures). The paper's
// five signatures each assume a single clean cause; gray episodes violate
// that. Three additional signatures, gated by Config.CompoundCauses, read
// the same diagnosis data for the evidence the paper's rules discard:
//
//   - link-degrade: ECMP divergence whose *starved* branch carries
//     abnormal latency or telemetry gaps. The imbalance is then a
//     reaction, not the root: weights were skewed away from a sick link,
//     so the light link outranks the divergence switch.
//   - link-flap: drop evidence that alternates with clean epochs —
//     steady loss (Drop) never heals mid-window, flapping does,
//     repeatedly.
//   - switch-reboot: loss fanning across many distinct path neighbors of
//     one switch — a single bad link cannot produce loss on every
//     adjacent direction at once.

// compoundBoost ranks a link-degrade root above the ECMP-divergence
// culprit derived from the same pattern: the root must win R@1 for
// disambiguation to matter.
const compoundBoost = 1.25

// degradedLightBranch looks for the link-degrade signature at divergence
// switch up: among the ECMP branches the pattern's flows take out of up,
// the heavy branch explains the congestion, and a light (starved) branch
// carrying its own degradation evidence — over-threshold packets or
// telemetry gaps on paths through it — exposes the root. Returns the
// [up, lightPeer] link and true when the evidence clears MinLinkEvidence.
func (a *Analyzer) degradedLightBranch(up topology.NodeID, flowPkts map[dataplane.FlowID]float64, stats map[dataplane.FlowID]*flowStats) ([]topology.NodeID, bool) {
	succCount := make(map[topology.NodeID]float64)
	succAbnormal := make(map[topology.NodeID]float64)
	succGapFlows := make(map[topology.NodeID]float64)
	for _, flow := range det.KeysFunc(flowPkts, flowLess) {
		fs := stats[flow]
		flowGaps := float64(len(fs.gapEpochs))
		for _, k := range det.Keys(fs.pathCounts) {
			path := fs.paths[k]
			for i := 0; i+1 < len(path); i++ {
				if path[i] != up {
					continue
				}
				w := path[i+1]
				succCount[w] += fs.pathCounts[k]
				succAbnormal[w] += fs.pathAbnormal[k]
				if flowGaps > 0 {
					succGapFlows[w] += flowGaps
				}
				break
			}
		}
	}
	if len(succCount) < 2 {
		return nil, false
	}
	var heavy topology.NodeID
	best := -1.0
	for _, w := range det.Keys(succCount) {
		if succCount[w] > best {
			heavy, best = w, succCount[w]
		}
	}
	var light topology.NodeID
	bestEv := 0.0
	found := false
	for _, w := range det.Keys(succCount) {
		if w == heavy {
			continue
		}
		// Gaps are stronger evidence than latency: a starved branch sees
		// little traffic, so even a few missing telemetry epochs weigh in.
		ev := succAbnormal[w] + 2*succGapFlows[w]
		if ev > bestEv {
			light, bestEv, found = w, ev, true
		}
	}
	if !found || bestEv < a.Cfg.MinLinkEvidence {
		return nil, false
	}
	return []topology.NodeID{up, light}, true
}

// lossFlowCount counts pattern-traversing flows with cumulative loss
// beyond the drop margin (or telemetry gaps). The process-rate signature
// consults it under CompoundCauses: a congested link whose flows also
// lose packets is a degraded link, not a slow processing stage — queuing
// alone never destroys packets.
func (a *Analyzer) lossFlowCount(flowPkts map[dataplane.FlowID]float64, stats map[dataplane.FlowID]*flowStats) int {
	n := 0
	//mars:mapiter-ok pure count; any visit order yields the same total
	for flow := range flowPkts {
		fs := stats[flow]
		var src, sink uint64
		gap := false
		//mars:mapiter-ok pure sums over the flow's epochs
		for e, c := range fs.epochCounts {
			src += uint64(c)
			sink += uint64(fs.epochSinks[e])
			if fs.gapEpochs[e] {
				gap = true
			}
		}
		margin := uint64(a.dropMargin(uint32(min64(src, 1<<31))))
		if gap || src > sink+margin {
			n++
		}
	}
	return n
}

// hardLossEpoch reports whether a flow epoch shows severe loss: the sink
// saw less than half of what the source sent (a down link or switch), or
// the epoch's telemetry went missing entirely. Probabilistic gray loss
// (a few percent) never qualifies — that distinction is what separates
// flapping and outages from silent degradation.
func (fs *flowStats) hardLossEpoch(e uint32) bool {
	src := fs.epochCounts[e]
	return fs.gapEpochs[e] || (src >= 4 && fs.epochSinks[e]*2 < src)
}

// flapTransitions counts hard-loss↔clean epoch alternations for one flow.
// Epochs with marginal loss (inside the drop margin, or partial but not
// severe) extend the current state rather than flipping it, so noisy
// counts cannot fabricate flapping. A single outage contributes at most
// two transitions (clean→down→clean); real flapping alternates repeatedly.
func (a *Analyzer) flapTransitions(fs *flowStats) int {
	trans := 0
	prevBad, first := false, true
	for _, e := range det.Keys(fs.epochCounts) {
		src := fs.epochCounts[e]
		hardBad := fs.hardLossEpoch(e)
		clean := !fs.gapEpochs[e] && src > 0 && fs.epochSinks[e]+a.dropMargin(src) >= src
		if !hardBad && !clean {
			continue // ambiguous epoch: keeps the current state
		}
		if first {
			prevBad, first = hardBad, false
			continue
		}
		if hardBad != prevBad {
			trans++
			prevBad = hardBad
		}
	}
	return trans
}

// classifyDropCause refines a drop pattern's cause under CompoundCauses
// by how the loss behaves over time and space:
//
//   - link-flap: the pattern's flows alternate repeatedly between
//     hard-loss and clean epochs (an outage heals at most once).
//   - switch-reboot: hard loss on a single-switch pattern fanning across
//     many distinct path neighbors — one bad link cannot starve every
//     adjacent direction at once.
//   - link-degrade: partial loss on a link pattern whose flows also carry
//     over-threshold latency — a rate-limited sick link queues what it
//     does not drop, while truly silent loss adds no delay.
//   - Drop otherwise (hard steady loss, e.g. a down link, or silent
//     partial loss with no latency side-channel).
func (a *Analyzer) classifyDropCause(sub []topology.NodeID, affected map[dataplane.FlowID]bool, stats map[dataplane.FlowID]*flowStats) Cause {
	maxTrans := 0
	hardLoss := false
	abnormalWeight := 0.0
	neighbors := make(map[topology.NodeID]bool)
	for _, flow := range det.KeysFunc(stats, flowLess) {
		fs := stats[flow]
		covers := false
		for _, k := range det.Keys(fs.pathCounts) {
			path := fs.paths[k]
			if !path.Contains(sub) {
				continue
			}
			covers = true
			if affected[flow] {
				abnormalWeight += fs.pathAbnormal[k]
			}
			if len(sub) == 1 {
				for i, sw := range path {
					if sw != sub[0] {
						continue
					}
					if i > 0 {
						neighbors[path[i-1]] = true
					}
					if i+1 < len(path) {
						neighbors[path[i+1]] = true
					}
				}
			}
		}
		if covers && affected[flow] {
			if t := a.flapTransitions(fs); t > maxTrans {
				maxTrans = t
			}
			if !hardLoss {
				for _, e := range det.Keys(fs.epochCounts) {
					if fs.hardLossEpoch(e) {
						hardLoss = true
						break
					}
				}
			}
		}
	}
	// A flapping link destroys packets without delaying the survivors;
	// intermittent hard loss that comes WITH over-threshold latency is
	// congestion collapse (queue overflow), not an administrative flap.
	if a.Cfg.FlapMinTransitions > 0 && maxTrans >= a.Cfg.FlapMinTransitions &&
		abnormalWeight < a.Cfg.MinLinkEvidence {
		return CauseLinkFlap
	}
	if len(sub) == 1 && hardLoss && a.Cfg.RebootMinFan > 0 && len(neighbors) >= a.Cfg.RebootMinFan {
		return CauseSwitchReboot
	}
	if len(sub) == 2 && !hardLoss && abnormalWeight >= a.Cfg.MinLinkEvidence {
		return CauseLinkDegrade
	}
	return CauseDrop
}
