package rca

import (
	"testing"

	"mars/internal/dataplane"
	"mars/internal/topology"
)

func compoundAnalyzer() *Analyzer {
	cfg := DefaultConfig()
	cfg.CompoundCauses = true
	return New(cfg, nil, nil)
}

// synthetic flowStats with per-epoch (src, sink) pairs.
func statsWithEpochs(pairs [][2]uint32) *flowStats {
	fs := &flowStats{
		epochCounts:  make(map[uint32]uint32),
		pathCounts:   make(map[string]float64),
		paths:        make(map[string]topology.Path),
		pathAbnormal: make(map[string]float64),
		epochSinks:   make(map[uint32]uint32),
		gapEpochs:    make(map[uint32]bool),
	}
	for i, p := range pairs {
		fs.epochCounts[uint32(i)] = p[0]
		fs.epochSinks[uint32(i)] = p[1]
	}
	return fs
}

func TestHardLossEpoch(t *testing.T) {
	fs := statsWithEpochs([][2]uint32{
		{20, 20}, // clean
		{20, 5},  // hard loss (sink < half)
		{20, 18}, // soft loss (gray)
		{2, 0},   // tiny sample: below the src floor
	})
	want := []bool{false, true, false, false}
	for e, w := range want {
		if got := fs.hardLossEpoch(uint32(e)); got != w {
			t.Errorf("hardLossEpoch(%d) = %v, want %v", e, got, w)
		}
	}
	fs.gapEpochs[0] = true
	if !fs.hardLossEpoch(0) {
		t.Error("a gap epoch is hard loss regardless of counts")
	}
}

func TestFlapTransitionsCountsAlternation(t *testing.T) {
	a := compoundAnalyzer()
	// down/up/down/up: 20->2 is hard loss, 20->20 clean.
	flap := statsWithEpochs([][2]uint32{
		{20, 2}, {20, 20}, {20, 2}, {20, 20}, {20, 2}, {20, 20},
	})
	if got := a.flapTransitions(flap); got < a.Cfg.FlapMinTransitions {
		t.Errorf("flap transitions = %d, want >= %d", got, a.Cfg.FlapMinTransitions)
	}
	// One contiguous outage: at most two transitions.
	outage := statsWithEpochs([][2]uint32{
		{20, 20}, {20, 20}, {20, 1}, {20, 2}, {20, 1}, {20, 20},
	})
	if got := a.flapTransitions(outage); got > 2 {
		t.Errorf("single outage transitions = %d, want <= 2", got)
	}
	// Steady gray loss (10%): marginal epochs are ambiguous, never flap.
	gray := statsWithEpochs([][2]uint32{
		{20, 18}, {20, 17}, {20, 18}, {20, 19}, {20, 17}, {20, 18},
	})
	if got := a.flapTransitions(gray); got != 0 {
		t.Errorf("steady gray loss transitions = %d, want 0", got)
	}
}

// classifyDropCause taxonomy: flap vs reboot vs degrade vs steady drop.
func TestClassifyDropCauseTaxonomy(t *testing.T) {
	a := compoundAnalyzer()
	link := []topology.NodeID{4, 9}
	path := topology.Path{2, 4, 9, 11}
	mk := func(pairs [][2]uint32, abnormal float64) (map[dataplane.FlowID]bool, map[dataplane.FlowID]*flowStats) {
		flow := dataplane.FlowID{Src: 0, Sink: 11}
		fs := statsWithEpochs(pairs)
		fs.pathCounts[path.String()] = 10
		fs.paths[path.String()] = path
		fs.pathAbnormal[path.String()] = abnormal
		return map[dataplane.FlowID]bool{flow: true}, map[dataplane.FlowID]*flowStats{flow: fs}
	}

	flapping := [][2]uint32{{20, 2}, {20, 20}, {20, 2}, {20, 20}, {20, 2}, {20, 20}}
	affected, stats := mk(flapping, 0)
	if got := a.classifyDropCause(link, affected, stats); got != CauseLinkFlap {
		t.Errorf("alternating hard loss = %v, want link-flap", got)
	}
	// The same alternation WITH latency evidence is congestion collapse,
	// not an administrative flap.
	affected, stats = mk(flapping, 10)
	if got := a.classifyDropCause(link, affected, stats); got != CauseDrop {
		t.Errorf("alternating loss with latency = %v, want drop", got)
	}

	// Partial loss plus latency on a link pattern: degraded link.
	soft := [][2]uint32{{20, 18}, {20, 17}, {20, 18}, {20, 17}, {20, 18}, {20, 17}}
	affected, stats = mk(soft, 10)
	if got := a.classifyDropCause(link, affected, stats); got != CauseLinkDegrade {
		t.Errorf("soft loss with latency = %v, want link-degrade", got)
	}
	// Silent partial loss with no latency stays steady drop.
	affected, stats = mk(soft, 0)
	if got := a.classifyDropCause(link, affected, stats); got != CauseDrop {
		t.Errorf("silent soft loss = %v, want drop", got)
	}
}

func TestClassifyDropCauseReboot(t *testing.T) {
	a := compoundAnalyzer()
	sub := []topology.NodeID{4}
	outage := [][2]uint32{{20, 20}, {20, 1}, {20, 1}, {20, 20}}
	affected := make(map[dataplane.FlowID]bool)
	stats := make(map[dataplane.FlowID]*flowStats)
	// Three flows through switch 4 from distinct neighbors: the loss fans.
	for i, p := range []topology.Path{{1, 4, 9}, {2, 4, 10}, {3, 4, 11}} {
		flow := dataplane.FlowID{Src: topology.NodeID(100 + i), Sink: p[len(p)-1]}
		fs := statsWithEpochs(outage)
		fs.pathCounts[p.String()] = 10
		fs.paths[p.String()] = p
		affected[flow] = true
		stats[flow] = fs
	}
	if got := a.classifyDropCause(sub, affected, stats); got != CauseSwitchReboot {
		t.Errorf("fanned hard outage = %v, want switch-reboot", got)
	}
	// Without hard loss the fan is not a reboot.
	for _, fs := range stats {
		//mars:mapiter-ok uniform mutation of every entry
		for e := range fs.epochCounts {
			fs.epochSinks[e] = fs.epochCounts[e]
		}
	}
	if got := a.classifyDropCause(sub, affected, stats); got == CauseSwitchReboot {
		t.Error("clean counts must not classify as reboot")
	}
}

func TestCompoundCausesOffNeverEmitsGrayLabels(t *testing.T) {
	for _, c := range []Cause{CauseLinkDegrade, CauseLinkFlap, CauseSwitchReboot} {
		if c.String() == "" {
			t.Fatal("gray causes must have names")
		}
	}
	cfg := DefaultConfig()
	if cfg.CompoundCauses {
		t.Fatal("CompoundCauses must default to off — the paper's behavior is the baseline")
	}
}
