package rca

import (
	"strings"
	"testing"

	"mars/internal/topology"
)

func TestCulpritConfidenceString(t *testing.T) {
	c := Culprit{Cause: CauseDelay, Level: LevelSwitch,
		Location: []topology.NodeID{3}, Score: 1.5}
	if s := c.String(); strings.Contains(s, "conf=") {
		t.Errorf("full-confidence culprit annotated: %q", s)
	}
	c.Confidence = 1
	if s := c.String(); strings.Contains(s, "conf=") {
		t.Errorf("confidence 1 annotated: %q", s)
	}
	c.Confidence = 0.75
	if s := c.String(); !strings.Contains(s, "conf=0.75") {
		t.Errorf("partial-coverage culprit missing annotation: %q", s)
	}
}

func TestMergeKeepsBestConfidence(t *testing.T) {
	// The same culprit seen by a partial diagnosis (coverage 0.5) and a
	// complete one (1.0) must keep the better coverage after merging.
	mk := func(conf float64) Culprit {
		return Culprit{Cause: CauseDelay, Level: LevelSwitch,
			Location: []topology.NodeID{7}, Score: 1, Confidence: conf}
	}
	merged := MergeRanked([][]Culprit{{mk(0.5)}, {mk(1.0)}})
	if len(merged) != 1 {
		t.Fatalf("merged = %d culprits, want 1", len(merged))
	}
	if merged[0].Confidence != 1.0 {
		t.Errorf("confidence = %v, want the best (1.0)", merged[0].Confidence)
	}
	// Order independence: partial-after-complete keeps 1.0 too.
	merged = MergeRanked([][]Culprit{{mk(1.0)}, {mk(0.5)}})
	if merged[0].Confidence != 1.0 {
		t.Errorf("confidence = %v after reversed merge, want 1.0", merged[0].Confidence)
	}
}
