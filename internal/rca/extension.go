package rca

import (
	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// The paper notes that "the signatures can be extended if more root causes
// are considered" (§5.6). This file is that extension point: operators
// register custom signatures that are evaluated per culprit pattern before
// the five built-in ones, with access to the same evidence the built-ins
// use.

// CauseExtensionBase is the first Cause value available to extensions;
// values below it are reserved for the built-in causes.
const CauseExtensionBase Cause = 100

// PatternEvidence is the evidence available to a signature for one
// candidate pattern: the pattern itself, per-flow diagnosis summaries of
// the flows traversing it, and dataset-level baselines.
type PatternEvidence struct {
	// Pattern is the candidate switch or link.
	Pattern []topology.NodeID
	// Score is the pattern's SBFL suspiciousness.
	Score float64
	// Flows summarizes each traversing flow.
	Flows []FlowEvidence
	// BaselineQueueDepth is the median total queue depth among records
	// classified normal.
	BaselineQueueDepth float64
	// GlobalMedianRate is the median per-epoch packet count across flows.
	GlobalMedianRate float64
}

// FlowEvidence summarizes one flow's diagnosis data for signature writers.
type FlowEvidence struct {
	Flow dataplane.FlowID
	// PacketsThroughPattern is the flow's estimated packet count crossing
	// the pattern.
	PacketsThroughPattern float64
	// PeakEpochRate and BaselineEpochRate are per-epoch packet counts.
	PeakEpochRate, BaselineEpochRate float64
	// AbnormalQueueMedian is the median accumulated queue depth among the
	// flow's over-threshold records (0 if none).
	AbnormalQueueMedian float64
	// AbnormalRecords counts the flow's over-threshold records.
	AbnormalRecords int
}

// SignatureMatch is a custom signature's verdict for one pattern.
type SignatureMatch struct {
	Cause Cause
	Level Level
	// Location overrides the blamed switches (nil keeps the pattern).
	Location []topology.NodeID
	// Flow attributes the cause to a flow (flow-level causes only).
	Flow dataplane.FlowID
	// Weight scales the pattern score for this culprit (0 -> 1).
	Weight float64
}

// Signature inspects a pattern's evidence. Returning ok=false passes the
// pattern on to the next signature (custom ones first, then built-ins).
type Signature func(ev PatternEvidence) (SignatureMatch, bool)

// RegisterSignature appends a custom cause signature. Signatures run in
// registration order before the built-in ones.
func (a *Analyzer) RegisterSignature(name string, s Signature) {
	a.extensions = append(a.extensions, namedSignature{name: name, fn: s})
}

type namedSignature struct {
	name string
	fn   Signature
}

// runExtensions evaluates custom signatures for one pattern and returns
// the culprits they produce (empty if none claimed it).
func (a *Analyzer) runExtensions(sp scoredPattern, flowPkts map[dataplane.FlowID]float64, stats map[dataplane.FlowID]*flowStats, baseQ, globalMed float64) []Culprit {
	if len(a.extensions) == 0 {
		return nil
	}
	ev := PatternEvidence{
		Pattern:            sp.sub,
		Score:              sp.score,
		BaselineQueueDepth: baseQ,
		GlobalMedianRate:   globalMed,
	}
	for _, flow := range det.KeysFunc(flowPkts, flowLess) {
		fs := stats[flow]
		peak, base := fs.peakAndBaseline()
		ev.Flows = append(ev.Flows, FlowEvidence{
			Flow:                  flow,
			PacketsThroughPattern: flowPkts[flow],
			PeakEpochRate:         float64(peak),
			BaselineEpochRate:     base,
			AbnormalQueueMedian:   fs.abnormalQueueMedian(),
			AbnormalRecords:       len(fs.abnormalQueueDepths),
		})
	}
	var out []Culprit
	for _, ns := range a.extensions {
		m, ok := ns.fn(ev)
		if !ok {
			continue
		}
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		loc := m.Location
		if loc == nil {
			loc = append([]topology.NodeID{}, sp.sub...)
		}
		out = append(out, Culprit{
			Cause:    m.Cause,
			Level:    m.Level,
			Location: loc,
			Flow:     m.Flow,
			Score:    sp.score * w,
		})
	}
	return out
}

// Thresholds is also satisfiable by a plain function.
type ThresholdFunc func(flow dataplane.FlowID) netsim.Time

// ThresholdOf implements Thresholds.
func (f ThresholdFunc) ThresholdOf(flow dataplane.FlowID) netsim.Time { return f(flow) }

var _ Thresholds = ThresholdFunc(nil)
