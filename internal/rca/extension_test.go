package rca

import (
	"testing"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// TestCustomSignatureClaimsPattern registers a custom cause that claims
// every congested pattern and verifies it pre-empts the built-ins.
func TestCustomSignatureClaimsPattern(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	const CauseFirmwareBug = CauseExtensionBase + 1
	a.RegisterSignature("firmware-bug", func(ev PatternEvidence) (SignatureMatch, bool) {
		for _, fl := range ev.Flows {
			if fl.AbnormalQueueMedian >= 20 {
				return SignatureMatch{
					Cause: CauseFirmwareBug,
					Level: LevelSwitch,
				}, true
			}
		}
		return SignatureMatch{}, false
	})

	// Congested scenario (same shape as the process-rate unit test).
	aggSw := f.ft.AggIDs[0]
	coreSw := f.ft.CoreIDs[0]
	link := []topology.NodeID{aggSw, coreSw}
	var recs []dataplane.RTRecord
	n := 0
	for _, src := range f.ft.EdgeIDs {
		for _, dst := range f.ft.EdgeIDs {
			if src == dst || n >= 6 {
				continue
			}
			for _, p := range f.ft.AllShortestPaths(src, dst) {
				if p.Contains(link) {
					for ep := uint32(1); ep <= 3; ep++ {
						recs = append(recs, f.record(t, p, ep, badLatency, 20, 30))
					}
					n++
					break
				}
			}
		}
	}
	for _, p := range f.ft.AllShortestPaths(f.ft.EdgeIDs[4], f.ft.EdgeIDs[6]) {
		for ep := uint32(1); ep <= 3; ep++ {
			recs = append(recs, f.record(t, p, ep, okLatency, 20, 1))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	foundCustom := false
	for _, c := range got {
		if c.Cause == CauseFirmwareBug {
			foundCustom = true
		}
		if c.Cause == CauseProcessRate {
			t.Errorf("built-in cause leaked through a claimed pattern: %v", c)
		}
	}
	if !foundCustom {
		t.Error("custom signature never matched")
	}
}

func TestThresholdFunc(t *testing.T) {
	var thr Thresholds = ThresholdFunc(func(dataplane.FlowID) netsim.Time { return 42 })
	if thr.ThresholdOf(dataplane.FlowID{}) != 42 {
		t.Error("ThresholdFunc broken")
	}
}
