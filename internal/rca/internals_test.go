package rca

import (
	"testing"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

func TestDropAffectedFlowsCancelsDisplacement(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	flow := dataplane.FlowID{Src: f.ft.EdgeIDs[0], Sink: f.ft.EdgeIDs[2]}
	p := f.ft.AllShortestPaths(flow.Src, flow.Sink)[0]

	// A latency-shift onset: epoch 10 shows a deficit of 18, epoch 11 the
	// matching surplus. Cumulatively balanced => not a drop.
	mk := func(epoch, src, sink uint32) dataplane.RTRecord {
		r := f.record(t, p, epoch, okLatency, src, 1)
		r.SinkCount = sink
		r.Arrival = netsim.Time(epoch) * 100 * netsim.Millisecond
		return r
	}
	d := controlplane.Diagnosis{
		Time: 1200 * netsim.Millisecond,
		Records: []dataplane.RTRecord{
			mk(9, 40, 40),
			mk(10, 40, 22), // deficit 18
			mk(11, 40, 58), // surplus 18
		},
	}
	if got := a.dropAffectedFlows(d); len(got) != 0 {
		t.Errorf("displacement flagged as drop: %v", got)
	}

	// Real loss: sustained deficit accumulates.
	d2 := controlplane.Diagnosis{
		Time: 1200 * netsim.Millisecond,
		Records: []dataplane.RTRecord{
			mk(9, 40, 18),
			mk(10, 40, 20),
			mk(11, 40, 22),
		},
	}
	if got := a.dropAffectedFlows(d2); !got[flow] {
		t.Errorf("sustained loss not flagged: %v", got)
	}
}

func TestDropAffectedFlowsRecentWindow(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	flow := dataplane.FlowID{Src: f.ft.EdgeIDs[0], Sink: f.ft.EdgeIDs[2]}
	p := f.ft.AllShortestPaths(flow.Src, flow.Sink)[0]
	old := f.record(t, p, 2, okLatency, 40, 1)
	old.SinkCount = 0 // massive loss, but long ago
	old.Arrival = 200 * netsim.Millisecond
	d := controlplane.Diagnosis{
		Time:    5 * netsim.Second,
		Records: []dataplane.RTRecord{old},
	}
	if got := a.dropAffectedFlows(d); len(got) != 0 {
		t.Errorf("stale evidence flagged: %v", got)
	}
}

func TestEpochGapIsDirectDropEvidence(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	flow := dataplane.FlowID{Src: f.ft.EdgeIDs[0], Sink: f.ft.EdgeIDs[2]}
	p := f.ft.AllShortestPaths(flow.Src, flow.Sink)[0]
	r := f.record(t, p, 30, okLatency, 40, 1)
	r.EpochGap = 5
	r.Arrival = 3 * netsim.Second
	d := controlplane.Diagnosis{Time: 3 * netsim.Second, Records: []dataplane.RTRecord{r}}
	if got := a.dropAffectedFlows(d); !got[flow] {
		t.Error("epoch gap not treated as drop evidence")
	}
	if !a.hasDropEvidence(d) {
		t.Error("hasDropEvidence false despite gap")
	}
}

func TestIsBurstyAbsoluteRate(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	// Flow appearing mid-window at 1200 pps (120/epoch) with no history.
	fs := &flowStats{epochCounts: map[uint32]uint32{20: 120, 21: 118}, minEpoch: 20, hasEpoch: true}
	win := &sinkEpochRange{min: 0, max: 25, valid: true}
	if !a.isBursty(fs, win, 30) {
		t.Error("new 1200pps flow not bursty")
	}
	// Same rate but present from the window start: steady heavy flow.
	fs2 := &flowStats{epochCounts: map[uint32]uint32{}, hasEpoch: true}
	for e := uint32(0); e <= 25; e++ {
		fs2.epochCounts[e] = 120
	}
	fs2.minEpoch = 0
	if a.isBursty(fs2, win, 30) {
		t.Error("steady heavy flow misclassified as burst")
	}
	// Existing flow whose rate jumps 4x: relative test.
	fs3 := &flowStats{epochCounts: map[uint32]uint32{}, hasEpoch: true, minEpoch: 0}
	for e := uint32(0); e <= 20; e++ {
		fs3.epochCounts[e] = 25
	}
	fs3.epochCounts[21] = 110
	if !a.isBursty(fs3, win, 30) {
		t.Error("4x rate jump not bursty")
	}
}

func TestEcmpDivergenceRequiresHeavyFeedsNext(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	e0 := f.ft.EdgeIDs[0]
	dst := f.ft.EdgeIDs[2]
	paths := f.ft.AllShortestPaths(e0, dst)
	// Build stats with a heavy branch via paths[2] (second aggregation).
	fls := &flowStats{
		pathCounts: map[string]float64{},
		paths:      map[string]topology.Path{},
	}
	for i, p := range paths {
		w := 5.0
		if i >= 2 { // second agg branch heavy
			w = 45.0
		}
		fls.pathCounts[p.String()] = w
		fls.paths[p.String()] = p
	}
	heavyAgg := paths[2][1]
	if up, _, ok := a.ecmpDivergence(fls, heavyAgg); !ok || up != e0 {
		t.Errorf("divergence = %v,%v; want %d", up, ok, e0)
	}
	// Asking about the light branch must not match.
	lightAgg := paths[0][1]
	if _, _, ok := a.ecmpDivergence(fls, lightAgg); ok {
		t.Error("light branch wrongly matched")
	}
}
