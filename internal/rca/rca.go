// Package rca implements MARS's root cause analysis (§4.4): triggered by a
// data-plane notification, it turns the collected Ring Table snapshot into
// a ranked list of culprits with causes.
//
// Pipeline (§4.4's four parts):
//  1. estimate actual traffic from the sampled telemetry (Alg. 2) and
//     classify estimated packets into abnormal/normal sets with the
//     reservoir thresholds;
//  2. mine frequent sub-sequences (switches and links) of the abnormal
//     paths with FSM (§4.4.2);
//  3. score each pattern with relative-risk SBFL (§4.4.3, Eq. 1);
//  4. assign a cause per culprit by signature matching over the diagnosis
//     data, score by Alg. 3, and merge (§4.4.4).
package rca

import (
	"fmt"
	"sort"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/fsm"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/sbfl"
	"mars/internal/topology"
)

// Cause is the diagnosed fault class of a culprit.
type Cause uint8

const (
	// CauseMicroBurst is the flow-level burst cause.
	CauseMicroBurst Cause = iota
	// CauseECMPImbalance is the switch-level uneven-split cause.
	CauseECMPImbalance
	// CauseProcessRate is the port/switch-level slow-drain cause.
	CauseProcessRate
	// CauseDelay is the port/switch-level out-of-queue latency cause.
	CauseDelay
	// CauseDrop is the port/switch-level loss cause.
	CauseDrop
	// CauseLinkDegrade is the compound gray cause: a degraded link whose
	// ECMP reaction produces the congestion the paper's signature blames
	// on the divergence switch. Only emitted with Config.CompoundCauses.
	CauseLinkDegrade
	// CauseLinkFlap is intermittent loss: drop evidence that alternates
	// with clean epochs. Only emitted with Config.CompoundCauses.
	CauseLinkFlap
	// CauseSwitchReboot is a node-level outage: loss fanning across many
	// neighbors of one switch. Only emitted with Config.CompoundCauses.
	CauseSwitchReboot
)

func (c Cause) String() string {
	//mars:partial CauseExtensionBase is the sentinel floor for extension causes, not a concrete cause; extension causes render through the default
	switch c {
	case CauseMicroBurst:
		return "micro-burst"
	case CauseECMPImbalance:
		return "ecmp-imbalance"
	case CauseProcessRate:
		return "process-rate"
	case CauseDelay:
		return "delay"
	case CauseDrop:
		return "drop"
	case CauseLinkDegrade:
		return "link-degrade"
	case CauseLinkFlap:
		return "link-flap"
	case CauseSwitchReboot:
		return "switch-reboot"
	default:
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
}

// Level is the granularity of a culprit.
type Level uint8

const (
	// LevelFlow blames a flow (micro-burst).
	LevelFlow Level = iota
	// LevelSwitch blames a switch.
	LevelSwitch
	// LevelPort blames a specific link/egress port.
	LevelPort
)

func (l Level) String() string {
	switch l {
	case LevelFlow:
		return "flow"
	case LevelSwitch:
		return "switch"
	case LevelPort:
		return "port"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Culprit is one entry of the ranked output list.
type Culprit struct {
	Cause Cause
	Level Level
	// Location is the blamed switch sequence: one switch, or two for a
	// link/port-level culprit (egress of Location[0] toward Location[1]).
	Location []topology.NodeID
	// Flow is set for flow-level culprits.
	Flow dataplane.FlowID
	// Score orders the list (higher = more suspicious).
	Score float64
	// Confidence is the diagnosis-data coverage behind this culprit: 1
	// when every contacted sink answered the collection, lower when the
	// diagnosis was partial (degraded control channel). Merging across
	// diagnoses keeps the best coverage that supported the culprit.
	Confidence float64
}

func (c Culprit) String() string {
	loc := topology.Path(c.Location).String()
	conf := ""
	if c.Confidence > 0 && c.Confidence < 1 {
		conf = fmt.Sprintf(" conf=%.2f", c.Confidence)
	}
	if c.Level == LevelFlow {
		return fmt.Sprintf("%.3f %s %v at %s%s", c.Score, c.Cause, c.Flow, loc, conf)
	}
	return fmt.Sprintf("%.3f %s (%s) at %s%s", c.Score, c.Cause, c.Level, loc, conf)
}

// ContainsSwitch reports whether the culprit blames sw.
func (c Culprit) ContainsSwitch(sw topology.NodeID) bool {
	for _, s := range c.Location {
		if s == sw {
			return true
		}
	}
	return false
}

// Config tunes the analyzer.
type Config struct {
	// Miner is the FSM algorithm (PrefixSpan by default).
	Miner fsm.Miner
	// MinRelSupport is the FSM relative support floor over the abnormal set.
	MinRelSupport float64
	// MaxPatternLen caps culprit patterns (2 = switches and links).
	MaxPatternLen int
	// Formula is the SBFL scorer (relative risk by default).
	Formula sbfl.Formula
	// MaxEstimatePerRecord caps Alg. 2 expansion per telemetry record to
	// bound analysis cost.
	MaxEstimatePerRecord int
	// BurstFactor: a flow whose peak epoch rate exceeds BurstFactor times
	// its quiet baseline matches the micro-burst signature.
	BurstFactor float64
	// BurstFactorNew is the relaxed multiple (against the network-wide
	// median rate) for flows that appeared mid-window and have no quiet
	// history of their own.
	BurstFactorNew float64
	// EpochDuration converts per-epoch counts to rates for the absolute
	// burst test; it mirrors the data plane's telemetry epoch.
	EpochDuration netsim.Time
	// BurstPPS is the absolute rate above which a flow qualifies as a
	// burst regardless of baselines (the paper's micro-bursts exceed
	// 1000 pps against ~200 pps background).
	BurstPPS float64
	// QueueCongested: total queue depth at or above this matches the
	// queue-buildup signatures.
	QueueCongested uint32
	// CongestionFactor: additionally, the abnormal queue depth must exceed
	// this multiple of the normal records' median depth (total queue depth
	// sums over hops, so absolute thresholds alone misfire on long paths).
	CongestionFactor float64
	// ImbalanceRatio: per-path throughput max/min at an ECMP divergence at
	// or above this matches the ECMP signature.
	ImbalanceRatio float64
	// StablePPSFactor: peak/median epoch rate below this counts as
	// "pps remains relatively stable".
	StablePPSFactor float64
	// DropCountThreshold mirrors the data plane's drop trigger.
	DropCountThreshold uint32
	// MinAbnormalRecords is the least number of over-threshold telemetry
	// records required before the latency pipeline reports culprits;
	// below it the anomaly is treated as transient noise.
	MinAbnormalRecords int
	// RecentWindow bounds how far back drop evidence is trusted: a latency
	// fault's onset shifts packets across an epoch boundary once, which
	// looks like a count mismatch; only sustained (recent) mismatches
	// drive the drop pipeline.
	RecentWindow netsim.Time
	// CompoundCauses enables the gray-failure signatures: link-degrade
	// disambiguation behind ECMP divergence, link-flap intermittency, and
	// switch-reboot fan-out. Off by default so the paper's five-signature
	// behavior (and its pinned experiment digests) is unchanged; the gray
	// experiment flips it on for its compound mode.
	CompoundCauses bool
	// MinLinkEvidence is the least degradation evidence (abnormal packet
	// weight plus weighted telemetry gaps) a starved ECMP branch must
	// carry before the link-degrade signature re-blames the light link.
	MinLinkEvidence float64
	// FlapMinTransitions is the least number of bad↔clean epoch
	// alternations across a pattern's flows before drop evidence is
	// classified as flapping rather than steady loss.
	FlapMinTransitions int
	// RebootMinFan is the least number of distinct path neighbors of a
	// single-switch drop pattern before the loss is classified as a
	// node-level outage (reboot) rather than one bad link.
	RebootMinFan int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Miner:                fsm.NewPrefixSpan(),
		MinRelSupport:        0.3,
		MaxPatternLen:        2,
		Formula:              sbfl.RelativeRisk,
		MaxEstimatePerRecord: 30,
		BurstFactor:          3.0,
		BurstFactorNew:       2.5,
		EpochDuration:        100 * netsim.Millisecond,
		BurstPPS:             700,
		QueueCongested:       8,
		CongestionFactor:     2.5,
		ImbalanceRatio:       2.5,
		StablePPSFactor:      2.0,
		DropCountThreshold:   3,
		MinAbnormalRecords:   4,
		RecentWindow:         400 * netsim.Millisecond,
		MinLinkEvidence:      2,
		FlapMinTransitions:   4,
		RebootMinFan:         3,
	}
}

// Thresholds supplies the per-flow dynamic thresholds used to classify
// estimated packets (the controller's reservoirs implement this).
type Thresholds interface {
	ThresholdOf(flow dataplane.FlowID) netsim.Time
}

// Analyzer turns diagnoses into ranked culprit lists.
type Analyzer struct {
	Cfg   Config
	Paths *pathid.Table
	Thr   Thresholds

	// extensions holds operator-registered cause signatures (see
	// RegisterSignature).
	extensions []namedSignature
}

// New creates an analyzer. paths decompresses PathIDs; thr classifies.
func New(cfg Config, paths *pathid.Table, thr Thresholds) *Analyzer {
	if cfg.Miner == nil {
		cfg.Miner = fsm.NewPrefixSpan()
	}
	if cfg.Formula == nil {
		cfg.Formula = sbfl.RelativeRisk
	}
	return &Analyzer{Cfg: cfg, Paths: paths, Thr: thr}
}

// estPacket is one Alg. 2 estimated packet.
type estPacket struct {
	flow     dataplane.FlowID
	path     topology.Path
	latency  netsim.Time
	abnormal bool
}

// Analyze produces the ranked culprit list for one diagnosis. The
// notification only initiates collection; the diagnosis data itself is
// self-contained. Per §4.4.4, drops are diagnosed with "another analysis
// logic": when the latency pipeline explains the anomaly (bursts, slow
// ports, and delays all manifest as latency first, often with secondary
// loss), its findings stand; the drop pipeline runs when the incident has
// drop evidence but no latency explanation — the signature of link
// failures and blackholes.
func (a *Analyzer) Analyze(d controlplane.Diagnosis) []Culprit {
	lat := a.analyzeLatency(d)
	runDrop := false
	if len(lat) == 0 {
		runDrop = a.hasDropEvidence(d)
	} else if d.Trigger.Kind == dataplane.NotifyDrop {
		// The data plane explicitly flagged loss: report both views.
		runDrop = true
	} else if a.Cfg.CompoundCauses {
		// Gray failures hide behind latency noise: a silently lossy link
		// produces small per-flow deficits that never trip the data plane's
		// drop trigger, while incidental latency culprits keep the drop
		// pipeline from ever running. Compound mode always cross-checks
		// cumulative loss evidence so persistent gray loss accumulates rank
		// across diagnoses even when each one also has a latency story.
		runDrop = a.hasDropEvidence(d)
	}
	out := lat
	if runDrop {
		drop := a.analyzeDrop(d)
		if len(lat) == 0 {
			out = drop
		} else {
			out = MergeRanked([][]Culprit{lat, drop})
		}
	}
	// Degraded mode: a partial collection (missing sinks) still yields a
	// ranking, but every culprit carries the data coverage behind it so
	// the operator — and the merge across diagnoses — can weigh it. The
	// codec decoder's reconstruction confidence folds in the same way: a
	// probabilistic or subsampled encoding weakens confidence without
	// changing the ranking.
	conf := d.Coverage() * d.ReconstructionConfidence()
	for i := range out {
		out[i].Confidence = conf
	}
	return out
}

// dropMargin is the count-mismatch tolerance: absolute floor plus a
// relative allowance for epoch-boundary in-flight packets (mirrors the
// data plane's trigger).
func (a *Analyzer) dropMargin(sourceCount uint32) uint32 {
	m := a.Cfg.DropCountThreshold
	if rel := sourceCount / 8; rel > m {
		m = rel
	}
	return m
}

// recent reports whether a record falls inside the trusted drop-evidence
// window of this diagnosis.
func (a *Analyzer) recent(d controlplane.Diagnosis, r dataplane.RTRecord) bool {
	return a.Cfg.RecentWindow <= 0 || r.Arrival >= d.Time-a.Cfg.RecentWindow
}

// dropAffectedFlows identifies flows with genuine loss in the recent
// window. Per-epoch count mismatches are summed per flow: a sudden
// latency shift displaces packets across one epoch boundary (deficit one
// epoch, surplus the next, cancelling), while real loss accumulates.
// Epoch gaps (missing telemetry packets) count as direct evidence.
func (a *Analyzer) dropAffectedFlows(d controlplane.Diagnosis) map[dataplane.FlowID]bool {
	type agg struct {
		src, sink uint64
		gap       bool
		seen      map[uint32]bool
	}
	byFlow := make(map[dataplane.FlowID]*agg)
	for _, r := range d.Records {
		if !a.recent(d, r) {
			continue
		}
		f := byFlow[r.Flow]
		if f == nil {
			f = &agg{seen: make(map[uint32]bool)}
			byFlow[r.Flow] = f
		}
		if r.EpochGap > 0 {
			f.gap = true
		}
		// A flow can have several records per epoch (one per path); counts
		// are flow-level, so take each epoch once.
		if !f.seen[r.Epoch] {
			f.seen[r.Epoch] = true
			f.src += uint64(r.SourceCount)
			f.sink += uint64(r.SinkCount)
		}
	}
	affected := make(map[dataplane.FlowID]bool)
	for _, flow := range det.KeysFunc(byFlow, flowLess) {
		f := byFlow[flow]
		if f.gap {
			affected[flow] = true
			continue
		}
		margin := uint64(a.dropMargin(uint32(min64(f.src, 1<<31))))
		if f.src > f.sink+margin {
			affected[flow] = true
		}
	}
	return affected
}

// Note: the data plane's per-epoch trigger is deliberately jumpy (a switch
// cannot afford history); the functions above re-verify its claim against
// the cumulative window before any drop diagnosis runs.

func min64(a uint64, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// hasDropEvidence reports whether the diagnosis carries recent cumulative
// drop indicators. The trigger kind alone is NOT trusted: a switch's
// single-epoch count comparison false-fires on latency displacement, and
// only sustained deficits in the collected data count as loss.
func (a *Analyzer) hasDropEvidence(d controlplane.Diagnosis) bool {
	return len(a.dropAffectedFlows(d)) > 0
}

// decode resolves a record's PathID to its switch path.
func (a *Analyzer) decode(r dataplane.RTRecord) (topology.Path, bool) {
	return a.Paths.Lookup(r.Flow.Sink, r.PathID)
}

// estimate expands records into estimated packets (Alg. 2) and classifies
// them against the dynamic thresholds.
func (a *Analyzer) estimate(records []dataplane.RTRecord) []estPacket {
	var out []estPacket
	for _, r := range records {
		path, ok := a.decode(r)
		if !ok {
			continue
		}
		n := int(r.PathCount)
		if n < 1 {
			n = 1 // the telemetry packet itself
		}
		if n > a.Cfg.MaxEstimatePerRecord {
			n = a.Cfg.MaxEstimatePerRecord
		}
		abnormal := false
		if a.Thr != nil {
			abnormal = r.Latency > a.Thr.ThresholdOf(r.Flow)
		}
		for i := 0; i < n; i++ {
			out = append(out, estPacket{flow: r.Flow, path: path, latency: r.Latency, abnormal: abnormal})
		}
	}
	return out
}

// minePatterns runs FSM over the abnormal paths and scores each pattern
// with SBFL over both sets.
func (a *Analyzer) minePatterns(abnormal, normal []estPacket) []scoredPattern {
	if len(abnormal) == 0 {
		return nil
	}
	db := make(fsm.Dataset, len(abnormal))
	for i, p := range abnormal {
		seq := make(fsm.Sequence, len(p.path))
		for j, sw := range p.path {
			seq[j] = fsm.Item(sw)
		}
		db[i] = seq
	}
	patterns := a.Cfg.Miner.Mine(db, fsm.Params{
		MinRelSupport: a.Cfg.MinRelSupport,
		MaxLen:        a.Cfg.MaxPatternLen,
	})
	out := make([]scoredPattern, 0, len(patterns))
	for _, pat := range patterns {
		sub := make([]topology.NodeID, len(pat.Items))
		for i, it := range pat.Items {
			sub[i] = topology.NodeID(it)
		}
		spec := sbfl.Build(len(abnormal), len(normal),
			func(i int) bool { return abnormal[i].path.Contains(sub) },
			func(i int) bool { return normal[i].path.Contains(sub) })
		out = append(out, scoredPattern{
			sub:   sub,
			score: a.Cfg.Formula(spec),
			npf:   spec.Npf,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		// Longer (more specific) patterns first among ties, then by ID.
		if len(out[i].sub) != len(out[j].sub) {
			return len(out[i].sub) > len(out[j].sub)
		}
		return lessPath(out[i].sub, out[j].sub)
	})
	return out
}

type scoredPattern struct {
	sub   []topology.NodeID
	score float64
	npf   float64 // abnormal packets covering the pattern
}

func lessPath(a, b []topology.NodeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// rank finalizes a culprit list: sort by score descending with
// deterministic tie-breaking.
func rank(cs []Culprit) []Culprit {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		if len(cs[i].Location) != len(cs[j].Location) {
			return len(cs[i].Location) > len(cs[j].Location)
		}
		if !pathEq(cs[i].Location, cs[j].Location) {
			return lessPath(cs[i].Location, cs[j].Location)
		}
		return cs[i].Cause < cs[j].Cause
	})
	return cs
}

func pathEq(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
