package rca

import (
	"testing"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
)

// fixture builds a K=4 fat-tree with its PathID table and a fixed
// per-flow threshold of 10 ms.
type fixture struct {
	ft    *topology.FatTree
	table *pathid.Table
}

type fixedThr netsim.Time

func (f fixedThr) ThresholdOf(dataplane.FlowID) netsim.Time { return netsim.Time(f) }

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	table, err := pathid.BuildTable(pathid.DefaultConfig(), ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ft: ft, table: table}
}

// record builds an RTRecord for a concrete path with the given telemetry.
func (f *fixture) record(t *testing.T, path topology.Path, epoch uint32, latency netsim.Time, count uint32, qdepth uint32) dataplane.RTRecord {
	t.Helper()
	id, ok := f.table.FinalID(path)
	if !ok {
		t.Fatalf("no PathID for %v", path)
	}
	return dataplane.RTRecord{
		Flow:            dataplane.FlowID{Src: path[0], Sink: path[len(path)-1]},
		PathID:          id,
		Epoch:           epoch,
		Latency:         latency,
		SourceCount:     count,
		SinkCount:       count,
		PathCount:       count,
		TotalQueueDepth: qdepth,
		Arrival:         netsim.Time(epoch) * 100 * netsim.Millisecond,
	}
}

func analyzer(f *fixture) *Analyzer {
	return New(DefaultConfig(), f.table, fixedThr(10*netsim.Millisecond))
}

const (
	okLatency  = 2 * netsim.Millisecond
	badLatency = 50 * netsim.Millisecond
)

func TestDelayLocalization(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	// The culprit: core switch on cross-pod paths. Flows crossing it see
	// high latency with NO queue buildup; other flows are fine.
	e := f.ft.EdgeIDs
	culprit := f.ft.CoreIDs[0]

	var recs []dataplane.RTRecord
	var crossPaths []topology.Path
	// All cross-pod paths through the culprit core.
	for _, src := range e {
		for _, dst := range e {
			if src == dst {
				continue
			}
			for _, p := range f.ft.AllShortestPaths(src, dst) {
				if p.Contains([]topology.NodeID{culprit}) {
					crossPaths = append(crossPaths, p)
				}
			}
		}
	}
	if len(crossPaths) < 4 {
		t.Fatalf("only %d paths through core", len(crossPaths))
	}
	for i, p := range crossPaths[:6] {
		for ep := uint32(1); ep <= 3; ep++ {
			recs = append(recs, f.record(t, p, ep, badLatency, 20, 1))
		}
		_ = i
	}
	// Healthy flows elsewhere (avoiding the culprit).
	for _, p := range f.ft.AllShortestPaths(e[0], e[1]) {
		for ep := uint32(1); ep <= 3; ep++ {
			recs = append(recs, f.record(t, p, ep, okLatency, 20, 1))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	top := got[0]
	if top.Cause != CauseDelay {
		t.Errorf("top cause = %v, want delay\nlist: %v", top.Cause, got[:minInt(3, len(got))])
	}
	if !top.ContainsSwitch(culprit) {
		t.Errorf("top culprit %v does not contain s%d", top, culprit)
	}
}

func TestProcessRateLocalization(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	// Slow port on the link agg -> core: flows over that link see high
	// latency WITH queue buildup.
	aggSw := f.ft.AggIDs[0]
	coreSw := f.ft.CoreIDs[0]
	link := []topology.NodeID{aggSw, coreSw}

	var recs []dataplane.RTRecord
	var hit, miss []topology.Path
	for _, src := range f.ft.EdgeIDs {
		for _, dst := range f.ft.EdgeIDs {
			if src == dst {
				continue
			}
			for _, p := range f.ft.AllShortestPaths(src, dst) {
				if p.Contains(link) {
					hit = append(hit, p)
				} else {
					miss = append(miss, p)
				}
			}
		}
	}
	for _, p := range hit[:minInt(6, len(hit))] {
		for ep := uint32(1); ep <= 3; ep++ {
			recs = append(recs, f.record(t, p, ep, badLatency, 20, 30))
		}
	}
	for _, p := range miss[:10] {
		for ep := uint32(1); ep <= 3; ep++ {
			recs = append(recs, f.record(t, p, ep, okLatency, 20, 1))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	rank := -1
	for i, c := range got {
		if c.Cause == CauseProcessRate && c.ContainsSwitch(aggSw) {
			rank = i + 1
			break
		}
	}
	if rank < 1 || rank > 2 {
		t.Errorf("process-rate at s%d ranked %d\nlist: %v", aggSw, rank, got[:minInt(4, len(got))])
	}
}

func TestECMPLocalizationBlamesUpstream(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	// Edge e0 splits unevenly between its two aggs: 9x traffic through
	// agg1, whose queue congests. The culprit must be e0, not agg1.
	e0 := f.ft.EdgeIDs[0]
	dst := f.ft.EdgeIDs[2] // cross-pod
	paths := f.ft.AllShortestPaths(e0, dst)
	if len(paths) != 4 {
		t.Fatalf("paths = %d", len(paths))
	}
	agg0 := paths[0][1]
	var heavy, light []topology.Path
	for _, p := range paths {
		if p[1] == agg0 {
			light = append(light, p)
		} else {
			heavy = append(heavy, p)
		}
	}
	var recs []dataplane.RTRecord
	for ep := uint32(1); ep <= 4; ep++ {
		for _, p := range heavy {
			recs = append(recs, f.record(t, p, ep, badLatency, 45, 25))
		}
		for _, p := range light {
			recs = append(recs, f.record(t, p, ep, okLatency, 5, 1))
		}
	}
	// A second flow through the skewed switch votes for the same upstream
	// divergence (a real skew affects every flow crossing it).
	dst2 := f.ft.EdgeIDs[4]
	for _, p := range f.ft.AllShortestPaths(e0, dst2) {
		for ep := uint32(1); ep <= 4; ep++ {
			if p[1] == agg0 {
				recs = append(recs, f.record(t, p, ep, okLatency, 5, 1))
			} else {
				recs = append(recs, f.record(t, p, ep, badLatency, 45, 25))
			}
		}
	}
	// Background healthy flows elsewhere.
	for _, p := range f.ft.AllShortestPaths(f.ft.EdgeIDs[4], f.ft.EdgeIDs[6]) {
		for ep := uint32(1); ep <= 4; ep++ {
			recs = append(recs, f.record(t, p, ep, okLatency, 20, 1))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	rank := -1
	for i, c := range got {
		if c.Cause == CauseECMPImbalance && c.ContainsSwitch(e0) {
			rank = i + 1
			break
		}
	}
	if rank < 1 || rank > 3 {
		t.Errorf("ECMP at e0 (s%d) ranked %d\nlist: %v", e0, rank, got[:minInt(5, len(got))])
	}
}

func TestMicroBurstLocalization(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	e0, e2 := f.ft.EdgeIDs[0], f.ft.EdgeIDs[2]
	burstPath := f.ft.AllShortestPaths(e0, e2)[0]
	burstFlow := dataplane.FlowID{Src: e0, Sink: e2}

	var recs []dataplane.RTRecord
	// Quiet history then a 10x spike with queueing and latency.
	for ep := uint32(1); ep <= 3; ep++ {
		recs = append(recs, f.record(t, burstPath, ep, okLatency, 20, 1))
	}
	for ep := uint32(4); ep <= 8; ep++ {
		recs = append(recs, f.record(t, burstPath, ep, badLatency, 200, 30))
	}
	// Innocent flows sharing part of the path.
	for _, p := range f.ft.AllShortestPaths(e0, f.ft.EdgeIDs[1]) {
		for ep := uint32(1); ep <= 4; ep++ {
			recs = append(recs, f.record(t, p, ep, okLatency, 20, 1))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency, Flow: burstFlow},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	top := got[0]
	if top.Cause != CauseMicroBurst || top.Flow != burstFlow {
		t.Errorf("top = %v, want micro-burst %v", top, burstFlow)
	}
	if top.Level != LevelFlow {
		t.Errorf("level = %v, want flow", top.Level)
	}
}

func TestDropLocalization(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	// Drop on link agg0 -> core0: flows over it show source/sink count
	// mismatch; unrelated flows are clean.
	aggSw := f.ft.AggIDs[0]
	coreSw := f.ft.CoreIDs[0]
	link := []topology.NodeID{aggSw, coreSw}

	var recs []dataplane.RTRecord
	added := 0
	for _, src := range f.ft.EdgeIDs {
		for _, dst := range f.ft.EdgeIDs {
			if src == dst || added >= 6 {
				continue
			}
			for _, p := range f.ft.AllShortestPaths(src, dst) {
				if p.Contains(link) {
					r := f.record(t, p, 3, okLatency, 40, 1)
					r.SinkCount = 10 // 30 packets lost
					recs = append(recs, r)
					added++
					break
				}
			}
		}
	}
	if added < 3 {
		t.Fatalf("only %d affected flows", added)
	}
	for _, p := range f.ft.AllShortestPaths(f.ft.EdgeIDs[4], f.ft.EdgeIDs[6]) {
		recs = append(recs, f.record(t, p, 3, okLatency, 20, 1))
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyDrop},
		Records: recs,
	})
	if len(got) == 0 {
		t.Fatal("no culprits")
	}
	rank := -1
	for i, c := range got {
		if c.Cause == CauseDrop && (c.ContainsSwitch(aggSw) || c.ContainsSwitch(coreSw)) {
			rank = i + 1
			break
		}
	}
	if rank != 1 {
		t.Errorf("drop at link ranked %d\nlist: %v", rank, got[:minInt(4, len(got))])
	}
	for _, c := range got {
		if c.Cause != CauseDrop {
			t.Errorf("drop diagnosis produced non-drop cause %v", c)
		}
	}
}

func TestEmptyDiagnosis(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
	})
	if len(got) != 0 {
		t.Errorf("empty diagnosis produced %d culprits", len(got))
	}
}

func TestAllNormalDiagnosis(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	var recs []dataplane.RTRecord
	for _, p := range f.ft.AllShortestPaths(f.ft.EdgeIDs[0], f.ft.EdgeIDs[1]) {
		recs = append(recs, f.record(t, p, 1, okLatency, 20, 1))
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	if len(got) != 0 {
		t.Errorf("all-normal diagnosis produced %d culprits: %v", len(got), got)
	}
}

func TestRankedScoresDescending(t *testing.T) {
	f := newFixture(t)
	a := analyzer(f)
	var recs []dataplane.RTRecord
	for i, src := range f.ft.EdgeIDs {
		dst := f.ft.EdgeIDs[(i+3)%8]
		for _, p := range f.ft.AllShortestPaths(src, dst)[:1] {
			lat := okLatency
			if i%2 == 0 {
				lat = badLatency
			}
			recs = append(recs, f.record(t, p, 1, lat, 20, 12))
		}
	}
	got := a.Analyze(controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency},
		Records: recs,
	})
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not descending at %d: %v", i, got)
		}
	}
}

func TestMergeCulpritsRules(t *testing.T) {
	flowA := dataplane.FlowID{Src: 1, Sink: 2}
	in := []Culprit{
		{Cause: CauseMicroBurst, Level: LevelFlow, Flow: flowA, Score: 3, Location: []topology.NodeID{5}},
		{Cause: CauseMicroBurst, Level: LevelFlow, Flow: flowA, Score: 7, Location: []topology.NodeID{6}},
		{Cause: CauseDelay, Level: LevelSwitch, Location: []topology.NodeID{9}, Score: 2},
		{Cause: CauseDelay, Level: LevelSwitch, Location: []topology.NodeID{9}, Score: 2.5},
	}
	out := mergeCulprits(in)
	if len(out) != 2 {
		t.Fatalf("merged = %d entries: %v", len(out), out)
	}
	for _, c := range out {
		switch c.Cause {
		case CauseMicroBurst:
			if c.Score != 7 || c.Location[0] != 6 {
				t.Errorf("flow merge = %v, want max score 7 at s6", c)
			}
		case CauseDelay:
			if c.Score != 4.5 {
				t.Errorf("switch merge = %v, want sum 4.5", c)
			}
		}
	}
}

func TestMergePortLevelCollapse(t *testing.T) {
	in := []Culprit{
		{Cause: CauseProcessRate, Level: LevelPort, Location: []topology.NodeID{4, 7}, Score: 2},
		{Cause: CauseProcessRate, Level: LevelPort, Location: []topology.NodeID{4, 8}, Score: 3},
		{Cause: CauseDrop, Level: LevelPort, Location: []topology.NodeID{4, 7}, Score: 1},
	}
	out := mergeCulprits(in)
	var collapsed *Culprit
	for i := range out {
		if out[i].Cause == CauseProcessRate {
			if out[i].Level != LevelSwitch {
				t.Fatalf("process-rate entries not collapsed: %v", out)
			}
			collapsed = &out[i]
		}
	}
	if collapsed == nil || collapsed.Score != 5 || collapsed.Location[0] != 4 {
		t.Errorf("collapsed = %v, want switch-level s4 score 5", collapsed)
	}
	// The single drop port entry must survive untouched.
	found := false
	for _, c := range out {
		if c.Cause == CauseDrop && c.Level == LevelPort {
			found = true
		}
	}
	if !found {
		t.Error("single-port drop entry lost")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
