package rca

import (
	"sort"

	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/det"
	"mars/internal/topology"
)

// flowLess orders FlowIDs for deterministic iteration over flow-keyed maps.
func flowLess(a, b dataplane.FlowID) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Sink < b.Sink
}

// flowStats summarizes one flow's diagnosis data for signature matching.
type flowStats struct {
	// epochCounts maps telemetry epoch -> source-side packet count.
	epochCounts map[uint32]uint32
	// pathCounts maps decoded path (by key) -> packets across records.
	pathCounts map[string]float64
	paths      map[string]topology.Path
	// maxQueueDepth is the largest accumulated queue depth seen.
	maxQueueDepth uint32
	// abnormalQueueDepths collects depths of the flow's over-threshold
	// records; the congestion signature uses their median, which is robust
	// to a single queue blip.
	abnormalQueueDepths []float64
	// pathAbnormal maps decoded path (by key) -> estimated over-threshold
	// packets along that path. The link-degrade signature uses it to find
	// degradation evidence on an ECMP branch that carries little traffic.
	pathAbnormal map[string]float64
	// epochSinks maps telemetry epoch -> sink-side packet count, and
	// gapEpochs marks epochs whose records reported telemetry gaps; the
	// flap signature reads per-epoch loss on/off transitions from them.
	epochSinks map[uint32]uint32
	gapEpochs  map[uint32]bool
	// minEpoch is the earliest epoch among the flow's records, used to
	// spot flows that appeared mid-window (candidate bursts).
	minEpoch uint32
	hasEpoch bool
}

// abnormalQueueMedian returns the median depth among abnormal records.
func (fs *flowStats) abnormalQueueMedian() float64 {
	if len(fs.abnormalQueueDepths) == 0 {
		return 0
	}
	s := make([]float64, len(fs.abnormalQueueDepths))
	copy(s, fs.abnormalQueueDepths)
	sort.Float64s(s)
	return s[len(s)/2]
}

// sinkEpochRange tracks the telemetry epochs covered by one sink's Ring
// Table snapshot; a flow missing from an in-range epoch provably sent
// nothing that epoch (every active epoch marks a telemetry packet).
type sinkEpochRange struct {
	min, max uint32
	valid    bool
}

// collectSinkRanges computes the covered epoch window per sink switch.
func collectSinkRanges(records []dataplane.RTRecord) map[topology.NodeID]*sinkEpochRange {
	out := make(map[topology.NodeID]*sinkEpochRange)
	for _, r := range records {
		sr := out[r.Flow.Sink]
		if sr == nil {
			sr = &sinkEpochRange{}
			out[r.Flow.Sink] = sr
		}
		if !sr.valid {
			sr.min, sr.max, sr.valid = r.Epoch, r.Epoch, true
			continue
		}
		if r.Epoch < sr.min {
			sr.min = r.Epoch
		}
		if r.Epoch > sr.max {
			sr.max = r.Epoch
		}
	}
	return out
}

// collectFlowStats indexes the diagnosis records per flow.
func (a *Analyzer) collectFlowStats(records []dataplane.RTRecord) map[dataplane.FlowID]*flowStats {
	stats := make(map[dataplane.FlowID]*flowStats)
	for _, r := range records {
		fs := stats[r.Flow]
		if fs == nil {
			fs = &flowStats{
				epochCounts:  make(map[uint32]uint32),
				pathCounts:   make(map[string]float64),
				paths:        make(map[string]topology.Path),
				pathAbnormal: make(map[string]float64),
				epochSinks:   make(map[uint32]uint32),
				gapEpochs:    make(map[uint32]bool),
			}
			stats[r.Flow] = fs
		}
		if r.SourceCount > fs.epochCounts[r.Epoch] {
			fs.epochCounts[r.Epoch] = r.SourceCount
		}
		if r.SinkCount > fs.epochSinks[r.Epoch] {
			fs.epochSinks[r.Epoch] = r.SinkCount
		}
		if r.EpochGap > 0 {
			fs.gapEpochs[r.Epoch] = true
		}
		abnormal := a.Thr != nil && r.Latency > a.Thr.ThresholdOf(r.Flow)
		if path, ok := a.decode(r); ok {
			k := path.String()
			fs.pathCounts[k] += float64(r.PathCount) + 1
			fs.paths[k] = path
			if abnormal {
				fs.pathAbnormal[k] += float64(r.PathCount) + 1
			}
		}
		if r.TotalQueueDepth > fs.maxQueueDepth {
			fs.maxQueueDepth = r.TotalQueueDepth
		}
		if !fs.hasEpoch || r.Epoch < fs.minEpoch {
			fs.minEpoch = r.Epoch
			fs.hasEpoch = true
		}
		if abnormal {
			fs.abnormalQueueDepths = append(fs.abnormalQueueDepths, float64(r.TotalQueueDepth))
		}
	}
	return stats
}

// peakAndBaseline returns the peak per-epoch source count and the flow's
// quiet baseline: the 25th percentile of its recorded epoch rates. Missing
// epochs are NOT treated as zero-rate silence — ring eviction and
// fault-delayed telemetry also produce gaps, and padding them with zeros
// fabricates burstiness for perfectly steady flows.
func (fs *flowStats) peakAndBaseline() (peak uint32, base float64) {
	if len(fs.epochCounts) == 0 {
		return 0, 0
	}
	counts := make([]float64, 0, len(fs.epochCounts))
	//mars:mapiter-ok peak is a pure maximum and counts is fully sorted before use
	for _, c := range fs.epochCounts {
		if c > peak {
			peak = c
		}
		counts = append(counts, float64(c))
	}
	sort.Float64s(counts)
	return peak, counts[len(counts)/4]
}

// globalMedianEpochCount is the baseline rate across all flows, used to
// judge burstiness of flows without their own history.
func globalMedianEpochCount(stats map[dataplane.FlowID]*flowStats) float64 {
	var all []float64
	for _, fs := range stats {
		//mars:mapiter-ok all is fully sorted before use
		for _, c := range fs.epochCounts {
			all = append(all, float64(c))
		}
	}
	if len(all) == 0 {
		return 0
	}
	sort.Float64s(all)
	n := len(all)
	if n%2 == 1 {
		return all[n/2]
	}
	return (all[n/2-1] + all[n/2]) / 2
}

// isBursty applies the micro-burst signature: the flow's peak epoch rate
// rises sharply over its own quiet baseline — or, for a flow that only
// appeared mid-window at its sink (a transient flow with no history of
// its own), over the network-wide median rate with the relaxed factor.
func (a *Analyzer) isBursty(fs *flowStats, window *sinkEpochRange, globalMed float64) bool {
	peak, base := fs.peakAndBaseline()
	if base < 1 {
		base = 1
	}
	if len(fs.epochCounts) >= 3 && float64(peak) >= a.Cfg.BurstFactor*base {
		return true
	}
	// Absolute test: the paper defines micro-bursts by sheer rate ("over
	// 1000 pps" against ~200 pps background). It applies to flows that
	// appeared mid-window at their sink (new transient flows — the ring
	// evicts all flows' records chronologically, so a late first record
	// means the flow genuinely did not exist before) and to flows whose
	// rate at least doubled.
	newAtSink := window != nil && window.valid && fs.hasEpoch && fs.minEpoch >= window.min+2
	if a.Cfg.BurstPPS > 0 && a.Cfg.EpochDuration > 0 {
		peakPPS := float64(peak) / a.Cfg.EpochDuration.Seconds()
		if peakPPS >= a.Cfg.BurstPPS && (newAtSink || float64(peak) >= 2*base) {
			return true
		}
	}
	// Relative fallback against the network-wide median for new flows
	// below the absolute rate floor.
	if newAtSink {
		gm := globalMed
		if gm < 1 {
			gm = 1
		}
		return float64(peak) >= a.Cfg.BurstFactorNew*gm
	}
	return false
}

// ecmpDivergence finds the switch whose equal-cost split over this flow's
// paths is most imbalanced AND whose overloaded branch leads directly into
// `next` (the congested pattern head). It returns ok=false if no
// divergence reaches the configured ratio.
func (a *Analyzer) ecmpDivergence(fs *flowStats, next topology.NodeID) (topology.NodeID, float64, bool) {
	// Build a prefix tree of the flow's paths weighted by packet counts.
	type nodeKey struct {
		depth int
		sw    topology.NodeID
	}
	// children[parent][child switch] = accumulated count via that branch.
	children := make(map[nodeKey]map[topology.NodeID]float64)
	for _, k := range det.Keys(fs.pathCounts) {
		cnt := fs.pathCounts[k]
		path := fs.paths[k]
		for i := 0; i+1 < len(path); i++ {
			pk := nodeKey{i, path[i]}
			m := children[pk]
			if m == nil {
				m = make(map[topology.NodeID]float64)
				children[pk] = m
			}
			m[path[i+1]] += cnt
		}
	}
	var bestSw topology.NodeID
	var bestRatio float64
	found := false
	for _, pk := range det.KeysFunc(children, func(a, b nodeKey) bool {
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.sw < b.sw
	}) {
		m := children[pk]
		if len(m) < 2 {
			continue
		}
		var max, min float64
		var heavy topology.NodeID
		first := true
		for _, child := range det.Keys(m) {
			cnt := m[child]
			if first || cnt > max {
				max = cnt
				heavy = child
			}
			if first || cnt < min {
				min = cnt
			}
			first = false
		}
		if min <= 0 {
			min = 1
		}
		ratio := max / min
		if ratio < a.Cfg.ImbalanceRatio {
			continue
		}
		// The overloaded branch must feed the congested switch for the
		// blame to transfer upstream (§4.4.4's s9 -> s1 example).
		if heavy != next {
			continue
		}
		if !found || ratio > bestRatio {
			bestSw, bestRatio, found = pk.sw, ratio, true
		}
	}
	return bestSw, bestRatio, found
}

// ecmpUpstream tries the ECMP signature against every switch of the
// pattern (the congestion may sit at either end of a link pattern) and
// returns the best upstream divergence switch.
func (a *Analyzer) ecmpUpstream(fs *flowStats, sub []topology.NodeID) (topology.NodeID, bool) {
	var best topology.NodeID
	var bestRatio float64
	found := false
	for _, next := range sub {
		if up, ratio, ok := a.ecmpDivergence(fs, next); ok {
			if !found || ratio > bestRatio {
				best, bestRatio, found = up, ratio, true
			}
		}
	}
	return best, found
}

// DebugTrace, when set, receives per-(pattern, flow) signature inputs.
// Test-only instrumentation.
var DebugTrace func(flow dataplane.FlowID, sub []topology.NodeID, peak uint32, base float64, epochs int, qmed, baseQ float64)

// analyzeLatency is the high-latency diagnosis path (§4.4.1-4.4.4).
func (a *Analyzer) analyzeLatency(d controlplane.Diagnosis) []Culprit {
	est := a.estimate(d.Records)
	var abnormal, normal []estPacket
	for _, p := range est {
		if p.abnormal {
			abnormal = append(abnormal, p)
		} else {
			normal = append(normal, p)
		}
	}
	patterns := a.minePatterns(abnormal, normal)
	if len(patterns) == 0 {
		return nil
	}
	stats := a.collectFlowStats(d.Records)
	sinkRanges := collectSinkRanges(d.Records)
	globalMed := globalMedianEpochCount(stats)

	// Noise floor: too few over-threshold records means a transient blip,
	// not a localizable incident. The floor scales with the snapshot size
	// so large collections don't pass on scattered tail noise.
	if a.Cfg.MinAbnormalRecords > 0 && a.Thr != nil {
		n := 0
		for _, r := range d.Records {
			if r.Latency > a.Thr.ThresholdOf(r.Flow) {
				n++
			}
		}
		if n < a.Cfg.MinAbnormalRecords {
			return nil
		}
	}

	// Baseline queue depth from records classified normal: the congestion
	// signature requires abnormal depth to stand out against it.
	var normalDepths []float64
	for _, r := range d.Records {
		if a.Thr == nil || r.Latency <= a.Thr.ThresholdOf(r.Flow) {
			normalDepths = append(normalDepths, float64(r.TotalQueueDepth))
		}
	}
	baseQ := 1.0
	if len(normalDepths) > 0 {
		sort.Float64s(normalDepths)
		if m := normalDepths[len(normalDepths)/2]; m > baseQ {
			baseQ = m
		}
	}
	congested := func(fs *flowStats) bool {
		m := fs.abnormalQueueMedian()
		return m >= float64(a.Cfg.QueueCongested) && m >= a.Cfg.CongestionFactor*baseQ
	}

	// Alg. 3: for every culprit pattern, inspect the flows that traverse
	// it in the diagnosis data (all flows, not only flagged ones — the
	// offending micro-burst flow may be too new to have a calibrated
	// threshold) and assign the pattern's cause by signature matching.
	var culprits []Culprit
	for _, sp := range patterns {
		if sp.score <= 0 {
			continue
		}
		flowPkts := make(map[dataplane.FlowID]float64)
		var total float64
		for _, flow := range det.KeysFunc(stats, flowLess) {
			fs := stats[flow]
			var cnt float64
			for _, k := range det.Keys(fs.pathCounts) {
				if fs.paths[k].Contains(sp.sub) {
					cnt += fs.pathCounts[k]
				}
			}
			if cnt > 0 {
				flowPkts[flow] = cnt
				total += cnt
			}
		}
		if total == 0 {
			continue
		}

		// Operator-registered signatures run first (§5.6's extension
		// point); any match claims the pattern.
		if ext := a.runExtensions(sp, flowPkts, stats, baseQ, globalMed); len(ext) > 0 {
			culprits = append(culprits, ext...)
			continue
		}

		// Micro-burst signature first: a bursting flow through the pattern
		// explains the congestion, so it claims the pattern (weighted by
		// its packet share) and suppresses spurious switch-level causes.
		burstFound := false
		for _, flow := range det.KeysFunc(flowPkts, flowLess) {
			cnt := flowPkts[flow]
			fs := stats[flow]
			if DebugTrace != nil {
				peak, base := fs.peakAndBaseline()
				DebugTrace(flow, sp.sub, peak, base, len(fs.epochCounts), fs.abnormalQueueMedian(), baseQ)
			}
			if a.isBursty(fs, sinkRanges[flow.Sink], globalMed) {
				burstFound = true
				culprits = append(culprits, Culprit{
					Cause:    CauseMicroBurst,
					Level:    LevelFlow,
					Flow:     flow,
					Location: append([]topology.NodeID{}, sp.sub...),
					Score:    sp.score * (cnt / total),
				})
			}
		}
		if burstFound {
			continue
		}

		// Queue-buildup signatures: pool the traversing flows' abnormal
		// queue observations.
		var depths []float64
		//mars:mapiter-ok depths is fully sorted before use
		for flow := range flowPkts {
			depths = append(depths, stats[flow].abnormalQueueDepths...)
		}
		sort.Float64s(depths)
		patternCongested := len(depths) > 0 &&
			depths[len(depths)/2] >= float64(a.Cfg.QueueCongested) &&
			depths[len(depths)/2] >= a.Cfg.CongestionFactor*baseQ

		c := Culprit{Score: sp.score, Location: append([]topology.NodeID{}, sp.sub...)}
		if patternCongested {
			// ECMP check across traversing flows. A single aggregated flow
			// with few subflows is naturally lumpy over its equal-cost
			// paths, so a divergence switch is blamed only when at least
			// two independent flows vote for the same upstream culprit.
			votes := make(map[topology.NodeID]int)
			weight := make(map[topology.NodeID]float64)
			for _, flow := range det.KeysFunc(flowPkts, flowLess) {
				if u, ok := a.ecmpUpstream(stats[flow], sp.sub); ok {
					votes[u]++
					weight[u] += flowPkts[flow]
				}
			}
			var up topology.NodeID
			found := false
			best := 0.0
			for _, u := range det.Keys(votes) {
				if n := votes[u]; n >= 2 && weight[u] > best {
					up, found, best = u, true, weight[u]
				}
			}
			if found {
				c.Cause = CauseECMPImbalance
				c.Level = LevelSwitch
				c.Location = []topology.NodeID{up}
				// Compound-cause check: if a starved branch out of the
				// divergence switch carries its own degradation evidence,
				// the imbalance is the reaction and the sick link the
				// root; rank the link above the switch.
				if a.Cfg.CompoundCauses {
					if link, ok := a.degradedLightBranch(up, flowPkts, stats); ok {
						culprits = append(culprits, Culprit{
							Cause:    CauseLinkDegrade,
							Level:    LevelPort,
							Location: link,
							Score:    sp.score * compoundBoost,
						})
					}
				}
			} else {
				c.Cause = CauseProcessRate
				if len(sp.sub) == 2 {
					c.Level = LevelPort
				} else {
					c.Level = LevelSwitch
				}
				// Compound-cause check: a congested link whose traversing
				// flows also lose packets is a degraded link, not a slow
				// processing stage — queuing delays packets but never
				// destroys them. Re-label and boost so the sick link wins
				// the ranking over its own downstream symptoms.
				if a.Cfg.CompoundCauses && len(sp.sub) == 2 &&
					a.lossFlowCount(flowPkts, stats) >= 2 {
					c.Cause = CauseLinkDegrade
					c.Score = sp.score * compoundBoost
				}
			}
		} else {
			c.Cause = CauseDelay
			c.Level = LevelSwitch
			if len(sp.sub) == 2 {
				c.Level = LevelPort
			}
		}
		culprits = append(culprits, c)
	}
	_ = congested
	return rank(mergeCulprits(culprits))
}

// analyzeDrop is the separate drop-diagnosis logic (§4.4.4 "Drop"): the
// affected flows form the abnormal set and a second SBFL instance ranks
// the shared locations.
func (a *Analyzer) analyzeDrop(d controlplane.Diagnosis) []Culprit {
	affected := a.dropAffectedFlows(d)
	if d.Trigger.Kind == dataplane.NotifyDrop {
		affected[d.Trigger.Flow] = true
	}
	est := a.estimate(d.Records)
	var abnormal, normal []estPacket
	for _, p := range est {
		if affected[p.flow] {
			abnormal = append(abnormal, p)
		} else {
			normal = append(normal, p)
		}
	}
	patterns := a.minePatterns(abnormal, normal)
	stats := a.collectFlowStats(d.Records)
	sinkRanges := collectSinkRanges(d.Records)
	globalMed := globalMedianEpochCount(stats)
	var culprits []Culprit
	for _, sp := range patterns {
		if sp.score <= 0 {
			continue
		}
		// Loss caused by a bursting flow overflowing the queue is a
		// micro-burst symptom, not a link failure: attribute the pattern
		// to the burst flow.
		burstFound := false
		for _, flow := range det.KeysFunc(stats, flowLess) {
			fs := stats[flow]
			if !fs.hasEpoch {
				continue
			}
			covers := false
			//mars:mapiter-ok pure existence check; any visit order finds the same answer
			for k := range fs.pathCounts {
				if fs.paths[k].Contains(sp.sub) {
					covers = true
					break
				}
			}
			if covers && a.isBursty(fs, sinkRanges[flow.Sink], globalMed) {
				burstFound = true
				culprits = append(culprits, Culprit{
					Cause:    CauseMicroBurst,
					Level:    LevelFlow,
					Flow:     flow,
					Location: append([]topology.NodeID{}, sp.sub...),
					Score:    sp.score,
				})
			}
		}
		if burstFound {
			continue
		}
		c := Culprit{
			Cause:    CauseDrop,
			Location: append([]topology.NodeID{}, sp.sub...),
			Score:    sp.score * (sp.npf / float64(maxInt(len(abnormal), 1))),
		}
		if len(sp.sub) == 2 {
			c.Level = LevelPort
		} else {
			c.Level = LevelSwitch
		}
		if a.Cfg.CompoundCauses {
			c.Cause = a.classifyDropCause(sp.sub, affected, stats)
		}
		culprits = append(culprits, c)
	}
	return rank(mergeCulprits(culprits))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mergeCulprits applies §4.4.4's merge rules: repeated flow-level causes
// keep their maximum score; other repeated causes sum; and port-level
// causes of the same type on multiple ports of one switch collapse into a
// switch-level cause.
func mergeCulprits(cs []Culprit) []Culprit {
	type key struct {
		cause Cause
		level Level
		loc   string
		flow  dataplane.FlowID
	}
	merged := make(map[key]*Culprit)
	order := make([]key, 0, len(cs))
	for _, c := range cs {
		k := key{cause: c.Cause, level: c.Level, loc: topology.Path(c.Location).String()}
		if c.Level == LevelFlow {
			k.flow = c.Flow
			k.loc = "" // flow identity subsumes location
		}
		if m, ok := merged[k]; ok {
			if c.Level == LevelFlow {
				if c.Score > m.Score {
					m.Score = c.Score
					m.Location = c.Location
				}
			} else {
				m.Score += c.Score
			}
		} else {
			cc := c
			merged[k] = &cc
			order = append(order, k)
		}
	}

	// Port-level collapse: same cause on >= 2 ports of one switch becomes
	// one switch-level culprit with summed score.
	type swKey struct {
		cause Cause
		sw    topology.NodeID
	}
	portGroups := make(map[swKey][]key)
	for _, k := range order {
		m := merged[k]
		if m.Level == LevelPort && len(m.Location) >= 1 {
			g := swKey{m.Cause, m.Location[0]}
			portGroups[g] = append(portGroups[g], k)
		}
	}
	collapsed := make(map[key]bool)
	var extra []Culprit
	for _, g := range det.KeysFunc(portGroups, func(a, b swKey) bool {
		if a.cause != b.cause {
			return a.cause < b.cause
		}
		return a.sw < b.sw
	}) {
		ks := portGroups[g]
		if len(ks) < 2 {
			continue
		}
		var sum float64
		for _, k := range ks {
			sum += merged[k].Score
			collapsed[k] = true
		}
		extra = append(extra, Culprit{
			Cause:    g.cause,
			Level:    LevelSwitch,
			Location: []topology.NodeID{g.sw},
			Score:    sum,
		})
	}

	out := make([]Culprit, 0, len(order)+len(extra))
	for _, k := range order {
		if collapsed[k] {
			continue
		}
		out = append(out, *merged[k])
	}
	out = append(out, extra...)
	// The collapse can mint a switch-level culprit that duplicates an
	// existing one; fold such duplicates with one more merge pass.
	if len(extra) > 0 {
		return mergeOnce(out)
	}
	return out
}

// MergeRanked folds the culprit lists of several diagnoses of the same
// incident into one ranked list (an operator reviews the accumulated
// evidence). Each list is first normalized to a top score of 1 — SBFL
// scores are only comparable within one diagnosis — then duplicate
// culprits merge by the §4.4.4 rules, so persistent culprits accumulate.
func MergeRanked(lists [][]Culprit) []Culprit {
	var all []Culprit
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		max := l[0].Score
		for _, c := range l {
			if c.Score > max {
				max = c.Score
			}
		}
		if max <= 0 {
			max = 1
		}
		for _, c := range l {
			c.Score /= max
			all = append(all, c)
		}
	}
	return rank(mergeOnce(all))
}

// mergeOnce folds exact-duplicate culprits (same cause, level, location,
// flow) by summation. Within a single diagnosis the §4.4.4 max-rule for
// flow-level causes has already been applied by mergeCulprits, so at this
// stage (port-collapse leftovers and cross-diagnosis accumulation) every
// cause kind accumulates evidence the same way — otherwise flow-level
// culprits could never compete with switch-level ones that sum across
// repeated diagnoses.
func mergeOnce(cs []Culprit) []Culprit {
	type key struct {
		cause Cause
		level Level
		loc   string
		flow  dataplane.FlowID
	}
	merged := make(map[key]*Culprit)
	order := make([]key, 0, len(cs))
	for _, c := range cs {
		k := key{c.Cause, c.Level, topology.Path(c.Location).String(), dataplane.FlowID{}}
		if c.Level == LevelFlow {
			k.flow, k.loc = c.Flow, ""
		}
		if m, ok := merged[k]; ok {
			m.Score += c.Score
			// A culprit confirmed by a better-covered diagnosis keeps
			// that diagnosis's confidence.
			if c.Confidence > m.Confidence {
				m.Confidence = c.Confidence
			}
		} else {
			cc := c
			merged[k] = &cc
			order = append(order, k)
		}
	}
	out := make([]Culprit, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	return out
}
