package rca

import (
	"mars/internal/controlplane"
	"mars/internal/dataplane"
	"mars/internal/netsim"
)

// AnalyzeWindow is the streaming entry point: it runs the same latency and
// drop pipelines as Analyze over one sliding window's records, without a
// data-plane trigger to arbitrate between them. A batch diagnosis is
// notification-driven — the trigger kind decides whether the drop pipeline
// runs alongside the latency one. A window has no single trigger, so both
// views are always cross-checked: the latency findings stand, and any
// sustained cumulative drop evidence in the window adds (or supplies) drop
// culprits, merged under the same rules as cross-diagnosis merging.
//
// coverage is the window's record coverage in [0,1]: the fraction of
// offered sink records that survived the unit's bounded-memory sampler.
// It takes the place of a collection's sink coverage and scales every
// culprit's Confidence, so the cross-unit merge keeps the best-covered
// support for each culprit, exactly as the batch path does across partial
// collections.
func (a *Analyzer) AnalyzeWindow(records []dataplane.RTRecord, now netsim.Time, coverage float64) []Culprit {
	d := controlplane.Diagnosis{
		Trigger: dataplane.Notification{Kind: dataplane.NotifyHighLatency, Time: now},
		Records: records,
		Time:    now,
	}
	lat := a.analyzeLatency(d)
	out := lat
	if a.hasDropEvidence(d) {
		drop := a.analyzeDrop(d)
		switch {
		case len(drop) == 0:
			// evidence without a mineable pattern; keep the latency view
		case len(lat) == 0:
			out = drop
		default:
			out = MergeRanked([][]Culprit{lat, drop})
		}
	}
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	for i := range out {
		out[i].Confidence = coverage
	}
	return out
}
