package reservoir

import (
	"math/rand"
	"testing"
)

func fill(t *testing.T, seed int64, vals []float64) *Reservoir {
	t.Helper()
	r := New(DefaultConfig(), rand.New(rand.NewSource(seed)))
	for _, v := range vals {
		r.Input(v)
	}
	return r
}

func ramp(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

// Merging never exceeds the capacity (the byte budget: Volume entries of
// 8 bytes each), whatever the fill levels of the two sides.
func TestMergeRespectsVolumeBudget(t *testing.T) {
	cases := []struct{ na, nb int }{
		{10, 10},     // both small: concatenate
		{200, 3},     // full + sliver
		{200, 200},   // both full
		{3, 200},     // sliver + full
		{1000, 1000}, // both long-running
	}
	for _, c := range cases {
		a := fill(t, 1, ramp(c.na, 100))
		b := fill(t, 2, ramp(c.nb, 500))
		vol := DefaultConfig().Volume
		a.Merge(b)
		if a.Len() > vol {
			t.Fatalf("na=%d nb=%d: merged Len()=%d exceeds Volume=%d", c.na, c.nb, a.Len(), vol)
		}
		want := c.na + c.nb
		if want > vol {
			want = vol
		}
		// Both inputs were below Volume-sized only when na,nb small.
		if c.na <= vol && c.nb <= vol && a.Len() != min(c.na+c.nb, vol) {
			t.Fatalf("na=%d nb=%d: merged Len()=%d, want %d", c.na, c.nb, a.Len(), min(c.na+c.nb, vol))
		}
	}
}

// The merged sample must be drawn from the union of the two samples.
func TestMergeSampleFromUnion(t *testing.T) {
	a := fill(t, 3, ramp(400, 0))
	b := fill(t, 4, ramp(400, 10_000))
	union := map[float64]bool{}
	for _, v := range a.Snapshot() {
		union[v] = true
	}
	for _, v := range b.Snapshot() {
		union[v] = true
	}
	a.Merge(b)
	for _, v := range a.Snapshot() {
		if !union[v] {
			t.Fatalf("merged sample contains %v, absent from both inputs", v)
		}
	}
	// With equal weights roughly half the slots should come from each
	// side; require at least a presence of both.
	var low, high int
	for _, v := range a.Snapshot() {
		if v < 10_000 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("merge took everything from one side: low=%d high=%d", low, high)
	}
}

// Same seeds and same inputs → byte-identical merged sample, and the
// merged statistics remain consistent.
func TestMergeSeededDeterminism(t *testing.T) {
	run := func() ([]float64, float64, int64, int64) {
		a := fill(t, 7, ramp(300, 50))
		b := fill(t, 8, ramp(250, 900))
		a.Merge(b)
		return a.Snapshot(), a.Threshold(), a.Accepted, a.Rejected
	}
	s1, t1, acc1, rej1 := run()
	s2, t2, acc2, rej2 := run()
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample[%d] differs: %v vs %v", i, s1[i], s2[i])
		}
	}
	if t1 != t2 {
		t.Fatalf("thresholds differ: %v vs %v", t1, t2)
	}
	if acc1 != acc2 || rej1 != rej2 {
		t.Fatalf("counters differ: %d/%d vs %d/%d", acc1, rej1, acc2, rej2)
	}
}

// Merging must not mutate the donor.
func TestMergeLeavesOtherIntact(t *testing.T) {
	a := fill(t, 5, ramp(300, 0))
	b := fill(t, 6, ramp(300, 1000))
	before := b.Snapshot()
	beforeAcc, beforeRej := b.Accepted, b.Rejected
	a.Merge(b)
	after := b.Snapshot()
	if len(before) != len(after) {
		t.Fatalf("donor length changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("donor sample[%d] changed: %v vs %v", i, before[i], after[i])
		}
	}
	if b.Accepted != beforeAcc || b.Rejected != beforeRej {
		t.Fatal("donor counters changed")
	}
}

func TestMergeCounters(t *testing.T) {
	a := fill(t, 9, ramp(50, 0))
	b := fill(t, 10, ramp(60, 100))
	wantAcc := a.Accepted + b.Accepted
	wantRej := a.Rejected + b.Rejected
	a.Merge(b)
	if a.Accepted != wantAcc || a.Rejected != wantRej {
		t.Fatalf("counters = %d/%d, want %d/%d", a.Accepted, a.Rejected, wantAcc, wantRej)
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	a := fill(t, 11, ramp(20, 0))
	before := a.Snapshot()
	a.Merge(nil)
	empty := New(DefaultConfig(), rand.New(rand.NewSource(12)))
	a.Merge(empty)
	after := a.Snapshot()
	if len(before) != len(after) {
		t.Fatalf("merge with nil/empty changed sample: %d vs %d", len(before), len(after))
	}
}

// The scratch-buffer refresh must produce the same statistics as a fresh
// computation (guards the allocation-free rewrite of refresh).
func TestRefreshScratchReuseStable(t *testing.T) {
	r := fill(t, 13, ramp(200, 10))
	t1 := r.Threshold()
	m1 := r.Median()
	// Force many dirty/refresh cycles over the same data shape.
	for i := 0; i < 50; i++ {
		r.Input(10 + float64(i%200))
	}
	r2 := fill(t, 13, ramp(200, 10))
	if r2.Threshold() != t1 || r2.Median() != m1 {
		t.Fatalf("recomputed stats differ: thr %v vs %v, med %v vs %v",
			r2.Threshold(), t1, r2.Median(), m1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
