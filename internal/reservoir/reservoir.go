// Package reservoir implements MARS's self-adaptive anomaly detection
// (§4.3.1, Algorithm 1): a per-flow reservoir sample of latency values
// maintains a dynamic threshold θ = median + C·σ. A penalty factor
// α = exp(-c_o) shrinks the probability that data observed during a run of
// consecutive outliers enters the reservoir, so sustained anomalies cannot
// drag the threshold upward.
//
// Note on the published pseudocode: Algorithm 1 as printed resets c_o on
// an outlier and increments it otherwise, which contradicts the
// surrounding text ("as more continuous outliers are detected, the
// possibility that incoming data gets into the reservoir decreases
// severely") and would starve the reservoir of normal samples. PenaltyText
// implements the text's semantics (the default); PenaltyPrinted implements
// the literal pseudocode for the ablation bench; PenaltyOff disables the
// factor entirely (the "reservoir w/o α" baseline of Fig. 8).
package reservoir

import (
	"math"
	"math/rand"
	"sort"
)

// PenaltyMode selects how the penalty factor α is driven.
type PenaltyMode uint8

const (
	// PenaltyText: c_o counts consecutive outliers (resets on normal data);
	// α = exp(-c_o). This is the behaviour the paper's prose describes.
	PenaltyText PenaltyMode = iota
	// PenaltyOff: α = 1 always (classic reservoir sampling).
	PenaltyOff
	// PenaltyPrinted: the literal Algorithm 1 pseudocode (c_o resets on an
	// outlier and counts consecutive normal samples). Kept for the ablation
	// study; not recommended.
	PenaltyPrinted
)

func (m PenaltyMode) String() string {
	switch m {
	case PenaltyText:
		return "penalty"
	case PenaltyOff:
		return "no-penalty"
	case PenaltyPrinted:
		return "penalty-printed"
	default:
		return "unknown"
	}
}

// Scale selects the deviation estimator in θ = median + C·scale.
type Scale uint8

const (
	// ScaleMAD uses 1.4826 x the median absolute deviation — robust: the
	// handful of anomaly samples that slip past the penalty factor cannot
	// inflate the threshold above the anomaly level. This is the default;
	// the paper's prose motivates the median for exactly this robustness.
	ScaleMAD Scale = iota
	// ScaleStddev uses the sample standard deviation, the paper's literal
	// θ = m + C·σ. Kept for the ablation bench: a few extreme outliers in
	// the reservoir can blow σ up and mask the anomaly.
	ScaleStddev
)

func (s Scale) String() string {
	if s == ScaleMAD {
		return "mad"
	}
	return "stddev"
}

// Config parameterizes a Reservoir.
type Config struct {
	// Volume v is the reservoir capacity (number of samples retained).
	Volume int
	// StaticProb p_s is the base replacement probability once full.
	StaticProb float64
	// C scales the deviation term in θ = median + C·σ.
	C float64
	// Scale selects σ's estimator (MAD by default, stddev for ablation).
	Scale Scale
	// Penalty selects the α behaviour.
	Penalty PenaltyMode
	// DefaultThreshold is used before the reservoir has enough data; the
	// paper sets it "at a relatively high level (e.g., 10 seconds) to
	// minimize false positives". Values are unitless here (callers feed
	// nanoseconds).
	DefaultThreshold float64
	// MinSamples is the fill level below which DefaultThreshold applies.
	MinSamples int
}

// DefaultConfig mirrors the paper's setup: θ = m + 3σ and a deliberately
// high default threshold for unknown flows.
func DefaultConfig() Config {
	return Config{
		Volume:           128,
		StaticProb:       0.5,
		C:                3,
		Penalty:          PenaltyText,
		DefaultThreshold: 10e9, // 10 s in ns
		MinSamples:       8,
	}
}

// Reservoir holds the latency sample of one flow and derives its dynamic
// threshold. It is not safe for concurrent use; the controller owns one
// reservoir per flow.
type Reservoir struct {
	cfg  Config
	rng  *rand.Rand
	data []float64
	co   int // consecutive-outlier count (PenaltyText) or its inverse

	// cached statistics, invalidated on mutation
	dirty     bool
	median    float64
	stddev    float64
	threshold float64

	// scratch buffers reused across refreshes so a full reservoir
	// recomputes its threshold without allocating (the stream ingest path
	// refreshes once per observation).
	sortScratch []float64
	devScratch  []float64

	// Observed counters for diagnostics.
	Accepted int64
	Rejected int64
}

// New creates an empty reservoir. rng must not be shared across goroutines.
func New(cfg Config, rng *rand.Rand) *Reservoir {
	if cfg.Volume <= 0 {
		panic("reservoir: volume must be positive")
	}
	if cfg.StaticProb <= 0 || cfg.StaticProb > 1 {
		panic("reservoir: static probability must be in (0,1]")
	}
	return &Reservoir{cfg: cfg, rng: rng, data: make([]float64, 0, cfg.Volume), dirty: true}
}

// Len returns the number of retained samples.
func (r *Reservoir) Len() int { return len(r.data) }

// refresh recomputes median, stddev, and threshold.
func (r *Reservoir) refresh() {
	if !r.dirty {
		return
	}
	r.dirty = false
	n := len(r.data)
	if n < r.cfg.MinSamples {
		r.median, r.stddev = 0, 0
		r.threshold = r.cfg.DefaultThreshold
		return
	}
	sorted := append(r.sortScratch[:0], r.data...)
	r.sortScratch = sorted
	sort.Float64s(sorted)
	if n%2 == 1 {
		r.median = sorted[n/2]
	} else {
		r.median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum, sum2 float64
	for _, v := range r.data {
		sum += v
	}
	mean := sum / float64(n)
	for _, v := range r.data {
		d := v - mean
		sum2 += d * d
	}
	r.stddev = math.Sqrt(sum2 / float64(n))

	scale := r.stddev
	if r.cfg.Scale == ScaleMAD {
		dev := r.devScratch[:0]
		for _, v := range r.data {
			dev = append(dev, math.Abs(v-r.median))
		}
		r.devScratch = dev
		sort.Float64s(dev)
		var mad float64
		if n%2 == 1 {
			mad = dev[n/2]
		} else {
			mad = (dev[n/2-1] + dev[n/2]) / 2
		}
		scale = 1.4826 * mad
		if scale == 0 {
			// Degenerate (more than half the samples identical): fall back
			// to the classical estimator so the threshold is not the bare
			// median.
			scale = r.stddev
		}
	}
	r.threshold = r.median + r.cfg.C*scale
}

// Threshold returns the current dynamic threshold θ.
func (r *Reservoir) Threshold() float64 {
	r.refresh()
	return r.threshold
}

// Median returns the current sample median (0 until MinSamples reached).
func (r *Reservoir) Median() float64 {
	r.refresh()
	return r.median
}

// Stddev returns the current sample standard deviation.
func (r *Reservoir) Stddev() float64 {
	r.refresh()
	return r.stddev
}

// Input feeds one latency observation (Algorithm 1) and reports whether it
// was classified as an outlier against the threshold in force *before*
// this sample was considered for insertion.
func (r *Reservoir) Input(l float64) bool {
	outlier := l > r.Threshold()

	switch r.cfg.Penalty {
	case PenaltyText:
		if outlier {
			r.co++
		} else {
			r.co = 0
		}
	case PenaltyPrinted:
		if outlier {
			r.co = 0
		} else {
			r.co++
		}
	case PenaltyOff:
		r.co = 0
	}
	alpha := math.Exp(-float64(r.co))

	if len(r.data) < r.cfg.Volume {
		r.data = append(r.data, l)
		r.dirty = true
		r.Accepted++
		return outlier
	}
	if r.rng.Float64() < alpha*r.cfg.StaticProb {
		idx := r.rng.Intn(len(r.data))
		r.data[idx] = l
		r.dirty = true
		r.Accepted++
	} else {
		r.Rejected++
	}
	return outlier
}

// Classify tests a latency against the current threshold without feeding
// it into the reservoir (used by the data plane, which holds a copy of θ).
func (r *Reservoir) Classify(l float64) bool { return l > r.Threshold() }

// observed returns the number of samples this reservoir has been offered.
func (r *Reservoir) observed() int64 {
	n := r.Accepted + r.Rejected
	if n < int64(len(r.data)) {
		n = int64(len(r.data))
	}
	return n
}

// Merge folds other's sample into r (distributed reservoir union): the
// per-shard stream reservoirs for one flow combine at the culprit-merge
// step into a single sample that r's threshold statistics then cover.
//
// When the combined samples fit in r's volume they are concatenated;
// otherwise each retained slot is drawn from r's or other's pool with
// probability proportional to how many observations each side has seen —
// the standard weighted merge of two reservoir samples. All randomness
// comes from r's own RNG stream, so the result is a deterministic function
// of (r's state, other's sample, r's seed); other is not modified. r's
// capacity is the byte budget: the merged sample never exceeds
// r.cfg.Volume entries. Observation counters sum; the consecutive-outlier
// run keeps the larger side so the penalty factor stays conservative.
func (r *Reservoir) Merge(other *Reservoir) {
	if other == nil || len(other.data) == 0 {
		if other != nil {
			r.Accepted += other.Accepted
			r.Rejected += other.Rejected
		}
		return
	}
	if len(r.data)+len(other.data) <= r.cfg.Volume {
		r.data = append(r.data, other.data...)
	} else {
		a := append([]float64(nil), r.data...)
		b := append([]float64(nil), other.data...)
		wa, wb := float64(r.observed()), float64(other.observed())
		if wa+wb <= 0 {
			wa, wb = float64(len(a)), float64(len(b))
		}
		k := r.cfg.Volume
		if k > len(a)+len(b) {
			k = len(a) + len(b)
		}
		merged := make([]float64, 0, k)
		pop := func(pool []float64) (float64, []float64) {
			i := r.rng.Intn(len(pool))
			v := pool[i]
			pool[i] = pool[len(pool)-1]
			return v, pool[:len(pool)-1]
		}
		for len(merged) < k {
			var v float64
			switch {
			case len(a) == 0:
				v, b = pop(b)
			case len(b) == 0:
				v, a = pop(a)
			case r.rng.Float64() < wa/(wa+wb):
				v, a = pop(a)
			default:
				v, b = pop(b)
			}
			merged = append(merged, v)
		}
		r.data = append(r.data[:0], merged...)
	}
	r.Accepted += other.Accepted
	r.Rejected += other.Rejected
	if other.co > r.co {
		r.co = other.co
	}
	r.dirty = true
}

// Snapshot returns a copy of the retained samples (for tests and
// introspection).
func (r *Reservoir) Snapshot() []float64 {
	out := make([]float64, len(r.data))
	copy(out, r.data)
	return out
}

// StaticDetector is the fixed-threshold strawman of Fig. 8: anything above
// Threshold is an anomaly.
type StaticDetector struct {
	Threshold float64
}

// Input implements the same reporting contract as Reservoir.Input.
func (s *StaticDetector) Input(l float64) bool { return l > s.Threshold }

// Classify tests without side effects (static detectors have none).
func (s *StaticDetector) Classify(l float64) bool { return l > s.Threshold }

// Detector abstracts the dynamic and static classifiers for the Fig. 8
// comparison harness.
type Detector interface {
	// Input observes one sample and reports whether it is anomalous.
	Input(l float64) bool
	// Classify tests a sample without recording it.
	Classify(l float64) bool
}

var (
	_ Detector = (*Reservoir)(nil)
	_ Detector = (*StaticDetector)(nil)
)
