package reservoir

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTest(cfg Config, seed int64) *Reservoir {
	return New(cfg, rand.New(rand.NewSource(seed)))
}

func TestDefaultThresholdBeforeFill(t *testing.T) {
	cfg := DefaultConfig()
	r := newTest(cfg, 1)
	if got := r.Threshold(); got != cfg.DefaultThreshold {
		t.Errorf("empty threshold = %v, want default %v", got, cfg.DefaultThreshold)
	}
	// Below MinSamples the default still applies.
	for i := 0; i < cfg.MinSamples-1; i++ {
		r.Input(100)
	}
	if got := r.Threshold(); got != cfg.DefaultThreshold {
		t.Errorf("underfilled threshold = %v, want default", got)
	}
	r.Input(100)
	if got := r.Threshold(); got == cfg.DefaultThreshold {
		t.Error("threshold should become dynamic at MinSamples")
	}
}

func TestMedianAndStddev(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSamples = 1
	r := newTest(cfg, 1)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		r.Input(v)
	}
	if m := r.Median(); m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if s := r.Stddev(); math.Abs(s-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s, want)
	}
	// Even count median.
	r2 := newTest(cfg, 1)
	for _, v := range []float64{1, 2, 3, 4} {
		r2.Input(v)
	}
	if m := r2.Median(); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
}

func TestDetectsSpike(t *testing.T) {
	cfg := DefaultConfig()
	r := newTest(cfg, 7)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		if r.Input(1000 + 50*rng.NormFloat64()) {
			// occasional tail outliers are acceptable
			continue
		}
	}
	if !r.Input(5000) {
		t.Error("5x spike not flagged")
	}
	if r.Input(1010) {
		t.Error("normal sample flagged after spike")
	}
}

func TestThresholdTracksLoadShift(t *testing.T) {
	// The motivating property of Fig. 5: when the baseline rises slowly,
	// the dynamic threshold follows and stops flagging the new normal.
	cfg := DefaultConfig()
	cfg.Volume = 64
	r := newTest(cfg, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		r.Input(1000 + 30*rng.NormFloat64())
	}
	low := r.Threshold()
	// Gradual rise to 3000 — feed plenty of samples so replacement catches up.
	for i := 0; i < 3000; i++ {
		level := 1000 + 2000*math.Min(1, float64(i)/1500)
		r.Input(level + 30*rng.NormFloat64())
	}
	high := r.Threshold()
	if high < low*1.5 {
		t.Errorf("threshold did not track rise: %v -> %v", low, high)
	}
	if r.Input(3000 + 40) { // well within 3σ of the new normal
		t.Error("new-normal sample still flagged")
	}
}

func TestPenaltyResistsOutlierFlood(t *testing.T) {
	// With the penalty factor, a burst of consecutive outliers must not
	// drag the threshold up (much); without it, the threshold inflates.
	run := func(mode PenaltyMode) (before, after float64) {
		cfg := DefaultConfig()
		cfg.Volume = 64
		cfg.Penalty = mode
		r := newTest(cfg, 5)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 500; i++ {
			r.Input(1000 + 20*rng.NormFloat64())
		}
		before = r.Threshold()
		for i := 0; i < 500; i++ {
			r.Input(8000 + 100*rng.NormFloat64()) // sustained anomaly
		}
		after = r.Threshold()
		return
	}
	_, withPenalty := run(PenaltyText)
	_, without := run(PenaltyOff)
	if withPenalty >= without {
		t.Errorf("penalty threshold %v not below no-penalty %v", withPenalty, without)
	}
	// With penalty the threshold should stay well under the anomaly level,
	// so the anomaly keeps being detected.
	if withPenalty > 6000 {
		t.Errorf("penalty threshold %v drifted into anomaly range", withPenalty)
	}
	if without < 6000 {
		t.Errorf("no-penalty threshold %v should have inflated (sanity)", without)
	}
}

func TestPenaltyPrintedVariantDiffers(t *testing.T) {
	// The literal pseudocode penalizes normal data; after a long normal
	// stream its acceptance count must be far below the text variant's.
	feed := func(mode PenaltyMode) int64 {
		cfg := DefaultConfig()
		cfg.Volume = 32
		cfg.Penalty = mode
		r := newTest(cfg, 2)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 2000; i++ {
			r.Input(500 + 10*rng.NormFloat64())
		}
		return r.Accepted
	}
	text := feed(PenaltyText)
	printed := feed(PenaltyPrinted)
	if printed >= text/2 {
		t.Errorf("printed variant accepted %d, text %d; expected starvation", printed, text)
	}
}

func TestReservoirCapacityBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Volume = 16
	r := newTest(cfg, 1)
	for i := 0; i < 1000; i++ {
		r.Input(float64(i))
	}
	if r.Len() != 16 {
		t.Errorf("len = %d, want 16", r.Len())
	}
}

func TestStaticDetector(t *testing.T) {
	s := &StaticDetector{Threshold: 100}
	if s.Input(99) || !s.Input(101) {
		t.Error("static detector misclassified")
	}
	if s.Classify(99) || !s.Classify(101) {
		t.Error("static classify misclassified")
	}
}

func TestClassifyHasNoSideEffects(t *testing.T) {
	cfg := DefaultConfig()
	r := newTest(cfg, 1)
	for i := 0; i < 50; i++ {
		r.Input(100)
	}
	before := r.Threshold()
	beforeLen := r.Len()
	r.Classify(1e9)
	if r.Threshold() != before || r.Len() != beforeLen {
		t.Error("Classify mutated reservoir")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Volume: 0, StaticProb: 0.5},
		{Volume: 8, StaticProb: 0},
		{Volume: 8, StaticProb: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			New(cfg, rand.New(rand.NewSource(1)))
		}()
	}
}

// Property: the reservoir never exceeds its volume and the threshold is
// always >= the median once dynamic.
func TestPropertyInvariants(t *testing.T) {
	f := func(seed int64, vals []float64) bool {
		cfg := DefaultConfig()
		cfg.Volume = 32
		r := newTest(cfg, seed)
		for _, v := range vals {
			r.Input(math.Abs(v))
			if r.Len() > cfg.Volume {
				return false
			}
			if r.Len() >= cfg.MinSamples && r.Threshold() < r.Median() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot contents are always values that were fed in.
func TestPropertySnapshotSubsetOfInputs(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		cfg := DefaultConfig()
		cfg.Volume = 16
		r := newTest(cfg, seed)
		seen := map[float64]bool{}
		for _, v := range raw {
			x := float64(v)
			seen[x] = true
			r.Input(x)
		}
		for _, v := range r.Snapshot() {
			if !seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
