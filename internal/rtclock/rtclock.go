// Package rtclock is the wall-clock implementation of the controller's
// Clock seam (controlplane.Clock) for the real-process deployment mode.
//
// The controller is single-threaded discrete-event code: every callback
// assumes nothing else touches controller state concurrently. The
// simulator guarantees that by construction; rtclock preserves it in real
// time with a run Loop — one goroutine owns all controller state and
// executes posted functions strictly serially. Timers (After/At) fire on
// Go runtime timer goroutines but only *post* back to the loop, so the
// single-threaded discipline survives the move to wall time.
//
// Time values are nanoseconds since the loop started (netsim.Time is an
// int64 nanosecond count, so the unit algebra is shared with the
// simulator). These values live on the wall-clock timeline and are never
// comparable with simulated data-plane timestamps; the controller keeps
// the two apart via Diagnosis.AsOf.
package rtclock

import (
	"sync"
	"time"

	"mars/internal/netsim"
)

// Loop is a serialized wall-clock run queue implementing
// controlplane.Clock. The zero value is not usable; call New.
type Loop struct {
	start time.Time

	mu      sync.Mutex
	queue   []func()
	wake    chan struct{}
	stopped bool
	done    chan struct{}
}

// New starts a loop; its goroutine runs until Stop.
func New() *Loop {
	l := &Loop{
		start: time.Now(), //mars:wallclock deployment-mode clock epoch; never used in simulation
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	//mars:sync the loop goroutine is the node's only executor: every Post/After callback runs serialized on it, so scheduling cannot reorder observable state; deployment mode is wall-clock by design and outside the seeded digest surface
	go l.run()
	return l
}

// Now returns nanoseconds since the loop started.
func (l *Loop) Now() netsim.Time {
	return netsim.Time(time.Since(l.start)) //mars:wallclock deployment-mode clock readout; never used in simulation
}

// Post enqueues fn for serialized execution on the loop goroutine. Posts
// after Stop are discarded.
func (l *Loop) Post(fn func()) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, fn)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// After runs fn on the loop goroutine once d has elapsed (immediately
// posted for non-positive d).
func (l *Loop) After(d netsim.Time, fn func()) {
	if d <= 0 {
		l.Post(fn)
		return
	}
	time.AfterFunc(time.Duration(d), func() { l.Post(fn) }) //mars:wallclock rtclock is the deployment-mode wall clock; the simulator implements the same Clock seam for all seeded runs
}

// At runs fn at absolute loop time t (immediately if t has passed).
func (l *Loop) At(t netsim.Time, fn func()) {
	l.After(t-l.Now(), fn)
}

// Stop halts the loop after the currently queued work drains. It blocks
// until the loop goroutine exits; timers that fire later post into the
// void. Stop is idempotent.
func (l *Loop) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.stopped = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
}

// Run executes fn on the loop goroutine and blocks until it returns —
// the synchronous window deployment code uses to read controller state.
func (l *Loop) Run(fn func()) {
	ch := make(chan struct{})
	l.Post(func() {
		fn()
		close(ch)
	})
	select {
	case <-ch:
	case <-l.done:
	}
}

// run is the loop goroutine: drain the queue, sleep until woken, exit
// once stopped and drained.
func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		batch := l.queue
		l.queue = nil
		stopped := l.stopped
		l.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		if len(batch) > 0 {
			continue // re-check for work queued while running the batch
		}
		if stopped {
			return
		}
		<-l.wake
	}
}
