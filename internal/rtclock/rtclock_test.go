package rtclock

import (
	"sync"
	"testing"
	"time"

	"mars/internal/controlplane"
	"mars/internal/netsim"
)

var _ controlplane.Clock = (*Loop)(nil)

// TestSerialized proves posted functions never run concurrently: many
// goroutines post increments of an unsynchronized counter; -race plus the
// final count catch any overlap.
func TestSerialized(t *testing.T) {
	l := New()
	const posters, each = 8, 200
	var n int // unsynchronized on purpose: the loop is the serializer
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Post(func() { n++ })
			}
		}()
	}
	wg.Wait()
	l.Stop()
	if n != posters*each {
		t.Fatalf("counter = %d, want %d", n, posters*each)
	}
}

func TestAfterOrderingAndNow(t *testing.T) {
	l := New()
	defer l.Stop()
	var order []int
	done := make(chan struct{})
	l.After(20*netsim.Millisecond, func() {
		order = append(order, 2)
		close(done)
	})
	l.After(netsim.Millisecond, func() { order = append(order, 1) })
	l.Post(func() { order = append(order, 0) })
	<-done
	var got []int
	l.Run(func() { got = append(got, order...) })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", got)
	}
	if l.Now() <= 0 {
		t.Fatalf("Now() = %v, want > 0", l.Now())
	}
}

func TestAtPastRunsImmediately(t *testing.T) {
	l := New()
	defer l.Stop()
	ran := make(chan struct{})
	l.At(0, func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("At(past) never ran")
	}
}

func TestStopIdempotentAndDiscardsLatePosts(t *testing.T) {
	l := New()
	l.Stop()
	l.Stop()
	l.Post(func() { t.Error("post after stop ran") })
	time.Sleep(10 * time.Millisecond) //mars:wallclock test grace period for a callback that must NOT fire
}
