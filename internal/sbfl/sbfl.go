// Package sbfl implements Spectrum-Based Fault Localization scoring
// (§4.4.3). MARS carries SBFL from the software-testing domain to the
// network: the "tests" are packets (abnormal set = failing, normal set =
// successful) and the "program elements" are path patterns (switches and
// links). The headline formula is the relative-risk score of Eq. (1);
// classic SBFL formulas (Ochiai, Tarantula, Jaccard, D*) are included for
// the ablation study.
package sbfl

import "math"

// Spectrum is the 2x2 contingency of one pattern over the packet sets:
//
//	Npf — abnormal (failing) packets whose path contains the pattern
//	Nps — normal (successful) packets whose path contains the pattern
//	Nnf — abnormal packets whose path does NOT contain the pattern
//	Nns — normal packets whose path does NOT contain the pattern
type Spectrum struct {
	Npf, Nps, Nnf, Nns float64
}

// Total returns the number of packets covered by the spectrum.
func (s Spectrum) Total() float64 { return s.Npf + s.Nps + s.Nnf + s.Nns }

// Formula computes a suspiciousness score from a spectrum. Higher means
// more suspicious.
type Formula func(Spectrum) float64

// RelativeRisk is Eq. (1): the abnormal proportion among packets carrying
// the pattern divided by the abnormal proportion among packets that do
// not. When every abnormal packet shares the pattern (Nnf = 0) the paper's
// variation adds 1 to the numerator's Nnf term to avoid division by zero.
func RelativeRisk(s Spectrum) float64 {
	if s.Npf+s.Nps == 0 {
		return 0
	}
	num := s.Npf / (s.Npf + s.Nps)
	nnf := s.Nnf
	if nnf == 0 {
		nnf = 1 // paper's variation: (Nnf+1)/(Nnf+Nns)
	}
	if nnf+s.Nns == 0 {
		return math.Inf(1)
	}
	den := nnf / (nnf + s.Nns)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// Ochiai is the cosine-style formula widely regarded as the strongest
// classic SBFL ranker.
func Ochiai(s Spectrum) float64 {
	den := math.Sqrt((s.Npf + s.Nnf) * (s.Npf + s.Nps))
	if den == 0 {
		return 0
	}
	return s.Npf / den
}

// Tarantula is the original SBFL formula (Jones & Harrold).
func Tarantula(s Spectrum) float64 {
	totF := s.Npf + s.Nnf
	totS := s.Nps + s.Nns
	if totF == 0 {
		return 0
	}
	f := s.Npf / totF
	var p float64
	if totS > 0 {
		p = s.Nps / totS
	}
	if f+p == 0 {
		return 0
	}
	return f / (f + p)
}

// Jaccard measures overlap between the failing set and the covered set.
func Jaccard(s Spectrum) float64 {
	den := s.Npf + s.Nnf + s.Nps
	if den == 0 {
		return 0
	}
	return s.Npf / den
}

// DStar (D*, Wong et al.) with the customary exponent 2.
func DStar(s Spectrum) float64 {
	den := s.Nps + s.Nnf
	if den == 0 {
		if s.Npf == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.Npf * s.Npf / den
}

// Formulas enumerates the available scoring functions by name, relative
// risk first (MARS's default).
func Formulas() map[string]Formula {
	return map[string]Formula{
		"relative-risk": RelativeRisk,
		"ochiai":        Ochiai,
		"tarantula":     Tarantula,
		"jaccard":       Jaccard,
		"dstar":         DStar,
	}
}

// CoverFunc reports whether a packet (by index) covers the pattern.
type CoverFunc func(i int) bool

// Build computes a pattern's spectrum over nf failing and ns successful
// packets, where coversF/coversS report coverage in each set.
func Build(nf, ns int, coversF, coversS CoverFunc) Spectrum {
	var s Spectrum
	for i := 0; i < nf; i++ {
		if coversF(i) {
			s.Npf++
		} else {
			s.Nnf++
		}
	}
	for i := 0; i < ns; i++ {
		if coversS(i) {
			s.Nps++
		} else {
			s.Nns++
		}
	}
	return s
}
